package bytebrain

import (
	"bytebrain/internal/analytics"
	"bytebrain/internal/service"
)

// Cloud-service surface (§3 of the paper): topics, ingestion with online
// matching, periodic training with model merging, and query-time precision
// control, plus an HTTP handler for deployment.
type (
	// ServiceConfig tunes the log service (training triggers, sampling
	// cap, default query threshold).
	ServiceConfig = service.Config
	// Service manages log topics.
	Service = service.Service
	// TemplateRow is one grouped query-result row.
	TemplateRow = service.TemplateRow
	// TopicStats reports per-topic operational counters.
	TopicStats = service.Stats
	// TimeRange bounds a query to records with From <= Time <= To (both
	// inclusive; zero sides unbounded). A narrow range over a long
	// history is pushed down to sealed-segment metadata, so only blocks
	// overlapping the range are read.
	TimeRange = service.TimeRange
	// Ingester is the asynchronous multi-queue ingestion pipeline (§3
	// "Parallel"); create one with Service.NewIngester.
	Ingester = service.Ingester
)

// NewService creates a log-parsing service.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Analytics surface: the out-of-the-box analyses the paper's introduction
// describes on top of parsing results.
type (
	// TemplateCounts maps template IDs to occurrence counts in a window.
	TemplateCounts = analytics.Counts
	// TemplateChange is one detected anomaly between windows.
	TemplateChange = analytics.Change
	// FailureScenario names a set of templates indicating a known
	// failure.
	FailureScenario = analytics.Scenario
	// TemplateLibrary stores saved templates and failure scenarios.
	TemplateLibrary = analytics.Library
)

// CompareWindows diffs template counts between two time windows,
// reporting new, gone, surging and dropping templates — the paper's
// template-quantity anomaly detection.
func CompareWindows(before, after TemplateCounts, surgeFactor float64) []TemplateChange {
	return analytics.CompareWindows(before, after, surgeFactor)
}

// DistributionDivergence computes the Jensen–Shannon divergence between
// two windows' template distributions (0 = identical, ln 2 = disjoint).
func DistributionDivergence(a, b TemplateCounts) float64 {
	return analytics.JensenShannon(a, b)
}

// NewTemplateLibrary returns an empty template library.
func NewTemplateLibrary() *TemplateLibrary { return analytics.NewLibrary() }
