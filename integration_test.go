package bytebrain_test

import (
	"testing"

	"bytebrain"
)

// TestGARegressionPerDataset pins ByteBrain's grouping accuracy on every
// simulated LogHub dataset. Floors are set a few points under current
// measurements so real regressions fail fast while seed-level jitter does
// not. Paper reference (Table 2): 0.98 average, minimum 0.90 (Mac).
func TestGARegressionPerDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	floors := map[string]float64{
		"Android":     0.80,
		"Apache":      0.95,
		"BGL":         0.85,
		"HDFS":        0.95,
		"HPC":         0.90,
		"Hadoop":      0.85,
		"HealthApp":   0.88,
		"Linux":       0.85,
		"Mac":         0.75,
		"OpenSSH":     0.90,
		"OpenStack":   0.92,
		"Proxifier":   0.92,
		"Spark":       0.88,
		"Thunderbird": 0.85,
		"Windows":     0.90,
		"Zookeeper":   0.90,
	}
	var sum float64
	for _, name := range bytebrain.DatasetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := bytebrain.GenerateLogHub(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			parser := bytebrain.New(bytebrain.Options{Seed: 1})
			res, err := parser.Train(ds.Lines)
			if err != nil {
				t.Fatal(err)
			}
			matcher, err := parser.NewMatcher(res.Model)
			if err != nil {
				t.Fatal(err)
			}
			pred := make([]int, len(ds.Lines))
			for i, r := range matcher.MatchBatch(ds.Lines) {
				n, err := res.Model.TemplateAt(r.NodeID, 0.9)
				if err != nil {
					t.Fatal(err)
				}
				pred[i] = int(n.ID)
			}
			ga, err := bytebrain.GroupingAccuracy(pred, ds.Truth)
			if err != nil {
				t.Fatal(err)
			}
			sum += ga
			if floor := floors[name]; ga < floor {
				t.Errorf("GA = %.3f, regression below floor %.2f", ga, floor)
			}
		})
	}
	if avg := sum / 16; avg < 0.90 {
		t.Errorf("average GA = %.3f, want >= 0.90 (paper: 0.98)", avg)
	}
}

// TestThresholdStability pins the Fig. 11 claim: GA does not collapse
// anywhere in the mid-threshold band.
func TestThresholdStability(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range []string{"HDFS", "Zookeeper", "OpenSSH"} {
		ds, err := bytebrain.GenerateLogHub(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		parser := bytebrain.New(bytebrain.Options{Seed: 1})
		res, err := parser.Train(ds.Lines)
		if err != nil {
			t.Fatal(err)
		}
		matcher, err := parser.NewMatcher(res.Model)
		if err != nil {
			t.Fatal(err)
		}
		matched := matcher.MatchBatch(ds.Lines)
		for _, th := range []float64{0.5, 0.6, 0.7, 0.8, 0.9} {
			pred := make([]int, len(ds.Lines))
			for i, r := range matched {
				n, err := res.Model.TemplateAt(r.NodeID, th)
				if err != nil {
					t.Fatal(err)
				}
				pred[i] = int(n.ID)
			}
			ga, err := bytebrain.GroupingAccuracy(pred, ds.Truth)
			if err != nil {
				t.Fatal(err)
			}
			if ga < 0.75 {
				t.Errorf("%s GA at threshold %.1f = %.3f; mid-band collapsed", name, th, ga)
			}
		}
	}
}

// TestRetrainingConvergence streams a dataset through repeated
// train-merge cycles and checks the model keeps matching everything it
// has seen without unbounded growth.
func TestRetrainingConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds, err := bytebrain.GenerateLogHub("Zookeeper", 2)
	if err != nil {
		t.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 2})
	var model *bytebrain.Model
	chunk := len(ds.Lines) / 5
	var sizes []int
	for c := 0; c < 5; c++ {
		batch := ds.Lines[c*chunk : (c+1)*chunk]
		res, err := parser.TrainMerge(model, batch)
		if err != nil {
			t.Fatal(err)
		}
		model = res.Model
		if err := model.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		sizes = append(sizes, model.Len())
	}
	// Every seen line still matches.
	matcher, err := parser.NewMatcher(model)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, line := range ds.Lines[:5*chunk] {
		if matcher.Match(line).New {
			misses++
		}
	}
	if frac := float64(misses) / float64(5*chunk); frac > 0.02 {
		t.Errorf("%.2f%% of seen lines missed after 5 cycles", frac*100)
	}
	// Model growth decelerates: the last cycle must add less than the
	// first one did.
	if sizes[4]-sizes[3] >= sizes[0] {
		t.Errorf("model kept growing linearly: sizes %v", sizes)
	}
}
