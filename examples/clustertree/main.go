// Clustertree: walk through the paper's Fig. 5 example — two three-log
// sets whose clustering trees show why saturation considers both constants
// and likely variables.
//
//	go run ./examples/clustertree
package main

import (
	"fmt"
	"log"

	"bytebrain"
)

func main() {
	set1 := []string{
		"UserService createUser token=abc123 success",
		"UserService createUser token=xyz789 success",
		"UserService createUser token=def456 success",
	}
	set2 := []string{
		"UserService createUser token=abc123 success",
		"UserService deleteUser token=xyz789 failed",
		"UserService queryUser token=def456 success",
	}
	for name, set := range map[string][]string{"Set 1": set1, "Set 2": set2} {
		fmt.Printf("== %s\n", name)
		parser := bytebrain.New(bytebrain.Options{Seed: 1})
		res, err := parser.Train(set)
		if err != nil {
			log.Fatal(err)
		}
		for _, rootID := range res.Model.Roots() {
			printTree(res.Model, rootID, 0)
		}
		fmt.Println()
	}
	fmt.Println("Set 1 resolves at the root (token value is the only varying position);")
	fmt.Println("Set 2 refines to per-log leaves because variability spans several positions.")
}

func printTree(m *bytebrain.Model, id uint64, depth int) {
	n := m.Nodes[id]
	fmt.Printf("%*s[sat %.2f] %s\n", depth*3, "", n.Saturation, bytebrain.DisplayTemplate(n.Template))
	for _, c := range m.Children(id) {
		printTree(m, c, depth+1)
	}
}
