// Cloud service: run the log service end to end — create a topic, stream
// logs through ingestion (online matching + append-only storage), let
// volume-triggered training fire, then query grouped templates at two
// precision levels. Pass -http :8080 to also serve the HTTP API.
//
//	go run ./examples/cloud_service [-http :8080]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"bytebrain"
)

func main() {
	httpAddr := flag.String("http", "", "optionally serve the HTTP API on this address")
	flag.Parse()

	svc := bytebrain.NewService(bytebrain.ServiceConfig{
		Parser:      bytebrain.Options{Seed: 1},
		TrainVolume: 1500, // retrain every 1500 records
	})
	const topic = "webserver"
	if err := svc.CreateTopic(topic); err != nil {
		log.Fatal(err)
	}

	// Stream a synthetic webserver access-log workload through the
	// service in batches, as a collector would.
	ds, err := bytebrain.GenerateLogHub("Apache", 3)
	if err != nil {
		log.Fatal(err)
	}
	for start := 0; start < len(ds.Lines); start += 500 {
		end := start + 500
		if end > len(ds.Lines) {
			end = len(ds.Lines)
		}
		if err := svc.Ingest(topic, ds.Lines[start:end]); err != nil {
			log.Fatal(err)
		}
	}
	// Volume-triggered cycles run in the background trainer; force one
	// final synchronous cycle so the tail of the stream is learned before
	// we query.
	if err := svc.Train(topic); err != nil {
		log.Fatal(err)
	}
	stats, err := svc.TopicStats(topic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topic %q: %d records (%d bytes), %d training cycles, model %d bytes\n\n",
		topic, stats.Records, stats.Bytes, stats.Trainings, stats.ModelBytes)

	for _, threshold := range []float64{0.3, 0.9} {
		rows, err := svc.Query(topic, threshold, bytebrain.TimeRange{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query at threshold %.1f → %d template groups; top 5:\n", threshold, len(rows))
		for i, r := range rows {
			if i >= 5 {
				break
			}
			fmt.Printf("  %6d × %s\n", r.Count, r.Template)
		}
		fmt.Println()
	}

	if *httpAddr != "" {
		fmt.Printf("serving HTTP API on %s (GET /topics/%s/query?threshold=0.7)\n", *httpAddr, topic)
		log.Fatal(http.ListenAndServe(*httpAddr, svc.Handler()))
	}
}
