// Anomaly detection: the advanced analytics the paper's introduction
// builds on parsing results — compare template distributions across two
// time windows, alert on new and surging templates, and match the current
// state against a library of known failure scenarios. New structures are
// picked up by the periodic retraining cycle (TrainMerge), exactly as in
// the deployed system.
//
//	go run ./examples/anomaly_detection
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bytebrain"
)

func main() {
	parser := bytebrain.New(bytebrain.Options{Seed: 1})
	r := rand.New(rand.NewSource(1))

	// Window 1: healthy traffic. Train the initial model.
	healthy := genWindow(r, 3000, false)
	res, err := parser.Train(healthy)
	if err != nil {
		log.Fatal(err)
	}
	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		log.Fatal(err)
	}
	before := countWindow(matcher, healthy)

	// Window 2: an incident — OOM kills and worker restarts appear. The
	// next training cycle merges the new structures into the model
	// (temporary templates from online matching are re-learned).
	incident := genWindow(r, 3000, true)
	res2, err := parser.TrainMerge(res.Model, incident)
	if err != nil {
		log.Fatal(err)
	}
	matcher2, err := parser.NewMatcher(res2.Model)
	if err != nil {
		log.Fatal(err)
	}
	after := countWindow(matcher2, incident)

	fmt.Printf("divergence between windows: %.3f (0 = identical)\n\n",
		bytebrain.DistributionDivergence(before, after))

	changes := bytebrain.CompareWindows(before, after, 4)
	fmt.Printf("%d template anomalies:\n", len(changes))
	for i, c := range changes {
		if i >= 8 {
			break
		}
		var text string
		if n, err := res2.Model.TemplateAt(c.TemplateID, 0.7); err == nil {
			text = bytebrain.DisplayTemplate(n.Template)
		}
		fmt.Printf("  [%-5s] %4d → %4d  %s\n", c.Kind, c.Before, c.After, text)
	}

	// Failure-scenario matching over the templates present in window 2.
	lib := bytebrain.NewTemplateLibrary()
	lib.AddScenario(bytebrain.FailureScenario{
		Name:      "memory-pressure-cascade",
		Templates: []string{"Out of memory", "restarting worker"},
	})
	var current []string
	for id := range after {
		if n, err := res2.Model.TemplateAt(id, 0.7); err == nil {
			current = append(current, bytebrain.DisplayTemplate(n.Template))
		}
	}
	if hits := lib.MatchScenarios(current); len(hits) > 0 {
		fmt.Printf("\nmatched failure scenarios: %v\n", hits)
	} else {
		fmt.Println("\nno known failure scenario matched")
	}
}

func genWindow(r *rand.Rand, n int, incident bool) []string {
	var out []string
	for i := 0; i < n; i++ {
		switch {
		case incident && r.Intn(10) < 3:
			out = append(out, fmt.Sprintf("kernel: Out of memory: Killed process %d (worker)", 1000+r.Intn(9000)))
		case incident && r.Intn(10) < 3:
			out = append(out, fmt.Sprintf("supervisor: restarting worker %d after crash", r.Intn(64)))
		case r.Intn(10) < 6:
			out = append(out, fmt.Sprintf("request from 10.0.%d.%d served in %dms", r.Intn(4), r.Intn(250), r.Intn(400)))
		case r.Intn(10) < 8:
			out = append(out, fmt.Sprintf("cache hit for key sess:%d", r.Intn(100000)))
		default:
			out = append(out, fmt.Sprintf("gc cycle %d freed %d objects", r.Intn(100000), r.Intn(50000)))
		}
	}
	return out
}

func countWindow(matcher *bytebrain.Matcher, lines []string) bytebrain.TemplateCounts {
	counts := bytebrain.TemplateCounts{}
	for _, l := range lines {
		m := matcher.Match(l)
		if n, err := matcher.TemplateAt(m.NodeID, 0.7); err == nil {
			counts[n.ID]++
		}
	}
	return counts
}
