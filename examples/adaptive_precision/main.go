// Adaptive precision: reproduce the Table-4 experience — the same trained
// model viewed through an interactive precision slider, from one
// coarse-grained template to many fine-grained ones, without reparsing a
// single log.
//
//	go run ./examples/adaptive_precision
package main

import (
	"fmt"
	"log"

	"bytebrain"
)

func main() {
	// Android-style wakelock logs (the paper's running example).
	ds, err := bytebrain.GenerateLogHub("Android", 7)
	if err != nil {
		log.Fatal(err)
	}
	parser := bytebrain.New(bytebrain.Options{Seed: 7})
	res, err := parser.Train(ds.Lines)
	if err != nil {
		log.Fatal(err)
	}

	for _, threshold := range []float64{0.05, 0.78, 0.9, 0.95} {
		templates := res.Model.TemplatesAtThreshold(threshold)
		fmt.Printf("saturation threshold %.2f → %d templates; wakelock views:\n", threshold, len(templates))
		shown := 0
		for _, n := range templates {
			text := bytebrain.DisplayTemplate(n.Template)
			if len(text) > 0 && shown < 4 && containsLock(text) {
				fmt.Printf("   %s\n", text)
				shown++
			}
		}
		fmt.Println()
	}
}

func containsLock(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i:i+4] == "lock" {
			return true
		}
	}
	return false
}
