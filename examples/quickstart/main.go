// Quickstart: train a model on a small log batch, match new logs online,
// and read templates at two precision levels.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bytebrain"
)

func main() {
	lines := []string{
		`release:lock=2337, flg=0x0, tag="View Lock", name=systemui, ws=null`,
		`release:lock=187, flg=0x0, tag="*launch*", name=android, ws=WS{10113}`,
		`release:lock=62, flg=0x0, tag="WindowManager", name=android, ws=WS{1013}`,
		`acquire:lock=23, flg=0x1, tag="View Lock", name=systemui, ws=null`,
		`acquire:lock=1661, flg=0x1, tag="RILJ_ACK_WL", name=phone, ws=null`,
		`acquire:lock=99, flg=0x1, tag="View Lock", name=android, ws=null`,
		`Receiving block blk_90123 src: /10.0.0.1:50010 dest: /10.0.0.2:50010`,
		`Receiving block blk_55678 src: /10.0.0.7:50010 dest: /10.0.0.9:50010`,
	}

	parser := bytebrain.New(bytebrain.Options{Seed: 42})
	res, err := parser.Train(lines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d template nodes from %d logs\n\n", res.Model.Len(), len(lines))

	matcher, err := parser.NewMatcher(res.Model)
	if err != nil {
		log.Fatal(err)
	}

	// Match a new log and inspect it at two precision levels (the
	// paper's Fig. 1 / Table 4 workflow).
	newLog := `acquire:lock=4242, flg=0x1, tag="GOOGLE_C2DM", name=phone, ws=null`
	m := matcher.Match(newLog)
	fmt.Printf("log:   %s\n", newLog)
	for _, threshold := range []float64{0.3, 0.95} {
		n, err := matcher.TemplateAt(m.NodeID, threshold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  threshold %.2f → %s  (saturation %.2f)\n",
			threshold, bytebrain.DisplayTemplate(n.Template), n.Saturation)
	}

	// A log the model has never seen becomes a temporary template and is
	// re-learned at the next training cycle.
	novel := matcher.Match("thermal shutdown imminent on core 3")
	fmt.Printf("\nunseen log created temporary template: %v (node %d)\n", novel.New, novel.NodeID)
}
