package experiments

import (
	"fmt"
	"strconv"

	"bytebrain/internal/core"
	"bytebrain/internal/datagen"
	"bytebrain/internal/encode"
	"bytebrain/internal/metrics"
	"bytebrain/internal/tokenize"
	"bytebrain/internal/vars"
)

// accuracyVariants are the Fig. 8 ablations.
func accuracyVariants(cfg Config) []struct {
	name string
	opts core.Options
} {
	base := core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism}
	with := func(mod func(*core.Options)) core.Options {
		o := base
		mod(&o)
		return o
	}
	return []struct {
		name string
		opts core.Options
	}{
		{"ByteBrain", base},
		{"w/ naive match", with(func(o *core.Options) {})}, // handled specially below
		{"w/o variable in saturation", with(func(o *core.Options) { o.NoVariableSaturation = true })},
		{"w/o position importance", with(func(o *core.Options) { o.NoPositionImportance = true })},
		{"w/o confidence factor", with(func(o *core.Options) { o.NoConfidenceFactor = true })},
		{"random centroid selection", with(func(o *core.Options) { o.RandomCentroids = true })},
	}
}

// Fig8 reproduces the accuracy ablation: each variant's mean GA on the
// LogHub suite and on scaled LogHub-2.0.
func Fig8(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "fig8",
		Title:  "Accuracy ablation (mean GA)",
		Note:   "w/ naive match scores the clustering assignments directly instead of text matching (§5.4.1); the other variants disable one technique each.",
		Header: []string{"Variant", "LogHub", "LogHub-2.0"},
	}
	lh := datagen.Names()
	lh2 := datagen.LogHub2Names()
	for _, v := range accuracyVariants(cfg) {
		naive := v.name == "w/ naive match"
		var lhGAs, lh2GAs []float64
		for _, name := range lh {
			ds, err := datagen.LogHub(name, cfg.Seed)
			if err != nil {
				return nil, err
			}
			ga, err := variantGA(ds, v.opts, cfg.Threshold, naive)
			if err != nil {
				return nil, err
			}
			lhGAs = append(lhGAs, ga)
		}
		for _, name := range lh2 {
			ds, err := datagen.LogHub2(name, cfg.Scale/3, cfg.Seed)
			if err != nil {
				return nil, err
			}
			ga, err := variantGA(ds, v.opts, cfg.Threshold, naive)
			if err != nil {
				return nil, err
			}
			lh2GAs = append(lh2GAs, ga)
		}
		m1, _ := metrics.MeanStd(lhGAs)
		m2, _ := metrics.MeanStd(lh2GAs)
		t.Rows = append(t.Rows, []string{v.name, f3(m1), f3(m2)})
	}
	return t, nil
}

// variantGA scores one variant on one dataset; naive uses the training
// assignments instead of online matching.
func variantGA(ds *datagen.Dataset, opts core.Options, threshold float64, naive bool) (float64, error) {
	p := core.New(opts)
	res, err := p.Train(ds.Lines)
	if err != nil {
		return 0, err
	}
	pred := make([]int, len(ds.Lines))
	if naive {
		for i, id := range res.Assign {
			n, err := res.Model.TemplateAt(id, threshold)
			if err != nil {
				return 0, err
			}
			pred[i] = int(n.ID)
		}
	} else {
		matcher, err := p.NewMatcher(res.Model)
		if err != nil {
			return 0, err
		}
		for i, r := range matcher.MatchBatch(ds.Lines) {
			n, err := matcher.TemplateAt(r.NodeID, threshold)
			if err != nil {
				return 0, err
			}
			pred[i] = int(n.ID)
		}
	}
	return metrics.GroupingAccuracy(pred, ds.Truth)
}

// Fig9 reproduces the efficiency ablation: throughput of each variant on
// the four largest datasets, with LILAC and UniParser as reference rows.
func Fig9(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := []string{"BGL", "HDFS", "Spark", "Thunderbird"}
	t := &Table{
		ID:     "fig9",
		Title:  "Efficiency ablation: throughput (logs/s) on the four largest datasets",
		Note:   "Each variant disables one efficiency technique; w/o deduplication also disables its dependent optimizations, as in the paper.",
		Header: append([]string{"Variant"}, names...),
	}
	mk := func(mod func(*core.Options)) core.Options {
		o := core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism}
		mod(&o)
		return o
	}
	rows := []struct {
		name string
		opts core.Options
	}{
		{"ByteBrain", mk(func(o *core.Options) {})},
		{"w/o early stopping", mk(func(o *core.Options) { o.NoEarlyStop = true })},
		{"w/o ensure saturation increase", mk(func(o *core.Options) { o.NoEnsureSaturationIncrease = true })},
		{"w/o position importance", mk(func(o *core.Options) { o.NoPositionImportance = true })},
		{"ordinal encoding", mk(func(o *core.Options) { o.OrdinalEncoding = true })},
		{"w/o balanced group", mk(func(o *core.Options) { o.NoBalancedGrouping = true })},
		{"w/o variable in saturation", mk(func(o *core.Options) { o.NoVariableSaturation = true })},
		{"w/o deduplication & related techs", mk(func(o *core.Options) { o.NoDedup = true; o.NoBalancedGrouping = true; o.NoEarlyStop = true })},
	}
	datasets := make([]*datagen.Dataset, len(names))
	for i, n := range names {
		ds, err := datagen.LogHub2(n, cfg.Scale/3, cfg.Seed)
		if err != nil {
			return nil, err
		}
		datasets[i] = ds
	}
	for _, v := range rows {
		row := []string{v.name}
		for _, ds := range datasets {
			r, err := runByteBrain(ds, v.opts, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			row = append(row, sci(r.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 reproduces the storage study: the token→ID dictionary an ordinal
// encoding would need, per dataset, versus raw log bytes — the savings
// hash encoding realizes by needing no dictionary at all.
func Fig10(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "fig10",
		Title:  "Ordinal-encoding dictionary size vs. log size",
		Note:   "Hash encoding stores none of this: the dictionary column is pure savings.",
		Header: []string{"Dataset", "Log bytes", "Distinct tokens", "Dictionary bytes", "Dict/Log %"},
	}
	tok := tokenize.NewFast()
	repl := vars.Default()
	for _, name := range datagen.LogHub2Names() {
		ds, err := datagen.LogHub2(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		enc := encode.NewOrdinalEncoder()
		for _, l := range ds.Lines {
			toks := vars.CanonicalizeTokens(tok.Tokenize(repl.ReplaceTokenSafe(l)))
			for _, tkn := range toks {
				enc.EncodeToken(tkn)
			}
		}
		dict := enc.DictBytes()
		t.Rows = append(t.Rows, []string{
			name,
			strconv.FormatInt(ds.Bytes, 10),
			strconv.Itoa(enc.Len()),
			strconv.FormatInt(dict, 10),
			fmt.Sprintf("%.2f%%", 100*float64(dict)/float64(ds.Bytes)),
		})
	}
	return t, nil
}

// Fig11 reproduces the threshold-sensitivity sweep: GA at saturation
// thresholds 0.2–0.9 per dataset.
func Fig11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	thresholds := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	header := []string{"Dataset"}
	for _, th := range thresholds {
		header = append(header, f2(th))
	}
	t := &Table{
		ID:     "fig11",
		Title:  "Group accuracy vs. saturation threshold",
		Note:   "One trained model per dataset, re-evaluated at each threshold (no retraining — the adaptivity claim).",
		Header: header,
	}
	for _, name := range []string{"Apache", "BGL", "HDFS", "HPC", "Hadoop", "HealthApp", "Mac", "OpenSSH", "OpenStack", "Spark", "Thunderbird", "Zookeeper"} {
		ds, err := datagen.LogHub(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		p := core.New(core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism})
		res, err := p.Train(ds.Lines)
		if err != nil {
			return nil, err
		}
		matcher, err := p.NewMatcher(res.Model)
		if err != nil {
			return nil, err
		}
		matched := matcher.MatchBatch(ds.Lines)
		row := []string{name}
		for _, th := range thresholds {
			pred := make([]int, len(ds.Lines))
			for i, r := range matched {
				n, err := matcher.TemplateAt(r.NodeID, th)
				if err != nil {
					return nil, err
				}
				pred[i] = int(n.ID)
			}
			ga, err := metrics.GroupingAccuracy(pred, ds.Truth)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(ga))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
