// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, §6) on the simulated LogHub substrate. Each experiment
// is a named runner producing a Table; cmd/benchall renders them into
// EXPERIMENTS.md, and bench_test.go exposes one testing.B per artifact.
//
// Absolute numbers differ from the paper (different hardware, simulated
// datasets, Go instead of JIT-compiled Python); the reproduced artifacts
// are the shapes: who wins, by what order of magnitude, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured per artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bytebrain/internal/baselines"
	"bytebrain/internal/core"
	"bytebrain/internal/datagen"
	"bytebrain/internal/metrics"
)

// Config tunes experiment scale and determinism.
type Config struct {
	// Seed drives dataset generation and parser randomness.
	Seed int64
	// Scale is the LogHub-2.0 volume fraction (default 0.003, keeping
	// the full suite in minutes; 1.0 reproduces Table-1 volumes).
	Scale float64
	// Threshold is the saturation threshold GA is evaluated at
	// (default 0.7; Fig. 11 sweeps it).
	Threshold float64
	// Timeout bounds each baseline on each dataset; exceeding it records
	// DNF, mirroring the paper's missing cells (default 60s).
	Timeout time.Duration
	// FastSurrogates zeroes the calibrated inference delays of the
	// learned-method surrogates; used by unit tests, never by benchall
	// (the delays are what reproduce the Fig. 6 throughput gaps).
	FastSurrogates bool
	// Parallelism for ByteBrain (default 4).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 0.003
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.7
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 4
	}
	return c
}

// Table is one regenerated artifact.
type Table struct {
	// ID is the artifact key ("table2", "fig6", …).
	ID string
	// Title describes the artifact.
	Title string
	// Note records scope/substitution caveats for EXPERIMENTS.md.
	Note string
	// Header and Rows hold the data.
	Header []string
	Rows   [][]string
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", strings.ToUpper(t.ID[:1])+t.ID[1:], t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "%s\n\n", t.Note)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Runner regenerates one artifact.
type Runner func(Config) (*Table, error)

// Registry maps artifact IDs to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"fig2", Fig2},
		{"fig4", Fig4},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"table4", Table4},
		{"table5", Table5},
	}
}

// Run executes the runner registered under id.
func Run(id string, cfg Config) (*Table, error) {
	for _, r := range Registry() {
		if r.ID == id {
			return r.Run(cfg)
		}
	}
	return nil, fmt.Errorf("experiments: unknown artifact %q", id)
}

// byteBrainResult is one ByteBrain measurement on one dataset.
type byteBrainResult struct {
	GA         float64
	Throughput float64 // logs/sec over train + match (§5.1.3)
	TrainTime  time.Duration
	Nodes      int
}

// runByteBrain trains, matches every line, rolls up at the threshold, and
// scores GA + combined throughput.
func runByteBrain(ds *datagen.Dataset, opts core.Options, threshold float64) (byteBrainResult, error) {
	p := core.New(opts)
	start := time.Now()
	res, err := p.Train(ds.Lines)
	if err != nil {
		return byteBrainResult{}, err
	}
	trainTime := time.Since(start)
	matcher, err := p.NewMatcher(res.Model)
	if err != nil {
		return byteBrainResult{}, err
	}
	results := matcher.MatchBatch(ds.Lines)
	elapsed := time.Since(start)
	pred := make([]int, len(ds.Lines))
	for i, r := range results {
		n, err := matcher.TemplateAt(r.NodeID, threshold)
		if err != nil {
			return byteBrainResult{}, err
		}
		pred[i] = int(n.ID)
	}
	ga, err := metrics.GroupingAccuracy(pred, ds.Truth)
	if err != nil {
		return byteBrainResult{}, err
	}
	return byteBrainResult{
		GA:         ga,
		Throughput: metrics.Throughput(len(ds.Lines), elapsed),
		TrainTime:  trainTime,
		Nodes:      res.Model.Len(),
	}, nil
}

// baselineResult is one baseline measurement; DNF marks a timeout.
type baselineResult struct {
	GA         float64
	Throughput float64
	DNF        bool
}

// runBaseline executes p on the dataset under the timeout.
func runBaseline(p baselines.Parser, ds *datagen.Dataset, cfg Config) baselineResult {
	if cfg.FastSurrogates {
		zeroSurrogateDelays(p)
	}
	if ta, ok := p.(baselines.TruthAware); ok {
		ta.SetTruth(ds.Truth)
	}
	if ls, ok := p.(*baselines.LogSig); ok {
		ls.SetGroups(ds.NumTemplates)
	}
	type outcome struct {
		pred    []int
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	go func() {
		start := time.Now()
		pred := p.Parse(ds.Lines)
		done <- outcome{pred, time.Since(start)}
	}()
	select {
	case o := <-done:
		ga, err := metrics.GroupingAccuracy(o.pred, ds.Truth)
		if err != nil {
			return baselineResult{DNF: true}
		}
		return baselineResult{GA: ga, Throughput: metrics.Throughput(len(ds.Lines), o.elapsed)}
	case <-time.After(cfg.Timeout):
		// The goroutine leaks until Parse returns; acceptable for a
		// bounded benchmark run, and it mirrors the paper's "failed to
		// finish" cells.
		return baselineResult{DNF: true}
	}
}

func zeroSurrogateDelays(p baselines.Parser) {
	switch v := p.(type) {
	case *baselines.UniParser:
		v.PerLog = 0
	case *baselines.LogPPT:
		v.PerLog = 0
	case *baselines.LILAC:
		v.PerQuery, v.PerHit = 0, 0
	}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func sci(v float64) string { return fmt.Sprintf("%.2e", v) }

func sortedCopy(xs []string) []string {
	out := make([]string, len(xs))
	copy(out, xs)
	sort.Strings(out)
	return out
}
