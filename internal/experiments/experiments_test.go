package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"bytebrain/internal/core"
	"bytebrain/internal/datagen"
)

func testCfg() Config {
	return Config{
		Seed:           1,
		Scale:          0.0005,
		Threshold:      0.7,
		Timeout:        30 * time.Second,
		FastSurrogates: true,
	}
}

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig4", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
	}
	got := map[string]bool{}
	for _, r := range Registry() {
		got[r.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("artifact %s missing from registry", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d artifacts, want %d", len(got), len(want))
	}
}

func TestRunUnknownArtifact(t *testing.T) {
	if _, err := Run("fig99", testCfg()); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 16 {
		t.Fatalf("table1 rows = %d, want 16", len(tb.Rows))
	}
	// Template counts must be the paper's exactly.
	for _, row := range tb.Rows {
		lh, _ := datagen.TemplateCounts(row[0])
		if row[3] != strconv.Itoa(lh) {
			t.Errorf("%s LogHub templates = %s, want %d", row[0], row[3], lh)
		}
	}
	if !strings.Contains(tb.Markdown(), "| Dataset |") {
		t.Error("markdown header missing")
	}
}

func TestTable4ShowsCoarseToFine(t *testing.T) {
	tb, err := Table4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 thresholds", len(tb.Rows))
	}
	first, _ := strconv.Atoi(tb.Rows[0][1])
	last, _ := strconv.Atoi(tb.Rows[len(tb.Rows)-1][1])
	if first > last {
		t.Errorf("template count decreased with threshold: %d → %d", first, last)
	}
	if last <= 1 {
		t.Errorf("finest view has %d wakelock templates", last)
	}
}

func TestTable5RunsAllScenarios(t *testing.T) {
	cfg := testCfg()
	tb, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 production scenarios", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if !strings.Contains(row[1], "MB/s") || !strings.Contains(row[3], "s") {
			t.Errorf("malformed row: %v", row)
		}
	}
}

func TestFig4DuplicationIncreasesWithReplacement(t *testing.T) {
	tb, err := Fig4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		rawU, _ := strconv.Atoi(row[2])
		replU, _ := strconv.Atoi(row[3])
		if replU > rawU {
			t.Errorf("%s: uniques grew after replacement (%d → %d)", row[0], rawU, replU)
		}
	}
}

func TestFig10DictionaryGrowsWithLogs(t *testing.T) {
	tb, err := Fig10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		dict, _ := strconv.Atoi(row[3])
		if dict <= 0 {
			t.Errorf("%s: dictionary bytes = %d", row[0], dict)
		}
	}
}

func TestFig11ModelReusedAcrossThresholds(t *testing.T) {
	cfg := testCfg()
	tb, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// The HDFS row should be high and stable across mid thresholds.
	for _, row := range tb.Rows {
		if row[0] != "HDFS" {
			continue
		}
		for i := 3; i <= 6; i++ { // thresholds 0.4–0.7
			v, _ := strconv.ParseFloat(row[i], 64)
			if v < 0.8 {
				t.Errorf("HDFS GA at %s = %v, want >= 0.8", tb.Header[i], v)
			}
		}
	}
}

func TestRunByteBrainMeasures(t *testing.T) {
	ds, err := datagen.LogHub("Apache", 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := runByteBrain(ds, core.Options{Seed: 1}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if r.GA < 0.9 {
		t.Errorf("Apache GA = %v", r.GA)
	}
	if r.Throughput <= 0 || r.Nodes <= 0 {
		t.Errorf("bad measurement: %+v", r)
	}
}

func TestBaselineTimeoutDNF(t *testing.T) {
	ds, err := datagen.LogHub("Apache", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testCfg()
	cfg.Timeout = 1 * time.Nanosecond
	r := runBaseline(slowParser{}, ds, cfg)
	if !r.DNF {
		t.Error("timeout did not record DNF")
	}
}

type slowParser struct{}

func (slowParser) Name() string { return "slow" }
func (slowParser) Parse(lines []string) []int {
	time.Sleep(50 * time.Millisecond)
	return make([]int, len(lines))
}

func TestTableMarkdownWellFormed(t *testing.T) {
	tb := &Table{
		ID:     "fig0",
		Title:  "demo",
		Note:   "note",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "2"}},
	}
	md := tb.Markdown()
	for _, want := range []string{"### Fig0", "note", "| A | B |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestEveryArtifactRunsAtMicroScale executes every registered runner at a
// tiny scale so a late crash cannot hide until the full benchall run.
func TestEveryArtifactRunsAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{
		Seed:           1,
		Scale:          0.0002,
		Threshold:      0.7,
		Timeout:        20 * time.Second,
		FastSurrogates: true,
	}
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tb, err := r.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 || len(tb.Header) == 0 {
				t.Fatalf("%s produced empty table", r.ID)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Fatalf("%s row width %d != header %d: %v", r.ID, len(row), len(tb.Header), row)
				}
			}
		})
	}
}
