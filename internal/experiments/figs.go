package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"bytebrain/internal/baselines"
	"bytebrain/internal/core"
	"bytebrain/internal/datagen"
	"bytebrain/internal/metrics"
	"bytebrain/internal/tokenize"
	"bytebrain/internal/vars"
)

// fig2Datasets keeps the scatter affordable: a representative LogHub
// subset spanning easy to hard datasets.
var fig2Datasets = []string{"HDFS", "Apache", "Linux", "Mac", "Zookeeper", "BGL"}

// Fig2 reproduces the throughput-vs-accuracy scatter: one point per
// method, averaging GA and throughput over a LogHub subset.
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "fig2",
		Title:  "Throughput vs. group accuracy (scatter data)",
		Note:   "Averages over " + fmt.Sprint(fig2Datasets) + "; the paper's headline shape — ByteBrain in the top-right — is the reproduction target.",
		Header: []string{"Method", "Avg GA", "Avg throughput (logs/s)"},
	}
	datasets := make([]*datagen.Dataset, len(fig2Datasets))
	for i, n := range fig2Datasets {
		ds, err := datagen.LogHub(n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		datasets[i] = ds
	}
	for _, f := range baselines.AllFactories() {
		var gas, thrs []float64
		for _, ds := range datasets {
			r := runBaseline(f.New(), ds, cfg)
			if r.DNF {
				continue
			}
			gas = append(gas, r.GA)
			thrs = append(thrs, r.Throughput)
		}
		gaMean, _ := metrics.MeanStd(gas)
		thrMean, _ := metrics.MeanStd(thrs)
		t.Rows = append(t.Rows, []string{f.Name, f2(gaMean), sci(thrMean)})
	}
	var gas, thrs []float64
	for _, ds := range datasets {
		r, err := runByteBrain(ds, core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism}, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		gas = append(gas, r.GA)
		thrs = append(thrs, r.Throughput)
	}
	gaMean, _ := metrics.MeanStd(gas)
	thrMean, _ := metrics.MeanStd(thrs)
	t.Rows = append(t.Rows, []string{"ByteBrain", f2(gaMean), sci(thrMean)})
	return t, nil
}

// Fig4 reproduces the duplication CDF: per dataset, unique-line counts
// before and after common-variable replacement, with CDF quantiles of the
// per-unique duplicate counts.
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "fig4",
		Title: "Log duplication before/after variable replacement (CDF summary)",
		Note:  "Counts of duplicates per unique line; replacement collapses variable-only differences, shifting mass to high counts exactly as Fig. 4 shows.",
		Header: []string{"Dataset", "Lines", "Uniques raw", "Uniques w/ replacement",
			"p50 dup count raw", "p99 raw", "p50 w/ repl", "p99 w/ repl"},
	}
	repl := vars.Default()
	tok := tokenize.NewFast()
	for _, name := range []string{"Linux", "Thunderbird", "Spark", "Apache"} {
		ds, err := datagen.LogHub2(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rawCounts := map[string]int{}
		replCounts := map[string]int{}
		for _, l := range ds.Lines {
			rawCounts[l]++
			toks := vars.CanonicalizeTokens(tok.Tokenize(repl.ReplaceTokenSafe(l)))
			replCounts[tokenize.Join(toks)]++
		}
		p50r, p99r := quantiles(rawCounts)
		p50p, p99p := quantiles(replCounts)
		t.Rows = append(t.Rows, []string{
			name, strconv.Itoa(len(ds.Lines)),
			strconv.Itoa(len(rawCounts)), strconv.Itoa(len(replCounts)),
			strconv.Itoa(p50r), strconv.Itoa(p99r),
			strconv.Itoa(p50p), strconv.Itoa(p99p),
		})
	}
	return t, nil
}

func quantiles(counts map[string]int) (p50, p99 int) {
	xs := make([]int, 0, len(counts))
	for _, c := range counts {
		xs = append(xs, c)
	}
	sort.Ints(xs)
	if len(xs) == 0 {
		return 0, 0
	}
	return xs[len(xs)/2], xs[(len(xs)*99)/100]
}

// fig6Methods selects the heatmap rows: every baseline plus the three
// ByteBrain rows of the paper's figure.
func Fig6(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	names := datagen.LogHub2Names()
	t := &Table{
		ID:     "fig6",
		Title:  "Throughput (logs/s) on LogHub-2.0",
		Note:   fmt.Sprintf("Scaled cuts (%.4f of Table-1 volume); DNF = exceeded %s. ByteBrain Sequential = 1 worker; w/o JIT = linear matcher + 1 worker (the unoptimized implementation).", cfg.Scale, cfg.Timeout),
		Header: append([]string{"Method"}, append(append([]string{}, names...), "Average")...),
	}
	datasets := make([]*datagen.Dataset, len(names))
	for i, n := range names {
		ds, err := datagen.LogHub2(n, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		datasets[i] = ds
	}
	for _, f := range baselines.AllFactories() {
		row := []string{f.Name}
		var valid []float64
		for _, ds := range datasets {
			r := runBaseline(f.New(), ds, cfg)
			if r.DNF {
				row = append(row, "DNF")
				continue
			}
			row = append(row, sci(r.Throughput))
			valid = append(valid, r.Throughput)
		}
		mean, _ := metrics.MeanStd(valid)
		row = append(row, sci(mean))
		t.Rows = append(t.Rows, row)
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"ByteBrain Sequential", core.Options{Seed: cfg.Seed, Parallelism: 1}},
		{"ByteBrain w/o JIT", core.Options{Seed: cfg.Seed, Parallelism: 1, LinearMatch: true}},
		{"ByteBrain", core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism}},
	}
	for _, v := range variants {
		row := []string{v.name}
		var valid []float64
		for _, ds := range datasets {
			r, err := runByteBrain(ds, v.opts, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			row = append(row, sci(r.Throughput))
			valid = append(valid, r.Throughput)
		}
		mean, _ := metrics.MeanStd(valid)
		row = append(row, sci(mean))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 reproduces the runtime-scaling figure: ByteBrain running time as
// log volume grows, per dataset; near-linear growth is the target shape.
func Fig7(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "fig7",
		Title:  "Running time vs. number of logs",
		Note:   "Each dataset is generated at 1×, 2×, 4× and 8× the base cut; the time ratio column shows runtime growth per volume doubling (≈2 ⇒ linear).",
		Header: []string{"Dataset", "Logs", "Time (s)", "Ratio vs prev"},
	}
	for _, name := range []string{"Apache", "Zookeeper", "HealthApp", "BGL", "HDFS", "Thunderbird"} {
		prev := 0.0
		for _, mult := range []float64{1, 2, 4, 8} {
			ds, err := datagen.LogHub2(name, cfg.Scale*mult, cfg.Seed)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			r, err := runByteBrain(ds, core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism}, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			_ = r
			secs := time.Since(start).Seconds()
			ratio := "-"
			if prev > 0 {
				ratio = f2(secs / prev)
			}
			t.Rows = append(t.Rows, []string{name, strconv.Itoa(len(ds.Lines)), f3(secs), ratio})
			prev = secs
		}
	}
	return t, nil
}

// Fig12 reproduces the parallelism-scaling figure: throughput at worker
// counts 1–16 per dataset.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	workers := []int{1, 2, 4, 8, 16}
	header := []string{"Dataset"}
	for _, w := range workers {
		header = append(header, fmt.Sprintf("p=%d", w))
	}
	t := &Table{
		ID:     "fig12",
		Title:  "Throughput (logs/s) vs. parallelism on LogHub-2.0",
		Note:   "Larger datasets benefit more; small ones plateau early, as in the paper.",
		Header: header,
	}
	for _, name := range []string{"Apache", "Zookeeper", "HealthApp", "BGL", "HDFS", "Thunderbird"} {
		ds, err := datagen.LogHub2(name, cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, w := range workers {
			r, err := runByteBrain(ds, core.Options{Seed: cfg.Seed, Parallelism: w}, cfg.Threshold)
			if err != nil {
				return nil, err
			}
			row = append(row, sci(r.Throughput))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
