package experiments

import (
	"fmt"
	"strconv"
	"time"

	"bytebrain/internal/baselines"
	"bytebrain/internal/core"
	"bytebrain/internal/datagen"
	"bytebrain/internal/metrics"
	"bytebrain/internal/service"
)

// Table1 reproduces the dataset-statistics table: per dataset, the
// generated LogHub cut and the (scaled) LogHub-2.0 cut, with the paper's
// full template counts preserved exactly.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "table1",
		Title:  "LogHub and LogHub-2.0 dataset statistics (simulated)",
		Note:   fmt.Sprintf("LogHub-2.0 cuts generated at scale %.4f of the Table-1 volumes; template counts are the paper's exactly.", cfg.Scale),
		Header: []string{"Dataset", "LH #Logs", "LH Size", "LH #Templates", "LH2 #Logs (scaled)", "LH2 Size", "LH2 #Templates", "LH2 #Logs (paper)"},
	}
	for _, name := range datagen.Names() {
		lh, err := datagen.LogHub(name, cfg.Seed)
		if err != nil {
			return nil, err
		}
		lhT, lh2T := datagen.TemplateCounts(name)
		row := []string{
			name,
			strconv.Itoa(len(lh.Lines)),
			fmt.Sprintf("%.1f KB", float64(lh.Bytes)/1024),
			strconv.Itoa(lhT),
		}
		if full := datagen.FullLogHub2Lines(name); full > 0 {
			lh2, err := datagen.LogHub2(name, cfg.Scale, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row,
				strconv.Itoa(len(lh2.Lines)),
				fmt.Sprintf("%.1f MB", float64(lh2.Bytes)/1024/1024),
				strconv.Itoa(lh2T),
				strconv.Itoa(full))
		} else {
			row = append(row, "-", "-", "-", "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// gaSuite runs every parser over a set of datasets, returning GA per
// (method, dataset) plus the method averages.
func gaSuite(cfg Config, gen func(name string) (*datagen.Dataset, error), names []string) (*Table, map[string][]float64, error) {
	t := &Table{Header: append([]string{"Method"}, append(append([]string{}, names...), "Average")...)}
	perMethod := map[string][]float64{}

	addRow := func(method string, gas []float64, dnf []bool) {
		row := []string{method}
		var valid []float64
		for i, ga := range gas {
			if dnf != nil && dnf[i] {
				row = append(row, "DNF")
				continue
			}
			row = append(row, f2(ga))
			valid = append(valid, ga)
		}
		mean, std := metrics.MeanStd(valid)
		row = append(row, fmt.Sprintf("%.2f ± %.2f", mean, std))
		t.Rows = append(t.Rows, row)
		perMethod[method] = valid
	}

	datasets := make([]*datagen.Dataset, len(names))
	for i, n := range names {
		ds, err := gen(n)
		if err != nil {
			return nil, nil, err
		}
		datasets[i] = ds
	}

	for _, f := range baselines.AllFactories() {
		gas := make([]float64, len(names))
		dnf := make([]bool, len(names))
		for i, ds := range datasets {
			r := runBaseline(f.New(), ds, cfg)
			gas[i], dnf[i] = r.GA, r.DNF
		}
		addRow(f.Name, gas, dnf)
	}

	gas := make([]float64, len(names))
	for i, ds := range datasets {
		r, err := runByteBrain(ds, core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism}, cfg.Threshold)
		if err != nil {
			return nil, nil, err
		}
		gas[i] = r.GA
	}
	addRow("ByteBrain", gas, nil)
	return t, perMethod, nil
}

// Table2 reproduces the LogHub grouping-accuracy comparison.
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t, _, err := gaSuite(cfg, func(name string) (*datagen.Dataset, error) {
		return datagen.LogHub(name, cfg.Seed)
	}, datagen.Names())
	if err != nil {
		return nil, err
	}
	t.ID = "table2"
	t.Title = "Group accuracy on LogHub (16 × 2000 labeled logs)"
	t.Note = fmt.Sprintf("ByteBrain evaluated at saturation threshold %.2f.", cfg.Threshold)
	return t, nil
}

// Table3 reproduces the LogHub-2.0 grouping-accuracy comparison on the
// scaled cuts.
func Table3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t, _, err := gaSuite(cfg, func(name string) (*datagen.Dataset, error) {
		return datagen.LogHub2(name, cfg.Scale, cfg.Seed)
	}, datagen.LogHub2Names())
	if err != nil {
		return nil, err
	}
	t.ID = "table3"
	t.Title = "Group accuracy on LogHub-2.0 (scaled cuts)"
	t.Note = fmt.Sprintf("Volume scale %.4f of Table-1; DNF marks parsers exceeding the %s per-dataset budget (the paper's blank cells).", cfg.Scale, cfg.Timeout)
	return t, nil
}

// Table4 reproduces the threshold-adaptivity table: Android wakelock
// templates at increasing saturation thresholds.
func Table4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	ds, err := datagen.LogHub("Android", cfg.Seed)
	if err != nil {
		return nil, err
	}
	p := core.New(core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism})
	res, err := p.Train(ds.Lines)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table4",
		Title:  "Wakelock templates at varying saturation thresholds (Android)",
		Note:   "One trained model; rows list the distinct wakelock templates visible at each threshold — the paper's coarse-to-fine progression.",
		Header: []string{"Threshold", "#Wakelock templates", "Examples"},
	}
	for _, th := range []float64{0.05, 0.78, 0.9, 0.95} {
		var texts []string
		for _, n := range res.Model.TemplatesAtThreshold(th) {
			text := n.Text()
			if contains(text, "lock") {
				texts = append(texts, text)
			}
		}
		examples := ""
		for i, x := range texts {
			if i >= 2 {
				break
			}
			if i > 0 {
				examples += " ⏐ "
			}
			examples += x
		}
		t.Rows = append(t.Rows, []string{f2(th), strconv.Itoa(len(texts)), examples})
	}
	return t, nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Table5 reproduces the industrial evaluation: five production-like topics
// streamed through the real service pipeline, reporting ingestion volume,
// model size, and training time.
func Table5(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "table5",
		Title:  "Industrial-style evaluation on production-like topics",
		Note:   "Synthetic stand-ins for the paper's private TLS topics (see DESIGN.md §3); each streams through ingest → dedup → train → serialize.",
		Header: []string{"Topic scenario", "Log volume", "Model size", "Training time"},
	}
	scenarios := []struct {
		name    string
		dataset string
		lines   int
	}{
		{"Text stream processing", "Spark", 60000},
		{"Webserver access log (large)", "Apache", 40000},
		{"Webserver access log (small)", "Apache", 15000},
		{"Go HTTP API server", "Zookeeper", 12000},
		{"Go search server", "HDFS", 10000},
	}
	for i, sc := range scenarios {
		full := datagen.FullLogHub2Lines(sc.dataset)
		ds, err := datagen.LogHub2(sc.dataset, float64(sc.lines)/float64(full), cfg.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		svc := service.New(service.Config{
			Parser:      core.Options{Seed: cfg.Seed, Parallelism: cfg.Parallelism},
			TrainVolume: 1 << 30,
		})
		topic := fmt.Sprintf("topic-%d", i)
		if err := svc.CreateTopic(topic); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := svc.Ingest(topic, ds.Lines); err != nil {
			return nil, err
		}
		ingestTime := time.Since(start)
		start = time.Now()
		if err := svc.Train(topic); err != nil {
			return nil, err
		}
		trainTime := time.Since(start)
		stats, err := svc.TopicStats(topic)
		if err != nil {
			return nil, err
		}
		mbps := float64(stats.Bytes) / 1024 / 1024 / ingestTime.Seconds()
		t.Rows = append(t.Rows, []string{
			sc.name,
			fmt.Sprintf("%.1f MB/s", mbps),
			fmt.Sprintf("%.2f MB", float64(stats.ModelBytes)/1024/1024),
			fmt.Sprintf("%.2fs", trainTime.Seconds()),
		})
	}
	return t, nil
}
