package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NoParent marks a root node's Parent field.
const NoParent uint64 = 0

// Node is one template in the clustering forest. Node metadata — template
// text, saturation, parent link — is exactly what the paper persists to the
// internal topic; per-position token statistics are deliberately not stored
// (§4.8: text-based matching keeps the model small).
type Node struct {
	// ID is unique within a model and stable across merges. IDs start
	// at 1; 0 means "no node".
	ID uint64
	// Parent is the ID of the parent node, or NoParent for roots.
	Parent uint64
	// Template is the token sequence with Wildcard at variable
	// positions.
	Template []string
	// Saturation is the precision score of this template, in [0,1],
	// non-decreasing from root to leaf.
	Saturation float64
	// Depth is the distance from the group root.
	Depth int
	// Count is the number of distinct training logs under this node.
	Count int
	// Weight is the duplicate-weighted training log count.
	Weight int
	// Temporary marks nodes inserted by online matching for logs unseen
	// in training; they are reconsidered at the next training cycle.
	Temporary bool
}

// Text renders the template as a single-spaced string.
func (n *Node) Text() string { return strings.Join(n.Template, " ") }

// Model is a trained clustering forest plus the bookkeeping needed to merge
// future training cycles into it.
type Model struct {
	// Nodes holds every template node keyed by ID.
	Nodes map[uint64]*Node
	// NextID is the next unassigned node ID.
	NextID uint64
	// Aliases forwards IDs of nodes dropped during model merging
	// (temporary templates replaced by retrained ones) to their
	// replacement, so records stored with the old ID stay queryable.
	Aliases map[uint64]uint64

	children map[uint64][]uint64
	roots    []uint64
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{Nodes: make(map[uint64]*Node), NextID: 1, Aliases: make(map[uint64]uint64)}
}

// Resolve follows alias forwarding to the live node ID for id (identity
// for live IDs).
func (m *Model) Resolve(id uint64) uint64 {
	for i := 0; i < 8; i++ { // alias chains are short; bound defensively
		next, ok := m.Aliases[id]
		if !ok {
			return id
		}
		id = next
	}
	return id
}

// addNode inserts n (which must already carry a fresh ID) and indexes it.
func (m *Model) addNode(n *Node) {
	m.Nodes[n.ID] = n
	if m.children == nil {
		m.children = make(map[uint64][]uint64)
	}
	if n.Parent == NoParent {
		m.roots = append(m.roots, n.ID)
	} else {
		m.children[n.Parent] = append(m.children[n.Parent], n.ID)
	}
}

// newID allocates the next node ID.
func (m *Model) newID() uint64 {
	id := m.NextID
	m.NextID++
	return id
}

// reindex rebuilds the children/roots indexes from Nodes, e.g. after
// deserialization.
func (m *Model) reindex() {
	m.children = make(map[uint64][]uint64, len(m.Nodes))
	m.roots = m.roots[:0]
	ids := make([]uint64, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := m.Nodes[id]
		if n.Parent == NoParent {
			m.roots = append(m.roots, id)
		} else {
			m.children[n.Parent] = append(m.children[n.Parent], id)
		}
	}
}

// Roots returns the root node IDs in ascending order.
func (m *Model) Roots() []uint64 {
	out := make([]uint64, len(m.roots))
	copy(out, m.roots)
	return out
}

// Children returns the child IDs of id in ascending order.
func (m *Model) Children(id uint64) []uint64 {
	out := make([]uint64, len(m.children[id]))
	copy(out, m.children[id])
	return out
}

// Len returns the number of nodes.
func (m *Model) Len() int { return len(m.Nodes) }

// Leaves returns the IDs of nodes without children, ascending.
func (m *Model) Leaves() []uint64 {
	var out []uint64
	for id := range m.Nodes {
		if len(m.children[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TemplateAt walks from the node id toward the root and returns the
// coarsest ancestor whose saturation still meets threshold — the query-time
// precision control of §3. If even id itself falls below the threshold, id
// is returned: it is the most precise template available.
func (m *Model) TemplateAt(id uint64, threshold float64) (*Node, error) {
	n, ok := m.Nodes[m.Resolve(id)]
	if !ok {
		return nil, fmt.Errorf("core: node %d not in model", id)
	}
	best := n
	for n.Parent != NoParent {
		parent, ok := m.Nodes[n.Parent]
		if !ok {
			break
		}
		if parent.Saturation >= threshold {
			best = parent
		}
		n = parent
	}
	return best, nil
}

// Ancestry returns the path from the group root down to id, inclusive.
func (m *Model) Ancestry(id uint64) ([]*Node, error) {
	n, ok := m.Nodes[m.Resolve(id)]
	if !ok {
		return nil, fmt.Errorf("core: node %d not in model", id)
	}
	var rev []*Node
	for {
		rev = append(rev, n)
		if n.Parent == NoParent {
			break
		}
		parent, ok := m.Nodes[n.Parent]
		if !ok {
			return nil, fmt.Errorf("core: node %d has dangling parent %d", n.ID, n.Parent)
		}
		n = parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// TemplatesAtThreshold returns, for every root-reachable subtree, the
// shallowest nodes whose saturation meets threshold — the template set a
// user sees at a given precision slider position. Results are ordered by
// descending weight, then ID.
func (m *Model) TemplatesAtThreshold(threshold float64) []*Node {
	var out []*Node
	var walk func(id uint64)
	walk = func(id uint64) {
		n := m.Nodes[id]
		if n.Saturation >= threshold {
			out = append(out, n)
			return
		}
		kids := m.children[id]
		if len(kids) == 0 {
			out = append(out, n)
			return
		}
		for _, c := range kids {
			walk(c)
		}
	}
	for _, r := range m.roots {
		walk(r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// modelWire is the gob wire format: a flat node list.
type modelWire struct {
	Nodes   []*Node
	NextID  uint64
	Aliases map[uint64]uint64
}

// MarshalBinary serializes the model (encoding.BinaryMarshaler).
func (m *Model) MarshalBinary() ([]byte, error) {
	w := modelWire{NextID: m.NextID, Aliases: m.Aliases, Nodes: make([]*Node, 0, len(m.Nodes))}
	ids := make([]uint64, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w.Nodes = append(w.Nodes, m.Nodes[id])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("core: encode model: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary deserializes a model produced by MarshalBinary
// (encoding.BinaryUnmarshaler).
func (m *Model) UnmarshalBinary(data []byte) error {
	var w modelWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("core: decode model: %w", err)
	}
	m.Nodes = make(map[uint64]*Node, len(w.Nodes))
	for _, n := range w.Nodes {
		if n == nil || n.ID == 0 {
			return errors.New("core: decode model: invalid node")
		}
		m.Nodes[n.ID] = n
	}
	m.NextID = w.NextID
	if m.NextID == 0 {
		m.NextID = 1
	}
	m.Aliases = w.Aliases
	if m.Aliases == nil {
		m.Aliases = make(map[uint64]uint64)
	}
	m.reindex()
	return nil
}

// SizeBytes returns the serialized model size; the storage-cost figure the
// paper reports in Table 5.
func (m *Model) SizeBytes() (int, error) {
	b, err := m.MarshalBinary()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// Validate checks structural invariants: parent links resolve, saturations
// lie in [0,1] and do not decrease from parent to child, and depths are
// consistent. It is used by tests and by the service before activating a
// freshly merged model.
func (m *Model) Validate() error {
	for id, n := range m.Nodes {
		if id != n.ID {
			return fmt.Errorf("core: node keyed %d has ID %d", id, n.ID)
		}
		if n.Saturation < 0 || n.Saturation > 1+1e-9 {
			return fmt.Errorf("core: node %d saturation %v out of range", id, n.Saturation)
		}
		if n.Parent != NoParent {
			p, ok := m.Nodes[n.Parent]
			if !ok {
				return fmt.Errorf("core: node %d parent %d missing", id, n.Parent)
			}
			if n.Saturation+1e-9 < p.Saturation {
				return fmt.Errorf("core: node %d saturation %v below parent %v", id, n.Saturation, p.Saturation)
			}
			if n.Depth != p.Depth+1 {
				return fmt.Errorf("core: node %d depth %d, parent depth %d", id, n.Depth, p.Depth)
			}
		} else if n.Depth != 0 {
			return fmt.Errorf("core: root %d has depth %d", id, n.Depth)
		}
	}
	return nil
}
