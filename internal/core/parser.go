package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"

	"bytebrain/internal/dedup"
	"bytebrain/internal/encode"
	"bytebrain/internal/grouping"
	"bytebrain/internal/vars"
)

// Parser runs offline training. Construct with New; a Parser is immutable
// and safe for concurrent use.
type Parser struct {
	opts Options
}

// New returns a Parser configured by opts (zero-value fields take
// production defaults; see Options).
func New(opts Options) *Parser {
	return &Parser{opts: opts.withDefaults()}
}

// Options returns the effective (defaulted) options.
func (p *Parser) Options() Options { return p.opts }

// TrainResult is the outcome of one training cycle.
type TrainResult struct {
	// Model is the trained clustering forest.
	Model *Model
	// Assign maps each input line index to the ID of the most precise
	// node (leaf) it was clustered into. This is the assignment the
	// "w/ naive match" ablation evaluates directly.
	Assign []uint64
}

// Train clusters lines into a fresh model (§4.1–§4.7).
func (p *Parser) Train(lines []string) (*TrainResult, error) {
	if len(lines) == 0 {
		return &TrainResult{Model: NewModel()}, nil
	}

	// Deduplicate raw lines before preprocessing: the regex-based
	// variable replacement is the most expensive stage, and real streams
	// repeat heavily (§4.1.3), so it should run once per distinct line.
	// A second dedup pass after replacement merges lines that differed
	// only in replaced variables.
	rawLines := lines
	var rawWeight []int
	ref := make([]int, len(lines))
	if !p.opts.NoDedup {
		firstAt := make(map[string]int, len(lines)/4+1)
		rawLines = rawLines[:0:0]
		for i, l := range lines {
			d, ok := firstAt[l]
			if !ok {
				d = len(rawLines)
				firstAt[l] = d
				rawLines = append(rawLines, l)
				rawWeight = append(rawWeight, 0)
			}
			rawWeight[d]++
			ref[i] = d
		}
	} else {
		for i := range ref {
			ref[i] = i
		}
	}

	records := p.preprocess(rawLines)

	var enc encode.Encoder = encode.HashEncoder{}
	if p.opts.OrdinalEncoding {
		enc = encode.NewOrdinalEncoder()
	}
	var dd dedup.Result
	if p.opts.NoDedup {
		dd = dedup.Passthrough(records, enc)
	} else {
		dd = dedup.CollapseWeighted(records, rawWeight, enc)
	}

	groups := grouping.Split(dd.Uniques, p.opts.PrefixLen)

	trees := make([]*bnode, len(groups))
	p.forEach(len(groups), func(gi int) {
		g := groups[gi]
		seed := p.opts.Seed ^ int64(encode.Hash64(groupSeedKey(g.Key)))
		rng := rand.New(rand.NewSource(seed))
		trees[gi] = buildTree(g.Records, &p.opts, rng)
	})

	model := NewModel()
	leafOf := make(map[*dedup.Unique]uint64, len(dd.Uniques))
	for _, t := range trees {
		flatten(model, t, NoParent, leafOf)
	}

	assign := make([]uint64, len(lines))
	for i := range lines {
		assign[i] = leafOf[dd.Uniques[dd.Assign[ref[i]]]]
	}
	return &TrainResult{Model: model, Assign: assign}, nil
}

// TrainMerge trains on lines and merges the result into prev (§3: "the
// newly trained model is merged with the previous one"), returning a new
// model; prev is not modified. Temporary nodes in prev are dropped — their
// logs are expected to be part of lines and are re-learned properly.
func (p *Parser) TrainMerge(prev *Model, lines []string) (*TrainResult, error) {
	res, err := p.Train(lines)
	if err != nil {
		return nil, err
	}
	if prev == nil || prev.Len() == 0 {
		return res, nil
	}
	merged, remap, err := MergeModels(prev, res.Model, p.opts.MergeThreshold)
	if err != nil {
		return nil, err
	}
	for i, id := range res.Assign {
		if id != 0 {
			res.Assign[i] = remap[id]
		}
	}
	res.Model = merged
	return res, nil
}

// preprocess applies variable replacement and tokenization to every line,
// in parallel.
func (p *Parser) preprocess(lines []string) [][]string {
	records := make([][]string, len(lines))
	p.forEachChunk(len(lines), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			records[i] = p.PreprocessLine(lines[i])
		}
	})
	return records
}

// PreprocessLine applies the configured variable replacement and
// tokenization to one raw line. Online matching must use the identical
// preprocessing as training; Matcher does so via this method. Replaced
// variables are carried through tokenization with a token-safe sentinel
// and canonicalized to the Wildcard token.
func (p *Parser) PreprocessLine(line string) []string {
	tokens := p.opts.Tokenizer.Tokenize(p.opts.Replacer.ReplaceTokenSafe(line))
	return vars.CanonicalizeTokens(tokens)
}

// appendTokenizer is the optional buffer-reusing surface of a tokenizer;
// tokenize.Fast implements it.
type appendTokenizer interface {
	TokenizeAppend(dst []string, line string) []string
}

// PreprocessLineAppend is PreprocessLine writing tokens into dst (reused
// like append), so a hot loop can preprocess many lines with one token
// buffer. Only the appended tail is canonicalized — any pre-existing dst
// prefix is left untouched, exactly like append. The returned tokens
// must not be retained across the buffer's next reuse — MatchTokens
// already copies before retaining. Tokenizers without TokenizeAppend
// fall back to the allocating path.
func (p *Parser) PreprocessLineAppend(dst []string, line string) []string {
	at, ok := p.opts.Tokenizer.(appendTokenizer)
	if !ok {
		return append(dst, p.PreprocessLine(line)...)
	}
	tokens := at.TokenizeAppend(dst, p.opts.Replacer.ReplaceTokenSafe(line))
	vars.CanonicalizeTokens(tokens[len(dst):])
	return tokens
}

// forEach runs fn(i) for i in [0,n) on up to Parallelism workers.
func (p *Parser) forEach(n int, fn func(i int)) {
	workers := p.workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forEachChunk splits [0,n) into contiguous chunks across workers.
func (p *Parser) forEachChunk(n int, fn func(lo, hi int)) {
	workers := p.workers(n)
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (p *Parser) workers(n int) int {
	w := p.opts.Parallelism
	if w > n {
		w = n
	}
	if max := runtime.NumCPU(); w > max*2 {
		w = max * 2
	}
	if w < 1 {
		w = 1
	}
	return w
}

// groupSeedKey derives a stable per-group seed component.
func groupSeedKey(k grouping.Key) string {
	return string(rune(k.Length)) + "\x1f" + k.Prefix
}

// flatten assigns IDs to a built tree and inserts its nodes into the model,
// recording the leaf each unique record belongs to.
func flatten(m *Model, b *bnode, parent uint64, leafOf map[*dedup.Unique]uint64) uint64 {
	id := m.newID()
	n := &Node{
		ID:         id,
		Parent:     parent,
		Template:   b.template,
		Saturation: b.saturation,
		Depth:      b.depth,
		Count:      len(b.members),
		Weight:     b.weight,
	}
	m.addNode(n)
	if len(b.children) == 0 {
		for _, u := range b.members {
			leafOf[u] = id
		}
		return id
	}
	for _, c := range b.children {
		flatten(m, c, id, leafOf)
	}
	return id
}

// ErrEmptyModel is returned when a matcher is requested for a model with no
// nodes.
var ErrEmptyModel = errors.New("core: model has no templates")
