package core

import (
	"fmt"
	"sort"
)

// MergeModels folds the freshly trained next model into prev, implementing
// the periodic retraining rule of §3: templates whose similarity to an
// existing template meets threshold are merged (the existing node absorbs
// the new one's counts, and their children merge recursively); templates
// below the threshold are attached as new child nodes. Temporary nodes in
// prev are dropped — their logs were part of the retraining input.
//
// MergeModels returns the merged model (prev and next are not modified) and
// a remap from next-model node IDs to merged-model node IDs.
func MergeModels(prev, next *Model, threshold float64) (*Model, map[uint64]uint64, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, nil, fmt.Errorf("core: merge threshold %v out of (0,1]", threshold)
	}
	merged := NewModel()
	merged.NextID = prev.NextID
	for id, to := range prev.Aliases {
		merged.Aliases[id] = to
	}

	// Copy prev, skipping temporary nodes (and any subtree under them —
	// temporaries are always leaves, but be defensive).
	dropped := make(map[uint64]bool)
	for _, id := range sortedIDs(prev) {
		n := prev.Nodes[id]
		if n.Temporary || dropped[n.Parent] {
			dropped[id] = true
			continue
		}
		merged.addNode(cloneNode(n))
	}

	remap := make(map[uint64]uint64, next.Len())
	for _, rootID := range next.Roots() {
		nr := next.Nodes[rootID]
		target := findRoot(merged, nr)
		if target == nil {
			graft(merged, next, rootID, NoParent, 0, remap)
			continue
		}
		mergeInto(merged, next, target.ID, rootID, threshold, remap)
	}

	// Forward dropped temporary IDs to their retrained replacement, so
	// records stored under the temporary ID stay queryable. Temporaries
	// with no replacement (their logs were sampled out of the training
	// buffer) are kept instead of dropped.
	for id := range dropped {
		temp := prev.Nodes[id]
		if target := bestMatchNode(merged, temp.Template); target != 0 {
			merged.Aliases[id] = target
		} else {
			kept := cloneNode(temp)
			kept.Parent = NoParent
			kept.Depth = 0
			merged.addNode(kept)
		}
	}
	if err := merged.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: merged model invalid: %w", err)
	}
	return merged, remap, nil
}

// bestMatchNode finds the node whose template matches tokens (template
// wildcards match anything), preferring higher saturation then depth; 0
// when none match.
func bestMatchNode(m *Model, tokens []string) uint64 {
	var best *Node
	for _, n := range m.Nodes {
		if len(n.Template) != len(tokens) {
			continue
		}
		ok := true
		for i, t := range n.Template {
			if t != Wildcard && t != tokens[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || n.Saturation > best.Saturation ||
			(n.Saturation == best.Saturation && n.Depth > best.Depth) ||
			(n.Saturation == best.Saturation && n.Depth == best.Depth && n.ID < best.ID) {
			best = n
		}
	}
	if best == nil {
		return 0
	}
	return best.ID
}

// mergeInto merges the next-model node srcID (and its subtree) into the
// merged-model node dstID. Counts always flow into dst and dst's template
// widens to cover src. Src's refinement content then routes down: its
// children (or src itself, when it is a leaf carrying a template
// dissimilar to dst) merge into the best-matching existing child above the
// similarity threshold, or graft as new children — the §3 rule "templates
// with similarity scores above a given threshold are merged; otherwise,
// they remain separate child nodes".
func mergeInto(merged, next *Model, dstID, srcID uint64, threshold float64, remap map[uint64]uint64) {
	dst := merged.Nodes[dstID]
	src := next.Nodes[srcID]
	remap[srcID] = dstID
	dst.Count += src.Count
	dst.Weight += src.Weight
	sim := TemplateSimilarity(dst.Template, src.Template)
	similar := sim >= threshold
	// Widen the template: positions that disagree become wildcards, so
	// the merged template matches everything both templates matched.
	for i := range dst.Template {
		if i < len(src.Template) && dst.Template[i] != src.Template[i] {
			dst.Template[i] = Wildcard
		}
	}
	if !similar && dst.Saturation > sim {
		// Dst now contains structurally different content: it is a
		// container, not a resolved template, and query rollup must not
		// stop at it. Its precision drops to the observed similarity.
		dst.Saturation = sim
	}
	srcChildren := next.Children(srcID)
	if len(srcChildren) == 0 && !similar {
		// Src is a refined template that does not belong to dst itself
		// (dst is its length-group container): route it one level down.
		best, bestSim := uint64(0), -1.0
		for _, existingID := range merged.Children(dstID) {
			existing := merged.Nodes[existingID]
			if sim := TemplateSimilarity(existing.Template, src.Template); sim > bestSim {
				bestSim, best = sim, existingID
			}
		}
		if best != 0 && bestSim >= threshold {
			mergeInto(merged, next, best, srcID, threshold, remap)
		} else {
			graft(merged, next, srcID, dstID, dst.Depth+1, remap)
		}
		return
	}
	for _, childID := range srcChildren {
		child := next.Nodes[childID]
		best, bestSim := uint64(0), -1.0
		for _, existingID := range merged.Children(dstID) {
			existing := merged.Nodes[existingID]
			sim := TemplateSimilarity(existing.Template, child.Template)
			if sim > bestSim {
				bestSim, best = sim, existingID
			}
		}
		if best != 0 && bestSim >= threshold {
			mergeInto(merged, next, best, childID, threshold, remap)
		} else {
			graft(merged, next, childID, dstID, merged.Nodes[dstID].Depth+1, remap)
		}
	}
}

// graft copies the subtree rooted at srcID from next into merged under
// parent, allocating fresh IDs and recording them in remap.
func graft(merged, next *Model, srcID, parent uint64, depth int, remap map[uint64]uint64) {
	src := next.Nodes[srcID]
	n := cloneNode(src)
	n.ID = merged.newID()
	n.Parent = parent
	n.Depth = depth
	if parent != NoParent {
		if p := merged.Nodes[parent]; n.Saturation < p.Saturation {
			n.Saturation = p.Saturation
		}
	}
	merged.addNode(n)
	remap[srcID] = n.ID
	for _, childID := range next.Children(srcID) {
		graft(merged, next, childID, n.ID, depth+1, remap)
	}
}

// findRoot locates the merged-model root for the same initial group as n:
// same template length, best template similarity among candidates. (With
// the default PrefixLen of 0 there is at most one root per length; with a
// prefix, similarity separates the prefix groups.)
func findRoot(m *Model, n *Node) *Node {
	var best *Node
	bestSim := -1.0
	for _, rid := range m.roots {
		r := m.Nodes[rid]
		if len(r.Template) != len(n.Template) {
			continue
		}
		if sim := TemplateSimilarity(r.Template, n.Template); sim > bestSim {
			bestSim, best = sim, r
		}
	}
	return best
}

// TemplateSimilarity scores two equal-length templates in [0,1]: the
// fraction of positions that agree, where a wildcard agrees with anything.
// Different lengths score 0.
func TemplateSimilarity(a, b []string) float64 {
	if len(a) != len(b) {
		return 0
	}
	if len(a) == 0 {
		return 1
	}
	match := 0
	for i := range a {
		if a[i] == b[i] || a[i] == Wildcard || b[i] == Wildcard {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

func cloneNode(n *Node) *Node {
	c := *n
	c.Template = make([]string, len(n.Template))
	copy(c.Template, n.Template)
	return &c
}

func sortedIDs(m *Model) []uint64 {
	ids := make([]uint64, 0, len(m.Nodes))
	for id := range m.Nodes {
		ids = append(ids, id)
	}
	// Parents were always allocated before children, so ascending ID
	// order guarantees parents are visited first.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
