// Package core implements the ByteBrain hierarchical-clustering log parser:
// offline training (§4.1–§4.7 of the paper), the clustering-tree model, and
// online matching (§4.8).
//
// The offline pipeline is
//
//	raw lines → variable replacement → tokenization → hash encoding →
//	deduplication → initial grouping → per-group hierarchical clustering
//
// producing a forest of template nodes whose saturation score increases
// with depth. Query-time precision control walks node ancestry against a
// user threshold; online matching compares logs against template text in
// descending saturation order.
package core

import (
	"bytebrain/internal/tokenize"
	"bytebrain/internal/vars"
)

// Wildcard is the template placeholder for a variable position. It is
// shared with the variable replacer so replaced variables and discovered
// variables render identically.
const Wildcard = vars.Wildcard

// Options configures a Parser. The zero value is usable: every field has a
// production default, and the No*/Random* flags exist to reproduce the
// paper's ablation variants (Fig. 8 and Fig. 9).
type Options struct {
	// Tokenizer splits preprocessed lines into tokens. Defaults to the
	// fast Listing-1 scanner.
	Tokenizer tokenize.Tokenizer
	// Replacer rewrites obvious variables before tokenization. Defaults
	// to vars.Default(). Use vars.None() to disable.
	Replacer *vars.Replacer
	// PrefixLen is the k of initial grouping: logs whose first k tokens
	// differ are split into different groups. Default 0, as in the paper.
	PrefixLen int
	// Seed drives every randomized choice (centroid seeding, balanced
	// tie-breaking). Training is deterministic for a fixed seed.
	Seed int64
	// Parallelism bounds worker goroutines in training and batch
	// matching. Default 4, mirroring the paper's 1–5 core production
	// budget. Set 1 for the "ByteBrain Sequential" variant.
	Parallelism int
	// MaxDepth caps clustering-tree depth as a safety valve. Default 48.
	MaxDepth int
	// MaxIters caps reassignment iterations in one clustering process.
	// Default 12.
	MaxIters int
	// MergeThreshold is the template similarity above which retrained
	// templates merge into existing nodes (§3, model merging). Default
	// 0.8.
	MergeThreshold float64

	// Ablation switches. Each one disables exactly one proposed
	// technique, matching the variant names in §5.4.

	// NoVariableSaturation sets s(C) = f_c (drops the variable term).
	NoVariableSaturation bool
	// NoPositionImportance sets w_i = 1 in the positional similarity.
	NoPositionImportance bool
	// NoConfidenceFactor sets s(C) = f_v·f_c (drops p_c).
	NoConfidenceFactor bool
	// RandomCentroids picks both initial centroids uniformly instead of
	// the K-means++ farthest-point rule.
	RandomCentroids bool
	// NoEnsureSaturationIncrease never injects extra clusters when a
	// split fails to improve saturation.
	NoEnsureSaturationIncrease bool
	// NoBalancedGrouping breaks similarity ties by first cluster instead
	// of uniformly at random.
	NoBalancedGrouping bool
	// NoEarlyStop disables the three §4.7 shortcuts.
	NoEarlyStop bool
	// NoDedup feeds the raw duplicated stream to clustering.
	NoDedup bool
	// OrdinalEncoding replaces hash encoding with a dictionary encoder.
	OrdinalEncoding bool
	// LinearMatch disables the (length, first-token) match index and
	// scans templates sequentially, as the pre-optimization matcher did.
	LinearMatch bool

	// SemanticHints enables the §8 future-work extension: a lightweight
	// token-type signal (digit-bearing, hex-like, path-like tokens)
	// lets a position be declared a variable with less statistical
	// evidence. It trades a little pure-syntax purity for faster
	// convergence on numeric variables in sparse groups — a first step
	// toward the hybrid syntax/semantic parser the paper sketches.
	SemanticHints bool
}

const (
	defaultParallelism    = 4
	defaultMaxDepth       = 48
	defaultMaxIters       = 12
	defaultMergeThreshold = 0.8
)

// withDefaults returns a copy of o with unset fields replaced by defaults.
func (o Options) withDefaults() Options {
	if o.Tokenizer == nil {
		o.Tokenizer = tokenize.NewFast()
	}
	if o.Replacer == nil {
		o.Replacer = vars.Default()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = defaultParallelism
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = defaultMaxDepth
	}
	if o.MaxIters <= 0 {
		o.MaxIters = defaultMaxIters
	}
	if o.MergeThreshold <= 0 {
		o.MergeThreshold = defaultMergeThreshold
	}
	return o
}
