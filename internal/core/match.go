package core

import (
	"sort"
	"sync"
)

// MatchResult reports where one log landed.
type MatchResult struct {
	// NodeID is the matched template node.
	NodeID uint64
	// Template is the matched template text.
	Template string
	// New is true when no trained template matched and the log was
	// inserted as a temporary singleton template.
	New bool
}

// Matcher performs online matching (§4.8): logs are matched directly
// against template text in descending saturation order, never by
// re-running distance computations over the tree. A Matcher is safe for
// concurrent use; temporary-template insertion is serialized internally.
type Matcher struct {
	parser *Parser
	model  *Model

	mu      sync.RWMutex
	order   map[uint64]int // node ID → global match priority (lower first)
	nextOrd int
	index   map[int]*lenBucket // token count → candidates
	linear  []*Node            // LinearMatch: all candidates in order
}

// lenBucket indexes the candidates of one token count by first token.
type lenBucket struct {
	byFirst   map[string][]*Node // first token constant
	wildFirst []*Node            // first token is the wildcard
}

// NewMatcher builds a matcher over model using the parser's preprocessing
// and options. The model is retained by reference: temporary templates are
// inserted into it.
func (p *Parser) NewMatcher(model *Model) (*Matcher, error) {
	if model == nil || model.Len() == 0 {
		return nil, ErrEmptyModel
	}
	m := &Matcher{
		parser: p,
		model:  model,
		order:  make(map[uint64]int, model.Len()),
		index:  make(map[int]*lenBucket),
	}
	// Candidate order: saturation descending, then depth descending
	// (more precise first among equals), then ID for determinism.
	nodes := make([]*Node, 0, model.Len())
	for _, n := range model.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Saturation != nodes[j].Saturation {
			return nodes[i].Saturation > nodes[j].Saturation
		}
		if nodes[i].Depth != nodes[j].Depth {
			return nodes[i].Depth > nodes[j].Depth
		}
		return nodes[i].ID < nodes[j].ID
	})
	for _, n := range nodes {
		m.insertLocked(n)
	}
	return m, nil
}

// Model returns the underlying model (including temporary insertions).
func (m *Matcher) Model() *Model { return m.model }

// insertLocked appends n at the current end of the priority order. Callers
// must hold mu (or be the constructor).
func (m *Matcher) insertLocked(n *Node) {
	m.order[n.ID] = m.nextOrd
	m.nextOrd++
	m.linear = append(m.linear, n)
	lb := m.index[len(n.Template)]
	if lb == nil {
		lb = &lenBucket{byFirst: make(map[string][]*Node)}
		m.index[len(n.Template)] = lb
	}
	// Empty templates and wildcard-first templates have no usable first
	// token; both live in the always-scanned list.
	if len(n.Template) == 0 || n.Template[0] == Wildcard {
		lb.wildFirst = append(lb.wildFirst, n)
	} else {
		lb.byFirst[n.Template[0]] = append(lb.byFirst[n.Template[0]], n)
	}
}

// Match parses one raw line: preprocess, match against templates, and — on
// a miss — insert the log itself as a temporary template (§3, Online
// Matching).
func (m *Matcher) Match(line string) MatchResult {
	tokens := m.parser.PreprocessLine(line)
	return m.MatchTokens(tokens)
}

// MatchTokens matches an already-preprocessed token sequence.
func (m *Matcher) MatchTokens(tokens []string) MatchResult {
	m.mu.RLock()
	n := m.lookup(tokens)
	m.mu.RUnlock()
	if n != nil {
		return MatchResult{NodeID: n.ID, Template: n.Text()}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Re-check: another goroutine may have inserted the same template.
	if n := m.lookup(tokens); n != nil {
		return MatchResult{NodeID: n.ID, Template: n.Text()}
	}
	node := m.insertTemporaryLocked(tokens)
	return MatchResult{NodeID: node.ID, Template: node.Text(), New: true}
}

// lookup returns the highest-priority matching node, or nil. Callers must
// hold mu (read or write).
func (m *Matcher) lookup(tokens []string) *Node {
	if m.parser.opts.LinearMatch {
		for _, n := range m.linear {
			if len(n.Template) == len(tokens) && templateMatches(n.Template, tokens) {
				return n
			}
		}
		return nil
	}
	lb := m.index[len(tokens)]
	if lb == nil {
		return nil
	}
	var exact []*Node
	if len(tokens) > 0 {
		exact = lb.byFirst[tokens[0]]
	}
	wild := lb.wildFirst
	// Merge the two priority-sorted candidate lists.
	i, j := 0, 0
	for i < len(exact) || j < len(wild) {
		var n *Node
		switch {
		case i >= len(exact):
			n, j = wild[j], j+1
		case j >= len(wild):
			n, i = exact[i], i+1
		case m.order[exact[i].ID] < m.order[wild[j].ID]:
			n, i = exact[i], i+1
		default:
			n, j = wild[j], j+1
		}
		if templateMatches(n.Template, tokens) {
			return n
		}
	}
	return nil
}

// insertTemporaryLocked adds tokens as a temporary singleton template. The
// lookup that precedes insertion already tried every node — roots included
// — so no existing subtree covers this log and the temporary becomes an
// individual root node, exactly the paper's "insert it into the clustering
// tree as an individual node". The next training cycle re-learns it
// properly (TrainMerge drops temporaries and forwards their IDs).
func (m *Matcher) insertTemporaryLocked(tokens []string) *Node {
	tmpl := make([]string, len(tokens))
	copy(tmpl, tokens)
	n := &Node{
		ID:         m.model.newID(),
		Parent:     NoParent,
		Template:   tmpl,
		Saturation: 1,
		Count:      1,
		Weight:     1,
		Temporary:  true,
	}
	m.model.addNode(n)
	m.insertLocked(n)
	return n
}

// MatchBatch matches lines on up to the parser's Parallelism workers and
// returns one result per line. Duplicate lines — the dominant case in
// real streams (§4.1.3, Fig. 4) — are preprocessed and matched once and
// the result fanned out, the same deduplication lever the training
// pipeline uses; it is the largest factor in the paper's efficiency
// ablation (Fig. 9).
func (m *Matcher) MatchBatch(lines []string) []MatchResult {
	out := make([]MatchResult, len(lines))
	// Collapse to distinct lines.
	firstAt := make(map[string]int, len(lines)/4+1)
	var distinct []string
	ref := make([]int, len(lines))
	for i, l := range lines {
		d, ok := firstAt[l]
		if !ok {
			d = len(distinct)
			firstAt[l] = d
			distinct = append(distinct, l)
		}
		ref[i] = d
	}
	results := make([]MatchResult, len(distinct))
	m.parser.forEachChunk(len(distinct), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = m.Match(distinct[i])
		}
	})
	for i := range lines {
		out[i] = results[ref[i]]
	}
	return out
}

// templateMatches reports whether tokens fit the template: equal length,
// and each template position either equals the log token or is the
// wildcard. Lengths must be pre-checked equal by the caller's bucketing;
// the check here keeps the linear path safe too.
func templateMatches(template, tokens []string) bool {
	if len(template) != len(tokens) {
		return false
	}
	for i, t := range template {
		if t != Wildcard && t != tokens[i] {
			return false
		}
	}
	return true
}
