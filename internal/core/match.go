package core

import (
	"fmt"
	"sort"
	"sync"
)

// MatchResult reports where one log landed.
type MatchResult struct {
	// NodeID is the matched template node.
	NodeID uint64
	// Template is the matched template text.
	Template string
	// New is true when no trained template matched and the log was
	// inserted as a temporary singleton template.
	New bool
}

// Matcher performs online matching (§4.8): logs are matched directly
// against template text in descending saturation order, never by
// re-running distance computations over the tree.
//
// The trained index is immutable after NewMatcher and the model passed in
// is never mutated — matching against trained templates is lock-free, so
// any number of goroutines can share one Matcher at full parallelism.
// Logs that no trained template covers become temporary templates in a
// small internally-synchronized overlay (its lock is only ever taken on
// the miss path). The service publishes (model, matcher) pairs through an
// atomic pointer and swaps them wholesale after retraining; this split is
// what lets it do that without any ingestion-side locking.
type Matcher struct {
	parser *Parser
	model  *Model // trained model; read-only while the Matcher serves it

	// Immutable trained index, built once by NewMatcher.
	order  map[uint64]int // node ID → global match priority (lower first)
	index  map[int]*lenBucket
	linear []*Node // LinearMatch: all trained candidates in order

	// Temporary-template overlay. Trained templates always outrank
	// temporaries (they were inserted first), so the overlay is only
	// consulted after a trained miss. NewMatcherFrom hands the SAME
	// overlay to the successor matcher during a model swap, so matches
	// in flight against the old matcher stay visible to the new one.
	tmp *tempOverlay
}

// tempOverlay is the synchronized temporary-template side of a matcher.
// It is shared across matcher generations: a model swap prunes entries
// the new model absorbed but keeps the object (and its ID counter), so
// no temporary — however racily inserted — ever becomes unresolvable or
// collides with a trained ID.
type tempOverlay struct {
	mu     sync.RWMutex
	order  map[uint64]int
	next   int
	index  map[int]*lenBucket
	linear []*Node
	byID   map[uint64]*Node
	nextID uint64 // temporary IDs continue the model's ID space
}

// snapshotIDHeadroom is added to NextID when SnapshotModel hands the
// model to a training cycle. Training allocates new node IDs from that
// offset while the live overlay keeps allocating temporary IDs below it,
// so IDs minted concurrently on the two sides can never collide. The
// headroom consumes ~2^32 of the uint64 ID space per training cycle.
const snapshotIDHeadroom = 1 << 32

func newTempOverlay(nextID uint64) *tempOverlay {
	return &tempOverlay{
		order:  make(map[uint64]int),
		index:  make(map[int]*lenBucket),
		byID:   make(map[uint64]*Node),
		nextID: nextID,
	}
}

// lenBucket indexes the candidates of one token count by first token.
type lenBucket struct {
	byFirst   map[string][]*Node // first token constant
	wildFirst []*Node            // first token is the wildcard
}

// insert appends n to the bucket for its token count.
func insertBucket(index map[int]*lenBucket, n *Node) {
	lb := index[len(n.Template)]
	if lb == nil {
		lb = &lenBucket{byFirst: make(map[string][]*Node)}
		index[len(n.Template)] = lb
	}
	// Empty templates and wildcard-first templates have no usable first
	// token; both live in the always-scanned list.
	if len(n.Template) == 0 || n.Template[0] == Wildcard {
		lb.wildFirst = append(lb.wildFirst, n)
	} else {
		lb.byFirst[n.Template[0]] = append(lb.byFirst[n.Template[0]], n)
	}
}

// NewMatcher builds a matcher over model using the parser's preprocessing
// and options. The model is retained by reference but never modified:
// temporary templates live in the matcher's own overlay (use
// SnapshotModel to obtain a model that includes them).
func (p *Parser) NewMatcher(model *Model) (*Matcher, error) {
	return p.NewMatcherFrom(model, nil)
}

// NewMatcherFrom builds a matcher over model that INHERITS prev's
// temporary overlay (prev may be nil). This is the model-swap path: the
// overlay object — including its ID counter — is shared, then pruned of
// templates the new model absorbed, so a Match racing the swap on the
// old matcher still registers a temporary the new matcher resolves, and
// every stored temporary ID keeps resolving through NodeByID/TemplateAt.
func (p *Parser) NewMatcherFrom(model *Model, prev *Matcher) (*Matcher, error) {
	if model == nil || model.Len() == 0 {
		return nil, ErrEmptyModel
	}
	m := &Matcher{
		parser: p,
		model:  model,
		order:  make(map[uint64]int, model.Len()),
		index:  make(map[int]*lenBucket),
	}
	if prev != nil {
		m.tmp = prev.tmp
		m.tmp.pruneAbsorbed(model)
	} else {
		m.tmp = newTempOverlay(model.NextID)
	}
	// Candidate order: saturation descending, then depth descending
	// (more precise first among equals), then ID for determinism.
	nodes := make([]*Node, 0, model.Len())
	for _, n := range model.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Saturation != nodes[j].Saturation {
			return nodes[i].Saturation > nodes[j].Saturation
		}
		if nodes[i].Depth != nodes[j].Depth {
			return nodes[i].Depth > nodes[j].Depth
		}
		return nodes[i].ID < nodes[j].ID
	})
	for i, n := range nodes {
		m.order[n.ID] = i
		m.linear = append(m.linear, n)
		insertBucket(m.index, n)
	}
	return m, nil
}

// Model returns the trained model the matcher was built over. It does not
// include temporary templates; see SnapshotModel.
func (m *Matcher) Model() *Model { return m.model }

// Match parses one raw line: preprocess, match against templates, and — on
// a miss — insert the log itself as a temporary template (§3, Online
// Matching).
func (m *Matcher) Match(line string) MatchResult {
	tokens := m.parser.PreprocessLine(line)
	return m.MatchTokens(tokens)
}

// MatchTokens matches an already-preprocessed token sequence.
func (m *Matcher) MatchTokens(tokens []string) MatchResult {
	// Trained index first: immutable, so no lock at all.
	if n := lookupIn(m.index, m.order, m.linear, tokens, m.parser.opts.LinearMatch); n != nil {
		return MatchResult{NodeID: n.ID, Template: n.Text()}
	}

	o := m.tmp
	o.mu.RLock()
	n := lookupIn(o.index, o.order, o.linear, tokens, m.parser.opts.LinearMatch)
	o.mu.RUnlock()
	if n != nil {
		return MatchResult{NodeID: n.ID, Template: n.Text()}
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	// Re-check: another goroutine may have inserted the same template.
	if n := lookupIn(o.index, o.order, o.linear, tokens, m.parser.opts.LinearMatch); n != nil {
		return MatchResult{NodeID: n.ID, Template: n.Text()}
	}
	node := o.insertLocked(tokens)
	return MatchResult{NodeID: node.ID, Template: node.Text(), New: true}
}

// lookupIn returns the highest-priority matching node from one index, or
// nil. Safe without a lock when the index is immutable; overlay callers
// must hold mu (read or write).
func lookupIn(index map[int]*lenBucket, order map[uint64]int, linear []*Node, tokens []string, linearMatch bool) *Node {
	if linearMatch {
		for _, n := range linear {
			if len(n.Template) == len(tokens) && templateMatches(n.Template, tokens) {
				return n
			}
		}
		return nil
	}
	lb := index[len(tokens)]
	if lb == nil {
		return nil
	}
	var exact []*Node
	if len(tokens) > 0 {
		exact = lb.byFirst[tokens[0]]
	}
	wild := lb.wildFirst
	// Merge the two priority-sorted candidate lists.
	i, j := 0, 0
	for i < len(exact) || j < len(wild) {
		var n *Node
		switch {
		case i >= len(exact):
			n, j = wild[j], j+1
		case j >= len(wild):
			n, i = exact[i], i+1
		case order[exact[i].ID] < order[wild[j].ID]:
			n, i = exact[i], i+1
		default:
			n, j = wild[j], j+1
		}
		if templateMatches(n.Template, tokens) {
			return n
		}
	}
	return nil
}

// insertLocked adds tokens as a temporary singleton template. The lookups
// that precede insertion already tried every node — roots included — so
// no existing subtree covers this log and the temporary stands alone,
// exactly the paper's "insert it into the clustering tree as an
// individual node". The next training cycle re-learns it properly
// (TrainMerge drops temporaries and forwards their IDs). The trained
// model is NOT touched; temporary IDs continue the model's ID space and
// stay below the snapshotIDHeadroom band a concurrent training cycle
// allocates from, so the two sides never mint the same ID.
func (o *tempOverlay) insertLocked(tokens []string) *Node {
	tmpl := make([]string, len(tokens))
	copy(tmpl, tokens)
	n := &Node{
		ID:         o.nextID,
		Parent:     NoParent,
		Template:   tmpl,
		Saturation: 1,
		Count:      1,
		Weight:     1,
		Temporary:  true,
	}
	o.nextID++
	o.order[n.ID] = o.next
	o.next++
	o.linear = append(o.linear, n)
	o.byID[n.ID] = n
	insertBucket(o.index, n)
	return n
}

// pruneAbsorbed drops overlay entries the new model now covers (as live
// nodes or alias-forwarded temporaries) and lifts the ID counter past the
// model's, keeping survivors resolvable and future IDs collision-free.
func (o *tempOverlay) pruneAbsorbed(model *Model) {
	o.mu.Lock()
	defer o.mu.Unlock()
	kept := o.linear[:0]
	for _, n := range o.linear {
		if _, ok := model.Nodes[model.Resolve(n.ID)]; ok {
			continue
		}
		kept = append(kept, n)
	}
	o.linear = kept
	o.order = make(map[uint64]int, len(kept))
	o.byID = make(map[uint64]*Node, len(kept))
	o.index = make(map[int]*lenBucket)
	o.next = 0
	for _, n := range kept {
		o.order[n.ID] = o.next
		o.next++
		o.byID[n.ID] = n
		insertBucket(o.index, n)
	}
	if model.NextID > o.nextID {
		o.nextID = model.NextID
	}
}

// NodeByID returns the node for id — trained or temporary, following
// alias forwarding — or nil when the matcher has never seen it.
func (m *Matcher) NodeByID(id uint64) *Node {
	if n, ok := m.model.Nodes[m.model.Resolve(id)]; ok {
		return n
	}
	m.tmp.mu.RLock()
	defer m.tmp.mu.RUnlock()
	return m.tmp.byID[id]
}

// TemplateAt is Model.TemplateAt extended over temporary templates: for a
// trained (or aliased) ID it walks toward the root for the coarsest
// ancestor still meeting threshold; a temporary ID resolves to the
// temporary node itself (temporaries are roots with saturation 1).
func (m *Matcher) TemplateAt(id uint64, threshold float64) (*Node, error) {
	if _, ok := m.model.Nodes[m.model.Resolve(id)]; ok {
		return m.model.TemplateAt(id, threshold)
	}
	m.tmp.mu.RLock()
	n, ok := m.tmp.byID[id]
	m.tmp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: node %d not in model", id)
	}
	return n, nil
}

// TemporaryCount returns how many temporary templates the overlay holds.
func (m *Matcher) TemporaryCount() int {
	m.tmp.mu.RLock()
	defer m.tmp.mu.RUnlock()
	return len(m.tmp.linear)
}

// Temporaries returns the temporary nodes in insertion order. The nodes
// are immutable once inserted; the slice is a copy.
func (m *Matcher) Temporaries() []*Node {
	m.tmp.mu.RLock()
	defer m.tmp.mu.RUnlock()
	out := make([]*Node, len(m.tmp.linear))
	copy(out, m.tmp.linear)
	return out
}

// SnapshotModel returns a model combining the trained nodes with every
// temporary inserted so far — the "prev" input for the next TrainMerge
// cycle, which drops the temporaries and forwards their IDs. Trained
// nodes are shared by pointer (both sides treat them as read-only;
// MergeModels clones before mutating).
//
// The returned NextID is lifted by snapshotIDHeadroom: node IDs the
// training cycle allocates start that far above anything the overlay has
// issued, while the overlay keeps issuing IDs below the band for logs
// that arrive during training. Without the headroom a temporary inserted
// after the snapshot could receive the same ID as a freshly trained
// node, silently misattributing its records after the model swap.
func (m *Matcher) SnapshotModel() *Model {
	m.tmp.mu.RLock()
	defer m.tmp.mu.RUnlock()
	out := NewModel()
	out.NextID = m.tmp.nextID + snapshotIDHeadroom
	for id, to := range m.model.Aliases {
		out.Aliases[id] = to
	}
	for id, n := range m.model.Nodes {
		out.Nodes[id] = n
	}
	for _, n := range m.tmp.linear {
		out.Nodes[n.ID] = n
	}
	out.reindex()
	return out
}

// MatchBatch matches lines on up to the parser's Parallelism workers and
// returns one result per line. Duplicate lines — the dominant case in
// real streams (§4.1.3, Fig. 4) — are preprocessed and matched once and
// the result fanned out, the same deduplication lever the training
// pipeline uses; it is the largest factor in the paper's efficiency
// ablation (Fig. 9).
func (m *Matcher) MatchBatch(lines []string) []MatchResult {
	out := make([]MatchResult, len(lines))
	// Collapse to distinct lines.
	firstAt := make(map[string]int, len(lines)/4+1)
	var distinct []string
	ref := make([]int, len(lines))
	for i, l := range lines {
		d, ok := firstAt[l]
		if !ok {
			d = len(distinct)
			firstAt[l] = d
			distinct = append(distinct, l)
		}
		ref[i] = d
	}
	results := make([]MatchResult, len(distinct))
	m.parser.forEachChunk(len(distinct), func(lo, hi int) {
		// One token buffer per worker, reused across its lines: the
		// preprocessing of a chunk allocates no per-line slices.
		// MatchTokens copies tokens before retaining them, so reuse is
		// safe.
		var buf []string
		for i := lo; i < hi; i++ {
			buf = m.parser.PreprocessLineAppend(buf[:0], distinct[i])
			results[i] = m.MatchTokens(buf)
		}
	})
	for i := range lines {
		out[i] = results[ref[i]]
	}
	return out
}

// templateMatches reports whether tokens fit the template: equal length,
// and each template position either equals the log token or is the
// wildcard. Lengths must be pre-checked equal by the caller's bucketing;
// the check here keeps the linear path safe too.
func templateMatches(template, tokens []string) bool {
	if len(template) != len(tokens) {
		return false
	}
	for i, t := range template {
		if t != Wildcard && t != tokens[i] {
			return false
		}
	}
	return true
}
