package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// trainOn is a test helper producing a model from lines.
func trainOn(t *testing.T, seed int64, lines []string) *TrainResult {
	t.Helper()
	res, err := New(Options{Seed: seed}).Train(lines)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMergeSelfIsStable(t *testing.T) {
	// Merging a model with a retrain of the same data must not grow the
	// template set meaningfully (idempotence up to tie-breaking).
	lines := sampleLogs(300, 21)
	a := trainOn(t, 1, lines)
	b := trainOn(t, 1, lines)
	merged, _, err := MergeModels(a.Model, b.Model, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() > a.Model.Len()+a.Model.Len()/4 {
		t.Errorf("self-merge grew model %d → %d", a.Model.Len(), merged.Len())
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesOldIDs(t *testing.T) {
	a := trainOn(t, 1, []string{"alpha beta 1", "alpha beta 2", "gamma delta x9"})
	b := trainOn(t, 1, []string{"alpha beta 7", "alpha beta 9"})
	merged, _, err := MergeModels(a.Model, b.Model, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for id, old := range a.Model.Nodes {
		if old.Temporary {
			continue
		}
		n, ok := merged.Nodes[id]
		if !ok {
			t.Errorf("old node %d lost in merge", id)
			continue
		}
		if len(n.Template) != len(old.Template) {
			t.Errorf("node %d template length changed", id)
		}
	}
}

func TestMergeRemapCoversAllNewNodes(t *testing.T) {
	a := trainOn(t, 1, sampleLogs(200, 5))
	b := trainOn(t, 2, sampleLogs(200, 6))
	merged, remap, err := MergeModels(a.Model, b.Model, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for id := range b.Model.Nodes {
		target, ok := remap[id]
		if !ok {
			t.Errorf("new node %d has no remap entry", id)
			continue
		}
		if _, ok := merged.Nodes[target]; !ok {
			t.Errorf("remap target %d of %d not in merged model", target, id)
		}
	}
}

func TestMergeAliasForwardsTemporaries(t *testing.T) {
	p := New(Options{Seed: 1})
	res, err := p.Train([]string{"svc start on node n1", "svc start on node n2"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	novel := "queue depth exceeded for shard 7"
	r := m.Match(novel)
	if !r.New {
		t.Fatal("expected temporary")
	}
	tempID := r.NodeID
	// SnapshotModel folds the matcher's temporaries into the prev model,
	// as the service's training cycle does.
	res2, err := p.TrainMerge(m.SnapshotModel(), []string{novel, "queue depth exceeded for shard 9"})
	if err != nil {
		t.Fatal(err)
	}
	resolved := res2.Model.Resolve(tempID)
	if resolved == tempID {
		t.Fatalf("temporary %d not forwarded", tempID)
	}
	n, err := res2.Model.TemplateAt(tempID, 0.7)
	if err != nil {
		t.Fatalf("old temporary ID unusable after merge: %v", err)
	}
	if n.Temporary {
		t.Error("alias resolved to a temporary node")
	}
}

func TestMergeKeepsUnretrainedTemporaries(t *testing.T) {
	// A temporary whose logs were sampled out of the training buffer
	// must survive the merge so its stored records stay queryable.
	p := New(Options{Seed: 1})
	res, err := p.Train([]string{"alpha one 1", "alpha one 2"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Match("totally different structure here now")
	if !r.New {
		t.Fatal("expected temporary")
	}
	// Retrain WITHOUT the novel line.
	res2, err := p.TrainMerge(m.SnapshotModel(), []string{"alpha one 7"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res2.Model.TemplateAt(r.NodeID, 0.7); err != nil {
		t.Errorf("unretrained temporary lost: %v", err)
	}
}

func TestMergeLowersContainerSaturation(t *testing.T) {
	// When dissimilar content routes into a length-group container, the
	// container's saturation must drop so rollup does not stop at it.
	a := trainOn(t, 1, []string{
		"cache miss for key 111 backend s1",
		"cache miss for key 222 backend s2",
		"cache miss for key 333 backend s3",
	})
	b := trainOn(t, 1, []string{
		"disk alarm raised on vol 9 now",
		"disk alarm raised on vol 3 now",
	})
	merged, _, err := MergeModels(a.Model, b.Model, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, rid := range merged.Roots() {
		root := merged.Nodes[rid]
		if len(merged.Children(rid)) >= 2 && root.Saturation > 0.8 {
			// Multiple dissimilar children under a high-saturation
			// container would merge unrelated logs at query time.
			allWild := true
			for _, tok := range root.Template {
				if tok != Wildcard {
					allWild = false
				}
			}
			if allWild {
				t.Errorf("all-wildcard container kept saturation %v", root.Saturation)
			}
		}
	}
}

func TestMergeChainAcrossManyCycles(t *testing.T) {
	p := New(Options{Seed: 3})
	var model *Model
	r := rand.New(rand.NewSource(9))
	var sizes []int
	for cycle := 0; cycle < 6; cycle++ {
		var lines []string
		for i := 0; i < 100; i++ {
			lines = append(lines, fmt.Sprintf("cycle%d event %d from host h%d", cycle%3, r.Intn(1000), r.Intn(20)))
		}
		res, err := p.TrainMerge(model, lines)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		model = res.Model
		if err := model.Validate(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		sizes = append(sizes, model.Len())
	}
	// Recurring structures: growth must decelerate sharply once all
	// three cycle variants have been seen (convergence, not linear
	// accumulation), and stay within a small multiple of the ~60 true
	// leaf templates.
	firstHalf := sizes[2] - sizes[0]
	secondHalf := sizes[5] - sizes[3]
	if secondHalf*2 > firstHalf {
		t.Errorf("merge did not converge: sizes %v", sizes)
	}
	if sizes[5] > 400 {
		t.Errorf("model ballooned to %d nodes for ~60 templates", sizes[5])
	}
}

func TestResolveBoundedOnAliasCycle(t *testing.T) {
	m := NewModel()
	m.Aliases[1] = 2
	m.Aliases[2] = 1 // malicious cycle: Resolve must terminate
	_ = m.Resolve(1)
}

func TestBestMatchNodePrefersPrecise(t *testing.T) {
	m := NewModel()
	coarse := &Node{ID: m.newID(), Template: []string{"a", Wildcard}, Saturation: 0.5}
	m.addNode(coarse)
	fine := &Node{ID: m.newID(), Parent: coarse.ID, Depth: 1, Template: []string{"a", "b"}, Saturation: 1.0}
	m.addNode(fine)
	if got := bestMatchNode(m, []string{"a", "b"}); got != fine.ID {
		t.Errorf("bestMatchNode = %d, want precise node %d", got, fine.ID)
	}
	if got := bestMatchNode(m, []string{"a", "zzz"}); got != coarse.ID {
		t.Errorf("bestMatchNode = %d, want wildcard node %d", got, coarse.ID)
	}
	if got := bestMatchNode(m, []string{"x", "y", "z"}); got != 0 {
		t.Errorf("bestMatchNode on unmatched length = %d, want 0", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	res := trainOn(t, 1, sampleLogs(100, 4))
	m := res.Model

	// Dangling parent.
	bad := &Node{ID: m.newID(), Parent: 99999, Template: []string{"x"}, Saturation: 1, Depth: 1}
	m.Nodes[bad.ID] = bad
	if err := m.Validate(); err == nil {
		t.Error("dangling parent not caught")
	}
	delete(m.Nodes, bad.ID)

	// Saturation out of range.
	for _, n := range m.Nodes {
		old := n.Saturation
		n.Saturation = 1.5
		if err := m.Validate(); err == nil {
			t.Error("saturation out of range not caught")
		}
		n.Saturation = old
		break
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("model did not restore cleanly: %v", err)
	}
}
