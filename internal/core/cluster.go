package core

import (
	"math/rand"
	"sort"

	"bytebrain/internal/dedup"
)

// bnode is a clustering-tree node under construction, before flattening
// into model Nodes.
type bnode struct {
	members    []*dedup.Unique
	template   []string
	saturation float64
	depth      int
	children   []*bnode
	weight     int // duplicate-weighted count
}

// buildTree hierarchically clusters one initial group into a tree (§4.3).
// rng must be dedicated to this group; training is deterministic because
// each group derives its generator from the seed and the group key.
func buildTree(members []*dedup.Unique, o *Options, rng *rand.Rand) *bnode {
	return buildNode(members, o, rng, 0, -1)
}

// buildNode creates the node for members and recursively splits it while
// saturation can still improve. parentSat is the saturation of the parent
// node (-1 at the root, so any score counts as an improvement).
func buildNode(members []*dedup.Unique, o *Options, rng *rand.Rand, depth int, parentSat float64) *bnode {
	st := newPosStats(members)
	sat := st.saturation(o)
	// Clamp to keep the root-to-leaf saturation sequence non-decreasing,
	// the invariant query-time rollup relies on (§3: "strictly increases
	// with tree depth").
	if sat < parentSat {
		sat = parentSat
	}
	n := &bnode{
		members:    members,
		template:   st.template(),
		saturation: sat,
		depth:      depth,
		weight:     totalWeight(members),
	}
	if sat >= 1 || depth >= o.MaxDepth || len(members) <= 1 {
		return n
	}

	parts := splitNode(members, st, sat, o, rng)
	if len(parts) <= 1 {
		// The clustering process failed to separate the members and no
		// positional fallback applies: accept the node as a leaf.
		return n
	}
	for _, p := range parts {
		n.children = append(n.children, buildNode(p, o, rng, depth+1, sat))
	}
	return n
}

// splitNode partitions members into sub-clusters, applying the early-stop
// shortcuts of §4.7 before running the full clustering process.
func splitNode(members []*dedup.Unique, st *posStats, parentSat float64, o *Options, rng *rand.Rand) [][]*dedup.Unique {
	if !o.NoEarlyStop {
		// Rule 1: two (unique) logs form their own clusters.
		if len(members) == 2 {
			return [][]*dedup.Unique{{members[0]}, {members[1]}}
		}
		// Rule 3: every unresolved position is fully distinct — the logs
		// are inherently dissimilar; each forms its own cluster.
		if allUnresolvedDistinct(st) {
			parts := make([][]*dedup.Unique, len(members))
			for i, u := range members {
				parts[i] = []*dedup.Unique{u}
			}
			return parts
		}
	}
	parts := clusterOnce(members, parentSat, o, rng)
	if len(parts) <= 1 {
		parts = positionalFallback(members, st)
	}
	return parts
}

// allUnresolvedDistinct reports whether every unresolved position has a
// different token in every member (n_u(i) == n). Duplicated streams
// (NoDedup) can never satisfy this, which is intended: early stop is one of
// the dedup-dependent optimizations.
func allUnresolvedDistinct(st *posStats) bool {
	any := false
	for i := range st.counts {
		nu := len(st.counts[i])
		if nu == 1 {
			continue
		}
		any = true
		if nu != st.n {
			return false
		}
	}
	return any
}

// clusterOnce is the single clustering process of §4.4: K-means-style
// iterative assignment under positional similarity, with K-means++ seeding,
// balanced tie-breaking and saturation-guided cluster injection.
func clusterOnce(members []*dedup.Unique, parentSat float64, o *Options, rng *rand.Rand) [][]*dedup.Unique {
	n := len(members)
	if n < 2 {
		return [][]*dedup.Unique{members}
	}

	// Seed two clusters. First centroid random; second the member
	// farthest from (least similar to) the first, unless the ablation
	// asks for fully random centroids.
	first := rng.Intn(n)
	var second int
	if o.RandomCentroids {
		second = rng.Intn(n - 1)
		if second >= first {
			second++
		}
	} else {
		seedStats := newPosStats(members[first : first+1])
		best, bestSim := -1, 2.0
		for i, u := range members {
			if i == first {
				continue
			}
			sim := seedStats.similarity(u.Enc, o.NoPositionImportance)
			if sim < bestSim {
				bestSim, best = sim, i
			}
		}
		second = best
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	assign[first], assign[second] = 0, 1
	k := 2

	var clusterStats []*posStats
	rebuild := func() {
		clusterStats = make([]*posStats, k)
		for c := 0; c < k; c++ {
			clusterStats[c] = &posStats{}
		}
		for i, u := range members {
			if assign[i] >= 0 {
				clusterStats[assign[i]].add(u)
			}
		}
	}
	rebuild()

	ties := make([]int, 0, 4)
	for iter := 0; iter < o.MaxIters; iter++ {
		changed := false
		next := make([]int, n)
		for i, u := range members {
			bestSim := -1.0
			ties = ties[:0]
			for c := 0; c < k; c++ {
				if clusterStats[c].n == 0 {
					continue
				}
				sim := clusterStats[c].similarity(u.Enc, o.NoPositionImportance)
				switch {
				case sim > bestSim+simEps:
					bestSim = sim
					ties = append(ties[:0], c)
				case sim > bestSim-simEps:
					ties = append(ties, c)
				}
			}
			choice := ties[0]
			if len(ties) > 1 && !o.NoBalancedGrouping {
				// Balanced grouping (§4.6): uniform among equals.
				choice = ties[rng.Intn(len(ties))]
			}
			next[i] = choice
			if next[i] != assign[i] {
				changed = true
			}
		}
		assign = next
		rebuild()

		grew := false
		if !o.NoEnsureSaturationIncrease && k < n {
			// If some cluster failed to improve on the parent, inject a
			// new cluster seeded with the member farthest from every
			// existing cluster (§4.4).
			for c := 0; c < k; c++ {
				if clusterStats[c].n == 0 {
					continue
				}
				if clusterStats[c].n == n || clusterStats[c].saturation(o) <= parentSat+satEps {
					far := farthestMember(members, clusterStats, o)
					if far >= 0 {
						assign[far] = k
						k++
						rebuild()
						grew = true
					}
					break
				}
			}
		}
		if !changed && !grew {
			break
		}
	}

	parts := make([][]*dedup.Unique, k)
	for i, u := range members {
		c := assign[i]
		parts[c] = append(parts[c], u)
	}
	out := parts[:0]
	for _, p := range parts {
		if len(p) > 0 {
			out = append(out, p)
		}
	}
	return out
}

const (
	simEps = 1e-12
	satEps = 1e-12
)

// farthestMember returns the index of the member with the smallest maximum
// similarity to any non-empty cluster, skipping members that are sole
// occupants of a cluster (they are already centroids).
func farthestMember(members []*dedup.Unique, stats []*posStats, o *Options) int {
	best, bestScore := -1, 2.0
	for i, u := range members {
		maxSim := -1.0
		for _, st := range stats {
			if st.n == 0 {
				continue
			}
			if sim := st.similarity(u.Enc, o.NoPositionImportance); sim > maxSim {
				maxSim = sim
			}
		}
		if maxSim < bestScore {
			bestScore, best = maxSim, i
		}
	}
	return best
}

// positionalFallback splits members by their token at the lowest-cardinality
// unresolved position. It guarantees progress (each part gains a constant
// position) when the clustering process degenerates to a single cluster.
func positionalFallback(members []*dedup.Unique, st *posStats) [][]*dedup.Unique {
	pos := -1
	bestCard := int(^uint(0) >> 1)
	for i := range st.counts {
		if nu := len(st.counts[i]); nu > 1 && nu < bestCard {
			bestCard, pos = nu, i
		}
	}
	if pos < 0 {
		return [][]*dedup.Unique{members}
	}
	byTok := make(map[uint64][]*dedup.Unique)
	var order []uint64
	for _, u := range members {
		code := u.Enc[pos]
		if _, ok := byTok[code]; !ok {
			order = append(order, code)
		}
		byTok[code] = append(byTok[code], u)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	parts := make([][]*dedup.Unique, 0, len(order))
	for _, code := range order {
		parts = append(parts, byTok[code])
	}
	return parts
}

func totalWeight(members []*dedup.Unique) int {
	w := 0
	for _, u := range members {
		w += u.Count
	}
	return w
}
