package core

import (
	"math/rand"
	"testing"

	"bytebrain/internal/dedup"
)

func defaultOpts() *Options {
	o := Options{Seed: 42}.withDefaults()
	return &o
}

func TestBuildTreeFig5Set1IsLeafRoot(t *testing.T) {
	// Set 1 is fully resolved at the root: no splits, template with one
	// wildcard at the token-value position.
	root := buildTree(fig5Set1(), defaultOpts(), rand.New(rand.NewSource(1)))
	if len(root.children) != 0 {
		t.Fatalf("Set 1 root has %d children, want 0", len(root.children))
	}
	if root.saturation != 1.0 {
		t.Errorf("root saturation = %v, want 1.0", root.saturation)
	}
	want := []string{"UserService", "createUser", "token", Wildcard, "success"}
	for i := range want {
		if root.template[i] != want[i] {
			t.Errorf("template[%d] = %q, want %q", i, root.template[i], want[i])
		}
	}
}

func TestBuildTreeFig5Set2SplitsToSingletons(t *testing.T) {
	// Set 2 must refine down to per-log leaves, with saturation rising
	// along every path, as in the right-hand tree of Fig. 5.
	root := buildTree(fig5Set2(), defaultOpts(), rand.New(rand.NewSource(1)))
	if len(root.children) == 0 {
		t.Fatal("Set 2 root did not split")
	}
	leaves := 0
	var walk func(b *bnode)
	walk = func(b *bnode) {
		if len(b.children) == 0 {
			leaves++
			if b.saturation != 1.0 {
				t.Errorf("leaf saturation = %v, want 1.0", b.saturation)
			}
			return
		}
		for _, c := range b.children {
			if c.saturation < b.saturation {
				t.Errorf("child saturation %v below parent %v", c.saturation, b.saturation)
			}
			walk(c)
		}
	}
	walk(root)
	if leaves != 3 {
		t.Errorf("leaves = %d, want 3 (one per distinct log)", leaves)
	}
}

func TestBuildTreeDeterministicForSeed(t *testing.T) {
	mk := func() *bnode {
		return buildTree(fig5Set2(), defaultOpts(), rand.New(rand.NewSource(7)))
	}
	a, b := mk(), mk()
	var cmp func(x, y *bnode) bool
	cmp = func(x, y *bnode) bool {
		if x.saturation != y.saturation || len(x.children) != len(y.children) || len(x.members) != len(y.members) {
			return false
		}
		for i := range x.children {
			if !cmp(x.children[i], y.children[i]) {
				return false
			}
		}
		return true
	}
	if !cmp(a, b) {
		t.Error("identical seeds produced different trees")
	}
}

func TestEarlyStopTwoLogs(t *testing.T) {
	members := []*dedup.Unique{
		uniq("a", "x", "p"),
		uniq("a", "y", "q"),
	}
	st := newPosStats(members)
	parts := splitNode(members, st, 0.0, defaultOpts(), rand.New(rand.NewSource(1)))
	if len(parts) != 2 || len(parts[0]) != 1 || len(parts[1]) != 1 {
		t.Errorf("two logs should split into singletons, got %d parts", len(parts))
	}
}

func TestEarlyStopAllDistinct(t *testing.T) {
	members := []*dedup.Unique{
		uniq("a", "x1", "p1"),
		uniq("a", "x2", "p2"),
		uniq("a", "x3", "p3"),
		uniq("a", "x4", "p4"),
	}
	st := newPosStats(members)
	parts := splitNode(members, st, 0.0, defaultOpts(), rand.New(rand.NewSource(1)))
	if len(parts) != 4 {
		t.Errorf("all-distinct unresolved positions should yield singletons, got %d parts", len(parts))
	}
}

func TestNoEarlyStopStillTerminates(t *testing.T) {
	o := Options{Seed: 1, NoEarlyStop: true}.withDefaults()
	members := []*dedup.Unique{
		uniq("a", "x1", "p1"),
		uniq("a", "x2", "p2"),
		uniq("a", "x3", "p3"),
	}
	root := buildTree(members, &o, rand.New(rand.NewSource(1)))
	var depth func(b *bnode) int
	depth = func(b *bnode) int {
		d := 0
		for _, c := range b.children {
			if cd := depth(c); cd > d {
				d = cd
			}
		}
		return d + 1
	}
	if d := depth(root); d > o.MaxDepth+1 {
		t.Errorf("tree depth %d exceeds cap", d)
	}
}

func TestClusterOnceSeparatesStructure(t *testing.T) {
	// Two clearly different structures of the same length: the clustering
	// process must separate them.
	members := []*dedup.Unique{
		uniq("open", "file", "f1"),
		uniq("open", "file", "f2"),
		uniq("open", "file", "f3"),
		uniq("close", "sock", "s1"),
		uniq("close", "sock", "s2"),
		uniq("close", "sock", "s3"),
	}
	parts := clusterOnce(members, 0.0, defaultOpts(), rand.New(rand.NewSource(3)))
	if len(parts) < 2 {
		t.Fatalf("clusterOnce produced %d parts, want >= 2", len(parts))
	}
	// No part may mix "open file" with "close sock".
	for _, p := range parts {
		first := p[0].Tokens[0]
		for _, u := range p {
			if u.Tokens[0] != first {
				t.Errorf("mixed structures in one cluster: %v", p)
			}
		}
	}
}

func TestPositionalFallbackSplitsByLowestCardinality(t *testing.T) {
	members := []*dedup.Unique{
		uniq("a", "x", "k1"),
		uniq("a", "x", "k2"),
		uniq("a", "y", "k3"),
		uniq("a", "y", "k4"),
	}
	st := newPosStats(members)
	parts := positionalFallback(members, st)
	if len(parts) != 2 {
		t.Fatalf("fallback parts = %d, want 2 (split on position 1, cardinality 2)", len(parts))
	}
	for _, p := range parts {
		if len(p) != 2 {
			t.Errorf("unbalanced fallback parts: %d", len(p))
		}
		if p[0].Tokens[1] != p[1].Tokens[1] {
			t.Error("fallback did not split on the chosen position")
		}
	}
}

func TestPositionalFallbackNoUnresolved(t *testing.T) {
	members := []*dedup.Unique{uniq("a", "b")}
	st := newPosStats(members)
	if parts := positionalFallback(members, st); len(parts) != 1 {
		t.Errorf("fallback on resolved node should not split, got %d parts", len(parts))
	}
}

func TestBuildTreeSaturationMonotonicProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	vocab := []string{"alpha", "beta", "gamma", "delta", "eps"}
	for iter := 0; iter < 40; iter++ {
		n := 2 + r.Intn(20)
		m := 2 + r.Intn(5)
		seen := map[string]bool{}
		var members []*dedup.Unique
		for len(members) < n {
			toks := make([]string, m)
			key := ""
			for j := range toks {
				toks[j] = vocab[r.Intn(len(vocab))]
				key += toks[j] + " "
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			members = append(members, uniq(toks...))
		}
		root := buildTree(members, defaultOpts(), rand.New(rand.NewSource(int64(iter))))
		var walk func(b *bnode)
		walk = func(b *bnode) {
			if b.saturation < 0 || b.saturation > 1 {
				t.Fatalf("saturation %v out of range", b.saturation)
			}
			total := 0
			for _, c := range b.children {
				if c.saturation < b.saturation {
					t.Fatalf("child saturation %v < parent %v", c.saturation, b.saturation)
				}
				total += len(c.members)
				walk(c)
			}
			if len(b.children) > 0 && total != len(b.members) {
				t.Fatalf("children partition %d members of %d", total, len(b.members))
			}
		}
		walk(root)
	}
}

func TestBalancedGroupingSpreadsTies(t *testing.T) {
	// With many identical-distance logs, balanced grouping should spread
	// them rather than dump everything into the first cluster. We check
	// the weaker, deterministic property: both variants terminate and
	// produce valid partitions, and the balanced one is random-tie-aware
	// (same seed ⇒ same result).
	var members []*dedup.Unique
	for i := 0; i < 8; i++ {
		members = append(members, uniq("op", string(rune('a'+i))))
	}
	a := clusterOnce(members, 0.0, defaultOpts(), rand.New(rand.NewSource(5)))
	b := clusterOnce(members, 0.0, defaultOpts(), rand.New(rand.NewSource(5)))
	if len(a) != len(b) {
		t.Error("balanced grouping not deterministic under fixed seed")
	}
	o := Options{Seed: 5, NoBalancedGrouping: true}.withDefaults()
	c := clusterOnce(members, 0.0, &o, rand.New(rand.NewSource(5)))
	total := 0
	for _, p := range c {
		total += len(p)
	}
	if total != len(members) {
		t.Errorf("NoBalancedGrouping lost members: %d of %d", total, len(members))
	}
}
