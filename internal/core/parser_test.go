package core

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// sampleLogs builds a small mixed stream with known structure: wakelock
// acquire/release lines (Fig. 1 style) plus HDFS-ish block receives.
func sampleLogs(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	tags := []string{"View Lock", "*launch*", "WindowManager", "RILJ_ACK_WL"}
	names := []string{"systemui", "android", "phone"}
	var out []string
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			out = append(out, fmt.Sprintf(`release:lock=%d, flg=0x0, tag="%s", name=%s, ws=null`,
				r.Intn(5000), tags[r.Intn(len(tags))], names[r.Intn(len(names))]))
		case 1:
			out = append(out, fmt.Sprintf(`acquire:lock=%d, flg=0x1, tag="%s", name=%s, ws=null`,
				r.Intn(5000), tags[r.Intn(len(tags))], names[r.Intn(len(names))]))
		default:
			out = append(out, fmt.Sprintf("Receiving block blk_%d src: /10.0.0.%d:50010", r.Int63(), r.Intn(255)))
		}
	}
	return out
}

func TestTrainEmptyInput(t *testing.T) {
	p := New(Options{Seed: 1})
	res, err := p.Train(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Len() != 0 || len(res.Assign) != 0 {
		t.Error("empty training produced nodes")
	}
	if _, err := p.NewMatcher(res.Model); err == nil {
		t.Error("NewMatcher accepted an empty model")
	}
}

func TestTrainProducesValidModel(t *testing.T) {
	p := New(Options{Seed: 1})
	logs := sampleLogs(500, 2)
	res, err := p.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != len(logs) {
		t.Fatalf("assign length %d, want %d", len(res.Assign), len(logs))
	}
	for i, id := range res.Assign {
		if id == 0 {
			t.Fatalf("log %d unassigned", i)
		}
		if _, ok := res.Model.Nodes[id]; !ok {
			t.Fatalf("log %d assigned to unknown node %d", i, id)
		}
	}
}

func TestTrainAssignsSameTemplateToSameStructure(t *testing.T) {
	p := New(Options{Seed: 3})
	logs := []string{
		"connected to 10.0.0.1:80 ok",
		"connected to 10.9.3.7:443 ok",
		"connected to 172.16.0.4:22 ok",
		"disk sda1 failed with code 5",
		"disk sdb2 failed with code 7",
	}
	res, err := p.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	// Most-precise assignments may keep rare two-log structures separate
	// (early-stop rule 1); grouping happens at query-time rollup.
	at := func(i int) uint64 {
		n, err := res.Model.TemplateAt(res.Assign[i], 0.6)
		if err != nil {
			t.Fatal(err)
		}
		return n.ID
	}
	if at(0) != at(1) || at(1) != at(2) {
		t.Errorf("connect logs split at threshold 0.6: %v %v %v", at(0), at(1), at(2))
	}
	if at(3) != at(4) {
		t.Errorf("disk logs split at threshold 0.6: %v %v", at(3), at(4))
	}
	if at(0) == at(3) {
		t.Error("distinct structures merged")
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	logs := sampleLogs(300, 4)
	a, err := New(Options{Seed: 11}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Seed: 11}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Model.Len() != b.Model.Len() {
		t.Fatalf("node counts differ: %d vs %d", a.Model.Len(), b.Model.Len())
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment %d differs across identical runs", i)
		}
	}
}

func TestTrainParallelismConsistency(t *testing.T) {
	// Group-level seeding makes the tree set independent of the worker
	// count.
	logs := sampleLogs(400, 6)
	seq, err := New(Options{Seed: 9, Parallelism: 1}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Options{Seed: 9, Parallelism: 8}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Model.Len() != par.Model.Len() {
		t.Errorf("node counts differ: seq %d, par %d", seq.Model.Len(), par.Model.Len())
	}
	seqT := templateSet(seq.Model)
	parT := templateSet(par.Model)
	if len(seqT) != len(parT) {
		t.Errorf("template sets differ: %d vs %d", len(seqT), len(parT))
	}
	for k := range seqT {
		if !parT[k] {
			t.Errorf("template %q missing in parallel run", k)
		}
	}
}

func templateSet(m *Model) map[string]bool {
	s := make(map[string]bool, m.Len())
	for _, n := range m.Nodes {
		s[fmt.Sprintf("%d|%s", n.Depth, n.Text())] = true
	}
	return s
}

func TestMatcherMatchesTrainingLogs(t *testing.T) {
	p := New(Options{Seed: 5})
	logs := sampleLogs(400, 8)
	res, err := p.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range logs {
		r := m.Match(line)
		if r.New {
			t.Fatalf("training log %d (%q) missed all templates", i, line)
		}
	}
}

func TestMatcherLinearAgreesWithIndexed(t *testing.T) {
	logs := sampleLogs(300, 12)
	pIdx := New(Options{Seed: 5})
	res, err := pIdx.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := pIdx.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	pLin := New(Options{Seed: 5, LinearMatch: true})
	res2, err := pLin.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := pLin.NewMatcher(res2.Model)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range logs {
		a := idx.Match(line)
		b := lin.Match(line)
		if a.Template != b.Template {
			t.Fatalf("indexed %q vs linear %q for %q", a.Template, b.Template, line)
		}
	}
}

func TestMatcherInsertsTemporaryForUnseen(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	before := res.Model.Len()
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	novel := "completely novel subsystem melted down badly today"
	r1 := m.Match(novel)
	if !r1.New {
		t.Fatal("unseen log did not create a temporary template")
	}
	// The trained model is immutable: the temporary lives in the
	// matcher's overlay, not in res.Model.
	if res.Model.Len() != before {
		t.Errorf("trained model mutated: %d nodes, want %d", res.Model.Len(), before)
	}
	if got := m.TemporaryCount(); got != 1 {
		t.Errorf("TemporaryCount = %d, want 1", got)
	}
	n := m.NodeByID(r1.NodeID)
	if n == nil || !n.Temporary || n.Saturation != 1.0 {
		t.Errorf("temporary node wrong: %+v", n)
	}
	// SnapshotModel folds the overlay back in for the next training
	// cycle, collision-free with trained IDs.
	snap := m.SnapshotModel()
	if snap.Len() != before+1 {
		t.Errorf("snapshot has %d nodes, want %d", snap.Len(), before+1)
	}
	if sn := snap.Nodes[r1.NodeID]; sn == nil || !sn.Temporary {
		t.Errorf("snapshot lost the temporary: %+v", sn)
	}
	if err := snap.Validate(); err != nil {
		t.Errorf("snapshot model invalid: %v", err)
	}
	// Second occurrence matches the temporary template without another
	// insertion.
	r2 := m.Match(novel)
	if r2.New || r2.NodeID != r1.NodeID {
		t.Errorf("repeat match: %+v, want reuse of %d", r2, r1.NodeID)
	}
}

func TestMatcherConcurrentSafe(t *testing.T) {
	p := New(Options{Seed: 5, Parallelism: 8})
	res, err := p.Train(sampleLogs(200, 3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lines := sampleLogs(200, int64(100+g))
			for _, l := range lines {
				m.Match(l)
			}
			// Mix in some novel lines to exercise insertion.
			for i := 0; i < 20; i++ {
				m.Match(fmt.Sprintf("novel event %d from goroutine %d with extras", i%7, g%3))
			}
		}(g)
	}
	wg.Wait()
	if err := res.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotModel().Validate(); err != nil {
		t.Fatalf("snapshot with temporaries invalid: %v", err)
	}
}

func TestMatchBatchMatchesSequential(t *testing.T) {
	p := New(Options{Seed: 5, Parallelism: 4})
	logs := sampleLogs(300, 3)
	res, err := p.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.MatchBatch(logs)
	for i, line := range logs {
		if got := m.Match(line); got.NodeID != batch[i].NodeID {
			t.Fatalf("batch and sequential disagree at %d", i)
		}
	}
}

func TestTemplateAtRollup(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	model := res.Model
	for _, leafID := range model.Leaves() {
		leaf := model.Nodes[leafID]
		// Threshold 0: coarsest = the group root.
		n0, err := model.TemplateAt(leafID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if n0.Parent != NoParent {
			t.Errorf("threshold 0 rollup stopped at non-root %d", n0.ID)
		}
		// Threshold just above the leaf's saturation: the leaf itself.
		n1, err := model.TemplateAt(leafID, leaf.Saturation+0.001)
		if err != nil {
			t.Fatal(err)
		}
		if n1.ID != leafID {
			t.Errorf("rollup above leaf saturation returned %d, want leaf %d", n1.ID, leafID)
		}
		// Monotonicity: higher threshold never yields a shallower node.
		prevDepth := -1
		for _, th := range []float64{0, 0.3, 0.6, 0.9, 1.0} {
			n, err := model.TemplateAt(leafID, th)
			if err != nil {
				t.Fatal(err)
			}
			if n.Depth < prevDepth {
				t.Errorf("rollup depth decreased as threshold rose")
			}
			prevDepth = n.Depth
		}
	}
}

func TestTemplateAtUnknownNode(t *testing.T) {
	m := NewModel()
	if _, err := m.TemplateAt(42, 0.5); err == nil {
		t.Error("TemplateAt accepted unknown node")
	}
}

func TestTemplatesAtThreshold(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(500, 3))
	if err != nil {
		t.Fatal(err)
	}
	coarse := res.Model.TemplatesAtThreshold(0.05)
	fine := res.Model.TemplatesAtThreshold(0.99)
	if len(coarse) > len(fine) {
		t.Errorf("coarse view has more templates (%d) than fine view (%d)", len(coarse), len(fine))
	}
	for _, n := range fine {
		if n.Saturation < 0.99 && len(res.Model.Children(n.ID)) > 0 {
			t.Errorf("non-leaf below threshold returned: %+v", n)
		}
	}
}

func TestModelSerializationRoundTrip(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(300, 3))
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Model.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Model.Len() || back.NextID != res.Model.NextID {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.Len(), back.NextID, res.Model.Len(), res.Model.NextID)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for id, n := range res.Model.Nodes {
		bn := back.Nodes[id]
		if bn == nil || bn.Text() != n.Text() || bn.Saturation != n.Saturation || bn.Parent != n.Parent {
			t.Fatalf("node %d corrupted in round trip", id)
		}
	}
	// Matching works identically on the restored model.
	m1, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.NewMatcher(&back)
	if err != nil {
		t.Fatal(err)
	}
	probe := "connected to 10.0.0.1:80 ok"
	if a, b := m1.Match(probe), m2.Match(probe); a.Template != b.Template {
		t.Errorf("restored model matches differently: %q vs %q", a.Template, b.Template)
	}
}

func TestModelUnmarshalCorruptData(t *testing.T) {
	var m Model
	if err := m.UnmarshalBinary([]byte("definitely not gob")); err == nil {
		t.Error("UnmarshalBinary accepted garbage")
	}
}

func TestModelSizeBytesReasonable(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(1000, 3))
	if err != nil {
		t.Fatal(err)
	}
	size, err := res.Model.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatal("non-positive model size")
	}
	// The Table-5 claim: model is far smaller than the raw logs.
	raw := 0
	for _, l := range sampleLogs(1000, 3) {
		raw += len(l)
	}
	if size > raw {
		t.Errorf("model (%d B) larger than raw logs (%d B)", size, raw)
	}
}

func TestTrainMergeKeepsOldTemplates(t *testing.T) {
	p := New(Options{Seed: 5})
	batch1 := []string{
		"connected to 10.0.0.1:80 ok",
		"connected to 10.9.3.7:443 ok",
		"connected to 172.16.0.4:22 ok",
	}
	res1, err := p.Train(batch1)
	if err != nil {
		t.Fatal(err)
	}
	batch2 := []string{
		"connected to 10.1.1.1:8080 ok",
		"connected to 10.1.1.2:8080 ok",
		"disk sda1 failed with code 5",
		"disk sdb9 failed with code 2",
	}
	res2, err := p.TrainMerge(res1.Model, batch2)
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res2.Model)
	if err != nil {
		t.Fatal(err)
	}
	// Both old and new structures match without temporary insertion.
	for _, line := range append(batch1, batch2...) {
		if r := m.Match(line); r.New {
			t.Errorf("merged model missed %q", line)
		}
	}
	// The "connected" structures merged rather than duplicated: count the
	// roots for that length.
	connTokens := p.PreprocessLine(batch1[0])
	roots := 0
	for _, rid := range res2.Model.Roots() {
		if len(res2.Model.Nodes[rid].Template) == len(connTokens) {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("connected-log roots = %d, want 1 after merge", roots)
	}
}

func TestTrainMergeDropsTemporaries(t *testing.T) {
	p := New(Options{Seed: 5})
	res1, err := p.Train([]string{
		"job 17 started on node n1",
		"job 93 started on node n4",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res1.Model)
	if err != nil {
		t.Fatal(err)
	}
	novel := "unexpected crash in module alpha seen"
	r := m.Match(novel)
	if !r.New {
		t.Fatal("expected temporary insertion")
	}
	res2, err := p.TrainMerge(res1.Model, []string{
		novel,
		"unexpected crash in module beta seen",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res2.Model.Nodes {
		if n.Temporary {
			t.Errorf("temporary node %d survived retraining", n.ID)
		}
	}
	m2, err := p.NewMatcher(res2.Model)
	if err != nil {
		t.Fatal(err)
	}
	if r := m2.Match(novel); r.New {
		t.Error("retrained model missed the previously-unseen log")
	}
}

func TestTrainMergeNilPrevious(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.TrainMerge(nil, []string{"a b c", "a b d"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Len() == 0 {
		t.Error("TrainMerge(nil, …) produced empty model")
	}
}

func TestMergeModelsBadThreshold(t *testing.T) {
	if _, _, err := MergeModels(NewModel(), NewModel(), 0); err == nil {
		t.Error("MergeModels accepted threshold 0")
	}
	if _, _, err := MergeModels(NewModel(), NewModel(), 1.5); err == nil {
		t.Error("MergeModels accepted threshold > 1")
	}
}

func TestTemplateSimilarity(t *testing.T) {
	tests := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", "b"}, []string{"a", "c"}, 0.5},
		{[]string{"a", Wildcard}, []string{"a", "c"}, 1},
		{[]string{Wildcard, Wildcard}, []string{"x", "y"}, 1},
		{[]string{"a"}, []string{"a", "b"}, 0},
		{nil, nil, 1},
	}
	for _, tt := range tests {
		if got := TemplateSimilarity(tt.a, tt.b); got != tt.want {
			t.Errorf("TemplateSimilarity(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAncestry(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(300, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, leafID := range res.Model.Leaves() {
		path, err := res.Model.Ancestry(leafID)
		if err != nil {
			t.Fatal(err)
		}
		if path[0].Parent != NoParent {
			t.Error("ancestry does not start at a root")
		}
		if path[len(path)-1].ID != leafID {
			t.Error("ancestry does not end at the leaf")
		}
		for i := 1; i < len(path); i++ {
			if path[i].Parent != path[i-1].ID {
				t.Error("ancestry chain broken")
			}
			if path[i].Saturation < path[i-1].Saturation {
				t.Error("saturation decreased down the ancestry")
			}
		}
	}
	if _, err := res.Model.Ancestry(99999); err == nil {
		t.Error("Ancestry accepted unknown node")
	}
}

func TestNaiveMatchAgreesWithTextMatchMostly(t *testing.T) {
	// §5.4.1: text-based matching produces almost identical grouping to
	// the clustering assignment. On clean synthetic data they should
	// agree exactly.
	p := New(Options{Seed: 5})
	logs := sampleLogs(400, 3)
	res, err := p.Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, line := range logs {
		r := m.Match(line)
		a, err := res.Model.TemplateAt(res.Assign[i], 0.99)
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.Model.TemplateAt(r.NodeID, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if a.ID == b.ID || a.Text() == b.Text() {
			agree++
		}
	}
	// §5.4.1 reports "almost identical" group accuracy, not identical
	// assignments; 0.9 agreement of rolled-up groups is the bound the
	// ablation experiment (Fig. 8) relies on.
	if frac := float64(agree) / float64(len(logs)); frac < 0.90 {
		t.Errorf("naive and text matching agree on %.2f of logs, want >= 0.90", frac)
	}
}

func TestOrdinalEncodingVariant(t *testing.T) {
	logs := sampleLogs(300, 3)
	a, err := New(Options{Seed: 5}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Seed: 5, OrdinalEncoding: true}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	// Encodings are interchangeable for clustering: same template count.
	if a.Model.Len() != b.Model.Len() {
		t.Errorf("hash vs ordinal node counts differ: %d vs %d", a.Model.Len(), b.Model.Len())
	}
}

func TestNoDedupVariantSameTemplates(t *testing.T) {
	base := []string{
		"connected to 10.0.0.1:80 ok",
		"connected to 10.9.3.7:443 ok",
		"disk sda1 failed with code 5",
		"disk sdb2 failed with code 9",
	}
	var logs []string
	for i := 0; i < 30; i++ {
		logs = append(logs, base[i%len(base)])
	}
	a, err := New(Options{Seed: 5}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Seed: 5, NoDedup: true}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	// Deduplication is an efficiency technique: the leaf template set
	// must be identical with and without it. (Rollup saturations differ
	// because duplicate counts inflate n in the variability scale.)
	leafSet := func(res *TrainResult) map[string]bool {
		s := map[string]bool{}
		for _, id := range res.Model.Leaves() {
			s[res.Model.Nodes[id].Text()] = true
		}
		return s
	}
	la, lb := leafSet(a), leafSet(b)
	if len(la) != len(lb) {
		t.Fatalf("leaf template sets differ in size: %d vs %d", len(la), len(lb))
	}
	for k := range la {
		if !lb[k] {
			t.Errorf("leaf template %q missing without dedup", k)
		}
	}
}

func TestPrefixGroupingSeparates(t *testing.T) {
	logs := []string{
		"alpha start 1", "alpha start 2",
		"beta start 1", "beta start 2",
	}
	res, err := New(Options{Seed: 5, PrefixLen: 1}).Train(logs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] == res.Assign[2] {
		t.Error("prefix grouping did not separate alpha/beta")
	}
	if len(res.Model.Roots()) < 2 {
		t.Errorf("roots = %d, want >= 2 with PrefixLen 1", len(res.Model.Roots()))
	}
}

func TestPreprocessLineAppliesVarsAndTokenize(t *testing.T) {
	p := New(Options{Seed: 5})
	got := p.PreprocessLine("conn from 10.0.0.1:80 at 2025-01-02 03:04:05")
	want := []string{"conn", "from", Wildcard, "at", Wildcard}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMatcherEmptyLine(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train([]string{"a b", "a c"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	r := m.Match("")
	if r.NodeID == 0 {
		t.Error("empty line not handled")
	}
	if !r.New {
		t.Error("empty line should insert a temporary empty template")
	}
	if r2 := m.Match("   "); r2.NodeID != r.NodeID {
		t.Error("second empty line did not reuse the empty template")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Parallelism != defaultParallelism || o.MaxDepth != defaultMaxDepth ||
		o.MaxIters != defaultMaxIters || o.MergeThreshold != defaultMergeThreshold {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.Tokenizer == nil || o.Replacer == nil {
		t.Error("nil tokenizer or replacer after defaulting")
	}
	// Explicit values survive.
	o2 := Options{Parallelism: 2, MaxDepth: 5}.withDefaults()
	if o2.Parallelism != 2 || o2.MaxDepth != 5 {
		t.Error("explicit options overridden")
	}
}

func TestTemplateTextHasNoEmptyTokens(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(300, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Model.Nodes {
		for _, tok := range n.Template {
			if tok == "" {
				t.Fatalf("empty token in template of node %d", n.ID)
			}
		}
		if strings.Contains(n.Text(), "  ") {
			t.Fatalf("double space in template text %q", n.Text())
		}
	}
}

func TestMatchBatchDeduplicates(t *testing.T) {
	// Batch matching must produce identical results for duplicate lines
	// and agree with per-line matching (it processes distinct lines
	// once and fans out).
	p := New(Options{Seed: 5})
	base := sampleLogs(50, 3)
	var lines []string
	for i := 0; i < 400; i++ {
		lines = append(lines, base[i%len(base)])
	}
	res, err := p.Train(base)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.MatchBatch(lines)
	for i, line := range lines {
		if one := m.Match(line); one.NodeID != batch[i].NodeID {
			t.Fatalf("batch disagrees with single match at %d", i)
		}
	}
	for i := range base {
		if batch[i].NodeID != batch[i+len(base)].NodeID {
			t.Fatalf("duplicate lines %d and %d got different nodes", i, i+len(base))
		}
	}
}

func TestTrainRawDedupPreservesAssignments(t *testing.T) {
	// The raw-line dedup fast path must leave per-line assignments
	// identical to what the NoDedup pipeline computes at rollup level.
	base := sampleLogs(30, 9)
	var lines []string
	for i := 0; i < 150; i++ {
		lines = append(lines, base[i%len(base)])
	}
	a, err := New(Options{Seed: 4}).Train(lines)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate lines always share an assignment.
	for i := range base {
		if a.Assign[i] != a.Assign[i+len(base)] {
			t.Fatalf("duplicates %d/%d assigned differently", i, i+len(base))
		}
	}
	// Counts at the leaves reflect raw multiplicity, not unique count.
	total := 0
	for _, id := range a.Model.Leaves() {
		total += a.Model.Nodes[id].Weight
	}
	if total != len(lines) {
		t.Errorf("leaf weights sum to %d, want %d raw lines", total, len(lines))
	}
}

func TestSnapshotHeadroomAndOverlayInheritance(t *testing.T) {
	p := New(Options{Seed: 5})
	res, err := p.Train(sampleLogs(100, 3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.NewMatcher(res.Model)
	if err != nil {
		t.Fatal(err)
	}
	// A training cycle snapshots the model, then — while it "runs" — a
	// concurrent ingest inserts a temporary the snapshot never saw.
	prev := m.SnapshotModel()
	late := m.Match("surprise subsystem failure during retraining window")
	if !late.New {
		t.Fatal("expected a temporary for the mid-training log")
	}
	res2, err := p.TrainMerge(prev, sampleLogs(80, 9))
	if err != nil {
		t.Fatal(err)
	}
	// Headroom: IDs minted by the training cycle must not collide with
	// the temporary minted concurrently.
	if n, ok := res2.Model.Nodes[late.NodeID]; ok {
		t.Fatalf("trained model reused concurrent temporary ID %d: %+v", late.NodeID, n)
	}
	// Overlay inheritance: the swapped-in matcher still resolves the
	// mid-training temporary by ID and by content.
	m2, err := p.NewMatcherFrom(res2.Model, m)
	if err != nil {
		t.Fatal(err)
	}
	n := m2.NodeByID(late.NodeID)
	if n == nil || !n.Temporary {
		t.Fatalf("mid-training temporary lost across swap: %v", n)
	}
	if got := m2.Match("surprise subsystem failure during retraining window"); got.NodeID != late.NodeID || got.New {
		t.Errorf("re-match of mid-training log: %+v, want reuse of %d", got, late.NodeID)
	}
	// Temporaries that WERE in the snapshot are absorbed (aliased) by
	// the merge and pruned from the inherited overlay.
	preSnap := m.SnapshotModel() // fresh snapshot now including `late`
	res3, err := p.TrainMerge(preSnap, []string{"surprise subsystem failure during retraining window"})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := p.NewMatcherFrom(res3.Model, m2)
	if err != nil {
		t.Fatal(err)
	}
	if m3.TemporaryCount() != 0 {
		t.Errorf("absorbed temporaries not pruned: %d left", m3.TemporaryCount())
	}
	if _, err := m3.TemplateAt(late.NodeID, 0.7); err != nil {
		t.Errorf("absorbed temporary ID stopped resolving: %v", err)
	}
}

// TestPreprocessLineAppendMatchesPreprocessLine: the buffer-reusing
// preprocessing must produce the same tokens as the allocating one, and
// reuse across lines must not corrupt earlier results once copied.
func TestPreprocessLineAppendMatchesPreprocessLine(t *testing.T) {
	p := New(Options{})
	lines := []string{
		"Receiving block blk_123 src: /10.0.0.1:50010",
		"no variables at all",
		"ts 2025-04-12T08:31:02Z worker 9 done",
		"",
	}
	var buf []string
	for _, line := range lines {
		want := p.PreprocessLine(line)
		buf = p.PreprocessLineAppend(buf[:0], line)
		if len(buf) != len(want) {
			t.Fatalf("PreprocessLineAppend(%q) = %v, want %v", line, buf, want)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("PreprocessLineAppend(%q)[%d] = %q, want %q", line, i, buf[i], want[i])
			}
		}
	}
}

// TestPreprocessLineAppendLeavesPrefixAlone: only the appended tail may
// be canonicalized; pre-existing dst elements belong to the caller, even
// ones that happen to contain the variable sentinel byte.
func TestPreprocessLineAppendLeavesPrefixAlone(t *testing.T) {
	p := New(Options{})
	sentinel := "prefix-\x01-token"
	dst := []string{sentinel}
	out := p.PreprocessLineAppend(dst, "worker 10.0.0.1 connected")
	if out[0] != sentinel {
		t.Fatalf("caller's prefix mutated: %q", out[0])
	}
	want := p.PreprocessLine("worker 10.0.0.1 connected")
	if len(out) != 1+len(want) {
		t.Fatalf("out = %v, want prefix + %v", out, want)
	}
	for i, tok := range want {
		if out[1+i] != tok {
			t.Fatalf("tail[%d] = %q, want %q", i, out[1+i], tok)
		}
	}
}
