package core

import (
	"math"

	"bytebrain/internal/dedup"
)

// posStats summarizes per-position token distributions for a set of logs of
// equal token count. It backs both the positional-similarity distance
// (Eq. 2) and the saturation score (Eq. 3).
type posStats struct {
	// counts[i] maps token code → number of member logs carrying it at
	// position i. Members are unique (deduplicated) logs; each counts 1.
	counts []map[uint64]int
	// rep[i] is the token text at position i of the first member, used
	// to render constant positions in template text.
	rep []string
	// typed[i] counts member tokens at position i that look like typed
	// values (digit-bearing, hex-like, path-like) — the SemanticHints
	// evidence.
	typed []int
	// n is the number of member logs.
	n int
	// weight is the duplicate-weighted member count (Σ Count).
	weight int
}

// typedToken reports whether a token looks like a typed value rather than
// a word: it carries a digit, or is an absolute path.
func typedToken(s string) bool {
	if len(s) > 0 && s[0] == '/' {
		return true
	}
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// newPosStats computes statistics over members (all of identical length).
func newPosStats(members []*dedup.Unique) *posStats {
	if len(members) == 0 {
		return &posStats{}
	}
	m := len(members[0].Tokens)
	st := &posStats{
		counts: make([]map[uint64]int, m),
		rep:    members[0].Tokens,
		typed:  make([]int, m),
		n:      len(members),
	}
	for i := 0; i < m; i++ {
		st.counts[i] = make(map[uint64]int, 4)
	}
	for _, u := range members {
		st.weight += u.Count
		for i, code := range u.Enc {
			st.counts[i][code]++
			if typedToken(u.Tokens[i]) {
				st.typed[i]++
			}
		}
	}
	return st
}

// positions returns the token count m.
func (st *posStats) positions() int { return len(st.counts) }

// distinct returns n_i, the number of distinct tokens at position i.
func (st *posStats) distinct(i int) int { return len(st.counts[i]) }

// constants returns m_c, the number of positions where all members agree.
func (st *posStats) constants() int {
	mc := 0
	for i := range st.counts {
		if len(st.counts[i]) == 1 {
			mc++
		}
	}
	return mc
}

// similarity computes the positional similarity of Eq. 2 between a log and
// the cluster summarized by st:
//
//	sim(L,C) = Σ w_i · f_i(L,C) / Σ w_i
//
// where f_i is the relative frequency of L's token at position i among the
// cluster members and w_i = 1/(n_i − 1) down-weights high-variability
// positions (capped at 2 for constant positions, where the paper's formula
// divides by zero). Values lie in [0,1]; the paper's "distance" is
// 1 − similarity, and logs are assigned to the most similar cluster.
func (st *posStats) similarity(enc []uint64, noPositionImportance bool) float64 {
	if st.n == 0 || len(enc) != len(st.counts) {
		return 0
	}
	var num, den float64
	inv := 1.0 / float64(st.n)
	for i, code := range enc {
		var w float64
		if noPositionImportance {
			w = 1
		} else {
			ni := len(st.counts[i])
			d := float64(ni) - 1
			if d < 0.5 {
				d = 0.5
			}
			w = 1 / d
		}
		f := float64(st.counts[i][code]) * inv
		num += w * f
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// add incorporates one member into the statistics.
func (st *posStats) add(u *dedup.Unique) {
	if st.counts == nil {
		m := len(u.Tokens)
		st.counts = make([]map[uint64]int, m)
		for i := range st.counts {
			st.counts[i] = make(map[uint64]int, 4)
		}
		st.rep = u.Tokens
		st.typed = make([]int, m)
	}
	for i, code := range u.Enc {
		st.counts[i][code]++
		if typedToken(u.Tokens[i]) {
			st.typed[i]++
		}
	}
	st.n++
	st.weight += u.Count
}

// Variable declaration thresholds: a position whose distinct-token count
// reaches both bounds is a "likely variable" (§4.5: saturation "considers
// both confirmed constants and likely variables") and counts as resolved.
// The minimum-evidence guard keeps tiny nodes — like the three-log sets of
// Fig. 5 — in the conservative regime where only structure, not
// statistics, can resolve a position. Table 4 shows the effect at scale:
// high-cardinality positions (lock, uid, pid) stay wildcards at every
// precision level while low-cardinality positions (name, ws) keep
// refining.
const (
	declareMinDistinct = 10
	declareAbsolute    = 32
	declareRatio       = 0.3
)

// declaredVariable reports whether position i is statistically resolved as
// a variable: at least declareMinDistinct distinct tokens, and either a
// large absolute vocabulary (bounded variables like ports and PIDs stay
// below any fixed fraction of n once n is large) or a high distinct ratio
// (small nodes where most members disagree at the position). With
// semantic hints (§8 extension), a position whose tokens are nearly all
// typed values qualifies with only a quarter of the distinct-count
// evidence.
func (st *posStats) declaredVariable(i int, semantic bool) bool {
	nu := len(st.counts[i])
	if semantic && nu > 1 && st.typed != nil &&
		float64(st.typed[i]) >= 0.95*float64(st.n) &&
		nu*4 >= declareMinDistinct {
		return true
	}
	if nu < declareMinDistinct {
		return false
	}
	return nu >= declareAbsolute || float64(nu) >= declareRatio*float64(st.n)
}

// fullyDistinctVariable reports whether a position with nu distinct tokens
// qualifies for the small-node fully-distinct rule (Fig. 5 Set 1): nearly
// every member carries its own value, and members are barely duplicated. A
// handful of unique values carrying heavy duplicate weight is categorical
// evidence, not variable sampling, hence the weight guard.
func (st *posStats) fullyDistinctVariable(nu int) bool {
	if st.weight > 3*st.n || st.n < 3 {
		return false
	}
	if nu == st.n {
		return true
	}
	// Larger nodes tolerate one repeated value.
	return st.n >= 6 && nu >= st.n-1
}

// saturation computes s(C) per Eq. 3 under the interpretation documented in
// DESIGN.md §2.2, which reproduces every value of Fig. 5 and the Table-4
// refinement behaviour. Positions are classified:
//
//   - constant: n_u = 1;
//   - declared variable: statistically variable (n_u ≥ 8 and ≥ n/2) —
//     the "likely variables" of §4.5 — or, in small nodes without any
//     ambiguous position, fully distinct (n_u = n, n ≥ 3, the Fig.-5
//     Set-1 case);
//   - ambiguous: everything else — a mid-cardinality position that could
//     be a pooled variable or a categorical constant; only further
//     splitting (Table 4: name → android, ws → null) can tell.
//
// Then with resolved = constants + declared:
//
//	f_c = resolved/m
//	f_v = min_i ln(n_u(i))/ln(n)   over unresolved positions
//	p_c = 1/2^(m−resolved−1)       confidence in the unresolved evidence
//	s   = (f_v·p_c + (1−p_c)) · f_c
//
// and s = 1 when nothing is unresolved (or the node has ≤ 1 member).
// Fully-distinct positions are suspended from declaration when ambiguous
// positions coexist — Fig. 5 Set 2's point that apparent variables may be
// structurally correlated with unresolved structure.
func (st *posStats) saturation(o *Options) float64 {
	m := st.positions()
	if st.n <= 1 || m == 0 {
		return 1
	}
	noVar := o != nil && o.NoVariableSaturation
	semantic := o != nil && o.SemanticHints
	constants := 0
	declared := 0
	fullyDistinct := 0
	ambiguous := 0
	for i := range st.counts {
		nu := len(st.counts[i])
		switch {
		case nu == 1:
			constants++
		case st.declaredVariable(i, semantic):
			declared++
		case st.fullyDistinctVariable(nu):
			fullyDistinct++
		default:
			ambiguous++
		}
	}
	if noVar {
		// Ablation: only confirmed constants count (s = f_c).
		return float64(constants) / float64(m)
	}
	resolved := constants + declared
	if ambiguous == 0 {
		resolved += fullyDistinct
	}
	if resolved == m {
		return 1
	}
	// Unresolved = ambiguous plus any suspended fully-distinct positions.
	// The variability scale divides by the *total* (duplicate-weighted)
	// log count, per the paper's "let n be the total number of logs": a
	// position with six values over six barely-duplicated logs is highly
	// variable, the same six values over six hundred logs are categorical.
	minFv := math.Inf(1)
	logN := math.Log(float64(st.weight))
	for i := range st.counts {
		nu := len(st.counts[i])
		if nu == 1 || st.declaredVariable(i, semantic) {
			continue
		}
		if logN > 0 {
			fv := math.Log(float64(nu)) / logN
			if fv < minFv {
				minFv = fv
			}
		}
	}
	fc := float64(resolved) / float64(m)
	fv := minFv
	if math.IsInf(fv, 1) {
		fv = 0
	}
	if fv > 1 {
		fv = 1
	}
	if o != nil && o.NoConfidenceFactor {
		return fv * fc
	}
	pc := math.Pow(2, -float64(m-resolved-1))
	return (fv*pc + (1 - pc)) * fc
}

// template renders the node template: constant positions keep their token,
// all others become the wildcard.
func (st *posStats) template() []string {
	t := make([]string, st.positions())
	for i := range st.counts {
		if len(st.counts[i]) == 1 {
			t[i] = st.rep[i]
		} else {
			t[i] = Wildcard
		}
	}
	return t
}

// unresolvedPositions returns the indices with more than one distinct
// token.
func (st *posStats) unresolvedPositions() []int {
	var idx []int
	for i := range st.counts {
		if len(st.counts[i]) > 1 {
			idx = append(idx, i)
		}
	}
	return idx
}
