package core

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTrainAndMatch feeds arbitrary byte soup through the full pipeline:
// training must never panic, always produce a valid model, and every
// trained line must be matchable. `go test` runs the seed corpus; `go test
// -fuzz=FuzzTrainAndMatch ./internal/core` explores further.
func FuzzTrainAndMatch(f *testing.F) {
	f.Add("simple log line", "another log line", "third 123 line")
	f.Add("", " ", "\t\n")
	f.Add("a=b c:d [e] {f}", `escaped \"quote\" here`, "https://host/path?x=1")
	f.Add("しかし ログ 123", "émoji 🎉 test", "mixed ascii ünicode")
	f.Add(strings.Repeat("tok ", 100), "short", "x")
	f.Add("<*> literal wildcard", "<*> <*> <*>", "*")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		if !utf8.ValidString(a) || !utf8.ValidString(b) || !utf8.ValidString(c) {
			t.Skip()
		}
		lines := []string{a, b, c, a} // include a duplicate
		p := New(Options{Seed: 1})
		res, err := p.Train(lines)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		if err := res.Model.Validate(); err != nil {
			t.Fatalf("invalid model: %v", err)
		}
		if res.Model.Len() == 0 {
			// All lines tokenized to nothing; matching would error.
			return
		}
		matcher, err := p.NewMatcher(res.Model)
		if err != nil {
			t.Fatalf("NewMatcher: %v", err)
		}
		for _, l := range lines {
			r := matcher.Match(l)
			if r.NodeID == 0 {
				t.Fatalf("line %q unassigned", l)
			}
			// Rollup at any threshold succeeds for a matched node —
			// including temporaries, which the matcher resolves itself.
			for _, th := range []float64{0, 0.5, 1} {
				if _, err := matcher.TemplateAt(r.NodeID, th); err != nil {
					t.Fatalf("TemplateAt(%q, %v): %v", l, th, err)
				}
			}
		}
	})
}

// FuzzModelUnmarshal hardens deserialization against corrupt snapshot
// bytes: it must error or produce a valid model, never panic.
func FuzzModelUnmarshal(f *testing.F) {
	res, err := New(Options{Seed: 1}).Train([]string{"a b c", "a b d", "x y z 1"})
	if err != nil {
		f.Fatal(err)
	}
	good, err := res.Model.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	if len(good) > 10 {
		f.Add(good[:len(good)/2]) // truncated
		mutated := append([]byte(nil), good...)
		mutated[len(mutated)/3] ^= 0xFF
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Model
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything that decodes must be structurally usable.
		for id := range m.Nodes {
			if _, err := m.Ancestry(id); err != nil {
				// Dangling parents are possible in corrupt-but-decodable
				// inputs; Ancestry must report, not panic.
				continue
			}
		}
	})
}

// FuzzTemplateSimilarity checks the metric's contract on arbitrary token
// pairs: symmetric, bounded, and 1 for identical templates.
func FuzzTemplateSimilarity(f *testing.F) {
	f.Add("a b c", "a b c")
	f.Add("a <*> c", "a x c")
	f.Add("", "x")
	f.Fuzz(func(t *testing.T, x, y string) {
		a := strings.Fields(x)
		b := strings.Fields(y)
		ab := TemplateSimilarity(a, b)
		ba := TemplateSimilarity(b, a)
		if ab != ba {
			t.Fatalf("asymmetric: %v vs %v", ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("out of range: %v", ab)
		}
		if aa := TemplateSimilarity(a, a); len(a) > 0 && aa != 1 {
			t.Fatalf("self-similarity = %v", aa)
		}
	})
}
