package core

import (
	"math"
	"math/rand"
	"testing"

	"bytebrain/internal/dedup"
	"bytebrain/internal/encode"
)

func uniq(tokens ...string) *dedup.Unique {
	return &dedup.Unique{
		Tokens: tokens,
		Enc:    encode.HashEncoder{}.Encode(nil, tokens),
		Count:  1,
	}
}

// Fig. 5, Set 1: "UserService createUser token=<v> success" with three token
// values. The only unresolved position is the token value, so the node is
// fully resolved (saturation 1.0 as printed in the figure).
func fig5Set1() []*dedup.Unique {
	return []*dedup.Unique{
		uniq("UserService", "createUser", "token", "abc123", "success"),
		uniq("UserService", "createUser", "token", "xyz789", "success"),
		uniq("UserService", "createUser", "token", "def456", "success"),
	}
}

// Fig. 5, Set 2: action and status vary alongside the token value.
func fig5Set2() []*dedup.Unique {
	return []*dedup.Unique{
		uniq("UserService", "createUser", "token", "abc123", "success"),
		uniq("UserService", "deleteUser", "token", "xyz789", "failed"),
		uniq("UserService", "queryUser", "token", "def456", "success"),
	}
}

func TestSaturationFig5Set1(t *testing.T) {
	st := newPosStats(fig5Set1())
	if got := st.saturation(&Options{}); got != 1.0 {
		t.Errorf("Set 1 saturation = %v, want 1.0 (single unresolved position is a declared variable)", got)
	}
}

func TestSaturationFig5Set2Root(t *testing.T) {
	st := newPosStats(fig5Set2())
	got := st.saturation(&Options{})
	// f_c = 2/5, f_v = min(1, 1, ln2/ln3) = 0.6309, p_c = 1/4:
	// s = (0.6309·0.25 + 0.75)·0.4 = 0.3631 — printed as 0.4 in Fig. 5.
	want := (math.Log(2)/math.Log(3)*0.25 + 0.75) * 0.4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Set 2 saturation = %v, want %v", got, want)
	}
	if math.Abs(got-0.4) > 0.05 {
		t.Errorf("Set 2 saturation = %v, too far from the figure's 0.4", got)
	}
}

func TestSaturationFig5Subset46(t *testing.T) {
	// {4,6}: createUser/queryUser and abc123/def456 vary, status constant.
	st := newPosStats([]*dedup.Unique{
		uniq("UserService", "createUser", "token", "abc123", "success"),
		uniq("UserService", "queryUser", "token", "def456", "success"),
	})
	got := st.saturation(&Options{})
	// Both unresolved positions fully distinct → f_v = 1 → s = f_c = 0.6,
	// exactly the figure's printed value.
	if math.Abs(got-0.6) > 1e-12 {
		t.Errorf("{4,6} saturation = %v, want 0.6", got)
	}
}

func TestSaturationSingletonIsOne(t *testing.T) {
	st := newPosStats([]*dedup.Unique{uniq("UserService", "deleteUser", "token", "xyz789", "failed")})
	if got := st.saturation(&Options{}); got != 1.0 {
		t.Errorf("singleton saturation = %v, want 1.0", got)
	}
}

func TestSaturationAllConstantIsOne(t *testing.T) {
	st := newPosStats([]*dedup.Unique{
		uniq("a", "b"), uniq("a", "b"),
	})
	if got := st.saturation(&Options{}); got != 1.0 {
		t.Errorf("all-constant saturation = %v, want 1.0", got)
	}
}

func TestSaturationNoConstantsIsZero(t *testing.T) {
	// f_c = 0 forces s = 0 regardless of variability.
	st := newPosStats([]*dedup.Unique{
		uniq("a", "x"), uniq("b", "y"), uniq("a", "z"),
	})
	got := st.saturation(&Options{})
	if got != 0 {
		t.Errorf("saturation = %v, want 0 when no position is constant", got)
	}
}

func TestSaturationAblationVariants(t *testing.T) {
	members := fig5Set2()
	st := newPosStats(members)
	base := st.saturation(&Options{})

	noVar := st.saturation(&Options{NoVariableSaturation: true})
	if noVar != 0.4 {
		t.Errorf("NoVariableSaturation = %v, want f_c = 0.4", noVar)
	}
	noConf := st.saturation(&Options{NoConfidenceFactor: true})
	wantNoConf := math.Log(2) / math.Log(3) * 0.4
	if math.Abs(noConf-wantNoConf) > 1e-12 {
		t.Errorf("NoConfidenceFactor = %v, want f_v·f_c = %v", noConf, wantNoConf)
	}
	if base == noVar || base == noConf {
		t.Error("ablation variants did not change the score")
	}
}

func TestSaturationInUnitInterval(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.Intn(12)
		m := 1 + r.Intn(6)
		members := make([]*dedup.Unique, n)
		for i := range members {
			toks := make([]string, m)
			for j := range toks {
				toks[j] = vocab[r.Intn(len(vocab))]
			}
			members[i] = uniq(toks...)
		}
		for _, o := range []*Options{
			{}, {NoVariableSaturation: true}, {NoConfidenceFactor: true},
		} {
			s := newPosStats(members).saturation(o)
			if s < 0 || s > 1 {
				t.Fatalf("saturation %v out of [0,1] (opts %+v)", s, o)
			}
		}
	}
}

func TestSimilarityProperties(t *testing.T) {
	members := fig5Set2()
	st := newPosStats(members)
	for _, u := range members {
		sim := st.similarity(u.Enc, false)
		if sim <= 0 || sim > 1 {
			t.Errorf("member similarity %v out of (0,1]", sim)
		}
	}
	// A log sharing only the constant positions scores lower than a
	// member but higher than a completely alien log.
	partial := uniq("UserService", "dropUser", "token", "zzz", "pending")
	alien := uniq("x", "y", "z", "w", "v")
	sp := st.similarity(partial.Enc, false)
	sa := st.similarity(alien.Enc, false)
	sm := st.similarity(members[0].Enc, false)
	if !(sm > sp && sp > sa) {
		t.Errorf("similarity ordering broken: member %v, partial %v, alien %v", sm, sp, sa)
	}
	if sa != 0 {
		t.Errorf("alien similarity = %v, want 0", sa)
	}
}

func TestSimilarityPositionImportance(t *testing.T) {
	// One cluster with a stable position 0 and a noisy position 1. A
	// probe agreeing on the stable position must beat a probe agreeing
	// on the noisy position by a wider margin when importance weighting
	// is on.
	st := newPosStats([]*dedup.Unique{
		uniq("op", "x1"), uniq("op", "x2"), uniq("op", "x3"),
	})
	agreeStable := uniq("op", "zzz")
	agreeNoisy := uniq("other", "x1")
	withW := st.similarity(agreeStable.Enc, false) - st.similarity(agreeNoisy.Enc, false)
	withoutW := st.similarity(agreeStable.Enc, true) - st.similarity(agreeNoisy.Enc, true)
	if withW <= withoutW {
		t.Errorf("position importance did not emphasize stable positions: with=%v without=%v", withW, withoutW)
	}
}

func TestSimilarityLengthMismatchIsZero(t *testing.T) {
	st := newPosStats(fig5Set1())
	if got := st.similarity(uniq("a", "b").Enc, false); got != 0 {
		t.Errorf("similarity across lengths = %v, want 0", got)
	}
}

func TestTemplateRendering(t *testing.T) {
	st := newPosStats(fig5Set2())
	tmpl := st.template()
	want := []string{"UserService", Wildcard, "token", Wildcard, Wildcard}
	for i := range want {
		if tmpl[i] != want[i] {
			t.Errorf("template[%d] = %q, want %q", i, tmpl[i], want[i])
		}
	}
}

func TestUnresolvedPositions(t *testing.T) {
	st := newPosStats(fig5Set2())
	got := st.unresolvedPositions()
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("unresolved = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("unresolved = %v, want %v", got, want)
		}
	}
}

func TestPosStatsAddMatchesBatch(t *testing.T) {
	members := fig5Set2()
	batch := newPosStats(members)
	inc := &posStats{}
	for _, u := range members {
		inc.add(u)
	}
	if inc.n != batch.n || inc.positions() != batch.positions() {
		t.Fatal("incremental stats disagree with batch on shape")
	}
	for i := 0; i < batch.positions(); i++ {
		if inc.distinct(i) != batch.distinct(i) {
			t.Errorf("position %d distinct: inc %d, batch %d", i, inc.distinct(i), batch.distinct(i))
		}
	}
	if inc.saturation(&Options{}) != batch.saturation(&Options{}) {
		t.Error("incremental and batch saturation differ")
	}
}

func TestSemanticHintsDeclareTypedPositions(t *testing.T) {
	// A sparse group: only 4 distinct numeric values across 4 logs with
	// duplicates — too little statistical evidence, but the tokens are
	// all typed (digits). With hints the position resolves; without, it
	// stays ambiguous.
	members := []*dedup.Unique{
		{Tokens: []string{"req", "took", "412ms"}, Enc: encode.HashEncoder{}.Encode(nil, []string{"req", "took", "412ms"}), Count: 10},
		{Tokens: []string{"req", "took", "7ms"}, Enc: encode.HashEncoder{}.Encode(nil, []string{"req", "took", "7ms"}), Count: 10},
		{Tokens: []string{"req", "took", "93ms"}, Enc: encode.HashEncoder{}.Encode(nil, []string{"req", "took", "93ms"}), Count: 10},
		{Tokens: []string{"req", "took", "1ms"}, Enc: encode.HashEncoder{}.Encode(nil, []string{"req", "took", "1ms"}), Count: 10},
	}
	st := newPosStats(members)
	plain := st.saturation(&Options{})
	hinted := st.saturation(&Options{SemanticHints: true})
	if hinted != 1.0 {
		t.Errorf("hinted saturation = %v, want 1.0 (typed position declared)", hinted)
	}
	if plain >= hinted {
		t.Errorf("hints did not help: plain %v, hinted %v", plain, hinted)
	}
}

func TestSemanticHintsIgnoreWordPositions(t *testing.T) {
	// Categorical word positions gain nothing from hints: no digits.
	members := []*dedup.Unique{
		uniq("op", "start"), uniq("op", "stop"), uniq("op", "start"),
	}
	st := newPosStats(members)
	a := st.saturation(&Options{})
	b := st.saturation(&Options{SemanticHints: true})
	if a != b {
		t.Errorf("hints changed word-position saturation: %v vs %v", a, b)
	}
}

func TestFig5UnaffectedBySemanticHints(t *testing.T) {
	// The Fig. 5 sets contain typed token values; the hinted variant may
	// legitimately resolve them earlier, but the DEFAULT path must keep
	// the paper's exact numbers (guarded elsewhere); here we pin that
	// hints are off by default.
	st := newPosStats(fig5Set2())
	if got := st.saturation(nil); got >= 0.4 {
		t.Errorf("default saturation drifted: %v", got)
	}
}
