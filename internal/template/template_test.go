package template

import "testing"

func TestMergeConsecutiveWildcards(t *testing.T) {
	tests := []struct {
		in   []string
		want string
	}{
		{[]string{"users", Wildcard}, "users " + Wildcard},
		{[]string{"users", Wildcard, Wildcard, Wildcard}, "users " + Wildcard},
		{[]string{Wildcard, "x", Wildcard}, Wildcard + " x " + Wildcard},
		{[]string{Wildcard, Wildcard}, Wildcard},
		{[]string{"a", "b"}, "a b"},
		{nil, ""},
	}
	for _, tt := range tests {
		if got := MergeConsecutiveWildcards(tt.in); got != tt.want {
			t.Errorf("MergeConsecutiveWildcards(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestMergedTemplatesGroupVariableLengthLists(t *testing.T) {
	// The §7 example: users=<*>, users=<*> <*>, users=<*> <*> <*> all
	// display as "users <*>".
	one := MergeConsecutiveWildcards([]string{"users", Wildcard})
	two := MergeConsecutiveWildcards([]string{"users", Wildcard, Wildcard})
	three := MergeConsecutiveWildcards([]string{"users", Wildcard, Wildcard, Wildcard})
	if one != two || two != three {
		t.Errorf("variable-length lists did not merge: %q %q %q", one, two, three)
	}
}

func TestTokensRoundTrip(t *testing.T) {
	got := Tokens("users " + Wildcard + " done")
	if len(got) != 3 || got[1] != Wildcard {
		t.Errorf("Tokens = %v", got)
	}
}

func TestMatchesMultiTokenWildcard(t *testing.T) {
	tmpl := []string{"users", Wildcard}
	tests := []struct {
		tokens []string
		want   bool
	}{
		{[]string{"users", "u1"}, true},
		{[]string{"users", "u1", "u2"}, true},
		{[]string{"users", "u1", "u2", "u3"}, true},
		{[]string{"users"}, false}, // wildcard absorbs at least one
		{[]string{"groups", "g1"}, false},
	}
	for _, tt := range tests {
		if got := Matches(tmpl, tt.tokens); got != tt.want {
			t.Errorf("Matches(%v, %v) = %v, want %v", tmpl, tt.tokens, got, tt.want)
		}
	}
}

func TestMatchesExact(t *testing.T) {
	if !Matches([]string{"a", "b"}, []string{"a", "b"}) {
		t.Error("exact template did not match")
	}
	if Matches([]string{"a", "b"}, []string{"a", "b", "c"}) {
		t.Error("trailing token matched without wildcard")
	}
	if !Matches([]string{Wildcard, "end"}, []string{"x", "y", "end"}) {
		t.Error("leading multi-token wildcard failed")
	}
	if !Matches(nil, nil) {
		t.Error("empty template vs empty tokens should match")
	}
}
