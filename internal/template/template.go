// Package template provides display-level template utilities: the §7
// query-result optimization that merges consecutive wildcards (so
// variable-length list output like "users * * *" presents as "users *"),
// and parsing/rendering helpers shared by the service and tools.
package template

import (
	"strings"

	"bytebrain/internal/vars"
)

// Wildcard is the template placeholder token.
const Wildcard = vars.Wildcard

// MergeConsecutiveWildcards renders tokens as display text with runs of
// adjacent wildcards collapsed into one. The underlying fixed-length
// templates are untouched — matching stays positional and fast — only the
// presentation groups variable-length variants together, exactly as §7
// describes.
func MergeConsecutiveWildcards(tokens []string) string {
	var sb strings.Builder
	prevWildcard := false
	for _, t := range tokens {
		w := t == Wildcard
		if w && prevWildcard {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(t)
		prevWildcard = w
	}
	return sb.String()
}

// Tokens splits a display template back into tokens (whitespace-based;
// wildcards are single tokens).
func Tokens(display string) []string { return strings.Fields(display) }

// Matches reports whether log tokens fit a display template where each
// wildcard may absorb one or more tokens (used when comparing queries
// against merged templates; positional templates use the exact matcher in
// core).
func Matches(display []string, tokens []string) bool {
	return matchFrom(display, tokens, 0, 0)
}

func matchFrom(tmpl, toks []string, i, j int) bool {
	for i < len(tmpl) {
		if tmpl[i] != Wildcard {
			if j >= len(toks) || toks[j] != tmpl[i] {
				return false
			}
			i++
			j++
			continue
		}
		// Wildcard absorbs at least one token; try increasing spans.
		for span := 1; j+span <= len(toks); span++ {
			if matchFrom(tmpl, toks, i+1, j+span) {
				return true
			}
		}
		return false
	}
	return j == len(toks)
}
