package baselines

import "math/rand"

// MoLFI ports Messaoudi et al.'s search-based parser (ICPC '18) in reduced
// form: per length group, a small evolutionary search over template sets,
// with mutation flipping positions between constant and wildcard, selected
// by a weighted frequency/specificity fitness. The original's NSGA-II
// population mechanics are simplified to a (μ+λ) loop; accuracy and cost
// land in the same regime the paper reports for MoLFI (mid-pack accuracy,
// low throughput).
type MoLFI struct {
	// Generations and Population bound the search (defaults 8 and 10).
	Generations int
	Population  int
	// Seed drives the evolutionary randomness.
	Seed int64
}

// NewMoLFI returns MoLFI with default parameters.
func NewMoLFI() *MoLFI { return &MoLFI{Generations: 8, Population: 10, Seed: 1} }

// Name implements Parser.
func (m *MoLFI) Name() string { return "MoLFI" }

type molfiChrom struct {
	templates [][]string
	fitness   float64
}

// Parse implements Parser.
func (m *MoLFI) Parse(lines []string) []int {
	r := rand.New(rand.NewSource(m.Seed))
	tokenized := make([][]string, len(lines))
	byLen := map[int][]int{}
	for i, line := range lines {
		tokenized[i] = preprocess(line)
		byLen[len(tokenized[i])] = append(byLen[len(tokenized[i])], i)
	}
	out := make([]int, len(lines))
	base := 0
	for _, rows := range byLen {
		templates := m.evolve(tokenized, rows, r)
		for _, row := range rows {
			out[row] = base + matchFirst(templates, tokenized[row])
		}
		base += len(templates) + 1
	}
	return out
}

// evolve searches for a template set covering the rows of one length
// group.
func (m *MoLFI) evolve(tok [][]string, rows []int, r *rand.Rand) [][]string {
	// Seed chromosome: the distinct lines with digit tokens wildcarded.
	seedSet := map[string][]string{}
	for _, row := range rows {
		t := make([]string, len(tok[row]))
		for j, w := range tok[row] {
			if hasDigit(w) || w == wildcard {
				t[j] = wildcard
			} else {
				t[j] = w
			}
		}
		seedSet[joinKey(t)] = t
	}
	seed := make([][]string, 0, len(seedSet))
	for _, t := range seedSet {
		seed = append(seed, t)
	}
	best := molfiChrom{templates: seed}
	best.fitness = m.fitness(tok, rows, best.templates)
	for gen := 0; gen < m.Generations; gen++ {
		for p := 0; p < m.Population; p++ {
			cand := mutate(best.templates, r)
			fit := m.fitness(tok, rows, cand)
			if fit > best.fitness {
				best = molfiChrom{templates: cand, fitness: fit}
			}
		}
	}
	return best.templates
}

// mutate flips one random position of one random template between its
// original token and the wildcard (here: toggles to wildcard, or merges
// two random templates).
func mutate(templates [][]string, r *rand.Rand) [][]string {
	out := make([][]string, len(templates))
	for i, t := range templates {
		c := make([]string, len(t))
		copy(c, t)
		out[i] = c
	}
	if len(out) == 0 {
		return out
	}
	if len(out) > 1 && r.Intn(3) == 0 {
		// Merge two templates of the same length into their union.
		i, j := r.Intn(len(out)), r.Intn(len(out))
		if i != j && len(out[i]) == len(out[j]) {
			for k := range out[i] {
				if out[i][k] != out[j][k] {
					out[i][k] = wildcard
				}
			}
			out = append(out[:j], out[j+1:]...)
			return out
		}
	}
	t := out[r.Intn(len(out))]
	if len(t) > 0 {
		t[r.Intn(len(t))] = wildcard
	}
	return out
}

// fitness rewards covering all lines with few, specific templates.
func (m *MoLFI) fitness(tok [][]string, rows []int, templates [][]string) float64 {
	covered := 0
	for _, row := range rows {
		if matchFirst(templates, tok[row]) < len(templates) {
			covered++
		}
	}
	specificity := 0.0
	for _, t := range templates {
		if len(t) == 0 {
			continue
		}
		cons := 0
		for _, w := range t {
			if w != wildcard {
				cons++
			}
		}
		specificity += float64(cons) / float64(len(t))
	}
	if len(templates) > 0 {
		specificity /= float64(len(templates))
	}
	coverage := float64(covered) / float64(len(rows))
	return coverage + 0.5*specificity - 0.01*float64(len(templates))
}

// matchFirst returns the index of the first matching template, or
// len(templates) when none match.
func matchFirst(templates [][]string, tokens []string) int {
	for i, t := range templates {
		if len(t) != len(tokens) {
			continue
		}
		ok := true
		for j := range t {
			if t[j] != wildcard && t[j] != tokens[j] {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return len(templates)
}
