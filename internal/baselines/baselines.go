// Package baselines implements the sixteen baseline log parsers of the
// paper's evaluation (§5.1.2): clustering-based (IPLoM, LogCluster, LenMa),
// frequent-pattern-mining (SLCT, LFA, LogMine, SHISO), heuristic (AEL,
// Drain, Spell), search-based (LogSig, MoLFI), n-gram (Logram), plus
// surrogates for the deep-learning (UniParser, LogPPT) and LLM-backed
// (LILAC) methods.
//
// The thirteen syntax-based parsers are from-scratch ports following the
// published algorithms and the Logparser-toolkit parameterizations. The
// three learned methods cannot be reproduced offline (they need GPUs,
// pretrained models, or an LLM endpoint); their surrogates preserve the
// two properties the paper's comparison uses — near-SOTA grouping accuracy
// and orders-of-magnitude lower throughput — via sparse ground-truth
// access and calibrated per-inference delays. See DESIGN.md §3.
package baselines

import (
	"strconv"
	"strings"
	"time"

	"bytebrain/internal/tokenize"
	"bytebrain/internal/vars"
)

// Parser groups a batch of raw log lines. Parse returns one group label
// per line; labels are arbitrary integers, compared only for equality.
type Parser interface {
	Name() string
	Parse(lines []string) []int
}

// TruthAware is implemented by surrogate parsers that stand in for learned
// methods and emulate their label knowledge through sparse ground-truth
// access. The harness calls SetTruth before Parse.
type TruthAware interface {
	SetTruth(truth []int)
}

// All returns fresh instances of every baseline, in the paper's Table-2
// ordering.
func All() []Parser {
	fs := AllFactories()
	out := make([]Parser, len(fs))
	for i, f := range fs {
		out[i] = f.New()
	}
	return out
}

// Factory builds fresh instances of one baseline. Harnesses that enforce
// timeouts must construct a new instance per run: a timed-out Parse keeps
// running on its goroutine, and reconfiguring a shared instance under it
// is a data race.
type Factory struct {
	Name string
	New  func() Parser
}

// AllFactories returns a factory per baseline, in Table-2 ordering.
func AllFactories() []Factory {
	return []Factory{
		{"AEL", func() Parser { return NewAEL() }},
		{"Drain", func() Parser { return NewDrain() }},
		{"IPLoM", func() Parser { return NewIPLoM() }},
		{"LenMa", func() Parser { return NewLenMa() }},
		{"LFA", func() Parser { return NewLFA() }},
		{"LogCluster", func() Parser { return NewLogCluster() }},
		{"LogMine", func() Parser { return NewLogMine() }},
		{"Logram", func() Parser { return NewLogram() }},
		{"LogSig", func() Parser { return NewLogSig() }},
		{"MoLFI", func() Parser { return NewMoLFI() }},
		{"SHISO", func() Parser { return NewSHISO() }},
		{"SLCT", func() Parser { return NewSLCT() }},
		{"Spell", func() Parser { return NewSpell() }},
		{"UniParser", func() Parser { return NewUniParser() }},
		{"LogPPT", func() Parser { return NewLogPPT() }},
		{"LILAC", func() Parser { return NewLILAC() }},
	}
}

// Syntax returns the thirteen syntax-based parsers only.
func Syntax() []Parser {
	return []Parser{
		NewAEL(), NewDrain(), NewIPLoM(), NewLenMa(), NewLFA(),
		NewLogCluster(), NewLogMine(), NewLogram(), NewLogSig(),
		NewMoLFI(), NewSHISO(), NewSLCT(), NewSpell(),
	}
}

// Shared preprocessing: common variable substitution followed by the same
// Listing-1 tokenization the core parser uses. The Logparser toolkit gives
// every baseline dataset-tuned splitting regexes; a single shared
// high-quality tokenizer is the equivalent, and keeps the comparison
// about the algorithms rather than their preprocessing.
var (
	sharedReplacer  = vars.Default()
	sharedTokenizer = tokenize.NewFast()
)

func preprocess(line string) []string {
	tokens := sharedTokenizer.Tokenize(sharedReplacer.ReplaceTokenSafe(line))
	return vars.CanonicalizeTokens(tokens)
}

// hasDigit reports whether any byte of s is an ASCII digit — the standard
// toolkit heuristic for variable-ish tokens.
func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// wildcard is the template placeholder shared by all baselines.
const wildcard = vars.Wildcard

// groupByKey assigns consecutive group IDs to equal string keys.
type groupByKey struct {
	ids map[string]int
}

func newGroupByKey() *groupByKey { return &groupByKey{ids: make(map[string]int)} }

func (g *groupByKey) id(key string) int {
	if id, ok := g.ids[key]; ok {
		return id
	}
	id := len(g.ids)
	g.ids[key] = id
	return id
}

// joinKey renders tokens into a map key.
func joinKey(tokens []string) string { return strings.Join(tokens, "\x00") }

// lenKey prefixes a key with the token count so different lengths never
// collide.
func lenKey(tokens []string) string {
	return strconv.Itoa(len(tokens)) + "|" + joinKey(tokens)
}

// throttle accumulates simulated per-item inference cost and sleeps in
// coarse slices, so surrogates pay their calibrated latency without
// issuing one timer syscall per log.
type throttle struct {
	perItem time.Duration
	owed    time.Duration
}

func (t *throttle) tick() {
	t.owed += t.perItem
	if t.owed >= 2*time.Millisecond {
		time.Sleep(t.owed)
		t.owed = 0
	}
}

func (t *throttle) flush() {
	if t.owed > 0 {
		time.Sleep(t.owed)
		t.owed = 0
	}
}
