package baselines

import (
	"math/rand"
	"strconv"
)

// LogMine ports Hamooni et al.'s fast pattern recognition (CIKM '16):
// one-pass max-distance clustering at increasing distance levels, merging
// cluster templates upward into a pattern hierarchy. Grouping uses the
// level-1 clusters, as the toolkit does.
type LogMine struct {
	// MaxDist is the level-1 clustering distance threshold (default
	// 0.005 in the paper for normalized distance; the toolkit uses
	// 0.1-scale distances — we use 0.3 on the token-mismatch ratio).
	MaxDist float64
	// Levels is the number of merge levels (default 3).
	Levels int
}

// NewLogMine returns LogMine with default parameters.
func NewLogMine() *LogMine { return &LogMine{MaxDist: 0.3, Levels: 3} }

// Name implements Parser.
func (l *LogMine) Name() string { return "LogMine" }

type logMineCluster struct {
	rep []string // representative template
	id  int
}

// Parse implements Parser.
func (l *LogMine) Parse(lines []string) []int {
	out := make([]int, len(lines))
	clusters := map[int][]*logMineCluster{}
	next := 0
	for i, line := range lines {
		tokens := preprocess(line)
		var best *logMineCluster
		for _, c := range clusters[len(tokens)] {
			if logMineDist(c.rep, tokens) <= l.MaxDist {
				best = c
				break // one-pass: first cluster within distance wins
			}
		}
		if best == nil {
			best = &logMineCluster{rep: append([]string(nil), tokens...), id: next}
			next++
			clusters[len(tokens)] = append(clusters[len(tokens)], best)
		} else {
			mergeTemplate(best.rep, tokens)
		}
		out[i] = best.id
	}
	// Higher levels merge clusters; grouping stays at level 1, so they
	// influence nothing here but are computed to preserve the cost
	// profile of the original (it is the slowest syntax baseline).
	for level := 2; level <= l.Levels; level++ {
		threshold := l.MaxDist * float64(level)
		for _, cs := range clusters {
			for i := 1; i < len(cs); i++ {
				for j := 0; j < i; j++ {
					if logMineDist(cs[i].rep, cs[j].rep) <= threshold {
						break
					}
				}
			}
		}
	}
	return out
}

// logMineDist is 1 − matching/len, wildcards matching anything.
func logMineDist(a, b []string) float64 {
	if len(a) != len(b) {
		return 1
	}
	if len(a) == 0 {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] || a[i] == wildcard {
			match++
		}
	}
	return 1 - float64(match)/float64(len(a))
}

// SHISO ports Mizutani's incremental tree clustering (SCC '13): each new
// log descends a tree with bounded branching; node similarity uses
// character-class composition vectors.
type SHISO struct {
	// Threshold is the similarity threshold for joining a node (default
	// 0.6).
	Threshold float64
	// MaxChildren bounds tree branching (default 4, as in the paper).
	MaxChildren int
}

// NewSHISO returns SHISO with default parameters.
func NewSHISO() *SHISO { return &SHISO{Threshold: 0.6, MaxChildren: 4} }

// Name implements Parser.
func (s *SHISO) Name() string { return "SHISO" }

type shisoNode struct {
	template []string
	children []*shisoNode
	id       int
}

// Parse implements Parser.
func (s *SHISO) Parse(lines []string) []int {
	root := &shisoNode{id: -1}
	out := make([]int, len(lines))
	next := 0
	for i, line := range lines {
		tokens := preprocess(line)
		node := s.search(root, tokens)
		if node == nil {
			node = &shisoNode{template: append([]string(nil), tokens...), id: next}
			next++
			s.insert(root, node)
		} else {
			mergeTemplate(node.template, tokens)
		}
		out[i] = node.id
	}
	return out
}

func (s *SHISO) search(root *shisoNode, tokens []string) *shisoNode {
	cur := root
	for {
		var best *shisoNode
		bestSim := -1.0
		for _, c := range cur.children {
			sim := shisoSim(c.template, tokens)
			if sim > bestSim {
				bestSim, best = sim, c
			}
		}
		if best == nil {
			return nil
		}
		if bestSim >= s.Threshold && len(best.template) == len(tokens) {
			return best
		}
		cur = best
		if len(cur.children) == 0 {
			return nil
		}
	}
}

func (s *SHISO) insert(root *shisoNode, node *shisoNode) {
	cur := root
	for len(cur.children) >= s.MaxChildren {
		// Descend into the most similar child.
		var best *shisoNode
		bestSim := -1.0
		for _, c := range cur.children {
			sim := shisoSim(c.template, node.template)
			if sim > bestSim {
				bestSim, best = sim, c
			}
		}
		cur = best
	}
	cur.children = append(cur.children, node)
}

// shisoSim compares character-class composition: each token maps to a
// 4-vector (upper, lower, digit, other); similarity is 1 − mean vector
// distance over aligned positions.
func shisoSim(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var total float64
	for i := 0; i < n; i++ {
		total += charClassSim(a[i], b[i])
	}
	longer := len(a)
	if len(b) > longer {
		longer = len(b)
	}
	return total / float64(longer)
}

func charClassSim(a, b string) float64 {
	if a == b {
		return 1
	}
	va, vb := charClassVec(a), charClassVec(b)
	var d float64
	for i := range va {
		diff := va[i] - vb[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return 1 - d/2
}

func charClassVec(s string) [4]float64 {
	var v [4]float64
	if len(s) == 0 {
		return v
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			v[0]++
		case c >= 'a' && c <= 'z':
			v[1]++
		case c >= '0' && c <= '9':
			v[2]++
		default:
			v[3]++
		}
	}
	for i := range v {
		v[i] /= float64(len(s))
	}
	return v
}

// LogSig ports Tang et al.'s message-signature search (CIKM '11): k groups
// refined by local search over token-pair potentials. It requires the
// target group count k, as the original does; SetGroups provides it (the
// harness passes the dataset's template count, mirroring the toolkit's
// per-dataset configuration).
type LogSig struct {
	// K is the number of groups (default 32 when SetGroups is not
	// called).
	K int
	// Iters is the number of local-search passes (default 5).
	Iters int
	// Seed drives the initial random assignment.
	Seed int64
}

// NewLogSig returns LogSig with defaults.
func NewLogSig() *LogSig { return &LogSig{K: 32, Iters: 5, Seed: 1} }

// Name implements Parser.
func (l *LogSig) Name() string { return "LogSig" }

// SetGroups sets the target group count.
func (l *LogSig) SetGroups(k int) {
	if k > 0 {
		l.K = k
	}
}

// Parse implements Parser.
func (l *LogSig) Parse(lines []string) []int {
	// Snapshot configuration up front: Parse may outlive a harness
	// timeout, and the instance must not observe later SetGroups calls.
	k := l.K
	iters := l.Iters
	r := rand.New(rand.NewSource(l.Seed))
	if len(lines) == 0 {
		return nil
	}
	// Cluster distinct messages; duplicates inherit their
	// representative's group (identical messages always co-group).
	distinctIdx := map[string]int{}
	rowOf := make([]int, len(lines))
	var distinct []string
	for i, line := range lines {
		d, ok := distinctIdx[line]
		if !ok {
			d = len(distinct)
			distinctIdx[line] = d
			distinct = append(distinct, line)
		}
		rowOf[i] = d
	}
	n := len(distinct)
	pairsOf := make([][]string, n)
	for i, line := range distinct {
		tokens := preprocess(line)
		var pairs []string
		for a := 0; a < len(tokens); a++ {
			for b := a + 1; b < len(tokens) && b < a+8; b++ {
				pairs = append(pairs, tokens[a]+"\x00"+tokens[b])
			}
		}
		pairsOf[i] = pairs
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = r.Intn(k)
	}
	// pairCount[g][pair] = messages in g containing pair.
	pairCount := make([]map[string]int, k)
	size := make([]int, k)
	for g := range pairCount {
		pairCount[g] = map[string]int{}
	}
	for i, g := range assign {
		size[g]++
		for _, p := range pairsOf[i] {
			pairCount[g][p]++
		}
	}
	score := func(i, g, cur int) float64 {
		// Evaluate i against g excluding i's own contribution, so a
		// message stranded alone does not score its own singleton group
		// as a perfect fit.
		sz := size[g]
		self := 0
		if g == cur {
			sz--
			self = 1
		}
		if sz <= 0 {
			return 0
		}
		var s float64
		for _, p := range pairsOf[i] {
			f := float64(pairCount[g][p]-self) / float64(sz)
			s += f * f
		}
		return s
	}
	for iter := 0; iter < iters; iter++ {
		moved := false
		for i := 0; i < n; i++ {
			cur := assign[i]
			best, bestScore := cur, score(i, cur, cur)
			for g := 0; g < k; g++ {
				if g == cur {
					continue
				}
				if sc := score(i, g, cur); sc > bestScore {
					bestScore, best = sc, g
				}
			}
			if best != cur {
				moved = true
				size[cur]--
				size[best]++
				for _, p := range pairsOf[i] {
					pairCount[cur][p]--
					pairCount[best][p]++
				}
				assign[i] = best
			}
		}
		if !moved {
			break
		}
	}
	out := make([]int, len(lines))
	for i := range lines {
		out[i] = assign[rowOf[i]]
	}
	return out
}

// Logram ports Dai et al.'s n-gram dictionary parser (TSE '20): token
// 2-gram/3-gram frequencies decide which tokens are dynamic; lines group
// by their static-token skeleton.
type Logram struct {
	// TriThreshold and BiThreshold are the dictionary frequency cutoffs
	// (defaults in the paper's tuning range).
	TriThreshold int
	BiThreshold  int
}

// NewLogram returns Logram with default thresholds.
func NewLogram() *Logram { return &Logram{TriThreshold: 4, BiThreshold: 8} }

// Name implements Parser.
func (l *Logram) Name() string { return "Logram" }

// Parse implements Parser.
func (l *Logram) Parse(lines []string) []int {
	tokenized := make([][]string, len(lines))
	bi := map[string]int{}
	tri := map[string]int{}
	for i, line := range lines {
		tokenized[i] = preprocess(line)
		t := tokenized[i]
		for j := 0; j+1 < len(t); j++ {
			bi[t[j]+"\x00"+t[j+1]]++
		}
		for j := 0; j+2 < len(t); j++ {
			tri[t[j]+"\x00"+t[j+1]+"\x00"+t[j+2]]++
		}
	}
	g := newGroupByKey()
	out := make([]int, len(lines))
	skel := make([]string, 0, 32)
	for i, t := range tokenized {
		skel = skel[:0]
		for j := range t {
			if l.static(t, j, bi, tri) {
				skel = append(skel, t[j])
			} else {
				skel = append(skel, wildcard)
			}
		}
		out[i] = g.id(strconv.Itoa(len(skel)) + "|" + joinKey(skel))
	}
	return out
}

// static decides whether token j of t is a constant: some 3-gram covering
// it is frequent, or (at the edges) a covering 2-gram is frequent.
func (l *Logram) static(t []string, j int, bi, tri map[string]int) bool {
	for s := j - 2; s <= j; s++ {
		if s >= 0 && s+2 < len(t) {
			if tri[t[s]+"\x00"+t[s+1]+"\x00"+t[s+2]] >= l.TriThreshold {
				return true
			}
		}
	}
	for s := j - 1; s <= j; s++ {
		if s >= 0 && s+1 < len(t) {
			if bi[t[s]+"\x00"+t[s+1]] >= l.BiThreshold {
				return true
			}
		}
	}
	return false
}
