package baselines

import (
	"math"
	"strconv"
)

// AEL ports Jiang et al.'s Abstracting Execution Logs (QSIC '08):
// anonymize obvious dynamic tokens, categorize by (token count, anonymized
// token count), then group by the anonymized skeleton with a reconcile
// pass that merges skeletons differing in a single position.
type AEL struct{}

// NewAEL returns the AEL parser.
func NewAEL() *AEL { return &AEL{} }

// Name implements Parser.
func (a *AEL) Name() string { return "AEL" }

// Parse implements Parser.
func (a *AEL) Parse(lines []string) []int {
	keys := make([]string, len(lines))
	skeletons := make([][]string, len(lines))
	for i, line := range lines {
		tokens := preprocess(line)
		skel := make([]string, len(tokens))
		anon := 0
		for j, t := range tokens {
			if hasDigit(t) || t == wildcard {
				skel[j] = wildcard
				anon++
			} else {
				skel[j] = t
			}
		}
		skeletons[i] = skel
		keys[i] = strconv.Itoa(len(tokens)) + ":" + strconv.Itoa(anon) + "|" + joinKey(skel)
	}
	// Reconcile: within a (len, anon) bin, merge skeletons that differ at
	// exactly one position.
	canon := map[string]string{}
	byBin := map[string][]string{}
	for _, k := range keys {
		if _, ok := canon[k]; ok {
			continue
		}
		canon[k] = k
		bin := k[:indexByte(k, '|')]
		merged := false
		for _, other := range byBin[bin] {
			if offByOne(k, other) {
				canon[k] = canon[other]
				merged = true
				break
			}
		}
		if !merged {
			byBin[bin] = append(byBin[bin], k)
		}
	}
	g := newGroupByKey()
	out := make([]int, len(lines))
	for i, k := range keys {
		out[i] = g.id(canon[k])
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}

// offByOne reports whether two bin-prefixed skeleton keys differ in exactly
// one token.
func offByOne(a, b string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	ta := splitKey(a[indexByte(a, '|')+1:])
	tb := splitKey(b[indexByte(b, '|')+1:])
	if len(ta) != len(tb) {
		return false
	}
	diff := 0
	for i := range ta {
		if ta[i] != tb[i] {
			diff++
			if diff > 1 {
				return false
			}
		}
	}
	return diff == 1
}

func splitKey(key string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == 0 {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return out
}

// LFA ports Nagappan & Vouk's line-frequency abstraction (MSR '10): global
// token frequencies are computed per position; within each line, tokens
// whose frequency falls below the line's most common frequency are
// variables.
type LFA struct{}

// NewLFA returns the LFA parser.
func NewLFA() *LFA { return &LFA{} }

// Name implements Parser.
func (l *LFA) Name() string { return "LFA" }

// Parse implements Parser.
func (l *LFA) Parse(lines []string) []int {
	tokenized := make([][]string, len(lines))
	freq := map[string]int{}
	for i, line := range lines {
		tokenized[i] = preprocess(line)
		for pos, t := range tokenized[i] {
			freq[posTok(pos, t)]++
		}
	}
	g := newGroupByKey()
	out := make([]int, len(lines))
	skel := make([]string, 0, 32)
	for i, tokens := range tokenized {
		skel = skel[:0]
		// Modal frequency of the line's tokens.
		counts := map[int]int{}
		for pos, t := range tokens {
			counts[freq[posTok(pos, t)]]++
		}
		modal, modalN := 0, 0
		for f, n := range counts {
			if n > modalN || (n == modalN && f > modal) {
				modal, modalN = f, n
			}
		}
		for pos, t := range tokens {
			if freq[posTok(pos, t)] >= modal {
				skel = append(skel, t)
			} else {
				skel = append(skel, wildcard)
			}
		}
		out[i] = g.id(lenKey(skel))
	}
	return out
}

func posTok(pos int, tok string) string { return strconv.Itoa(pos) + "\x00" + tok }

// LogCluster ports Vaarandi & Pihelgas' frequent-word clustering: words
// with support of at least Support fraction of lines are "frequent"; each
// line's cluster key is its subsequence of frequent words.
type LogCluster struct {
	// Support is the relative frequent-word support (default 0.02).
	Support float64
}

// NewLogCluster returns LogCluster with default support.
func NewLogCluster() *LogCluster { return &LogCluster{Support: 0.02} }

// Name implements Parser.
func (l *LogCluster) Name() string { return "LogCluster" }

// Parse implements Parser.
func (l *LogCluster) Parse(lines []string) []int {
	tokenized := make([][]string, len(lines))
	support := map[string]int{}
	for i, line := range lines {
		tokenized[i] = preprocess(line)
		seen := map[string]struct{}{}
		for _, t := range tokenized[i] {
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				support[t]++
			}
		}
	}
	min := int(l.Support * float64(len(lines)))
	if min < 2 {
		min = 2
	}
	g := newGroupByKey()
	out := make([]int, len(lines))
	key := make([]string, 0, 32)
	for i, tokens := range tokenized {
		key = key[:0]
		for _, t := range tokens {
			if support[t] >= min {
				key = append(key, t)
			}
		}
		out[i] = g.id(joinKey(key))
	}
	return out
}

// SLCT ports Vaarandi's Simple Logfile Clustering Tool (IPOM '03):
// frequent (position, word) pairs with absolute support at least Support
// form cluster candidates; a line's template keeps its frequent positional
// words and wildcards the rest.
type SLCT struct {
	// Support is the relative support threshold (default 0.01).
	Support float64
}

// NewSLCT returns SLCT with default support.
func NewSLCT() *SLCT { return &SLCT{Support: 0.01} }

// Name implements Parser.
func (s *SLCT) Name() string { return "SLCT" }

// Parse implements Parser.
func (s *SLCT) Parse(lines []string) []int {
	tokenized := make([][]string, len(lines))
	support := map[string]int{}
	for i, line := range lines {
		tokenized[i] = preprocess(line)
		for pos, t := range tokenized[i] {
			support[posTok(pos, t)]++
		}
	}
	min := int(s.Support * float64(len(lines)))
	if min < 2 {
		min = 2
	}
	g := newGroupByKey()
	out := make([]int, len(lines))
	skel := make([]string, 0, 32)
	for i, tokens := range tokenized {
		skel = skel[:0]
		for pos, t := range tokens {
			if support[posTok(pos, t)] >= min {
				skel = append(skel, t)
			} else {
				skel = append(skel, wildcard)
			}
		}
		out[i] = g.id(lenKey(skel))
	}
	return out
}

// LenMa ports Shima's length-matrix clustering: lines cluster by token
// count and the cosine similarity of their word-length vectors.
type LenMa struct {
	// Threshold is the cosine-similarity threshold (default 0.78).
	Threshold float64
}

// NewLenMa returns LenMa with the paper's default threshold.
func NewLenMa() *LenMa { return &LenMa{Threshold: 0.78} }

// Name implements Parser.
func (l *LenMa) Name() string { return "LenMa" }

type lenmaCluster struct {
	lengths []float64
	tokens  []string
	id      int
}

// Parse implements Parser.
func (l *LenMa) Parse(lines []string) []int {
	clusters := map[int][]*lenmaCluster{}
	out := make([]int, len(lines))
	next := 0
	for i, line := range lines {
		tokens := preprocess(line)
		vec := make([]float64, len(tokens))
		for j, t := range tokens {
			vec[j] = float64(len(t))
		}
		var best *lenmaCluster
		bestSim := -1.0
		for _, c := range clusters[len(tokens)] {
			sim := cosine(c.lengths, vec)
			// Positional word agreement refines the decision, as in the
			// original's "exact match" shortcut.
			if sim >= l.Threshold && sim > bestSim {
				bestSim, best = sim, c
			}
		}
		if best == nil {
			best = &lenmaCluster{lengths: vec, tokens: append([]string(nil), tokens...), id: next}
			next++
			clusters[len(tokens)] = append(clusters[len(tokens)], best)
		} else {
			for j := range best.lengths {
				if best.tokens[j] != tokens[j] {
					best.tokens[j] = wildcard
					// Mean-update the length profile.
					best.lengths[j] = (best.lengths[j] + vec[j]) / 2
				}
			}
		}
		out[i] = best.id
	}
	return out
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
