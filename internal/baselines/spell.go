package baselines

// Spell is a port of Du & Li's streaming LCS parser (ICDM '16): each
// incoming log joins the existing LCSObject whose longest common
// subsequence with it covers at least half of the log, updating the
// object's template to the LCS (dropped positions become wildcards).
type Spell struct {
	// Tau is the LCS coverage threshold (default 0.5, as in the paper).
	Tau float64
}

// NewSpell returns Spell with default parameters.
func NewSpell() *Spell { return &Spell{Tau: 0.5} }

// Name implements Parser.
func (s *Spell) Name() string { return "Spell" }

type lcsObject struct {
	template []string // with wildcards
	id       int
}

// Parse implements Parser.
func (s *Spell) Parse(lines []string) []int {
	out := make([]int, len(lines))
	// Bucket objects by a coarse key (token count band) to keep the
	// scan tractable; Spell's prefix tree serves the same purpose.
	objects := make(map[int][]*lcsObject)
	nextID := 0
	for i, line := range lines {
		tokens := preprocess(line)
		var best *lcsObject
		bestLen := 0
		// Candidate objects have comparable constant counts; scan the
		// nearby length buckets.
		for b := len(tokens) / 2; b <= len(tokens); b++ {
			for _, obj := range objects[b] {
				l := lcsLen(constantsOf(obj.template), tokens)
				if l >= int(s.Tau*float64(len(tokens))) && l > bestLen {
					bestLen, best = l, obj
				}
			}
		}
		if best == nil {
			obj := &lcsObject{template: append([]string(nil), tokens...), id: nextID}
			nextID++
			objects[len(constantsOf(obj.template))] = append(objects[len(constantsOf(obj.template))], obj)
			out[i] = obj.id
			continue
		}
		// Refine the template to the LCS; positions outside it become
		// wildcards.
		oldKey := len(constantsOf(best.template))
		best.template = lcsTemplate(constantsOf(best.template), tokens)
		newKey := len(constantsOf(best.template))
		if newKey != oldKey {
			objects[oldKey] = removeObj(objects[oldKey], best)
			objects[newKey] = append(objects[newKey], best)
		}
		out[i] = best.id
	}
	return out
}

func removeObj(list []*lcsObject, obj *lcsObject) []*lcsObject {
	for i, o := range list {
		if o == obj {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// constantsOf strips wildcards, yielding the constant skeleton Spell
// compares by LCS.
func constantsOf(template []string) []string {
	out := make([]string, 0, len(template))
	for _, t := range template {
		if t != wildcard {
			out = append(out, t)
		}
	}
	return out
}

// lcsLen computes the length of the longest common subsequence of a and b.
func lcsLen(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// lcsTemplate rebuilds a template from the LCS of the old constant
// skeleton and the new token sequence: LCS tokens stay, everything else in
// the new sequence becomes a wildcard.
func lcsTemplate(a, b []string) []string {
	// Standard LCS backtrack over the full table.
	dp := make([][]int, len(a)+1)
	for i := range dp {
		dp[i] = make([]int, len(b)+1)
	}
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				dp[i][j] = dp[i-1][j-1] + 1
			case dp[i-1][j] >= dp[i][j-1]:
				dp[i][j] = dp[i-1][j]
			default:
				dp[i][j] = dp[i][j-1]
			}
		}
	}
	inLCS := make([]bool, len(b))
	for i, j := len(a), len(b); i > 0 && j > 0; {
		switch {
		case a[i-1] == b[j-1]:
			inLCS[j-1] = true
			i--
			j--
		case dp[i-1][j] >= dp[i][j-1]:
			i--
		default:
			j--
		}
	}
	out := make([]string, len(b))
	for j := range b {
		if inLCS[j] {
			out[j] = b[j]
		} else {
			out[j] = wildcard
		}
	}
	return out
}
