package baselines

import (
	"math/rand"
	"regexp"
	"time"
)

// This file holds the surrogates for the three learned parsers the paper
// compares against. The real systems need GPUs (UniParser, LogPPT) or a
// commercial LLM endpoint (LILAC); the surrogates preserve exactly the two
// properties the paper's comparison draws on — their grouping accuracy
// regime and their orders-of-magnitude throughput deficit — while running
// offline. Substitutions are documented in DESIGN.md §3. Delays are
// calibrated so the relative throughput ratios of Fig. 6 hold on
// commodity hardware: UniParser ≈ 2.1 k logs/s, LogPPT ≈ 1.1 k logs/s,
// LILAC cache-limited at a few k logs/s.

// UniParser is the surrogate for Liu et al.'s unified deep-learning parser
// (WWW '22). The real model labels every token with a BiLSTM; the
// surrogate's token-class labeler (a bank of typed-variable recognizers)
// reproduces its per-token semantic masking, and a calibrated per-log
// delay reproduces its inference cost.
type UniParser struct {
	// PerLog is the simulated inference latency (default ≈ 0.45 ms,
	// matching the paper's ≈ 2.1 k logs/s).
	PerLog time.Duration
}

// NewUniParser returns the UniParser surrogate.
func NewUniParser() *UniParser { return &UniParser{PerLog: 450 * time.Microsecond} }

// Name implements Parser.
func (u *UniParser) Name() string { return "UniParser" }

var semanticVarRes = []*regexp.Regexp{
	regexp.MustCompile(`^\d+$`),
	regexp.MustCompile(`^0x[0-9a-fA-F]+$`),
	regexp.MustCompile(`^\d+(\.\d+)+$`),
	regexp.MustCompile(`^[0-9a-fA-F]{6,}$`),
	regexp.MustCompile(`^.*\d.*$`),
	regexp.MustCompile(`^/[^ ]*$`),
	regexp.MustCompile(`^[a-z]+://`),
}

// Parse implements Parser.
func (u *UniParser) Parse(lines []string) []int {
	g := newGroupByKey()
	out := make([]int, len(lines))
	th := throttle{perItem: u.PerLog}
	skel := make([]string, 0, 32)
	for i, line := range lines {
		tokens := preprocess(line)
		skel = skel[:0]
		for _, t := range tokens {
			if t == wildcard || semanticVariable(t) {
				skel = append(skel, wildcard)
			} else {
				skel = append(skel, t)
			}
		}
		out[i] = g.id(lenKey(skel))
		th.tick()
	}
	th.flush()
	return out
}

func semanticVariable(t string) bool {
	for _, re := range semanticVarRes {
		if re.MatchString(t) {
			return true
		}
	}
	return false
}

// LogPPT is the surrogate for Le & Zhang's prompt-tuned few-shot parser
// (ICSE '23). The real system fine-tunes RoBERTa on 32 labeled samples;
// the surrogate uses the same budget of 32 labeled logs (ground truth via
// SetTruth) to learn per-template variable masks and nearest-template
// assignment, plus a calibrated per-log delay for the transformer forward
// pass.
type LogPPT struct {
	// Shots is the labeled sample budget (default 32, as in the paper).
	Shots int
	// PerLog is the simulated inference latency (default ≈ 0.85 ms,
	// matching ≈ 1.1 k logs/s).
	PerLog time.Duration
	// Seed selects the labeled samples.
	Seed int64

	truth []int
}

// NewLogPPT returns the LogPPT surrogate.
func NewLogPPT() *LogPPT {
	return &LogPPT{Shots: 32, PerLog: 850 * time.Microsecond, Seed: 1}
}

// Name implements Parser.
func (l *LogPPT) Name() string { return "LogPPT" }

// SetTruth implements TruthAware.
func (l *LogPPT) SetTruth(truth []int) { l.truth = truth }

// Parse implements Parser.
func (l *LogPPT) Parse(lines []string) []int {
	r := rand.New(rand.NewSource(l.Seed))
	// Few-shot phase: gather up to Shots labeled logs grouped by label.
	// Tokens stable across a label's samples are template keywords;
	// token *values* observed varying at a position are learned as
	// variable vocabulary — the non-digit variables (user names, package
	// ids) that pure digit-masking misses. This mirrors what prompt
	// tuning extracts from the 32 labeled samples.
	keywords := map[string]bool{}
	varVocab := map[string]bool{}
	if l.truth != nil {
		byLabel := map[int][][]string{}
		sampled := 0
		for _, idx := range r.Perm(len(lines)) {
			if sampled >= l.Shots {
				break
			}
			byLabel[l.truth[idx]] = append(byLabel[l.truth[idx]], preprocess(lines[idx]))
			sampled++
		}
		for _, sample := range byLabel {
			if len(sample) == 0 {
				continue
			}
			counts := map[string]int{}
			for _, toks := range sample {
				for _, t := range toks {
					counts[t]++
				}
			}
			for t, c := range counts {
				if c >= len(sample) && !hasDigit(t) {
					keywords[t] = true
				}
			}
			if len(sample) >= 2 {
				// Positions where the samples disagree expose variable
				// values.
				first := sample[0]
				for _, toks := range sample[1:] {
					if len(toks) != len(first) {
						continue
					}
					for j := range toks {
						if toks[j] != first[j] {
							varVocab[toks[j]] = true
							varVocab[first[j]] = true
						}
					}
				}
			}
		}
	}
	g := newGroupByKey()
	out := make([]int, len(lines))
	th := throttle{perItem: l.PerLog}
	skel := make([]string, 0, 32)
	for i, line := range lines {
		tokens := preprocess(line)
		skel = skel[:0]
		for _, t := range tokens {
			switch {
			case keywords[t]:
				skel = append(skel, t)
			case hasDigit(t) || t == wildcard || varVocab[t]:
				skel = append(skel, wildcard)
			default:
				skel = append(skel, t)
			}
		}
		out[i] = g.id(lenKey(skel))
		th.tick()
	}
	th.flush()
	return out
}

// LILAC is the surrogate for Jiang et al.'s LLM-backed parser with
// adaptive parsing cache (FSE '24). The cache is implemented faithfully (a
// masked-key template cache in front of the expensive query path); the LLM
// query itself is an oracle lookup of the ground-truth label with a
// calibrated latency, reproducing LILAC's defining profile: top grouping
// accuracy, throughput bounded by cache misses.
type LILAC struct {
	// PerQuery is the simulated LLM inference latency per cache miss
	// (default 40 ms — three orders below a real GPT call, scaled to
	// keep the Fig. 6 ratio at our dataset scale).
	PerQuery time.Duration
	// PerHit is the cache-hit cost (default 50 µs).
	PerHit time.Duration

	truth []int
}

// NewLILAC returns the LILAC surrogate.
func NewLILAC() *LILAC {
	return &LILAC{PerQuery: 40 * time.Millisecond, PerHit: 50 * time.Microsecond}
}

// Name implements Parser.
func (l *LILAC) Name() string { return "LILAC" }

// SetTruth implements TruthAware.
func (l *LILAC) SetTruth(truth []int) { l.truth = truth }

// Parse implements Parser.
func (l *LILAC) Parse(lines []string) []int {
	cache := map[string]int{}
	out := make([]int, len(lines))
	next := 1 << 20 // labels for the no-truth fallback
	hit := throttle{perItem: l.PerHit}
	for i, line := range lines {
		tokens := preprocess(line)
		skel := make([]string, len(tokens))
		for j, t := range tokens {
			if hasDigit(t) || t == wildcard {
				skel[j] = wildcard
			} else {
				skel[j] = t
			}
		}
		key := lenKey(skel)
		if id, ok := cache[key]; ok {
			out[i] = id
			hit.tick()
			continue
		}
		// Cache miss: "query the LLM".
		time.Sleep(l.PerQuery)
		var id int
		if l.truth != nil {
			id = l.truth[i]
		} else {
			id = next
			next++
		}
		cache[key] = id
		out[i] = id
	}
	hit.flush()
	return out
}
