package baselines

// IPLoM ports Makanju et al.'s iterative partitioning (KDD '09): partition
// by event size, then by the token position with the fewest distinct
// values, then by the bijection relationship between the two most-uniform
// positions.
type IPLoM struct {
	// CT is the cluster-goodness threshold deciding whether a partition
	// skips step 3 (default 0.35).
	CT float64
	// LowerBound gates which bijection mappings split (default 0.25).
	LowerBound float64
	// MaxPositionCard caps step-2 splits: positions with more distinct
	// values than this fraction of the partition are variables, not
	// split keys (default 0.3).
	MaxPositionCard float64
}

// NewIPLoM returns IPLoM with the toolkit defaults.
func NewIPLoM() *IPLoM {
	return &IPLoM{CT: 0.35, LowerBound: 0.25, MaxPositionCard: 0.3}
}

// Name implements Parser.
func (p *IPLoM) Name() string { return "IPLoM" }

type iplomPartition struct {
	rows []int // indices into the tokenized corpus
}

// Parse implements Parser.
func (p *IPLoM) Parse(lines []string) []int {
	tokenized := make([][]string, len(lines))
	for i, l := range lines {
		tokenized[i] = preprocess(l)
	}

	// Step 1: partition by event size.
	bySize := map[int]*iplomPartition{}
	for i, t := range tokenized {
		part, ok := bySize[len(t)]
		if !ok {
			part = &iplomPartition{}
			bySize[len(t)] = part
		}
		part.rows = append(part.rows, i)
	}

	out := make([]int, len(lines))
	next := 0
	assign := func(rows []int) {
		for _, r := range rows {
			out[r] = next
		}
		next++
	}
	for size, part := range bySize {
		if size == 0 {
			assign(part.rows)
			continue
		}
		for _, p2 := range p.splitByPosition(tokenized, part.rows, size) {
			for _, p3 := range p.splitByBijection(tokenized, p2, size) {
				assign(p3)
			}
		}
	}
	return out
}

// splitByPosition implements step 2: split on the position with the lowest
// distinct-token cardinality (>1), unless even the best position looks like
// a variable.
func (p *IPLoM) splitByPosition(tok [][]string, rows []int, size int) [][]int {
	bestPos, bestCard := -1, int(^uint(0)>>1)
	for pos := 0; pos < size; pos++ {
		seen := map[string]struct{}{}
		for _, r := range rows {
			seen[tok[r][pos]] = struct{}{}
		}
		if card := len(seen); card > 1 && card < bestCard {
			bestCard, bestPos = card, pos
		}
	}
	if bestPos < 0 || float64(bestCard) > p.MaxPositionCard*float64(len(rows))+1 {
		return [][]int{rows}
	}
	byTok := map[string][]int{}
	for _, r := range rows {
		byTok[tok[r][bestPos]] = append(byTok[tok[r][bestPos]], r)
	}
	parts := make([][]int, 0, len(byTok))
	for _, rs := range byTok {
		parts = append(parts, rs)
	}
	return parts
}

// splitByBijection implements step 3: choose the two positions whose
// cardinalities equal the most common cardinality, inspect the mapping
// between their token sets, and split 1-1 mappings into their own
// partitions.
func (p *IPLoM) splitByBijection(tok [][]string, rows []int, size int) [][]int {
	if size < 2 || len(rows) < 2 || p.goodness(tok, rows, size) > p.CT {
		return [][]int{rows}
	}
	p1, p2 := p.bijectionPositions(tok, rows, size)
	if p1 < 0 {
		return [][]int{rows}
	}
	// Partition rows by their (p1, p2) token pair when the mapping
	// between p1 and p2 values is 1-1; otherwise split by the side with
	// fewer distinct values.
	fwd := map[string]map[string]struct{}{}
	for _, r := range rows {
		a, b := tok[r][p1], tok[r][p2]
		if fwd[a] == nil {
			fwd[a] = map[string]struct{}{}
		}
		fwd[a][b] = struct{}{}
	}
	oneToOne := true
	for _, bs := range fwd {
		if len(bs) > 1 {
			oneToOne = false
			break
		}
	}
	key := func(r int) string {
		if oneToOne {
			return tok[r][p1] + "\x00" + tok[r][p2]
		}
		return tok[r][p1]
	}
	byKey := map[string][]int{}
	for _, r := range rows {
		byKey[key(r)] = append(byKey[key(r)], r)
	}
	if len(byKey) == 1 || float64(len(byKey)) > float64(len(rows))*(1-p.LowerBound) {
		return [][]int{rows}
	}
	parts := make([][]int, 0, len(byKey))
	for _, rs := range byKey {
		parts = append(parts, rs)
	}
	return parts
}

// goodness is the cluster-goodness ratio: the fraction of positions with a
// single token value.
func (p *IPLoM) goodness(tok [][]string, rows []int, size int) float64 {
	constant := 0
	for pos := 0; pos < size; pos++ {
		first := tok[rows[0]][pos]
		same := true
		for _, r := range rows[1:] {
			if tok[r][pos] != first {
				same = false
				break
			}
		}
		if same {
			constant++
		}
	}
	return float64(constant) / float64(size)
}

// bijectionPositions returns the two positions whose cardinality equals
// the modal cardinality among positions with more than one value.
func (p *IPLoM) bijectionPositions(tok [][]string, rows []int, size int) (int, int) {
	cards := make([]int, size)
	for pos := 0; pos < size; pos++ {
		seen := map[string]struct{}{}
		for _, r := range rows {
			seen[tok[r][pos]] = struct{}{}
		}
		cards[pos] = len(seen)
	}
	freq := map[int]int{}
	for _, c := range cards {
		if c > 1 {
			freq[c]++
		}
	}
	modal, modalCount := 0, 0
	for c, n := range freq {
		if n > modalCount || (n == modalCount && c < modal) {
			modal, modalCount = c, n
		}
	}
	if modalCount < 2 {
		return -1, -1
	}
	p1, p2 := -1, -1
	for pos, c := range cards {
		if c == modal {
			if p1 < 0 {
				p1 = pos
			} else {
				p2 = pos
				break
			}
		}
	}
	return p1, p2
}
