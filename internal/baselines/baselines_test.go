package baselines

import (
	"fmt"
	"testing"

	"bytebrain/internal/datagen"
	"bytebrain/internal/metrics"
)

// corpus returns a small structured stream with ground truth: three
// templates of distinct shapes.
func corpus(n int) (lines []string, truth []int) {
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			lines = append(lines, fmt.Sprintf("Receiving block blk_%d from /10.0.0.%d", 1000+i*7, i%200))
			truth = append(truth, 0)
		case 1:
			lines = append(lines, fmt.Sprintf("Deleting block blk_%d file /data/%d.dat", 2000+i*3, i))
			truth = append(truth, 1)
		default:
			lines = append(lines, "Verification succeeded")
			truth = append(truth, 2)
		}
	}
	return lines, truth
}

func zeroDelays(p Parser) {
	switch v := p.(type) {
	case *UniParser:
		v.PerLog = 0
	case *LogPPT:
		v.PerLog = 0
	case *LILAC:
		v.PerQuery, v.PerHit = 0, 0
	}
}

func TestAllParsersBasicContract(t *testing.T) {
	lines, truth := corpus(120)
	for _, p := range All() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			zeroDelays(p)
			if ta, ok := p.(TruthAware); ok {
				ta.SetTruth(truth)
			}
			got := p.Parse(lines)
			if len(got) != len(lines) {
				t.Fatalf("%s returned %d labels for %d lines", p.Name(), len(got), len(lines))
			}
			// Identical lines must always share a group.
			byLine := map[string]int{}
			for i, l := range lines {
				if prev, ok := byLine[l]; ok && prev != got[i] {
					t.Fatalf("%s assigned identical lines to different groups", p.Name())
				}
				byLine[l] = got[i]
			}
		})
	}
}

func TestAllParsersEmptyInput(t *testing.T) {
	for _, p := range All() {
		zeroDelays(p)
		if got := p.Parse(nil); len(got) != 0 {
			t.Errorf("%s returned %d labels for empty input", p.Name(), len(got))
		}
	}
}

func TestDrainGroupsSimpleCorpus(t *testing.T) {
	lines, truth := corpus(300)
	d := NewDrain()
	got := d.Parse(lines)
	ga, err := metrics.GroupingAccuracy(got, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ga < 0.99 {
		t.Errorf("Drain GA on trivial corpus = %v, want ~1", ga)
	}
}

func TestSpellLCS(t *testing.T) {
	if got := lcsLen([]string{"a", "b", "c"}, []string{"a", "x", "c"}); got != 2 {
		t.Errorf("lcsLen = %d, want 2", got)
	}
	if got := lcsLen(nil, []string{"a"}); got != 0 {
		t.Errorf("lcsLen(nil) = %d", got)
	}
	tmpl := lcsTemplate([]string{"a", "c"}, []string{"a", "b", "c"})
	want := []string{"a", wildcard, "c"}
	for i := range want {
		if tmpl[i] != want[i] {
			t.Errorf("lcsTemplate = %v, want %v", tmpl, want)
		}
	}
}

func TestSeqSimAndMerge(t *testing.T) {
	tmpl := []string{"a", "b", "c"}
	if got := seqSim(tmpl, []string{"a", "x", "c"}); got < 0.66 || got > 0.67 {
		t.Errorf("seqSim = %v", got)
	}
	mergeTemplate(tmpl, []string{"a", "x", "c"})
	if templateText(tmpl) != "a "+wildcard+" c" {
		t.Errorf("mergeTemplate = %v", tmpl)
	}
}

func TestLogSigRespectsGroupCount(t *testing.T) {
	lines, truth := corpus(150)
	ls := NewLogSig()
	ls.SetGroups(3)
	got := ls.Parse(lines)
	distinct := map[int]bool{}
	for _, g := range got {
		distinct[g] = true
	}
	if len(distinct) > 3 {
		t.Errorf("LogSig produced %d groups, want <= 3", len(distinct))
	}
	ga, _ := metrics.GroupingAccuracy(got, truth)
	if ga == 0 {
		t.Error("LogSig GA is zero even on a trivial corpus")
	}
}

func TestLILACOracleAccuracy(t *testing.T) {
	lines, truth := corpus(200)
	l := NewLILAC()
	l.PerQuery, l.PerHit = 0, 0
	l.SetTruth(truth)
	got := l.Parse(lines)
	ga, _ := metrics.GroupingAccuracy(got, truth)
	if ga < 0.99 {
		t.Errorf("LILAC GA = %v, want ~1 with oracle", ga)
	}
}

func TestLILACWithoutTruthStillGroups(t *testing.T) {
	lines, _ := corpus(60)
	l := NewLILAC()
	l.PerQuery, l.PerHit = 0, 0
	got := l.Parse(lines)
	if got[2] != got[5] {
		t.Error("identical constant lines not grouped without truth")
	}
}

func TestUniParserMasksTypedVariables(t *testing.T) {
	u := NewUniParser()
	u.PerLog = 0
	lines := []string{
		"job 42 done", "job 97 done", "job 13 done",
		"disk sda read", "disk sdb read",
	}
	got := u.Parse(lines)
	if got[0] != got[1] || got[1] != got[2] {
		t.Error("digit variables not masked")
	}
	if got[3] == got[0] {
		t.Error("distinct structures merged")
	}
}

func TestLogPPTFewShotUsesTruth(t *testing.T) {
	lines, truth := corpus(150)
	l := NewLogPPT()
	l.PerLog = 0
	l.SetTruth(truth)
	got := l.Parse(lines)
	ga, _ := metrics.GroupingAccuracy(got, truth)
	if ga < 0.9 {
		t.Errorf("LogPPT GA = %v on trivial corpus", ga)
	}
}

// TestBaselineRelativeAccuracyOrdering checks the coarse Table-2 shape on
// one simulated dataset: the oracle-backed LILAC beats Drain, and Drain
// beats the weak frequency baselines.
func TestBaselineRelativeAccuracyOrdering(t *testing.T) {
	ds, err := datagen.LogHub("HDFS", 3)
	if err != nil {
		t.Fatal(err)
	}
	ga := func(p Parser) float64 {
		zeroDelays(p)
		if ta, ok := p.(TruthAware); ok {
			ta.SetTruth(ds.Truth)
		}
		got := p.Parse(ds.Lines)
		v, err := metrics.GroupingAccuracy(got, ds.Truth)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	lilac := ga(NewLILAC())
	drain := ga(NewDrain())
	logsig := ga(NewLogSig())
	if lilac < drain-0.05 {
		t.Errorf("LILAC (%v) should be at least Drain-level (%v)", lilac, drain)
	}
	if drain <= logsig {
		t.Errorf("Drain (%v) should beat LogSig (%v) on HDFS", drain, logsig)
	}
	if drain < 0.5 {
		t.Errorf("Drain GA = %v on HDFS; port is suspect", drain)
	}
}

func TestGroupByKeyStable(t *testing.T) {
	g := newGroupByKey()
	a := g.id("x")
	b := g.id("y")
	if a == b {
		t.Error("distinct keys share an id")
	}
	if g.id("x") != a {
		t.Error("repeated key changed id")
	}
}

func TestHasDigit(t *testing.T) {
	if hasDigit("abc") || !hasDigit("a1c") || hasDigit("") {
		t.Error("hasDigit misbehaves")
	}
}

func TestThrottleAccumulates(t *testing.T) {
	th := throttle{perItem: 0}
	for i := 0; i < 100; i++ {
		th.tick()
	}
	th.flush() // must not hang with zero delay
}
