package baselines

import (
	"strconv"
	"strings"
)

// Drain is a from-scratch port of the fixed-depth parse tree parser of He
// et al. (ICWS '17): logs route through a tree keyed by token count and
// the first (depth−2) tokens, digit-bearing tokens collapse to a wildcard
// branch, and leaves hold log groups matched by sequence similarity.
type Drain struct {
	// Depth is the parse-tree depth (default 4: length, two prefix
	// tokens, leaf).
	Depth int
	// SimThreshold is the sequence-similarity threshold st (default 0.4).
	SimThreshold float64
	// MaxChildren bounds the branching factor (default 100).
	MaxChildren int
}

// NewDrain returns Drain with the toolkit's default parameters.
func NewDrain() *Drain {
	return &Drain{Depth: 4, SimThreshold: 0.4, MaxChildren: 100}
}

// Name implements Parser.
func (d *Drain) Name() string { return "Drain" }

type drainGroup struct {
	template []string
	id       int
}

type drainNode struct {
	children map[string]*drainNode
	groups   []*drainGroup
}

// Parse implements Parser.
func (d *Drain) Parse(lines []string) []int {
	root := &drainNode{children: map[string]*drainNode{}}
	out := make([]int, len(lines))
	nextID := 0
	for i, line := range lines {
		tokens := preprocess(line)
		leaf := d.route(root, tokens)
		best := d.bestGroup(leaf, tokens)
		if best == nil {
			best = &drainGroup{template: append([]string(nil), tokens...), id: nextID}
			nextID++
			leaf.groups = append(leaf.groups, best)
		} else {
			mergeTemplate(best.template, tokens)
		}
		out[i] = best.id
	}
	return out
}

// route walks (creating as needed) the internal levels: token count, then
// prefix tokens up to Depth−2.
func (d *Drain) route(root *drainNode, tokens []string) *drainNode {
	cur := step(root, lenToken(len(tokens)), d.MaxChildren)
	for k := 0; k < d.Depth-2 && k < len(tokens); k++ {
		key := tokens[k]
		if hasDigit(key) {
			key = wildcard
		}
		cur = step(cur, key, d.MaxChildren)
	}
	return cur
}

func lenToken(n int) string { return "len=" + strconv.Itoa(n) }

func step(n *drainNode, key string, maxChildren int) *drainNode {
	if n.children == nil {
		n.children = map[string]*drainNode{}
	}
	child, ok := n.children[key]
	if !ok {
		if len(n.children) >= maxChildren {
			// Overflow branch, as in the original: reuse the wildcard
			// child.
			key = wildcard
			if child, ok = n.children[key]; ok {
				return child
			}
		}
		child = &drainNode{}
		n.children[key] = child
	}
	return child
}

// bestGroup returns the most similar group above the threshold.
func (d *Drain) bestGroup(leaf *drainNode, tokens []string) *drainGroup {
	var best *drainGroup
	bestSim := -1.0
	for _, g := range leaf.groups {
		if len(g.template) != len(tokens) {
			continue
		}
		sim := seqSim(g.template, tokens)
		if sim >= d.SimThreshold && sim > bestSim {
			bestSim, best = sim, g
		}
	}
	return best
}

// seqSim is Drain's simSeq: the fraction of positions where the template
// token equals the log token (wildcards count as matches).
func seqSim(template, tokens []string) float64 {
	if len(template) == 0 {
		return 1
	}
	eq := 0
	for i := range template {
		if template[i] == tokens[i] || template[i] == wildcard {
			eq++
		}
	}
	return float64(eq) / float64(len(template))
}

// mergeTemplate widens template in place so it matches tokens.
func mergeTemplate(template, tokens []string) {
	for i := range template {
		if template[i] != tokens[i] {
			template[i] = wildcard
		}
	}
}

// templateText is used by tests to inspect Drain-style templates.
func templateText(tokens []string) string { return strings.Join(tokens, " ") }
