// Package vars implements common variable replacement (§4.1.2 of the paper).
//
// Before tokenization-independent clustering, obviously-variable substrings
// (timestamps, IP addresses, hashes, UUIDs, …) are replaced with a wildcard.
// Early replacement of these known variables shrinks the distinct-token
// universe, increases duplication (Fig. 4), and removes noise the clustering
// would otherwise have to discover per position.
//
// A Replacer applies an ordered rule list. The default rule set mirrors the
// per-topic defaults the paper describes; callers add domain-specific rules
// per topic with Add.
package vars

import (
	"regexp"
	"strings"
)

// Wildcard is the placeholder substituted for matched variables. It is the
// same wildcard used in template text, so a replaced variable and a
// cluster-derived variable render identically.
const Wildcard = "<*>"

// Sentinel is the token-safe stand-in ReplaceTokenSafe substitutes for
// variables. Wildcard itself contains tokenizer delimiters ('<', '>') and
// would be shredded by Listing-1 tokenization; the sentinel is a control
// byte no tokenizer treats as a delimiter. Pipelines tokenize the
// sentinel-substituted line and then canonicalize sentinel-bearing tokens
// back to Wildcard (see CanonicalizeTokens).
const Sentinel = "\x01"

// Rule is a single named replacement pattern.
type Rule struct {
	// Name identifies the rule (e.g. "ipv4") in diagnostics.
	Name string
	// Pattern matches the variable occurrences to replace.
	Pattern *regexp.Regexp
	// req, when non-zero, is a byte every match of Pattern necessarily
	// contains (':' for clock times, '-' for UUIDs, …): a line without it
	// skips the regex entirely. A one-byte IndexByte scan is orders of
	// magnitude cheaper than the backtracking engine, and on the hot
	// ingestion path the regex bank dominates the per-line CPU profile.
	req byte
}

// Replacer applies an ordered list of rules to log lines. It is safe for
// concurrent use after construction.
type Replacer struct {
	rules []Rule
	// digitGated marks rule sets whose every pattern requires a digit,
	// enabling a cheap whole-line prefilter.
	digitGated bool
}

// NewReplacer returns a Replacer with the given rules, applied in order.
func NewReplacer(rules ...Rule) *Replacer {
	return &Replacer{rules: rules}
}

// Default returns the paper's default rule set: timestamps, IP addresses
// (with optional port), MD5/SHA-style hex digests, UUIDs, and 0x-prefixed
// hex literals.
func Default() *Replacer {
	r := NewReplacer(DefaultRules()...)
	r.digitGated = true
	return r
}

// None returns a Replacer that performs no substitutions. Useful for
// ablations that measure the value of variable replacement (Fig. 4).
func None() *Replacer { return &Replacer{} }

// DefaultRules returns copies of the built-in rules in application order.
// Order matters: longer, more specific patterns run first so that e.g. a
// UUID is not half-eaten by the hex rule.
func DefaultRules() []Rule {
	return []Rule{
		{"iso-timestamp", regexp.MustCompile(`\b\d{4}-\d{2}-\d{2}[T ]\d{2}:\d{2}:\d{2}(?:[.,]\d+)?(?:Z|[+-]\d{2}:?\d{2})?\b`), '-'},
		{"slash-date-time", regexp.MustCompile(`\b\d{2,4}[/.]\d{2}[/.]\d{2,4}[ T]\d{2}:\d{2}:\d{2}\b`), ':'},
		{"clock-time", regexp.MustCompile(`\b\d{2}:\d{2}:\d{2}(?:[.,]\d+)?\b`), ':'},
		{"uuid", regexp.MustCompile(`\b[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}\b`), '-'},
		{"ipv6", regexp.MustCompile(`\b(?:[0-9a-fA-F]{1,4}:){3,7}[0-9a-fA-F]{1,4}\b`), ':'},
		{"ipv4-port", regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}(?::\d{1,5})?\b`), '.'},
		// Every byte of a long-hex match may be a hex letter or digit, so
		// no single byte is required; the digit prefilter still gates it.
		{"long-hex", regexp.MustCompile(`\b(?:0x[0-9a-fA-F]+|[0-9a-fA-F]{32,64})\b`), 0},
		{"mac-address", regexp.MustCompile(`\b(?:[0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}\b`), ':'},
	}
}

// Add appends a domain-specific rule compiled from pattern and returns the
// receiver for chaining. It panics if pattern does not compile; topic
// configuration is static, so a bad pattern is a programming error.
// Custom rules may match digit-free text, so the digit prefilter is
// disabled.
func (r *Replacer) Add(name, pattern string) *Replacer {
	r.rules = append(r.rules, Rule{Name: name, Pattern: regexp.MustCompile(pattern)})
	r.digitGated = false
	return r
}

// Replace substitutes every rule match in line with Wildcard. Intended for
// human-facing output; parsing pipelines should use ReplaceTokenSafe so the
// substitution survives tokenization.
func (r *Replacer) Replace(line string) string { return r.replace(line, Wildcard) }

// ReplaceTokenSafe substitutes every rule match with Sentinel, which no
// tokenizer splits. Follow tokenization with CanonicalizeTokens.
func (r *Replacer) ReplaceTokenSafe(line string) string { return r.replace(line, Sentinel) }

func (r *Replacer) replace(line, placeholder string) string {
	if r == nil || len(r.rules) == 0 {
		return line
	}
	if r.digitGated && !hasASCIIDigit(line) {
		// Every built-in rule requires at least one digit (an all-letter
		// hex digest is astronomically unlikely); skip the regex bank
		// entirely for the common pure-text line.
		return line
	}
	for _, rule := range r.rules {
		if rule.req != 0 && strings.IndexByte(line, rule.req) < 0 {
			// A byte every match must contain is absent; skip the regex.
			continue
		}
		if rule.Pattern.MatchString(line) {
			line = rule.Pattern.ReplaceAllString(line, placeholder)
		}
	}
	return line
}

func hasASCIIDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// CanonicalizeTokens rewrites, in place, every token containing Sentinel to
// the Wildcard token and returns the slice. A token that mixes literal
// bytes with a replaced variable (e.g. "/" glued to an IP) collapses to the
// wildcard as a whole, matching how the paper's templates render such
// positions ("dest *").
func CanonicalizeTokens(tokens []string) []string {
	for i, t := range tokens {
		for j := 0; j < len(t); j++ {
			if t[j] == Sentinel[0] {
				tokens[i] = Wildcard
				break
			}
		}
	}
	return tokens
}

// Rules returns the replacement rules in application order.
func (r *Replacer) Rules() []Rule {
	out := make([]Rule, len(r.rules))
	copy(out, r.rules)
	return out
}
