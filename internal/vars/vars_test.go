package vars

import (
	"strings"
	"testing"
)

func TestDefaultReplacements(t *testing.T) {
	r := Default()
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"iso timestamp", "at 2025-04-12T08:31:02Z start", "at <*> start"},
		{"iso with millis", "ts=2025-04-12 08:31:02.123 ok", "ts=<*> ok"},
		{"slash date", "17/06/09 20:10:40 INFO", "<*> INFO"},
		{"bare clock", "up since 08:31:02 today", "up since <*> today"},
		{"ipv4", "from 10.250.19.102 accepted", "from <*> accepted"},
		{"ipv4 port", "dest: /10.250.19.102:50010 ok", "dest: /<*> ok"},
		{"uuid", "req 550e8400-e29b-41d4-a716-446655440000 done", "req <*> done"},
		{"md5", "digest d41d8cd98f00b204e9800998ecf8427e ok", "digest <*> ok"},
		{"0x hex", "flags 0xdeadbeef set", "flags <*> set"},
		{"mac", "dev 00:1a:2b:3c:4d:5e up", "dev <*> up"},
		{"plain text untouched", "nothing variable here", "nothing variable here"},
		{"short hex untouched", "code ab12 kept", "code ab12 kept"},
		{"version number untouched", "v1.2 kept", "v1.2 kept"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Replace(tt.in); got != tt.want {
				t.Errorf("Replace(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNoneReplacerIsIdentity(t *testing.T) {
	r := None()
	in := "at 2025-04-12T08:31:02Z from 10.0.0.1"
	if got := r.Replace(in); got != in {
		t.Errorf("None().Replace changed input: %q", got)
	}
}

func TestNilReplacerIsIdentity(t *testing.T) {
	var r *Replacer
	if got := r.Replace("x 10.0.0.1"); got != "x 10.0.0.1" {
		t.Errorf("nil Replacer changed input: %q", got)
	}
}

func TestAddCustomRule(t *testing.T) {
	r := None().Add("blk", `blk_-?\d+`)
	in := "Receiving block blk_-1608999687919862906 src"
	want := "Receiving block <*> src"
	if got := r.Replace(in); got != want {
		t.Errorf("Replace = %q, want %q", got, want)
	}
}

func TestAddPanicsOnBadPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add did not panic on invalid pattern")
		}
	}()
	None().Add("bad", "(unclosed")
}

func TestRuleOrderUUIDBeforeHex(t *testing.T) {
	r := Default()
	got := r.Replace("id 550e8400-e29b-41d4-a716-446655440000 end")
	if strings.Count(got, Wildcard) != 1 {
		t.Errorf("UUID replaced in pieces: %q", got)
	}
}

func TestRulesReturnsCopy(t *testing.T) {
	r := Default()
	rules := r.Rules()
	if len(rules) == 0 {
		t.Fatal("no default rules")
	}
	rules[0] = Rule{}
	if r.Rules()[0].Name == "" {
		t.Error("mutating returned slice affected the replacer")
	}
}

func TestIncreasesDuplication(t *testing.T) {
	// The motivating property from Fig. 4: after replacement, lines that
	// differ only in variables collapse to identical strings.
	r := Default()
	a := r.Replace("conn from 10.0.0.1:5330 at 2025-01-01 10:00:00")
	b := r.Replace("conn from 192.168.7.9:1024 at 2025-03-05 23:59:59")
	if a != b {
		t.Errorf("variable-only differences survived: %q vs %q", a, b)
	}
}

func BenchmarkDefaultReplace(b *testing.B) {
	r := Default()
	line := "081109 20:35:18 INFO dfs.DataNode: Receiving block src: /10.250.19.102:54106 dest: /10.250.19.102:50010 id 550e8400-e29b-41d4-a716-446655440000"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Replace(line)
	}
}

func TestDigitPrefilterSkipsCleanLines(t *testing.T) {
	r := Default()
	// No digits → returned verbatim (prefilter path).
	in := "pure text line without numerals"
	if got := r.Replace(in); got != in {
		t.Errorf("digit-free line altered: %q", got)
	}
	// Custom rules disable the prefilter: letter-only patterns must
	// still fire.
	r2 := Default().Add("word", `\bsecret\b`)
	if got := r2.Replace("the secret word"); got != "the "+Wildcard+" word" {
		t.Errorf("custom rule suppressed by prefilter: %q", got)
	}
}

// TestRequiredBytePrefilterParity: the per-rule required-byte prefilter
// must never change replacement output — for lines with and without the
// gating bytes, the output must equal applying every rule's regex
// unconditionally in order.
func TestRequiredBytePrefilterParity(t *testing.T) {
	r := Default()
	lines := []string{
		"2024-01-02T03:04:05Z request served",             // iso (has '-' and ':')
		"worker 17 done",                                  // digits, no ':' '-' '.'
		"connect 10.0.0.1:8080 ok",                        // ipv4-port
		"time 12:34:56 elapsed",                           // clock
		"id 123e4567-e89b-12d3-a456-426614174000 created", // uuid
		"deadbeef0deadbeefdeadbeefdeadbee checksum",       // long-hex, no req byte
		"mac 00:1a:2b:3c:4d:5e up",                        // mac
		"no variables at all here",
		"dash-but-no-digits stays",
	}
	for _, line := range lines {
		got := r.Replace(line)
		// Ground truth: every rule applied unconditionally, in order.
		want := line
		for _, rule := range r.Rules() {
			want = rule.Pattern.ReplaceAllString(want, Wildcard)
		}
		if got != want {
			t.Errorf("Replace(%q) = %q, want %q", line, got, want)
		}
	}
}
