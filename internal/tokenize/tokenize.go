// Package tokenize splits raw log records into token sequences.
//
// The default tokenizer implements the delimiter grammar of Listing 1 in the
// ByteBrain paper:
//
//	(?:://)|(?:(?:[\s'";=()\[\]{}?@&<>:\n\t\r,])|(?:[.](\s+|$))|(?:\\["']))+
//
// i.e. a log record is split on
//   - the URL protocol separator "://" (so "https://h/p" keeps "h/p" whole),
//   - runs of common delimiter characters (whitespace, quotes, punctuation),
//   - sentence-ending periods (a "." followed by whitespace or end of line;
//     periods inside "3.14" or "host.example.com" are preserved), and
//   - escaped quotation marks (\" and \').
//
// Two implementations are provided: a fast hand-rolled byte scanner (the
// default, used on the hot path) and a regexp-backed tokenizer that accepts
// user-defined patterns. Go's regexp package is RE2-based and rejects
// look-around by construction, satisfying the paper's requirement that
// user-supplied patterns stay O(n).
package tokenize

import (
	"regexp"
	"strings"
)

// DefaultPattern is the paper's Listing 1 delimiter regular expression,
// transliterated to Go syntax.
const DefaultPattern = `(?:://)|(?:(?:[\s'";=()\[\]{}?@&<>:,])|(?:[.](?:\s+|$))|(?:\\["']))+`

// Tokenizer splits a log record into tokens. Implementations must be safe
// for concurrent use.
type Tokenizer interface {
	// Tokenize returns the tokens of line in order. Empty tokens are
	// never returned.
	Tokenize(line string) []string
}

// Fast is the default tokenizer: a single-pass byte scanner equivalent to
// DefaultPattern. The zero value is ready to use.
type Fast struct{}

// NewFast returns the default high-throughput tokenizer.
func NewFast() Fast { return Fast{} }

// delim reports whether c is one of the single-character delimiters of the
// default grammar.
func delim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\f', '\v',
		'\'', '"', ';', '=', '(', ')', '[', ']', '{', '}',
		'?', '@', '&', '<', '>', ':', ',':
		return true
	}
	return false
}

func space(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '\f', '\v':
		return true
	}
	return false
}

// Tokenize implements Tokenizer.
func (f Fast) Tokenize(line string) []string {
	return f.TokenizeAppend(make([]string, 0, 16), line)
}

// TokenizeAppend appends line's tokens to dst and returns the extended
// slice, exactly like append. Passing dst[:0] lets a hot loop reuse one
// token buffer across lines instead of allocating per line; the tokens
// themselves are substrings of line (no copies), so a caller that retains
// them beyond the next reuse must copy them first — the matcher already
// does when it promotes tokens into a template.
func (Fast) TokenizeAppend(dst []string, line string) []string {
	tokens := dst
	n := len(line)
	start := -1 // start of the current token, -1 when between tokens
	flush := func(end int) {
		if start >= 0 && end > start {
			tokens = append(tokens, line[start:end])
		}
		start = -1
	}
	for i := 0; i < n; {
		c := line[i]
		switch {
		case c == ':' && i+2 < n && line[i+1] == '/' && line[i+2] == '/':
			// "://" — consume all three so URL paths keep their slashes.
			flush(i)
			i += 3
		case delim(c):
			flush(i)
			i++
		case c == '.' && (i+1 == n || space(line[i+1])):
			// Sentence-ending period.
			flush(i)
			i++
		case c == '\\' && i+1 < n && (line[i+1] == '"' || line[i+1] == '\''):
			// Escaped quote: both bytes are delimiters.
			flush(i)
			i += 2
		default:
			if start < 0 {
				start = i
			}
			i++
		}
	}
	flush(n)
	return tokens
}

// Regexp tokenizes by splitting on a caller-supplied delimiter pattern.
// Construct it with NewRegexp.
type Regexp struct {
	re *regexp.Regexp
}

// NewRegexp compiles pattern as a delimiter expression. The pattern is
// matched repeatedly; the text between (and around) matches becomes the
// token stream. Go's RE2 engine rejects back-references and look-around,
// which enforces the paper's linear-time requirement on custom patterns.
func NewRegexp(pattern string) (*Regexp, error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	return &Regexp{re: re}, nil
}

// MustRegexp is NewRegexp that panics on a bad pattern. Intended for
// package-level defaults and tests.
func MustRegexp(pattern string) *Regexp {
	t, err := NewRegexp(pattern)
	if err != nil {
		panic(err)
	}
	return t
}

// Tokenize implements Tokenizer.
func (t *Regexp) Tokenize(line string) []string {
	parts := t.re.Split(line, -1)
	tokens := parts[:0]
	for _, p := range parts {
		if p != "" {
			tokens = append(tokens, p)
		}
	}
	// Clone to avoid aliasing surprises for callers that retain the slice.
	out := make([]string, len(tokens))
	copy(out, tokens)
	return out
}

// Join renders tokens back to a canonical single-spaced string. It is the
// inverse only up to delimiter runs, which is sufficient for template text.
func Join(tokens []string) string { return strings.Join(tokens, " ") }
