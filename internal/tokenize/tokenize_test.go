package tokenize

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestFastTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"empty", "", nil},
		{"spaces only", "   \t  ", nil},
		{"plain words", "alpha beta gamma", []string{"alpha", "beta", "gamma"}},
		{"key=value", "lock=2337, flg=0x0", []string{"lock", "2337", "flg", "0x0"}},
		{"wakelock line",
			`release:lock=187, flg=0x0, tag="*launch*", name=android, ws=WS{10113}`,
			[]string{"release", "lock", "187", "flg", "0x0", "tag", "*launch*", "name", "android", "ws", "WS", "10113"}},
		{"url keeps path", "GET https://example.com/a/b?x=1 done",
			[]string{"GET", "https", "example.com/a/b", "x", "1", "done"}},
		{"period mid-number kept", "took 3.14 s", []string{"took", "3.14", "s"}},
		{"period before space split", "done. next", []string{"done", "next"}},
		{"period at end split", "done.", []string{"done"}},
		{"domain kept", "host db01.prod.example resolved", []string{"host", "db01.prod.example", "resolved"}},
		{"escaped quote", `msg=\"hello\" sent`, []string{"msg", "hello", "sent"}},
		{"brackets and braces", "[INFO] {core} (main)", []string{"INFO", "core", "main"}},
		{"colon split", "module:function:42 ok", []string{"module", "function", "42", "ok"}},
		{"angle and at", "user@host <pid> ready", []string{"user", "host", "pid", "ready"}},
		{"consecutive delims collapse", "a,,;=  b", []string{"a", "b"}},
		{"slash not a delimiter", "/var/log/syslog rotated", []string{"/var/log/syslog", "rotated"}},
		{"dash not a delimiter", "node-17 up", []string{"node-17", "up"}},
		{"ipv4 with port", "10.0.0.1:8080 connect", []string{"10.0.0.1", "8080", "connect"}},
		{"tabs and newlines", "a\tb\nc\rd", []string{"a", "b", "c", "d"}},
		{"question ampersand", "q?a&b", []string{"q", "a", "b"}},
		{"lone ://", "://", nil},
		{"colon slash not proto", "a:/b", []string{"a", "/b"}},
		{"trailing proto", "x://", []string{"x"}},
	}
	f := NewFast()
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := f.Tokenize(tt.in)
			if len(got) == 0 && len(tt.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestRegexpMatchesFastOnCorpus(t *testing.T) {
	re := MustRegexp(DefaultPattern)
	fast := NewFast()
	corpus := []string{
		"",
		"packet_write_wait: Connection to 203.0.113.9 port 22: Broken pipe",
		`081109 203518 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_-1608999687919862906 src: /10.250.19.102:54106 dest: /10.250.19.102:50010`,
		"- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected",
		"jk2_init() Found child 6725 in scoreboard slot 10",
		`acquire lock=1661, flg=0x1, tag="RILJ_ACK_WL", name=phone, ws=null`,
		"Failed password for invalid user admin from 198.51.100.7 port 59087 ssh2",
		"proxy <-> 127.0.0.1:1080 open through proxy 192.0.2.1:3128 HTTPS",
		"17/06/09 20:10:40 INFO executor.CoarseGrainedExecutorBackend: Got assigned task 4",
		"nova.compute.manager [req-3a1b2c] Took 21.84 seconds to build instance.",
		"end of sentence. And another. trailing.",
		`escaped \"quotes\" and \'single\' ones`,
		"weird   spacing\t\tand\nnewlines",
		"a=b;c=d,e:f(g)h[i]j{k}l?m@n&o<p>q",
	}
	for _, line := range corpus {
		got := fast.Tokenize(line)
		want := re.Tokenize(line)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("fast vs regexp mismatch on %q:\n fast   = %v\n regexp = %v", line, got, want)
		}
	}
}

// TestQuickFastEqualsRegexp cross-checks the scanner against the reference
// regexp on random byte strings drawn from a delimiter-rich alphabet.
func TestQuickFastEqualsRegexp(t *testing.T) {
	re := MustRegexp(DefaultPattern)
	fast := NewFast()
	alphabet := []byte("ab1. :/=\"'\\,;()[]{}?@&<>\t\n\rxyz_-*")
	gen := func(r *rand.Rand) string {
		n := r.Intn(40)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		line := gen(r)
		got := fast.Tokenize(line)
		want := re.Tokenize(line)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: mismatch on %q:\n fast   = %v\n regexp = %v", i, line, got, want)
		}
	}
}

// TestQuickNoTokenBytesLost verifies that every non-delimiter byte of the
// input appears, in order, in the concatenated token stream.
func TestQuickNoTokenBytesLost(t *testing.T) {
	fast := NewFast()
	prop := func(line string) bool {
		toks := fast.Tokenize(line)
		joined := strings.Join(toks, "")
		// Every token byte must come from the input in order.
		j := 0
		for i := 0; i < len(line) && j < len(joined); i++ {
			if line[i] == joined[j] {
				j++
			}
		}
		return j == len(joined)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickTokensNeverEmpty(t *testing.T) {
	fast := NewFast()
	prop := func(line string) bool {
		for _, tok := range fast.Tokenize(line) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewRegexpRejectsBadPattern(t *testing.T) {
	if _, err := NewRegexp("(unclosed"); err == nil {
		t.Error("NewRegexp accepted an invalid pattern")
	}
	// RE2 rejects look-around, enforcing the paper's complexity bound.
	if _, err := NewRegexp(`(?=look)`); err == nil {
		t.Error("NewRegexp accepted look-ahead; RE2 should reject it")
	}
}

func TestJoin(t *testing.T) {
	if got := Join([]string{"a", "b", "c"}); got != "a b c" {
		t.Errorf("Join = %q", got)
	}
	if got := Join(nil); got != "" {
		t.Errorf("Join(nil) = %q", got)
	}
}

func BenchmarkFastTokenize(b *testing.B) {
	f := NewFast()
	line := `081109 203518 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_-1608999687919862906 src: /10.250.19.102:54106 dest: /10.250.19.102:50010`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Tokenize(line)
	}
}

func BenchmarkRegexpTokenize(b *testing.B) {
	re := MustRegexp(DefaultPattern)
	line := `081109 203518 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_-1608999687919862906 src: /10.250.19.102:54106 dest: /10.250.19.102:50010`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		re.Tokenize(line)
	}
}

// TestTokenizeAppendMatchesTokenize: the buffer-reusing path must emit
// exactly the tokens of the allocating path, for every shape of input.
func TestTokenizeAppendMatchesTokenize(t *testing.T) {
	f := NewFast()
	lines := []string{
		"",
		"   ",
		"plain words here",
		`081109 203518 143 INFO dfs.DataNode$DataXceiver: Receiving block blk_-1608999687919862906 src: /10.250.19.102:54106 dest: /10.250.19.102:50010`,
		"https://host.example.com/path?q=1&r=2",
		`escaped \"quotes\" and {braces} [brackets]`,
		"trailing period.",
		"dotted.name stays 3.14 whole. end",
		"unicode héllo wörld",
	}
	for _, line := range lines {
		want := f.Tokenize(line)
		got := f.TokenizeAppend(nil, line)
		if len(got) != len(want) {
			t.Fatalf("TokenizeAppend(%q) = %v, want %v", line, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("TokenizeAppend(%q)[%d] = %q, want %q", line, i, got[i], want[i])
			}
		}
	}
}

// TestTokenizeAppendReusesBuffer: tokens append after dst's existing
// elements and the backing array is reused when capacity allows.
func TestTokenizeAppendReusesBuffer(t *testing.T) {
	f := NewFast()
	buf := make([]string, 0, 32)
	got := f.TokenizeAppend(buf, "a b c")
	if len(got) != 3 || cap(got) != 32 {
		t.Fatalf("len=%d cap=%d, want 3 within the original capacity", len(got), cap(got))
	}
	got = f.TokenizeAppend(got[:0], "x y")
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("reuse produced %v", got)
	}
	withPrefix := f.TokenizeAppend([]string{"keep"}, "new token")
	if len(withPrefix) != 3 || withPrefix[0] != "keep" {
		t.Fatalf("prefix not preserved: %v", withPrefix)
	}
}
