package logstore

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"bytebrain/internal/segment"
)

func tr(from, to int) TimeRange { return TimeRange{From: ts(from), To: ts(to)} }

func TestTimeRangeSemantics(t *testing.T) {
	zero := TimeRange{}
	if !zero.IsZero() || zero.Empty() || !zero.Contains(ts(5)) {
		t.Fatal("zero range must match everything")
	}
	r := tr(10, 20)
	// Both ends inclusive.
	for sec, want := range map[int]bool{9: false, 10: true, 15: true, 20: true, 21: false} {
		if r.Contains(ts(sec)) != want {
			t.Errorf("Contains(ts(%d)) = %v, want %v", sec, !want, want)
		}
	}
	if !r.Covers(ts(10), ts(20)) || r.Covers(ts(10), ts(21)) || r.Covers(ts(9), ts(20)) {
		t.Error("Covers boundary behavior wrong")
	}
	if !r.Overlaps(ts(20), ts(30)) || !r.Overlaps(ts(0), ts(10)) || r.Overlaps(ts(21), ts(30)) || r.Overlaps(ts(0), ts(9)) {
		t.Error("Overlaps boundary behavior wrong")
	}
	inverted := tr(20, 10)
	if !inverted.Empty() || inverted.Contains(ts(15)) || inverted.Overlaps(ts(0), ts(100)) || inverted.Covers(ts(15), ts(15)) {
		t.Error("inverted range must match nothing")
	}
	fromOnly := TimeRange{From: ts(10)}
	if fromOnly.Contains(ts(9)) || !fromOnly.Contains(ts(1<<30)) {
		t.Error("from-only range wrong")
	}
	toOnly := TimeRange{To: ts(10)}
	if !toOnly.Contains(ts(0)) || toOnly.Contains(ts(11)) {
		t.Error("to-only range wrong")
	}
}

// TestTopicTimeRangeQueries checks the hot-topic filter path against the
// index fast path: grouped counts, template counts and scans over a
// bounded range must agree with a manual filter, including when
// timestamps arrive out of order.
func TestTopicTimeRangeQueries(t *testing.T) {
	tp := NewTopic("t")
	// Out-of-order arrival: 0, 50, 1, 51, ... like two interleaved queues.
	var secs []int
	for i := 0; i < 50; i++ {
		secs = append(secs, i, 50+i)
	}
	for i, s := range secs {
		tp.Append(ts(s), fmt.Sprintf("line %d", i), uint64(1+i%3))
	}
	for _, r := range []TimeRange{tr(10, 30), tr(0, 99), tr(25, 25), tr(90, 200), {From: ts(95)}, {To: ts(4)}, tr(30, 10), tr(1000, 2000), {}} {
		wantCounts := map[uint64]int{}
		wantTotal := 0
		for i, s := range secs {
			if r.Contains(ts(s)) {
				wantCounts[uint64(1+i%3)]++
				wantTotal++
			}
		}
		counts := tp.TemplateCounts(r)
		for id, n := range wantCounts {
			if counts[id] != n {
				t.Errorf("range %v: TemplateCounts[%d] = %d, want %d", r, id, counts[id], n)
			}
		}
		if len(counts) != len(wantCounts) {
			t.Errorf("range %v: TemplateCounts has %d ids, want %d", r, len(counts), len(wantCounts))
		}
		groups := tp.GroupedCounts(3, r)
		gotTotal := 0
		for id, g := range groups {
			gotTotal += g.Count
			if g.Count != wantCounts[id] {
				t.Errorf("range %v: GroupedCounts[%d] = %d, want %d", r, id, g.Count, wantCounts[id])
			}
			if len(g.Samples) > 3 {
				t.Errorf("range %v: %d samples exceed cap", r, len(g.Samples))
			}
			for _, off := range g.Samples {
				if !r.Contains(ts(secs[off])) {
					t.Errorf("range %v: sample offset %d outside range", r, off)
				}
			}
		}
		if gotTotal != wantTotal {
			t.Errorf("range %v: grouped total %d, want %d", r, gotTotal, wantTotal)
		}
		scanned := 0
		tp.Scan(0, -1, r, func(rec Record) bool {
			if !r.Contains(rec.Time) {
				t.Fatalf("range %v: Scan leaked record at %v", r, rec.Time)
			}
			scanned++
			return true
		})
		if scanned != wantTotal {
			t.Errorf("range %v: Scan visited %d, want %d", r, scanned, wantTotal)
		}
	}
}

// TestCompactingTimeRangePushdown is the tentpole correctness+efficiency
// test at the store level: a narrow range over many sealed blocks must
// return exact counts while decompressing only blocks the range
// straddles — whole blocks inside or outside the range answer from
// metadata alone.
func TestCompactingTimeRangePushdown(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 1 << 62, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// 10 sealed blocks of 100 records each (forced seals), then 50 hot.
	// Record i carries ts(i), so block b spans [ts(100b), ts(100b+99)].
	n := 0
	appendOne := func() {
		raw := fmt.Sprintf("req %d from host-%d", n, n%4)
		if _, err := s.Append(ts(n), raw, uint64(1+n%3)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	for b := 0; b < 10; b++ {
		for i := 0; i < 100; i++ {
			appendOne()
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		s.WaitIdle()
	}
	for i := 0; i < 50; i++ {
		appendOne()
	}
	if st := s.SegmentStats(); st.Segments != 10 || st.HotRecords != 50 {
		t.Fatalf("setup: %+v", st)
	}

	check := func(r TimeRange, wantReadsAtMost int64) {
		t.Helper()
		before := s.SegmentStats().BlockReads
		groups := s.GroupedCounts(5, r)
		want := map[uint64]int{}
		for i := 0; i < n; i++ {
			if r.Contains(ts(i)) {
				want[uint64(1+i%3)]++
			}
		}
		for id, cnt := range want {
			if groups[id].Count != cnt {
				t.Fatalf("range %v: count[%d] = %d, want %d", r, id, groups[id].Count, cnt)
			}
		}
		gotTotal := 0
		for _, g := range groups {
			gotTotal += g.Count
		}
		wantTotal := 0
		for _, c := range want {
			wantTotal += c
		}
		if gotTotal != wantTotal {
			t.Fatalf("range %v: total %d, want %d", r, gotTotal, wantTotal)
		}
		if reads := s.SegmentStats().BlockReads - before; reads > wantReadsAtMost {
			t.Fatalf("range %v: %d block reads, want <= %d", r, reads, wantReadsAtMost)
		}
	}

	// Whole-topic query: pure metadata.
	check(TimeRange{}, 0)
	// Range aligned to block boundaries: pure metadata.
	check(tr(200, 399), 0)
	// Range strictly inside one block: that one block only.
	check(tr(310, 370), 1)
	// Range straddling two adjacent blocks: at most those two.
	check(tr(390, 420), 2)
	// Range covering only the hot tail: no sealed reads at all.
	check(tr(1000, 2000), 0)
	// Disjoint and inverted ranges: nothing read, nothing returned.
	check(tr(5000, 9000), 0)
	check(tr(400, 300), 0)
	// TemplateCounts takes the same pruning path.
	before := s.SegmentStats().BlockReads
	counts := s.TemplateCounts(tr(500, 599))
	if counts[1]+counts[2]+counts[3] != 100 {
		t.Fatalf("TemplateCounts(block 5) = %v", counts)
	}
	if reads := s.SegmentStats().BlockReads - before; reads != 0 {
		t.Fatalf("block-aligned TemplateCounts paid %d reads", reads)
	}
	// Scan prunes whole blocks by time bounds: a range inside block 7
	// must decompress exactly one block.
	before = s.SegmentStats().BlockReads
	seen := 0
	s.Scan(0, -1, tr(710, 720), func(r Record) bool { seen++; return true })
	if seen != 11 {
		t.Fatalf("Scan(710..720) saw %d records, want 11", seen)
	}
	if reads := s.SegmentStats().BlockReads - before; reads != 1 {
		t.Fatalf("range Scan paid %d block reads, want 1", reads)
	}
}

// TestCountSinceBoundaries locks the metadata fast paths of CountSince to
// the linear-scan truth at exact boundary timestamps, across the hot
// topic, sealed segments, and the sharded merge.
func TestCountSinceBoundaries(t *testing.T) {
	build := func(t *testing.T) (Store, func()) {
		s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 1 << 62, Codec: segment.CodecFlate})
		if err != nil {
			t.Fatal(err)
		}
		return s, func() { s.Close() }
	}
	t.Run("compacting", func(t *testing.T) {
		s, done := build(t)
		defer done()
		for i := 0; i < 100; i++ {
			if _, err := s.Append(ts(10+i), "x", 1); err != nil {
				t.Fatal(err)
			}
		}
		cs := s.(*CompactingStore)
		if err := cs.Seal(); err != nil {
			t.Fatal(err)
		}
		cs.WaitIdle()
		for i := 0; i < 40; i++ { // hot tail continues the clock
			if _, err := s.Append(ts(110+i), "x", 1); err != nil {
				t.Fatal(err)
			}
		}
		// cut == sealed MinTime, sealed MaxTime, hot min, hot max, and
		// one tick either side of each.
		for _, cut := range []int{9, 10, 11, 108, 109, 110, 111, 148, 149, 150} {
			want := 0
			s.Scan(0, -1, TimeRange{}, func(r Record) bool {
				if !r.Time.Before(ts(cut)) {
					want++
				}
				return true
			})
			if got := s.CountSince(ts(cut)); got != want {
				t.Errorf("CountSince(ts(%d)) = %d, want %d", cut, got, want)
			}
		}
	})
	t.Run("sharded", func(t *testing.T) {
		s, err := OpenSharded("t", ShardConfig{Shards: 3, SegmentBytes: 1 << 62, Codec: segment.CodecFlate})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 90; i++ {
			if _, err := s.AppendShard(i%3, ts(10+i), "x", 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		s.WaitIdle()
		for _, cut := range []int{9, 10, 11, 50, 98, 99, 100} {
			want := 0
			s.Scan(0, -1, TimeRange{}, func(r Record) bool {
				if !r.Time.Before(ts(cut)) {
					want++
				}
				return true
			})
			if got := s.CountSince(ts(cut)); got != want {
				t.Errorf("sharded CountSince(ts(%d)) = %d, want %d", cut, got, want)
			}
		}
	})
}

// TestShardedTimeRangeQueries covers the satellite matrix: ranges whose
// records span shard boundaries, empty and inverted ranges, and ranges
// served entirely by hot blocks.
func TestShardedTimeRangeQueries(t *testing.T) {
	s, err := OpenSharded("t", ShardConfig{Shards: 4, SegmentBytes: 1 << 62, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Round-robin by time so every range spans all four shards; seal the
	// first 400 records, keep the last 100 hot.
	type rec struct {
		sec  int
		tmpl uint64
	}
	var all []rec
	for i := 0; i < 400; i++ {
		r := rec{sec: i, tmpl: uint64(1 + i%5)}
		all = append(all, r)
		if _, err := s.AppendShard(i%4, ts(r.sec), fmt.Sprintf("evt %d", i), r.tmpl); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	for i := 400; i < 500; i++ {
		r := rec{sec: i, tmpl: uint64(1 + i%5)}
		all = append(all, r)
		if _, err := s.AppendShard(i%4, ts(r.sec), fmt.Sprintf("evt %d", i), r.tmpl); err != nil {
			t.Fatal(err)
		}
	}

	for _, r := range []TimeRange{tr(100, 250), tr(0, 499), tr(380, 420), tr(450, 460), tr(250, 100), tr(900, 999), {From: ts(490)}, {To: ts(9)}, {}} {
		want := map[uint64]int{}
		for _, rc := range all {
			if r.Contains(ts(rc.sec)) {
				want[rc.tmpl]++
			}
		}
		groups := s.GroupedCounts(5, r)
		if len(groups) != len(want) {
			t.Errorf("range %v: %d groups, want %d", r, len(groups), len(want))
		}
		for id, cnt := range want {
			if groups[id].Count != cnt {
				t.Errorf("range %v: count[%d] = %d, want %d", r, id, groups[id].Count, cnt)
			}
			for _, off := range groups[id].Samples {
				got, err := s.Get(off)
				if err != nil {
					t.Fatalf("range %v: Get(sample %d): %v", r, off, err)
				}
				if !r.Contains(got.Time) || got.TemplateID != id {
					t.Errorf("range %v: sample %d is %+v", r, off, got)
				}
			}
		}
		counts := s.TemplateCounts(r)
		for id, cnt := range want {
			if counts[id] != cnt {
				t.Errorf("range %v: TemplateCounts[%d] = %d, want %d", r, id, counts[id], cnt)
			}
		}
		scanned := 0
		s.Scan(0, -1, r, func(rec Record) bool {
			if !r.Contains(rec.Time) {
				t.Fatalf("range %v: Scan leaked %v", r, rec.Time)
			}
			scanned++
			return true
		})
		wantTotal := 0
		for _, c := range want {
			wantTotal += c
		}
		if scanned != wantTotal {
			t.Errorf("range %v: Scan visited %d, want %d", r, scanned, wantTotal)
		}
	}

	// Hot-only range over a sealed+hot store must not touch sealed blocks.
	before := s.SegmentStats().BlockReads
	if groups := s.GroupedCounts(5, tr(450, 460)); len(groups) == 0 {
		t.Fatal("hot-only range returned nothing")
	}
	if reads := s.SegmentStats().BlockReads - before; reads != 0 {
		t.Fatalf("hot-only range paid %d sealed block reads", reads)
	}
}

// TestShardedTimeRangeStress races Ingest ∥ time-range Query ∥ Seal on a
// sharded segment store; run with -race it guards the new range paths'
// locking.
func TestShardedTimeRangeStress(t *testing.T) {
	s, err := OpenSharded("t", ShardConfig{Shards: 2, SegmentBytes: 4 << 10, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if _, err := s.AppendShard(w, ts(i), fmt.Sprintf("w%d line %d token-%d", w, i, i%17), uint64(1+i%7)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			lo := rng.Intn(2000)
			r := tr(lo, lo+rng.Intn(500))
			total := 0
			for _, g := range s.GroupedCounts(3, r) {
				total += g.Count
			}
			n := s.CountSince(ts(lo))
			_ = total
			_ = n
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := s.Seal(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", s.Len())
	}
	// Post-stress: a bounded range still agrees with the linear truth.
	r := tr(500, 1500)
	want := 0
	s.Scan(0, -1, TimeRange{}, func(rec Record) bool {
		if r.Contains(rec.Time) {
			want++
		}
		return true
	})
	got := 0
	for _, g := range s.GroupedCounts(5, r) {
		got += g.Count
	}
	if got != want {
		t.Fatalf("post-stress range count %d, want %d", got, want)
	}
}

// TestSnapshotRetentionBoundsStorage: with Latest=K and no checkpoints,
// the internal topic retains exactly K snapshots no matter how many
// training cycles append; the newest is always served.
func TestSnapshotRetentionBoundsStorage(t *testing.T) {
	for _, disk := range []bool{false, true} {
		name := "memory"
		if disk {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			var in SnapshotStore
			if disk {
				d, err := OpenDiskInternal(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				in = d
			} else {
				in = NewInternal()
			}
			in.SetRetention(Retention{Latest: 3})
			for i := 0; i < 100; i++ {
				if err := in.AppendSnapshot(ts(i), []byte(fmt.Sprintf("model-%d", i))); err != nil {
					t.Fatal(err)
				}
				if got := in.Snapshots(); got > 3 {
					t.Fatalf("after %d appends: %d snapshots retained, want <= 3", i+1, got)
				}
			}
			if got := in.Snapshots(); got != 3 {
				t.Fatalf("retained %d, want 3", got)
			}
			data, err := in.LatestSnapshot()
			if err != nil || string(data) != "model-99" {
				t.Fatalf("LatestSnapshot = %q, %v", data, err)
			}
		})
	}
}

// TestSnapshotRetentionCheckpoints: periodic checkpoints survive pruning,
// so storage after n cycles is O(K + n/CheckpointEvery), not O(n).
func TestSnapshotRetentionCheckpoints(t *testing.T) {
	in := NewInternal()
	in.SetRetention(Retention{Latest: 2, CheckpointEvery: 10})
	for i := 0; i < 50; i++ {
		if err := in.AppendSnapshot(ts(i), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kept: checkpoints 0,10,20,30,40 plus latest 48,49.
	if got := in.Snapshots(); got != 7 {
		t.Fatalf("retained %d, want 7", got)
	}
	data, _ := in.LatestSnapshot()
	if string(data) != "m49" {
		t.Fatalf("latest = %q", data)
	}
}

// TestDiskInternalPruneThenReopen is the index-reuse regression: after
// pruning, the next write index must continue past the highest ever
// written — a reopened store that counted files instead would overwrite
// a retained checkpoint.
func TestDiskInternalPruneThenReopen(t *testing.T) {
	dir := t.TempDir()
	in, err := OpenDiskInternal(dir)
	if err != nil {
		t.Fatal(err)
	}
	in.SetRetention(Retention{Latest: 2, CheckpointEvery: 5})
	for i := 0; i < 12; i++ {
		if err := in.AppendSnapshot(ts(i), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kept on disk: checkpoints 0,5,10 plus latest 10,11 -> {0,5,10,11}.
	if got := in.Snapshots(); got != 4 {
		t.Fatalf("retained %d, want 4", got)
	}
	// Reopen without retention: sees the 4 survivors, and the next write
	// must take index 12, not overwrite checkpoint file model-000004.
	in2, err := OpenDiskInternal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := in2.Snapshots(); got != 4 {
		t.Fatalf("reopened sees %d, want 4", got)
	}
	if data, err := in2.LatestSnapshot(); err != nil || string(data) != "m11" {
		t.Fatalf("reopened latest = %q, %v", data, err)
	}
	if err := in2.AppendSnapshot(ts(12), []byte("m12")); err != nil {
		t.Fatal(err)
	}
	if data, _ := in2.LatestSnapshot(); string(data) != "m12" {
		t.Fatalf("after reopen append, latest = %q", data)
	}
	// The old checkpoints still hold their original content.
	for _, idx := range []int{0, 5} {
		data, err := os.ReadFile(snapshotPath(dir, idx))
		if err != nil || string(data) != fmt.Sprintf("m%d", idx) {
			t.Fatalf("checkpoint %d = %q, %v", idx, data, err)
		}
	}
}
