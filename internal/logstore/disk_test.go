package logstore

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestDiskTopicAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	dt, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		off, err := dt.Append(ts(i), "record payload with text", uint64(i%5))
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything recovered.
	dt2, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dt2.Close()
	if dt2.Len() != 100 {
		t.Fatalf("recovered %d records, want 100", dt2.Len())
	}
	r, err := dt2.Get(42)
	if err != nil || r.TemplateID != 42%5 || r.Raw != "record payload with text" {
		t.Fatalf("Get(42) = %+v, %v", r, err)
	}
	if !r.Time.Equal(ts(42)) {
		t.Errorf("time not recovered: %v", r.Time)
	}
	if got := len(dt2.ByTemplate(3)); got != 20 {
		t.Errorf("ByTemplate(3) = %d offsets, want 20", got)
	}
	// Appending after recovery continues the offset sequence.
	off, err := dt2.Append(ts(1000), "after reopen", 9)
	if err != nil || off != 100 {
		t.Fatalf("append after reopen: off=%d err=%v", off, err)
	}
}

func TestDiskTopicCrashRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	dt, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := dt.Append(ts(i), "full record", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the segment tail.
	seg := filepath.Join(dir, "segment-000000.log")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	dt2, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer dt2.Close()
	if dt2.Len() != 9 {
		t.Fatalf("recovered %d records after torn tail, want 9", dt2.Len())
	}
	// The torn record is gone from disk too: reopen once more.
	if err := dt2.Close(); err != nil {
		t.Fatal(err)
	}
	dt3, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dt3.Close()
	if dt3.Len() != 9 {
		t.Fatalf("second recovery %d records, want 9", dt3.Len())
	}
}

func TestDiskTopicSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	dt, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	dt.maxSeg = 256 // force rotation quickly
	for i := 0; i < 50; i++ {
		if _, err := dt.Append(ts(i), "a reasonably sized log record payload", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := dt.segmentFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	dt2, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer dt2.Close()
	if dt2.Len() != 50 {
		t.Fatalf("recovered %d of 50 across segments", dt2.Len())
	}
}

func TestDiskTopicAppendAfterCloseFails(t *testing.T) {
	dt, err := OpenDiskTopic(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Append(time.Now(), "x", 1); err == nil {
		t.Error("append after close succeeded")
	}
	if err := dt.Close(); err != nil {
		t.Errorf("double close errored: %v", err)
	}
}

func TestDiskTopicSync(t *testing.T) {
	dt, err := OpenDiskTopic(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	if _, err := dt.Append(time.Now(), "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := dt.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskInternalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in, err := OpenDiskInternal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.LatestSnapshot(); err != ErrNoSnapshot {
		t.Fatalf("empty LatestSnapshot = %v", err)
	}
	if err := in.AppendSnapshot(ts(1), []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := in.AppendSnapshot(ts(2), []byte("m2")); err != nil {
		t.Fatal(err)
	}
	data, err := in.LatestSnapshot()
	if err != nil || string(data) != "m2" {
		t.Fatalf("LatestSnapshot = %q, %v", data, err)
	}
	// Reopen counts existing snapshots and continues.
	in2, err := OpenDiskInternal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if in2.Snapshots() != 2 {
		t.Fatalf("reopened Snapshots = %d", in2.Snapshots())
	}
	if err := in2.AppendSnapshot(ts(3), []byte("m3")); err != nil {
		t.Fatal(err)
	}
	data, _ = in2.LatestSnapshot()
	if string(data) != "m3" {
		t.Errorf("after reopen append: %q", data)
	}
}

func TestMemStoreImplementsStore(t *testing.T) {
	s := NewStore("mem")
	off, err := s.Append(ts(1), "hello world", 7)
	if err != nil || off != 0 {
		t.Fatalf("Append = %d, %v", off, err)
	}
	if s.Len() != 1 || s.Bytes() != 11 {
		t.Errorf("Len/Bytes = %d/%d", s.Len(), s.Bytes())
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
}
