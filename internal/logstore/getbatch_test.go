package logstore

import (
	"fmt"
	"testing"

	"bytebrain/internal/segment"
)

func TestTopicGetBatch(t *testing.T) {
	tp := NewTopic("t")
	for i := 0; i < 50; i++ {
		tp.Append(ts(i), fmt.Sprintf("line %d", i), uint64(i%3))
	}
	// Out-of-order input, duplicates allowed: results come back in
	// input order.
	offs := []int64{41, 3, 3, 0, 49}
	recs, err := tp.GetBatch(offs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(offs) {
		t.Fatalf("got %d records, want %d", len(recs), len(offs))
	}
	for i, off := range offs {
		if recs[i].Offset != off || recs[i].Raw != fmt.Sprintf("line %d", off) {
			t.Fatalf("recs[%d] = %+v, want offset %d", i, recs[i], off)
		}
	}
	if _, err := tp.GetBatch([]int64{50}); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	if _, err := tp.GetBatch([]int64{-1}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if recs, err := tp.GetBatch(nil); err != nil || len(recs) != 0 {
		t.Fatalf("empty batch = (%v, %v)", recs, err)
	}
}

// TestCompactingGetBatch is the point of the batched read path: offsets
// that share a sealed block must share ONE payload decompression, not
// one per offset.
func TestCompactingGetBatch(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{Dir: t.TempDir(), SegmentBytes: 2048, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillCompacting(t, s, 500, 0)
	s.WaitIdle()
	if err := s.SealError(); err != nil {
		t.Fatal(err)
	}
	st := s.SegmentStats()
	if st.Segments < 2 {
		t.Fatalf("need ≥2 sealed segments for the test, got %d", st.Segments)
	}
	sealed := 500 - int(st.HotRecords)
	if sealed < 10 || st.HotRecords < 1 {
		t.Fatalf("want both sealed and hot records, got sealed=%d hot=%d", sealed, st.HotRecords)
	}

	check := func(offs []int64) []Record {
		t.Helper()
		recs, err := s.GetBatch(offs)
		if err != nil {
			t.Fatal(err)
		}
		for i, off := range offs {
			want := fmt.Sprintf("worker %d finished job job-%d in 12ms", off%7, off)
			if recs[i].Offset != off || recs[i].Raw != want || recs[i].TemplateID != uint64(1+off%3) {
				t.Fatalf("recs[%d] = %+v, want offset %d", i, recs[i], off)
			}
		}
		return recs
	}

	// Several offsets inside the first sealed block: exactly one
	// decompression.
	before := s.SegmentStats().BlockReads
	check([]int64{5, 0, 9, 2, 2})
	if delta := s.SegmentStats().BlockReads - before; delta != 1 {
		t.Fatalf("one-block batch cost %d block reads, want 1", delta)
	}

	// First and last sealed blocks plus a hot record: exactly two
	// decompressions (hot reads are free).
	before = s.SegmentStats().BlockReads
	check([]int64{int64(sealed) - 1, 499, 0})
	if delta := s.SegmentStats().BlockReads - before; delta != 2 {
		t.Fatalf("two-block batch cost %d block reads, want 2", delta)
	}

	// Get would have paid one read per offset; GetBatch must agree with
	// it record-for-record anyway.
	recs := check([]int64{100, 300})
	for _, r := range recs {
		single, err := s.Get(r.Offset)
		if err != nil {
			t.Fatal(err)
		}
		if single != r {
			t.Fatalf("GetBatch(%d) = %+v, Get = %+v", r.Offset, r, single)
		}
	}

	if _, err := s.GetBatch([]int64{500}); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
}

func TestShardedGetBatch(t *testing.T) {
	s, err := OpenSharded("t", ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var offs []int64
	for i := 0; i < 60; i++ {
		off, err := s.Append(ts(i), fmt.Sprintf("sharded line %d", i), uint64(i%4))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	// Interleave shards in the request and reverse the order: the
	// result must still line up element-for-element with the input.
	req := []int64{offs[59], offs[0], offs[31], offs[10], offs[31]}
	recs, err := s.GetBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(req) {
		t.Fatalf("got %d records, want %d", len(recs), len(req))
	}
	for i, off := range req {
		single, err := s.Get(off)
		if err != nil {
			t.Fatal(err)
		}
		if recs[i] != single {
			t.Fatalf("recs[%d] = %+v, Get(%d) = %+v", i, recs[i], off, single)
		}
	}
	if _, err := s.GetBatch([]int64{int64(99) << 48}); err == nil {
		t.Fatal("offset outside the shard namespace accepted")
	}
}
