package logstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// walFiles returns dir's WAL file names, sorted.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// stopSealer halts the background compactor so WAL files survive for
// byte-level inspection (sealing deletes them).
func stopSealer(s *CompactingStore) {
	close(s.doneCh)
	s.sealWG.Wait()
}

// TestWALBatchGoldenBytes is the WAL-compat satellite: the bytes a
// group-committed AppendBatch writes must be identical to the bytes the
// per-record Append path writes for the same records — including the
// block-rotation boundaries mid-batch, so the WAL file SET matches too.
// Byte identity is what guarantees a pre-PR reader replays batch-written
// WALs: the on-disk format did not change at all.
func TestWALBatchGoldenBytes(t *testing.T) {
	for _, segBytes := range []int64{1 << 30, 300} {
		t.Run(fmt.Sprintf("segmentBytes=%d", segBytes), func(t *testing.T) {
			dirOne, dirBatch := t.TempDir(), t.TempDir()
			one, err := OpenCompacting("t", CompactConfig{Dir: dirOne, SegmentBytes: segBytes})
			if err != nil {
				t.Fatal(err)
			}
			batch, err := OpenCompacting("t", CompactConfig{Dir: dirBatch, SegmentBytes: segBytes})
			if err != nil {
				t.Fatal(err)
			}
			// Stop both sealers first: rotation may otherwise seal early
			// blocks and delete exactly the WAL files under comparison.
			stopSealer(one)
			stopSealer(batch)

			recs := make([]BatchRecord, 40)
			for i := range recs {
				recs[i] = BatchRecord{
					Raw:        fmt.Sprintf("req %d served in %dms by node-%d", i, i%17, i%3),
					TemplateID: uint64(i%4 + 1),
				}
			}
			for _, r := range recs {
				if _, err := one.Append(ts(7), r.Raw, r.TemplateID); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := batch.AppendBatch(ts(7), recs); err != nil {
				t.Fatal(err)
			}
			if err := one.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := batch.Flush(); err != nil {
				t.Fatal(err)
			}

			onePaths, batchPaths := walFiles(t, dirOne), walFiles(t, dirBatch)
			if len(onePaths) != len(batchPaths) {
				t.Fatalf("WAL file sets differ: per-record %v, batch %v", onePaths, batchPaths)
			}
			if segBytes == 300 && len(onePaths) < 2 {
				t.Fatalf("expected mid-batch rotation to produce multiple WALs, got %v", onePaths)
			}
			for i := range onePaths {
				if filepath.Base(onePaths[i]) != filepath.Base(batchPaths[i]) {
					t.Fatalf("WAL name %d: %s vs %s", i, onePaths[i], batchPaths[i])
				}
				a, err := os.ReadFile(onePaths[i])
				if err != nil {
					t.Fatal(err)
				}
				b, err := os.ReadFile(batchPaths[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("WAL %s differs between per-record and batch paths (%d vs %d bytes)",
						filepath.Base(onePaths[i]), len(a), len(b))
				}
			}

			// The batch-written WALs replay through the unchanged reader.
			reopened, err := OpenCompacting("t", CompactConfig{Dir: dirBatch, SegmentBytes: segBytes})
			if err != nil {
				t.Fatal(err)
			}
			defer reopened.Close()
			if reopened.Len() != len(recs) {
				t.Fatalf("recovered %d records from batch-written WALs, want %d", reopened.Len(), len(recs))
			}
			for i := int64(0); i < int64(len(recs)); i++ {
				r, err := reopened.Get(i)
				if err != nil || r.Raw != recs[i].Raw || r.TemplateID != recs[i].TemplateID {
					t.Fatalf("Get(%d) = %+v, %v; want %+v", i, r, err, recs[i])
				}
			}
		})
	}
}

// TestWALPrePRFormatRecovers writes a WAL with the raw record encoding
// directly — the exact byte stream the pre-PR per-record writer produced
// — and verifies the store still recovers it: no version bump, no
// migration.
func TestWALPrePRFormatRecovers(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	raws := []string{"old format line one", "old format line two", "old format line three"}
	for i, raw := range raws {
		var hdr [recordOverhead]byte
		putRecordHeader(hdr[:], ts(i), uint64(i+1), len(raw))
		buf = append(buf, hdr[:]...)
		buf = append(buf, raw...)
	}
	if err := os.WriteFile(filepath.Join(dir, walPrefix+"000000"+walSuffix), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != len(raws) {
		t.Fatalf("recovered %d records, want %d", s.Len(), len(raws))
	}
	for i, raw := range raws {
		r, err := s.Get(int64(i))
		if err != nil || r.Raw != raw || r.TemplateID != uint64(i+1) {
			t.Fatalf("Get(%d) = %+v, %v", i, r, err)
		}
	}
	// And the batch path keeps appending to it in the same format.
	if _, err := s.AppendBatch(ts(9), []BatchRecord{{Raw: "new batch line", TemplateID: 9}}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(raws)+1 {
		t.Fatalf("Len = %d after batch append", s.Len())
	}
}

// TestWALTornTailMidBatch injects a write tear in the MIDDLE of a
// group-committed batch: the fully-written prefix of the batch must be
// admitted (and survive replay), the torn record and everything after it
// must fail, and the quarantine path must keep later appends flowing
// into a fresh WAL.
func TestWALTornTailMidBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 3, 0)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Keep WALs on disk: recovery below must come from replay, not seal.
	stopSealer(s)

	batch := make([]BatchRecord, 10)
	for i := range batch {
		batch[i] = BatchRecord{Raw: fmt.Sprintf("batch record %d with payload", i), TemplateID: uint64(i)}
	}
	injectTornWriteAt(s, 6) // tear inside record index 5 of the batch
	if _, err := s.AppendBatch(ts(3), batch); err == nil {
		t.Fatal("AppendBatch over a torn WAL write must fail")
	}
	// 3 pre-batch + 5 fully-written batch records are admitted.
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8 (prefix of the torn batch admitted)", s.Len())
	}
	// The store rotated to a fresh WAL; further batches land cleanly.
	if _, err := s.AppendBatch(ts(4), batch[:2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "awaiting seal") {
		t.Fatalf("Flush over the unsealed poisoned block = %v, want pending-seal report", err)
	}

	// "Crash" and recover: only the torn suffix is gone.
	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("recovered %d records, want 10 (3 + 5 admitted + 2 post-rotate)", s2.Len())
	}
	for i := 0; i < 5; i++ {
		r, err := s2.Get(int64(3 + i))
		if err != nil || r.Raw != batch[i].Raw {
			t.Fatalf("Get(%d) = %+v, %v; want %q", 3+i, r, err, batch[i].Raw)
		}
	}
	// The torn record must not resurface.
	if hits := s2.Search("record"); len(hits) != 7 {
		t.Fatalf("Search hits = %d, want 7 (5 admitted + 2 post-rotate)", len(hits))
	}
}
