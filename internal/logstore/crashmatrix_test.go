package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bytebrain/internal/fsx"
)

// The crash-point matrix drives one deterministic store lifecycle —
// ingest, seal, more ingest, model checkpoints, close — over a
// fault-injecting filesystem, counts every filesystem operation it
// performs, and then re-runs the whole lifecycle once per operation
// index with a fault injected exactly there: a simulated power cut
// (unsynced bytes vanish, the store reopens from the crash image) and a
// transient ENOSPC. After every run the invariants are the same:
//
//   - reopening never fails unrecoverably,
//   - every acked record (append AND Flush both reported success)
//     survives replay,
//   - no record is duplicated and no phantom records appear,
//   - the latest recoverable model snapshot is intact, never torn.
//
// The full sweep runs when BYTEBRAIN_CRASH_MATRIX=1 (CI has a gated
// job for it); otherwise a bounded smoke strides across the op space.

// crashStoreOpts returns tight, deterministic store options for matrix
// runs: fsync after every batch would hide interesting orderings, so
// durability acks come from explicit Flush calls instead; retries are
// short so a downed filesystem degrades (and Close terminates) fast;
// the background probe is parked — the matrix reopens explicitly.
func crashStoreOpts(fsys fsx.FS) StoreOptions {
	return StoreOptions{
		FS:             fsys,
		SealRetryBase:  time.Millisecond,
		SealRetryMax:   2 * time.Millisecond,
		SealMaxRetries: 1,
		ProbeInterval:  time.Hour,
	}
}

// crashRun is what one workload execution observed: which records and
// snapshots the store acked as durable, and everything it attempted.
type crashRun struct {
	acked     []string       // append + Flush both succeeded
	attempted []string       // every record handed to AppendBatch
	ackedSnap int            // highest snapshot index AppendSnapshot acked (-1: none)
	snaps     map[int]string // payload written per snapshot attempt
}

func crashSnapPayload(i int) string {
	return strings.Repeat(fmt.Sprintf("model-%d|", i), 32)
}

// runCrashWorkload drives the lifecycle against fsys rooted at dir.
// Fault injection makes every step fallible, so errors are recorded
// rather than fatal — what matters is what the post-fault reopen
// recovers relative to what was acked.
func runCrashWorkload(fsys fsx.FS, dir string) crashRun {
	run := crashRun{ackedSnap: -1, snaps: map[int]string{}}
	st, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 20, Opts: crashStoreOpts(fsys)})
	if err != nil {
		return run
	}
	defer st.Close()
	internal, internalErr := OpenDiskInternalFS(fsys, filepath.Join(dir, "models"))

	next := 0
	appendBatch := func(n int) {
		recs := make([]BatchRecord, 0, n)
		for i := 0; i < n; i++ {
			recs = append(recs, BatchRecord{Raw: fmt.Sprintf("rec-%06d", next), TemplateID: uint64(1 + next%3)})
			run.attempted = append(run.attempted, recs[i].Raw)
			next++
		}
		if _, err := st.AppendBatch(ts(next), recs); err != nil {
			return
		}
		if err := st.Flush(); err != nil {
			return
		}
		for _, r := range recs {
			run.acked = append(run.acked, r.Raw)
		}
	}
	seal := func() {
		if err := st.Seal(); err == nil {
			st.WaitIdle()
		}
	}
	snapshot := func(i int) {
		if internalErr != nil {
			return
		}
		payload := crashSnapPayload(i)
		run.snaps[i] = payload
		if err := internal.AppendSnapshot(ts(i), []byte(payload)); err == nil {
			run.ackedSnap = i
		}
	}

	appendBatch(4)
	appendBatch(3)
	seal()
	snapshot(0)
	appendBatch(5)
	seal()
	snapshot(1)
	appendBatch(2)
	return run
}

// verifyCrashRecovery reopens everything after the fault and checks the
// acked⇒durable contract. label names the fault for failure messages.
func verifyCrashRecovery(t *testing.T, label string, fsys *fsx.FaultFS, dir string, run crashRun) {
	t.Helper()
	if fsys.Down() {
		fsys.Restart()
	}
	st, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 20, Opts: crashStoreOpts(fsys)})
	if err != nil {
		t.Fatalf("%s: reopen failed unrecoverably: %v\nsurviving files: %v", label, err, fsys.DumpPaths())
	}
	attempted := make(map[string]bool, len(run.attempted))
	for _, raw := range run.attempted {
		attempted[raw] = true
	}
	seen := map[string]int{}
	st.Scan(0, -1, TimeRange{}, func(r Record) bool {
		seen[r.Raw]++
		return true
	})
	for raw, n := range seen {
		if n > 1 {
			t.Errorf("%s: record %q recovered %d times (duplicate)", label, raw, n)
		}
		if !attempted[raw] {
			t.Errorf("%s: phantom record %q recovered but never appended", label, raw)
		}
	}
	for _, raw := range run.acked {
		if seen[raw] == 0 {
			t.Errorf("%s: acked record %q lost\nsurviving files: %v", label, raw, fsys.DumpPaths())
		}
	}
	if err := st.Close(); err != nil {
		t.Errorf("%s: close after recovery: %v", label, err)
	}

	internal, err := OpenDiskInternalFS(fsys, filepath.Join(dir, "models"))
	if err != nil {
		t.Fatalf("%s: reopen internal: %v", label, err)
	}
	data, err := internal.LatestSnapshot()
	if run.ackedSnap >= 0 && err != nil {
		t.Errorf("%s: acked snapshot %d lost: %v", label, run.ackedSnap, err)
	}
	if err == nil {
		// Whatever snapshot recovery serves must be byte-identical to
		// one that was written — a torn checkpoint must never surface.
		intact := false
		for _, p := range run.snaps {
			if string(data) == p {
				intact = true
				break
			}
		}
		if !intact {
			t.Errorf("%s: recovered snapshot is torn (%d bytes)", label, len(data))
		}
	}
}

// matrixIndexes picks the op indexes to sweep: every one under the env
// gate, a deterministic stride plus the tail otherwise.
func matrixIndexes(t *testing.T, n int64) []int64 {
	var ks []int64
	if os.Getenv("BYTEBRAIN_CRASH_MATRIX") == "1" {
		for k := int64(1); k <= n; k++ {
			ks = append(ks, k)
		}
		return ks
	}
	step := n / 24
	if step < 1 {
		step = 1
	}
	for k := int64(1); k <= n; k += step {
		ks = append(ks, k)
	}
	// The close/teardown ops at the very end are where WAL flush and
	// teardown faults hide; always include the last few.
	for k := n - 2; k <= n; k++ {
		if k > 0 && (len(ks) == 0 || ks[len(ks)-1] < k) {
			ks = append(ks, k)
		}
	}
	t.Logf("crash matrix smoke: %d of %d op indexes (set BYTEBRAIN_CRASH_MATRIX=1 for the full sweep)", len(ks), n)
	return ks
}

func TestCrashMatrix(t *testing.T) {
	// Baseline: a faultless run sizes the matrix and proves the workload
	// itself acks everything.
	base := fsx.NewFaultFS()
	base.StrictDirs = true
	run := runCrashWorkload(base, "/data")
	n := base.Ops()
	if len(run.acked) != len(run.attempted) || len(run.attempted) == 0 {
		t.Fatalf("faultless run acked %d of %d records", len(run.acked), len(run.attempted))
	}
	if run.ackedSnap != 1 {
		t.Fatalf("faultless run acked snapshot %d, want 1", run.ackedSnap)
	}
	verifyCrashRecovery(t, "faultless", base, "/data", run)

	for _, k := range matrixIndexes(t, n) {
		// Power cut at op k: unsynced bytes vanish, then the machine
		// restarts and the store must reopen from the crash image.
		fsys := fsx.NewFaultFS()
		fsys.StrictDirs = true
		fsys.CrashAt(k)
		run := runCrashWorkload(fsys, "/data")
		verifyCrashRecovery(t, fmt.Sprintf("power cut at op %d", k), fsys, "/data", run)

		// Transient disk-full at op k: the op fails with ENOSPC, the
		// disk stays up, and the store must shed or degrade without
		// losing anything it acked.
		fsys = fsx.NewFaultFS()
		fsys.StrictDirs = true
		fsys.FailAt(k, fsx.ErrNoSpace)
		run = runCrashWorkload(fsys, "/data")
		verifyCrashRecovery(t, fmt.Sprintf("ENOSPC at op %d", k), fsys, "/data", run)
	}
}

// TestCrashDuringRecovery arms a second power cut that lands inside the
// post-crash recovery scan itself: the reopen fails, the machine
// restarts again, and the third open must succeed with nothing acked
// lost.
func TestCrashDuringRecovery(t *testing.T) {
	fsys := fsx.NewFaultFS()
	fsys.StrictDirs = true
	run := runCrashWorkload(fsys, "/data")
	if len(run.acked) == 0 {
		t.Fatal("workload acked nothing")
	}
	// Sweep every op of the recovery itself: reopen with a crash armed
	// at (post-workload) index k, restart, then verify.
	start := fsys.Ops()
	st, err := OpenCompacting("t", CompactConfig{Dir: "/data", SegmentBytes: 1 << 20, Opts: crashStoreOpts(fsys)})
	if err != nil {
		t.Fatalf("faultless reopen: %v", err)
	}
	st.Close()
	recoveryOps := fsys.Ops() - start
	for i := int64(1); i <= recoveryOps; i++ {
		k := fsys.Ops() + i
		fsys.CrashAt(k)
		if st, err := OpenCompacting("t", CompactConfig{Dir: "/data", SegmentBytes: 1 << 20, Opts: crashStoreOpts(fsys)}); err == nil {
			st.Close()
		}
		verifyCrashRecovery(t, fmt.Sprintf("power cut during recovery (op +%d)", i), fsys, "/data", run)
	}
}
