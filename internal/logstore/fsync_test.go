package logstore

import (
	"testing"
	"time"

	"bytebrain/internal/obs"
)

// testMetrics builds a fully-populated Metrics bundle against a private
// registry so assertions can read exact counter values.
func testMetrics(shards int) *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{
		WALAppendRecords:   r.Counter("wal_append_records_total", "t").With(),
		WALAppendBytes:     r.Counter("wal_append_bytes_total", "t").With(),
		WALFsyncs:          r.Counter("wal_fsyncs_total", "t").With(),
		WALFsyncErrors:     r.Counter("wal_fsync_errors_total", "t").With(),
		WALFsyncSeconds:    r.Histogram("wal_fsync_seconds", "t", obs.LatencyBuckets).With(),
		WALPoisonRotations: r.Counter("wal_poison_rotations_total", "t").With(),
		RecoveredSegments:  r.Counter("recovered_segments_total", "t").With(),
		RecoveredRecords:   r.Counter("recovered_records_total", "t").With(),
		WALTornTails:       r.Counter("wal_torn_tails_total", "t").With(),
		BatchRecords:       r.Histogram("batch_records", "t", obs.SizeBuckets(1, 64, 256, 1024)).With(),
		Seals:              r.Counter("seals_total", "t").With(),
		SealSeconds:        r.Histogram("seal_seconds", "t", obs.LatencyBuckets).With(),
		BlocksPruned:       r.Counter("blocks_pruned_total", "t").With(),
	}
	sv := r.Counter("shard_appends_total", "t", "shard")
	for i := 0; i < shards; i++ {
		m.ShardAppends = append(m.ShardAppends, sv.With(string(rune('0'+i))))
	}
	return m
}

func batchOf(n int, tmpl uint64) []BatchRecord {
	recs := make([]BatchRecord, n)
	for i := range recs {
		recs[i] = BatchRecord{Raw: "metric test line payload", TemplateID: tmpl}
	}
	return recs
}

// TestWALFsyncEveryN verifies the count half of the fsync policy: one
// fsync per N WAL commits, no more.
func TestWALFsyncEveryN(t *testing.T) {
	m := testMetrics(0)
	s, err := OpenCompacting("t", CompactConfig{
		Dir:          t.TempDir(),
		SegmentBytes: 1 << 20,
		Opts:         StoreOptions{Metrics: m, FsyncEveryBatches: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := s.AppendBatch(ts, batchOf(3, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// 5 batch commits at every-2 → fsyncs after commits 2 and 4.
	if got := m.WALFsyncs.Value(); got != 2 {
		t.Fatalf("fsyncs = %d, want 2", got)
	}
	if got := m.WALAppendRecords.Value(); got != 15 {
		t.Fatalf("wal records = %d, want 15", got)
	}
	if m.WALAppendBytes.Value() <= 0 {
		t.Fatal("wal bytes not recorded")
	}
	if got := m.BatchRecords.Count(); got != 5 {
		t.Fatalf("batch observations = %d, want 5", got)
	}
	if got := m.BatchRecords.Sum(); got != 15 {
		t.Fatalf("batch size sum = %d, want 15", got)
	}
	// Per-record appends count as commits too.
	if _, err := s.Append(ts, "single", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ts, "single", 1); err != nil {
		t.Fatal(err)
	}
	if got := m.WALFsyncs.Value(); got != 3 {
		t.Fatalf("fsyncs after per-record appends = %d, want 3", got)
	}
}

// TestWALFsyncInterval verifies the time half of the policy: a dirty WAL
// is synced within the interval, and an idle store stops syncing.
func TestWALFsyncInterval(t *testing.T) {
	m := testMetrics(0)
	s, err := OpenCompacting("t", CompactConfig{
		Dir:          t.TempDir(),
		SegmentBytes: 1 << 20,
		Opts:         StoreOptions{Metrics: m, FsyncInterval: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.AppendBatch(time.Now(), batchOf(4, 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.WALFsyncs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	// Idle: the dirty flag is spent, so further ticks must not fsync.
	base := m.WALFsyncs.Value()
	time.Sleep(30 * time.Millisecond)
	if got := m.WALFsyncs.Value(); got != base {
		t.Fatalf("idle store kept fsyncing: %d -> %d", base, got)
	}
}

// TestRecoveryMetrics verifies reopen-time counters: segments recovered
// by metadata and records replayed from the surviving WAL.
func TestRecoveryMetrics(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Now()
	if _, err := s.AppendBatch(ts, batchOf(40, 1)); err != nil { // forces ≥1 seal at 256B
		t.Fatal(err)
	}
	if _, err := s.Append(ts, "tail line kept hot", 2); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	m := testMetrics(0)
	re, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 256, Opts: StoreOptions{Metrics: m}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := m.RecoveredSegments.Value(); got == 0 {
		t.Fatal("no recovered segments counted")
	}
	if got := m.RecoveredRecords.Value(); got == 0 {
		t.Fatal("no replayed WAL records counted")
	}
	if re.Len() != 41 {
		t.Fatalf("recovered %d records, want 41", re.Len())
	}
}

// TestShardAppendMetrics verifies per-shard append counters through the
// pinned batch path.
func TestShardAppendMetrics(t *testing.T) {
	m := testMetrics(2)
	s, err := OpenSharded("t", ShardConfig{Shards: 2, Opts: StoreOptions{Metrics: m}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := time.Now()
	if _, err := s.AppendShardBatch(0, ts, batchOf(3, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendShardBatch(1, ts, batchOf(5, 1)); err != nil {
		t.Fatal(err)
	}
	if got := m.ShardAppends[0].Value(); got != 3 {
		t.Fatalf("shard 0 appends = %d, want 3", got)
	}
	if got := m.ShardAppends[1].Value(); got != 5 {
		t.Fatalf("shard 1 appends = %d, want 5", got)
	}
}
