// Package logstore implements the append-only topic storage substrate of
// the paper's log service (§3): a log topic is the unit where records are
// indexed, stored, and made available for analysis. Records carry the
// template ID computed at ingestion (template IDs "must be computed along
// with other traditional text indices before logs can be written to the
// append-only log topic storage"), and an internal topic persists model
// snapshots as ordinary records.
package logstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bytebrain/internal/segment"
)

// Record is one stored log entry.
type Record struct {
	// Offset is the dense, zero-based position in the topic.
	Offset int64
	// Time is the ingestion timestamp.
	Time time.Time
	// Raw is the original log line.
	Raw string
	// TemplateID is the most precise template matched at ingestion.
	TemplateID uint64
}

// BatchRecord is one record of an AppendBatch call: the raw line and the
// template ID computed at ingestion. Offsets and the shared batch
// timestamp are assigned by the store.
type BatchRecord struct {
	// Raw is the original log line.
	Raw string
	// TemplateID is the most precise template matched at ingestion.
	TemplateID uint64
}

// TimeRange bounds a query to records with From <= Time <= To, both ends
// inclusive. A zero From or To leaves that side unbounded, so the zero
// TimeRange matches every record; a range whose From is after its To is
// empty and matches nothing. Every query path pushes the range down as
// far as its storage allows: sealed segments prune whole blocks by their
// metadata time bounds and templates by per-template bounds, hot topics
// fall back to an index fast path when the range covers everything they
// hold and a linear filter otherwise.
type TimeRange struct {
	From time.Time
	To   time.Time
}

// IsZero reports whether both ends are unbounded (the match-all range).
func (tr TimeRange) IsZero() bool { return tr.From.IsZero() && tr.To.IsZero() }

// Empty reports whether the range can match no record at all.
func (tr TimeRange) Empty() bool {
	return !tr.From.IsZero() && !tr.To.IsZero() && tr.From.After(tr.To)
}

// Contains reports whether t lies inside the range.
func (tr TimeRange) Contains(t time.Time) bool {
	if !tr.From.IsZero() && t.Before(tr.From) {
		return false
	}
	if !tr.To.IsZero() && t.After(tr.To) {
		return false
	}
	return true
}

// Covers reports whether every instant of [min, max] lies inside the
// range — the "take the whole block from metadata" fast path.
func (tr TimeRange) Covers(min, max time.Time) bool {
	return !tr.Empty() && tr.Contains(min) && tr.Contains(max)
}

// Overlaps reports whether any instant of [min, max] lies inside the
// range; false prunes the whole block.
func (tr TimeRange) Overlaps(min, max time.Time) bool {
	if tr.Empty() {
		return false
	}
	if !tr.From.IsZero() && max.Before(tr.From) {
		return false
	}
	if !tr.To.IsZero() && min.After(tr.To) {
		return false
	}
	return true
}

// Topic is an append-only record log with a template index and a token
// index. All methods are safe for concurrent use.
type Topic struct {
	name string

	mu       sync.RWMutex
	records  []Record
	byTmpl   map[uint64][]int64
	tokenIdx map[string][]int64
	bytes    int64
	// maxTime is the monotone high-watermark of appended timestamps;
	// disordered flips once any record arrives with an earlier timestamp
	// than a predecessor (multiple ingest queues interleave wall-clock
	// reads non-monotonically), disabling the binary-search fast path of
	// CountSince, whose sort.Search contract needs ordered times.
	// minTime is the matching low-watermark; together they let
	// time-range queries take the index fast path when the range covers
	// everything the topic holds, and return nothing when it overlaps
	// none of it.
	minTime    int64
	maxTime    int64
	disordered bool
	// tokScratch is the reusable token buffer of the append path (under
	// mu): indexing a record's search tokens no longer allocates a fields
	// slice per line.
	tokScratch []string
}

// NewTopic creates an empty topic.
func NewTopic(name string) *Topic {
	return &Topic{
		name:     name,
		byTmpl:   make(map[uint64][]int64),
		tokenIdx: make(map[string][]int64),
	}
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Append stores a record, assigns its offset, and indexes it. It returns
// the assigned offset.
func (t *Topic) Append(ts time.Time, raw string, templateID uint64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendLocked(ts, raw, templateID)
}

// AppendBatch stores a batch of records under one lock acquisition, all
// stamped with the same timestamp, and returns the offset assigned to the
// first record. The batch is indexed exactly as the equivalent sequence
// of Append calls would be. An empty batch is a no-op returning 0.
func (t *Topic) AppendBatch(ts time.Time, recs []BatchRecord) int64 {
	if len(recs) == 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	first := int64(len(t.records))
	for _, r := range recs {
		t.appendLocked(ts, r.Raw, r.TemplateID)
	}
	return first
}

// appendLocked stores and indexes one record; callers hold mu.
func (t *Topic) appendLocked(ts time.Time, raw string, templateID uint64) int64 {
	off := int64(len(t.records))
	ns := ts.UnixNano()
	if off == 0 || ns > t.maxTime {
		t.maxTime = ns
	} else if ns < t.maxTime {
		t.disordered = true
	}
	if off == 0 || ns < t.minTime {
		t.minTime = ns
	}
	t.records = append(t.records, Record{Offset: off, Time: ts, Raw: raw, TemplateID: templateID})
	t.byTmpl[templateID] = append(t.byTmpl[templateID], off)
	// The token index shares segment.Tokenize with the sealed-segment
	// bloom filters: hot and sealed search must agree on what a token is,
	// or results would change when a block seals.
	t.tokScratch = segment.TokenizeAppend(t.tokScratch[:0], raw)
	for _, tok := range t.tokScratch {
		if len(t.tokenIdx[tok]) == 0 || t.tokenIdx[tok][len(t.tokenIdx[tok])-1] != off {
			t.tokenIdx[tok] = append(t.tokenIdx[tok], off)
		}
	}
	t.bytes += int64(len(raw))
	return off
}

// Len returns the record count.
func (t *Topic) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.records)
}

// Bytes returns the total raw payload size.
func (t *Topic) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Get returns the record at offset.
func (t *Topic) Get(offset int64) (Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if offset < 0 || offset >= int64(len(t.records)) {
		return Record{}, fmt.Errorf("logstore: offset %d out of range [0,%d)", offset, len(t.records))
	}
	return t.records[offset], nil
}

// GetBatch returns the records at offsets, in input order, under one
// lock acquisition — the offset-dense sample-fetch path (query rows
// carry a handful of example offsets each).
func (t *Topic) GetBatch(offsets []int64) ([]Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Record, 0, len(offsets))
	for _, off := range offsets {
		if off < 0 || off >= int64(len(t.records)) {
			return nil, fmt.Errorf("logstore: offset %d out of range [0,%d)", off, len(t.records))
		}
		out = append(out, t.records[off])
	}
	return out, nil
}

// rangeDisposition classifies a time range against the topic's
// watermarks: every record matches (index fast paths stay valid), none
// does, or a per-record filter is needed. Callers hold mu.
type rangeDisposition int

const (
	rangeAll rangeDisposition = iota
	rangeNone
	rangeFilter
)

func (t *Topic) disposeLocked(tr TimeRange) rangeDisposition {
	if len(t.records) == 0 || tr.Empty() {
		return rangeNone
	}
	if tr.IsZero() || tr.Covers(time.Unix(0, t.minTime), time.Unix(0, t.maxTime)) {
		return rangeAll
	}
	if !tr.Overlaps(time.Unix(0, t.minTime), time.Unix(0, t.maxTime)) {
		return rangeNone
	}
	return rangeFilter
}

// Scan calls fn for every record in [from, to) offsets whose timestamp
// lies in tr, until fn returns false. A negative to means "until the
// end"; the zero TimeRange visits every record.
func (t *Topic) Scan(from, to int64, tr TimeRange, fn func(Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if to < 0 || to > int64(len(t.records)) {
		to = int64(len(t.records))
	}
	if from >= to {
		return
	}
	switch t.disposeLocked(tr) {
	case rangeNone:
		return
	case rangeAll:
		for _, r := range t.records[from:to] {
			if !fn(r) {
				return
			}
		}
	default:
		for _, r := range t.records[from:to] {
			if !tr.Contains(r.Time) {
				continue
			}
			if !fn(r) {
				return
			}
		}
	}
}

// ByTemplate returns the offsets of records matched to any of ids, in
// ascending order.
func (t *Topic) ByTemplate(ids ...uint64) []int64 {
	return t.ByTemplateRange(TimeRange{}, ids...)
}

// ByTemplateRange is ByTemplate bounded to records whose timestamp lies
// in tr; the zero range takes the index fast path.
func (t *Topic) ByTemplateRange(tr TimeRange, ids ...uint64) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	disp := t.disposeLocked(tr)
	if disp == rangeNone && !tr.IsZero() {
		return nil
	}
	var out []int64
	for _, id := range ids {
		if disp == rangeFilter {
			for _, off := range t.byTmpl[id] {
				if tr.Contains(t.records[off].Time) {
					out = append(out, off)
				}
			}
		} else {
			out = append(out, t.byTmpl[id]...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TemplateCounts returns the record count per template ID for records in
// tr (the zero range counts everything, straight from the index; a
// partial range filters linearly).
func (t *Topic) TemplateCounts(tr TimeRange) map[uint64]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	switch t.disposeLocked(tr) {
	case rangeNone:
		return map[uint64]int{}
	case rangeAll:
		out := make(map[uint64]int, len(t.byTmpl))
		for id, offs := range t.byTmpl {
			out[id] = len(offs)
		}
		return out
	}
	out := make(map[uint64]int)
	for i := range t.records {
		if tr.Contains(t.records[i].Time) {
			out[t.records[i].TemplateID]++
		}
	}
	return out
}

// TemplateGroup aggregates one template's records for grouped queries:
// the record count plus a few example offsets, everything the query layer
// needs to build a result row without scanning record payloads.
type TemplateGroup struct {
	// Count is the number of records carrying the template ID.
	Count int
	// Samples holds up to the requested number of example record
	// offsets, ascending.
	Samples []int64
}

// GroupedCounts returns every template's record count plus up to
// maxSamples example offsets for records in tr — straight from the
// template index when the range covers the whole topic, via a linear
// filter otherwise (the hot block is small; sealed history answers from
// segment metadata instead).
func (t *Topic) GroupedCounts(maxSamples int, tr TimeRange) map[uint64]TemplateGroup {
	t.mu.RLock()
	defer t.mu.RUnlock()
	switch t.disposeLocked(tr) {
	case rangeNone:
		return map[uint64]TemplateGroup{}
	case rangeAll:
		out := make(map[uint64]TemplateGroup, len(t.byTmpl))
		for id, offs := range t.byTmpl {
			g := TemplateGroup{Count: len(offs)}
			n := maxSamples
			if n > len(offs) {
				n = len(offs)
			}
			if n > 0 {
				g.Samples = append([]int64(nil), offs[:n]...)
			}
			out[id] = g
		}
		return out
	}
	out := make(map[uint64]TemplateGroup)
	for i := range t.records {
		r := &t.records[i]
		if !tr.Contains(r.Time) {
			continue
		}
		g := out[r.TemplateID]
		g.Count++
		if len(g.Samples) < maxSamples {
			g.Samples = append(g.Samples, r.Offset)
		}
		out[r.TemplateID] = g
	}
	return out
}

// Search returns the offsets of records containing token (exact
// whitespace-delimited match), ascending.
func (t *Topic) Search(token string) []int64 {
	return t.SearchRange(token, TimeRange{})
}

// SearchRange is Search bounded to records whose timestamp lies in tr;
// the zero range copies the token index entry straight out.
func (t *Topic) SearchRange(token string, tr TimeRange) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	offs := t.tokenIdx[token]
	switch t.disposeLocked(tr) {
	case rangeNone:
		if !tr.IsZero() {
			return []int64{}
		}
	case rangeFilter:
		out := make([]int64, 0, len(offs))
		for _, off := range offs {
			if tr.Contains(t.records[off].Time) {
				out = append(out, off)
			}
		}
		return out
	}
	out := make([]int64, len(offs))
	copy(out, offs)
	return out
}

// CountSince returns how many records arrived at or after cut.
func (t *Topic) CountSince(cut time.Time) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.records) == 0 || time.Unix(0, t.maxTime).Before(cut) {
		return 0
	}
	if t.disordered {
		// Concurrent ingest queues interleaved timestamps out of order;
		// a binary search over Time would return an arbitrary boundary,
		// so count linearly.
		n := 0
		for i := range t.records {
			if !t.records[i].Time.Before(cut) {
				n++
			}
		}
		return n
	}
	// Times are monotone so far; binary search the boundary.
	i := sort.Search(len(t.records), func(i int) bool {
		return !t.records[i].Time.Before(cut)
	})
	return len(t.records) - i
}

// ErrNoSnapshot is returned by LatestSnapshot on an empty internal topic.
var ErrNoSnapshot = errors.New("logstore: no model snapshot")

// Retention bounds how many model snapshots the internal topic keeps.
// The zero value retains everything (the historical behavior); with
// Latest set, only the newest Latest snapshots survive each append, plus
// — when CheckpointEvery > 0 — every CheckpointEvery-th snapshot by
// write index as a sparse history of periodic checkpoints. Storage after
// n training cycles is therefore O(Latest + n/CheckpointEvery) instead
// of O(n).
type Retention struct {
	// Latest is how many of the newest snapshots to keep; 0 keeps all.
	Latest int
	// CheckpointEvery additionally keeps snapshots whose write index is
	// a multiple of it; 0 keeps none beyond Latest.
	CheckpointEvery int
}

// keep reports whether the snapshot at write index idx survives pruning
// when nextIdx is the index the next snapshot will get.
func (r Retention) keep(idx, nextIdx int) bool {
	if r.Latest <= 0 || idx >= nextIdx-r.Latest {
		return true
	}
	return r.CheckpointEvery > 0 && idx%r.CheckpointEvery == 0
}

// SnapshotStore persists model snapshots — the "internal topic" of §3.
// Internal keeps them in memory; DiskInternal on disk.
type SnapshotStore interface {
	// AppendSnapshot stores one serialized model.
	AppendSnapshot(ts time.Time, data []byte) error
	// LatestSnapshot returns the newest snapshot bytes.
	LatestSnapshot() ([]byte, error)
	// Snapshots returns the retained snapshot count.
	Snapshots() int
	// SetRetention installs a pruning policy and applies it immediately.
	SetRetention(r Retention)
	// QuarantineLatest retires the newest snapshot so LatestSnapshot
	// falls back to the previous checkpoint. Recovery calls it when the
	// newest snapshot fails to unmarshal (a torn or corrupt checkpoint),
	// so reopening never fails unrecoverably on bad snapshot bytes.
	// Returns ErrNoSnapshot when none is retained.
	QuarantineLatest() error
}

var (
	_ SnapshotStore = (*Internal)(nil)
	_ SnapshotStore = (*DiskInternal)(nil)
)

// Internal is the in-memory internal topic holding model snapshots (§3:
// node metadata lives "in an internal topic", avoiding external
// databases).
type Internal struct {
	mu        sync.RWMutex
	snapshots [][]byte
	times     []time.Time
	idxs      []int // write index of each retained snapshot, ascending
	next      int   // write index the next snapshot gets
	retain    Retention
}

// NewInternal creates an empty internal topic.
func NewInternal() *Internal { return &Internal{} }

// SetRetention implements SnapshotStore.
func (in *Internal) SetRetention(r Retention) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.retain = r
	in.pruneLocked()
}

func (in *Internal) pruneLocked() {
	kept := 0
	for i, idx := range in.idxs {
		if !in.retain.keep(idx, in.next) {
			continue
		}
		in.snapshots[kept] = in.snapshots[i]
		in.times[kept] = in.times[i]
		in.idxs[kept] = idx
		kept++
	}
	for i := kept; i < len(in.snapshots); i++ {
		in.snapshots[i] = nil
	}
	in.snapshots = in.snapshots[:kept]
	in.times = in.times[:kept]
	in.idxs = in.idxs[:kept]
}

// AppendSnapshot implements SnapshotStore.
func (in *Internal) AppendSnapshot(ts time.Time, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.snapshots = append(in.snapshots, cp)
	in.times = append(in.times, ts)
	in.idxs = append(in.idxs, in.next)
	in.next++
	in.pruneLocked()
	return nil
}

// LatestSnapshot implements SnapshotStore.
func (in *Internal) LatestSnapshot() ([]byte, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if len(in.snapshots) == 0 {
		return nil, ErrNoSnapshot
	}
	last := len(in.snapshots) - 1
	cp := make([]byte, len(in.snapshots[last]))
	copy(cp, in.snapshots[last])
	return cp, nil
}

// QuarantineLatest implements SnapshotStore: it drops the newest
// in-memory snapshot.
func (in *Internal) QuarantineLatest() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.snapshots) == 0 {
		return ErrNoSnapshot
	}
	last := len(in.snapshots) - 1
	in.snapshots[last] = nil
	in.snapshots = in.snapshots[:last]
	in.times = in.times[:last]
	in.idxs = in.idxs[:last]
	return nil
}

// LatestSnapshotTime returns when the newest snapshot was stored.
func (in *Internal) LatestSnapshotTime() (time.Time, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if len(in.times) == 0 {
		return time.Time{}, ErrNoSnapshot
	}
	return in.times[len(in.times)-1], nil
}

// Snapshots implements SnapshotStore.
func (in *Internal) Snapshots() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.snapshots)
}
