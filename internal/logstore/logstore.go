// Package logstore implements the append-only topic storage substrate of
// the paper's log service (§3): a log topic is the unit where records are
// indexed, stored, and made available for analysis. Records carry the
// template ID computed at ingestion (template IDs "must be computed along
// with other traditional text indices before logs can be written to the
// append-only log topic storage"), and an internal topic persists model
// snapshots as ordinary records.
package logstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one stored log entry.
type Record struct {
	// Offset is the dense, zero-based position in the topic.
	Offset int64
	// Time is the ingestion timestamp.
	Time time.Time
	// Raw is the original log line.
	Raw string
	// TemplateID is the most precise template matched at ingestion.
	TemplateID uint64
}

// Topic is an append-only record log with a template index and a token
// index. All methods are safe for concurrent use.
type Topic struct {
	name string

	mu       sync.RWMutex
	records  []Record
	byTmpl   map[uint64][]int64
	tokenIdx map[string][]int64
	bytes    int64
	// maxTime is the monotone high-watermark of appended timestamps;
	// disordered flips once any record arrives with an earlier timestamp
	// than a predecessor (multiple ingest queues interleave wall-clock
	// reads non-monotonically), disabling the binary-search fast path of
	// CountSince, whose sort.Search contract needs ordered times.
	maxTime    int64
	disordered bool
}

// NewTopic creates an empty topic.
func NewTopic(name string) *Topic {
	return &Topic{
		name:     name,
		byTmpl:   make(map[uint64][]int64),
		tokenIdx: make(map[string][]int64),
	}
}

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Append stores a record, assigns its offset, and indexes it. It returns
// the assigned offset.
func (t *Topic) Append(ts time.Time, raw string, templateID uint64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	off := int64(len(t.records))
	if ns := ts.UnixNano(); off == 0 || ns > t.maxTime {
		t.maxTime = ns
	} else if ns < t.maxTime {
		t.disordered = true
	}
	t.records = append(t.records, Record{Offset: off, Time: ts, Raw: raw, TemplateID: templateID})
	t.byTmpl[templateID] = append(t.byTmpl[templateID], off)
	for _, tok := range strings.Fields(raw) {
		if len(t.tokenIdx[tok]) == 0 || t.tokenIdx[tok][len(t.tokenIdx[tok])-1] != off {
			t.tokenIdx[tok] = append(t.tokenIdx[tok], off)
		}
	}
	t.bytes += int64(len(raw))
	return off
}

// Len returns the record count.
func (t *Topic) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.records)
}

// Bytes returns the total raw payload size.
func (t *Topic) Bytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.bytes
}

// Get returns the record at offset.
func (t *Topic) Get(offset int64) (Record, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if offset < 0 || offset >= int64(len(t.records)) {
		return Record{}, fmt.Errorf("logstore: offset %d out of range [0,%d)", offset, len(t.records))
	}
	return t.records[offset], nil
}

// Scan calls fn for every record in [from, to) offsets until fn returns
// false. A negative to means "until the end".
func (t *Topic) Scan(from, to int64, fn func(Record) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	if to < 0 || to > int64(len(t.records)) {
		to = int64(len(t.records))
	}
	for _, r := range t.records[from:to] {
		if !fn(r) {
			return
		}
	}
}

// ByTemplate returns the offsets of records matched to any of ids, in
// ascending order.
func (t *Topic) ByTemplate(ids ...uint64) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int64
	for _, id := range ids {
		out = append(out, t.byTmpl[id]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TemplateCounts returns the record count per template ID.
func (t *Topic) TemplateCounts() map[uint64]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint64]int, len(t.byTmpl))
	for id, offs := range t.byTmpl {
		out[id] = len(offs)
	}
	return out
}

// TemplateGroup aggregates one template's records for grouped queries:
// the record count plus a few example offsets, everything the query layer
// needs to build a result row without scanning record payloads.
type TemplateGroup struct {
	// Count is the number of records carrying the template ID.
	Count int
	// Samples holds up to the requested number of example record
	// offsets, ascending.
	Samples []int64
}

// GroupedCounts returns every template's record count plus up to
// maxSamples example offsets, straight from the template index.
func (t *Topic) GroupedCounts(maxSamples int) map[uint64]TemplateGroup {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint64]TemplateGroup, len(t.byTmpl))
	for id, offs := range t.byTmpl {
		g := TemplateGroup{Count: len(offs)}
		n := maxSamples
		if n > len(offs) {
			n = len(offs)
		}
		if n > 0 {
			g.Samples = append([]int64(nil), offs[:n]...)
		}
		out[id] = g
	}
	return out
}

// Search returns the offsets of records containing token (exact
// whitespace-delimited match), ascending.
func (t *Topic) Search(token string) []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	offs := t.tokenIdx[token]
	out := make([]int64, len(offs))
	copy(out, offs)
	return out
}

// CountSince returns how many records arrived at or after cut.
func (t *Topic) CountSince(cut time.Time) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.records) == 0 || time.Unix(0, t.maxTime).Before(cut) {
		return 0
	}
	if t.disordered {
		// Concurrent ingest queues interleaved timestamps out of order;
		// a binary search over Time would return an arbitrary boundary,
		// so count linearly.
		n := 0
		for i := range t.records {
			if !t.records[i].Time.Before(cut) {
				n++
			}
		}
		return n
	}
	// Times are monotone so far; binary search the boundary.
	i := sort.Search(len(t.records), func(i int) bool {
		return !t.records[i].Time.Before(cut)
	})
	return len(t.records) - i
}

// ErrNoSnapshot is returned by LatestSnapshot on an empty internal topic.
var ErrNoSnapshot = errors.New("logstore: no model snapshot")

// SnapshotStore persists model snapshots — the "internal topic" of §3.
// Internal keeps them in memory; DiskInternal on disk.
type SnapshotStore interface {
	// AppendSnapshot stores one serialized model.
	AppendSnapshot(ts time.Time, data []byte) error
	// LatestSnapshot returns the newest snapshot bytes.
	LatestSnapshot() ([]byte, error)
	// Snapshots returns the stored snapshot count.
	Snapshots() int
}

var (
	_ SnapshotStore = (*Internal)(nil)
	_ SnapshotStore = (*DiskInternal)(nil)
)

// Internal is the in-memory internal topic holding model snapshots (§3:
// node metadata lives "in an internal topic", avoiding external
// databases).
type Internal struct {
	mu        sync.RWMutex
	snapshots [][]byte
	times     []time.Time
}

// NewInternal creates an empty internal topic.
func NewInternal() *Internal { return &Internal{} }

// AppendSnapshot implements SnapshotStore.
func (in *Internal) AppendSnapshot(ts time.Time, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	in.mu.Lock()
	defer in.mu.Unlock()
	in.snapshots = append(in.snapshots, cp)
	in.times = append(in.times, ts)
	return nil
}

// LatestSnapshot implements SnapshotStore.
func (in *Internal) LatestSnapshot() ([]byte, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if len(in.snapshots) == 0 {
		return nil, ErrNoSnapshot
	}
	last := len(in.snapshots) - 1
	cp := make([]byte, len(in.snapshots[last]))
	copy(cp, in.snapshots[last])
	return cp, nil
}

// LatestSnapshotTime returns when the newest snapshot was stored.
func (in *Internal) LatestSnapshotTime() (time.Time, error) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if len(in.times) == 0 {
		return time.Time{}, ErrNoSnapshot
	}
	return in.times[len(in.times)-1], nil
}

// Snapshots implements SnapshotStore.
func (in *Internal) Snapshots() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.snapshots)
}
