package logstore

import (
	"sync"
	"testing"
	"time"
)

func ts(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestAppendAssignsDenseOffsets(t *testing.T) {
	tp := NewTopic("t")
	for i := 0; i < 10; i++ {
		off := tp.Append(ts(i), "line", uint64(i%3))
		if off != int64(i) {
			t.Fatalf("offset = %d, want %d", off, i)
		}
	}
	if tp.Len() != 10 {
		t.Errorf("Len = %d", tp.Len())
	}
}

func TestGetAndScan(t *testing.T) {
	tp := NewTopic("t")
	tp.Append(ts(1), "alpha beta", 1)
	tp.Append(ts(2), "gamma delta", 2)
	r, err := tp.Get(1)
	if err != nil || r.Raw != "gamma delta" || r.TemplateID != 2 {
		t.Fatalf("Get(1) = %+v, %v", r, err)
	}
	if _, err := tp.Get(5); err == nil {
		t.Error("Get out of range did not error")
	}
	if _, err := tp.Get(-1); err == nil {
		t.Error("Get(-1) did not error")
	}
	var seen []string
	tp.Scan(0, -1, TimeRange{}, func(r Record) bool {
		seen = append(seen, r.Raw)
		return true
	})
	if len(seen) != 2 {
		t.Errorf("scan saw %d records", len(seen))
	}
	// Early stop.
	n := 0
	tp.Scan(0, -1, TimeRange{}, func(Record) bool { n++; return false })
	if n != 1 {
		t.Errorf("scan did not stop early: %d", n)
	}
}

func TestByTemplateAndCounts(t *testing.T) {
	tp := NewTopic("t")
	tp.Append(ts(1), "a", 7)
	tp.Append(ts(2), "b", 9)
	tp.Append(ts(3), "c", 7)
	offs := tp.ByTemplate(7)
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 2 {
		t.Errorf("ByTemplate(7) = %v", offs)
	}
	both := tp.ByTemplate(7, 9)
	if len(both) != 3 {
		t.Errorf("ByTemplate(7,9) = %v", both)
	}
	counts := tp.TemplateCounts(TimeRange{})
	if counts[7] != 2 || counts[9] != 1 {
		t.Errorf("TemplateCounts = %v", counts)
	}
}

func TestSearchTokenIndex(t *testing.T) {
	tp := NewTopic("t")
	tp.Append(ts(1), "error on disk sda", 1)
	tp.Append(ts(2), "ok on disk sdb", 1)
	tp.Append(ts(3), "error again", 2)
	offs := tp.Search("error")
	if len(offs) != 2 || offs[0] != 0 || offs[1] != 2 {
		t.Errorf("Search(error) = %v", offs)
	}
	if got := tp.Search("absent"); len(got) != 0 {
		t.Errorf("Search(absent) = %v", got)
	}
}

func TestCountSince(t *testing.T) {
	tp := NewTopic("t")
	for i := 0; i < 10; i++ {
		tp.Append(ts(i), "x", 0)
	}
	if got := tp.CountSince(ts(7)); got != 3 {
		t.Errorf("CountSince = %d, want 3", got)
	}
	if got := tp.CountSince(ts(100)); got != 0 {
		t.Errorf("CountSince(future) = %d", got)
	}
	if got := tp.CountSince(ts(0)); got != 10 {
		t.Errorf("CountSince(epoch) = %d", got)
	}
}

// TestCountSinceOutOfOrder is the satellite-bug regression: interleaved
// ingest queues append non-monotonic timestamps, and a binary search over
// them returns an arbitrary boundary. The count must match the linear
// truth regardless of arrival order.
func TestCountSinceOutOfOrder(t *testing.T) {
	tp := NewTopic("t")
	// 0, 5, 1, 6, 2, 7, ... — two queues interleaving their clocks.
	secs := []int{0, 5, 1, 6, 2, 7, 3, 8, 4, 9}
	for _, s := range secs {
		tp.Append(ts(s), "x", 0)
	}
	for _, cut := range []int{0, 3, 5, 8, 9, 10} {
		want := 0
		for _, s := range secs {
			if s >= cut {
				want++
			}
		}
		if got := tp.CountSince(ts(cut)); got != want {
			t.Errorf("CountSince(%d) = %d, want %d", cut, got, want)
		}
	}
}

// TestCountSinceConcurrentIngest drives appends from several goroutines
// whose timestamps deliberately interleave, then checks CountSince
// against a full scan — under -race this also covers the watermark
// bookkeeping.
func TestCountSinceConcurrentIngest(t *testing.T) {
	tp := NewTopic("t")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tp.Append(ts(g*1000+i), "line", 0)
			}
		}(g)
	}
	wg.Wait()
	cut := ts(2000)
	want := 0
	tp.Scan(0, -1, TimeRange{}, func(r Record) bool {
		if !r.Time.Before(cut) {
			want++
		}
		return true
	})
	if want != 500 {
		t.Fatalf("setup: scan counted %d, want 500", want)
	}
	if got := tp.CountSince(cut); got != want {
		t.Fatalf("CountSince = %d, want %d", got, want)
	}
	if got := tp.CountSince(ts(4000)); got != 0 {
		t.Fatalf("CountSince(beyond watermark) = %d, want 0", got)
	}
}

func TestBytesTracked(t *testing.T) {
	tp := NewTopic("t")
	tp.Append(ts(1), "12345", 0)
	tp.Append(ts(2), "123", 0)
	if tp.Bytes() != 8 {
		t.Errorf("Bytes = %d, want 8", tp.Bytes())
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	tp := NewTopic("t")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tp.Append(time.Now(), "concurrent line", uint64(i%5))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tp.Len()
				tp.TemplateCounts(TimeRange{})
				tp.Search("concurrent")
			}
		}()
	}
	wg.Wait()
	if tp.Len() != 800 {
		t.Errorf("Len = %d, want 800", tp.Len())
	}
	// Offsets dense and ordered.
	last := int64(-1)
	tp.Scan(0, -1, TimeRange{}, func(r Record) bool {
		if r.Offset != last+1 {
			t.Fatalf("offset gap: %d after %d", r.Offset, last)
		}
		last = r.Offset
		return true
	})
}

func TestInternalSnapshots(t *testing.T) {
	in := NewInternal()
	if _, err := in.LatestSnapshot(); err != ErrNoSnapshot {
		t.Fatalf("LatestSnapshot on empty = %v", err)
	}
	if _, err := in.LatestSnapshotTime(); err != ErrNoSnapshot {
		t.Fatalf("LatestSnapshotTime on empty = %v", err)
	}
	_ = in.AppendSnapshot(ts(1), []byte("v1"))
	_ = in.AppendSnapshot(ts(2), []byte("v2"))
	data, err := in.LatestSnapshot()
	if err != nil || string(data) != "v2" {
		t.Fatalf("LatestSnapshot = %q %v", data, err)
	}
	if at, err := in.LatestSnapshotTime(); err != nil || !at.Equal(ts(2)) {
		t.Fatalf("LatestSnapshotTime = %v %v", at, err)
	}
	if in.Snapshots() != 2 {
		t.Errorf("Snapshots = %d", in.Snapshots())
	}
	// Stored bytes are isolated from caller mutation.
	buf := []byte("v3")
	_ = in.AppendSnapshot(ts(3), buf)
	buf[0] = 'X'
	data, _ = in.LatestSnapshot()
	if string(data) != "v3" {
		t.Errorf("snapshot aliased caller buffer: %q", data)
	}
}
