package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bytebrain/internal/segment"
)

// fillCompacting appends n records shaped like real parsed logs across 3
// templates.
func fillCompacting(t *testing.T, s *CompactingStore, n, start int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		raw := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
		tmpl := uint64(1 + i%3)
		off, err := s.Append(ts(i), raw, tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}
}

func TestCompactingStoreRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "memory"
		if dir != "" {
			name = "disk"
		}
		t.Run(name, func(t *testing.T) {
			s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			fillCompacting(t, s, 500, 0)
			s.WaitIdle()
			if err := s.SealError(); err != nil {
				t.Fatal(err)
			}
			st := s.SegmentStats()
			if st.Segments == 0 {
				t.Fatal("no segments sealed")
			}
			if st.SealedRecords+st.HotRecords != 500 {
				t.Fatalf("sealed %d + hot %d != 500", st.SealedRecords, st.HotRecords)
			}
			if st.CompressedBytes >= st.RawBytes {
				t.Fatalf("no compression: %d >= %d", st.CompressedBytes, st.RawBytes)
			}
			if s.Len() != 500 {
				t.Fatalf("Len = %d", s.Len())
			}

			// Every record readable across the sealed/hot boundary.
			for _, i := range []int64{0, 1, 250, 498, 499} {
				r, err := s.Get(i)
				if err != nil {
					t.Fatalf("Get(%d): %v", i, err)
				}
				want := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
				if r.Raw != want || r.Offset != i || r.TemplateID != uint64(1+i%3) {
					t.Fatalf("Get(%d) = %+v", i, r)
				}
			}

			// Scan a window spanning blocks.
			var seen []int64
			s.Scan(100, 410, TimeRange{}, func(r Record) bool {
				seen = append(seen, r.Offset)
				return true
			})
			if len(seen) != 310 || seen[0] != 100 || seen[len(seen)-1] != 409 {
				t.Fatalf("Scan window: %d records, ends %d..%d", len(seen), seen[0], seen[len(seen)-1])
			}

			// Template query: exact counts and ascending offsets.
			offs := s.ByTemplate(2)
			if len(offs) != 167 {
				t.Fatalf("ByTemplate(2) = %d offsets", len(offs))
			}
			for i := 1; i < len(offs); i++ {
				if offs[i] <= offs[i-1] {
					t.Fatal("ByTemplate offsets not ascending")
				}
			}
			counts := s.TemplateCounts(TimeRange{})
			if counts[1]+counts[2]+counts[3] != 500 {
				t.Fatalf("TemplateCounts = %v", counts)
			}

			// Token search across sealed + hot.
			hits := s.Search("job-123")
			if len(hits) != 1 || hits[0] != 123 {
				t.Fatalf("Search(job-123) = %v", hits)
			}

			// Time pushdown.
			if n := s.CountSince(ts(400)); n != 100 {
				t.Fatalf("CountSince = %d, want 100", n)
			}
		})
	}
}

// TestCompactingTemplatePushdown asserts via block-read counters that
// grouped queries never decompress segments whose dictionary lacks the
// target template.
func TestCompactingTemplatePushdown(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Three sealed segments with disjoint template IDs: 10, 20, 30.
	off := 0
	for seg := 0; seg < 3; seg++ {
		tmpl := uint64(10 * (seg + 1))
		for i := 0; i < 200; i++ {
			if _, err := s.Append(ts(off), fmt.Sprintf("segment %d line %d", seg, i), tmpl); err != nil {
				t.Fatal(err)
			}
			off++
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		s.WaitIdle()
	}
	if st := s.SegmentStats(); st.Segments != 3 || st.BlockReads != 0 {
		t.Fatalf("setup: %+v", st)
	}

	offs := s.ByTemplate(20)
	if len(offs) != 200 || offs[0] != 200 {
		t.Fatalf("ByTemplate(20): %d offsets starting %d", len(offs), offs[0])
	}
	// Exactly one of three blocks decompressed.
	if st := s.SegmentStats(); st.BlockReads != 1 {
		t.Fatalf("ByTemplate read %d blocks, want 1", st.BlockReads)
	}

	// Absent template: zero additional reads.
	if offs := s.ByTemplate(77); len(offs) != 0 {
		t.Fatalf("ByTemplate(77) = %v", offs)
	}
	if st := s.SegmentStats(); st.BlockReads != 1 {
		t.Fatalf("absent-template query read blocks: %d", st.BlockReads)
	}

	// TemplateCounts is metadata-only.
	if counts := s.TemplateCounts(TimeRange{}); counts[10] != 200 || counts[30] != 200 {
		t.Fatalf("TemplateCounts = %v", counts)
	}
	if st := s.SegmentStats(); st.BlockReads != 1 {
		t.Fatalf("TemplateCounts read blocks: %d", st.BlockReads)
	}
}

func TestCompactingReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 400, 0)
	s.WaitIdle()
	segsBefore := s.SegmentStats().Segments
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 400 {
		t.Fatalf("recovered %d records, want 400", s2.Len())
	}
	// The under-threshold hot tail resumes as the live hot block; a
	// restart must not mint an undersized segment from it.
	s2.WaitIdle()
	st := s2.SegmentStats()
	if st.Segments != segsBefore {
		t.Fatalf("restart sealed the hot tail: %d segments, want %d", st.Segments, segsBefore)
	}
	if st.HotRecords == 0 {
		t.Fatal("hot tail not resumed as live block")
	}
	r, err := s2.Get(399)
	if err != nil || r.Raw != "worker 0 finished job job-399 in 12ms" {
		t.Fatalf("Get(399) = %+v, %v", r, err)
	}
	// Appends continue with dense offsets.
	off, err := s2.Append(ts(400), "after restart", 9)
	if err != nil || off != 400 {
		t.Fatalf("Append after reopen: %d, %v", off, err)
	}
}

// TestCompactingCrashRecovery simulates a crash: the store is abandoned
// without Close (only a WAL Flush), then reopened. Sealed segments and
// flushed WAL records must all survive; a torn WAL tail must be dropped
// without failing recovery.
func TestCompactingCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 300, 0)
	s.WaitIdle()
	fillCompacting(t, s, 37, 300) // stays hot, in WAL only
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Stop the compactor goroutine only so the test
	// does not leak it; on a real crash the whole process dies.
	close(s.doneCh)
	s.sealWG.Wait()

	// Simulate a torn final append: extend the newest WAL with half a
	// record header.
	wals, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no wal files: %v", err)
	}
	last := wals[len(wals)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// And a torn segment write: an orphan tmp file recovery must remove.
	orphan := filepath.Join(dir, sealedPrefix+"999999"+sealedSuffix+segment.TmpSuffix)
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 337 {
		t.Fatalf("recovered %d records, want 337", s2.Len())
	}
	for _, i := range []int64{0, 299, 300, 336} {
		r, err := s2.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		want := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
		if r.Raw != want || r.TemplateID != uint64(1+i%3) {
			t.Fatalf("Get(%d) = %+v", i, r)
		}
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphan tmp segment not removed")
	}
	// Recovered pending blocks re-seal; the under-threshold newest WAL
	// block resumes hot rather than minting an undersized segment.
	s2.WaitIdle()
	if err := s2.SealError(); err != nil {
		t.Fatal(err)
	}
	st := s2.SegmentStats()
	if st.SealedRecords+st.HotRecords != 337 || st.Segments == 0 || st.HotRecords == 0 {
		t.Fatalf("after recovery re-seal: %+v", st)
	}
	// Re-sealed blocks delete their recovered WAL files; only the new
	// (empty) hot block's WAL remains.
	wals, err = filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 1 {
		t.Fatalf("WALs left after recovery re-seal: %v", wals)
	}
	if n := s2.CountSince(ts(330)); n != 7 {
		t.Fatalf("CountSince after recovery = %d, want 7", n)
	}
}

// TestCompactingConcurrent hammers appends, queries and seals in
// parallel; run under -race this exercises the seal/query handoff.
func TestCompactingConcurrent(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 4096, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3000; i++ {
			if _, err := s.Append(ts(i), fmt.Sprintf("req %d handled path=/api/%d", i, i%50), uint64(1+i%5)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		s.ByTemplate(3)
		s.TemplateCounts(TimeRange{})
		s.Search("handled")
		s.Len()
		s.Bytes()
		select {
		case <-done:
			s.WaitIdle()
			if s.Len() != 3000 {
				t.Fatalf("Len = %d, want 3000", s.Len())
			}
			if got := len(s.ByTemplate(2)); got != 600 {
				t.Fatalf("ByTemplate(2) = %d, want 600", got)
			}
			return
		default:
		}
	}
}

// TestCompactingBadSegmentFallsBackToWAL: a crash can leave a corrupt
// sealed segment next to its not-yet-deleted WAL; recovery must prefer
// the WAL over failing (and must not delete it first).
func TestCompactingBadSegmentFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 100, 0)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(s.doneCh) // crash
	s.sealWG.Wait()
	// The crash "happened" after the segment file was renamed but it
	// was torn at the device level: fabricate a corrupt seg-000000.
	if err := os.WriteFile(filepath.Join(dir, sealedPrefix+"000000"+sealedSuffix), []byte("BBSGcorrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 100 {
		t.Fatalf("recovered %d records, want 100 from WAL", s2.Len())
	}
	if r, err := s2.Get(42); err != nil || r.Raw != "worker 0 finished job job-42 in 12ms" {
		t.Fatalf("Get(42) = %+v, %v", r, err)
	}
	if _, err := os.Stat(filepath.Join(dir, sealedPrefix+"000000"+sealedSuffix+".bad")); err != nil {
		t.Fatalf("corrupt segment not moved aside: %v", err)
	}
}

// TestStoreFormatMismatchRefused: pointing one store format at the
// other's directory must fail loudly instead of hiding records.
func TestStoreFormatMismatchRefused(t *testing.T) {
	// Plain disk topic dir opened as compacting store.
	diskDir := t.TempDir()
	dt, err := OpenDiskTopic(diskDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Append(ts(0), "a record", 1); err != nil {
		t.Fatal(err)
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompacting("t", CompactConfig{Dir: diskDir}); err == nil {
		t.Fatal("OpenCompacting on a DiskTopic dir must refuse")
	}

	// Compacting dir opened as plain disk topic.
	segDir := t.TempDir()
	cs, err := OpenCompacting("t", CompactConfig{Dir: segDir, SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, cs, 10, 0)
	if err := cs.Seal(); err != nil {
		t.Fatal(err)
	}
	cs.WaitIdle()
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskTopic(segDir); err == nil {
		t.Fatal("OpenDiskTopic on a compacting dir must refuse")
	}
}

func TestCompactingAppendAfterClose(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(time.Now(), "x", 1); err == nil {
		t.Fatal("Append after Close should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

func TestCompactingGroupedCounts(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Two sealed segments plus a hot tail, all sharing templates 1..3.
	fillCompacting(t, s, 300, 0)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	fillCompacting(t, s, 300, 300)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	fillCompacting(t, s, 90, 600)
	if st := s.SegmentStats(); st.Segments != 2 || st.BlockReads != 0 {
		t.Fatalf("setup: %+v", st)
	}

	groups := s.GroupedCounts(5, TimeRange{})
	if len(groups) != 3 {
		t.Fatalf("GroupedCounts = %d templates, want 3", len(groups))
	}
	total := 0
	for id, g := range groups {
		total += g.Count
		if g.Count != 230 { // 690 records over 3 round-robin templates
			t.Errorf("template %d count %d, want 230", id, g.Count)
		}
		if len(g.Samples) != 5 {
			t.Errorf("template %d has %d samples, want 5", id, len(g.Samples))
		}
		for i := 1; i < len(g.Samples); i++ {
			if g.Samples[i] <= g.Samples[i-1] {
				t.Errorf("template %d samples not ascending: %v", id, g.Samples)
			}
		}
	}
	if total != 690 {
		t.Fatalf("grouped counts cover %d records, want 690", total)
	}
	// fillCompacting assigns template 1+i%3, so template 1's earliest
	// records sit at offsets 0, 3, 6, ... — all inside the first sealed
	// segment, proving sealed-metadata samples surface ahead of hot ones.
	if g := groups[1]; len(g.Samples) > 0 && g.Samples[0] != 0 {
		t.Errorf("template 1 first sample %d, want 0", g.Samples[0])
	}

	// The whole grouped query ran off metadata: nothing was decompressed.
	if st := s.SegmentStats(); st.BlockReads != 0 {
		t.Fatalf("GroupedCounts paid %d block reads, want 0", st.BlockReads)
	}

	// Agreement with the scan-side truth.
	counts := s.TemplateCounts(TimeRange{})
	for id, g := range groups {
		if counts[id] != g.Count {
			t.Errorf("template %d grouped count %d != TemplateCounts %d", id, g.Count, counts[id])
		}
	}
}
