package logstore

import (
	"time"

	"bytebrain/internal/fsx"
	"bytebrain/internal/obs"
)

// StoreOptions carries cross-cutting store tuning that every store kind
// accepts: the metrics handle bundle, the WAL fsync policy, the
// filesystem seam, and the seal retry/degraded-mode policy. The zero
// value is fully functional (no metrics, real filesystem, fsync only on
// seal/Flush/Close — the historical behavior).
type StoreOptions struct {
	// Metrics receives the store's counters; nil means no instrumentation
	// (every instrument method on a nil handle or field is a no-op).
	Metrics *Metrics
	// FsyncEveryBatches, when > 0, fsyncs the hot WAL after every N
	// append/batch commits, bounding the unsynced window by work done.
	FsyncEveryBatches int
	// FsyncInterval, when > 0, runs a background flush loop syncing the
	// hot WAL every interval when appends happened since the last sync,
	// bounding the unsynced window by wall clock.
	FsyncInterval time.Duration
	// FS is the filesystem every store write goes through; nil means the
	// real filesystem (fsx.OS()). Tests swap in an fsx.FaultFS.
	FS fsx.FS
	// SealRetryBase is the first backoff after a failed seal attempt
	// (doubling up to SealRetryMax); ≤ 0 means 50ms.
	SealRetryBase time.Duration
	// SealRetryMax caps the seal retry backoff; ≤ 0 means 2s.
	SealRetryMax time.Duration
	// SealMaxRetries is how many times a failing seal is retried before
	// the store degrades to read-only; ≤ 0 means 4, < 0 via -1 means 0.
	SealMaxRetries int
	// ProbeInterval is how often a degraded store re-probes the disk to
	// re-arm writes; ≤ 0 means 2s.
	ProbeInterval time.Duration
}

// withMetrics defaults Metrics so store internals never nil-check the
// bundle itself (individual instruments stay nil-safe no-ops), and
// fills the filesystem and degraded-mode policy defaults.
func (o StoreOptions) withMetrics() StoreOptions {
	if o.Metrics == nil {
		o.Metrics = &Metrics{}
	}
	o.FS = fsx.OrOS(o.FS)
	if o.SealRetryBase <= 0 {
		o.SealRetryBase = 50 * time.Millisecond
	}
	if o.SealRetryMax <= 0 {
		o.SealRetryMax = 2 * time.Second
	}
	if o.SealMaxRetries == 0 {
		o.SealMaxRetries = 4
	} else if o.SealMaxRetries < 0 {
		o.SealMaxRetries = 0
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	return o
}

// Metrics is the instrument bundle the logstore layer observes into. The
// service layer (or any embedder) resolves the instruments against its
// registry and hands the bundle in via StoreOptions; any nil field simply
// records nothing. One bundle instruments one topic's store tree — the
// sharded fan-out shares its parent's bundle, with per-shard resolution
// only for ShardAppends.
type Metrics struct {
	// WAL write path.
	WALAppendRecords   *obs.Counter   // records fully written to a WAL
	WALAppendBytes     *obs.Counter   // bytes those records occupy (header+payload)
	WALFsyncs          *obs.Counter   // successful fsyncs
	WALFsyncErrors     *obs.Counter   // failed flush/fsync attempts
	WALFsyncSeconds    *obs.Histogram // fsync latency
	WALPoisonRotations *obs.Counter   // blocks retired after a WAL write failure

	// Recovery (open-time) path.
	RecoveredSegments *obs.Counter // sealed segments loaded by metadata
	RecoveredRecords  *obs.Counter // records replayed from surviving WALs
	WALTornTails      *obs.Counter // WALs truncated at a torn record

	// Compaction.
	BatchRecords   *obs.Histogram // AppendBatch size distribution
	Seals          *obs.Counter   // blocks sealed into segments
	SealSeconds    *obs.Histogram // seal (encode+write) latency
	SealRetries    *obs.Counter   // failed seal attempts that were retried
	DegradedEnters *obs.Counter   // transitions into degraded read-only mode

	// Query pushdown: every sealed-block visit on a query path either
	// decodes the payload (the segment's own BlockReads counter) or is
	// answered from metadata alone — counted here.
	BlocksPruned *obs.Counter

	// ShardAppends[i] counts records appended to shard i; sized by
	// OpenSharded's caller. Out-of-range shards record nothing.
	ShardAppends []*obs.Counter
}

// shardAppend records n records landing on one shard.
func (m *Metrics) shardAppend(shard int, n int64) {
	if m == nil || shard < 0 || shard >= len(m.ShardAppends) {
		return
	}
	m.ShardAppends[shard].Add(n)
}
