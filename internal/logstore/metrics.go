package logstore

import (
	"time"

	"bytebrain/internal/obs"
)

// StoreOptions carries cross-cutting store tuning that every store kind
// accepts: the metrics handle bundle and the WAL fsync policy. The zero
// value is fully functional (no metrics, fsync only on seal/Flush/Close —
// the historical behavior).
type StoreOptions struct {
	// Metrics receives the store's counters; nil means no instrumentation
	// (every instrument method on a nil handle or field is a no-op).
	Metrics *Metrics
	// FsyncEveryBatches, when > 0, fsyncs the hot WAL after every N
	// append/batch commits, bounding the unsynced window by work done.
	FsyncEveryBatches int
	// FsyncInterval, when > 0, runs a background flush loop syncing the
	// hot WAL every interval when appends happened since the last sync,
	// bounding the unsynced window by wall clock.
	FsyncInterval time.Duration
}

// withMetrics defaults Metrics so store internals never nil-check the
// bundle itself (individual instruments stay nil-safe no-ops).
func (o StoreOptions) withMetrics() StoreOptions {
	if o.Metrics == nil {
		o.Metrics = &Metrics{}
	}
	return o
}

// Metrics is the instrument bundle the logstore layer observes into. The
// service layer (or any embedder) resolves the instruments against its
// registry and hands the bundle in via StoreOptions; any nil field simply
// records nothing. One bundle instruments one topic's store tree — the
// sharded fan-out shares its parent's bundle, with per-shard resolution
// only for ShardAppends.
type Metrics struct {
	// WAL write path.
	WALAppendRecords   *obs.Counter   // records fully written to a WAL
	WALAppendBytes     *obs.Counter   // bytes those records occupy (header+payload)
	WALFsyncs          *obs.Counter   // successful fsyncs
	WALFsyncErrors     *obs.Counter   // failed flush/fsync attempts
	WALFsyncSeconds    *obs.Histogram // fsync latency
	WALPoisonRotations *obs.Counter   // blocks retired after a WAL write failure

	// Recovery (open-time) path.
	RecoveredSegments *obs.Counter // sealed segments loaded by metadata
	RecoveredRecords  *obs.Counter // records replayed from surviving WALs
	WALTornTails      *obs.Counter // WALs truncated at a torn record

	// Compaction.
	BatchRecords *obs.Histogram // AppendBatch size distribution
	Seals        *obs.Counter   // blocks sealed into segments
	SealSeconds  *obs.Histogram // seal (encode+write) latency

	// Query pushdown: every sealed-block visit on a query path either
	// decodes the payload (the segment's own BlockReads counter) or is
	// answered from metadata alone — counted here.
	BlocksPruned *obs.Counter

	// ShardAppends[i] counts records appended to shard i; sized by
	// OpenSharded's caller. Out-of-range shards record nothing.
	ShardAppends []*obs.Counter
}

// shardAppend records n records landing on one shard.
func (m *Metrics) shardAppend(shard int, n int64) {
	if m == nil || shard < 0 || shard >= len(m.ShardAppends) {
		return
	}
	m.ShardAppends[shard].Add(n)
}
