package logstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bytebrain/internal/fsx"
	"bytebrain/internal/segment"
)

// Regression tests for fault recovery behaviors the crash matrix covers
// only probabilistically: orphaned tmp cleanup, shard-naming on open
// failure, and a degraded shard staying out of its siblings' way.

// TestFaultRecoveryRemovesOrphanTmp plants stale *.tmp leftovers — a
// torn segment seal in the store dir and a torn model checkpoint in the
// snapshot dir — and asserts both recoveries delete them instead of
// letting interrupted writes accumulate forever.
func TestFaultRecoveryRemovesOrphanTmp(t *testing.T) {
	fsys := fsx.NewFaultFS()
	st, err := OpenCompacting("t", CompactConfig{Dir: "/data", SegmentBytes: 2048, Opts: StoreOptions{FS: fsys}})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, st, 10, 0)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	internal, err := OpenDiskInternalFS(fsys, "/data/models")
	if err != nil {
		t.Fatal(err)
	}
	if err := internal.AppendSnapshot(ts(0), []byte("model")); err != nil {
		t.Fatal(err)
	}

	segOrphan := "/data/" + sealedPrefix + "999999" + sealedSuffix + segment.TmpSuffix
	snapOrphan := "/data/models/model-999999.bin" + snapshotTmpSuffix
	for _, p := range []string{segOrphan, snapOrphan} {
		if err := fsys.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st2, err := OpenCompacting("t", CompactConfig{Dir: "/data", SegmentBytes: 2048, Opts: StoreOptions{FS: fsys}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 10 {
		t.Fatalf("recovered %d records, want 10", st2.Len())
	}
	in2, err := OpenDiskInternalFS(fsys, "/data/models")
	if err != nil {
		t.Fatal(err)
	}
	if data, err := in2.LatestSnapshot(); err != nil || string(data) != "model" {
		t.Fatalf("LatestSnapshot = %q, %v", data, err)
	}
	for _, p := range []string{segOrphan, snapOrphan} {
		if _, err := fsys.Stat(p); err == nil {
			t.Errorf("orphan %s survived recovery", p)
		}
	}
}

// TestShardedOpenNamesFailingShard corrupts one shard's directory with a
// layout-conflicting file and asserts the open error names that shard —
// "open failed" without the index sends an operator hunting through N
// directories.
func TestShardedOpenNamesFailingShard(t *testing.T) {
	fsys := fsx.NewFaultFS()
	bad := shardDir("/data", 1)
	if err := fsys.MkdirAll(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	// A plain disk-topic segment inside a compacting shard dir is a
	// layout conflict the shard's own open refuses.
	if err := fsys.WriteFile(filepath.Join(bad, segmentPrefix+"000000"+segmentSuffix), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSharded("t", ShardConfig{Shards: 3, Dir: "/data", SegmentBytes: 2048, Opts: StoreOptions{FS: fsys}})
	if err == nil {
		t.Fatal("OpenSharded succeeded over a conflicting shard dir")
	}
	if !strings.Contains(err.Error(), "shard 001") {
		t.Fatalf("open error does not name the failing shard: %v", err)
	}
}

// TestDegradedShardRoutesAround fills one shard's disk and asserts the
// sharded store sheds only that shard: pinned appends to it fail with
// ErrDegraded, un-pinned appends route to the healthy sibling, queries
// keep answering over both shards' surviving records, and the store as a
// whole does not report degraded.
func TestDegradedShardRoutesAround(t *testing.T) {
	fsys := fsx.NewFaultFS()
	cfg := ShardConfig{Shards: 2, Dir: "/data", SegmentBytes: 1 << 20, Opts: StoreOptions{
		FS:                fsys,
		FsyncEveryBatches: 1,
		SealRetryBase:     time.Millisecond,
		SealRetryMax:      2 * time.Millisecond,
		SealMaxRetries:    1,
		ProbeInterval:     time.Hour,
	}}
	sh, err := OpenSharded("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	// Seed both shards while healthy.
	for i := 0; i < 4; i++ {
		if _, err := sh.AppendShard(i%2, ts(i), fmt.Sprintf("seed line %d", i), 1); err != nil {
			t.Fatal(err)
		}
	}

	// Shard 0's disk fills: every write-side op under its directory
	// fails with ENOSPC.
	shard0 := shardDir("/data", 0)
	fsys.SetHook(func(op fsx.OpInfo) error {
		if !strings.HasPrefix(op.Path, shard0) {
			return nil
		}
		switch op.Kind {
		case fsx.OpWrite, fsx.OpSync, fsx.OpCreate, fsx.OpRename, fsx.OpSyncDir, fsx.OpWriteFile:
			return fsx.ErrNoSpace
		}
		return nil
	})

	// First pinned append is admitted (the swallowed fsync poisons the
	// WAL and flips the shard to degraded); the next fails fast.
	if _, err := sh.AppendShard(0, ts(10), "tipping append", 1); err != nil {
		t.Fatalf("tipping append: %v", err)
	}
	if _, err := sh.AppendShard(0, ts(11), "pinned after degrade", 1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("pinned append to degraded shard: err = %v, want ErrDegraded", err)
	}
	if n := sh.DegradedShards(); n != 1 {
		t.Fatalf("DegradedShards = %d, want 1", n)
	}
	if deg, _ := sh.Degraded(); deg {
		t.Fatal("store reports fully degraded with a healthy shard remaining")
	}

	// Un-pinned appends must route around the sick shard.
	for i := 0; i < 6; i++ {
		off, err := sh.Append(ts(20+i), fmt.Sprintf("routed line %d", i), 1)
		if err != nil {
			t.Fatalf("un-pinned append %d: %v", i, err)
		}
		if shard := int(off >> shardShift); shard != 1 {
			t.Fatalf("un-pinned append %d landed on degraded shard %d", i, shard)
		}
	}
	if _, err := sh.AppendBatch(ts(30), []BatchRecord{{Raw: "batch a", TemplateID: 1}, {Raw: "batch b", TemplateID: 1}}); err != nil {
		t.Fatalf("un-pinned batch: %v", err)
	}

	// Queries keep answering over every shard's surviving records.
	if got := len(sh.SearchRange("seed", TimeRange{})); got != 4 {
		t.Fatalf("search over degraded store found %d seed records, want 4", got)
	}
	if got := len(sh.SearchRange("routed", TimeRange{})); got != 6 {
		t.Fatalf("search over degraded store found %d routed records, want 6", got)
	}
	stats := sh.ShardStats()
	if !stats[0].Degraded || stats[1].Degraded {
		t.Fatalf("ShardStats degraded flags = %v/%v, want true/false", stats[0].Degraded, stats[1].Degraded)
	}
	fsys.SetHook(nil)
}
