package logstore

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"bytebrain/internal/segment"
)

// batchCase builds one store layout for the AppendBatch equivalence
// suite. reopen rebuilds the store from its directory (nil for pure
// in-memory layouts, which cannot recover).
type batchCase struct {
	name   string
	open   func(t *testing.T, dir string) Store
	reopen bool
}

func batchCases() []batchCase {
	return []batchCase{
		{"topic", func(t *testing.T, dir string) Store { return NewStore("t") }, false},
		{"disk", func(t *testing.T, dir string) Store {
			s, err := OpenDiskTopic(dir)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, true},
		// Hot-only: the seal threshold is never reached.
		{"compacting-hot", func(t *testing.T, dir string) Store {
			s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, true},
		// Sealing: a tiny threshold forces rotation mid-batch.
		{"compacting-sealed", func(t *testing.T, dir string) Store {
			s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 256, Codec: segment.CodecFlate})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, true},
		{"sharded", func(t *testing.T, dir string) Store {
			s, err := OpenSharded("t", ShardConfig{Shards: 3, Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, true},
		{"sharded-compacting", func(t *testing.T, dir string) Store {
			s, err := OpenSharded("t", ShardConfig{Shards: 2, Dir: dir, SegmentBytes: 256, Codec: segment.CodecFlate})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, true},
	}
}

// batchTestRecords builds deterministic batches with varied sizes (empty,
// single, and large enough to straddle seal thresholds) and timestamps.
func batchTestRecords() ([][]BatchRecord, []time.Time) {
	sizes := []int{1, 0, 7, 64, 3, 1, 29}
	var batches [][]BatchRecord
	var times []time.Time
	n := 0
	for bi, size := range sizes {
		batch := make([]BatchRecord, size)
		for i := range batch {
			batch[i] = BatchRecord{
				Raw:        fmt.Sprintf("worker %d finished job job-%d in %dms", n%7, n, n%97),
				TemplateID: uint64(n%5 + 1),
			}
			n++
		}
		batches = append(batches, batch)
		times = append(times, ts(bi))
	}
	return batches, times
}

func collectScan(s Store) []Record {
	var out []Record
	s.Scan(0, -1, TimeRange{}, func(r Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

func diffStores(t *testing.T, label string, one, batch Store) {
	t.Helper()
	if one.Len() != batch.Len() {
		t.Fatalf("%s: Len: per-record %d, batch %d", label, one.Len(), batch.Len())
	}
	if one.Bytes() != batch.Bytes() {
		t.Fatalf("%s: Bytes: per-record %d, batch %d", label, one.Bytes(), batch.Bytes())
	}
	a, b := collectScan(one), collectScan(batch)
	if len(a) != len(b) {
		t.Fatalf("%s: Scan counts: per-record %d, batch %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: Scan record %d: per-record %+v, batch %+v", label, i, a[i], b[i])
		}
	}
	ga, gb := one.GroupedCounts(5, TimeRange{}), batch.GroupedCounts(5, TimeRange{})
	if len(ga) != len(gb) {
		t.Fatalf("%s: GroupedCounts sizes: %d vs %d", label, len(ga), len(gb))
	}
	for id, g := range ga {
		h, ok := gb[id]
		if !ok || g.Count != h.Count || len(g.Samples) != len(h.Samples) {
			t.Fatalf("%s: GroupedCounts[%d]: per-record %+v, batch %+v", label, id, g, h)
		}
		for i := range g.Samples {
			if g.Samples[i] != h.Samples[i] {
				t.Fatalf("%s: GroupedCounts[%d] sample %d: %d vs %d", label, id, i, g.Samples[i], h.Samples[i])
			}
		}
	}
	if sa, sb := one.Search("finished"), batch.Search("finished"); len(sa) != len(sb) {
		t.Fatalf("%s: Search: %d vs %d hits", label, len(sa), len(sb))
	}
}

// TestAppendBatchEquivalence is the store-equivalence satellite: for
// every store implementation, AppendBatch must produce exactly the
// offsets, scan results, grouped counts, and (for persistent layouts)
// post-recovery state that the equivalent sequence of Append calls does.
func TestAppendBatchEquivalence(t *testing.T) {
	for _, tc := range batchCases() {
		t.Run(tc.name, func(t *testing.T) {
			dirOne, dirBatch := t.TempDir(), t.TempDir()
			one := tc.open(t, dirOne)
			batch := tc.open(t, dirBatch)
			batches, times := batchTestRecords()
			for bi, recs := range batches {
				var wantFirst int64 = -1
				for _, r := range recs {
					off, err := one.Append(times[bi], r.Raw, r.TemplateID)
					if err != nil {
						t.Fatal(err)
					}
					if wantFirst < 0 {
						wantFirst = off
					}
				}
				got, err := batch.AppendBatch(times[bi], recs)
				if err != nil {
					t.Fatal(err)
				}
				if len(recs) > 0 && got != wantFirst {
					t.Fatalf("batch %d: AppendBatch first offset %d, Append loop %d", bi, got, wantFirst)
				}
			}
			if c, ok := one.(Compactor); ok {
				c.WaitIdle()
			}
			if c, ok := batch.(Compactor); ok {
				c.WaitIdle()
			}
			diffStores(t, "live", one, batch)

			if !tc.reopen {
				if err := one.Close(); err != nil {
					t.Fatal(err)
				}
				if err := batch.Close(); err != nil {
					t.Fatal(err)
				}
				return
			}
			if err := one.Close(); err != nil {
				t.Fatal(err)
			}
			if err := batch.Close(); err != nil {
				t.Fatal(err)
			}
			one = tc.open(t, dirOne)
			batch = tc.open(t, dirBatch)
			defer one.Close()
			defer batch.Close()
			diffStores(t, "recovered", one, batch)
		})
	}
}

// TestAppendBatchEmptyAndNil locks in the no-op contract: empty (or nil)
// batches admit nothing, disturb no offsets, and return (0, nil).
func TestAppendBatchEmptyAndNil(t *testing.T) {
	for _, tc := range batchCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t, t.TempDir())
			defer s.Close()
			for _, recs := range [][]BatchRecord{nil, {}} {
				off, err := s.AppendBatch(ts(0), recs)
				if err != nil || off != 0 {
					t.Fatalf("AppendBatch(empty) = (%d, %v), want (0, nil)", off, err)
				}
			}
			if s.Len() != 0 {
				t.Fatalf("empty batches admitted %d records", s.Len())
			}
			if _, err := s.AppendBatch(ts(0), []BatchRecord{{Raw: "a b", TemplateID: 1}}); err != nil {
				t.Fatal(err)
			}
			if s.Len() != 1 {
				t.Fatalf("Len = %d, want 1", s.Len())
			}
		})
	}
}

// TestShardedAppendShardBatch pins a batch to one shard and checks the
// namespaced offsets and shard routing.
func TestShardedAppendShardBatch(t *testing.T) {
	s, err := OpenSharded("t", ShardConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := []BatchRecord{
		{Raw: "a 1", TemplateID: 1},
		{Raw: "b 2", TemplateID: 2},
		{Raw: "c 3", TemplateID: 3},
	}
	first, err := s.AppendShardBatch(2, ts(0), recs)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2) << shardShift; first != want {
		t.Fatalf("first offset %d, want %d", first, want)
	}
	for i := range recs {
		r, err := s.Get(first + int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Raw != recs[i].Raw || r.TemplateID != recs[i].TemplateID {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
	if _, err := s.AppendShardBatch(4, ts(0), recs); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := s.AppendShardBatch(-1, ts(0), recs); err == nil {
		t.Fatal("negative shard accepted")
	}
}

// TestDiskAppendBatchRotatesMidBatch drives one batch across the segment
// size limit and verifies rotation happened mid-batch and every record
// survives recovery.
func TestDiskAppendBatchRotatesMidBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.maxSeg = 512 // tiny rotation threshold
	const n = 64
	recs := make([]BatchRecord, n)
	for i := range recs {
		recs[i] = BatchRecord{Raw: fmt.Sprintf("record %03d with some padding payload", i), TemplateID: uint64(i % 3)}
	}
	first, err := s.AppendBatch(ts(0), recs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first offset %d, want 0", first)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"+segmentSuffix))
	if err != nil || len(segs) < 2 {
		t.Fatalf("segment files = %v (%v); want rotation mid-batch", segs, err)
	}
	s2, err := OpenDiskTopic(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("recovered %d records, want %d", s2.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		r, err := s2.Get(i)
		if err != nil || r.Raw != recs[i].Raw {
			t.Fatalf("Get(%d) = %+v, %v", i, r, err)
		}
	}
}
