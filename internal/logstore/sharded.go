package logstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"bytebrain/internal/fsx"
	"bytebrain/internal/segment"
)

// Offset namespacing for sharded topics: a global offset packs the shard
// ID into the high bits above the shard-local dense offset, so every
// query can route by shard without a lookup table and recovery keeps
// offsets stable as long as the shard count does not change.
const (
	// shardShift is the bit position of the shard ID inside a global
	// offset: global = shard<<shardShift | local.
	shardShift = 48
	// shardLocalMask extracts the shard-local offset.
	shardLocalMask = int64(1)<<shardShift - 1
	// MaxShards bounds the shard count so shard IDs fit the bits above
	// shardShift in a non-negative int64.
	MaxShards = 1 << (63 - shardShift)

	shardDirPrefix = "shard-"
)

// ShardConfig tunes OpenSharded.
type ShardConfig struct {
	// Shards is the sub-store count, in [1, MaxShards].
	Shards int
	// Dir, when set, persists each shard under Dir/shard-<i>.
	Dir string
	// SegmentBytes > 0 backs every shard with a CompactingStore sealing
	// blocks of this raw size; otherwise shards are plain topics
	// (in-memory, or DiskTopic when Dir is set).
	SegmentBytes int64
	// Codec compresses sealed payloads (segment store only).
	Codec segment.Codec
	// Opts carries the metrics bundle and WAL fsync policy, shared by
	// every shard (their counters aggregate into one topic's totals).
	Opts StoreOptions
}

// ShardedStore fans one topic out over N sub-stores so appends scale
// with cores: each ingestion queue pins its appends to one shard
// (AppendShard) and never contends on another shard's store mutex, while
// plain Append round-robins. Offsets are namespaced shard<<48|local;
// reads route by the high bits and grouped queries merge per-shard
// results. Global offset order is shard-major (all of shard 0's offsets
// sort below shard 1's), and records from different shards interleave in
// time — callers already tolerate both, exactly as they do for multiple
// ingest queues.
type ShardedStore struct {
	name   string
	m      *Metrics // never nil; per-shard append counters
	shards []Store
	next   atomic.Uint64 // round-robin cursor for un-pinned appends
}

var _ Store = (*ShardedStore)(nil)

// OpenSharded opens a sharded store, building (and with Dir set,
// recovering) every shard. It refuses directories persisted with a
// different layout: unsharded store files in Dir, or shard directories
// at indexes the requested shard count would hide.
func OpenSharded(name string, cfg ShardConfig) (*ShardedStore, error) {
	if cfg.Shards < 1 || cfg.Shards > MaxShards {
		return nil, fmt.Errorf("logstore: sharded open %s: shard count %d outside [1,%d]", name, cfg.Shards, MaxShards)
	}
	cfg.Opts = cfg.Opts.withMetrics()
	if cfg.Dir != "" {
		if err := checkShardLayout(cfg.Opts.FS, cfg.Dir, cfg.Shards); err != nil {
			return nil, err
		}
	}
	s := &ShardedStore{name: name, m: cfg.Opts.Metrics, shards: make([]Store, cfg.Shards)}
	for i := range s.shards {
		sub, err := openShard(name, i, cfg)
		if err != nil {
			for _, prev := range s.shards[:i] {
				prev.Close()
			}
			// Name the failing shard: "open failed" without the shard
			// index sends an operator hunting through N directories.
			return nil, fmt.Errorf("logstore: sharded open %s: shard %03d: %w", name, i, err)
		}
		s.shards[i] = sub
	}
	return s, nil
}

// checkShardLayout guards against silently hiding records behind a
// layout change: Dir must hold only shard-<i> directories with i below
// the configured shard count.
func checkShardLayout(fsys fsx.FS, dir string, shards int) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("logstore: sharded open %s: %w", dir, err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("logstore: sharded list %s: %w", dir, err)
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() {
			if strings.HasSuffix(n, segmentSuffix) || strings.HasSuffix(n, sealedSuffix) || strings.HasSuffix(n, walSuffix) {
				return fmt.Errorf("logstore: sharded open %s: found unsharded store file %s; this topic was persisted unsharded (set TopicShards back to 1, or use a fresh data dir)", dir, n)
			}
			continue
		}
		if !strings.HasPrefix(n, shardDirPrefix) {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(n, shardDirPrefix+"%d", &i); err == nil && i >= shards {
			return fmt.Errorf("logstore: sharded open %s: found %s but only %d shards configured; a lower shard count would hide its records (restore the shard count, or use a fresh data dir)", dir, n, shards)
		}
	}
	return nil
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%03d", shardDirPrefix, i))
}

// OpenStore builds one store of the kind the knobs select: a compacting
// segment store when segmentBytes > 0 (persistent when dir is set), a
// disk topic when only dir is set, an in-memory topic otherwise. It is
// the single store-selection point shared by the service layer (one
// store per topic) and ShardedStore (one store per shard).
func OpenStore(name, dir string, segmentBytes int64, codec segment.Codec, opts ...StoreOptions) (Store, error) {
	var o StoreOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	switch {
	case segmentBytes > 0:
		return OpenCompacting(name, CompactConfig{Dir: dir, SegmentBytes: segmentBytes, Codec: codec, Opts: o})
	case dir == "":
		return NewStore(name), nil
	default:
		return OpenDiskTopicFS(o.FS, dir)
	}
}

// openShard builds one sub-store.
func openShard(name string, i int, cfg ShardConfig) (Store, error) {
	dir := ""
	if cfg.Dir != "" {
		dir = shardDir(cfg.Dir, i)
	}
	return OpenStore(name, dir, cfg.SegmentBytes, cfg.Codec, cfg.Opts)
}

// Shards returns the shard count.
func (s *ShardedStore) Shards() int { return len(s.shards) }

// shardDegraded reports whether shard i has degraded to read-only.
// Shards without a degrade concept (plain topics) never degrade.
func (s *ShardedStore) shardDegraded(i int) bool {
	d, ok := s.shards[i].(Degrader)
	if !ok {
		return false
	}
	deg, _ := d.Degraded()
	return deg
}

// routeShard picks the shard for an un-pinned append: the round-robin
// choice, unless it has degraded and a healthy sibling exists — a
// single full disk must not wedge writes that other shards can still
// take. When every shard is degraded the original pick is returned and
// its ErrDegraded propagates.
func (s *ShardedStore) routeShard(pick int) int {
	n := len(s.shards)
	for off := 0; off < n; off++ {
		i := (pick + off) % n
		if !s.shardDegraded(i) {
			return i
		}
	}
	return pick
}

// Append implements Store, round-robining across healthy shards.
// Ingestion pipelines that want zero cross-shard contention use
// AppendShard with a fixed queue→shard assignment instead.
func (s *ShardedStore) Append(ts time.Time, raw string, templateID uint64) (int64, error) {
	shard := int((s.next.Add(1) - 1) % uint64(len(s.shards)))
	return s.AppendShard(s.routeShard(shard), ts, raw, templateID)
}

// AppendShard appends to one specific shard and returns the namespaced
// global offset. Each ingestion queue pins itself to a shard so parallel
// queues never serialize on a shared store mutex.
func (s *ShardedStore) AppendShard(shard int, ts time.Time, raw string, templateID uint64) (int64, error) {
	if shard < 0 || shard >= len(s.shards) {
		return 0, fmt.Errorf("logstore: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	local, err := s.shards[shard].Append(ts, raw, templateID)
	if err != nil {
		return 0, err
	}
	s.m.shardAppend(shard, 1)
	if local > shardLocalMask {
		return 0, fmt.Errorf("logstore: shard %d local offset %d overflows the %d-bit namespace", shard, local, shardShift)
	}
	return int64(shard)<<shardShift | local, nil
}

// AppendBatch implements Store: the batch is partitioned by the same
// round-robin routing an Append sequence would use (record i of the batch
// goes to the shard Append call number i would have picked), then each
// shard receives its sub-batch through one group-committed AppendBatch
// call. Offsets are therefore identical to the equivalent Append loop.
// Pinned ingestion queues use AppendShardBatch instead and skip the
// partition entirely. On error some shards may have admitted their
// sub-batch (or a prefix of it) and others not, so — unlike single-store
// AppendBatch — the admitted records are NOT necessarily a prefix of the
// batch: surviving records can interleave with lost ones, exactly as
// they could when parallel per-record Appends raced across shards. The
// returned error reports the first failure.
func (s *ShardedStore) AppendBatch(ts time.Time, recs []BatchRecord) (int64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	n := len(s.shards)
	if n == 1 {
		return s.AppendShardBatch(0, ts, recs)
	}
	start := s.next.Add(uint64(len(recs))) - uint64(len(recs))
	// Snapshot degraded flags once per batch (not per record — Degraded
	// takes the shard's mutex) and remap degraded picks to the next
	// healthy shard.
	route := make([]int, n)
	for i := range route {
		route[i] = i
	}
	for i := 0; i < n; i++ {
		if s.shardDegraded(i) {
			route[i] = -1
		}
	}
	for i := 0; i < n; i++ {
		if route[i] >= 0 {
			continue
		}
		for off := 1; off < n; off++ {
			if j := (i + off) % n; route[j] == j {
				route[i] = j
				break
			}
		}
		if route[i] < 0 {
			route[i] = i // every shard degraded: let ErrDegraded surface
		}
	}
	parts := make([][]BatchRecord, n)
	for i, r := range recs {
		sh := route[int((start+uint64(i))%uint64(n))]
		parts[sh] = append(parts[sh], r)
	}
	firstShard := route[int(start%uint64(n))]
	var first int64
	for k := 0; k < n; k++ {
		if len(parts[k]) == 0 {
			continue
		}
		off, err := s.AppendShardBatch(k, ts, parts[k])
		if err != nil {
			return 0, err
		}
		if k == firstShard {
			first = off
		}
	}
	return first, nil
}

// AppendShardBatch group-commits a whole batch into one specific shard
// and returns the namespaced global offset of its first record — the
// batch counterpart of AppendShard for pinned ingestion queues: one
// sub-store AppendBatch call, zero cross-shard contention.
func (s *ShardedStore) AppendShardBatch(shard int, ts time.Time, recs []BatchRecord) (int64, error) {
	if shard < 0 || shard >= len(s.shards) {
		return 0, fmt.Errorf("logstore: shard %d out of range [0,%d)", shard, len(s.shards))
	}
	if len(recs) == 0 {
		return 0, nil
	}
	local, err := s.shards[shard].AppendBatch(ts, recs)
	if err != nil {
		return 0, err
	}
	s.m.shardAppend(shard, int64(len(recs)))
	if local+int64(len(recs))-1 > shardLocalMask {
		return 0, fmt.Errorf("logstore: shard %d local offset %d overflows the %d-bit namespace", shard, local+int64(len(recs))-1, shardShift)
	}
	return int64(shard)<<shardShift | local, nil
}

// Len implements Store: the total record count across shards.
func (s *ShardedStore) Len() int {
	n := 0
	for _, sub := range s.shards {
		n += sub.Len()
	}
	return n
}

// Bytes implements Store.
func (s *ShardedStore) Bytes() int64 {
	var n int64
	for _, sub := range s.shards {
		n += sub.Bytes()
	}
	return n
}

// Get implements Store, routing by the shard bits of the offset.
func (s *ShardedStore) Get(offset int64) (Record, error) {
	shard := int(offset >> shardShift)
	if offset < 0 || shard >= len(s.shards) {
		return Record{}, fmt.Errorf("logstore: offset %d outside the %d-shard namespace", offset, len(s.shards))
	}
	rec, err := s.shards[shard].Get(offset & shardLocalMask)
	if err != nil {
		return Record{}, err
	}
	rec.Offset = offset
	return rec, nil
}

// GetBatch implements Store: offsets are partitioned per shard so each
// shard sees one dense GetBatch call (and pays its block-grouping win),
// then results are reassembled in input order with global offsets.
func (s *ShardedStore) GetBatch(offsets []int64) ([]Record, error) {
	if len(offsets) == 0 {
		return nil, nil
	}
	perShard := make(map[int][]int64) // shard → local offsets
	positions := make(map[int][]int)  // shard → positions in offsets
	for pos, off := range offsets {
		shard := int(off >> shardShift)
		if off < 0 || shard >= len(s.shards) {
			return nil, fmt.Errorf("logstore: offset %d outside the %d-shard namespace", off, len(s.shards))
		}
		perShard[shard] = append(perShard[shard], off&shardLocalMask)
		positions[shard] = append(positions[shard], pos)
	}
	out := make([]Record, len(offsets))
	for shard, local := range perShard {
		recs, err := s.shards[shard].GetBatch(local)
		if err != nil {
			return nil, err
		}
		base := int64(shard) << shardShift
		for i, rec := range recs {
			rec.Offset = base + local[i]
			out[positions[shard][i]] = rec
		}
	}
	return out, nil
}

// Scan implements Store, visiting shards in ascending namespace order
// (all of shard i before shard i+1) with offsets rewritten to the global
// namespace; [from, to) are global offsets and tr prunes inside each
// shard.
func (s *ShardedStore) Scan(from, to int64, tr TimeRange, fn func(Record) bool) {
	if from < 0 {
		from = 0
	}
	for i, sub := range s.shards {
		base := int64(i) << shardShift
		if to >= 0 && base >= to {
			return
		}
		lo := from - base
		if lo > shardLocalMask {
			continue // from is entirely past this shard's namespace
		}
		if lo < 0 {
			lo = 0
		}
		hi := int64(-1)
		if to >= 0 && to-base <= shardLocalMask {
			hi = to - base
		}
		stop := false
		sub.Scan(lo, hi, tr, func(r Record) bool {
			r.Offset += base
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ByTemplate implements Store. Per-shard results are ascending and the
// namespace is shard-major, so concatenation in shard order is globally
// ascending.
func (s *ShardedStore) ByTemplate(ids ...uint64) []int64 {
	return s.ByTemplateRange(TimeRange{}, ids...)
}

// ByTemplateRange implements Store, concatenating per-shard results in
// namespace order; tr pushes down into each shard's own pruning.
func (s *ShardedStore) ByTemplateRange(tr TimeRange, ids ...uint64) []int64 {
	var out []int64
	for i, sub := range s.shards {
		base := int64(i) << shardShift
		for _, off := range sub.ByTemplateRange(tr, ids...) {
			out = append(out, base+off)
		}
	}
	return out
}

// TemplateCounts implements Store, merging per-shard counts; tr pushes
// down into each shard's own pruning.
func (s *ShardedStore) TemplateCounts(tr TimeRange) map[uint64]int {
	out := make(map[uint64]int)
	for _, sub := range s.shards {
		for id, n := range sub.TemplateCounts(tr) {
			out[id] += n
		}
	}
	return out
}

// GroupedCounts implements Store, merging per-shard groups; tr pushes
// down into each shard's own pruning. Shards are visited in namespace
// order, so the samples kept are the lowest global offsets.
func (s *ShardedStore) GroupedCounts(maxSamples int, tr TimeRange) map[uint64]TemplateGroup {
	out := make(map[uint64]TemplateGroup)
	for i, sub := range s.shards {
		base := int64(i) << shardShift
		for id, g := range sub.GroupedCounts(maxSamples, tr) {
			agg := out[id]
			agg.Count += g.Count
			for _, off := range g.Samples {
				if len(agg.Samples) >= maxSamples {
					break
				}
				agg.Samples = append(agg.Samples, base+off)
			}
			out[id] = agg
		}
	}
	return out
}

// Search implements Store; see ByTemplate for the ordering argument.
func (s *ShardedStore) Search(token string) []int64 {
	return s.SearchRange(token, TimeRange{})
}

// SearchRange implements Store, concatenating per-shard results in
// namespace order; tr pushes down into each shard's own pruning.
func (s *ShardedStore) SearchRange(token string, tr TimeRange) []int64 {
	var out []int64
	for i, sub := range s.shards {
		base := int64(i) << shardShift
		for _, off := range sub.SearchRange(token, tr) {
			out = append(out, base+off)
		}
	}
	return out
}

// CountSince implements Store, summing per-shard counts. Each queue's
// timestamps are monotone within its shard, so the per-shard fast path
// usually survives sharded ingestion.
func (s *ShardedStore) CountSince(cut time.Time) int {
	n := 0
	for _, sub := range s.shards {
		n += sub.CountSince(cut)
	}
	return n
}

// Close implements Store, closing every shard and returning the first
// error.
func (s *ShardedStore) Close() error {
	var firstErr error
	for _, sub := range s.shards {
		if err := sub.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Compactor is the seal-control surface of stores with a background
// compactor: CompactingStore, and ShardedStore fanning out to compacting
// shards. The service layer drives forced compaction and compression
// stats through it without knowing the store topology.
type Compactor interface {
	// Seal marks current hot blocks for compaction.
	Seal() error
	// WaitIdle blocks until no block is pending compaction.
	WaitIdle()
	// SealError returns the most recent background seal failure, if any.
	SealError() error
	// SegmentStats reports compression counters.
	SegmentStats() SegmentStats
}

var (
	_ Compactor = (*CompactingStore)(nil)
	_ Compactor = (*ShardedStore)(nil)
)

// Seal fans the forced-compaction request out to every compacting shard.
func (s *ShardedStore) Seal() error {
	sealed := false
	for _, sub := range s.shards {
		cs, ok := sub.(Compactor)
		if !ok {
			continue
		}
		sealed = true
		if err := cs.Seal(); err != nil {
			return err
		}
	}
	if !sealed {
		return errors.New("logstore: sharded topic has no segment store (set SegmentBytes)")
	}
	return nil
}

// WaitIdle blocks until every compacting shard's sealer drains.
func (s *ShardedStore) WaitIdle() {
	for _, sub := range s.shards {
		if cs, ok := sub.(Compactor); ok {
			cs.WaitIdle()
		}
	}
}

// SealError returns the first shard's pending seal failure, if any.
func (s *ShardedStore) SealError() error {
	for _, sub := range s.shards {
		if cs, ok := sub.(Compactor); ok {
			if err := cs.SealError(); err != nil {
				return err
			}
		}
	}
	return nil
}

// SegmentStats merges compression counters across shards.
func (s *ShardedStore) SegmentStats() SegmentStats {
	var out SegmentStats
	for _, sub := range s.shards {
		cs, ok := sub.(Compactor)
		if !ok {
			continue
		}
		st := cs.SegmentStats()
		out.Segments += st.Segments
		out.SealedRecords += st.SealedRecords
		out.HotRecords += st.HotRecords
		out.RawBytes += st.RawBytes
		out.CompressedBytes += st.CompressedBytes
		out.BlockReads += st.BlockReads
		out.Codec = st.Codec
	}
	return out
}

var _ Degrader = (*ShardedStore)(nil)

// Degraded implements Degrader: the sharded store is degraded only when
// EVERY shard has degraded — while any healthy shard remains, un-pinned
// appends route around the sick ones and ingest stays available. The
// error reported is the first degraded shard's cause, annotated with
// its index.
func (s *ShardedStore) Degraded() (bool, error) {
	var firstErr error
	deg := 0
	for i, sub := range s.shards {
		d, ok := sub.(Degrader)
		if !ok {
			return false, nil // a plain topic shard never degrades
		}
		if isDeg, err := d.Degraded(); isDeg {
			deg++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %03d: %w", i, err)
			}
		}
	}
	if deg == len(s.shards) && deg > 0 {
		return true, firstErr
	}
	return false, nil
}

// DegradedShards counts shards currently in degraded read-only mode.
func (s *ShardedStore) DegradedShards() int {
	n := 0
	for i := range s.shards {
		if s.shardDegraded(i) {
			n++
		}
	}
	return n
}

// Flush forces buffered durability writes (WALs, disk-topic buffers) to
// the OS on every shard that has them.
func (s *ShardedStore) Flush() error {
	for _, sub := range s.shards {
		switch st := sub.(type) {
		case *CompactingStore:
			if err := st.Flush(); err != nil {
				return err
			}
		case *DiskTopic:
			if err := st.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ShardStat is one shard's contribution to a sharded topic, surfaced in
// the service's /stats breakdown.
type ShardStat struct {
	// Shard is the shard index (the high offset bits).
	Shard int
	// Records and Bytes count the shard's stored records and raw payload.
	Records int
	Bytes   int64
	// Segment-store counters, zero for non-compacting shards.
	Segments        int   `json:",omitempty"`
	SealedRecords   int   `json:",omitempty"`
	HotRecords      int   `json:",omitempty"`
	CompressedBytes int64 `json:",omitempty"`
	// Degraded marks a shard that has entered read-only mode (disk
	// full or persistent seal failure); un-pinned appends route around
	// it while it lasts.
	Degraded bool `json:",omitempty"`
}

// ShardStats reports per-shard counters, index-ascending.
func (s *ShardedStore) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sub := range s.shards {
		st := ShardStat{Shard: i, Records: sub.Len(), Bytes: sub.Bytes()}
		st.Degraded = s.shardDegraded(i)
		if cs, ok := sub.(Compactor); ok {
			sst := cs.SegmentStats()
			st.Segments = sst.Segments
			st.SealedRecords = sst.SealedRecords
			st.HotRecords = sst.HotRecords
			st.CompressedBytes = sst.CompressedBytes
		}
		out[i] = st
	}
	return out
}
