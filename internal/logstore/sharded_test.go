package logstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bytebrain/internal/segment"
)

func shardedConfigs(t *testing.T) map[string]ShardConfig {
	return map[string]ShardConfig{
		"memory":     {Shards: 4},
		"disk":       {Shards: 4, Dir: t.TempDir()},
		"compacting": {Shards: 4, Dir: t.TempDir(), SegmentBytes: 2048, Codec: segment.CodecFlate},
	}
}

// fillSharded appends n records with queue→shard affinity (record i goes
// to shard i%Shards) and returns the global offsets.
func fillSharded(t *testing.T, s *ShardedStore, n, start int) []int64 {
	t.Helper()
	offs := make([]int64, 0, n)
	for i := start; i < start+n; i++ {
		raw := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
		shard := i % s.Shards()
		off, err := s.AppendShard(shard, ts(i), raw, uint64(1+i%3))
		if err != nil {
			t.Fatal(err)
		}
		if got := int(off >> shardShift); got != shard {
			t.Fatalf("offset %d routed to shard %d, want %d", off, got, shard)
		}
		offs = append(offs, off)
	}
	return offs
}

func TestShardedRoundTrip(t *testing.T) {
	for name, cfg := range shardedConfigs(t) {
		t.Run(name, func(t *testing.T) {
			s, err := OpenSharded("t", cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			offs := fillSharded(t, s, 500, 0)
			if s.Len() != 500 {
				t.Fatalf("Len = %d", s.Len())
			}
			// The durability checkpoint fans out across every shard kind
			// (no-op for memory topics, WAL/segment flush otherwise).
			if err := s.Flush(); err != nil {
				t.Fatalf("Flush: %v", err)
			}

			// Every record readable at its namespaced offset.
			for i, off := range offs {
				r, err := s.Get(off)
				if err != nil {
					t.Fatalf("Get(%d): %v", off, err)
				}
				want := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
				if r.Raw != want || r.Offset != off || r.TemplateID != uint64(1+i%3) {
					t.Fatalf("Get(%d) = %+v", off, r)
				}
			}
			if _, err := s.Get(int64(cfg.Shards) << shardShift); err == nil {
				t.Fatal("Get outside the shard namespace must error")
			}

			// Scan covers everything exactly once, shard-major ascending.
			var seen []int64
			s.Scan(0, -1, TimeRange{}, func(r Record) bool {
				seen = append(seen, r.Offset)
				return true
			})
			if len(seen) != 500 {
				t.Fatalf("Scan saw %d records", len(seen))
			}
			for i := 1; i < len(seen); i++ {
				if seen[i] <= seen[i-1] {
					t.Fatalf("Scan offsets not ascending: %d after %d", seen[i], seen[i-1])
				}
			}
			// A bounded window: everything in shard 1's namespace.
			var inShard1 int
			s.Scan(1<<shardShift, 2<<shardShift, TimeRange{}, func(r Record) bool {
				if r.Offset>>shardShift != 1 {
					t.Fatalf("window scan leaked offset %d", r.Offset)
				}
				inShard1++
				return true
			})
			if inShard1 != 125 {
				t.Fatalf("shard-1 window scan saw %d records, want 125", inShard1)
			}

			// Template queries merge across shards.
			byTmpl := s.ByTemplate(2)
			if len(byTmpl) != 167 {
				t.Fatalf("ByTemplate(2) = %d offsets", len(byTmpl))
			}
			for i := 1; i < len(byTmpl); i++ {
				if byTmpl[i] <= byTmpl[i-1] {
					t.Fatal("ByTemplate offsets not ascending")
				}
			}
			counts := s.TemplateCounts(TimeRange{})
			if counts[1]+counts[2]+counts[3] != 500 {
				t.Fatalf("TemplateCounts = %v", counts)
			}
			groups := s.GroupedCounts(5, TimeRange{})
			total := 0
			for id, g := range groups {
				total += g.Count
				if g.Count != counts[id] {
					t.Errorf("template %d grouped %d != counted %d", id, g.Count, counts[id])
				}
				if len(g.Samples) != 5 {
					t.Errorf("template %d has %d samples", id, len(g.Samples))
				}
			}
			if total != 500 {
				t.Fatalf("grouped counts cover %d records", total)
			}

			// Token search and time counts.
			hits := s.Search("job-123")
			if len(hits) != 1 {
				t.Fatalf("Search(job-123) = %v", hits)
			}
			if r, _ := s.Get(hits[0]); !strings.Contains(r.Raw, "job-123") {
				t.Fatalf("Search hit resolves to %q", r.Raw)
			}
			if n := s.CountSince(ts(400)); n != 100 {
				t.Fatalf("CountSince = %d, want 100", n)
			}

			// Round-robin Append distributes across shards too.
			for i := 0; i < cfg.Shards; i++ {
				if _, err := s.Append(ts(600+i), "round robin", 7); err != nil {
					t.Fatal(err)
				}
			}
			for i, st := range s.ShardStats() {
				if st.Shard != i || st.Records != 126 {
					t.Fatalf("ShardStats[%d] = %+v, want 126 records", i, st)
				}
			}
		})
	}
}

func TestShardedCompactionFanOut(t *testing.T) {
	s, err := OpenSharded("t", ShardConfig{Shards: 3, Dir: t.TempDir(), SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillSharded(t, s, 300, 0)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if err := s.SealError(); err != nil {
		t.Fatal(err)
	}
	st := s.SegmentStats()
	if st.Segments != 3 || st.SealedRecords != 300 {
		t.Fatalf("SegmentStats = %+v, want 3 segments / 300 sealed", st)
	}
	for _, sh := range s.ShardStats() {
		if sh.Segments != 1 || sh.SealedRecords != 100 {
			t.Fatalf("ShardStats = %+v", sh)
		}
	}
	// Sealing a shard-of-plain-topics store reports the absence loudly.
	mem, err := OpenSharded("m", ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if err := mem.Seal(); err == nil || !strings.Contains(err.Error(), "no segment store") {
		t.Fatalf("Seal on plain shards = %v", err)
	}
}

// TestShardedRecovery restarts a persistent sharded store and checks that
// every record keeps its namespaced offset, then verifies the layout
// guards that protect against shard-count changes.
func TestShardedRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := ShardConfig{Shards: 3, Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate}
	s, err := OpenSharded("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	offs := fillSharded(t, s, 400, 0)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSharded("t", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 400 {
		t.Fatalf("recovered %d records, want 400", s2.Len())
	}
	for i, off := range offs {
		r, err := s2.Get(off)
		if err != nil {
			t.Fatalf("Get(%d): %v", off, err)
		}
		want := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
		if r.Raw != want {
			t.Fatalf("Get(%d) = %q, want %q", off, r.Raw, want)
		}
	}
	// Appends continue into the right shards after recovery.
	off, err := s2.AppendShard(2, ts(400), "after restart", 9)
	if err != nil || off>>shardShift != 2 {
		t.Fatalf("AppendShard after reopen: %d, %v", off, err)
	}

	// Shrinking the shard count would hide shard-002's records: refuse.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded("t", ShardConfig{Shards: 2, Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate}); err == nil {
		t.Fatal("open with fewer shards than on disk must refuse")
	}
	// Growing is safe (new shards start empty).
	s3, err := OpenSharded("t", ShardConfig{Shards: 5, Dir: dir, SegmentBytes: 2048, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 401 {
		t.Fatalf("after growing shards: Len = %d, want 401", s3.Len())
	}
	s3.Close()
}

// TestShardedLayoutMismatchRefused: sharded and unsharded layouts must
// refuse each other's directories instead of hiding records.
func TestShardedLayoutMismatchRefused(t *testing.T) {
	// Unsharded compacting dir opened sharded.
	dir := t.TempDir()
	cs, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, cs, 10, 0)
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded("t", ShardConfig{Shards: 2, Dir: dir, SegmentBytes: 1 << 30}); err == nil {
		t.Fatal("OpenSharded on an unsharded dir must refuse")
	}

	// Sharded dir opened unsharded (both store kinds).
	sdir := t.TempDir()
	ss, err := OpenSharded("t", ShardConfig{Shards: 2, Dir: sdir, SegmentBytes: 1 << 30, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	fillSharded(t, ss, 10, 0)
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompacting("t", CompactConfig{Dir: sdir, SegmentBytes: 1 << 30}); err == nil {
		t.Fatal("OpenCompacting on a sharded dir must refuse")
	}
	if _, err := OpenDiskTopic(sdir); err == nil {
		t.Fatal("OpenDiskTopic on a sharded dir must refuse")
	}
}

// TestShardedStress interleaves pinned appends, queries, seals and the
// final Close across shards; under -race this is the tentpole's memory-
// safety gate (Ingest ∥ Query ∥ Seal ∥ Close).
func TestShardedStress(t *testing.T) {
	s, err := OpenSharded("t", ShardConfig{Shards: 4, SegmentBytes: 8 << 10, Codec: segment.CodecFlate})
	if err != nil {
		t.Fatal(err)
	}
	const perShard = 1500
	var appendWG sync.WaitGroup
	for shard := 0; shard < s.Shards(); shard++ {
		appendWG.Add(1)
		go func(shard int) {
			defer appendWG.Done()
			for i := 0; i < perShard; i++ {
				raw := fmt.Sprintf("shard %d req %d handled path=/api/%d", shard, i, i%50)
				if _, err := s.AppendShard(shard, ts(shard*perShard+i), raw, uint64(1+i%5)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(shard)
	}
	done := make(chan struct{})
	go func() { appendWG.Wait(); close(done) }()
	sealerDone := make(chan struct{})
	go func() { // sealer
		defer close(sealerDone)
		for {
			select {
			case <-done:
				return
			default:
				if err := s.Seal(); err != nil {
					t.Errorf("seal: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for { // querier (main goroutine)
		s.Len()
		s.Bytes()
		s.ByTemplate(3)
		s.TemplateCounts(TimeRange{})
		s.GroupedCounts(5, TimeRange{})
		s.Search("handled")
		s.CountSince(ts(10))
		s.ShardStats()
		select {
		case <-done:
			<-sealerDone
			s.WaitIdle()
			if err := s.SealError(); err != nil {
				t.Fatal(err)
			}
			if got := s.Len(); got != 4*perShard {
				t.Fatalf("Len = %d, want %d", got, 4*perShard)
			}
			if got := len(s.ByTemplate(2)); got != 4*perShard/5 {
				t.Fatalf("ByTemplate(2) = %d, want %d", got, 4*perShard/5)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			// Appends after Close fail instead of panicking.
			if _, err := s.AppendShard(0, ts(0), "late", 1); err == nil {
				t.Fatal("AppendShard after Close must fail")
			}
			return
		default:
		}
	}
}
