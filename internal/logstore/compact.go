package logstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bytebrain/internal/fsx"
	"bytebrain/internal/segment"
)

// ErrDegraded marks a store that has flipped into degraded read-only
// mode after a disk-full error or a persistent seal failure: appends
// fail fast wrapping this sentinel (check with errors.Is), queries keep
// serving, and a background probe re-arms writes once the disk
// recovers.
var ErrDegraded = errors.New("logstore: store degraded (read-only)")

// Degrader is implemented by stores that can shed writes under disk
// pressure. Degraded reports whether the store currently rejects
// appends and, if so, the failure that drove it there. For a sharded
// store the bool is "fully degraded" (every shard); use ShardStats for
// per-shard state.
type Degrader interface {
	Degraded() (bool, error)
}

// isDiskFull reports whether err is the out-of-space condition that
// retrying cannot fix — the signal to degrade immediately instead of
// burning retries.
func isDiskFull(err error) bool {
	return errors.Is(err, fsx.ErrNoSpace)
}

// CompactConfig tunes a CompactingStore.
type CompactConfig struct {
	// Dir, when set, persists sealed segments and a write-ahead log for
	// the hot block there; the store recovers both after a restart.
	// Empty keeps sealed segments as compressed in-memory blobs (still a
	// large RAM win over raw lines).
	Dir string
	// SegmentBytes seals the hot block once its raw payload reaches this
	// size (default 4 MiB).
	SegmentBytes int64
	// Codec compresses sealed payloads (default flate).
	Codec segment.Codec
	// Opts carries the metrics bundle and WAL fsync policy.
	Opts StoreOptions
}

func (c CompactConfig) withDefaults() CompactConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	c.Opts = c.Opts.withMetrics()
	return c
}

const (
	sealedPrefix = "seg-"
	sealedSuffix = ".bbsg"
	walPrefix    = "wal-"
	walSuffix    = ".log"
)

// CompactingStore is the hybrid topic store: hot writes land in an
// in-memory Topic (fully indexed, immediately queryable), and a
// background compactor seals full blocks into immutable template-aware
// compressed segments. Queries fan out over sealed segments — using
// template/bloom/time pushdown from segment metadata so non-matching
// blocks are never decompressed — plus the hot block.
//
// With Dir configured, hot appends also go to a per-block write-ahead
// log; a crash loses at most the unflushed WAL tail, and recovery
// replays sealed segments then surviving WALs.
type CompactingStore struct {
	name string
	cfg  CompactConfig
	m    *Metrics // never nil (withDefaults); fields may be
	fs   fsx.FS   // never nil (withDefaults)

	mu               sync.Mutex
	blocks           []*compactBlock
	closed           bool
	batchesSinceSync int  // WAL commits since the last policy fsync
	walDirty         bool // WAL bytes written since the last sync

	sealCh  chan struct{}
	doneCh  chan struct{}
	sealWG  sync.WaitGroup
	flushWG sync.WaitGroup
	idleCh  chan struct{} // closed and replaced whenever seal work finishes
	sealErr error         // most recent seal/rotation failure; cleared by Seal
	readErr error         // most recent sealed-segment read failure on a query path

	degraded    bool  // read-only mode: appends fail fast with ErrDegraded
	degradedErr error // what drove the store into degraded mode
}

// compactBlock is one contiguous offset range of the topic, either still
// hot (in-memory Topic) or sealed (segment reader).
type compactBlock struct {
	idx     int   // monotonic block number; names the files
	first   int64 // topic offset of the first record
	hot     *Topic
	sealing bool
	seg     *segment.Reader
	wal     *walWriter
	walPath string // set for any block backed by a WAL file, even when
	// recovered without a live writer; removed after a successful seal
}

func (b *compactBlock) count() int64 {
	if b.seg != nil {
		return int64(b.seg.Count())
	}
	return int64(b.hot.Len())
}

// OpenCompacting opens a compacting store, recovering on-disk state when
// cfg.Dir is set: sealed segments load by metadata, leftover WALs replay
// into hot blocks (all but the newest re-queued for sealing), a torn WAL
// tail from a crash is truncated, and orphaned segment temp files are
// removed.
func OpenCompacting(name string, cfg CompactConfig) (*CompactingStore, error) {
	cfg = cfg.withDefaults()
	s := &CompactingStore{
		name:   name,
		cfg:    cfg,
		m:      cfg.Opts.Metrics,
		fs:     cfg.Opts.FS,
		sealCh: make(chan struct{}, 1),
		doneCh: make(chan struct{}),
		idleCh: make(chan struct{}),
	}
	if cfg.Dir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	if len(s.blocks) == 0 || s.blocks[len(s.blocks)-1].hot == nil || s.blocks[len(s.blocks)-1].sealing {
		if err := s.startHotLocked(); err != nil {
			return nil, err
		}
	}
	s.sealWG.Add(1)
	go s.sealLoop()
	if cfg.Dir != "" && cfg.Opts.FsyncInterval > 0 {
		s.flushWG.Add(1)
		go s.flushLoop()
	}
	s.kickSealer()
	return s, nil
}

// flushLoop is the interval half of the WAL fsync policy: every
// FsyncInterval it syncs the live hot WAL if appends landed since the
// last sync, so light traffic is never more than one interval from
// durability without paying an fsync per batch.
func (s *CompactingStore) flushLoop() {
	defer s.flushWG.Done()
	t := time.NewTicker(s.cfg.Opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.doneCh:
			return
		case <-t.C:
		}
		s.mu.Lock()
		if s.closed || !s.walDirty {
			s.mu.Unlock()
			continue
		}
		b := s.blocks[len(s.blocks)-1]
		if b.hot == nil || b.sealing || b.wal == nil {
			s.mu.Unlock()
			continue
		}
		s.walDirty = false
		if err := b.wal.flush(); err != nil {
			// A WAL that failed to sync must take no further bytes; seal
			// the block from memory exactly like a failed append.
			b.wal.poison(err)
			s.poisonRotateLocked(b)
			if isDiskFull(err) {
				s.setDegradedLocked(err)
			}
		}
		s.mu.Unlock()
	}
}

// maybeFsyncLocked is the count half of the WAL fsync policy: after every
// FsyncEveryBatches successful WAL commits (an Append counts as one), the
// live hot WAL is synced inline.
func (s *CompactingStore) maybeFsyncLocked() {
	if s.cfg.Opts.FsyncEveryBatches <= 0 {
		return
	}
	s.batchesSinceSync++
	if s.batchesSinceSync < s.cfg.Opts.FsyncEveryBatches {
		return
	}
	s.batchesSinceSync = 0
	b := s.blocks[len(s.blocks)-1]
	if b.hot == nil || b.sealing || b.wal == nil {
		return
	}
	s.walDirty = false
	if err := b.wal.flush(); err != nil {
		b.wal.poison(err)
		s.poisonRotateLocked(b)
		if isDiskFull(err) {
			s.setDegradedLocked(err)
		}
	}
}

// recover rebuilds the block list from cfg.Dir.
func (s *CompactingStore) recover() error {
	if err := s.fs.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("logstore: compacting open %s: %w", s.cfg.Dir, err)
	}
	entries, err := s.fs.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("logstore: compacting list %s: %w", s.cfg.Dir, err)
	}
	segIdx := map[int]string{}
	walIdx := map[int]string{}
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() {
			if strings.HasPrefix(n, shardDirPrefix) {
				// Shard subdirectories: this topic was persisted sharded
				// (TopicShards > 1). Opening it unsharded would hide every
				// sharded record — refuse instead of losing data.
				return fmt.Errorf("logstore: compacting open %s: found shard directory %s; this topic was persisted sharded (restore the shard count, or use a fresh data dir)", s.cfg.Dir, n)
			}
			continue
		}
		switch {
		case strings.HasPrefix(n, segmentPrefix) && strings.HasSuffix(n, segmentSuffix):
			// A DiskTopic record file: this directory was persisted by
			// the plain disk store (SegmentBytes unset). Silently
			// ignoring it would hide all those records behind fresh
			// offsets — refuse instead of losing data.
			return fmt.Errorf("logstore: compacting open %s: found plain disk-topic file %s; this topic was persisted without the segment store (unset SegmentBytes, or use a fresh data dir)", s.cfg.Dir, n)
		case strings.HasSuffix(n, segment.TmpSuffix):
			// Torn segment write from a crash; the WAL still has the data.
			if err := s.fs.Remove(filepath.Join(s.cfg.Dir, n)); err != nil {
				return fmt.Errorf("logstore: compacting recover: remove torn segment %s: %w", n, err)
			}
		case strings.HasPrefix(n, sealedPrefix) && strings.HasSuffix(n, sealedSuffix):
			var i int
			if _, err := fmt.Sscanf(n, sealedPrefix+"%06d"+sealedSuffix, &i); err == nil {
				segIdx[i] = filepath.Join(s.cfg.Dir, n)
			}
		case strings.HasPrefix(n, walPrefix) && strings.HasSuffix(n, walSuffix):
			var i int
			if _, err := fmt.Sscanf(n, walPrefix+"%06d"+walSuffix, &i); err == nil {
				walIdx[i] = filepath.Join(s.cfg.Dir, n)
			}
		}
	}
	var idxs []int
	for i := range segIdx {
		idxs = append(idxs, i)
	}
	for i := range walIdx {
		if _, dup := segIdx[i]; !dup {
			idxs = append(idxs, i)
		}
	}
	sort.Ints(idxs)
	var next int64
	for _, i := range idxs {
		if path, ok := segIdx[i]; ok {
			r, err := segment.OpenFileFS(s.fs, path)
			if err != nil && walIdx[i] != "" {
				// Unreadable segment but its WAL survived (crash hit
				// between segment rename and WAL delete): move the bad
				// file aside and recover the block from the WAL below. A
				// failed quarantine must abort recovery — the bad file
				// would shadow the WAL again on the next open.
				if rerr := s.fs.Rename(path, path+".bad"); rerr != nil {
					return fmt.Errorf("logstore: compacting recover: quarantine %s: %w", filepath.Base(path), rerr)
				}
			} else if err != nil {
				return fmt.Errorf("logstore: compacting recover: %w", err)
			} else {
				if r.FirstOffset() != next {
					return fmt.Errorf("logstore: compacting recover: segment %d starts at offset %d, want %d",
						i, r.FirstOffset(), next)
				}
				// The segment is good; its same-index WAL (if the crash
				// left one) is now redundant.
				if wal := walIdx[i]; wal != "" {
					if err := s.fs.Remove(wal); err != nil {
						return fmt.Errorf("logstore: compacting recover: remove redundant wal %s: %w", filepath.Base(wal), err)
					}
				}
				s.blocks = append(s.blocks, &compactBlock{idx: i, first: next, seg: r})
				s.m.RecoveredSegments.Inc()
				next += int64(r.Count())
				continue
			}
		}
		// WAL-only block: replay it into a hot Topic. Recovered blocks
		// re-queue for sealing, except that the newest one may resume
		// as the live hot block (see below).
		hot := NewTopic(s.name)
		if err := replayWAL(s.fs, walIdx[i], hot, s.m); err != nil {
			return err
		}
		if hot.Len() == 0 {
			if err := s.fs.Remove(walIdx[i]); err != nil {
				return fmt.Errorf("logstore: compacting recover: remove empty wal %s: %w", filepath.Base(walIdx[i]), err)
			}
			continue
		}
		s.blocks = append(s.blocks, &compactBlock{idx: i, first: next, hot: hot, sealing: true, walPath: walIdx[i]})
		next += int64(hot.Len())
	}
	// The newest block, when replayed from a WAL and still under the
	// seal threshold, resumes as the live hot block instead of being
	// force-sealed — otherwise every restart under light traffic would
	// mint an undersized segment.
	if n := len(s.blocks); n > 0 {
		last := s.blocks[n-1]
		if last.hot != nil && last.hot.Bytes() < s.cfg.SegmentBytes {
			w, err := openWAL(s.fs, last.walPath, s.m)
			if err != nil {
				return err
			}
			last.wal = w
			last.sealing = false
		}
	}
	return nil
}

// startHotLocked appends a fresh hot block (with WAL when persistent).
func (s *CompactingStore) startHotLocked() error {
	idx, first := 0, int64(0)
	if n := len(s.blocks); n > 0 {
		last := s.blocks[n-1]
		idx = last.idx + 1
		first = last.first + last.count()
	}
	b := &compactBlock{idx: idx, first: first, hot: NewTopic(s.name)}
	if s.cfg.Dir != "" {
		path := filepath.Join(s.cfg.Dir, fmt.Sprintf("%s%06d%s", walPrefix, idx, walSuffix))
		w, err := openWAL(s.fs, path, s.m)
		if err != nil {
			if isDiskFull(err) {
				s.setDegradedLocked(err)
			}
			return err
		}
		b.wal = w
		b.walPath = path
	}
	s.blocks = append(s.blocks, b)
	return nil
}

// Append implements Store.
func (s *CompactingStore) Append(ts time.Time, raw string, templateID uint64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("logstore: compacting store closed")
	}
	if s.degraded {
		return 0, fmt.Errorf("logstore: append %s: %w (cause: %v)", s.name, ErrDegraded, s.degradedErr)
	}
	b := s.blocks[len(s.blocks)-1]
	if b.hot == nil || b.sealing {
		// A failed rotation path can leave the tail block without a live
		// hot target; restore the invariant instead of panicking.
		if err := s.startHotLocked(); err != nil {
			return 0, err
		}
		b = s.blocks[len(s.blocks)-1]
	}
	// WAL first: if the durability write fails, the record is not
	// admitted to the in-memory index either, so a caller retry cannot
	// create a phantom duplicate. The failure leaves a torn record at
	// the WAL tail, and replay truncates everything from the tear on —
	// so the block must never write another byte to this WAL, or later
	// admitted records would be silently discarded on recovery.
	// poisonRotateLocked retires the block (sealing rebuilds durability
	// from memory) and subsequent appends land in a fresh WAL.
	if b.wal != nil {
		if err := b.wal.append(ts, raw, templateID); err != nil {
			s.poisonRotateLocked(b)
			if isDiskFull(err) {
				s.setDegradedLocked(err)
			}
			return 0, fmt.Errorf("logstore: wal append: %w", err)
		}
		s.walDirty = true
	}
	off := b.first + b.hot.Append(ts, raw, templateID)
	if b.hot.Bytes() >= s.cfg.SegmentBytes {
		// Only hand the block to the sealer once its successor exists;
		// if rotation fails the block simply keeps absorbing appends
		// (correct, just uncompacted) and the error is surfaced via
		// SealError rather than failing an append that already landed.
		if err := s.startHotLocked(); err != nil {
			s.sealErr = err
		} else {
			b.sealing = true
			s.kickSealer()
		}
	}
	s.maybeFsyncLocked()
	return off, nil
}

// AppendBatch implements Store: the batch lands under ONE store-lock
// acquisition with ONE WAL poison check per block it touches, its records
// encoded back-to-back into the WAL's buffered writer (group commit).
// Block rotation is handled mid-batch at exactly the boundaries the
// equivalent Append sequence would produce, so the WAL files and block
// layout are byte-identical to the per-record path. A WAL failure poisons
// and rotates exactly as in Append: the fully-written prefix of the batch
// is admitted (and later sealed from memory), the rest fails.
func (s *CompactingStore) AppendBatch(ts time.Time, recs []BatchRecord) (int64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errors.New("logstore: compacting store closed")
	}
	if s.degraded {
		return 0, fmt.Errorf("logstore: append %s: %w (cause: %v)", s.name, ErrDegraded, s.degradedErr)
	}
	s.m.BatchRecords.Observe(int64(len(recs)))
	b := s.blocks[len(s.blocks)-1]
	if b.hot == nil || b.sealing {
		if err := s.startHotLocked(); err != nil {
			return 0, err
		}
		b = s.blocks[len(s.blocks)-1]
	}
	first := b.first + int64(b.hot.Len())
	for i := 0; i < len(recs); {
		// Chunk: records that fit the current block, up to and including
		// the one whose bytes push it over the seal threshold — the same
		// boundary the per-record path rotates at.
		bytes := b.hot.Bytes()
		j := i
		for j < len(recs) {
			bytes += int64(len(recs[j].Raw))
			j++
			if bytes >= s.cfg.SegmentBytes {
				break
			}
		}
		chunk := recs[i:j]
		if b.wal != nil {
			n, err := b.wal.appendBatch(ts, chunk)
			if n > 0 {
				b.hot.AppendBatch(ts, chunk[:n])
				s.walDirty = true
			}
			if err != nil {
				s.poisonRotateLocked(b)
				if isDiskFull(err) {
					s.setDegradedLocked(err)
				}
				return first, fmt.Errorf("logstore: wal append: %w", err)
			}
		} else {
			b.hot.AppendBatch(ts, chunk)
		}
		i = j
		if b.hot.Bytes() >= s.cfg.SegmentBytes {
			// Rotate mid-batch; on rotation failure keep absorbing into
			// the same block (correct, just uncompacted) and surface the
			// error via SealError, exactly like Append.
			if err := s.startHotLocked(); err != nil {
				s.sealErr = err
			} else {
				b.sealing = true
				s.kickSealer()
				b = s.blocks[len(s.blocks)-1]
			}
		}
	}
	s.maybeFsyncLocked()
	return first, nil
}

// poisonRotateLocked retires a block whose WAL append just failed: the
// WAL now ends in a torn record, so the block must stop writing to it. A
// block holding admitted records is handed to the sealer — a successful
// seal persists them as a segment built from the in-memory index, after
// which the poisoned WAL is deleted; until then (or after a crash) replay
// recovers every admitted record, truncating only the torn tail. An empty
// block is dropped outright together with its torn WAL. Either way a
// fresh hot block with a fresh WAL takes over. If rotation itself fails,
// the poisoned block stays hot and every append fails fast (retrying the
// rotation) rather than risking silent data loss.
func (s *CompactingStore) poisonRotateLocked(b *compactBlock) {
	s.m.WALPoisonRotations.Inc()
	if err := s.startHotLocked(); err != nil {
		s.sealErr = err
		return
	}
	if b.hot.Len() > 0 {
		b.sealing = true
		s.kickSealer()
		return
	}
	// Nothing was admitted to the block: discard it and its torn WAL.
	// Close/remove failures here cannot lose data (the WAL is already
	// poisoned and holds no admitted records) and recovery deletes an
	// empty WAL on the next open, so this teardown is best-effort.
	//bbvet:ignore durability discarding an empty poisoned WAL; nothing admitted, recovery re-deletes it
	b.wal.close()
	b.wal = nil
	if b.walPath != "" {
		//bbvet:ignore durability same empty poisoned WAL as above; remove is best-effort
		s.fs.Remove(b.walPath)
		b.walPath = ""
	}
	for i, bb := range s.blocks {
		if bb == b {
			s.blocks = append(s.blocks[:i:i], s.blocks[i+1:]...)
			break
		}
	}
}

func (s *CompactingStore) kickSealer() {
	select {
	case s.sealCh <- struct{}{}:
	default:
	}
}

// sealLoop is the background compactor: it converts seal-pending hot
// blocks into compressed segments, oldest first, then swaps them into
// the block list. Seal failures retry with capped exponential backoff;
// disk-full or retry exhaustion degrades the store to read-only, after
// which the loop doubles as the recovery probe, periodically re-trying
// the pending work (plus a scratch probe write) until the disk heals.
func (s *CompactingStore) sealLoop() {
	defer s.sealWG.Done()
	probe := time.NewTimer(s.cfg.Opts.ProbeInterval)
	probe.Stop() // armed only while degraded
	defer probe.Stop()
	for {
		select {
		case <-s.doneCh:
			// Final drain on clean shutdown: a block already marked for
			// sealing must not be abandoned — in particular a poisoned-WAL
			// block, whose admitted records may exist nowhere durable
			// until its seal completes (the select races Close's doneCh
			// against the kick the poisoning append sent).
			s.remarkFailed()
			s.drainSeals(true)
			return
		case <-s.sealCh:
		case <-probe.C:
			s.probeRecovery()
		}
		s.drainSeals(false)
		if deg, _ := s.Degraded(); deg {
			probe.Reset(s.cfg.Opts.ProbeInterval)
		}
		s.mu.Lock()
		close(s.idleCh)
		s.idleCh = make(chan struct{})
		s.mu.Unlock()
	}
}

// drainSeals seals every pending block, oldest first. A failed attempt
// is retried up to SealMaxRetries times with capped exponential backoff
// (the block keeps serving from memory, and sealing stays cleared
// during the backoff so WaitIdle/Close cannot hang on the retry timer);
// a disk-full error or retry exhaustion degrades the store instead.
// During the final shutdown drain the backoff cannot watch doneCh (it
// is already closed), so it sleeps unconditionally — bounded by
// SealMaxRetries.
func (s *CompactingStore) drainSeals(final bool) {
	fails := 0
	for {
		attempted, err := s.sealOne()
		if !attempted {
			return
		}
		if err == nil {
			fails = 0
			continue
		}
		fails++
		if isDiskFull(err) || fails > s.cfg.Opts.SealMaxRetries {
			s.setDegraded(err)
			return
		}
		s.m.SealRetries.Inc()
		d := s.cfg.Opts.SealRetryBase << (fails - 1)
		if d > s.cfg.Opts.SealRetryMax {
			d = s.cfg.Opts.SealRetryMax
		}
		if final {
			time.Sleep(d)
		} else {
			select {
			case <-time.After(d):
			case <-s.doneCh:
				// Shutdown interrupts the backoff; the doneCh branch of
				// sealLoop runs the final drain, which re-marks the block.
				return
			}
		}
		s.remarkFailed()
	}
}

// remarkFailed re-queues blocks whose seal attempt failed (sealing was
// cleared to keep WaitIdle honest) so the next drain retries them.
func (s *CompactingStore) remarkFailed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.blocks) == 0 {
		return
	}
	for _, b := range s.blocks[:len(s.blocks)-1] {
		if b.hot != nil && !b.sealing {
			b.sealing = true
		}
	}
}

// setDegraded flips the store into degraded read-only mode.
func (s *CompactingStore) setDegraded(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.setDegradedLocked(err)
}

func (s *CompactingStore) setDegradedLocked(err error) {
	if s.degraded {
		return
	}
	s.degraded = true
	s.degradedErr = err
	s.m.DegradedEnters.Inc()
	// Wake the seal loop so it arms the recovery probe timer.
	s.kickSealer()
}

// Degraded implements Degrader.
func (s *CompactingStore) Degraded() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded, s.degradedErr
}

// probeRecovery is the degraded store's way back: re-try every pending
// seal, rotate a poisoned hot WAL onto a fresh file, and prove the disk
// writable with a scratch file. Only when all of it succeeds does the
// store re-open for appends; any failure leaves it degraded and the
// caller re-arms the probe timer.
func (s *CompactingStore) probeRecovery() {
	if deg, _ := s.Degraded(); !deg {
		return
	}
	// Retry the backlog first: these writes are the real probe — if the
	// pending segments land, the disk is back.
	s.remarkFailed()
	for {
		attempted, err := s.sealOne()
		if err != nil {
			return // still sick; stay degraded
		}
		if !attempted {
			break
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A tail block left with a poisoned (or failed-to-open) WAL must
	// rotate before appends resume, or the first append would fail fast
	// on the poison and bounce the store straight back into degraded.
	b := s.blocks[len(s.blocks)-1]
	switch {
	case b.hot == nil || b.sealing:
		if err := s.startHotLocked(); err != nil {
			return
		}
	case b.wal != nil && b.wal.poisoned():
		s.poisonRotateLocked(b)
		tail := s.blocks[len(s.blocks)-1]
		if tail.hot == nil || tail.sealing || (s.cfg.Dir != "" && tail.wal == nil) {
			return // rotation failed; stay degraded
		}
	case b.wal == nil && s.cfg.Dir != "":
		// Hot records with no WAL at all (a failed rotation path): get a
		// fresh durable tail and persist this block from memory.
		if err := s.startHotLocked(); err != nil {
			return
		}
		if b.hot.Len() > 0 {
			b.sealing = true
		}
	}
	if err := s.probeWriteLocked(); err != nil {
		return
	}
	s.degraded = false
	s.degradedErr = nil
	s.kickSealer() // the rotation above may have queued a seal
}

// probeWriteLocked proves the data directory writable: create, write,
// fsync, and remove a scratch file. Memory-only stores trivially pass.
func (s *CompactingStore) probeWriteLocked() error {
	if s.cfg.Dir == "" {
		return nil
	}
	path := filepath.Join(s.cfg.Dir, ".probe")
	f, err := s.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("bytebrain disk probe\n")); err != nil {
		f.Close()
		s.fs.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(path)
		return err
	}
	return s.fs.Remove(path)
}

// sealableLocked returns the block the compactor may seal next, or nil.
// Only the oldest unsealed block qualifies: segment files on disk must
// stay a contiguous prefix of the block sequence, or a crash after an
// out-of-order seal would leave an offset gap recovery cannot bridge. A
// block whose seal failed (sealing cleared) therefore blocks newer ones
// until Seal re-marks it.
func (s *CompactingStore) sealableLocked() *compactBlock {
	for _, b := range s.blocks {
		if b.hot == nil {
			continue // already sealed
		}
		if b.sealing {
			return b
		}
		return nil
	}
	return nil
}

// sealOne seals the oldest pending block. attempted is false when no
// block is pending; err carries a failed attempt (the block stays hot,
// its sealing flag cleared, and sealErr records the failure — the
// caller decides between retry and degrade).
func (s *CompactingStore) sealOne() (attempted bool, _ error) {
	s.mu.Lock()
	b := s.sealableLocked()
	if b == nil {
		s.mu.Unlock()
		return false, nil
	}
	s.mu.Unlock()

	// The block no longer receives appends; read it without the store
	// lock so queries and hot writes continue during compression.
	recs := make([]segment.Record, 0, b.hot.Len())
	b.hot.Scan(0, -1, TimeRange{}, func(r Record) bool {
		recs = append(recs, segment.Record{
			Offset:     b.first + r.Offset,
			Time:       r.Time,
			Raw:        r.Raw,
			TemplateID: r.TemplateID,
		})
		return true
	})
	start := time.Now()
	reader, err := s.sealRecords(b, recs)
	s.m.SealSeconds.ObserveDuration(time.Since(start))

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		// Keep serving the block from memory and record the failure.
		// sealing is cleared so WaitIdle and the drain loop do not hang
		// on it; drainSeals (retry/backoff) and Seal (the forced
		// compaction path) re-mark failed blocks for another attempt.
		b.sealing = false
		s.sealErr = err
		return true, err
	}
	s.m.Seals.Inc()
	b.seg = reader
	b.hot = nil
	if b.wal != nil {
		// The segment is durable, so the WAL is redundant — but a close
		// failure can leak the descriptor and block the delete below, so
		// it is surfaced, not dropped.
		if err := b.wal.close(); err != nil {
			s.sealErr = fmt.Errorf("logstore: close sealed block %d wal: %w", b.idx, err)
		}
		b.wal = nil
	}
	if b.walPath != "" {
		// A lingering redundant WAL is cleaned up by recovery, but a
		// remove failure there aborts the next open — surface it now
		// while the operator can act on it.
		if err := s.fs.Remove(b.walPath); err != nil {
			s.sealErr = fmt.Errorf("logstore: remove sealed block %d wal: %w", b.idx, err)
		}
		b.walPath = ""
	}
	return true, nil
}

// sealRecords encodes one block and, when persistent, writes it
// atomically to disk.
func (s *CompactingStore) sealRecords(b *compactBlock, recs []segment.Record) (*segment.Reader, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("logstore: seal empty block %d", b.idx)
	}
	if b.wal != nil && !b.wal.poisoned() {
		// A poisoned WAL cannot (and must not) flush; the segment built
		// from the in-memory index below becomes the durable copy.
		if err := b.wal.flush(); err != nil {
			return nil, err
		}
	}
	blob, _, err := segment.Encode(recs, s.cfg.Codec)
	if err != nil {
		return nil, fmt.Errorf("logstore: seal block %d: %w", b.idx, err)
	}
	if s.cfg.Dir != "" {
		path := filepath.Join(s.cfg.Dir, fmt.Sprintf("%s%06d%s", sealedPrefix, b.idx, sealedSuffix))
		if err := segment.WriteFileFS(s.fs, path, blob); err != nil {
			return nil, err
		}
	}
	return segment.Open(blob)
}

// Seal marks the current hot block for compaction regardless of size (a
// no-op when it is empty), re-marks any block whose earlier seal attempt
// failed, clears the sticky error so SealError reflects this attempt,
// and returns without waiting.
func (s *CompactingStore) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("logstore: compacting store closed")
	}
	s.sealErr = nil
	// Retry blocks left hot by a failed seal (everything but the last
	// block should be sealed or seal-pending).
	for _, b := range s.blocks[:len(s.blocks)-1] {
		if b.hot != nil && !b.sealing {
			b.sealing = true
		}
	}
	b := s.blocks[len(s.blocks)-1]
	switch {
	case b.hot == nil || b.sealing:
		// Defensive: a failed rotation path can leave the tail block
		// sealed or seal-pending with no live hot successor; restore the
		// append invariant instead of dereferencing a nil hot topic.
		if err := s.startHotLocked(); err != nil {
			s.kickSealer()
			return err
		}
	case b.hot.Len() > 0:
		if err := s.startHotLocked(); err != nil {
			s.kickSealer()
			return err
		}
		b.sealing = true
	}
	s.kickSealer()
	return nil
}

// WaitIdle blocks until no block is pending compaction — test and
// benchmark plumbing for the otherwise-asynchronous compactor.
func (s *CompactingStore) WaitIdle() {
	for {
		s.mu.Lock()
		pending := s.sealableLocked() != nil
		ch := s.idleCh
		s.mu.Unlock()
		if !pending {
			return
		}
		s.kickSealer()
		select {
		case <-ch:
		case <-s.doneCh:
			return
		}
	}
}

// SealError returns the most recent background compaction or rotation
// failure, if any. Blocks that fail to seal keep serving from memory;
// Seal clears the error before retrying them.
func (s *CompactingStore) SealError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealErr
}

// ReadError returns the most recent sealed-segment decode failure hit by
// a query path (those paths cannot return errors through the Store
// interface; affected blocks are skipped, so results may be partial
// until the error is investigated).
func (s *CompactingStore) ReadError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readErr
}

// noteErr records a query-path read failure observed outside the store
// lock.
func (s *CompactingStore) noteErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readErr = err
}

// blockView is a consistent read-side snapshot of one block. The seg/hot
// fields of compactBlock are mutated by the sealer under the store lock,
// so queries must not read them from raw block pointers; a view copied
// under the lock stays valid afterwards (sealed readers are immutable and
// a hot Topic is never mutated again once its view was taken while it was
// seal-pending — and has its own lock regardless).
type blockView struct {
	first int64
	n     int64
	seg   *segment.Reader
	hot   *Topic
}

func (v blockView) last() int64 { return v.first + v.n }

// snapshot copies the current block list into read-safe views.
func (s *CompactingStore) snapshot() []blockView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]blockView, len(s.blocks))
	for i, b := range s.blocks {
		out[i] = blockView{first: b.first, n: b.count(), seg: b.seg, hot: b.hot}
	}
	return out
}

// Len implements Store.
func (s *CompactingStore) Len() int {
	var n int64
	for _, b := range s.snapshot() {
		n += b.n
	}
	return int(n)
}

// Bytes implements Store: the raw payload size the topic represents
// (sealed blocks report the pre-compression size from metadata).
func (s *CompactingStore) Bytes() int64 {
	var n int64
	for _, b := range s.snapshot() {
		if b.seg != nil {
			n += b.seg.RawBytes()
		} else {
			n += b.hot.Bytes()
		}
	}
	return n
}

// Get implements Store.
func (s *CompactingStore) Get(offset int64) (Record, error) {
	for _, b := range s.snapshot() {
		if offset < b.first || offset >= b.last() {
			continue
		}
		if b.seg != nil {
			rec, err := b.seg.Get(offset)
			if err != nil {
				return Record{}, err
			}
			return Record{Offset: rec.Offset, Time: rec.Time, Raw: rec.Raw, TemplateID: rec.TemplateID}, nil
		}
		r, err := b.hot.Get(offset - b.first)
		if err != nil {
			return Record{}, err
		}
		r.Offset = offset
		return r, nil
	}
	return Record{}, fmt.Errorf("logstore: offset %d out of range [0,%d)", offset, s.Len())
}

// GetBatch implements Store. Offsets are grouped per block first, so a
// sealed block touched by many offsets pays exactly one payload
// decompression instead of one per offset (Get decodes per call) — the
// win the query sample-fetch path exists for.
func (s *CompactingStore) GetBatch(offsets []int64) ([]Record, error) {
	if len(offsets) == 0 {
		return nil, nil
	}
	blocks := s.snapshot()
	out := make([]Record, len(offsets))
	groups := make(map[int][]int, 1) // block index → positions in offsets
	for pos, off := range offsets {
		// Blocks are offset-ordered: binary search the owning block.
		bi := sort.Search(len(blocks), func(i int) bool { return blocks[i].last() > off })
		if bi == len(blocks) || off < blocks[bi].first {
			return nil, fmt.Errorf("logstore: offset %d out of range [0,%d)", off, s.Len())
		}
		groups[bi] = append(groups[bi], pos)
	}
	for bi, positions := range groups {
		b := blocks[bi]
		if b.seg != nil {
			recs, err := b.seg.Records()
			if err != nil {
				return nil, err
			}
			for _, pos := range positions {
				rec := recs[offsets[pos]-b.first]
				out[pos] = Record{Offset: rec.Offset, Time: rec.Time, Raw: rec.Raw, TemplateID: rec.TemplateID}
			}
			continue
		}
		for _, pos := range positions {
			r, err := b.hot.Get(offsets[pos] - b.first)
			if err != nil {
				return nil, err
			}
			r.Offset = offsets[pos]
			out[pos] = r
		}
	}
	return out, nil
}

// Scan implements Store. Sealed blocks whose metadata time bounds fall
// outside tr are skipped without decompression.
func (s *CompactingStore) Scan(from, to int64, tr TimeRange, fn func(Record) bool) {
	if from < 0 {
		from = 0
	}
	if tr.Empty() {
		return
	}
	stop := false
	for _, b := range s.snapshot() {
		if stop {
			return
		}
		last := b.last()
		if to >= 0 && b.first >= to {
			return
		}
		if last <= from {
			continue
		}
		if b.seg != nil {
			if !b.seg.OverlapsRange(tr.From, tr.To) {
				s.m.BlocksPruned.Inc()
				continue
			}
			err := b.seg.Scan(func(rec segment.Record) bool {
				if rec.Offset < from {
					return true
				}
				if to >= 0 && rec.Offset >= to {
					stop = true
					return false
				}
				if !tr.Contains(rec.Time) {
					return true
				}
				if !fn(Record{Offset: rec.Offset, Time: rec.Time, Raw: rec.Raw, TemplateID: rec.TemplateID}) {
					stop = true
					return false
				}
				return true
			})
			if err != nil {
				s.noteErr(err)
			}
			continue
		}
		lo, hi := from-b.first, int64(-1)
		if to >= 0 {
			hi = to - b.first
		}
		b.hot.Scan(lo, hi, tr, func(r Record) bool {
			r.Offset += b.first
			if !fn(r) {
				stop = true
				return false
			}
			return true
		})
	}
}

// ByTemplate implements Store. Sealed blocks whose metadata lacks every
// queried template are skipped without decompression.
func (s *CompactingStore) ByTemplate(ids ...uint64) []int64 {
	return s.ByTemplateRange(TimeRange{}, ids...)
}

// ByTemplateRange implements Store. Sealed blocks prune on metadata
// alone when no queried template is present, when the block's time
// bounds miss tr, or when every queried template's own time bounds (v3
// segments) miss it; only surviving blocks decompress.
func (s *CompactingStore) ByTemplateRange(tr TimeRange, ids ...uint64) []int64 {
	var out []int64
	if tr.Empty() {
		return out
	}
	for _, b := range s.snapshot() {
		if b.seg != nil {
			any := false
			for _, id := range ids {
				if b.seg.HasTemplate(id) {
					any = true
					break
				}
			}
			if !any {
				// Metadata rules every queried template out: counted here,
				// never decompressed (ByTemplate's own fast path).
				s.m.BlocksPruned.Inc()
				continue
			}
			offs, decoded, err := b.seg.ByTemplateRangeInfo(tr.From, tr.To, ids...)
			if err != nil {
				s.noteErr(err)
				continue
			}
			if !decoded {
				// Time-bound prune: the templates exist but nothing can
				// lie in tr.
				s.m.BlocksPruned.Inc()
				continue
			}
			out = append(out, offs...)
			continue
		}
		for _, off := range b.hot.ByTemplateRange(tr, ids...) {
			out = append(out, off+b.first)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupedCounts implements Store, answered from sealed-segment metadata
// (per-template counts, sample offsets and time bounds persisted at seal
// time) plus the hot template index. With the zero TimeRange no payload
// is ever decompressed; with a bounded range, blocks outside it are
// pruned by their metadata time bounds and only blocks the range
// straddles decode — and within those, only templates whose own time
// bounds straddle the boundary. Blocks are visited in offset order, so
// samples accumulate ascending and the earliest offsets win.
func (s *CompactingStore) GroupedCounts(maxSamples int, tr TimeRange) map[uint64]TemplateGroup {
	out := make(map[uint64]TemplateGroup)
	if tr.Empty() {
		return out
	}
	merge := func(id uint64, count int, samples []int64) {
		g := out[id]
		g.Count += count
		for _, off := range samples {
			if len(g.Samples) >= maxSamples {
				break
			}
			g.Samples = append(g.Samples, off)
		}
		out[id] = g
	}
	for _, b := range s.snapshot() {
		if b.seg != nil {
			metas, decoded, err := b.seg.TemplateMetasRangeInfo(tr.From, tr.To)
			if !decoded {
				s.m.BlocksPruned.Inc()
			}
			if err != nil {
				s.noteErr(err)
				continue
			}
			for _, tm := range metas {
				merge(tm.ID, tm.Count, tm.Samples)
			}
			continue
		}
		for id, g := range b.hot.GroupedCounts(maxSamples, tr) {
			for i := range g.Samples {
				g.Samples[i] += b.first
			}
			merge(id, g.Count, g.Samples)
		}
	}
	return out
}

// TemplateCounts implements Store, with the same range pushdown as
// GroupedCounts.
func (s *CompactingStore) TemplateCounts(tr TimeRange) map[uint64]int {
	out := make(map[uint64]int)
	if tr.Empty() {
		return out
	}
	for _, b := range s.snapshot() {
		var m map[uint64]int
		if b.seg != nil {
			var err error
			var decoded bool
			m, decoded, err = b.seg.TemplateCountsRangeInfo(tr.From, tr.To)
			if !decoded {
				s.m.BlocksPruned.Inc()
			}
			if err != nil {
				s.noteErr(err)
				continue
			}
		} else {
			m = b.hot.TemplateCounts(tr)
		}
		for id, n := range m {
			out[id] += n
		}
	}
	return out
}

// Search implements Store. Sealed blocks screen through their bloom
// filter first.
func (s *CompactingStore) Search(token string) []int64 {
	return s.SearchRange(token, TimeRange{})
}

// SearchRange implements Store. Sealed blocks prune on metadata alone
// when the bloom filter rules the token out or the block's time bounds
// miss tr; only surviving blocks decompress.
func (s *CompactingStore) SearchRange(token string, tr TimeRange) []int64 {
	var out []int64
	if tr.Empty() {
		return out
	}
	for _, b := range s.snapshot() {
		if b.seg != nil {
			offs, decoded, err := b.seg.SearchRangeInfo(token, tr.From, tr.To)
			if err != nil {
				s.noteErr(err)
				continue
			}
			if !decoded {
				// Bloom screen or time-bound prune: counted here, never
				// decompressed (Search's own fast path).
				s.m.BlocksPruned.Inc()
				continue
			}
			out = append(out, offs...)
			continue
		}
		for _, off := range b.hot.SearchRange(token, tr) {
			out = append(out, off+b.first)
		}
	}
	return out
}

// CountSince implements Store, using segment time-range metadata for the
// all-in / all-out blocks.
func (s *CompactingStore) CountSince(cut time.Time) int {
	n := 0
	for _, b := range s.snapshot() {
		if b.seg != nil {
			if !b.seg.MinTime().Before(cut) || b.seg.MaxTime().Before(cut) {
				// All-in / all-out by metadata time bounds: CountSince
				// answers without decompressing.
				s.m.BlocksPruned.Inc()
			}
			c, err := b.seg.CountSince(cut)
			if err != nil {
				s.noteErr(err)
				continue
			}
			n += c
			continue
		}
		n += b.hot.CountSince(cut)
	}
	return n
}

// SegmentStats reports the compression state of the store.
type SegmentStats struct {
	// Segments is the sealed segment count.
	Segments int
	// SealedRecords is the record count inside sealed segments.
	SealedRecords int
	// HotRecords is the record count still in memory (hot + pending).
	HotRecords int
	// RawBytes is the pre-compression payload size of sealed segments.
	RawBytes int64
	// CompressedBytes is their encoded on-disk/in-memory size.
	CompressedBytes int64
	// BlockReads counts payload decompressions across all sealed
	// segments — the price queries actually paid.
	BlockReads int64
	// Codec is the configured payload codec.
	Codec string
}

// Ratio returns CompressedBytes/RawBytes (0 when nothing is sealed).
func (st SegmentStats) Ratio() float64 {
	if st.RawBytes == 0 {
		return 0
	}
	return float64(st.CompressedBytes) / float64(st.RawBytes)
}

// SegmentStats returns current compression counters.
func (s *CompactingStore) SegmentStats() SegmentStats {
	st := SegmentStats{Codec: s.cfg.Codec.String()}
	for _, b := range s.snapshot() {
		if b.seg != nil {
			st.Segments++
			st.SealedRecords += b.seg.Count()
			st.RawBytes += b.seg.RawBytes()
			st.CompressedBytes += b.seg.EncodedBytes()
			st.BlockReads += b.seg.BlockReads()
		} else {
			st.HotRecords += b.hot.Len()
		}
	}
	return st
}

// Flush forces buffered WAL bytes to the OS (durability checkpoint). A
// poisoned WAL can take no more bytes, so until its block's pending seal
// lands that block's admitted records may exist only in memory; Flush
// still flushes every healthy WAL but then reports the gap instead of
// claiming a checkpoint it cannot guarantee. The error clears once the
// sealer persists the block (WaitIdle forces the wait).
func (s *CompactingStore) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pending error
	for _, b := range s.blocks {
		if b.wal == nil {
			continue
		}
		if b.wal.poisoned() {
			if pending == nil {
				pending = fmt.Errorf("logstore: block %d awaiting seal after wal failure; its records are not yet durable", b.idx)
			}
			continue
		}
		if err := b.wal.flush(); err != nil {
			return err
		}
	}
	return pending
}

// Close implements Store: seals nothing further, stops the compactor,
// and flushes WALs so every hot record survives restart.
func (s *CompactingStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.doneCh)
	s.sealWG.Wait()
	s.flushWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, b := range s.blocks {
		if b.wal != nil {
			if b.hot != nil && b.wal.poisoned() && firstErr == nil {
				// The shutdown drain could not seal this poisoned block
				// (seal failure on top of the WAL failure): its admitted
				// records die with the process. Report it — a silent nil
				// here would turn the data loss into a clean shutdown.
				firstErr = fmt.Errorf("logstore: close: block %d unsealed after wal failure (seal error: %v); its records are not durable", b.idx, s.sealErr)
			}
			if err := b.wal.close(); err != nil && firstErr == nil {
				firstErr = err
			}
			b.wal = nil
		}
	}
	return firstErr
}

var _ Store = (*CompactingStore)(nil)

// walSink is the buffered-writer surface walWriter writes through.
// Production uses *bufio.Writer; fault-injection tests substitute a
// failing implementation to simulate torn mid-record writes.
type walSink interface {
	io.Writer
	io.StringWriter
	Flush() error
}

// walWriter appends length-prefixed records (the DiskTopic record format)
// to one block's write-ahead log. Its own mutex serializes the sealer's
// flush against appends/flushes made under the store lock.
//
// A failed append leaves a torn record at the logical tail of the stream
// (header without payload, or a partial payload). Any byte written after
// it would be silently discarded by replay's torn-tail truncation, so the
// writer poisons itself on the first error: every later append fails fast
// and no further bytes ever reach the file. The store reacts by rotating
// to a fresh WAL and sealing this block from memory (see Append).
type walWriter struct {
	path string
	m    *Metrics // never nil; instruments fsyncs and admitted records
	mu   sync.Mutex
	f    fsx.File
	w    walSink
	err  error // poisoned: first append failure, sticky
}

func openWAL(fsys fsx.FS, path string, m *Metrics) (*walWriter, error) {
	_, statErr := fsys.Stat(path)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logstore: open wal: %w", err)
	}
	if statErr != nil {
		// Fresh WAL file: its directory entry must be durable before any
		// record in it is acked, or a crash could fsync record bytes into
		// a file the post-crash recovery scan never sees.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("logstore: open wal: sync dir: %w", err)
		}
	}
	if m == nil {
		m = &Metrics{}
	}
	return &walWriter{path: path, m: m, f: f, w: bufio.NewWriterSize(f, 128<<10)}, nil
}

func (w *walWriter) append(ts time.Time, raw string, templateID uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return fmt.Errorf("logstore: wal %s poisoned by earlier failure: %w", filepath.Base(w.path), w.err)
	}
	var hdr [recordOverhead]byte
	putRecordHeader(hdr[:], ts, templateID, len(raw))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.WriteString(raw); err != nil {
		w.err = err
		return err
	}
	w.m.WALAppendRecords.Inc()
	w.m.WALAppendBytes.Add(int64(recordOverhead + len(raw)))
	return nil
}

// appendBatch writes a batch of records back-to-back into the buffered
// writer under one lock acquisition and one poison check — the WAL half
// of group commit. It returns how many records were fully written; on a
// mid-record failure the writer poisons itself (the tail is torn) and the
// failing record plus everything after it is reported unwritten. The
// bytes produced are identical to len(recs) sequential append calls, so
// batch-written WALs replay with the unchanged reader.
func (w *walWriter) appendBatch(ts time.Time, recs []BatchRecord) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, fmt.Errorf("logstore: wal %s poisoned by earlier failure: %w", filepath.Base(w.path), w.err)
	}
	var hdr [recordOverhead]byte
	var bytes int64
	for i, r := range recs {
		putRecordHeader(hdr[:], ts, r.TemplateID, len(r.Raw))
		if _, err := w.w.Write(hdr[:]); err != nil {
			w.err = err
			w.noteAppendsLocked(int64(i), bytes)
			return i, err
		}
		if _, err := w.w.WriteString(r.Raw); err != nil {
			w.err = err
			w.noteAppendsLocked(int64(i), bytes)
			return i, err
		}
		bytes += int64(recordOverhead + len(r.Raw))
	}
	w.noteAppendsLocked(int64(len(recs)), bytes)
	return len(recs), nil
}

// noteAppendsLocked records n fully-written records totaling b bytes —
// one pair of atomic adds per batch, nothing per record.
func (w *walWriter) noteAppendsLocked(n, b int64) {
	w.m.WALAppendRecords.Add(n)
	w.m.WALAppendBytes.Add(b)
}

// poisoned reports whether an append failed partway, i.e. the stream tail
// may hold a torn record and the file must receive no further bytes.
func (w *walWriter) poisoned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

// poison marks the writer failed (a no-op when it already is), so a
// durability failure observed outside append — a policy fsync — also
// stops all further bytes to the file.
func (w *walWriter) poison(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

func (w *walWriter) flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		// Durability for this block comes from sealing it out of memory;
		// flushing could only push torn bytes at the tail, which replay
		// truncates anyway.
		return fmt.Errorf("logstore: wal %s poisoned by earlier failure: %w", filepath.Base(w.path), w.err)
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		w.m.WALFsyncErrors.Inc()
		return err
	}
	start := time.Now()
	err := w.f.Sync()
	w.m.WALFsyncSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		w.m.WALFsyncErrors.Inc()
		return err
	}
	w.m.WALFsyncs.Inc()
	return nil
}

func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.f.Close()
	}
	if err := w.w.Flush(); err != nil {
		return errors.Join(err, w.f.Close())
	}
	return w.f.Close()
}

// replayWAL loads a write-ahead log into a Topic, truncating a torn tail
// (the crash case) like DiskTopic replay does.
func replayWAL(fsys fsx.FS, path string, into *Topic, m *Metrics) error {
	if m == nil {
		m = &Metrics{}
	}
	f, err := fsys.Open(path)
	if err != nil {
		return fmt.Errorf("logstore: replay wal %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var goodBytes int64
	var recovered int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			m.RecoveredRecords.Add(recovered)
			return nil
		}
		if err != nil {
			if errors.Is(err, errTornRecord) {
				m.RecoveredRecords.Add(recovered)
				m.WALTornTails.Inc()
				return fsys.Truncate(path, goodBytes)
			}
			return fmt.Errorf("logstore: replay wal %s at %d: %w", path, goodBytes, err)
		}
		into.Append(rec.Time, rec.Raw, rec.TemplateID)
		recovered++
		goodBytes += n
	}
}
