package logstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bytebrain/internal/fsx"
)

// Store is the record-storage interface the service writes through. Topic
// (in-memory) and DiskTopic (persistent) both implement it.
type Store interface {
	// Append stores a record and returns its offset.
	Append(ts time.Time, raw string, templateID uint64) (int64, error)
	// AppendBatch group-commits a batch of records, all stamped with the
	// same timestamp, and returns the offset assigned to the first
	// record. It is the ingestion hot path: one lock acquisition, one
	// durability write and one index extension per batch instead of one
	// per record, with internal rotation (disk segments, hot blocks)
	// handled mid-batch. The store does not retain recs after the call.
	// On error a prefix of the batch may have been admitted and the
	// remainder was not — except on a sharded store routing across
	// shards, where each shard admits a prefix of ITS sub-batch, so the
	// surviving records may interleave with lost ones (see
	// ShardedStore.AppendBatch). An empty batch is a no-op returning
	// (0, nil).
	AppendBatch(ts time.Time, recs []BatchRecord) (int64, error)
	// Len returns the record count.
	Len() int
	// Bytes returns the total raw payload size.
	Bytes() int64
	// Get returns the record at offset.
	Get(offset int64) (Record, error)
	// GetBatch returns the records at offsets, in input order — the
	// offset-dense sample-fetch path. Stores that decode sealed blocks
	// group the offsets so each touched block is decoded once, not once
	// per offset. Any out-of-range offset fails the whole call.
	GetBatch(offsets []int64) ([]Record, error)
	// Scan visits records in [from, to) whose timestamp lies in tr until
	// fn returns false; to < 0 means end, the zero TimeRange visits all.
	Scan(from, to int64, tr TimeRange, fn func(Record) bool)
	// ByTemplate returns offsets of records with any of the template
	// IDs, ascending.
	ByTemplate(ids ...uint64) []int64
	// TemplateCounts returns record counts per template ID for records
	// in tr (zero range = everything).
	TemplateCounts(tr TimeRange) map[uint64]int
	// GroupedCounts returns per-template record counts plus up to
	// maxSamples example offsets each for records in tr, served from
	// indexes and sealed metadata without reading record payloads where
	// the range allows — the grouped-query pushdown path. Sealed blocks
	// outside tr are pruned by metadata time bounds; only blocks the
	// range straddles are decompressed, and within them only templates
	// whose own time bounds straddle the boundary.
	GroupedCounts(maxSamples int, tr TimeRange) map[uint64]TemplateGroup
	// Search returns offsets of records containing the exact token.
	Search(token string) []int64
	// SearchRange is Search bounded to records whose timestamp lies in
	// tr (zero range = everything). Sealed blocks outside tr are pruned
	// by metadata time bounds before the token filter runs.
	SearchRange(token string, tr TimeRange) []int64
	// ByTemplateRange is ByTemplate bounded to records whose timestamp
	// lies in tr (zero range = everything), with the same sealed-block
	// time pruning as SearchRange.
	ByTemplateRange(tr TimeRange, ids ...uint64) []int64
	// CountSince counts records at or after cut.
	CountSince(cut time.Time) int
	// Close releases resources; further Appends fail.
	Close() error
}

var (
	_ Store = (*memStore)(nil)
	_ Store = (*DiskTopic)(nil)
)

// memStore adapts Topic to the Store interface.
type memStore struct{ *Topic }

// NewStore returns an in-memory Store.
func NewStore(name string) Store { return memStore{NewTopic(name)} }

// Append implements Store.
func (m memStore) Append(ts time.Time, raw string, templateID uint64) (int64, error) {
	return m.Topic.Append(ts, raw, templateID), nil
}

// AppendBatch implements Store.
func (m memStore) AppendBatch(ts time.Time, recs []BatchRecord) (int64, error) {
	return m.Topic.AppendBatch(ts, recs), nil
}

// Close implements Store.
func (m memStore) Close() error { return nil }

// DiskTopic is a persistent Store: records append to length-prefixed
// segment files under a directory and are indexed in memory; Open replays
// the segments (tolerating a truncated tail from a crash) to recover.
type DiskTopic struct {
	dir string
	fs  fsx.FS

	mu      sync.Mutex
	mem     *Topic // authoritative in-memory indexes
	seg     fsx.File
	segW    *bufio.Writer
	segIdx  int
	segLen  int64
	closed  bool
	maxSeg  int64
	scratch []byte
}

const (
	segmentPrefix  = "segment-"
	segmentSuffix  = ".log"
	defaultMaxSeg  = 64 << 20  // rotate at 64 MiB
	recordOverhead = 8 + 8 + 4 // time + templateID + rawLen
)

// OpenDiskTopic opens (or creates) the persistent topic stored in dir,
// replaying existing segments. A torn final record — the crash case — is
// truncated away.
func OpenDiskTopic(dir string) (*DiskTopic, error) {
	return OpenDiskTopicFS(fsx.OS(), dir)
}

// OpenDiskTopicFS is OpenDiskTopic over an explicit filesystem seam.
func OpenDiskTopicFS(fsys fsx.FS, dir string) (*DiskTopic, error) {
	fsys = fsx.OrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: open %s: %w", dir, err)
	}
	t := &DiskTopic{
		dir:    dir,
		fs:     fsys,
		mem:    NewTopic(filepath.Base(dir)),
		maxSeg: defaultMaxSeg,
	}
	segs, err := t.segmentFiles()
	if err != nil {
		return nil, err
	}
	for i, path := range segs {
		last := i == len(segs)-1
		if err := t.replaySegment(path, last); err != nil {
			return nil, err
		}
	}
	if len(segs) > 0 {
		t.segIdx = len(segs) - 1
	}
	if err := t.openSegmentLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *DiskTopic) segmentFiles() ([]string, error) {
	entries, err := t.fs.ReadDir(t.dir)
	if err != nil {
		return nil, fmt.Errorf("logstore: list %s: %w", t.dir, err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if strings.HasPrefix(name, shardDirPrefix) {
				// Shard subdirectories: this topic was persisted sharded
				// (TopicShards > 1); opening it unsharded would hide
				// every sharded record — refuse instead.
				return nil, fmt.Errorf("logstore: open %s: found shard directory %s; this topic was persisted sharded (restore the shard count, or use a fresh data dir)", t.dir, name)
			}
			continue
		}
		if (strings.HasPrefix(name, sealedPrefix) && strings.HasSuffix(name, sealedSuffix)) ||
			(strings.HasPrefix(name, walPrefix) && strings.HasSuffix(name, walSuffix)) {
			// Compacting-store files (sealed segment or write-ahead
			// log): this topic was persisted with SegmentBytes set.
			// Opening it as a plain disk topic would hide those
			// records — refuse instead.
			return nil, fmt.Errorf("logstore: open %s: found compacting-store file %s; this topic was persisted with the segment store (set SegmentBytes, or use a fresh data dir)", t.dir, name)
		}
		if strings.HasPrefix(name, segmentPrefix) && strings.HasSuffix(name, segmentSuffix) {
			segs = append(segs, filepath.Join(t.dir, name))
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// replaySegment loads one segment into the in-memory indexes. When
// tolerateTail is true, a truncated final record is cut off (crash
// recovery); anywhere else it is corruption.
func (t *DiskTopic) replaySegment(path string, tolerateTail bool) error {
	f, err := t.fs.Open(path)
	if err != nil {
		return fmt.Errorf("logstore: replay %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var goodBytes int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if tolerateTail && errors.Is(err, errTornRecord) {
				// Crash mid-append: truncate the torn tail.
				return t.fs.Truncate(path, goodBytes)
			}
			return fmt.Errorf("logstore: replay %s at %d: %w", path, goodBytes, err)
		}
		t.mem.Append(rec.Time, rec.Raw, rec.TemplateID)
		goodBytes += n
	}
}

var errTornRecord = errors.New("logstore: torn record")

// putRecordHeader fills the length-prefixed record header shared by
// DiskTopic segments and compacting-store WALs; readRecord inverts it.
func putRecordHeader(hdr []byte, ts time.Time, templateID uint64, rawLen int) {
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(ts.UnixNano()))
	binary.LittleEndian.PutUint64(hdr[8:16], templateID)
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(rawLen))
}

// readRecord reads one length-prefixed record: 8-byte unix-nano time,
// 8-byte template ID, 4-byte raw length, raw bytes.
func readRecord(r *bufio.Reader) (Record, int64, error) {
	var hdr [recordOverhead]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, errTornRecord
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, errTornRecord
	}
	ts := int64(binary.LittleEndian.Uint64(hdr[0:8]))
	tmpl := binary.LittleEndian.Uint64(hdr[8:16])
	rawLen := binary.LittleEndian.Uint32(hdr[16:20])
	if rawLen > 64<<20 {
		return Record{}, 0, fmt.Errorf("logstore: implausible record length %d", rawLen)
	}
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Record{}, 0, errTornRecord
	}
	return Record{Time: time.Unix(0, ts), Raw: string(raw), TemplateID: tmpl},
		int64(recordOverhead) + int64(rawLen), nil
}

func (t *DiskTopic) openSegmentLocked() error {
	path := filepath.Join(t.dir, fmt.Sprintf("%s%06d%s", segmentPrefix, t.segIdx, segmentSuffix))
	f, err := t.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("logstore: stat segment: %w", err)
	}
	t.seg = f
	t.segW = bufio.NewWriterSize(f, 256<<10)
	t.segLen = st.Size()
	return nil
}

// Append implements Store.
func (t *DiskTopic) Append(ts time.Time, raw string, templateID uint64) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, errors.New("logstore: topic closed")
	}
	if t.segLen >= t.maxSeg {
		if err := t.rotateLocked(); err != nil {
			return 0, err
		}
	}
	t.scratch = t.scratch[:0]
	var hdr [recordOverhead]byte
	putRecordHeader(hdr[:], ts, templateID, len(raw))
	t.scratch = append(t.scratch, hdr[:]...)
	t.scratch = append(t.scratch, raw...)
	if _, err := t.segW.Write(t.scratch); err != nil {
		return 0, fmt.Errorf("logstore: append: %w", err)
	}
	t.segLen += int64(len(t.scratch))
	return t.mem.Append(ts, raw, templateID), nil
}

// batchScratchFlush bounds the encode scratch of AppendBatch: once this
// many bytes accumulate they are handed to the buffered writer and the
// scratch is reset, so a huge one-off batch cannot grow the topic's
// long-lived scratch buffer to a whole segment. Matches the bufio writer
// size, so the flush granularity costs no extra syscalls.
const batchScratchFlush = 256 << 10

// AppendBatch implements Store: the whole batch is encoded into the
// scratch buffer and handed to the buffered segment writer in one Write
// per scratch run (rotation mid-batch, or the scratch filling, starts a
// new run), then admitted to the in-memory indexes under a single Topic
// lock. On a write or rotation failure the fully-written prefix is
// admitted and the error returned; the torn tail, if any, is truncated
// by replay exactly as for Append.
func (t *DiskTopic) AppendBatch(ts time.Time, recs []BatchRecord) (int64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, errors.New("logstore: topic closed")
	}
	admitted := 0 // records fully written to the segment writer
	pending := 0  // records encoded in scratch, not yet written
	t.scratch = t.scratch[:0]
	flush := func() error {
		if len(t.scratch) == 0 {
			return nil
		}
		if _, err := t.segW.Write(t.scratch); err != nil {
			return fmt.Errorf("logstore: append: %w", err)
		}
		t.segLen += int64(len(t.scratch))
		t.scratch = t.scratch[:0]
		admitted += pending
		pending = 0
		return nil
	}
	admit := func(err error) (int64, error) {
		first := t.mem.AppendBatch(ts, recs[:admitted])
		return first, err
	}
	var hdr [recordOverhead]byte
	for _, r := range recs {
		if t.segLen+int64(len(t.scratch)) >= t.maxSeg {
			if err := flush(); err != nil {
				return admit(err)
			}
			if err := t.rotateLocked(); err != nil {
				return admit(err)
			}
		} else if len(t.scratch) >= batchScratchFlush {
			if err := flush(); err != nil {
				return admit(err)
			}
		}
		putRecordHeader(hdr[:], ts, r.TemplateID, len(r.Raw))
		t.scratch = append(t.scratch, hdr[:]...)
		t.scratch = append(t.scratch, r.Raw...)
		pending++
	}
	if err := flush(); err != nil {
		return admit(err)
	}
	return admit(nil)
}

func (t *DiskTopic) rotateLocked() error {
	if err := t.segW.Flush(); err != nil {
		return err
	}
	if err := t.seg.Close(); err != nil {
		return err
	}
	t.segIdx++
	return t.openSegmentLocked()
}

// Sync flushes buffered appends to the OS and the file system.
func (t *DiskTopic) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if err := t.segW.Flush(); err != nil {
		return err
	}
	return t.seg.Sync()
}

// Close implements Store.
func (t *DiskTopic) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.segW.Flush(); err != nil {
		return err
	}
	return t.seg.Close()
}

// Read-side methods delegate to the in-memory indexes.

// Len implements Store.
func (t *DiskTopic) Len() int { return t.mem.Len() }

// Bytes implements Store.
func (t *DiskTopic) Bytes() int64 { return t.mem.Bytes() }

// Get implements Store.
func (t *DiskTopic) Get(offset int64) (Record, error) { return t.mem.Get(offset) }

// GetBatch implements Store.
func (t *DiskTopic) GetBatch(offsets []int64) ([]Record, error) { return t.mem.GetBatch(offsets) }

// Scan implements Store.
func (t *DiskTopic) Scan(from, to int64, tr TimeRange, fn func(Record) bool) {
	t.mem.Scan(from, to, tr, fn)
}

// ByTemplate implements Store.
func (t *DiskTopic) ByTemplate(ids ...uint64) []int64 { return t.mem.ByTemplate(ids...) }

// ByTemplateRange implements Store.
func (t *DiskTopic) ByTemplateRange(tr TimeRange, ids ...uint64) []int64 {
	return t.mem.ByTemplateRange(tr, ids...)
}

// TemplateCounts implements Store.
func (t *DiskTopic) TemplateCounts(tr TimeRange) map[uint64]int { return t.mem.TemplateCounts(tr) }

// GroupedCounts implements Store.
func (t *DiskTopic) GroupedCounts(maxSamples int, tr TimeRange) map[uint64]TemplateGroup {
	return t.mem.GroupedCounts(maxSamples, tr)
}

// Search implements Store.
func (t *DiskTopic) Search(token string) []int64 { return t.mem.Search(token) }

// SearchRange implements Store.
func (t *DiskTopic) SearchRange(token string, tr TimeRange) []int64 {
	return t.mem.SearchRange(token, tr)
}

// CountSince implements Store.
func (t *DiskTopic) CountSince(cut time.Time) int { return t.mem.CountSince(cut) }

// DiskInternal persists model snapshots as numbered files in a directory.
// Write indexes only ever grow — after pruning (SetRetention), the next
// index continues from the highest ever written, never reusing a number,
// so a checkpoint can never be silently overwritten by a later snapshot.
type DiskInternal struct {
	dir    string
	fs     fsx.FS
	mu     sync.Mutex
	idxs   []int // write indexes present on disk, ascending
	next   int   // strictly greater than every index ever written
	retain Retention
}

func snapshotPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("model-%06d.bin", idx))
}

// snapshotTmpSuffix marks an in-progress snapshot write; files carrying
// it are torn leftovers after a crash and are removed on open.
const snapshotTmpSuffix = ".tmp"

// OpenDiskInternal opens (or creates) the snapshot directory and indexes
// existing snapshots.
func OpenDiskInternal(dir string) (*DiskInternal, error) {
	return OpenDiskInternalFS(fsx.OS(), dir)
}

// OpenDiskInternalFS is OpenDiskInternal over an explicit filesystem
// seam. Stale snapshot temp files (a crash mid-checkpoint) are removed
// rather than accumulating forever.
func OpenDiskInternalFS(fsys fsx.FS, dir string) (*DiskInternal, error) {
	fsys = fsx.OrOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: open internal %s: %w", dir, err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	in := &DiskInternal{dir: dir, fs: fsys}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), snapshotTmpSuffix) {
			// Torn checkpoint write from a crash: never a valid snapshot.
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("logstore: open internal: remove stale %s: %w", e.Name(), err)
			}
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "model-%d.bin", &idx); err == nil &&
			strings.HasPrefix(e.Name(), "model-") && strings.HasSuffix(e.Name(), ".bin") {
			in.idxs = append(in.idxs, idx)
			if idx >= in.next {
				in.next = idx + 1
			}
		}
	}
	sort.Ints(in.idxs)
	return in, nil
}

// SetRetention implements SnapshotStore: installs the policy and prunes
// existing on-disk snapshots immediately.
func (in *DiskInternal) SetRetention(r Retention) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.retain = r
	in.pruneLocked()
}

func (in *DiskInternal) pruneLocked() {
	kept := in.idxs[:0]
	for _, idx := range in.idxs {
		if in.retain.keep(idx, in.next) {
			kept = append(kept, idx)
			continue
		}
		// A failed remove keeps the index tracked; the next prune
		// retries instead of leaking the file forever.
		if err := in.fs.Remove(snapshotPath(in.dir, idx)); err != nil && !os.IsNotExist(err) {
			kept = append(kept, idx)
		}
	}
	in.idxs = kept
}

// AppendSnapshot writes one model snapshot file atomically (temp file,
// fsync, rename, directory fsync — a crash leaves either the previous
// checkpoint intact or the new one complete, never a torn file), then
// applies retention.
func (in *DiskInternal) AppendSnapshot(ts time.Time, data []byte) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	path := snapshotPath(in.dir, in.next)
	tmp := path + snapshotTmpSuffix
	f, err := in.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("logstore: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		in.fs.Remove(tmp)
		return fmt.Errorf("logstore: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		in.fs.Remove(tmp)
		return fmt.Errorf("logstore: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		in.fs.Remove(tmp)
		return fmt.Errorf("logstore: snapshot close: %w", err)
	}
	if err := in.fs.Rename(tmp, path); err != nil {
		in.fs.Remove(tmp)
		return fmt.Errorf("logstore: snapshot rename: %w", err)
	}
	if err := in.fs.SyncDir(in.dir); err != nil {
		return fmt.Errorf("logstore: snapshot sync dir: %w", err)
	}
	in.idxs = append(in.idxs, in.next)
	in.next++
	in.pruneLocked()
	return nil
}

// LatestSnapshot returns the newest snapshot bytes.
func (in *DiskInternal) LatestSnapshot() ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.idxs) == 0 {
		return nil, ErrNoSnapshot
	}
	path := snapshotPath(in.dir, in.idxs[len(in.idxs)-1])
	data, err := in.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("logstore: read snapshot: %w", err)
	}
	return data, nil
}

// QuarantineLatest implements SnapshotStore: it retires the newest
// snapshot (renaming the file to .bad on disk) so LatestSnapshot falls
// back to the previous checkpoint — the recovery path for a snapshot
// that no longer unmarshals. It reports ErrNoSnapshot when none is
// retained.
func (in *DiskInternal) QuarantineLatest() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.idxs) == 0 {
		return ErrNoSnapshot
	}
	idx := in.idxs[len(in.idxs)-1]
	path := snapshotPath(in.dir, idx)
	if err := in.fs.Rename(path, path+".bad"); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("logstore: quarantine snapshot: %w", err)
	}
	in.idxs = in.idxs[:len(in.idxs)-1]
	return nil
}

// Snapshots returns the retained snapshot count.
func (in *DiskInternal) Snapshots() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.idxs)
}
