package logstore

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"os"

	"bytebrain/internal/fsx"
)

// failFlushSink makes the final buffered flush fail with a
// recognizable error, independent of the file descriptor's own state.
type failFlushSink struct {
	walSink
}

func (f *failFlushSink) Flush() error { return errInjected }

// TestWALCloseJoinsFlushAndCloseErrors is the regression for
// walWriter.close dropping the file-close error when the final flush
// also failed: both failures must reach the caller.
func TestWALCloseJoinsFlushAndCloseErrors(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(fsx.OS(), filepath.Join(dir, walPrefix+"000000"+walSuffix), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(time.Unix(0, 0), "buffered, never flushed", 1); err != nil {
		t.Fatal(err)
	}
	// Arm a failing flush AND yank the descriptor: close must now fail
	// both steps and report both, not just the first.
	w.w = &failFlushSink{walSink: w.w}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	err = w.close()
	if err == nil {
		t.Fatal("close over a dead descriptor returned nil")
	}
	if !strings.Contains(err.Error(), errInjected.Error()) {
		t.Fatalf("close error %q does not surface the flush failure", err)
	}
	if !strings.Contains(err.Error(), "file already closed") {
		t.Fatalf("close error %q does not surface the file-close failure", err)
	}
}

// TestSealSurfacesWALCleanupFailure is the regression for sealOne
// silently discarding WAL teardown failures after a successful seal: a
// failed remove leaves a stray WAL that recovery must handle, so it has
// to surface through SealError while an operator can act on it.
func TestSealSurfacesWALCleanupFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillCompacting(t, s, 5, 0)
	// Repoint the hot block's WAL path at a non-empty directory:
	// sealing succeeds, but the post-seal os.Remove cannot.
	blocker := filepath.Join(dir, "blocker")
	if err := os.MkdirAll(filepath.Join(blocker, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.blocks[len(s.blocks)-1].walPath = blocker
	s.mu.Unlock()

	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	if err := s.SealError(); err == nil || !strings.Contains(err.Error(), "remove sealed block") {
		t.Fatalf("SealError = %v, want the WAL remove failure surfaced", err)
	}
	// The records themselves are durable regardless.
	st := s.SegmentStats()
	if st.Segments != 1 || st.SealedRecords != 5 {
		t.Fatalf("seal did not complete: %+v", st)
	}
}
