package logstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bytebrain/internal/segment"
)

// tornSink wraps a block's live walSink and fails one WriteString halfway
// through, flushing the torn prefix to disk — the exact shape of a
// partial write caught by a device error: the WAL file ends in a record
// header plus half a payload. countdown > 0 defers the tear to the
// countdown-th record write, so a tear can be injected in the middle of
// a group-committed batch.
type tornSink struct {
	inner     walSink
	failNext  bool
	countdown int
}

var errInjected = errors.New("injected write failure")

func (t *tornSink) Write(p []byte) (int, error) { return t.inner.Write(p) }

func (t *tornSink) WriteString(s string) (int, error) {
	if t.countdown > 0 {
		t.countdown--
		if t.countdown == 0 {
			t.failNext = true
		}
	}
	if t.failNext {
		t.failNext = false
		n, _ := t.inner.WriteString(s[:len(s)/2])
		t.inner.Flush() // the torn prefix reaches the file, as in a real tear
		return n, errInjected
	}
	return t.inner.WriteString(s)
}

func (t *tornSink) Flush() error { return t.inner.Flush() }

// injectTornWrite arms the live hot block's WAL to tear on the next
// append.
func injectTornWrite(s *CompactingStore) {
	injectTornWriteAt(s, 1)
}

// injectTornWriteAt arms the live hot block's WAL to tear on the k-th
// record written from now on (k = 1 tears the very next one).
func injectTornWriteAt(s *CompactingStore, k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.blocks[len(s.blocks)-1].wal
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w = &tornSink{inner: w.w, countdown: k}
}

// TestWALTornWritePoisonsAndRotates is the satellite-bug regression: a
// mid-record WAL write failure must not let later admitted records land
// after the torn record, where replay's torn-tail truncation would
// silently discard them. The store must poison the WAL, rotate, and
// recover every admitted record.
func TestWALTornWritePoisonsAndRotates(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 5, 0)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Stop the sealer before the fault so recovery below exercises the
	// WAL-replay path, not a sealed segment.
	close(s.doneCh)
	s.sealWG.Wait()

	injectTornWrite(s)
	if _, err := s.Append(ts(5), "this record is torn midway through its payload", 9); err == nil {
		t.Fatal("append over a torn WAL write must fail")
	}
	if s.Len() != 5 {
		t.Fatalf("failed append was admitted: Len = %d, want 5", s.Len())
	}

	// Subsequent appends must succeed (fresh block + fresh WAL) and keep
	// offsets dense. Flush still flushes the healthy WAL but must report
	// that the poisoned block's records await their seal (the sealer is
	// stopped here, so the gap is real).
	fillCompacting(t, s, 4, 5)
	if err := s.Flush(); err == nil || !strings.Contains(err.Error(), "awaiting seal") {
		t.Fatalf("Flush over an unsealed poisoned block = %v, want pending-seal report", err)
	}

	// The poisoned WAL must be dead: nothing may be appended after its
	// torn record, in memory or on disk.
	s.mu.Lock()
	poisonedWAL := s.blocks[0].wal
	poisonedPath := s.blocks[0].walPath
	if !s.blocks[0].sealing {
		s.mu.Unlock()
		t.Fatal("poisoned block not handed to the sealer")
	}
	s.mu.Unlock()
	if err := poisonedWAL.append(ts(99), "late write", 1); err == nil {
		t.Fatal("poisoned WAL accepted another append")
	}

	// "Crash": abandon the store. The poisoned WAL file ends in the torn
	// record; the four post-failure records live in the next WAL file.
	if fi, err := os.Stat(poisonedPath); err != nil || fi.Size() <= 5*(recordOverhead) {
		t.Fatalf("poisoned WAL missing its flushed records: %v %v", fi, err)
	}

	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("recovered %d records, want all 9 admitted", s2.Len())
	}
	for i := int64(0); i < 9; i++ {
		r, err := s2.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		want := fmt.Sprintf("worker %d finished job job-%d in 12ms", i%7, i)
		if r.Raw != want {
			t.Fatalf("Get(%d) = %q, want %q", i, r.Raw, want)
		}
	}
	// The torn record itself must be gone.
	if hits := s2.Search("torn"); len(hits) != 0 {
		t.Fatalf("torn record resurfaced: %v", hits)
	}
}

// TestWALTornWriteSealedRecovery covers the live-process healing path:
// after a torn write the poisoned block seals from memory, replacing the
// dead WAL with a durable segment.
func TestWALTornWriteSealedRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 5, 0)
	injectTornWrite(s)
	if _, err := s.Append(ts(5), "torn", 9); err == nil {
		t.Fatal("append over a torn WAL write must fail")
	}
	fillCompacting(t, s, 4, 5)
	s.WaitIdle()
	if err := s.SealError(); err != nil {
		t.Fatal(err)
	}
	st := s.SegmentStats()
	if st.Segments != 1 || st.SealedRecords != 5 {
		t.Fatalf("poisoned block not sealed from memory: %+v", st)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("recovered %d records, want 9", s2.Len())
	}
}

// TestWALTornWriteSurvivesImmediateClose: Close racing the poisoning
// append must still seal the poisoned block (its admitted records may
// exist nowhere durable — the WAL can no longer flush), not abandon it.
// The shutdown drain in sealLoop makes this deterministic.
func TestWALTornWriteSurvivesImmediateClose(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 5, 0)
	injectTornWrite(s)
	if _, err := s.Append(ts(5), "torn", 9); err == nil {
		t.Fatal("append over a torn WAL write must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st := s.SegmentStats()
	if st.Segments != 1 || st.SealedRecords != 5 {
		t.Fatalf("Close abandoned the poisoned block: %+v", st)
	}
	s2, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("recovered %d records, want 5", s2.Len())
	}
}

// TestWALTornWriteCloseReportsUnsealed: when the poisoned block's rescue
// seal ALSO fails (here: an unavailable codec standing in for a full
// disk), Close must report the data loss instead of returning nil.
func TestWALTornWriteCloseReportsUnsealed(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30, Codec: segment.CodecZstd})
	if err != nil {
		t.Fatal(err)
	}
	fillCompacting(t, s, 5, 0)
	injectTornWrite(s)
	if _, err := s.Append(ts(5), "torn", 9); err == nil {
		t.Fatal("append over a torn WAL write must fail")
	}
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("Close with an unsealable poisoned block = %v, want data-loss report", err)
	}
}

// TestWALTornFirstRecordDropsEmptyBlock: when the very first append of a
// block tears, the block holds nothing worth sealing; it must be dropped
// with its WAL and ingestion must continue cleanly.
func TestWALTornFirstRecordDropsEmptyBlock(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenCompacting("t", CompactConfig{Dir: dir, SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	injectTornWrite(s)
	if _, err := s.Append(ts(0), "torn first record", 1); err == nil {
		t.Fatal("append over a torn WAL write must fail")
	}
	fillCompacting(t, s, 3, 0)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.mu.Lock()
	blocks := len(s.blocks)
	s.mu.Unlock()
	if blocks != 1 {
		t.Fatalf("empty poisoned block not dropped: %d blocks", blocks)
	}
	// Its torn WAL file must be gone too.
	wals, err := filepath.Glob(filepath.Join(dir, walPrefix+"*"+walSuffix))
	if err != nil || len(wals) != 1 {
		t.Fatalf("WAL files = %v, %v; want exactly the live block's", wals, err)
	}
}

// TestSealToleratesSealedTail is the satellite-bug regression for
// CompactingStore.Seal dereferencing a nil hot pointer when the tail
// block is already sealed (a failed rotation path can leave it so).
func TestSealToleratesSealedTail(t *testing.T) {
	s, err := OpenCompacting("t", CompactConfig{SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillCompacting(t, s, 10, 0)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.WaitIdle()
	// Simulate the failed-rotation aftermath: drop the fresh hot tail so
	// the last block is the sealed one (hot == nil).
	s.mu.Lock()
	if last := s.blocks[len(s.blocks)-1]; last.hot == nil || last.hot.Len() != 0 {
		s.mu.Unlock()
		t.Fatalf("setup: expected an empty hot tail")
	}
	s.blocks = s.blocks[:len(s.blocks)-1]
	s.mu.Unlock()

	if err := s.Seal(); err != nil { // must not panic
		t.Fatal(err)
	}
	// The append invariant is restored: new records land normally.
	off, err := s.Append(ts(10), "after sealed tail", 2)
	if err != nil || off != 10 {
		t.Fatalf("Append after sealed tail: %d, %v", off, err)
	}
	if s.Len() != 11 {
		t.Fatalf("Len = %d, want 11", s.Len())
	}
}
