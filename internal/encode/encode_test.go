package encode

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	prop := func(s string) bool { return Hash64(s) == Hash64(s) }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64KnownVectors(t *testing.T) {
	// FNV-1a 64 reference values.
	tests := []struct {
		in   string
		want uint64
	}{
		{"", 0xcbf29ce484222325},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, tt := range tests {
		if got := Hash64(tt.in); got != tt.want {
			t.Errorf("Hash64(%q) = %#x, want %#x", tt.in, got, tt.want)
		}
	}
}

func TestHash64NoCollisionsOnCorpus(t *testing.T) {
	// Injectivity on a realistic token universe (the practical claim
	// behind Eq. 1).
	seen := make(map[uint64]string)
	for i := 0; i < 200000; i++ {
		tok := fmt.Sprintf("token-%d", i)
		h := Hash64(tok)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: %q and %q -> %#x", prev, tok, h)
		}
		seen[h] = tok
	}
}

func TestHashEncoderEncode(t *testing.T) {
	var e HashEncoder
	toks := []string{"alpha", "beta", "alpha"}
	got := e.Encode(nil, toks)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != got[2] {
		t.Error("same token encoded differently")
	}
	if got[0] == got[1] {
		t.Error("distinct tokens collided in tiny corpus")
	}
	if got[0] != e.EncodeToken("alpha") {
		t.Error("Encode and EncodeToken disagree")
	}
}

func TestHashEncoderAppendsToDst(t *testing.T) {
	var e HashEncoder
	dst := e.Encode(nil, []string{"a"})
	dst = e.Encode(dst, []string{"b"})
	if len(dst) != 2 {
		t.Fatalf("len = %d, want 2", len(dst))
	}
	if dst[0] != Hash64("a") || dst[1] != Hash64("b") {
		t.Error("append order wrong")
	}
}

func TestOrdinalEncoderAssignsSequentially(t *testing.T) {
	e := NewOrdinalEncoder()
	got := e.Encode(nil, []string{"x", "y", "x", "z"})
	want := []uint64{0, 1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ordinal[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d, want 3", e.Len())
	}
}

func TestOrdinalEncoderRoundTrip(t *testing.T) {
	e := NewOrdinalEncoder()
	id := e.EncodeToken("hello")
	tok, ok := e.Token(id)
	if !ok || tok != "hello" {
		t.Errorf("Token(%d) = %q, %v", id, tok, ok)
	}
	if _, ok := e.Token(999); ok {
		t.Error("Token(999) reported ok for unassigned id")
	}
}

func TestOrdinalEncoderDictBytesGrowsWithTokens(t *testing.T) {
	e := NewOrdinalEncoder()
	if e.DictBytes() != 0 {
		t.Error("empty dictionary has nonzero size")
	}
	e.EncodeToken("abcd")
	if got := e.DictBytes(); got != 12 {
		t.Errorf("DictBytes = %d, want 12 (4 token bytes + 8 id bytes)", got)
	}
	before := e.DictBytes()
	e.EncodeToken("abcd") // repeat: no growth
	if e.DictBytes() != before {
		t.Error("repeated token grew dictionary")
	}
	e.EncodeToken("efgh12")
	if e.DictBytes() <= before {
		t.Error("new token did not grow dictionary")
	}
}

func TestOrdinalEncoderConcurrent(t *testing.T) {
	e := NewOrdinalEncoder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e.EncodeToken(fmt.Sprintf("tok%d", i%50))
			}
		}()
	}
	wg.Wait()
	if e.Len() != 50 {
		t.Errorf("Len = %d, want 50", e.Len())
	}
	// Stability: same token, same id across goroutine interleavings.
	a := e.EncodeToken("tok7")
	b := e.EncodeToken("tok7")
	if a != b {
		t.Error("ordinal id not stable")
	}
}

func BenchmarkHashEncode(b *testing.B) {
	var e HashEncoder
	toks := []string{"Receiving", "block", "blk_-1608999687919862906", "src", "/10.250.19.102", "54106"}
	dst := make([]uint64, 0, len(toks))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = e.Encode(dst[:0], toks)
	}
}

func BenchmarkOrdinalEncode(b *testing.B) {
	e := NewOrdinalEncoder()
	toks := []string{"Receiving", "block", "blk_-1608999687919862906", "src", "/10.250.19.102", "54106"}
	dst := make([]uint64, 0, len(toks))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = e.Encode(dst[:0], toks)
	}
}
