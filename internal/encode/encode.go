// Package encode maps tokens to 64-bit integers (§4.1.4 of the paper).
//
// The production scheme is dictionary-free hash encoding: a deterministic
// 64-bit hash (FNV-1a) applied independently per token. Using the same hash
// offline and online removes the need to persist token↔ID mappings, and the
// per-token independence is what makes preprocessing embarrassingly
// parallel. The collision probability follows the birthday bound of Eq. 1:
// ~2.7e-6 for ten million distinct tokens.
//
// Ordinal encoding — a growing token→ID dictionary — is provided as the
// ablation baseline (Fig. 9 "ordinal encoding", Fig. 10 dictionary-size
// study).
package encode

import "sync"

// Encoder converts token strings to 64-bit codes. Implementations document
// their own concurrency guarantees.
type Encoder interface {
	// Encode appends the codes of tokens to dst and returns it. Callers
	// may pass dst == nil.
	Encode(dst []uint64, tokens []string) []uint64
	// EncodeToken returns the code of a single token.
	EncodeToken(token string) uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash64 returns the FNV-1a 64-bit hash of s. It is the deterministic hash
// shared between offline training and online matching.
func Hash64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashEncoder is the dictionary-free hash encoder. The zero value is ready
// to use and safe for concurrent use: it holds no state at all.
type HashEncoder struct{}

// Encode implements Encoder.
func (HashEncoder) Encode(dst []uint64, tokens []string) []uint64 {
	if cap(dst)-len(dst) < len(tokens) {
		grown := make([]uint64, len(dst), len(dst)+len(tokens))
		copy(grown, dst)
		dst = grown
	}
	for _, t := range tokens {
		dst = append(dst, Hash64(t))
	}
	return dst
}

// EncodeToken implements Encoder.
func (HashEncoder) EncodeToken(token string) uint64 { return Hash64(token) }

// OrdinalEncoder assigns consecutive IDs to tokens in first-seen order and
// must persist its dictionary to decode or re-encode later — the storage
// cost the paper's hash encoding eliminates. It is safe for concurrent use.
type OrdinalEncoder struct {
	mu   sync.Mutex
	ids  map[string]uint64
	toks []string
}

// NewOrdinalEncoder returns an empty ordinal encoder.
func NewOrdinalEncoder() *OrdinalEncoder {
	return &OrdinalEncoder{ids: make(map[string]uint64)}
}

// Encode implements Encoder.
func (e *OrdinalEncoder) Encode(dst []uint64, tokens []string) []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range tokens {
		dst = append(dst, e.lookupLocked(t))
	}
	return dst
}

// EncodeToken implements Encoder.
func (e *OrdinalEncoder) EncodeToken(token string) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lookupLocked(token)
}

func (e *OrdinalEncoder) lookupLocked(t string) uint64 {
	if id, ok := e.ids[t]; ok {
		return id
	}
	id := uint64(len(e.toks))
	e.ids[t] = id
	e.toks = append(e.toks, t)
	return id
}

// Token returns the token string for id, inverting EncodeToken. The second
// result is false when id was never assigned.
func (e *OrdinalEncoder) Token(id uint64) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id >= uint64(len(e.toks)) {
		return "", false
	}
	return e.toks[id], true
}

// Len returns the number of distinct tokens seen.
func (e *OrdinalEncoder) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.toks)
}

// DictBytes returns the serialized size of the token→ID dictionary: for
// each entry, the token bytes plus an 8-byte ID. This is the storage
// overhead hash encoding avoids, measured in the Fig. 10 experiment.
func (e *OrdinalEncoder) DictBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var n int64
	for _, t := range e.toks {
		n += int64(len(t)) + 8
	}
	return n
}
