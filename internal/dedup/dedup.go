// Package dedup collapses duplicate log records while keeping occurrence
// counts (§4.1.3 of the paper).
//
// Cloud log streams are extremely repetitive — after common-variable
// replacement even more so (Fig. 4) — and every later stage (grouping,
// clustering, saturation) only needs the distinct token sequences plus how
// often each occurred. Deduplication therefore sits between preprocessing
// and initial grouping and is the single largest efficiency lever in the
// ablation study (Fig. 9).
package dedup

import "bytebrain/internal/encode"

// Unique is one distinct (post-preprocessing) log record.
type Unique struct {
	// Tokens is the token sequence of the record.
	Tokens []string
	// Enc is the 64-bit encoding of Tokens, parallel to it.
	Enc []uint64
	// Count is how many raw records collapsed into this entry.
	Count int
	// First is the index (into the raw input) of the first occurrence.
	First int
}

// Result maps between the raw stream and its distinct records.
type Result struct {
	// Uniques are the distinct records in first-seen order.
	Uniques []*Unique
	// Assign[i] is the index into Uniques of raw record i.
	Assign []int
}

// Collapse deduplicates tokenized records, encoding each distinct record
// once with enc. Records hash by their full token-vector content, so two
// records are merged only when every token matches.
func Collapse(records [][]string, enc encode.Encoder) Result {
	return CollapseWeighted(records, nil, enc)
}

// CollapseWeighted is Collapse for pre-aggregated inputs: weights[i] is
// how many raw records the i-th tokenized record already represents (nil
// means 1 each). It enables raw-line deduplication before the expensive
// preprocessing stage while keeping exact occurrence counts.
func CollapseWeighted(records [][]string, weights []int, enc encode.Encoder) Result {
	type slot struct{ idx int }
	// Key on the joined token text. Token strings cannot contain the
	// separator byte \x00 in practice (it is not produced by tokenizers),
	// and even if they did the worst case is a conservative merge miss.
	index := make(map[string]slot, len(records)/4+1)
	res := Result{
		Uniques: make([]*Unique, 0, len(records)/4+1),
		Assign:  make([]int, len(records)),
	}
	var keyBuf []byte
	for i, toks := range records {
		w := 1
		if weights != nil {
			w = weights[i]
		}
		keyBuf = keyBuf[:0]
		for _, t := range toks {
			keyBuf = append(keyBuf, t...)
			keyBuf = append(keyBuf, 0)
		}
		if s, ok := index[string(keyBuf)]; ok {
			res.Uniques[s.idx].Count += w
			res.Assign[i] = s.idx
			continue
		}
		u := &Unique{
			Tokens: toks,
			Enc:    enc.Encode(make([]uint64, 0, len(toks)), toks),
			Count:  w,
			First:  i,
		}
		index[string(keyBuf)] = slot{idx: len(res.Uniques)}
		res.Assign[i] = len(res.Uniques)
		res.Uniques = append(res.Uniques, u)
	}
	return res
}

// Passthrough wraps every record as its own Unique without merging. It is
// the "w/o deduplication" ablation: downstream stages see the full
// duplicated stream.
func Passthrough(records [][]string, enc encode.Encoder) Result {
	res := Result{
		Uniques: make([]*Unique, len(records)),
		Assign:  make([]int, len(records)),
	}
	for i, toks := range records {
		res.Uniques[i] = &Unique{
			Tokens: toks,
			Enc:    enc.Encode(make([]uint64, 0, len(toks)), toks),
			Count:  1,
			First:  i,
		}
		res.Assign[i] = i
	}
	return res
}

// TotalCount returns the sum of occurrence counts, which must equal the raw
// record count for any Result produced by Collapse or Passthrough.
func (r Result) TotalCount() int {
	n := 0
	for _, u := range r.Uniques {
		n += u.Count
	}
	return n
}
