package dedup

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bytebrain/internal/encode"
)

func toks(ss ...string) []string { return ss }

func TestCollapseMergesExactDuplicates(t *testing.T) {
	recs := [][]string{
		toks("a", "b", "c"),
		toks("a", "b", "d"),
		toks("a", "b", "c"),
		toks("a", "b", "c"),
	}
	res := Collapse(recs, encode.HashEncoder{})
	if len(res.Uniques) != 2 {
		t.Fatalf("uniques = %d, want 2", len(res.Uniques))
	}
	if res.Uniques[0].Count != 3 || res.Uniques[1].Count != 1 {
		t.Errorf("counts = %d,%d want 3,1", res.Uniques[0].Count, res.Uniques[1].Count)
	}
	wantAssign := []int{0, 1, 0, 0}
	if !reflect.DeepEqual(res.Assign, wantAssign) {
		t.Errorf("assign = %v, want %v", res.Assign, wantAssign)
	}
	if res.Uniques[0].First != 0 || res.Uniques[1].First != 1 {
		t.Errorf("first occurrences = %d,%d", res.Uniques[0].First, res.Uniques[1].First)
	}
}

func TestCollapseDistinguishesLengths(t *testing.T) {
	// "a b" and "ab" must not merge even though their concatenation is
	// related; the \x00 separator keeps boundaries.
	recs := [][]string{toks("a", "b"), toks("ab"), toks("a", "b")}
	res := Collapse(recs, encode.HashEncoder{})
	if len(res.Uniques) != 2 {
		t.Fatalf("uniques = %d, want 2", len(res.Uniques))
	}
}

func TestCollapseEncodesTokens(t *testing.T) {
	recs := [][]string{toks("x", "y")}
	res := Collapse(recs, encode.HashEncoder{})
	u := res.Uniques[0]
	if len(u.Enc) != 2 || u.Enc[0] != encode.Hash64("x") || u.Enc[1] != encode.Hash64("y") {
		t.Errorf("enc = %v", u.Enc)
	}
}

func TestCollapseEmptyInput(t *testing.T) {
	res := Collapse(nil, encode.HashEncoder{})
	if len(res.Uniques) != 0 || len(res.Assign) != 0 {
		t.Error("nonempty result for empty input")
	}
	if res.TotalCount() != 0 {
		t.Error("TotalCount != 0 for empty input")
	}
}

func TestPassthroughKeepsEverything(t *testing.T) {
	recs := [][]string{toks("a"), toks("a"), toks("b")}
	res := Passthrough(recs, encode.HashEncoder{})
	if len(res.Uniques) != 3 {
		t.Fatalf("uniques = %d, want 3", len(res.Uniques))
	}
	for i, u := range res.Uniques {
		if u.Count != 1 || res.Assign[i] != i || u.First != i {
			t.Errorf("entry %d not a passthrough: %+v assign=%d", i, u, res.Assign[i])
		}
	}
}

// TestQuickCountsPreserved: total occurrence count always equals input size,
// and every Assign index points at a Unique whose tokens match the raw
// record.
func TestQuickCountsPreserved(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	gen := func(r *rand.Rand) [][]string {
		n := r.Intn(60)
		recs := make([][]string, n)
		for i := range recs {
			m := 1 + r.Intn(4)
			rec := make([]string, m)
			for j := range rec {
				rec[j] = vocab[r.Intn(len(vocab))]
			}
			recs[i] = rec
		}
		return recs
	}
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		recs := gen(r)
		res := Collapse(recs, encode.HashEncoder{})
		if res.TotalCount() != len(recs) {
			t.Fatalf("TotalCount = %d, want %d", res.TotalCount(), len(recs))
		}
		for i, rec := range recs {
			u := res.Uniques[res.Assign[i]]
			if !reflect.DeepEqual(u.Tokens, rec) {
				t.Fatalf("assign[%d] points at wrong unique: %v vs %v", i, u.Tokens, rec)
			}
		}
		// Distinct token sequences map to distinct uniques.
		seen := map[string]bool{}
		for _, u := range res.Uniques {
			key := ""
			for _, tok := range u.Tokens {
				key += tok + "\x00"
			}
			if seen[key] {
				t.Fatal("duplicate unique entry")
			}
			seen[key] = true
		}
	}
}

func TestQuickCollapseIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs := make([][]string, 30)
		for i := range recs {
			recs[i] = []string{"t", string(rune('a' + r.Intn(3)))}
		}
		a := Collapse(recs, encode.HashEncoder{})
		// Re-collapsing the unique token sets yields the same uniques
		// with count 1 each.
		uniqToks := make([][]string, len(a.Uniques))
		for i, u := range a.Uniques {
			uniqToks[i] = u.Tokens
		}
		b := Collapse(uniqToks, encode.HashEncoder{})
		if len(b.Uniques) != len(a.Uniques) {
			return false
		}
		for _, u := range b.Uniques {
			if u.Count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCollapse(b *testing.B) {
	recs := make([][]string, 10000)
	for i := range recs {
		recs[i] = []string{"Receiving", "block", "blk", "src", "port", string(rune('a' + i%7))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Collapse(recs, encode.HashEncoder{})
	}
}
