package netingest

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	lines := []string{"alpha one", "", "beta two", "gamma", ""}
	enc, err := AppendFrame(nil, 42, "app", lines)
	if err != nil {
		t.Fatal(err)
	}
	h := ParseHeader(enc)
	if h.Seq != 42 || h.Flags != 0 || h.TopicLen != 3 || h.LineCount != 3 {
		t.Fatalf("header = %+v", h)
	}
	body := enc[HeaderSize:]
	if len(body) != h.BodyLen() {
		t.Fatalf("body %d bytes, header says %d", len(body), h.BodyLen())
	}
	var f Frame
	if err := f.Decode(h, body); err != nil {
		t.Fatal(err)
	}
	if string(f.Topic) != "app" || f.Seq != 42 {
		t.Fatalf("topic=%q seq=%d", f.Topic, f.Seq)
	}
	want := []string{"alpha one", "beta two", "gamma"} // empties skipped
	if f.Lines() != len(want) {
		t.Fatalf("lines = %d, want %d", f.Lines(), len(want))
	}
	for i, w := range want {
		if got := string(f.Line(i)); got != w {
			t.Errorf("line %d = %q, want %q", i, got, w)
		}
	}
}

func TestAppendFrameRejects(t *testing.T) {
	if _, err := AppendFrame(nil, 0, "", []string{"x"}); err == nil {
		t.Error("empty topic accepted")
	}
	if _, err := AppendFrame(nil, 0, strings.Repeat("t", 0x10000), []string{"x"}); err == nil {
		t.Error("oversize topic accepted")
	}
	if _, err := AppendFrame(nil, 0, "app", []string{"", ""}); err != ErrNoLines {
		t.Errorf("all-empty lines: err = %v, want ErrNoLines", err)
	}
}

// corrupt builds an encoded frame and lets the caller damage the raw
// bytes before decoding.
func corrupt(t *testing.T, damage func(hdr *Header, body []byte)) error {
	t.Helper()
	enc, err := AppendFrame(nil, 7, "app", []string{"one", "two"})
	if err != nil {
		t.Fatal(err)
	}
	h := ParseHeader(enc)
	body := append([]byte(nil), enc[HeaderSize:]...)
	damage(&h, body)
	var f Frame
	return f.Decode(h, body)
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]func(h *Header, body []byte){
		"nonzero flags":   func(h *Header, _ []byte) { h.Flags = 1 },
		"zero topic":      func(h *Header, _ []byte) { h.TopicLen = 0 },
		"zero lines":      func(h *Header, _ []byte) { h.LineCount = 0 },
		"length mismatch": func(h *Header, _ []byte) { h.BlockLen++ },
		"non-monotonic offsets": func(h *Header, body []byte) {
			// ends are [3, 6]; make the second  ≤ the first.
			binary.LittleEndian.PutUint32(body[h.TopicLen+4:], 2)
		},
		"last offset short": func(h *Header, body []byte) {
			binary.LittleEndian.PutUint32(body[h.TopicLen+4:], 5)
		},
	}
	for name, damage := range cases {
		if err := corrupt(t, damage); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

// collector is a thread-safe Ingest stub.
type collector struct {
	mu    sync.Mutex
	lines map[string][]string
	err   error
	block chan struct{} // non-nil: Ingest waits here first
}

func (c *collector) ingest(topic string, lines []string) error {
	if c.block != nil {
		<-c.block
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.lines == nil {
		c.lines = make(map[string][]string)
	}
	c.lines[topic] = append(c.lines[topic], lines...)
	return nil
}

func (c *collector) got(topic string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines[topic]...)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *collector) {
	t.Helper()
	col := &collector{}
	if cfg.Ingest == nil {
		cfg.Ingest = col.ingest
	}
	srv, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, col
}

func TestFramedEndToEnd(t *testing.T) {
	srv, col := newTestServer(t, Config{})
	c, err := Dial(srv.Addr().String(), ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for batch := 0; batch < 10; batch++ {
		lines := make([]string, 100)
		for i := range lines {
			lines[i] = fmt.Sprintf("batch %d line %d payload", batch, i)
		}
		want = append(want, lines...)
		if err := c.Send("app", lines); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Send("other", []string{"different topic line"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := col.got("app")
	if len(got) != len(want) {
		t.Fatalf("ingested %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
	if other := col.got("other"); len(other) != 1 || other[0] != "different topic line" {
		t.Fatalf("other topic = %v", other)
	}
}

func TestFramedSplitsLargeBatch(t *testing.T) {
	srv, col := newTestServer(t, Config{})
	// A tiny client-side frame cap forces Send to slice the batch into
	// many frames; every line must still arrive exactly once, in order.
	c, err := Dial(srv.Addr().String(), ClientOptions{MaxFrameBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 500)
	for i := range lines {
		lines[i] = fmt.Sprintf("split line %d with some padding bytes", i)
	}
	if err := c.Send("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := col.got("app")
	if len(got) != len(lines) {
		t.Fatalf("ingested %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
}

func TestRawEndToEnd(t *testing.T) {
	srv, col := newTestServer(t, Config{})
	c, err := DialRaw(srv.Addr().String(), "raw-topic")
	if err != nil {
		t.Fatal(err)
	}
	const n = 700 // crosses the 256-line batch boundary twice
	for i := 0; i < n; i++ {
		if err := c.WriteLine([]byte(fmt.Sprintf("raw line %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	acked, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if acked != n {
		t.Fatalf("acked %d lines, want %d", acked, n)
	}
	got := col.got("raw-topic")
	if len(got) != n || got[0] != "raw line 0" || got[n-1] != fmt.Sprintf("raw line %d", n-1) {
		t.Fatalf("ingested %d lines (first=%q)", len(got), got[0])
	}
}

// readAck reads one 5-byte ack off a raw connection.
func readAck(t *testing.T, conn net.Conn) (uint32, byte) {
	t.Helper()
	var a [AckSize]byte
	if _, err := io.ReadFull(conn, a[:]); err != nil {
		t.Fatalf("reading ack: %v", err)
	}
	return binary.LittleEndian.Uint32(a[0:4]), a[4]
}

// TestBusyBackpressure blocks the ingest sink and floods the server: the
// frames past the in-flight budget must come back BUSY immediately (not
// queue without bound), and the admitted bytes must stay within
// MaxInflight plus one frame each for the worker and the reader.
func TestBusyBackpressure(t *testing.T) {
	release := make(chan struct{})
	col := &collector{block: release}
	const maxInflight = 4096
	srv, err := Listen("127.0.0.1:0", Config{
		Ingest:      col.ingest,
		MaxInflight: maxInflight,
		FrameQueue:  64, // deeper than the byte budget ever allows
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(MagicFramed)); err != nil {
		t.Fatal(err)
	}

	// ~1 KiB per frame, 20 frames ≈ 5x the in-flight budget.
	const frames = 20
	line := strings.Repeat("x", 1000)
	frameBytes := 0
	for seq := uint32(0); seq < frames; seq++ {
		enc, err := AppendFrame(nil, seq, "app", []string{line})
		if err != nil {
			t.Fatal(err)
		}
		frameBytes = len(enc) - HeaderSize
		if _, err := conn.Write(enc); err != nil {
			t.Fatal(err)
		}
	}

	// With ingest blocked the budget can never free up, so the final
	// frame is guaranteed a BUSY ack: read BUSY acks until it shows up,
	// at which point the reader has decided every frame and the
	// admitted set is exact.
	busy := make(map[uint32]bool)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for !busy[frames-1] {
		seq, status := readAck(t, conn)
		if status != StatusBusy {
			t.Fatalf("ack for %d = %d before release, want BUSY", seq, status)
		}
		busy[seq] = true
	}
	admitted := frames - len(busy)
	if admitted*frameBytes > maxInflight+2*frameBytes {
		t.Fatalf("admitted %d frames (%d bytes) exceeds in-flight bound %d",
			admitted, admitted*frameBytes, maxInflight+2*frameBytes)
	}
	if len(busy) == 0 {
		t.Fatal("no BUSY acks despite a blocked sink and 5x budget overload")
	}

	// Unblock: the admitted frames drain to OK acks.
	close(release)
	ok := 0
	for ok < admitted {
		_, status := readAck(t, conn)
		if status == StatusOK {
			ok++
		} else if status != StatusBusy {
			t.Fatalf("unexpected ack status %d", status)
		}
	}
	if got := len(col.got("app")); got != admitted {
		t.Fatalf("ingested %d lines, want %d (one per admitted frame)", got, admitted)
	}
}

// TestOversizeFrameAdmittedWhenIdle: a frame bigger than the whole
// in-flight budget (but within MaxFrameBytes) must be admitted when the
// connection is idle, not BUSY-acked forever — the regression here was a
// permanent client livelock for frames in (MaxInflight, MaxFrameBytes].
func TestOversizeFrameAdmittedWhenIdle(t *testing.T) {
	srv, col := newTestServer(t, Config{
		MaxInflight:   512,
		MaxFrameBytes: 64 << 10,
	})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(MagicFramed))
	big := strings.Repeat("y", 2000) // frame body ~4x MaxInflight
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Two in a row: the budget must free up after the first drains, so
	// oversize frames make progress one at a time, not just once.
	for seq := uint32(0); seq < 2; seq++ {
		enc, err := AppendFrame(nil, seq, "app", []string{big})
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(enc)
		for {
			gotSeq, status := readAck(t, conn)
			if gotSeq != seq {
				t.Fatalf("ack seq = %d, want %d", gotSeq, seq)
			}
			if status == StatusOK {
				break
			}
			if status != StatusBusy {
				t.Fatalf("ack status = %d, want OK or BUSY", status)
			}
			// A BUSY here may only be transient (previous frame still
			// draining); resend like the real client would. The test
			// deadline catches a livelock.
			conn.Write(enc)
		}
	}
	if got := col.got("app"); len(got) != 2 || got[0] != big || got[1] != big {
		t.Fatalf("ingested %d oversize lines, want 2", len(got))
	}

	// The bundled client must also ride through, end to end.
	c, err := Dial(srv.Addr().String(), ClientOptions{MaxFrameBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send("app2", []string{big}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := col.got("app2"); len(got) != 1 || got[0] != big {
		t.Fatalf("client path ingested %d lines, want 1", len(got))
	}
}

// TestSendRejectsOversizedLine: a single line that cannot fit in one
// frame fails Send with a descriptive error instead of wiring a frame
// the server would reject as a protocol violation; the connection stays
// usable afterwards.
func TestSendRejectsOversizedLine(t *testing.T) {
	srv, col := newTestServer(t, Config{})
	c, err := Dial(srv.Addr().String(), ClientOptions{MaxFrameBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("z", 300)
	err = c.Send("app", []string{"fits", huge})
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !strings.Contains(err.Error(), "cannot fit") {
		t.Fatalf("error %q does not describe the oversized line", err)
	}
	if err := c.Send("app", []string{"after the error"}); err != nil {
		t.Fatalf("Send after oversized-line error: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := col.got("app")
	want := []string{"fits", "after the error"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ingested %v, want %v", got, want)
	}
}

// TestRawClientEmbeddedNewlines: WriteLine splits embedded '\n' the way
// the server frames the stream, so the final count ack matches even for
// multi-line writes.
func TestRawClientEmbeddedNewlines(t *testing.T) {
	srv, col := newTestServer(t, Config{})
	c, err := DialRaw(srv.Addr().String(), "raw-topic")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range [][]byte{
		[]byte("a\nb\n\nc"), // 3 lines; empty segment dropped
		[]byte("\n\n"),      // nothing
		[]byte("d\n"),       // 1 line; trailing newline
		[]byte("e"),         // 1 line
	} {
		if err := c.WriteLine(w); err != nil {
			t.Fatal(err)
		}
	}
	acked, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d", "e"}
	if acked != len(want) {
		t.Fatalf("acked %d lines, want %d", acked, len(want))
	}
	got := col.got("raw-topic")
	if len(got) != len(want) {
		t.Fatalf("ingested %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestClientRidesThroughBusy proves the client's resend loop: a tiny
// server budget plus a slow sink forces BUSY acks, and the client must
// still deliver every line exactly once.
func TestClientRidesThroughBusy(t *testing.T) {
	col := &collector{}
	slow := func(topic string, lines []string) error {
		time.Sleep(200 * time.Microsecond)
		return col.ingest(topic, lines)
	}
	srv, err := Listen("127.0.0.1:0", Config{
		Ingest:      slow,
		MaxInflight: 2048,
		FrameQueue:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr().String(), ClientOptions{Window: 8, BusyBackoff: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const batches, per = 40, 8
	for b := 0; b < batches; b++ {
		lines := make([]string, per)
		for i := range lines {
			lines[i] = fmt.Sprintf("busy batch %d line %d %s", b, i, strings.Repeat("p", 100))
		}
		if err := c.Send("app", lines); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got := col.got("app")
	if len(got) != batches*per {
		t.Fatalf("ingested %d lines, want %d (BUSY resends must not drop or duplicate)", len(got), batches*per)
	}
	seen := make(map[string]bool, len(got))
	for _, l := range got {
		if seen[l] {
			t.Fatalf("duplicate line %q", l)
		}
		seen[l] = true
	}
}

func TestProtocolViolationsCloseConnection(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		srv, _ := newTestServer(t, Config{})
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.Write([]byte("NOPE"))
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("after bad magic: read err = %v, want EOF", err)
		}
	})
	t.Run("oversize frame", func(t *testing.T) {
		srv, _ := newTestServer(t, Config{MaxFrameBytes: 1024})
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.Write([]byte(MagicFramed))
		var hdr [HeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], 9)
		hdr[4] = 0
		binary.LittleEndian.PutUint16(hdr[5:7], 3)
		binary.LittleEndian.PutUint32(hdr[7:11], 1)
		binary.LittleEndian.PutUint32(hdr[11:15], 1<<20) // past MaxFrameBytes
		conn.Write(hdr[:])
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		seq, status := readAck(t, conn)
		if seq != 9 || status != StatusErr {
			t.Fatalf("ack = (%d, %d), want (9, ERR)", seq, status)
		}
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("after oversize frame: read err = %v, want EOF", err)
		}
	})
	t.Run("nonzero flags", func(t *testing.T) {
		srv, _ := newTestServer(t, Config{})
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.Write([]byte(MagicFramed))
		enc, _ := AppendFrame(nil, 3, "app", []string{"x"})
		enc[4] = 0x80 // flags
		conn.Write(enc)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if seq, status := readAck(t, conn); seq != 3 || status != StatusErr {
			t.Fatalf("ack = (%d, %d), want (3, ERR)", seq, status)
		}
	})
	t.Run("malformed offsets", func(t *testing.T) {
		srv, _ := newTestServer(t, Config{})
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		conn.Write([]byte(MagicFramed))
		enc, _ := AppendFrame(nil, 5, "app", []string{"one", "two"})
		// Break monotonicity of the ends array in the wire bytes.
		binary.LittleEndian.PutUint32(enc[HeaderSize+3+4:], 1)
		conn.Write(enc)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if seq, status := readAck(t, conn); seq != 5 || status != StatusErr {
			t.Fatalf("ack = (%d, %d), want (5, ERR)", seq, status)
		}
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("after malformed offsets: read err = %v, want EOF", err)
		}
	})
}

// TestIngestErrorKeepsConnectionOpen: a per-frame sink error (unknown
// topic) ERR-acks that frame but later frames still flow.
func TestIngestErrorKeepsConnectionOpen(t *testing.T) {
	col := &collector{}
	sink := func(topic string, lines []string) error {
		if topic == "ghost" {
			return fmt.Errorf("unknown topic %q", topic)
		}
		return col.ingest(topic, lines)
	}
	srv, err := Listen("127.0.0.1:0", Config{Ingest: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(MagicFramed))
	enc, _ := AppendFrame(nil, 1, "ghost", []string{"dropped"})
	conn.Write(enc)
	enc2, _ := AppendFrame(nil, 2, "app", []string{"kept"})
	conn.Write(enc2)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if seq, status := readAck(t, conn); seq != 1 || status != StatusErr {
		t.Fatalf("ack 1 = (%d, %d), want (1, ERR)", seq, status)
	}
	if seq, status := readAck(t, conn); seq != 2 || status != StatusOK {
		t.Fatalf("ack 2 = (%d, %d), want (2, OK)", seq, status)
	}
	if got := col.got("app"); len(got) != 1 || got[0] != "kept" {
		t.Fatalf("app lines = %v", got)
	}
}

// TestCloseDrainsAdmittedFrames: frames admitted before Close are still
// ingested and acked; the client sees clean acks, not a reset.
func TestCloseDrainsAdmittedFrames(t *testing.T) {
	release := make(chan struct{})
	col := &collector{block: release}
	srv, err := Listen("127.0.0.1:0", Config{Ingest: col.ingest})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(MagicFramed))
	for seq := uint32(0); seq < 3; seq++ {
		enc, _ := AppendFrame(nil, seq, "app", []string{fmt.Sprintf("drain %d", seq)})
		conn.Write(enc)
	}
	// Let the reader admit the frames, then close concurrently with a
	// blocked sink; unblock shortly after.
	time.Sleep(50 * time.Millisecond)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(col.got("app")); got != 3 {
		t.Fatalf("ingested %d lines across Close, want 3", got)
	}
	// All three acks arrived before the server closed the conn.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	acked := make(map[uint32]bool)
	for i := 0; i < 3; i++ {
		seq, status := readAck(t, conn)
		if status != StatusOK {
			t.Fatalf("ack %d status = %d, want OK", seq, status)
		}
		acked[seq] = true
	}
	if len(acked) != 3 {
		t.Fatalf("acked %d distinct frames, want 3", len(acked))
	}
}

// TestBusyAckOnErrBusy: a sink returning ErrBusy (wrapped) — e.g. the
// store degraded to read-only on a full disk — must come back as a BUSY
// ack in both modes, telling clients to back off and resend, not as the
// terminal ERR status. The connection stays open and healthy frames
// still flow.
func TestBusyAckOnErrBusy(t *testing.T) {
	col := &collector{}
	sink := func(topic string, lines []string) error {
		if topic == "full" {
			return fmt.Errorf("store degraded: %w", ErrBusy)
		}
		return col.ingest(topic, lines)
	}
	srv, err := Listen("127.0.0.1:0", Config{Ingest: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(MagicFramed))
	enc, _ := AppendFrame(nil, 1, "full", []string{"shed me"})
	conn.Write(enc)
	enc2, _ := AppendFrame(nil, 2, "app", []string{"kept"})
	conn.Write(enc2)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if seq, status := readAck(t, conn); seq != 1 || status != StatusBusy {
		t.Fatalf("ack 1 = (%d, %d), want (1, BUSY)", seq, status)
	}
	if seq, status := readAck(t, conn); seq != 2 || status != StatusOK {
		t.Fatalf("ack 2 = (%d, %d), want (2, OK)", seq, status)
	}
	if got := col.got("app"); len(got) != 1 || got[0] != "kept" {
		t.Fatalf("app lines = %v", got)
	}

	// Raw mode: the single final ack carries BUSY too.
	raw, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte(MagicRaw))
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len("full")))
	raw.Write(hdr[:])
	raw.Write([]byte("full"))
	raw.Write([]byte("a line\n"))
	if cw, ok := raw.(*net.TCPConn); ok {
		cw.CloseWrite()
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, status := readAck(t, raw); status != StatusBusy {
		t.Fatalf("raw ack status = %d, want BUSY", status)
	}
}
