package netingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// ClientOptions tunes a framed-mode Client. The zero value picks sane
// defaults.
type ClientOptions struct {
	// Window is the maximum number of unacked frames in flight
	// (pipelining depth). Default 8.
	Window int
	// MaxFrameBytes is the encoder-side split threshold: Send slices a
	// large batch into frames whose body stays under it. Default
	// DefaultMaxFrameBytes (matching the server default).
	MaxFrameBytes int
	// BusyBackoff is the base delay before resending a BUSY-acked
	// frame; the wait grows linearly with the retry count, capped at
	// 100ms. Default 2ms.
	BusyBackoff time.Duration
	// DialTimeout bounds the TCP dial. Default 5s.
	DialTimeout time.Duration
}

func (o *ClientOptions) withDefaults() {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.BusyBackoff <= 0 {
		o.BusyBackoff = 2 * time.Millisecond
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// Client is a framed-mode ingest client with windowed pipelining: up to
// Window frames ride the wire unacked, BUSY acks trigger a backoff and
// resend of the same frame (same seq), and Flush drains the window.
// Because BUSY resends interleave with later frames, cross-frame
// ordering is not guaranteed under backpressure.
//
// A Client is not safe for concurrent use; open one per goroutine.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	opts ClientOptions

	nextSeq uint32
	pending map[uint32]*unacked
	err     error
}

type unacked struct {
	data  []byte // encoded frame, kept for BUSY resend
	tries int
}

// Dial connects to a netingest server and enters framed mode.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriterSize(conn, 64<<10),
		br:      bufio.NewReaderSize(conn, 4<<10),
		opts:    opts,
		pending: make(map[uint32]*unacked),
	}
	if _, err := c.bw.WriteString(MagicFramed); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}

// Send encodes lines into one or more frames for topic and writes them,
// blocking on acks only when the pipeline window is full. Empty lines
// are skipped. An OK return means the frames are written or queued, not
// yet acked — call Flush for the durability barrier.
//
// A single line too large to fit in one frame cannot be split (the
// protocol frames whole lines), so Send rejects it with a descriptive
// error before any doomed frame hits the wire: lines before it are
// framed and written, lines after it are not sent, and the connection
// stays usable.
func (c *Client) Send(topic string, lines []string) error {
	if c.err != nil {
		return c.err
	}
	start := 0
	body := 0
	flushChunk := func(end int) error {
		if end == start {
			return nil
		}
		err := c.sendFrame(topic, lines[start:end])
		start, body = end, 0
		return err
	}
	for i, l := range lines {
		sz := len(l) + 4
		if len(topic)+sz > c.opts.MaxFrameBytes {
			if err := flushChunk(i); err != nil {
				return err
			}
			return fmt.Errorf("netingest: line %d is %d bytes and cannot fit in a frame (max body %d bytes with topic %q)",
				i, len(l), c.opts.MaxFrameBytes, topic)
		}
		if body > 0 && len(topic)+body+sz > c.opts.MaxFrameBytes {
			if err := flushChunk(i); err != nil {
				return err
			}
		}
		body += sz
	}
	return flushChunk(len(lines))
}

func (c *Client) sendFrame(topic string, lines []string) error {
	for len(c.pending) >= c.opts.Window {
		if err := c.readAck(); err != nil {
			return c.fail(err)
		}
	}
	seq := c.nextSeq
	c.nextSeq++
	data, err := AppendFrame(nil, seq, topic, lines)
	if err != nil {
		if err == ErrNoLines {
			return nil // nothing to send
		}
		return c.fail(err)
	}
	if _, err := c.bw.Write(data); err != nil {
		return c.fail(err)
	}
	c.pending[seq] = &unacked{data: data}
	return nil
}

// readAck flushes buffered writes and blocks for one ack, resolving or
// resending the frame it names.
func (c *Client) readAck() error {
	if err := c.bw.Flush(); err != nil {
		return err
	}
	var a [AckSize]byte
	if _, err := io.ReadFull(c.br, a[:]); err != nil {
		return fmt.Errorf("netingest: reading ack: %w", err)
	}
	seq := binary.LittleEndian.Uint32(a[0:4])
	p, ok := c.pending[seq]
	if !ok {
		return fmt.Errorf("netingest: ack for unknown seq %d", seq)
	}
	switch a[4] {
	case StatusOK:
		delete(c.pending, seq)
		return nil
	case StatusBusy:
		p.tries++
		wait := time.Duration(p.tries) * c.opts.BusyBackoff
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		time.Sleep(wait)
		_, err := c.bw.Write(p.data)
		return err
	case StatusErr:
		return fmt.Errorf("netingest: server rejected frame %d", seq)
	default:
		return fmt.Errorf("netingest: unknown ack status %d for seq %d", a[4], seq)
	}
}

// Flush writes out buffered frames and waits until every pending frame
// is acked OK (resending through BUSY storms as needed).
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	for len(c.pending) > 0 {
		if err := c.readAck(); err != nil {
			return c.fail(err)
		}
	}
	return c.fail(c.bw.Flush())
}

// Close flushes, drains the ack window, and closes the connection.
func (c *Client) Close() error {
	flushErr := c.Flush()
	closeErr := c.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// RawClient streams newline-delimited lines in raw mode: write lines,
// then Close half-closes the stream and waits for the server's single
// final ack.
type RawClient struct {
	conn  net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	lines uint32
	err   error
}

// DialRaw connects to a netingest server in raw mode for one topic.
func DialRaw(addr, topic string) (*RawClient, error) {
	if len(topic) == 0 || len(topic) > 0xFFFF {
		return nil, fmt.Errorf("netingest: topic length %d out of range [1,65535]", len(topic))
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &RawClient{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, AckSize),
	}
	c.bw.WriteString(MagicRaw)
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(topic)))
	c.bw.Write(tl[:])
	if _, err := c.bw.WriteString(topic); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// WriteLine sends one line (a trailing newline is appended; empty lines
// are dropped, matching the server's framing). A line with embedded
// newlines is split on them — the server frames the stream on '\n'
// regardless, so each non-empty segment is counted as its own line to
// keep the client-side total in step with the server's final ack.
func (c *RawClient) WriteLine(line []byte) error {
	if c.err != nil {
		return c.err
	}
	for len(line) > 0 {
		seg := line
		if i := bytes.IndexByte(line, '\n'); i >= 0 {
			seg, line = line[:i], line[i+1:]
		} else {
			line = nil
		}
		if len(seg) == 0 {
			continue
		}
		if _, err := c.bw.Write(seg); err != nil {
			c.err = err
			return err
		}
		if err := c.bw.WriteByte('\n'); err != nil {
			c.err = err
			return err
		}
		c.lines++
	}
	return nil
}

// Close flushes, half-closes the write side, and waits for the final
// ack. It returns the number of lines the server acknowledged.
func (c *RawClient) Close() (int, error) {
	defer c.conn.Close()
	if c.err != nil {
		return 0, c.err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	if tc, ok := c.conn.(*net.TCPConn); ok {
		if err := tc.CloseWrite(); err != nil {
			return 0, err
		}
	}
	var a [AckSize]byte
	if _, err := io.ReadFull(c.br, a[:]); err != nil {
		return 0, fmt.Errorf("netingest: reading final ack: %w", err)
	}
	got := binary.LittleEndian.Uint32(a[0:4])
	if a[4] != StatusOK {
		return int(got), fmt.Errorf("netingest: server rejected raw stream after %d lines", got)
	}
	if got != c.lines {
		return int(got), fmt.Errorf("netingest: server acked %d lines, sent %d", got, c.lines)
	}
	return int(got), nil
}
