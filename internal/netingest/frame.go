// Package netingest implements the byte-oriented streaming ingest
// listener: a persistent-connection TCP protocol that moves log lines
// from the wire to the store with at most one copy of the line bytes.
//
// A connection opens with a 4-byte magic selecting the mode:
//
//	"BBF1"  framed mode — length-prefixed frames, per-frame acks
//	"BBR1"  raw mode    — newline-delimited lines, one final ack
//
// Framed mode is the fast path. Each frame is a fixed 15-byte
// little-endian header followed by a body:
//
//	header: seq u32 | flags u8 | topicLen u16 | lineCount u32 | blockLen u32
//	body:   topic [topicLen] | ends [lineCount × u32] | block [blockLen]
//
// The ends array holds cumulative end offsets into the block, strictly
// increasing, with the last entry equal to blockLen; line i is
// block[ends[i-1]:ends[i]] (line 0 starts at 0). Flags must be zero.
// Empty lines are not representable — encoders skip them, mirroring the
// HTTP ingest path.
//
// Every frame is answered by a 5-byte ack:
//
//	ack: seq u32 | status u8
//
// Status 0 (OK) means the frame was ingested durably. Status 1 (BUSY)
// means the server drained the frame off the wire but dropped it under
// backpressure — the client must resend it; a frame on an otherwise
// idle connection is never BUSY-acked, so resends always make progress
// eventually. Status 2 (ERR) means the
// frame was rejected; for protocol violations (bad magic, non-zero
// flags, oversize body, malformed offsets) the server also closes the
// connection, while per-frame ingest errors (e.g. unknown topic) keep
// it open.
//
// Raw mode trades the zero-copy decode for convenience: after the magic
// the client sends topicLen u16 | topic, then newline-delimited lines,
// then half-closes. The server batches lines into ingest calls and
// answers with a single final ack whose seq is the total line count
// truncated to u32.
package netingest

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants. The magics are what a connection must start with;
// everything after them is little-endian binary.
const (
	MagicFramed = "BBF1"
	MagicRaw    = "BBR1"

	// HeaderSize is the fixed framed-mode header length in bytes.
	HeaderSize = 15
	// AckSize is the fixed ack length in bytes.
	AckSize = 5
)

// Ack status codes.
const (
	StatusOK   byte = 0 // frame ingested durably
	StatusBusy byte = 1 // dropped under backpressure; resend
	StatusErr  byte = 2 // rejected
)

// ErrBusy is the error a Config.Ingest hook returns (wrapped or not) to
// have the frame acked StatusBusy instead of StatusErr: the batch was
// shed — for example the store degraded to read-only on a full disk —
// and the client should back off and resend rather than treat the
// frame as rejected.
var ErrBusy = errors.New("netingest: ingest busy; resend")

// Defaults for the server-side limits.
const (
	// DefaultMaxFrameBytes bounds a single frame body (topic + offsets +
	// block).
	DefaultMaxFrameBytes = 8 << 20
	// DefaultMaxInflight bounds the bytes a single connection may have
	// queued between the reader and the ingest worker before new frames
	// are answered with BUSY.
	DefaultMaxInflight = 4 << 20
)

// ErrNoLines is returned by AppendFrame when every input line is empty:
// the protocol cannot represent an empty frame.
var ErrNoLines = errors.New("netingest: frame has no non-empty lines")

// Header is the decoded fixed-size frame header.
type Header struct {
	Seq       uint32
	Flags     byte
	TopicLen  int
	LineCount int
	BlockLen  int
}

// ParseHeader decodes the first HeaderSize bytes of b. It performs no
// validation beyond field extraction; callers check Flags and BodyLen
// against their limits.
func ParseHeader(b []byte) Header {
	return Header{
		Seq:       binary.LittleEndian.Uint32(b[0:4]),
		Flags:     b[4],
		TopicLen:  int(binary.LittleEndian.Uint16(b[5:7])),
		LineCount: int(binary.LittleEndian.Uint32(b[7:11])),
		BlockLen:  int(binary.LittleEndian.Uint32(b[11:15])),
	}
}

// BodyLen returns the exact number of body bytes that follow the
// header.
func (h Header) BodyLen() int {
	return h.TopicLen + 4*h.LineCount + h.BlockLen
}

// Frame is a decoded frame view. Topic and Block alias the body buffer
// passed to Decode — they are valid only until that buffer is reused.
// A Frame is reusable: Decode overwrites all fields and recycles the
// internal offsets slice, so a steady-state decode loop allocates
// nothing.
type Frame struct {
	Seq   uint32
	Topic []byte
	Block []byte
	ends  []uint32
}

// Decode validates h against body and populates f. body must hold
// exactly h.BodyLen() bytes.
func (f *Frame) Decode(h Header, body []byte) error {
	if h.Flags != 0 {
		return fmt.Errorf("netingest: non-zero flags 0x%02x", h.Flags)
	}
	if h.TopicLen == 0 {
		return errors.New("netingest: empty topic")
	}
	if h.LineCount == 0 {
		return errors.New("netingest: zero line count")
	}
	if len(body) != h.BodyLen() {
		return fmt.Errorf("netingest: body is %d bytes, header says %d", len(body), h.BodyLen())
	}
	f.Seq = h.Seq
	f.Topic = body[:h.TopicLen]
	offs := body[h.TopicLen : h.TopicLen+4*h.LineCount]
	f.ends = f.ends[:0]
	prev := uint32(0)
	for i := 0; i < h.LineCount; i++ {
		end := binary.LittleEndian.Uint32(offs[4*i:])
		if end <= prev {
			return fmt.Errorf("netingest: line offsets not strictly increasing at %d", i)
		}
		f.ends = append(f.ends, end)
		prev = end
	}
	if int(prev) != h.BlockLen {
		return fmt.Errorf("netingest: last offset %d != block length %d", prev, h.BlockLen)
	}
	f.Block = body[h.TopicLen+4*h.LineCount:]
	return nil
}

// Lines returns the number of lines in the decoded frame.
func (f *Frame) Lines() int { return len(f.ends) }

// Line returns line i as a sub-slice of Block (no copy).
func (f *Frame) Line(i int) []byte {
	start := uint32(0)
	if i > 0 {
		start = f.ends[i-1]
	}
	return f.Block[start:f.ends[i]]
}

// End returns the cumulative end offset of line i; line i spans
// [End(i-1), End(i)) in Block. Exposed so decoders can walk the block
// without the bounds recheck Line implies.
func (f *Frame) End(i int) uint32 { return f.ends[i] }

// AppendFrame encodes one frame (header + body) for seq/topic/lines and
// appends it to dst. Empty lines are skipped; if none remain it returns
// dst unchanged with ErrNoLines. The topic must fit in 16 bits.
func AppendFrame(dst []byte, seq uint32, topic string, lines []string) ([]byte, error) {
	if len(topic) == 0 || len(topic) > 0xFFFF {
		return dst, fmt.Errorf("netingest: topic length %d out of range [1,65535]", len(topic))
	}
	count, block := 0, 0
	for _, l := range lines {
		if l == "" {
			continue
		}
		count++
		block += len(l)
	}
	if count == 0 {
		return dst, ErrNoLines
	}
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], seq)
	hdr[4] = 0
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(len(topic)))
	binary.LittleEndian.PutUint32(hdr[7:11], uint32(count))
	binary.LittleEndian.PutUint32(hdr[11:15], uint32(block))
	dst = append(dst, hdr[:]...)
	dst = append(dst, topic...)
	end := uint32(0)
	var off [4]byte
	for _, l := range lines {
		if l == "" {
			continue
		}
		end += uint32(len(l))
		binary.LittleEndian.PutUint32(off[:], end)
		dst = append(dst, off[:]...)
	}
	for _, l := range lines {
		if l != "" {
			dst = append(dst, l...)
		}
	}
	return dst, nil
}

// AppendAck encodes a 5-byte ack into dst.
func AppendAck(dst []byte, seq uint32, status byte) []byte {
	var b [AckSize]byte
	binary.LittleEndian.PutUint32(b[0:4], seq)
	b[4] = status
	return append(dst, b[:]...)
}
