package netingest

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"bytebrain/internal/obs"
)

// Metrics is the instrument bundle the server updates. Every field is
// optional — the obs instruments are nil-receiver safe, and a nil
// *Metrics behaves like an all-nil bundle — so the server runs fully
// uninstrumented in tests and library use.
//
// All families are service-wide (zero labels): the per-frame hot path
// must not pay a labeled-series lookup per observation.
type Metrics struct {
	Connections       *obs.Counter   // connections accepted, by lifetime
	ActiveConnections *obs.Gauge     // connections currently open
	Frames            *obs.Counter   // frames (or raw batches) ingested OK
	Lines             *obs.Counter   // lines ingested OK
	Bytes             *obs.Counter   // line payload bytes ingested OK
	Busy              *obs.Counter   // frames dropped with a BUSY ack
	Errors            *obs.Counter   // protocol violations + ingest errors
	FrameSeconds      *obs.Histogram // queue-to-ack latency per frame
	InflightBytes     *obs.Gauge     // bytes queued between readers and workers
}

// Config configures a Server. Ingest is the only required field; it is
// called synchronously from per-connection workers, so an OK ack means
// the batch took whatever durability path Ingest provides.
type Config struct {
	// Ingest commits one batch of lines to a topic. The lines slice is
	// reused across calls; implementations may retain the strings but
	// not the slice (the service ingest path already obeys this).
	Ingest func(topic string, lines []string) error
	// MaxFrameBytes bounds a frame body. 0 means DefaultMaxFrameBytes.
	MaxFrameBytes int
	// MaxInflight bounds bytes queued between a connection's reader and
	// its worker; past it frames get BUSY acks. A frame arriving on an
	// idle connection is always admitted, even if it alone exceeds the
	// budget, so any frame within MaxFrameBytes eventually makes
	// progress. 0 means DefaultMaxInflight.
	MaxInflight int64
	// FrameQueue is the per-connection queued-frame cap (default 64).
	FrameQueue int
	// Metrics receives connection/frame telemetry; nil disables it.
	Metrics *Metrics
	// Logf logs connection-level protocol errors; nil disables it.
	Logf func(format string, args ...any)
}

// Server is a streaming ingest listener. Each accepted connection gets
// a reader goroutine (wire → pooled buffer → admission) and a worker
// goroutine (decode → one copy → Ingest → ack), bounded by MaxInflight
// bytes plus one frame in the reader's hands.
type Server struct {
	cfg Config

	ln     net.Listener
	mu     sync.Mutex
	conns  map[*srvConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Listen starts a server on addr ("host:port"; port 0 picks a free
// port) and begins accepting connections.
func Listen(addr string, cfg Config) (*Server, error) {
	if cfg.Ingest == nil {
		return nil, errors.New("netingest: Config.Ingest is required")
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.FrameQueue <= 0 {
		cfg.FrameQueue = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &Metrics{}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, ln: ln, conns: make(map[*srvConn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, kicks every connection's reader off its
// blocking read, lets workers drain and ack already-admitted frames,
// and waits for all connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	now := time.Now()
	for _, c := range conns {
		// Kick the reader without closing the socket: queued frames
		// still get ingested and acked by the worker. The write
		// deadline caps how long a client that stopped reading acks
		// can stall shutdown.
		c.conn.SetReadDeadline(now)
		c.conn.SetWriteDeadline(now.Add(2 * time.Second))
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sc := &srvConn{conn: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(sc)
	}
}

// srvConn is per-connection state shared between reader and worker.
type srvConn struct {
	conn     net.Conn
	wmu      sync.Mutex   // serializes ack writes (reader BUSY vs worker OK/ERR)
	inflight atomic.Int64 // body bytes admitted to the frame queue
}

func (c *srvConn) ack(seq uint32, status byte) error {
	var b [AckSize]byte
	_ = AppendAck(b[:0], seq, status)
	c.wmu.Lock()
	_, err := c.conn.Write(b[:])
	c.wmu.Unlock()
	return err
}

func (s *Server) handle(sc *srvConn) {
	defer s.wg.Done()
	defer func() {
		sc.conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()
	m := s.cfg.Metrics
	m.Connections.Inc()
	m.ActiveConnections.Add(1)
	defer m.ActiveConnections.Add(-1)

	br := bufio.NewReaderSize(sc.conn, 64<<10)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return
	}
	switch string(magic[:]) {
	case MagicFramed:
		s.serveFramed(sc, br)
	case MagicRaw:
		s.serveRaw(sc, br)
	default:
		m.Errors.Inc()
		s.logf("netingest: %s: unknown magic %q", sc.conn.RemoteAddr(), magic[:])
	}
}

// pendingFrame travels from reader to worker: the leased body buffer
// plus the header it was read under.
type pendingFrame struct {
	h     Header
	buf   *[]byte
	start time.Time
}

func (s *Server) serveFramed(sc *srvConn, br *bufio.Reader) {
	frames := make(chan pendingFrame, s.cfg.FrameQueue)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.frameWorker(sc, frames)
	}()
	defer wg.Wait()
	defer close(frames)

	m := s.cfg.Metrics
	var hdr [HeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return // EOF, peer reset, or shutdown kick
		}
		h := ParseHeader(hdr[:])
		n := h.BodyLen()
		if h.Flags != 0 || h.TopicLen == 0 || h.LineCount == 0 || n > s.cfg.MaxFrameBytes {
			// Protocol violation: the stream cannot be trusted to stay
			// in sync, so reject and close.
			m.Errors.Inc()
			s.logf("netingest: %s: invalid frame header (flags=%d topic=%d lines=%d body=%d)",
				sc.conn.RemoteAddr(), h.Flags, h.TopicLen, h.LineCount, n)
			sc.ack(h.Seq, StatusErr)
			return
		}
		buf := leaseBuf(n)
		if _, err := io.ReadFull(br, (*buf)[:n]); err != nil {
			putBuf(buf)
			return
		}
		// Admission happens after the body is off the wire (a stream
		// cannot skip bytes), so queued memory is bounded by
		// MaxInflight plus this one frame. A frame that lands on an
		// idle connection (inflight was zero) is admitted even when it
		// alone exceeds MaxInflight: otherwise a header-valid frame in
		// (MaxInflight, MaxFrameBytes] would be BUSY-acked forever and
		// a resending client would livelock.
		if in := sc.inflight.Add(int64(n)); in > s.cfg.MaxInflight && in != int64(n) {
			sc.inflight.Add(-int64(n))
			putBuf(buf)
			m.Busy.Inc()
			if sc.ack(h.Seq, StatusBusy) != nil {
				return
			}
			continue
		}
		select {
		case frames <- pendingFrame{h: h, buf: buf, start: time.Now()}:
			m.InflightBytes.Add(int64(n))
		default:
			sc.inflight.Add(-int64(n))
			putBuf(buf)
			m.Busy.Inc()
			if sc.ack(h.Seq, StatusBusy) != nil {
				return
			}
		}
	}
}

// frameWorker drains the frame queue: decode (zero allocations), one
// copy of the line block, synchronous ingest, ack. It keeps draining
// after the reader exits so every admitted frame is still committed and
// acked during graceful shutdown.
func (s *Server) frameWorker(sc *srvConn, frames <-chan pendingFrame) {
	m := s.cfg.Metrics
	var (
		f          Frame
		lines      []string
		topic      string
		topicBytes []byte
		dead       bool // ack write failed; drain without ingesting
	)
	release := func(p pendingFrame, n int64) {
		putBuf(p.buf)
		sc.inflight.Add(-n)
		m.InflightBytes.Add(-n)
	}
	for p := range frames {
		n := int64(p.h.BodyLen())
		if dead {
			release(p, n)
			continue
		}
		if err := f.Decode(p.h, (*p.buf)[:p.h.BodyLen()]); err != nil {
			release(p, n)
			m.Errors.Inc()
			s.logf("netingest: %s: %v", sc.conn.RemoteAddr(), err)
			sc.ack(p.h.Seq, StatusErr)
			// Malformed body ⇒ client-side encoder bug; kick the
			// reader so the connection winds down.
			sc.conn.SetReadDeadline(time.Now())
			dead = true
			continue
		}
		if !bytes.Equal(topicBytes, f.Topic) {
			topic = string(f.Topic)
			topicBytes = append(topicBytes[:0], f.Topic...)
		}
		// The single permitted copy: the store retains line strings
		// forever, and the read buffer goes back to the pool, so the
		// block moves into a fresh right-sized allocation and the
		// lines are unsafe-string views into it.
		data := make([]byte, len(f.Block))
		copy(data, f.Block)
		lines = lines[:0]
		start := uint32(0)
		for i := 0; i < f.Lines(); i++ {
			end := f.End(i)
			lines = append(lines, unsafe.String(&data[start], int(end-start)))
			start = end
		}
		nlines, nbytes := len(lines), len(f.Block)
		release(p, n)
		if err := s.cfg.Ingest(topic, lines); err != nil {
			if errors.Is(err, ErrBusy) {
				// The sink shed the batch (e.g. store degraded on a
				// full disk): BUSY tells the client to back off and
				// resend instead of treating the frame as rejected.
				m.Busy.Inc()
				if sc.ack(p.h.Seq, StatusBusy) != nil {
					dead = true
				}
				continue
			}
			m.Errors.Inc()
			if sc.ack(p.h.Seq, StatusErr) != nil {
				dead = true
			}
			continue
		}
		m.Frames.Inc()
		m.Lines.Add(int64(nlines))
		m.Bytes.Add(int64(nbytes))
		m.FrameSeconds.ObserveDuration(time.Since(p.start))
		if sc.ack(p.h.Seq, StatusOK) != nil {
			dead = true
		}
	}
}

// rawBatchLines is how many newline-framed lines accumulate before an
// ingest call in raw mode.
const rawBatchLines = 256

// serveRaw handles a "BBR1" connection: topicLen u16 | topic, then
// newline-delimited lines until EOF, then one final ack carrying the
// total line count (mod 2^32). Raw mode copies each line (convenience
// path); framed mode is the zero-copy one.
func (s *Server) serveRaw(sc *srvConn, br *bufio.Reader) {
	m := s.cfg.Metrics
	var tl [2]byte
	if _, err := io.ReadFull(br, tl[:]); err != nil {
		return
	}
	tn := int(uint16(tl[0]) | uint16(tl[1])<<8)
	if tn == 0 {
		m.Errors.Inc()
		sc.ack(0, StatusErr)
		return
	}
	topicB := make([]byte, tn)
	if _, err := io.ReadFull(br, topicB); err != nil {
		return
	}
	topic := string(topicB)

	scanBuf := leaseBuf(64 << 10)
	defer putBuf(scanBuf)
	sc2 := bufio.NewScanner(br)
	sc2.Buffer((*scanBuf)[:0], s.cfg.MaxFrameBytes)

	batch := make([]string, 0, rawBatchLines)
	var total, batchBytes uint32
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := s.cfg.Ingest(topic, batch); err != nil {
			return err
		}
		m.Frames.Inc()
		m.Lines.Add(int64(len(batch)))
		m.Bytes.Add(int64(batchBytes))
		total += uint32(len(batch))
		batch = batch[:0]
		batchBytes = 0
		return nil
	}
	for sc2.Scan() {
		line := sc2.Bytes()
		if len(line) == 0 {
			continue
		}
		batch = append(batch, string(line))
		batchBytes += uint32(len(line))
		if len(batch) == rawBatchLines {
			if err := flush(); err != nil {
				s.rawIngestFail(sc, total, err)
				return
			}
		}
	}
	if err := sc2.Err(); err != nil {
		// Connection error or shutdown kick mid-stream: the client
		// never half-closed, so there is no final ack to send.
		return
	}
	if err := flush(); err != nil {
		s.rawIngestFail(sc, total, err)
		return
	}
	sc.ack(total, StatusOK)
}

// rawIngestFail acks a raw-mode ingest failure: BUSY when the sink shed
// the batch (client backs off and resends from the acked count), ERR
// otherwise.
func (s *Server) rawIngestFail(sc *srvConn, total uint32, err error) {
	m := s.cfg.Metrics
	if errors.Is(err, ErrBusy) {
		m.Busy.Inc()
		sc.ack(total, StatusBusy)
		return
	}
	m.Errors.Inc()
	s.logf("netingest: %s: raw ingest: %v", sc.conn.RemoteAddr(), err)
	sc.ack(total, StatusErr)
}

// maxPooledBuf caps what goes back into the body-buffer pool; rare
// giant frames allocate and are dropped on the floor rather than
// pinning megabytes in the pool.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

func leaseBuf(n int) *[]byte {
	b := bufPool.Get().(*[]byte)
	if cap(*b) < n {
		*b = make([]byte, n)
	}
	*b = (*b)[:cap(*b)]
	return b
}

func putBuf(b *[]byte) {
	if cap(*b) <= maxPooledBuf {
		bufPool.Put(b)
	}
}
