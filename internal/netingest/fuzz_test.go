package netingest

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode feeds arbitrary bytes through the framed-protocol
// header+body decoder — the exact path that parses untrusted network
// input — and checks the decoder's contract on every accepted frame:
// line views tile the block exactly, no line is empty, and re-encoding
// the decoded frame reproduces the input bytes.
func FuzzFrameDecode(f *testing.F) {
	valid, err := AppendFrame(nil, 7, "topic", []string{"alpha", "beta", "", "gamma"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:HeaderSize+3])
	f.Add([]byte("BBF1 definitely not a frame"))
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize+16))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < HeaderSize {
			return
		}
		h := ParseHeader(data[:HeaderSize])
		body := data[HeaderSize:]
		// Mirror the server: it reads exactly BodyLen bytes after the
		// header (bounded by its frame limit before any allocation).
		if bl := h.BodyLen(); bl >= 0 && bl < len(body) {
			body = body[:bl]
		}
		var fr Frame
		if err := fr.Decode(h, body); err != nil {
			return
		}
		if fr.Lines() != h.LineCount {
			t.Fatalf("decoded %d lines, header says %d", fr.Lines(), h.LineCount)
		}
		if len(fr.Block) != h.BlockLen {
			t.Fatalf("block is %d bytes, header says %d", len(fr.Block), h.BlockLen)
		}
		total := 0
		var joined []byte
		lines := make([]string, 0, fr.Lines())
		for i := 0; i < fr.Lines(); i++ {
			line := fr.Line(i)
			if len(line) == 0 {
				t.Fatalf("line %d is empty; empty lines are unrepresentable", i)
			}
			total += len(line)
			joined = append(joined, line...)
			lines = append(lines, string(line))
		}
		if total != h.BlockLen || !bytes.Equal(joined, fr.Block) {
			t.Fatalf("lines do not tile the block: %d bytes of lines, block %d", total, h.BlockLen)
		}
		reenc, err := AppendFrame(nil, fr.Seq, string(fr.Topic), lines)
		if err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if want := data[:HeaderSize+h.BodyLen()]; !bytes.Equal(reenc, want) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", reenc, want)
		}
	})
}

// FuzzAppendFrameRoundTrip drives the encoder with arbitrary topics and
// lines and checks that whatever AppendFrame accepts, Decode returns
// verbatim (minus the empty lines the protocol cannot carry).
func FuzzAppendFrameRoundTrip(f *testing.F) {
	f.Add(uint32(0), "t", "one", "", "three")
	f.Add(uint32(1<<31), "topic/with/slash", "a", "b", "c")
	f.Add(uint32(42), "", "x", "y", "z")

	f.Fuzz(func(t *testing.T, seq uint32, topic, l1, l2, l3 string) {
		lines := []string{l1, l2, l3}
		enc, err := AppendFrame(nil, seq, topic, lines)
		if err != nil {
			return
		}
		var want []string
		for _, l := range lines {
			if l != "" {
				want = append(want, l)
			}
		}
		h := ParseHeader(enc[:HeaderSize])
		if h.BodyLen() != len(enc)-HeaderSize {
			t.Fatalf("header body length %d, encoded body %d", h.BodyLen(), len(enc)-HeaderSize)
		}
		var fr Frame
		if err := fr.Decode(h, enc[HeaderSize:]); err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		if fr.Seq != seq || string(fr.Topic) != topic {
			t.Fatalf("seq/topic mismatch: %d %q", fr.Seq, fr.Topic)
		}
		if fr.Lines() != len(want) {
			t.Fatalf("decoded %d lines, want %d", fr.Lines(), len(want))
		}
		for i, w := range want {
			if string(fr.Line(i)) != w {
				t.Fatalf("line %d = %q, want %q", i, fr.Line(i), w)
			}
		}
	})
}
