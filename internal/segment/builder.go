package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Encode seals records into one immutable segment blob.
//
// Records must be non-empty, offset-dense (records[i].Offset ==
// records[0].Offset+i — the append-only topic guarantees this) and in
// append order. The encoding is exact: Reader.Records returns every field
// bit-for-bit, including raw lines with repeated spaces or tabs.
func Encode(records []Record, codec Codec) ([]byte, Stats, error) {
	if len(records) == 0 {
		return nil, Stats{}, fmt.Errorf("segment: encode: no records")
	}
	if len(records) > maxRecords {
		return nil, Stats{}, fmt.Errorf("segment: encode: %d records exceeds max %d", len(records), maxRecords)
	}
	if codec == CodecZstd {
		return nil, Stats{}, fmt.Errorf("segment: encode: %s: %w", codec, ErrCodecUnavailable)
	}
	first := records[0].Offset
	for i := range records {
		if records[i].Offset != first+int64(i) {
			return nil, Stats{}, fmt.Errorf("segment: encode: offset %d at index %d, want dense %d",
				records[i].Offset, i, first+int64(i))
		}
	}

	// Group records by (templateID, column count); one dictionary entry
	// per group. A column every group member agrees on is a literal
	// stored once in the entry; the rest are per-record variables.
	type groupKey struct {
		tmpl uint64
		cols int
	}
	cols := make([][]string, len(records))
	byGroup := make(map[groupKey][]int)
	var groupOrder []groupKey
	for i, r := range records {
		cols[i] = splitColumns(r.Raw)
		k := groupKey{r.TemplateID, len(cols[i])}
		if _, ok := byGroup[k]; !ok {
			groupOrder = append(groupOrder, k)
		}
		byGroup[k] = append(byGroup[k], i)
	}

	// Token table: intern every literal and variable token, first-use
	// order so hot tokens get small varint IDs.
	tokenID := make(map[string]uint64)
	var tokens []string
	intern := func(t string) uint64 {
		if id, ok := tokenID[t]; ok {
			return id
		}
		id := uint64(len(tokens))
		tokenID[t] = id
		tokens = append(tokens, t)
		return id
	}

	type entry struct {
		tmpl     uint64
		cols     int
		literal  []bool   // per column
		litIDs   []uint64 // token IDs of literal columns, in column order
		varCols  []int    // indices of variable columns
		entryIdx uint64
	}
	entries := make([]*entry, 0, len(groupOrder))
	recEntry := make([]*entry, len(records))
	for _, k := range groupOrder {
		idxs := byGroup[k]
		e := &entry{tmpl: k.tmpl, cols: k.cols, literal: make([]bool, k.cols), entryIdx: uint64(len(entries))}
		base := cols[idxs[0]]
		for c := 0; c < k.cols; c++ {
			lit := true
			for _, ri := range idxs[1:] {
				if cols[ri][c] != base[c] {
					lit = false
					break
				}
			}
			e.literal[c] = lit
			if lit {
				e.litIDs = append(e.litIDs, intern(base[c]))
			} else {
				e.varCols = append(e.varCols, c)
			}
		}
		entries = append(entries, e)
		for _, ri := range idxs {
			recEntry[ri] = e
		}
	}

	// Intern every variable token before the token table is serialized.
	varIDs := make([][]uint64, len(records))
	for i := range records {
		e := recEntry[i]
		if len(e.varCols) == 0 {
			continue
		}
		ids := make([]uint64, len(e.varCols))
		for vi, c := range e.varCols {
			ids[vi] = intern(cols[i][c])
		}
		varIDs[i] = ids
	}

	// Payload: token table, dictionary, record tuples.
	var payload []byte
	payload = appendUvarint(payload, uint64(len(tokens)))
	for _, t := range tokens {
		payload = appendUvarint(payload, uint64(len(t)))
		payload = append(payload, t...)
	}
	payload = appendUvarint(payload, uint64(len(entries)))
	var mask []byte // presence-mask scratch, reused across entries
	for _, e := range entries {
		payload = appendUvarint(payload, e.tmpl)
		payload = appendUvarint(payload, uint64(e.cols))
		need := (e.cols + 7) / 8
		if cap(mask) < need {
			mask = make([]byte, need)
		}
		mask = mask[:need]
		clear(mask)
		for c, lit := range e.literal {
			if lit {
				mask[c/8] |= 1 << (c % 8)
			}
		}
		payload = append(payload, mask...)
		for _, id := range e.litIDs {
			payload = appendUvarint(payload, id)
		}
	}
	payload = appendUvarint(payload, uint64(len(records)))
	baseTime := records[0].Time.UnixNano()
	prev := baseTime
	var rawBytes int64
	for i, r := range records {
		e := recEntry[i]
		payload = appendUvarint(payload, e.entryIdx)
		ns := r.Time.UnixNano()
		payload = appendVarint(payload, ns-prev)
		prev = ns
		for _, id := range varIDs[i] {
			payload = appendUvarint(payload, id)
		}
		rawBytes += int64(len(r.Raw))
	}
	payloadRawLen := len(payload)
	compressed, err := codec.compress(payload)
	if err != nil {
		return nil, Stats{}, err
	}

	// Metadata: per-template counts, sample offsets and time bounds,
	// min/max time, token bloom — the pushdown surface queries read
	// without decompressing the payload.
	tmplCounts := make(map[uint64]int)
	tmplSamples := make(map[uint64][]int64)
	tmplMinT := make(map[uint64]int64)
	tmplMaxT := make(map[uint64]int64)
	minT, maxT := records[0].Time.UnixNano(), records[0].Time.UnixNano()
	var fieldTokens int
	for _, r := range records {
		ns := r.Time.UnixNano()
		if tmplCounts[r.TemplateID] == 0 {
			tmplMinT[r.TemplateID] = ns
			tmplMaxT[r.TemplateID] = ns
		} else {
			if ns < tmplMinT[r.TemplateID] {
				tmplMinT[r.TemplateID] = ns
			}
			if ns > tmplMaxT[r.TemplateID] {
				tmplMaxT[r.TemplateID] = ns
			}
		}
		tmplCounts[r.TemplateID]++
		if s := tmplSamples[r.TemplateID]; len(s) < maxMetaSamples {
			tmplSamples[r.TemplateID] = append(s, r.Offset)
		}
		if ns < minT {
			minT = ns
		} else if ns > maxT {
			maxT = ns
		}
		fieldTokens += len(Tokenize(r.Raw))
	}
	bf := newBloom(fieldTokens)
	for _, r := range records {
		for _, tok := range Tokenize(r.Raw) {
			bf.add(tok)
		}
	}
	tmplIDs := make([]uint64, 0, len(tmplCounts))
	for id := range tmplCounts {
		tmplIDs = append(tmplIDs, id)
	}
	sort.Slice(tmplIDs, func(i, j int) bool { return tmplIDs[i] < tmplIDs[j] })
	var meta []byte
	meta = appendUvarint(meta, uint64(len(tmplIDs)))
	for _, id := range tmplIDs {
		meta = appendUvarint(meta, id)
		meta = appendUvarint(meta, uint64(tmplCounts[id]))
		// Sample offsets (v2): ascending, delta-encoded against the
		// segment's first offset so they stay small varints.
		samples := tmplSamples[id]
		meta = appendUvarint(meta, uint64(len(samples)))
		prevOff := first
		for _, off := range samples {
			meta = appendUvarint(meta, uint64(off-prevOff))
			prevOff = off
		}
		// Per-template time bounds (v3): deltas against the segment
		// minimum, both non-negative by construction.
		meta = appendUvarint(meta, uint64(tmplMinT[id]-minT))
		meta = appendUvarint(meta, uint64(tmplMaxT[id]-tmplMinT[id]))
	}
	meta = appendUvarint(meta, uint64(bf.k))
	meta = appendUvarint(meta, uint64(len(bf.bits)))
	meta = append(meta, bf.bits...)

	// Assemble: fixed header, meta, payload, CRC.
	out := make([]byte, 0, headerSize+len(meta)+len(compressed)+crcSize)
	out = append(out, magic...)
	out = append(out, formatVersion, byte(codec), 0, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(records)))
	out = binary.LittleEndian.AppendUint64(out, uint64(first))
	out = binary.LittleEndian.AppendUint64(out, uint64(baseTime))
	out = binary.LittleEndian.AppendUint64(out, uint64(minT))
	out = binary.LittleEndian.AppendUint64(out, uint64(maxT))
	out = binary.LittleEndian.AppendUint64(out, uint64(rawBytes))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(meta)))
	out = binary.LittleEndian.AppendUint32(out, uint32(payloadRawLen))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(compressed)))
	out = append(out, meta...)
	out = append(out, compressed...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))

	return out, Stats{
		Records:      len(records),
		RawBytes:     rawBytes,
		EncodedBytes: int64(len(out)),
		DictEntries:  len(entries),
		Tokens:       len(tokens),
	}, nil
}
