package segment

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// Codec selects the payload compression scheme of a segment.
type Codec uint8

const (
	// CodecNone stores the payload uncompressed. The columnar encoding
	// alone (shared templates, interned tokens, varint deltas) already
	// shrinks typical log data substantially.
	CodecNone Codec = 0
	// CodecFlate compresses the payload with DEFLATE (stdlib flate).
	CodecFlate Codec = 1
	// CodecZstd is reserved for zstandard. The toolchain here has no zstd
	// implementation baked in, so the codec is gated: selecting it
	// returns ErrCodecUnavailable until an implementation is registered.
	CodecZstd Codec = 2
)

// ErrCodecUnavailable is returned when a segment requires a codec this
// build cannot provide (currently zstd).
var ErrCodecUnavailable = errors.New("segment: codec not available in this build")

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecNone:
		return "none"
	case CodecFlate:
		return "flate"
	case CodecZstd:
		return "zstd"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// ParseCodec maps a config string to a Codec. The empty string selects
// CodecFlate, the production default.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "flate":
		return CodecFlate, nil
	case "none":
		return CodecNone, nil
	case "zstd":
		return CodecZstd, fmt.Errorf("segment: %q: %w (use \"flate\" or \"none\")", s, ErrCodecUnavailable)
	default:
		return 0, fmt.Errorf("segment: unknown codec %q (want none, flate or zstd)", s)
	}
}

// compress encodes src with the codec.
func (c Codec) compress(src []byte) ([]byte, error) {
	switch c {
	case CodecNone:
		return src, nil
	case CodecFlate:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.DefaultCompression)
		if err != nil {
			return nil, fmt.Errorf("segment: flate: %w", err)
		}
		if _, err := w.Write(src); err != nil {
			return nil, fmt.Errorf("segment: flate: %w", err)
		}
		if err := w.Close(); err != nil {
			return nil, fmt.Errorf("segment: flate: %w", err)
		}
		return buf.Bytes(), nil
	default:
		return nil, fmt.Errorf("segment: compress with %s: %w", c, ErrCodecUnavailable)
	}
}

// decompress decodes src, which must expand to exactly rawLen bytes. The
// length is part of the trusted header, so a payload that inflates to a
// different size is corruption, and the reader never allocates more than
// rawLen regardless of what the compressed stream claims.
func (c Codec) decompress(src []byte, rawLen int) ([]byte, error) {
	switch c {
	case CodecNone:
		if len(src) != rawLen {
			return nil, corruptf("stored payload length %d, header says %d", len(src), rawLen)
		}
		return src, nil
	case CodecFlate:
		// DEFLATE expands at most ~1032x (1 bit per symbol run); a
		// header claiming more is corrupt, and rejecting it here keeps
		// the allocation below proportional to the actual input size —
		// a crafted blob cannot force a multi-GiB make().
		if rawLen > len(src)*1040+64 {
			return nil, corruptf("claimed payload length %d impossible from %d compressed bytes", rawLen, len(src))
		}
		r := flate.NewReader(bytes.NewReader(src))
		defer r.Close()
		dst := make([]byte, rawLen)
		if _, err := io.ReadFull(r, dst); err != nil {
			return nil, corruptf("flate payload: %v", err)
		}
		// One extra read distinguishes "exactly rawLen" from "more data".
		var one [1]byte
		if n, _ := r.Read(one[:]); n != 0 {
			return nil, corruptf("flate payload longer than header length %d", rawLen)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("segment: decompress with %s: %w", c, ErrCodecUnavailable)
	}
}
