// Package segment implements the sealed-segment storage format of the log
// service: a template-aware, columnar, optionally compressed on-disk block
// of log records.
//
// The paper requires every record to carry its template ID "computed along
// with other traditional text indices before logs can be written" to the
// append-only topic. Because parsing already factors each line into a
// (template, variables) pair, a sealed block does not need to store raw
// lines verbatim: records with the same structure share one dictionary
// entry holding the literal tokens, and each record stores only its
// (dictionary-entry, timestamp-delta, variable-token) tuple, CLP-style.
// Variable tokens are interned in a per-segment token table and referenced
// by varint IDs; the whole payload is then optionally DEFLATE-compressed.
//
// A small uncompressed metadata section — per-template record counts,
// sample offsets and min/max timestamps, the block time range, and a
// bloom filter over the token hashes of internal/encode — stays readable
// without touching the payload, so grouped queries (ByTemplate), token
// search, and time-range queries push their predicate down to segment
// metadata and never decompress non-matching blocks; in a block a time
// range straddles, templates whose own bounds fall inside or outside the
// range are decided without decoding either.
package segment

import (
	"fmt"
	"strings"
	"time"
)

// Record is one log record inside a segment. It mirrors the logstore
// record shape without importing it, so the storage layer can depend on
// this package.
type Record struct {
	// Offset is the topic-global offset of the record.
	Offset int64
	// Time is the ingestion timestamp (stored at nanosecond precision).
	Time time.Time
	// Raw is the original log line, recovered bit-exact on read.
	Raw string
	// TemplateID is the template matched at ingestion.
	TemplateID uint64
}

const (
	// magic identifies a segment file.
	magic = "BBSG"
	// formatVersion is bumped on any incompatible layout change.
	// Version 2 added per-template sample offsets to the metadata
	// section so grouped queries return example offsets without
	// decompressing the payload. Version 3 added per-template min/max
	// timestamps so time-range queries prune templates (not just whole
	// blocks) without decompressing. Version 1 and 2 segments are still
	// readable: v1 reports no samples, and both fall back to the
	// block-wide time bounds per template (conservative, never wrong).
	formatVersion = 3
	// minFormatVersion is the oldest version Open still accepts.
	minFormatVersion = 1
	// maxMetaSamples is how many example record offsets the metadata
	// stores per template — matching the query layer's per-row sample
	// budget.
	maxMetaSamples = 5
	// headerSize is the fixed-size portion before meta and payload:
	// magic(4) version(1) codec(1) reserved(2) count(4) firstOffset(8)
	// baseTime(8) minTime(8) maxTime(8) rawBytes(8) metaLen(4)
	// payloadRawLen(4) payloadLen(4).
	headerSize = 4 + 1 + 1 + 2 + 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 4
	// crcSize is the trailing IEEE CRC-32 over everything before it.
	crcSize = 4
	// maxRecords bounds a single segment; sealing happens far earlier.
	maxRecords = 1 << 28
)

// splitColumns splits a raw line into its space-separated columns. The
// split is lossless for every string: joining the columns with single
// spaces reproduces the input byte-for-byte (empty columns preserve runs
// of spaces).
func splitColumns(raw string) []string { return strings.Split(raw, " ") }

// Tokenize is the single search tokenization of the segment layer: the
// whitespace-delimited tokens of a raw line. The bloom filter built at
// seal time, Reader.Search at query time, and the hot-topic token index
// in logstore all tokenize through this one function — a divergence
// between the write and read sides would produce silent false negatives
// (the bloom filter would screen out blocks that do contain the token
// under the other tokenization).
func Tokenize(raw string) []string { return strings.Fields(raw) }

// TokenizeAppend appends raw's tokens (exactly Tokenize's output) to dst
// and returns the extended slice, so per-record hot loops can reuse one
// buffer instead of allocating a fields slice per line. ASCII lines are
// scanned in place; a line with any non-ASCII byte goes through
// strings.Fields, whose Unicode whitespace handling the fast path does
// not replicate.
func TokenizeAppend(dst []string, raw string) []string {
	for i := 0; i < len(raw); i++ {
		if raw[i] >= 0x80 {
			return append(dst, strings.Fields(raw)...)
		}
	}
	start := -1
	for i := 0; i < len(raw); i++ {
		if asciiSpace(raw[i]) {
			if start >= 0 {
				dst = append(dst, raw[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		dst = append(dst, raw[start:])
	}
	return dst
}

// asciiSpace mirrors the whitespace class strings.Fields uses for ASCII
// bytes.
func asciiSpace(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// joinColumns inverts splitColumns.
func joinColumns(cols []string) string { return strings.Join(cols, " ") }

// Stats summarizes one encoded segment.
type Stats struct {
	// Records is the record count.
	Records int
	// RawBytes is the sum of raw line lengths stored in the segment.
	RawBytes int64
	// EncodedBytes is the full encoded segment size (header + metadata +
	// payload + checksum).
	EncodedBytes int64
	// DictEntries is the number of template-dictionary entries.
	DictEntries int
	// Tokens is the size of the interned token table.
	Tokens int
}

// Ratio returns EncodedBytes / RawBytes, the compression ratio (lower is
// better; 0 when the segment stored no raw bytes).
func (s Stats) Ratio() float64 {
	if s.RawBytes == 0 {
		return 0
	}
	return float64(s.EncodedBytes) / float64(s.RawBytes)
}

// corruptf returns a decoding error; every malformed-input path funnels
// through it so the fuzz target can tell corruption (an error) from a
// decoder bug (a panic).
func corruptf(format string, args ...any) error {
	return fmt.Errorf("segment: corrupt: "+format, args...)
}
