package segment

import (
	"fmt"
	"os"
	"path/filepath"
)

// TmpSuffix marks an in-progress segment write. Files carrying it are
// never valid segments; recovery deletes them.
const TmpSuffix = ".tmp"

// WriteFile persists an encoded segment atomically: the blob is written
// to path+TmpSuffix, fsynced, then renamed into place and the directory
// fsynced. A crash at any point leaves either no file or a complete,
// checksummed segment — never a torn one.
func WriteFile(path string, data []byte) error {
	tmp := path + TmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("segment: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: rename %s: %w", path, err)
	}
	// The rename is durable only once the directory entry itself is on
	// disk; a discarded dir fsync error would report a segment as
	// persisted while the crash-recovery scan may never see it. The
	// caller keeps the block hot on error, so failing here is safe and
	// the write is retried.
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("segment: open dir of %s: %w", path, err)
	}
	if err := dir.Sync(); err != nil {
		dir.Close()
		return fmt.Errorf("segment: sync dir of %s: %w", path, err)
	}
	if err := dir.Close(); err != nil {
		return fmt.Errorf("segment: close dir of %s: %w", path, err)
	}
	return nil
}

// OpenFile reads and parses a segment file.
func OpenFile(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	r, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	return r, nil
}
