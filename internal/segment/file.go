package segment

import (
	"fmt"
	"path/filepath"

	"bytebrain/internal/fsx"
)

// TmpSuffix marks an in-progress segment write. Files carrying it are
// never valid segments; recovery deletes them.
const TmpSuffix = ".tmp"

// WriteFile persists an encoded segment atomically on the real
// filesystem. See WriteFileFS.
func WriteFile(path string, data []byte) error {
	return WriteFileFS(fsx.OS(), path, data)
}

// WriteFileFS persists an encoded segment atomically through fsys: the
// blob is written to path+TmpSuffix, fsynced, then renamed into place
// and the directory fsynced. A crash at any point leaves either no
// file or a complete, checksummed segment — never a torn one.
func WriteFileFS(fsys fsx.FS, path string, data []byte) error {
	tmp := path + TmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("segment: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("segment: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("segment: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segment: close %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("segment: rename %s: %w", path, err)
	}
	// The rename is durable only once the directory entry itself is on
	// disk; a discarded dir fsync error would report a segment as
	// persisted while the crash-recovery scan may never see it. The
	// caller keeps the block hot on error, so failing here is safe and
	// the write is retried.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("segment: sync dir of %s: %w", path, err)
	}
	return nil
}

// OpenFile reads and parses a segment file from the real filesystem.
func OpenFile(path string) (*Reader, error) {
	return OpenFileFS(fsx.OS(), path)
}

// OpenFileFS reads and parses a segment file through fsys.
func OpenFileFS(fsys fsx.FS, path string) (*Reader, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	r, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("segment: open %s: %w", path, err)
	}
	return r, nil
}
