package segment

import "encoding/binary"

// wire.go holds the low-level varint cursor shared by the builder and the
// reader. The reader side never panics on malformed input: every read
// reports corruption through an error, and allocation sizes are bounded by
// the bytes actually remaining, so a hostile length prefix cannot force a
// huge allocation.

// appendUvarint appends v to dst.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// appendVarint appends the zigzag encoding of v to dst.
func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// cursor is a bounds-checked reader over a byte slice.
type cursor struct {
	buf []byte
	pos int
}

func (c *cursor) remaining() int { return len(c.buf) - c.pos }

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.pos:])
	if n <= 0 {
		return 0, corruptf("bad uvarint at %d", c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.pos:])
	if n <= 0 {
		return 0, corruptf("bad varint at %d", c.pos)
	}
	c.pos += n
	return v, nil
}

// count reads a uvarint that counts items of at least minItemBytes bytes
// each and rejects values the remaining buffer cannot possibly hold. This
// is what keeps decode allocations proportional to the input.
func (c *cursor) count(minItemBytes int) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if minItemBytes < 1 {
		minItemBytes = 1
	}
	if v > uint64(c.remaining()/minItemBytes) {
		return 0, corruptf("count %d exceeds remaining %d bytes", v, c.remaining())
	}
	return int(v), nil
}

// bytes reads exactly n bytes.
func (c *cursor) bytes(n int) ([]byte, error) {
	if n < 0 || n > c.remaining() {
		return nil, corruptf("need %d bytes, have %d", n, c.remaining())
	}
	b := c.buf[c.pos : c.pos+n]
	c.pos += n
	return b, nil
}

// str reads a uvarint length followed by that many bytes as a string.
func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(c.remaining()) {
		return "", corruptf("string length %d exceeds remaining %d", n, c.remaining())
	}
	b, err := c.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
