package segment

import "bytebrain/internal/encode"

// bloom is a fixed-size bloom filter over 64-bit token hashes. Segments
// store one so token search can skip blocks that cannot contain the
// queried token without decompressing the payload.
//
// The two index streams derive from the single encode.Hash64 value by
// splitting it, the standard Kirsch–Mitzenmacher construction: index_i =
// h1 + i*h2. With bloomBitsPerToken=10 and bloomHashes=4 the false-positive
// rate is ~1.2%.
type bloom struct {
	bits []byte
	k    int
}

const (
	bloomBitsPerToken = 10
	bloomHashes       = 4
	// maxBloomBytes caps the filter a reader will accept from disk.
	maxBloomBytes = 16 << 20
)

// newBloom sizes a filter for n distinct tokens, capped at the size the
// reader accepts (huge segments degrade to a higher false-positive rate
// rather than producing blobs Open would reject).
func newBloom(n int) *bloom {
	bits := (n*bloomBitsPerToken + 7) / 8
	if bits < 8 {
		bits = 8
	}
	if bits > maxBloomBytes {
		bits = maxBloomBytes
	}
	return &bloom{bits: make([]byte, bits), k: bloomHashes}
}

func (b *bloom) addHash(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)|1
	m := uint32(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint32(i)*h2) % m
		b.bits[idx/8] |= 1 << (idx % 8)
	}
}

func (b *bloom) add(token string) { b.addHash(encode.Hash64(token)) }

// mayContain reports whether token was possibly added. False means
// definitely absent.
func (b *bloom) mayContain(token string) bool {
	if len(b.bits) == 0 {
		return true // degenerate filter filters nothing
	}
	h := encode.Hash64(token)
	h1, h2 := uint32(h), uint32(h>>32)|1
	m := uint32(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		idx := (h1 + uint32(i)*h2) % m
		if b.bits[idx/8]&(1<<(idx%8)) == 0 {
			return false
		}
	}
	return true
}
