package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Reader gives query access to one sealed segment. The metadata section
// (template counts, time range, token bloom filter) is decoded once at
// Open; the compressed payload is only inflated when a query actually
// needs record contents, and BlockReads counts how often that happened —
// tests assert template pushdown by checking the counter stays at zero
// for non-matching segments.
//
// A Reader is immutable after Open and safe for concurrent use; payload
// decodes are stateless (no cache), so memory stays bounded by the
// compressed size between queries.
type Reader struct {
	data    []byte // full segment blob
	codec   Codec
	count   int
	first   int64
	base    int64 // unix-nano of record 0
	minTime int64
	maxTime int64
	raw     int64
	meta    metaIndex
	payload []byte // still compressed
	payLen  int    // uncompressed payload length

	blockReads atomic.Int64
}

type metaIndex struct {
	tmplIDs     []uint64 // sorted
	tmplCounts  []int
	tmplSamples [][]int64 // up to maxMetaSamples offsets each; empty for v1
	// Per-template time bounds (v3); for older segments both default to
	// the block-wide bounds, which is conservative but never wrong.
	tmplMinT []int64
	tmplMaxT []int64
	bloom    bloom
}

// Open parses a segment blob. It validates the checksum and metadata but
// does not decompress the payload.
func Open(data []byte) (*Reader, error) {
	if len(data) < headerSize+crcSize {
		return nil, corruptf("segment too short: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return nil, corruptf("bad magic %q", data[:4])
	}
	version := int(data[4])
	if version < minFormatVersion || version > formatVersion {
		return nil, corruptf("unsupported version %d", version)
	}
	body, crcBytes := data[:len(data)-crcSize], data[len(data)-crcSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(crcBytes); got != want {
		return nil, corruptf("checksum mismatch: %08x != %08x", got, want)
	}
	r := &Reader{
		data:  data,
		codec: Codec(data[5]),
	}
	switch r.codec {
	case CodecNone, CodecFlate:
	case CodecZstd:
		return nil, ErrCodecUnavailable
	default:
		return nil, corruptf("unknown codec %d", data[5])
	}
	r.count = int(binary.LittleEndian.Uint32(data[8:12]))
	r.first = int64(binary.LittleEndian.Uint64(data[12:20]))
	r.base = int64(binary.LittleEndian.Uint64(data[20:28]))
	r.minTime = int64(binary.LittleEndian.Uint64(data[28:36]))
	r.maxTime = int64(binary.LittleEndian.Uint64(data[36:44]))
	r.raw = int64(binary.LittleEndian.Uint64(data[44:52]))
	metaLen := int(binary.LittleEndian.Uint32(data[52:56]))
	r.payLen = int(binary.LittleEndian.Uint32(data[56:60]))
	payLen := int(binary.LittleEndian.Uint32(data[60:64]))
	if r.count <= 0 || r.count > maxRecords {
		return nil, corruptf("record count %d", r.count)
	}
	if metaLen < 0 || payLen < 0 || headerSize+metaLen+payLen+crcSize != len(data) {
		return nil, corruptf("section lengths %d+%d do not fit %d bytes", metaLen, payLen, len(data))
	}
	meta := data[headerSize : headerSize+metaLen]
	r.payload = data[headerSize+metaLen : headerSize+metaLen+payLen]
	if err := r.parseMeta(meta, version); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseMeta(meta []byte, version int) error {
	c := &cursor{buf: meta}
	n, err := c.count(2) // template entries are ≥ 2 bytes each
	if err != nil {
		return err
	}
	r.meta.tmplIDs = make([]uint64, n)
	r.meta.tmplCounts = make([]int, n)
	r.meta.tmplSamples = make([][]int64, n)
	r.meta.tmplMinT = make([]int64, n)
	r.meta.tmplMaxT = make([]int64, n)
	total := 0
	for i := 0; i < n; i++ {
		// Pre-v3 metadata carries no per-template time bounds; the
		// block bounds are the tightest statement it can make.
		r.meta.tmplMinT[i] = r.minTime
		r.meta.tmplMaxT[i] = r.maxTime
		if r.meta.tmplIDs[i], err = c.uvarint(); err != nil {
			return err
		}
		if i > 0 && r.meta.tmplIDs[i] <= r.meta.tmplIDs[i-1] {
			return corruptf("template IDs not strictly ascending")
		}
		cnt, err := c.uvarint()
		if err != nil {
			return err
		}
		if cnt == 0 || cnt > uint64(r.count) {
			return corruptf("template count %d of %d records", cnt, r.count)
		}
		r.meta.tmplCounts[i] = int(cnt)
		total += int(cnt)
		if version < 2 {
			continue
		}
		ns, err := c.uvarint()
		if err != nil {
			return err
		}
		if ns > maxMetaSamples || ns > cnt {
			return corruptf("template %d has %d samples of %d records", r.meta.tmplIDs[i], ns, cnt)
		}
		samples := make([]int64, ns)
		prevOff := r.first
		for j := range samples {
			d, err := c.uvarint()
			if err != nil {
				return err
			}
			if j > 0 && d == 0 {
				return corruptf("duplicate sample offset for template %d", r.meta.tmplIDs[i])
			}
			off := prevOff + int64(d)
			if off < r.first || off >= r.first+int64(r.count) {
				return corruptf("sample offset %d outside [%d,%d)", off, r.first, r.first+int64(r.count))
			}
			samples[j] = off
			prevOff = off
		}
		r.meta.tmplSamples[i] = samples
		if version < 3 {
			continue
		}
		dMin, err := c.uvarint()
		if err != nil {
			return err
		}
		dSpan, err := c.uvarint()
		if err != nil {
			return err
		}
		tMin := r.minTime + int64(dMin)
		tMax := tMin + int64(dSpan)
		if tMin < r.minTime || tMax > r.maxTime || tMax < tMin {
			return corruptf("template %d time bounds [%d,%d] outside block [%d,%d]",
				r.meta.tmplIDs[i], tMin, tMax, r.minTime, r.maxTime)
		}
		r.meta.tmplMinT[i] = tMin
		r.meta.tmplMaxT[i] = tMax
	}
	if total != r.count {
		return corruptf("template counts sum %d, want %d", total, r.count)
	}
	k, err := c.uvarint()
	if err != nil {
		return err
	}
	if k == 0 || k > 16 {
		return corruptf("bloom k %d", k)
	}
	blen, err := c.uvarint()
	if err != nil {
		return err
	}
	if blen > maxBloomBytes || blen > uint64(c.remaining()) {
		return corruptf("bloom length %d", blen)
	}
	bits, err := c.bytes(int(blen))
	if err != nil {
		return err
	}
	r.meta.bloom = bloom{bits: bits, k: int(k)}
	if c.remaining() != 0 {
		return corruptf("%d trailing metadata bytes", c.remaining())
	}
	return nil
}

// Count returns the number of records.
func (r *Reader) Count() int { return r.count }

// FirstOffset returns the topic offset of the first record.
func (r *Reader) FirstOffset() int64 { return r.first }

// LastOffset returns the topic offset of the last record.
func (r *Reader) LastOffset() int64 { return r.first + int64(r.count) - 1 }

// RawBytes returns the total raw line bytes the segment represents.
func (r *Reader) RawBytes() int64 { return r.raw }

// EncodedBytes returns the full encoded segment size.
func (r *Reader) EncodedBytes() int64 { return int64(len(r.data)) }

// Codec returns the payload codec.
func (r *Reader) Codec() Codec { return r.codec }

// MinTime and MaxTime bound the record timestamps.
func (r *Reader) MinTime() time.Time { return time.Unix(0, r.minTime) }
func (r *Reader) MaxTime() time.Time { return time.Unix(0, r.maxTime) }

// BlockReads returns how many times the payload has been decompressed.
// Pushdown-aware queries keep this at zero on segments whose metadata
// rules them out.
func (r *Reader) BlockReads() int64 { return r.blockReads.Load() }

// HasTemplate reports from metadata alone whether any record carries id.
func (r *Reader) HasTemplate(id uint64) bool {
	i := sort.Search(len(r.meta.tmplIDs), func(i int) bool { return r.meta.tmplIDs[i] >= id })
	return i < len(r.meta.tmplIDs) && r.meta.tmplIDs[i] == id
}

// TemplateCounts returns the per-template record counts from metadata.
func (r *Reader) TemplateCounts() map[uint64]int {
	out := make(map[uint64]int, len(r.meta.tmplIDs))
	for i, id := range r.meta.tmplIDs {
		out[id] = r.meta.tmplCounts[i]
	}
	return out
}

// TemplateMeta is the metadata the segment stores for one template: its
// record count, the first few record offsets as grouped-query samples,
// and the time bounds of its records (v3; older segments report the
// block-wide bounds).
type TemplateMeta struct {
	ID      uint64
	Count   int
	Samples []int64 // ascending topic offsets, up to 5; empty for v1 segments
	MinTime time.Time
	MaxTime time.Time
}

// TemplateMetas returns every template's metadata entry, ID-ascending —
// the full grouped-query pushdown surface, answered without touching the
// payload. The sample slices alias the reader's immutable state; callers
// must not modify them.
func (r *Reader) TemplateMetas() []TemplateMeta {
	out := make([]TemplateMeta, len(r.meta.tmplIDs))
	for i, id := range r.meta.tmplIDs {
		out[i] = TemplateMeta{
			ID:      id,
			Count:   r.meta.tmplCounts[i],
			Samples: r.meta.tmplSamples[i],
			MinTime: time.Unix(0, r.meta.tmplMinT[i]),
			MaxTime: time.Unix(0, r.meta.tmplMaxT[i]),
		}
	}
	return out
}

// minNanoTime/maxNanoTime bound the int64-nanosecond epoch (years
// 1678–2262); query bounds outside it saturate instead of letting
// UnixNano wrap around.
var (
	minNanoTime = time.Unix(0, math.MinInt64)
	maxNanoTime = time.Unix(0, math.MaxInt64)
)

// clampNanos converts t to UnixNano, saturating for times outside the
// representable range — a valid RFC 3339 query bound in year 1000 or
// 3000 must widen or empty the range, never flip it via int64 overflow.
func clampNanos(t time.Time) int64 {
	if t.Before(minNanoTime) {
		return math.MinInt64
	}
	if t.After(maxNanoTime) {
		return math.MaxInt64
	}
	return t.UnixNano()
}

// rangeNanos converts inclusive [from, to] query bounds to nanoseconds;
// a zero time is unbounded on that side.
func rangeNanos(from, to time.Time) (lo, hi int64) {
	lo, hi = math.MinInt64, math.MaxInt64
	if !from.IsZero() {
		lo = clampNanos(from)
	}
	if !to.IsZero() {
		hi = clampNanos(to)
	}
	return lo, hi
}

// OverlapsRange reports from metadata alone whether any record timestamp
// can lie in [from, to] (inclusive; zero times are unbounded). False
// means the whole block prunes away without decompression.
func (r *Reader) OverlapsRange(from, to time.Time) bool {
	lo, hi := rangeNanos(from, to)
	return lo <= hi && r.maxTime >= lo && r.minTime <= hi
}

// TemplateMetasRange returns per-template metadata restricted to records
// with timestamps in [from, to] (inclusive; zero times are unbounded),
// ID-ascending. It is the time-range grouped-query pushdown surface:
//
//   - a block outside the range returns nothing, metadata-only;
//   - a block fully inside returns the sealed metadata as-is;
//   - in a straddling block, templates whose own time bounds fall fully
//     inside keep their metadata counts/samples, templates fully outside
//     prune away, and only templates straddling the boundary force one
//     payload decode (pre-v3 segments lack per-template bounds, so every
//     surviving template counts as straddling there).
func (r *Reader) TemplateMetasRange(from, to time.Time) ([]TemplateMeta, error) {
	metas, _, err := r.TemplateMetasRangeInfo(from, to)
	return metas, err
}

// TemplateMetasRangeInfo is TemplateMetasRange plus a decoded flag:
// false means metadata alone answered the query and the payload was
// never decompressed — the observable pushdown win.
func (r *Reader) TemplateMetasRangeInfo(from, to time.Time) ([]TemplateMeta, bool, error) {
	lo, hi := rangeNanos(from, to)
	if lo > hi || r.maxTime < lo || r.minTime > hi {
		return nil, false, nil
	}
	if r.minTime >= lo && r.maxTime <= hi {
		return r.TemplateMetas(), false, nil
	}
	out := make([]TemplateMeta, 0, len(r.meta.tmplIDs))
	straddling := make(map[uint64]*TemplateMeta)
	for i, id := range r.meta.tmplIDs {
		tMin, tMax := r.meta.tmplMinT[i], r.meta.tmplMaxT[i]
		if tMax < lo || tMin > hi {
			continue
		}
		if tMin >= lo && tMax <= hi {
			out = append(out, TemplateMeta{
				ID:      id,
				Count:   r.meta.tmplCounts[i],
				Samples: r.meta.tmplSamples[i],
				MinTime: time.Unix(0, tMin),
				MaxTime: time.Unix(0, tMax),
			})
			continue
		}
		straddling[id] = nil
	}
	if len(straddling) == 0 {
		return out, false, nil
	}
	// Straddling templates need exact in-range counts: one payload decode
	// covers them all.
	recs, err := r.Records()
	if err != nil {
		return nil, true, err
	}
	for _, rec := range recs {
		tm, ok := straddling[rec.TemplateID]
		if !ok {
			continue
		}
		ns := rec.Time.UnixNano()
		if ns < lo || ns > hi {
			continue
		}
		if tm == nil {
			tm = &TemplateMeta{
				ID:      rec.TemplateID,
				MinTime: rec.Time,
				MaxTime: rec.Time,
			}
			straddling[rec.TemplateID] = tm
		}
		tm.Count++
		if len(tm.Samples) < maxMetaSamples {
			tm.Samples = append(tm.Samples, rec.Offset)
		}
		if rec.Time.Before(tm.MinTime) {
			tm.MinTime = rec.Time
		}
		if rec.Time.After(tm.MaxTime) {
			tm.MaxTime = rec.Time
		}
	}
	for _, tm := range straddling {
		if tm != nil && tm.Count > 0 {
			out = append(out, *tm)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, true, nil
}

// TemplateCountsRange returns per-template record counts restricted to
// [from, to], with the same pushdown behavior as TemplateMetasRange.
func (r *Reader) TemplateCountsRange(from, to time.Time) (map[uint64]int, error) {
	counts, _, err := r.TemplateCountsRangeInfo(from, to)
	return counts, err
}

// TemplateCountsRangeInfo is TemplateCountsRange plus the decoded flag
// from TemplateMetasRangeInfo.
func (r *Reader) TemplateCountsRangeInfo(from, to time.Time) (map[uint64]int, bool, error) {
	metas, decoded, err := r.TemplateMetasRangeInfo(from, to)
	if err != nil {
		return nil, decoded, err
	}
	out := make(map[uint64]int, len(metas))
	for _, tm := range metas {
		out[tm.ID] = tm.Count
	}
	return out, decoded, nil
}

// MayContainToken consults the bloom filter: false means no record's
// whitespace-delimited tokens include token.
func (r *Reader) MayContainToken(token string) bool {
	return r.meta.bloom.mayContain(token)
}

// Records decodes and returns every record. Each call inflates the
// payload (counted in BlockReads); callers that can push their predicate
// into metadata should do so first.
func (r *Reader) Records() ([]Record, error) {
	r.blockReads.Add(1)
	payload, err := r.codec.decompress(r.payload, r.payLen)
	if err != nil {
		return nil, err
	}
	c := &cursor{buf: payload}

	nTokens, err := c.count(1)
	if err != nil {
		return nil, err
	}
	tokens := make([]string, nTokens)
	for i := range tokens {
		if tokens[i], err = c.str(); err != nil {
			return nil, err
		}
	}

	type entry struct {
		tmpl    uint64
		cols    int
		literal []bool
		litToks []string
	}
	nEntries, err := c.count(2)
	if err != nil {
		return nil, err
	}
	entries := make([]entry, nEntries)
	for i := range entries {
		e := &entries[i]
		if e.tmpl, err = c.uvarint(); err != nil {
			return nil, err
		}
		nc, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if nc == 0 || nc > uint64(c.remaining())*8+8 {
			return nil, corruptf("entry with %d columns", nc)
		}
		e.cols = int(nc)
		mask, err := c.bytes((e.cols + 7) / 8)
		if err != nil {
			return nil, err
		}
		e.literal = make([]bool, e.cols)
		for ci := 0; ci < e.cols; ci++ {
			e.literal[ci] = mask[ci/8]&(1<<(ci%8)) != 0
		}
		for ci := 0; ci < e.cols; ci++ {
			if !e.literal[ci] {
				continue
			}
			id, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if id >= uint64(len(tokens)) {
				return nil, corruptf("literal token ID %d of %d", id, len(tokens))
			}
			e.litToks = append(e.litToks, tokens[id])
		}
	}

	nRecs, err := c.count(2)
	if err != nil {
		return nil, err
	}
	if nRecs != r.count {
		return nil, corruptf("payload has %d records, header says %d", nRecs, r.count)
	}
	out := make([]Record, nRecs)
	prev := r.base
	cols := make([]string, 0, 64)
	for i := range out {
		ei, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if ei >= uint64(len(entries)) {
			return nil, corruptf("record entry %d of %d", ei, len(entries))
		}
		e := &entries[ei]
		delta, err := c.varint()
		if err != nil {
			return nil, err
		}
		prev += delta
		cols = cols[:0]
		lit := 0
		for ci := 0; ci < e.cols; ci++ {
			if e.literal[ci] {
				cols = append(cols, e.litToks[lit])
				lit++
				continue
			}
			id, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if id >= uint64(len(tokens)) {
				return nil, corruptf("variable token ID %d of %d", id, len(tokens))
			}
			cols = append(cols, tokens[id])
		}
		out[i] = Record{
			Offset:     r.first + int64(i),
			Time:       time.Unix(0, prev),
			Raw:        joinColumns(cols),
			TemplateID: e.tmpl,
		}
	}
	if c.remaining() != 0 {
		return nil, corruptf("%d trailing payload bytes", c.remaining())
	}
	return out, nil
}

// Scan decodes the payload and visits records in order until fn returns
// false.
func (r *Reader) Scan(fn func(Record) bool) error {
	recs, err := r.Records()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// ByTemplate returns the topic offsets of records whose template is any
// of ids. When the metadata rules every id out the payload is never
// decompressed — the template-pushdown fast path.
func (r *Reader) ByTemplate(ids ...uint64) ([]int64, error) {
	any := false
	for _, id := range ids {
		if r.HasTemplate(id) {
			any = true
			break
		}
	}
	if !any {
		return nil, nil
	}
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	recs, err := r.Records()
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, rec := range recs {
		if want[rec.TemplateID] {
			out = append(out, rec.Offset)
		}
	}
	return out, nil
}

// Search returns the topic offsets of records containing the exact
// whitespace-delimited token. The bloom filter screens out definite
// misses without decompressing.
func (r *Reader) Search(token string) ([]int64, error) {
	if !r.MayContainToken(token) {
		return nil, nil
	}
	recs, err := r.Records()
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, rec := range recs {
		for _, tok := range Tokenize(rec.Raw) {
			if tok == token {
				out = append(out, rec.Offset)
				break
			}
		}
	}
	return out, nil
}

// SearchRange is Search bounded to records with timestamps in
// [from, to] (inclusive; zero times are unbounded).
func (r *Reader) SearchRange(token string, from, to time.Time) ([]int64, error) {
	offs, _, err := r.SearchRangeInfo(token, from, to)
	return offs, err
}

// SearchRangeInfo is SearchRange plus a decoded flag: false means the
// block pruned away on metadata alone — its time bounds fall outside
// the range, or the bloom filter rules the token out — and the payload
// was never decompressed. Unlike the grouped-counts pushdown, a
// surviving block always decodes: token matching needs the raw lines.
func (r *Reader) SearchRangeInfo(token string, from, to time.Time) ([]int64, bool, error) {
	lo, hi := rangeNanos(from, to)
	if lo > hi || r.maxTime < lo || r.minTime > hi {
		return nil, false, nil
	}
	if !r.MayContainToken(token) {
		return nil, false, nil
	}
	covered := r.minTime >= lo && r.maxTime <= hi
	recs, err := r.Records()
	if err != nil {
		return nil, true, err
	}
	var out []int64
	for _, rec := range recs {
		if !covered {
			if ns := rec.Time.UnixNano(); ns < lo || ns > hi {
				continue
			}
		}
		for _, tok := range Tokenize(rec.Raw) {
			if tok == token {
				out = append(out, rec.Offset)
				break
			}
		}
	}
	return out, true, nil
}

// ByTemplateRange is ByTemplate bounded to records with timestamps in
// [from, to] (inclusive; zero times are unbounded).
func (r *Reader) ByTemplateRange(from, to time.Time, ids ...uint64) ([]int64, error) {
	offs, _, err := r.ByTemplateRangeInfo(from, to, ids...)
	return offs, err
}

// ByTemplateRangeInfo is ByTemplateRange plus a decoded flag: false
// means metadata alone pruned the block — time bounds outside the
// range, no queried template present, or every queried template's own
// time bounds (v3; block bounds pre-v3) miss the range entirely.
func (r *Reader) ByTemplateRangeInfo(from, to time.Time, ids ...uint64) ([]int64, bool, error) {
	lo, hi := rangeNanos(from, to)
	if lo > hi || r.maxTime < lo || r.minTime > hi {
		return nil, false, nil
	}
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	overlap := false
	for i, id := range r.meta.tmplIDs {
		if want[id] && r.meta.tmplMaxT[i] >= lo && r.meta.tmplMinT[i] <= hi {
			overlap = true
			break
		}
	}
	if !overlap {
		return nil, false, nil
	}
	covered := r.minTime >= lo && r.maxTime <= hi
	recs, err := r.Records()
	if err != nil {
		return nil, true, err
	}
	var out []int64
	for _, rec := range recs {
		if !want[rec.TemplateID] {
			continue
		}
		if !covered {
			if ns := rec.Time.UnixNano(); ns < lo || ns > hi {
				continue
			}
		}
		out = append(out, rec.Offset)
	}
	return out, true, nil
}

// CountSince counts records with Time >= cut. The metadata time range
// answers the all-or-nothing cases without decompressing.
func (r *Reader) CountSince(cut time.Time) (int, error) {
	if !r.MinTime().Before(cut) {
		return r.count, nil
	}
	if r.MaxTime().Before(cut) {
		return 0, nil
	}
	recs, err := r.Records()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, rec := range recs {
		if !rec.Time.Before(cut) {
			n++
		}
	}
	return n, nil
}

// Get returns the record at topic offset off.
func (r *Reader) Get(off int64) (Record, error) {
	if off < r.first || off > r.LastOffset() {
		return Record{}, fmt.Errorf("segment: offset %d outside [%d,%d]", off, r.first, r.LastOffset())
	}
	recs, err := r.Records()
	if err != nil {
		return Record{}, err
	}
	return recs[off-r.first], nil
}
