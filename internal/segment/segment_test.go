package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bytebrain/internal/datagen"
)

func ts(i int) time.Time { return time.Unix(1700000000, 0).Add(time.Duration(i) * time.Millisecond) }

func sampleRecords(n int, firstOffset int64) []Record {
	templates := []struct {
		id  uint64
		gen func(i int) string
	}{
		{101, func(i int) string { return fmt.Sprintf("Receiving block blk_%d src: /10.0.0.%d:50010", i, i%256) }},
		{102, func(i int) string { return fmt.Sprintf("PacketResponder %d for block blk_%d terminating", i%3, i) }},
		{103, func(i int) string { return "Verification succeeded for blk_-99" }},
	}
	recs := make([]Record, n)
	for i := range recs {
		t := templates[i%len(templates)]
		recs[i] = Record{
			Offset:     firstOffset + int64(i),
			Time:       ts(i),
			Raw:        t.gen(i),
			TemplateID: t.id,
		}
	}
	return recs
}

func roundTrip(t *testing.T, recs []Record, codec Codec) *Reader {
	t.Helper()
	blob, stats, err := Encode(recs, codec)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if stats.Records != len(recs) {
		t.Fatalf("stats.Records = %d, want %d", stats.Records, len(recs))
	}
	r, err := Open(blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := r.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Raw != recs[i].Raw {
			t.Fatalf("record %d raw %q, want %q", i, got[i].Raw, recs[i].Raw)
		}
		if got[i].TemplateID != recs[i].TemplateID {
			t.Fatalf("record %d template %d, want %d", i, got[i].TemplateID, recs[i].TemplateID)
		}
		if got[i].Offset != recs[i].Offset {
			t.Fatalf("record %d offset %d, want %d", i, got[i].Offset, recs[i].Offset)
		}
		if got[i].Time.UnixNano() != recs[i].Time.UnixNano() {
			t.Fatalf("record %d time %v, want %v", i, got[i].Time, recs[i].Time)
		}
	}
	return r
}

func TestRoundTripBasic(t *testing.T) {
	for _, codec := range []Codec{CodecNone, CodecFlate} {
		t.Run(codec.String(), func(t *testing.T) {
			roundTrip(t, sampleRecords(500, 1234), codec)
		})
	}
}

// TestRoundTripProperty is the acceptance property test: segments built
// from randomized records — adversarial whitespace, empty lines, unicode,
// out-of-order timestamps, arbitrary template IDs — decode every record
// bit-exact.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{
		"alpha", "beta", "", " ", "  double", "tab\there", "血", "x=1,y=2",
		"<*>", "blk_123", "/var/log/app.log", "9.9.9.9:80", "a b", "\t",
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		first := rng.Int63n(1 << 30)
		base := time.Unix(rng.Int63n(1e9), rng.Int63n(1e9))
		recs := make([]Record, n)
		for i := range recs {
			nTok := rng.Intn(12)
			parts := make([]string, nTok)
			for j := range parts {
				parts[j] = alphabet[rng.Intn(len(alphabet))]
			}
			recs[i] = Record{
				Offset: first + int64(i),
				// Deltas may be negative: timestamps need not be monotone.
				Time:       base.Add(time.Duration(rng.Int63n(2e9) - 1e9)),
				Raw:        strings.Join(parts, " "),
				TemplateID: rng.Uint64() >> uint(rng.Intn(64)),
			}
		}
		codec := CodecNone
		if trial%2 == 1 {
			codec = CodecFlate
		}
		roundTrip(t, recs, codec)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, _, err := Encode(nil, CodecFlate); err == nil {
		t.Fatal("Encode(nil) should fail")
	}
	recs := sampleRecords(3, 0)
	recs[2].Offset = 99 // not dense
	if _, _, err := Encode(recs, CodecFlate); err == nil {
		t.Fatal("Encode with non-dense offsets should fail")
	}
	if _, _, err := Encode(sampleRecords(3, 0), CodecZstd); err == nil {
		t.Fatal("Encode with gated zstd codec should fail")
	}
}

func TestTemplatePushdown(t *testing.T) {
	r := roundTrip(t, sampleRecords(300, 0), CodecFlate)
	reads := r.BlockReads() // roundTrip decoded once

	// Absent template: metadata answers, payload untouched.
	offs, err := r.ByTemplate(999)
	if err != nil {
		t.Fatal(err)
	}
	if offs != nil {
		t.Fatalf("ByTemplate(999) = %v, want nil", offs)
	}
	if r.BlockReads() != reads {
		t.Fatalf("ByTemplate on absent template decompressed the block (%d -> %d reads)", reads, r.BlockReads())
	}

	// Present template: decompresses once, returns exact offsets.
	offs, err = r.ByTemplate(101)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 100 {
		t.Fatalf("ByTemplate(101) returned %d offsets, want 100", len(offs))
	}
	if r.BlockReads() != reads+1 {
		t.Fatalf("ByTemplate on present template: %d reads, want %d", r.BlockReads(), reads+1)
	}
	if !r.HasTemplate(102) || r.HasTemplate(7) {
		t.Fatal("HasTemplate metadata wrong")
	}
	counts := r.TemplateCounts()
	if counts[101] != 100 || counts[102] != 100 || counts[103] != 100 {
		t.Fatalf("TemplateCounts = %v", counts)
	}
}

func TestTokenSearchBloom(t *testing.T) {
	r := roundTrip(t, sampleRecords(300, 50), CodecFlate)
	reads := r.BlockReads()
	offs, err := r.Search("terminating")
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 100 {
		t.Fatalf("Search(terminating) = %d offsets, want 100", len(offs))
	}
	// A token that cannot be present: bloom must usually skip the decode.
	// (Bloom filters allow false positives, so assert correctness of the
	// result, and only note the common fast path.)
	offs, err = r.Search("definitely-not-a-token-xyzzy")
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 0 {
		t.Fatalf("Search(absent) = %v, want none", offs)
	}
	_ = reads
}

func TestCountSincePushdown(t *testing.T) {
	r := roundTrip(t, sampleRecords(100, 0), CodecFlate)
	reads := r.BlockReads()
	if n, _ := r.CountSince(ts(0)); n != 100 {
		t.Fatalf("CountSince(min) = %d, want 100", n)
	}
	if n, _ := r.CountSince(ts(1000)); n != 0 {
		t.Fatalf("CountSince(beyond max) = %d, want 0", n)
	}
	if r.BlockReads() != reads {
		t.Fatal("all-or-nothing CountSince should not decompress")
	}
	if n, _ := r.CountSince(ts(60)); n != 40 {
		t.Fatalf("CountSince(mid) = %d, want 40", n)
	}
	if r.BlockReads() != reads+1 {
		t.Fatal("mid-range CountSince should decompress exactly once")
	}
}

// TestOutOfOrderTimesWithinBlock: concurrent ingest queues hand the
// sealer records whose timestamps are not monotone. The time metadata
// (min/max bounds, delta-encoded payload times) and CountSince must stay
// exact regardless of intra-block time order.
func TestOutOfOrderTimesWithinBlock(t *testing.T) {
	recs := sampleRecords(100, 0)
	// Interleave two clocks: 50, 0, 51, 1, ... — max appears early, min
	// in the middle.
	for i := range recs {
		if i%2 == 0 {
			recs[i].Time = ts(50 + i/2)
		} else {
			recs[i].Time = ts(i / 2)
		}
	}
	r := roundTrip(t, recs, CodecFlate)
	if !r.MinTime().Equal(ts(0)) || !r.MaxTime().Equal(ts(99)) {
		t.Fatalf("time bounds = [%v, %v], want [ts(0), ts(99)]", r.MinTime(), r.MaxTime())
	}
	got, err := r.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) {
			t.Fatalf("record %d time %v, want %v", i, got[i].Time, recs[i].Time)
		}
	}
	for _, cut := range []int{0, 25, 50, 75, 100} {
		want := 0
		for _, rec := range recs {
			if !rec.Time.Before(ts(cut)) {
				want++
			}
		}
		if n, _ := r.CountSince(ts(cut)); n != want {
			t.Fatalf("CountSince(ts(%d)) = %d, want %d", cut, n, want)
		}
	}
}

// TestCompressionRatioSyntheticDatasets is the acceptance bound: on the
// bundled synthetic LogHub datasets, a flate segment must encode to at
// most 40% of the raw bytes.
func TestCompressionRatioSyntheticDatasets(t *testing.T) {
	for _, name := range []string{"HDFS", "Apache", "Linux", "Zookeeper", "Spark"} {
		ds, err := datagen.LogHub(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]Record, len(ds.Lines))
		for i, line := range ds.Lines {
			recs[i] = Record{
				Offset:     int64(i),
				Time:       ts(i),
				Raw:        line,
				TemplateID: uint64(ds.Truth[i]) + 1,
			}
		}
		blob, stats, err := Encode(recs, CodecFlate)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(blob)) / float64(stats.RawBytes)
		t.Logf("%s: %d raw -> %d encoded (%.1f%%), %d dict entries, %d tokens",
			name, stats.RawBytes, len(blob), 100*ratio, stats.DictEntries, stats.Tokens)
		if ratio > 0.40 {
			t.Errorf("%s: compression ratio %.1f%% exceeds 40%% bound", name, 100*ratio)
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	blob, _, err := Encode(sampleRecords(50, 0), CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blob[:10]); err == nil {
		t.Fatal("Open(truncated) should fail")
	}
	for _, pos := range []int{0, 5, 9, 30, headerSize + 3, len(blob) - 2} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0xFF
		if _, err := Open(bad); err == nil {
			t.Fatalf("Open with byte %d flipped should fail (checksum)", pos)
		}
	}
}

func TestWriteOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000000.bbsg")
	recs := sampleRecords(120, 7)
	blob, _, err := Encode(recs, CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind")
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 120 || r.FirstOffset() != 7 {
		t.Fatalf("reopened segment count=%d first=%d", r.Count(), r.FirstOffset())
	}
	rec, err := r.Get(7 + 64)
	if err != nil || rec.Raw != recs[64].Raw {
		t.Fatalf("Get = %+v, %v", rec, err)
	}
}

func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"": CodecFlate, "flate": CodecFlate, "none": CodecNone} {
		c, err := ParseCodec(s)
		if err != nil || c != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", s, c, err)
		}
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("zstd must be gated in this build")
	}
	if _, err := ParseCodec("lz77"); err == nil {
		t.Fatal("unknown codec must error")
	}
}

func TestTemplateMetaSamples(t *testing.T) {
	recs := sampleRecords(64, 1000)
	r := roundTrip(t, recs, CodecFlate)
	baseReads := r.BlockReads() // roundTrip decoded once to verify
	// Expected: first 5 offsets per template, computed independently.
	want := map[uint64][]int64{}
	for _, rec := range recs {
		if len(want[rec.TemplateID]) < 5 {
			want[rec.TemplateID] = append(want[rec.TemplateID], rec.Offset)
		}
	}
	metas := r.TemplateMetas()
	if len(metas) != len(want) {
		t.Fatalf("TemplateMetas returned %d entries, want %d", len(metas), len(want))
	}
	counts := r.TemplateCounts()
	for _, tm := range metas {
		if tm.Count != counts[tm.ID] {
			t.Errorf("template %d count %d != TemplateCounts %d", tm.ID, tm.Count, counts[tm.ID])
		}
		if fmt.Sprint(tm.Samples) != fmt.Sprint(want[tm.ID]) {
			t.Errorf("template %d samples %v, want %v", tm.ID, tm.Samples, want[tm.ID])
		}
	}
	// Reading metadata must not decompress the payload.
	if got := r.BlockReads() - baseReads; got != 0 {
		t.Errorf("TemplateMetas paid %d block reads", got)
	}
}

func TestOpenRejectsUnknownVersion(t *testing.T) {
	recs := sampleRecords(8, 0)
	blob, _, err := Encode(recs, CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	blob[4] = formatVersion + 1
	// Recompute the CRC so only the version check can reject it.
	body := blob[:len(blob)-crcSize]
	binary.LittleEndian.PutUint32(blob[len(blob)-crcSize:], crc32.ChecksumIEEE(body))
	if _, err := Open(blob); err == nil {
		t.Fatal("future format version accepted")
	}
}
