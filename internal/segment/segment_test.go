package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bytebrain/internal/datagen"
)

func ts(i int) time.Time { return time.Unix(1700000000, 0).Add(time.Duration(i) * time.Millisecond) }

func sampleRecords(n int, firstOffset int64) []Record {
	templates := []struct {
		id  uint64
		gen func(i int) string
	}{
		{101, func(i int) string { return fmt.Sprintf("Receiving block blk_%d src: /10.0.0.%d:50010", i, i%256) }},
		{102, func(i int) string { return fmt.Sprintf("PacketResponder %d for block blk_%d terminating", i%3, i) }},
		{103, func(i int) string { return "Verification succeeded for blk_-99" }},
	}
	recs := make([]Record, n)
	for i := range recs {
		t := templates[i%len(templates)]
		recs[i] = Record{
			Offset:     firstOffset + int64(i),
			Time:       ts(i),
			Raw:        t.gen(i),
			TemplateID: t.id,
		}
	}
	return recs
}

func roundTrip(t *testing.T, recs []Record, codec Codec) *Reader {
	t.Helper()
	blob, stats, err := Encode(recs, codec)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if stats.Records != len(recs) {
		t.Fatalf("stats.Records = %d, want %d", stats.Records, len(recs))
	}
	r, err := Open(blob)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := r.Records()
	if err != nil {
		t.Fatalf("Records: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Raw != recs[i].Raw {
			t.Fatalf("record %d raw %q, want %q", i, got[i].Raw, recs[i].Raw)
		}
		if got[i].TemplateID != recs[i].TemplateID {
			t.Fatalf("record %d template %d, want %d", i, got[i].TemplateID, recs[i].TemplateID)
		}
		if got[i].Offset != recs[i].Offset {
			t.Fatalf("record %d offset %d, want %d", i, got[i].Offset, recs[i].Offset)
		}
		if got[i].Time.UnixNano() != recs[i].Time.UnixNano() {
			t.Fatalf("record %d time %v, want %v", i, got[i].Time, recs[i].Time)
		}
	}
	return r
}

func TestRoundTripBasic(t *testing.T) {
	for _, codec := range []Codec{CodecNone, CodecFlate} {
		t.Run(codec.String(), func(t *testing.T) {
			roundTrip(t, sampleRecords(500, 1234), codec)
		})
	}
}

// TestRoundTripProperty is the acceptance property test: segments built
// from randomized records — adversarial whitespace, empty lines, unicode,
// out-of-order timestamps, arbitrary template IDs — decode every record
// bit-exact.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{
		"alpha", "beta", "", " ", "  double", "tab\there", "血", "x=1,y=2",
		"<*>", "blk_123", "/var/log/app.log", "9.9.9.9:80", "a b", "\t",
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		first := rng.Int63n(1 << 30)
		base := time.Unix(rng.Int63n(1e9), rng.Int63n(1e9))
		recs := make([]Record, n)
		for i := range recs {
			nTok := rng.Intn(12)
			parts := make([]string, nTok)
			for j := range parts {
				parts[j] = alphabet[rng.Intn(len(alphabet))]
			}
			recs[i] = Record{
				Offset: first + int64(i),
				// Deltas may be negative: timestamps need not be monotone.
				Time:       base.Add(time.Duration(rng.Int63n(2e9) - 1e9)),
				Raw:        strings.Join(parts, " "),
				TemplateID: rng.Uint64() >> uint(rng.Intn(64)),
			}
		}
		codec := CodecNone
		if trial%2 == 1 {
			codec = CodecFlate
		}
		roundTrip(t, recs, codec)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	if _, _, err := Encode(nil, CodecFlate); err == nil {
		t.Fatal("Encode(nil) should fail")
	}
	recs := sampleRecords(3, 0)
	recs[2].Offset = 99 // not dense
	if _, _, err := Encode(recs, CodecFlate); err == nil {
		t.Fatal("Encode with non-dense offsets should fail")
	}
	if _, _, err := Encode(sampleRecords(3, 0), CodecZstd); err == nil {
		t.Fatal("Encode with gated zstd codec should fail")
	}
}

func TestTemplatePushdown(t *testing.T) {
	r := roundTrip(t, sampleRecords(300, 0), CodecFlate)
	reads := r.BlockReads() // roundTrip decoded once

	// Absent template: metadata answers, payload untouched.
	offs, err := r.ByTemplate(999)
	if err != nil {
		t.Fatal(err)
	}
	if offs != nil {
		t.Fatalf("ByTemplate(999) = %v, want nil", offs)
	}
	if r.BlockReads() != reads {
		t.Fatalf("ByTemplate on absent template decompressed the block (%d -> %d reads)", reads, r.BlockReads())
	}

	// Present template: decompresses once, returns exact offsets.
	offs, err = r.ByTemplate(101)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 100 {
		t.Fatalf("ByTemplate(101) returned %d offsets, want 100", len(offs))
	}
	if r.BlockReads() != reads+1 {
		t.Fatalf("ByTemplate on present template: %d reads, want %d", r.BlockReads(), reads+1)
	}
	if !r.HasTemplate(102) || r.HasTemplate(7) {
		t.Fatal("HasTemplate metadata wrong")
	}
	counts := r.TemplateCounts()
	if counts[101] != 100 || counts[102] != 100 || counts[103] != 100 {
		t.Fatalf("TemplateCounts = %v", counts)
	}
}

func TestTokenSearchBloom(t *testing.T) {
	r := roundTrip(t, sampleRecords(300, 50), CodecFlate)
	reads := r.BlockReads()
	offs, err := r.Search("terminating")
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 100 {
		t.Fatalf("Search(terminating) = %d offsets, want 100", len(offs))
	}
	// A token that cannot be present: bloom must usually skip the decode.
	// (Bloom filters allow false positives, so assert correctness of the
	// result, and only note the common fast path.)
	offs, err = r.Search("definitely-not-a-token-xyzzy")
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 0 {
		t.Fatalf("Search(absent) = %v, want none", offs)
	}
	_ = reads
}

func TestCountSincePushdown(t *testing.T) {
	r := roundTrip(t, sampleRecords(100, 0), CodecFlate)
	reads := r.BlockReads()
	if n, _ := r.CountSince(ts(0)); n != 100 {
		t.Fatalf("CountSince(min) = %d, want 100", n)
	}
	if n, _ := r.CountSince(ts(1000)); n != 0 {
		t.Fatalf("CountSince(beyond max) = %d, want 0", n)
	}
	if r.BlockReads() != reads {
		t.Fatal("all-or-nothing CountSince should not decompress")
	}
	if n, _ := r.CountSince(ts(60)); n != 40 {
		t.Fatalf("CountSince(mid) = %d, want 40", n)
	}
	if r.BlockReads() != reads+1 {
		t.Fatal("mid-range CountSince should decompress exactly once")
	}
	// Exact boundary timestamps: cut == MinTime takes the all-in fast
	// path (every record has Time >= MinTime), and cut == MaxTime must
	// NOT take the all-out fast path — the record at MaxTime itself
	// still counts. Both must agree with the linear scan.
	if n, _ := r.CountSince(r.MinTime()); n != 100 {
		t.Fatalf("CountSince(MinTime) = %d, want 100", n)
	}
	if n, _ := r.CountSince(r.MaxTime()); n != 1 {
		t.Fatalf("CountSince(MaxTime) = %d, want 1", n)
	}
	if n, _ := r.CountSince(r.MaxTime().Add(time.Nanosecond)); n != 0 {
		t.Fatalf("CountSince(MaxTime+1ns) = %d, want 0", n)
	}
	if n, _ := r.CountSince(r.MinTime().Add(-time.Nanosecond)); n != 100 {
		t.Fatalf("CountSince(MinTime-1ns) = %d, want 100", n)
	}
}

// TestOutOfOrderTimesWithinBlock: concurrent ingest queues hand the
// sealer records whose timestamps are not monotone. The time metadata
// (min/max bounds, delta-encoded payload times) and CountSince must stay
// exact regardless of intra-block time order.
func TestOutOfOrderTimesWithinBlock(t *testing.T) {
	recs := sampleRecords(100, 0)
	// Interleave two clocks: 50, 0, 51, 1, ... — max appears early, min
	// in the middle.
	for i := range recs {
		if i%2 == 0 {
			recs[i].Time = ts(50 + i/2)
		} else {
			recs[i].Time = ts(i / 2)
		}
	}
	r := roundTrip(t, recs, CodecFlate)
	if !r.MinTime().Equal(ts(0)) || !r.MaxTime().Equal(ts(99)) {
		t.Fatalf("time bounds = [%v, %v], want [ts(0), ts(99)]", r.MinTime(), r.MaxTime())
	}
	got, err := r.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !got[i].Time.Equal(recs[i].Time) {
			t.Fatalf("record %d time %v, want %v", i, got[i].Time, recs[i].Time)
		}
	}
	for _, cut := range []int{0, 25, 50, 75, 100} {
		want := 0
		for _, rec := range recs {
			if !rec.Time.Before(ts(cut)) {
				want++
			}
		}
		if n, _ := r.CountSince(ts(cut)); n != want {
			t.Fatalf("CountSince(ts(%d)) = %d, want %d", cut, n, want)
		}
	}
}

// TestCompressionRatioSyntheticDatasets is the acceptance bound: on the
// bundled synthetic LogHub datasets, a flate segment must encode to at
// most 40% of the raw bytes.
func TestCompressionRatioSyntheticDatasets(t *testing.T) {
	for _, name := range []string{"HDFS", "Apache", "Linux", "Zookeeper", "Spark"} {
		ds, err := datagen.LogHub(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]Record, len(ds.Lines))
		for i, line := range ds.Lines {
			recs[i] = Record{
				Offset:     int64(i),
				Time:       ts(i),
				Raw:        line,
				TemplateID: uint64(ds.Truth[i]) + 1,
			}
		}
		blob, stats, err := Encode(recs, CodecFlate)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(blob)) / float64(stats.RawBytes)
		t.Logf("%s: %d raw -> %d encoded (%.1f%%), %d dict entries, %d tokens",
			name, stats.RawBytes, len(blob), 100*ratio, stats.DictEntries, stats.Tokens)
		if ratio > 0.40 {
			t.Errorf("%s: compression ratio %.1f%% exceeds 40%% bound", name, 100*ratio)
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	blob, _, err := Encode(sampleRecords(50, 0), CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(blob[:10]); err == nil {
		t.Fatal("Open(truncated) should fail")
	}
	for _, pos := range []int{0, 5, 9, 30, headerSize + 3, len(blob) - 2} {
		bad := append([]byte(nil), blob...)
		bad[pos] ^= 0xFF
		if _, err := Open(bad); err == nil {
			t.Fatalf("Open with byte %d flipped should fail (checksum)", pos)
		}
	}
}

func TestWriteOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000000.bbsg")
	recs := sampleRecords(120, 7)
	blob, _, err := Encode(recs, CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, blob); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + TmpSuffix); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind")
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 120 || r.FirstOffset() != 7 {
		t.Fatalf("reopened segment count=%d first=%d", r.Count(), r.FirstOffset())
	}
	rec, err := r.Get(7 + 64)
	if err != nil || rec.Raw != recs[64].Raw {
		t.Fatalf("Get = %+v, %v", rec, err)
	}
}

func TestParseCodec(t *testing.T) {
	for s, want := range map[string]Codec{"": CodecFlate, "flate": CodecFlate, "none": CodecNone} {
		c, err := ParseCodec(s)
		if err != nil || c != want {
			t.Fatalf("ParseCodec(%q) = %v, %v", s, c, err)
		}
	}
	if _, err := ParseCodec("zstd"); err == nil {
		t.Fatal("zstd must be gated in this build")
	}
	if _, err := ParseCodec("lz77"); err == nil {
		t.Fatal("unknown codec must error")
	}
}

func TestTemplateMetaSamples(t *testing.T) {
	recs := sampleRecords(64, 1000)
	r := roundTrip(t, recs, CodecFlate)
	baseReads := r.BlockReads() // roundTrip decoded once to verify
	// Expected: first 5 offsets per template, computed independently.
	want := map[uint64][]int64{}
	for _, rec := range recs {
		if len(want[rec.TemplateID]) < 5 {
			want[rec.TemplateID] = append(want[rec.TemplateID], rec.Offset)
		}
	}
	metas := r.TemplateMetas()
	if len(metas) != len(want) {
		t.Fatalf("TemplateMetas returned %d entries, want %d", len(metas), len(want))
	}
	counts := r.TemplateCounts()
	for _, tm := range metas {
		if tm.Count != counts[tm.ID] {
			t.Errorf("template %d count %d != TemplateCounts %d", tm.ID, tm.Count, counts[tm.ID])
		}
		if fmt.Sprint(tm.Samples) != fmt.Sprint(want[tm.ID]) {
			t.Errorf("template %d samples %v, want %v", tm.ID, tm.Samples, want[tm.ID])
		}
	}
	// Reading metadata must not decompress the payload.
	if got := r.BlockReads() - baseReads; got != 0 {
		t.Errorf("TemplateMetas paid %d block reads", got)
	}
}

// downgradeSegment rewrites a current-version blob's metadata to an older
// version's layout (v2 drops per-template time bounds, v1 additionally
// drops sample offsets), recomputing the header length and CRC. It stands
// in for real old segments so reader compatibility stays locked in.
func downgradeSegment(t *testing.T, blob []byte, version int) []byte {
	t.Helper()
	metaLen := int(binary.LittleEndian.Uint32(blob[52:56]))
	meta := blob[headerSize : headerSize+metaLen]
	payload := blob[headerSize+metaLen : len(blob)-crcSize]
	c := &cursor{buf: meta}
	n, err := c.count(2)
	if err != nil {
		t.Fatal(err)
	}
	read := func() uint64 {
		v, err := c.uvarint()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	var newMeta []byte
	newMeta = appendUvarint(newMeta, uint64(n))
	for i := 0; i < n; i++ {
		id, cnt, ns := read(), read(), read()
		deltas := make([]uint64, ns)
		for j := range deltas {
			deltas[j] = read()
		}
		read() // per-template min delta
		read() // per-template span
		newMeta = appendUvarint(newMeta, id)
		newMeta = appendUvarint(newMeta, cnt)
		if version >= 2 {
			newMeta = appendUvarint(newMeta, ns)
			for _, d := range deltas {
				newMeta = appendUvarint(newMeta, d)
			}
		}
	}
	newMeta = append(newMeta, meta[c.pos:]...) // bloom section is unchanged
	out := make([]byte, 0, headerSize+len(newMeta)+len(payload)+crcSize)
	out = append(out, blob[:headerSize]...)
	out[4] = byte(version)
	binary.LittleEndian.PutUint32(out[52:56], uint32(len(newMeta)))
	out = append(out, newMeta...)
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out
}

// TestVersionCompat: v1 and v2 segments stay readable next to v3 — full
// record round-trip, metadata degradation (v1: no samples; v1/v2: template
// time bounds widen to the block bounds), and range queries stay exact by
// falling back to payload decodes.
func TestVersionCompat(t *testing.T) {
	recs := sampleRecords(120, 500)
	blob, _, err := Encode(recs, CodecFlate)
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []int{1, 2} {
		t.Run(fmt.Sprintf("v%d", version), func(t *testing.T) {
			old := downgradeSegment(t, blob, version)
			r, err := Open(old)
			if err != nil {
				t.Fatalf("Open(v%d): %v", version, err)
			}
			got, err := r.Records()
			if err != nil {
				t.Fatal(err)
			}
			for i := range recs {
				if got[i].Raw != recs[i].Raw || got[i].TemplateID != recs[i].TemplateID ||
					got[i].Offset != recs[i].Offset || !got[i].Time.Equal(recs[i].Time) {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
				}
			}
			for _, tm := range r.TemplateMetas() {
				if version < 2 && len(tm.Samples) != 0 {
					t.Errorf("v1 template %d has samples %v", tm.ID, tm.Samples)
				}
				if version >= 2 && len(tm.Samples) == 0 {
					t.Errorf("v2 template %d lost its samples", tm.ID)
				}
				if !tm.MinTime.Equal(r.MinTime()) || !tm.MaxTime.Equal(r.MaxTime()) {
					t.Errorf("v%d template %d bounds [%v,%v], want block bounds [%v,%v]",
						version, tm.ID, tm.MinTime, tm.MaxTime, r.MinTime(), r.MaxTime())
				}
			}
			// A mid-block range must still count exactly (via payload
			// decode, since old metadata cannot prune templates).
			metas, err := r.TemplateMetasRange(ts(30), ts(89))
			if err != nil {
				t.Fatal(err)
			}
			want := map[uint64]int{}
			for _, rec := range recs {
				if !rec.Time.Before(ts(30)) && !rec.Time.After(ts(89)) {
					want[rec.TemplateID]++
				}
			}
			for _, tm := range metas {
				if tm.Count != want[tm.ID] {
					t.Errorf("v%d range count template %d = %d, want %d", version, tm.ID, tm.Count, want[tm.ID])
				}
				delete(want, tm.ID)
			}
			if len(want) != 0 {
				t.Errorf("v%d range missed templates %v", version, want)
			}
		})
	}
}

// TestTemplateTimeBounds: v3 metadata carries exact per-template min/max
// timestamps.
func TestTemplateTimeBounds(t *testing.T) {
	recs := sampleRecords(90, 0)
	r := roundTrip(t, recs, CodecFlate)
	wantMin, wantMax := map[uint64]time.Time{}, map[uint64]time.Time{}
	for _, rec := range recs {
		if cur, ok := wantMin[rec.TemplateID]; !ok || rec.Time.Before(cur) {
			wantMin[rec.TemplateID] = rec.Time
		}
		if cur, ok := wantMax[rec.TemplateID]; !ok || rec.Time.After(cur) {
			wantMax[rec.TemplateID] = rec.Time
		}
	}
	for _, tm := range r.TemplateMetas() {
		if !tm.MinTime.Equal(wantMin[tm.ID]) || !tm.MaxTime.Equal(wantMax[tm.ID]) {
			t.Errorf("template %d bounds [%v,%v], want [%v,%v]",
				tm.ID, tm.MinTime, tm.MaxTime, wantMin[tm.ID], wantMax[tm.ID])
		}
	}
}

// TestTemplateMetasRangePushdown exercises every pruning tier: whole-block
// prune, whole-block metadata answer, per-template prune inside a
// straddling block, and the payload decode only when a template itself
// straddles the boundary.
func TestTemplateMetasRangePushdown(t *testing.T) {
	// Two templates with disjoint time ranges inside one block:
	// template 1 at ts(0..49), template 2 at ts(50..99).
	recs := make([]Record, 100)
	for i := range recs {
		id := uint64(1)
		if i >= 50 {
			id = 2
		}
		recs[i] = Record{Offset: int64(i), Time: ts(i), Raw: fmt.Sprintf("event %d", i), TemplateID: id}
	}
	r := roundTrip(t, recs, CodecFlate)
	reads := r.BlockReads()

	// Disjoint range: metadata-only, nothing returned.
	if metas, err := r.TemplateMetasRange(ts(1000), ts(2000)); err != nil || metas != nil {
		t.Fatalf("disjoint range = %v, %v", metas, err)
	}
	if !r.OverlapsRange(ts(0), ts(99)) || r.OverlapsRange(ts(100), ts(200)) {
		t.Fatal("OverlapsRange metadata answers wrong")
	}
	// Covering range: metadata-only, full answer.
	metas, err := r.TemplateMetasRange(ts(0), ts(99))
	if err != nil || len(metas) != 2 || metas[0].Count != 50 || metas[1].Count != 50 {
		t.Fatalf("covering range = %+v, %v", metas, err)
	}
	// Straddling block, but both templates decidable from their own
	// bounds: template 1 prunes away, template 2 is fully inside.
	metas, err = r.TemplateMetasRange(ts(50), ts(200))
	if err != nil || len(metas) != 1 || metas[0].ID != 2 || metas[0].Count != 50 {
		t.Fatalf("per-template prune = %+v, %v", metas, err)
	}
	if r.BlockReads() != reads {
		t.Fatalf("metadata-decidable ranges decompressed the payload (%d -> %d reads)", reads, r.BlockReads())
	}
	// A range splitting template 2 itself: one decode, exact counts and
	// in-range samples.
	metas, err = r.TemplateMetasRange(ts(60), ts(69))
	if err != nil || len(metas) != 1 || metas[0].ID != 2 || metas[0].Count != 10 {
		t.Fatalf("straddling template = %+v, %v", metas, err)
	}
	if want := []int64{60, 61, 62, 63, 64}; fmt.Sprint(metas[0].Samples) != fmt.Sprint(want) {
		t.Fatalf("straddling samples = %v, want %v", metas[0].Samples, want)
	}
	if !metas[0].MinTime.Equal(ts(60)) || !metas[0].MaxTime.Equal(ts(69)) {
		t.Fatalf("straddling bounds = [%v,%v]", metas[0].MinTime, metas[0].MaxTime)
	}
	if r.BlockReads() != reads+1 {
		t.Fatalf("straddling range paid %d reads, want 1", r.BlockReads()-reads)
	}
	// Unbounded sides.
	if metas, _ := r.TemplateMetasRange(time.Time{}, time.Time{}); len(metas) != 2 {
		t.Fatalf("unbounded range = %+v", metas)
	}
	if metas, _ := r.TemplateMetasRange(ts(50), time.Time{}); len(metas) != 1 || metas[0].ID != 2 {
		t.Fatalf("from-only range = %+v", metas)
	}
	// Inverted range is empty, not an error.
	if metas, err := r.TemplateMetasRange(ts(80), ts(20)); err != nil || metas != nil {
		t.Fatalf("inverted range = %v, %v", metas, err)
	}
	// Bounds outside the int64-nanosecond epoch (years 1678–2262) must
	// saturate, not wrap: a from in year 3000 matches nothing, a from in
	// year 1000 matches everything, and a [1000, 3000] range covers all.
	y1000 := time.Date(1000, 1, 1, 0, 0, 0, 0, time.UTC)
	y3000 := time.Date(3000, 1, 1, 0, 0, 0, 0, time.UTC)
	if metas, err := r.TemplateMetasRange(y3000, time.Time{}); err != nil || metas != nil {
		t.Fatalf("far-future from = %v, %v, want nothing", metas, err)
	}
	if r.OverlapsRange(y3000, time.Time{}) {
		t.Fatal("OverlapsRange(year 3000, ∞) = true")
	}
	if metas, _ := r.TemplateMetasRange(y1000, time.Time{}); len(metas) != 2 {
		t.Fatalf("far-past from = %+v, want both templates", metas)
	}
	if metas, _ := r.TemplateMetasRange(y1000, y3000); len(metas) != 2 {
		t.Fatalf("epoch-spanning range = %+v, want both templates", metas)
	}
	if metas, err := r.TemplateMetasRange(time.Time{}, y1000); err != nil || metas != nil {
		t.Fatalf("far-past to = %v, %v, want nothing", metas, err)
	}
}

// TestSearchTokenizationRoundTrip locks write-path (bloom) and read-path
// (Search) tokenization together: every token the shared tokenizer
// produces from a stored line must be findable, including lines whose
// whitespace is not single spaces (tabs, runs of spaces) where a
// Fields/Split mismatch would silently drop results.
func TestSearchTokenizationRoundTrip(t *testing.T) {
	raws := []string{
		"plain space separated line",
		"tab\tseparated\ttokens here",
		"run   of    spaces",
		" leading and trailing ",
		"mixed \t whitespace\t kinds",
		"unicode 血 token",
	}
	recs := make([]Record, len(raws))
	for i, raw := range raws {
		recs[i] = Record{Offset: int64(i), Time: ts(i), Raw: raw, TemplateID: 7}
	}
	r := roundTrip(t, recs, CodecFlate)
	for i, raw := range raws {
		for _, tok := range Tokenize(raw) {
			if !r.MayContainToken(tok) {
				t.Fatalf("bloom misses token %q of stored line %q", tok, raw)
			}
			offs, err := r.Search(tok)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, off := range offs {
				if off == int64(i) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("Search(%q) = %v, missing offset %d (line %q)", tok, offs, i, raw)
			}
		}
	}
}

func TestOpenRejectsUnknownVersion(t *testing.T) {
	recs := sampleRecords(8, 0)
	blob, _, err := Encode(recs, CodecNone)
	if err != nil {
		t.Fatal(err)
	}
	blob[4] = formatVersion + 1
	// Recompute the CRC so only the version check can reject it.
	body := blob[:len(blob)-crcSize]
	binary.LittleEndian.PutUint32(blob[len(blob)-crcSize:], crc32.ChecksumIEEE(body))
	if _, err := Open(blob); err == nil {
		t.Fatal("future format version accepted")
	}
}

// TestTokenizeAppendMatchesFields: the append variant must agree with
// Tokenize (strings.Fields) byte-for-byte — a divergence would desync
// the hot token index from the sealed bloom filters.
func TestTokenizeAppendMatchesFields(t *testing.T) {
	lines := []string{
		"",
		"   \t \n ",
		"a",
		" leading and trailing  ",
		"many   internal \t tabs\tand  runs",
		"unicode héllo nbsp separated", // U+00A0 is Unicode space
		" em-space tokens",
		"plain ascii line with words",
	}
	for _, line := range lines {
		want := Tokenize(line)
		got := TokenizeAppend(nil, line)
		if len(got) != len(want) {
			t.Fatalf("TokenizeAppend(%q) = %v, want %v", line, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("TokenizeAppend(%q)[%d] = %q, want %q", line, i, got[i], want[i])
			}
		}
		withPrefix := TokenizeAppend([]string{"p"}, line)
		if len(withPrefix) != len(want)+1 || withPrefix[0] != "p" {
			t.Fatalf("prefix handling broke for %q: %v", line, withPrefix)
		}
	}
}
