package segment

import "testing"

// FuzzOpen throws arbitrary bytes at the segment decoder. The invariant:
// Open and a full Records decode either succeed or return an error —
// never panic, never over-allocate past the input-proportional bounds the
// cursor enforces.
func FuzzOpen(f *testing.F) {
	for _, n := range []int{1, 10, 300} {
		for _, codec := range []Codec{CodecNone, CodecFlate} {
			if blob, _, err := Encode(sampleRecords(n, int64(n)), codec); err == nil {
				f.Add(blob)
			}
		}
	}
	f.Add([]byte(magic))
	f.Add([]byte("BBSG\x01\x01\x00\x00garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Open(data)
		if err != nil {
			return
		}
		recs, err := r.Records()
		if err != nil {
			return
		}
		if len(recs) != r.Count() {
			t.Fatalf("decoded %d records, header says %d", len(recs), r.Count())
		}
	})
}
