// Package service implements the cloud log-parsing service of §3: topics
// with ingestion pipelines that match logs against the current model
// before appending to storage, volume- and time-triggered periodic
// retraining with model merging, reservoir sampling against OOM on huge
// volumes, and query-time precision control.
package service

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bytebrain/internal/core"
	"bytebrain/internal/logstore"
	"bytebrain/internal/segment"
	"bytebrain/internal/template"
)

// Config tunes a Service.
type Config struct {
	// Parser configures the core parser for every topic.
	Parser core.Options
	// TrainVolume triggers retraining after this many new records
	// (default 10 000).
	TrainVolume int
	// TrainInterval triggers retraining after this much time since the
	// last cycle, checked lazily at ingestion (default 5 minutes — the
	// paper configures initial training to finish within that bound).
	TrainInterval time.Duration
	// SampleCap bounds the training buffer; beyond it, reservoir
	// sampling keeps a uniform subset ("for exceptionally large log
	// volumes, random sampling prevents OOM issues"). Default 50 000.
	SampleCap int
	// DefaultThreshold is the query threshold when the caller does not
	// specify one (default 0.7).
	DefaultThreshold float64
	// DataDir, when set, persists every topic to disk (append-only
	// segments plus model snapshots) under DataDir/<topic>; topics
	// recover on restart. Empty keeps everything in memory.
	DataDir string
	// SegmentBytes > 0 enables the template-aware compacting segment
	// store: hot writes stay in memory and a background compactor seals
	// blocks of this raw size into compressed columnar segments
	// (on disk under DataDir when set, otherwise as in-memory blobs).
	// Grouped queries push template IDs down to segment metadata and
	// skip non-matching blocks entirely.
	SegmentBytes int64
	// SegmentCodec selects the sealed-payload compression: "flate"
	// (default), "none", or "zstd" (gated — unavailable in this build).
	SegmentCodec string
	// Now supplies timestamps; tests override it. Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TrainVolume <= 0 {
		c.TrainVolume = 10000
	}
	if c.TrainInterval <= 0 {
		c.TrainInterval = 5 * time.Minute
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 50000
	}
	if c.DefaultThreshold <= 0 {
		c.DefaultThreshold = 0.7
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Service manages log topics. All methods are safe for concurrent use.
type Service struct {
	cfg Config

	mu     sync.RWMutex
	topics map[string]*topicState
}

type topicState struct {
	mu       sync.Mutex
	name     string
	store    logstore.Store
	internal logstore.SnapshotStore
	parser   *core.Parser
	model    *core.Model
	matcher  *core.Matcher

	buffer    []string // training reservoir
	bufSeen   int      // lines offered to the reservoir since last train
	sinceLast int      // records since last training
	lastTrain time.Time
	trainings int
	rng       *rand.Rand
}

// New creates a Service.
func New(cfg Config) *Service {
	return &Service{cfg: cfg.withDefaults(), topics: make(map[string]*topicState)}
}

// CreateTopic registers a topic. With DataDir configured the topic is
// persistent and recovers any existing on-disk state (records replayed,
// latest model snapshot reloaded). Creating an already-registered topic is
// an error.
func (s *Service) CreateTopic(name string) error {
	if name == "" {
		return fmt.Errorf("service: empty topic name")
	}
	if strings.ContainsAny(name, "/\\ ") {
		return fmt.Errorf("service: invalid topic name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.topics[name]; ok {
		return fmt.Errorf("service: topic %q exists", name)
	}
	st := &topicState{
		name:      name,
		parser:    core.New(s.cfg.Parser),
		lastTrain: s.cfg.Now(),
		rng:       rand.New(rand.NewSource(int64(len(name)) + 17)),
	}
	switch {
	case s.cfg.SegmentBytes > 0:
		// Compacting segment store: hot in-memory block plus sealed
		// compressed segments, persistent when DataDir is set.
		codec, err := segment.ParseCodec(s.cfg.SegmentCodec)
		if err != nil {
			return fmt.Errorf("service: topic %q: %w", name, err)
		}
		ccfg := logstore.CompactConfig{SegmentBytes: s.cfg.SegmentBytes, Codec: codec}
		if s.cfg.DataDir != "" {
			ccfg.Dir = filepath.Join(s.cfg.DataDir, name, "records")
		}
		store, err := logstore.OpenCompacting(name, ccfg)
		if err != nil {
			return err
		}
		st.store = store
		if s.cfg.DataDir == "" {
			st.internal = logstore.NewInternal()
		} else {
			internal, err := logstore.OpenDiskInternal(filepath.Join(s.cfg.DataDir, name, "models"))
			if err != nil {
				store.Close()
				return err
			}
			st.internal = internal
		}
		if err := st.recoverLocked(); err != nil {
			store.Close()
			return err
		}
	case s.cfg.DataDir == "":
		st.store = logstore.NewStore(name)
		st.internal = logstore.NewInternal()
	default:
		dir := filepath.Join(s.cfg.DataDir, name)
		store, err := logstore.OpenDiskTopic(filepath.Join(dir, "records"))
		if err != nil {
			return err
		}
		internal, err := logstore.OpenDiskInternal(filepath.Join(dir, "models"))
		if err != nil {
			store.Close()
			return err
		}
		st.store = store
		st.internal = internal
		if err := st.recoverLocked(); err != nil {
			store.Close()
			return err
		}
	}
	s.topics[name] = st
	return nil
}

// recoverLocked reloads the latest persisted model after a restart.
func (st *topicState) recoverLocked() error {
	data, err := st.internal.LatestSnapshot()
	if err != nil {
		if err == logstore.ErrNoSnapshot {
			return nil
		}
		return err
	}
	model := core.NewModel()
	if err := model.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("service: recover %s: %w", st.name, err)
	}
	matcher, err := st.parser.NewMatcher(model)
	if err != nil {
		return fmt.Errorf("service: recover %s: %w", st.name, err)
	}
	st.model = model
	st.matcher = matcher
	st.trainings = st.internal.Snapshots()
	return nil
}

// Close flushes and closes every topic store.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for _, st := range s.topics {
		st.mu.Lock()
		if err := st.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		st.mu.Unlock()
	}
	return firstErr
}

// Topics lists topic names, sorted.
func (s *Service) Topics() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.topics))
	for n := range s.topics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Service) topic(name string) (*topicState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.topics[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown topic %q", name)
	}
	return st, nil
}

// Ingest appends lines to the topic: each line is matched against the
// current model (template IDs are computed before the record is written,
// as the indexing pipeline requires), then stored. Unmatched logs become
// temporary templates via the matcher. Training triggers lazily on volume
// or elapsed-interval.
func (s *Service) Ingest(topicName string, lines []string) error {
	st, err := s.topic(topicName)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	now := s.cfg.Now()
	for _, line := range lines {
		var tmplID uint64
		if st.matcher != nil {
			tmplID = st.matcher.Match(line).NodeID
		}
		if _, err := st.store.Append(now, line, tmplID); err != nil {
			return fmt.Errorf("service: ingest %s: %w", topicName, err)
		}
		st.offerLocked(line)
	}
	st.sinceLast += len(lines)
	if st.sinceLast >= s.cfg.TrainVolume || now.Sub(st.lastTrain) >= s.cfg.TrainInterval {
		return s.trainLocked(st, now)
	}
	return nil
}

// offerLocked feeds one line into the training reservoir.
func (st *topicState) offerLocked(line string) {
	st.bufSeen++
	if len(st.buffer) < cap(st.buffer) || cap(st.buffer) == 0 {
		if cap(st.buffer) == 0 {
			st.buffer = make([]string, 0, 1024)
		}
		st.buffer = append(st.buffer, line)
		return
	}
	// Reservoir replacement.
	if j := st.rng.Intn(st.bufSeen); j < len(st.buffer) {
		st.buffer[j] = line
	}
}

// Train forces a training cycle for the topic.
func (s *Service) Train(topicName string) error {
	st, err := s.topic(topicName)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return s.trainLocked(st, s.cfg.Now())
}

func (s *Service) trainLocked(st *topicState, now time.Time) error {
	if len(st.buffer) == 0 {
		st.lastTrain = now
		st.sinceLast = 0
		return nil
	}
	res, err := st.parser.TrainMerge(st.model, st.buffer)
	if err != nil {
		return fmt.Errorf("service: train %s: %w", st.name, err)
	}
	if err := res.Model.Validate(); err != nil {
		return fmt.Errorf("service: train %s produced invalid model: %w", st.name, err)
	}
	matcher, err := st.parser.NewMatcher(res.Model)
	if err != nil {
		return fmt.Errorf("service: train %s: %w", st.name, err)
	}
	st.model = res.Model
	st.matcher = matcher
	st.trainings++
	st.lastTrain = now
	st.sinceLast = 0
	st.buffer = st.buffer[:0]
	st.bufSeen = 0
	data, err := res.Model.MarshalBinary()
	if err != nil {
		return fmt.Errorf("service: snapshot %s: %w", st.name, err)
	}
	if err := st.internal.AppendSnapshot(now, data); err != nil {
		return fmt.Errorf("service: snapshot %s: %w", st.name, err)
	}
	return nil
}

// Stats reports operational counters for a topic.
type Stats struct {
	Records    int
	Bytes      int64
	Templates  int
	Trainings  int
	ModelBytes int
	Snapshots  int
	// Segment-store compression counters, zero unless Config.SegmentBytes
	// enabled the compacting store for this topic.
	Segments               int     `json:",omitempty"`
	SegmentRecords         int     `json:",omitempty"`
	SegmentRawBytes        int64   `json:",omitempty"`
	SegmentCompressedBytes int64   `json:",omitempty"`
	SegmentRatio           float64 `json:",omitempty"`
	SegmentBlockReads      int64   `json:",omitempty"`
	SegmentCodec           string  `json:",omitempty"`
}

// TopicStats returns counters for one topic.
func (s *Service) TopicStats(topicName string) (Stats, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return Stats{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	stats := Stats{
		Records:   st.store.Len(),
		Bytes:     st.store.Bytes(),
		Trainings: st.trainings,
		Snapshots: st.internal.Snapshots(),
	}
	if st.model != nil {
		stats.Templates = st.model.Len()
		if b, err := st.model.MarshalBinary(); err == nil {
			stats.ModelBytes = len(b)
		}
	}
	if cs, ok := st.store.(*logstore.CompactingStore); ok {
		sst := cs.SegmentStats()
		stats.Segments = sst.Segments
		stats.SegmentRecords = sst.SealedRecords
		stats.SegmentRawBytes = sst.RawBytes
		stats.SegmentCompressedBytes = sst.CompressedBytes
		stats.SegmentRatio = sst.Ratio()
		stats.SegmentBlockReads = sst.BlockReads
		stats.SegmentCodec = sst.Codec
	}
	return stats, nil
}

// Compact forces the topic's current hot block to seal into a compressed
// segment and waits for the compactor to drain. It errors when the topic
// does not use the segment store (Config.SegmentBytes unset).
func (s *Service) Compact(topicName string) error {
	st, err := s.topic(topicName)
	if err != nil {
		return err
	}
	cs, ok := st.store.(*logstore.CompactingStore)
	if !ok {
		return fmt.Errorf("service: topic %q has no segment store (set SegmentBytes)", topicName)
	}
	if err := cs.Seal(); err != nil {
		return err
	}
	cs.WaitIdle()
	return cs.SealError()
}

// TemplateRow is one line of a grouped query result.
type TemplateRow struct {
	// TemplateID is the rolled-up node ID at the query threshold.
	TemplateID uint64
	// Template is the display text, with consecutive wildcards merged
	// (§7's query-result optimization).
	Template string
	// Saturation is the rolled-up node's precision score.
	Saturation float64
	// Count is how many queried records grouped here.
	Count int
	// SampleOffsets holds up to 5 example record offsets.
	SampleOffsets []int64
}

// Query groups a topic's records by template at the given precision
// threshold (≤ 0 uses the default). It is the §3 "Query" path: records
// carry their most precise template ID; ancestors are traversed per
// threshold without reprocessing any log.
func (s *Service) Query(topicName string, threshold float64) ([]TemplateRow, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	model := st.model
	st.mu.Unlock()
	if model == nil {
		return nil, fmt.Errorf("service: topic %q has no trained model yet", topicName)
	}
	if threshold <= 0 {
		threshold = s.cfg.DefaultThreshold
	}
	rows := map[uint64]*TemplateRow{}
	st.store.Scan(0, -1, func(r logstore.Record) bool {
		id := r.TemplateID
		if id != 0 {
			if n, err := model.TemplateAt(id, threshold); err == nil {
				id = n.ID
			}
		}
		row, ok := rows[id]
		if !ok {
			row = &TemplateRow{TemplateID: id}
			if n := model.Nodes[model.Resolve(id)]; n != nil {
				row.Template = template.MergeConsecutiveWildcards(n.Template)
				row.Saturation = n.Saturation
			} else {
				// Records ingested before the first training carry no
				// template (§3: "templates are unavailable for logs
				// before first training completes").
				row.Template = "(unparsed: ingested before first training)"
			}
			rows[id] = row
		}
		row.Count++
		if len(row.SampleOffsets) < 5 {
			row.SampleOffsets = append(row.SampleOffsets, r.Offset)
		}
		return true
	})
	out := make([]TemplateRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TemplateID < out[j].TemplateID
	})
	return out, nil
}

// QueryMerged is Query followed by the §7 response-layer optimization:
// rows whose display templates are identical after consecutive-wildcard
// merging — typically variable-length list output from one print statement
// — are grouped into a single row. Users see "users <*>" once; the
// underlying fixed-length templates keep matching fast.
func (s *Service) QueryMerged(topicName string, threshold float64) ([]TemplateRow, error) {
	rows, err := s.Query(topicName, threshold)
	if err != nil {
		return nil, err
	}
	byText := make(map[string]*TemplateRow)
	var order []string
	for i := range rows {
		r := rows[i]
		agg, ok := byText[r.Template]
		if !ok {
			cp := r
			byText[r.Template] = &cp
			order = append(order, r.Template)
			continue
		}
		agg.Count += r.Count
		if r.Saturation < agg.Saturation {
			// Report the coarsest member's precision.
			agg.Saturation = r.Saturation
		}
		for _, off := range r.SampleOffsets {
			if len(agg.SampleOffsets) < 5 {
				agg.SampleOffsets = append(agg.SampleOffsets, off)
			}
		}
	}
	out := make([]TemplateRow, 0, len(order))
	for _, text := range order {
		out = append(out, *byText[text])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TemplateID < out[j].TemplateID
	})
	return out, nil
}

// Model returns the topic's current model (nil before first training).
func (s *Service) Model(topicName string) (*core.Model, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.model, nil
}

// Store exposes the topic's record store (read-only use).
func (s *Service) Store(topicName string) (logstore.Store, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	return st.store, nil
}
