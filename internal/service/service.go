// Package service implements the cloud log-parsing service of §3: topics
// with ingestion pipelines that match logs against the current model
// before appending to storage, volume- and time-triggered periodic
// retraining with model merging, reservoir sampling against OOM on huge
// volumes, and query-time precision control.
//
// The ingestion hot path is lock-free: the current (model, matcher) pair
// is published through an atomic pointer, matching runs against that
// immutable snapshot with no topic lock, appends go straight to the
// store (which serializes internally), and the only critical section is
// a short reservoir offer behind its own small mutex. Retraining runs in
// a per-topic background goroutine and swaps the snapshot in atomically
// when it finishes, so training never stalls ingestion.
package service

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bytebrain/internal/core"
	"bytebrain/internal/fsx"
	"bytebrain/internal/logstore"
	"bytebrain/internal/netingest"
	"bytebrain/internal/obs"
	"bytebrain/internal/segment"
	"bytebrain/internal/template"
)

// Config tunes a Service.
type Config struct {
	// Parser configures the core parser for every topic.
	Parser core.Options
	// TrainVolume triggers retraining after this many new records
	// (default 10 000).
	TrainVolume int
	// TrainInterval triggers retraining after this much time since the
	// last cycle, checked lazily at ingestion (default 5 minutes — the
	// paper configures initial training to finish within that bound).
	TrainInterval time.Duration
	// SampleCap bounds the training buffer; beyond it, reservoir
	// sampling keeps a uniform subset ("for exceptionally large log
	// volumes, random sampling prevents OOM issues"). Default 50 000.
	SampleCap int
	// DefaultThreshold is the query threshold when the caller does not
	// specify one (default 0.7).
	DefaultThreshold float64
	// DataDir, when set, persists every topic to disk (append-only
	// segments plus model snapshots) under DataDir/<topic>; topics
	// recover on restart. Empty keeps everything in memory.
	DataDir string
	// SegmentBytes > 0 enables the template-aware compacting segment
	// store: hot writes stay in memory and a background compactor seals
	// blocks of this raw size into compressed columnar segments
	// (on disk under DataDir when set, otherwise as in-memory blobs).
	// Grouped queries push template IDs down to segment metadata and
	// skip non-matching blocks entirely.
	SegmentBytes int64
	// SegmentCodec selects the sealed-payload compression: "flate"
	// (default), "none", or "zstd" (gated — unavailable in this build).
	SegmentCodec string
	// SnapshotRetain > 0 bounds the internal topic: only the newest
	// SnapshotRetain model snapshots are kept per topic (plus periodic
	// checkpoints, see SnapshotCheckpointEvery). 0 keeps every snapshot.
	SnapshotRetain int
	// SnapshotCheckpointEvery > 0 additionally retains every Nth
	// snapshot as a checkpoint when SnapshotRetain prunes, preserving a
	// sparse training history. 0 keeps nothing beyond the latest K.
	SnapshotCheckpointEvery int
	// TopicShards > 1 fans every topic's store out over this many
	// sub-stores (each the kind the knobs above select, persisted under
	// DataDir/<topic>/records/shard-<i>) with queue→shard append
	// affinity, so one topic's appends scale with cores instead of
	// serializing on a single store mutex. Offsets are namespaced
	// shard<<48|local. Default 1 keeps the single-store layout and
	// on-disk compatibility; the shard count of a persisted topic must
	// not shrink between runs.
	TopicShards int
	// IngestQueues is the default worker-queue count for ingestion
	// pipelines created with NewIngester(topic, 0, _) and for the HTTP
	// async ingest path (default 4).
	IngestQueues int
	// IngestQueueDepth is the default per-queue depth for those
	// pipelines, in LINES (default 1024): a full queue buffers at most
	// this many lines before Submit/SubmitBatch block. Queues carry
	// chunks of up to 256 lines, so the underlying channel holds
	// depth/256 chunks.
	IngestQueueDepth int
	// LineCacheCap bounds how many distinct raw lines one model
	// snapshot's line cache memoizes (default 65536). At the cap the
	// cache evicts wholesale — a fresh generation replaces the full map,
	// so recent repeats keep memoizing instead of silently degrading —
	// and the eviction is counted in metrics and /stats.
	LineCacheCap int
	// SlowQueryThreshold, when > 0, logs every query (grouped, template,
	// search, time-range) that takes at least this long as a structured
	// slow-query line and counts it in metrics and /stats.
	SlowQueryThreshold time.Duration
	// SlowQueryLogf receives slow-query lines; defaults to log.Printf.
	SlowQueryLogf func(format string, args ...any)
	// WALFsyncEveryBatches / WALFsyncInterval tune the segment store's
	// WAL fsync policy (see logstore.StoreOptions); zero values keep the
	// historical fsync-on-seal-only behavior.
	WALFsyncEveryBatches int
	WALFsyncInterval     time.Duration
	// FS is the filesystem every persistent store writes through; nil
	// means the real filesystem. Fault-injection tests swap in an
	// fsx.FaultFS to script ENOSPC and crash images end to end.
	FS fsx.FS
	// SealRetryBase / SealRetryMax / SealMaxRetries / ProbeInterval tune
	// the segment store's seal-failure retry and degraded-mode recovery
	// policy (see logstore.StoreOptions); zero values take the store
	// defaults (50ms base, 2s cap, 4 retries, 2s probe).
	SealRetryBase  time.Duration
	SealRetryMax   time.Duration
	SealMaxRetries int
	ProbeInterval  time.Duration
	// Now supplies timestamps; tests override it. Defaults to time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TrainVolume <= 0 {
		c.TrainVolume = 10000
	}
	if c.TrainInterval <= 0 {
		c.TrainInterval = 5 * time.Minute
	}
	if c.SampleCap <= 0 {
		c.SampleCap = 50000
	}
	if c.DefaultThreshold <= 0 {
		c.DefaultThreshold = 0.7
	}
	if c.TopicShards <= 0 {
		c.TopicShards = 1
	}
	if c.IngestQueues <= 0 {
		c.IngestQueues = defaultQueues
	}
	if c.IngestQueueDepth <= 0 {
		c.IngestQueueDepth = defaultQueueDepth
	}
	if c.LineCacheCap <= 0 {
		c.LineCacheCap = lineCacheCap
	}
	if c.SlowQueryLogf == nil {
		c.SlowQueryLogf = log.Printf
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// maxSampleOffsets is how many example record offsets a query row carries.
const maxSampleOffsets = 5

// TimeRange bounds a query to records with From <= Time <= To (both
// inclusive; zero sides are unbounded). It pushes down through the store
// to sealed-segment metadata, so a narrow range over a long history reads
// only the blocks that overlap it.
type TimeRange = logstore.TimeRange

// Service manages log topics. All methods are safe for concurrent use.
type Service struct {
	cfg Config
	met *serviceMetrics // the service's private metrics registry + families

	mu     sync.RWMutex
	topics map[string]*topicState

	// Shared per-topic async pipelines for the HTTP ingest path, built
	// lazily from the Config knobs. closed (under ingMu) stops new
	// pipelines from being minted once Close has drained the map.
	ingMu     sync.Mutex
	ingesters map[string]*Ingester
	closed    bool

	// trainHook, when set by tests, runs inside every training cycle
	// after the reservoir hand-off — while ingestion must stay live.
	trainHook func(topic string)

	// Streaming TCP ingest listeners started via StartNetIngest; closed
	// ahead of the ingesters and stores in Close. netClosed flips under
	// netMu when Close drains the list, so a StartNetIngest racing with
	// Close either registers before the drain or sees the flag and shuts
	// its fresh listener down itself.
	netMu      sync.Mutex
	netServers []*netingest.Server
	netClosed  bool
}

// modelSnapshot is the atomically published read side of a topic: the
// trained model, its matcher, and the serialized model bytes (cached at
// train/recover time so stats never re-marshal under load).
type modelSnapshot struct {
	model      *core.Model
	matcher    *core.Matcher
	modelBytes []byte

	// cache memoizes raw line → template ID for this snapshot's
	// lifetime — the cross-batch extension of MatchBatch's within-batch
	// deduplication. Real streams repeat raw lines heavily (§4.1.3,
	// Fig. 4: duplication dominates; it is the largest factor in the
	// paper's efficiency ablation), and matching is deterministic within
	// one matcher generation, so a repeat can skip the regex/tokenize/
	// lookup pipeline entirely. The cache dies with the snapshot at every
	// model swap, which keeps it coherent with overlay pruning for free.
	//
	// Growth is bounded by cacheCap per GENERATION: at the cap a fresh
	// generation replaces the full map (one CAS; the old map becomes
	// garbage), so hot repeats re-memoize immediately instead of the
	// cache silently freezing on whatever lines came first. Evictions
	// are counted so over-cap topics are visible in /metrics and /stats.
	cache     atomic.Pointer[lineCacheGen]
	cacheCap  int64        // 0 → lineCacheCap
	evictions *obs.Counter // nil-safe; counts generation swaps
}

// lineCacheGen is one bounded generation of the line cache.
type lineCacheGen struct {
	m sync.Map // string → uint64
	n atomic.Int64
}

// lineCacheCap is the default per-generation line-cache bound.
const lineCacheCap = 1 << 16

// gen returns the live cache generation, installing the first one on a
// directly-constructed snapshot.
func (sn *modelSnapshot) gen() *lineCacheGen {
	g := sn.cache.Load()
	if g == nil {
		g = &lineCacheGen{}
		if !sn.cache.CompareAndSwap(nil, g) {
			g = sn.cache.Load()
		}
	}
	return g
}

func (sn *modelSnapshot) capLimit() int64 {
	if sn.cacheCap > 0 {
		return sn.cacheCap
	}
	return lineCacheCap
}

// cacheLen reports the live generation's entry count.
func (sn *modelSnapshot) cacheLen() int64 {
	return sn.gen().n.Load()
}

// cachedID returns the memoized template ID for line, if any.
func (sn *modelSnapshot) cachedID(line string) (uint64, bool) {
	v, ok := sn.gen().m.Load(line)
	if !ok {
		return 0, false
	}
	return v.(uint64), true
}

// cacheID memoizes line → id; at the generation cap it evicts the whole
// generation instead of storing, so the next repeats memoize afresh.
func (sn *modelSnapshot) cacheID(line string, id uint64) {
	g := sn.gen()
	if g.n.Load() >= sn.capLimit() {
		if sn.cache.CompareAndSwap(g, &lineCacheGen{}) {
			sn.evictions.Inc()
		}
		return
	}
	if _, loaded := g.m.LoadOrStore(line, id); !loaded {
		g.n.Add(1)
	}
}

type topicState struct {
	name     string
	parser   *core.Parser
	store    logstore.Store
	internal logstore.SnapshotStore
	met      *topicMetrics // resolved once at create; never nil
	cacheCap int64

	// snap is nil until the first training completes. Matching and
	// queries Load it; only a finished training cycle Stores it.
	snap atomic.Pointer[modelSnapshot]

	// Training reservoir behind its own small mutex — the one brief
	// critical section on the ingestion path.
	resMu   sync.Mutex
	buffer  []string
	bufSeen int // lines offered since the last hand-off
	rng     *rand.Rand

	// Training triggers, updated lock-free by Ingest.
	sinceLast atomic.Int64 // records since the last cycle
	lastTrain atomic.Int64 // unix nanos of the last cycle
	trainings atomic.Int64

	// Background trainer.
	trainMu   sync.Mutex // serializes training cycles (goroutine + forced Train)
	training  atomic.Bool
	trainCh   chan struct{}
	stopCh    chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	errMu     sync.Mutex
	lastErr   error
	sampleCap int
}

// New creates a Service.
func New(cfg Config) *Service {
	return &Service{
		cfg:       cfg.withDefaults(),
		met:       newServiceMetrics(obs.NewRegistry()),
		topics:    make(map[string]*topicState),
		ingesters: make(map[string]*Ingester),
	}
}

// Registry exposes the service's metrics registry — the /metrics handler
// scrapes it, and embedders may add their own instruments.
func (s *Service) Registry() *obs.Registry { return s.met.reg }

// topicSeed derives the reservoir RNG seed from a hash of the topic name,
// so distinct topics sample independently (a plain len(name)-based seed
// made every same-length topic share one sequence).
func topicSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// CreateTopic registers a topic. With DataDir configured the topic is
// persistent and recovers any existing on-disk state (records replayed,
// latest model snapshot reloaded). Creating an already-registered topic is
// an error.
func (s *Service) CreateTopic(name string) error {
	if name == "" {
		return fmt.Errorf("service: empty topic name")
	}
	if strings.ContainsAny(name, "/\\ ") {
		return fmt.Errorf("service: invalid topic name %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.topics[name]; ok {
		return fmt.Errorf("service: topic %q exists", name)
	}
	st := &topicState{
		name:      name,
		parser:    core.New(s.cfg.Parser),
		met:       s.met.topic(name, s.cfg.TopicShards),
		cacheCap:  int64(s.cfg.LineCacheCap),
		rng:       rand.New(rand.NewSource(topicSeed(name))),
		trainCh:   make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		sampleCap: s.cfg.SampleCap,
	}
	st.lastTrain.Store(s.cfg.Now().UnixNano())
	store, err := s.openTopicStore(name, st.met.store)
	if err != nil {
		return err
	}
	st.store = store
	if s.cfg.DataDir == "" {
		st.internal = logstore.NewInternal()
	} else {
		internal, err := logstore.OpenDiskInternalFS(s.cfg.FS, filepath.Join(s.cfg.DataDir, name, "models"))
		if err != nil {
			store.Close()
			return err
		}
		st.internal = internal
	}
	if s.cfg.SnapshotRetain > 0 {
		// Bound the internal topic: keep the newest K snapshots plus
		// periodic checkpoints instead of every training cycle's model.
		st.internal.SetRetention(logstore.Retention{
			Latest:          s.cfg.SnapshotRetain,
			CheckpointEvery: s.cfg.SnapshotCheckpointEvery,
		})
	}
	if s.cfg.DataDir != "" || s.cfg.SegmentBytes > 0 {
		if err := st.recover(); err != nil {
			store.Close()
			return err
		}
	}
	st.wg.Add(1)
	go s.trainLoop(st)
	s.met.bindTopicGauges(s, st)
	s.topics[name] = st
	return nil
}

// openTopicStore builds one topic's record store from the config knobs:
// sharded when TopicShards > 1 (each shard the kind the remaining knobs
// select), compacting-segment when SegmentBytes > 0, disk-backed when
// DataDir is set, in-memory otherwise. Persistent stores recover
// existing on-disk state.
func (s *Service) openTopicStore(name string, lm *logstore.Metrics) (logstore.Store, error) {
	dir := ""
	if s.cfg.DataDir != "" {
		dir = filepath.Join(s.cfg.DataDir, name, "records")
	}
	var codec segment.Codec
	if s.cfg.SegmentBytes > 0 {
		c, err := segment.ParseCodec(s.cfg.SegmentCodec)
		if err != nil {
			return nil, fmt.Errorf("service: topic %q: %w", name, err)
		}
		codec = c
	}
	opts := logstore.StoreOptions{
		Metrics:           lm,
		FsyncEveryBatches: s.cfg.WALFsyncEveryBatches,
		FsyncInterval:     s.cfg.WALFsyncInterval,
		FS:                s.cfg.FS,
		SealRetryBase:     s.cfg.SealRetryBase,
		SealRetryMax:      s.cfg.SealRetryMax,
		SealMaxRetries:    s.cfg.SealMaxRetries,
		ProbeInterval:     s.cfg.ProbeInterval,
	}
	if s.cfg.TopicShards > 1 {
		return logstore.OpenSharded(name, logstore.ShardConfig{
			Shards:       s.cfg.TopicShards,
			Dir:          dir,
			SegmentBytes: s.cfg.SegmentBytes,
			Codec:        codec,
			Opts:         opts,
		})
	}
	return logstore.OpenStore(name, dir, s.cfg.SegmentBytes, codec, opts)
}

// recover reloads the latest persisted model after a restart and
// publishes it as the initial snapshot. A snapshot that no longer
// unmarshals (a torn or corrupt checkpoint) is quarantined and the next
// older one tried, so reopening never fails unrecoverably on bad
// snapshot bytes — worst case the topic restarts untrained, which the
// next training cycle repairs. Runs before the topic is visible, so no
// synchronization is needed.
func (st *topicState) recover() error {
	for {
		data, err := st.internal.LatestSnapshot()
		if err != nil {
			if err == logstore.ErrNoSnapshot {
				return nil
			}
			return err
		}
		model := core.NewModel()
		if err := model.UnmarshalBinary(data); err != nil {
			log.Printf("service: recover %s: quarantining corrupt model snapshot: %v", st.name, err)
			if qerr := st.internal.QuarantineLatest(); qerr != nil {
				return fmt.Errorf("service: recover %s: quarantine corrupt snapshot: %w", st.name, qerr)
			}
			continue
		}
		matcher, err := st.parser.NewMatcher(model)
		if err != nil {
			log.Printf("service: recover %s: quarantining unusable model snapshot: %v", st.name, err)
			if qerr := st.internal.QuarantineLatest(); qerr != nil {
				return fmt.Errorf("service: recover %s: quarantine unusable snapshot: %w", st.name, qerr)
			}
			continue
		}
		st.snap.Store(st.newSnapshot(model, matcher, data))
		st.trainings.Store(int64(st.internal.Snapshots()))
		return nil
	}
}

// newSnapshot builds a publishable snapshot wired to the topic's line-
// cache cap and eviction counter.
func (st *topicState) newSnapshot(model *core.Model, matcher *core.Matcher, data []byte) *modelSnapshot {
	sn := &modelSnapshot{model: model, matcher: matcher, modelBytes: data, cacheCap: st.cacheCap}
	if st.met != nil {
		sn.evictions = st.met.cacheEvictions
	}
	sn.cache.Store(&lineCacheGen{})
	return sn
}

// Close stops the background trainers, drains shared ingestion pipelines,
// and flushes and closes every topic store.
func (s *Service) Close() error {
	var firstErr error
	// Network listeners go first: their workers call Ingest
	// synchronously, so draining them before the ingesters and stores
	// means every acked frame is already committed when the stores shut.
	s.netMu.Lock()
	servers := s.netServers
	s.netServers = nil
	s.netClosed = true
	s.netMu.Unlock()
	for _, srv := range servers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.ingMu.Lock()
	s.closed = true
	for name, ing := range s.ingesters {
		if err := ing.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(s.ingesters, name)
	}
	s.ingMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.topics {
		st.stopOnce.Do(func() { close(st.stopCh) })
		st.wg.Wait()
		if err := st.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Topics lists topic names, sorted.
func (s *Service) Topics() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.topics))
	for n := range s.topics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (s *Service) topic(name string) (*topicState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.topics[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown topic %q", name)
	}
	return st, nil
}

// Ingest appends lines to the topic: the batch is matched against the
// current model snapshot (template IDs are computed before the record is
// written, as the indexing pipeline requires) without taking any topic
// lock, then stored. Unmatched logs become temporary templates inside the
// matcher. Training triggers lazily on volume or elapsed-interval and
// runs in the topic's background trainer, never blocking the caller.
func (s *Service) Ingest(topicName string, lines []string) error {
	return s.ingest(topicName, lines, -1)
}

// ingestScratch is the pooled per-call working set of the ingestion hot
// path: the batch records handed to AppendBatch (which subsumes the old
// per-call ids slice) and the cache-miss bookkeeping. Pooling it makes
// the steady-state path allocation-free on the service side.
type ingestScratch struct {
	recs  []logstore.BatchRecord
	miss  []int    // batch indexes whose lines missed the line cache
	lines []string // the missed lines, in miss order, for MatchBatch
}

var ingestScratchPool = sync.Pool{
	New: func() any { return new(ingestScratch) },
}

// maxPooledBatch bounds the batch size whose scratch is worth parking in
// the pool: Ingester batches are ~256 lines, but a synchronous Ingest of
// a whole file could grow a scratch to millions of entries that would
// then sit in the pool forever.
const maxPooledBatch = 1 << 14

// ingest is Ingest with optional shard affinity: queue >= 0 pins the
// batch to one shard of a sharded store (each Ingester worker passes its
// queue index, so parallel queues write disjoint shards and never contend
// on a store mutex); -1 lets the store route. Non-sharded stores ignore
// the pin.
//
// The whole batch is one group commit: template IDs for every line are
// resolved first — from the snapshot's line cache for repeats, through
// the matcher's deduplicated MatchBatch for the rest — and then a single
// AppendBatch hands the batch to the store, which takes one lock and
// writes one WAL run instead of one per record. The batch is therefore
// also the durability and poison boundary: a WAL failure fails the batch
// from the torn record on, never splitting a record.
func (s *Service) ingest(topicName string, lines []string, queue int) error {
	st, err := s.topic(topicName)
	if err != nil {
		return err
	}
	now := s.cfg.Now()
	scratch := ingestScratchPool.Get().(*ingestScratch)
	defer func() {
		if cap(scratch.recs) > maxPooledBatch {
			return // oversized one-off batch; let the GC take it
		}
		// Drop the string references before pooling so a parked scratch
		// cannot pin a whole batch of lines in memory.
		clear(scratch.recs)
		clear(scratch.lines)
		ingestScratchPool.Put(scratch)
	}()
	recs := scratch.recs[:0]
	for _, line := range lines {
		recs = append(recs, logstore.BatchRecord{Raw: line})
	}
	scratch.recs = recs
	// Lock-free read side: resolve template IDs against the published
	// snapshot. Lines seen before under this snapshot come straight from
	// the cache; only first-seen lines pay preprocessing and matching
	// (deduplicated and parallel across the parser's workers).
	met := st.met
	matchStart := time.Now()
	if snap := st.snap.Load(); snap != nil {
		miss, missLines := scratch.miss[:0], scratch.lines[:0]
		for i, line := range lines {
			if id, ok := snap.cachedID(line); ok {
				recs[i].TemplateID = id
			} else {
				miss = append(miss, i)
				missLines = append(missLines, line)
			}
		}
		if len(missLines) > 0 {
			results := snap.matcher.MatchBatch(missLines)
			for j, r := range results {
				recs[miss[j]].TemplateID = r.NodeID
				snap.cacheID(missLines[j], r.NodeID)
			}
		}
		met.cacheHits.Add(int64(len(lines) - len(missLines)))
		met.cacheMisses.Add(int64(len(missLines)))
		scratch.miss, scratch.lines = miss, missLines
	}
	appendStart := time.Now()
	met.matchSeconds.Observe(appendStart.Sub(matchStart).Nanoseconds())
	appended := false
	if queue >= 0 {
		if sh, ok := st.store.(*logstore.ShardedStore); ok {
			_, err := sh.AppendShardBatch(queue%sh.Shards(), now, recs)
			switch {
			case err == nil:
				appended = true
			case errors.Is(err, logstore.ErrDegraded):
				// The pinned shard degraded (disk full / seal failure):
				// fall through to un-pinned AppendBatch, which routes
				// around degraded shards while any healthy one remains.
			default:
				return fmt.Errorf("service: ingest %s: %w", topicName, err)
			}
		}
	}
	if !appended {
		if _, err := st.store.AppendBatch(now, recs); err != nil {
			return fmt.Errorf("service: ingest %s: %w", topicName, err)
		}
	}
	met.appendSeconds.ObserveDuration(time.Since(appendStart))
	met.ingestLines.Add(int64(len(lines)))
	met.ingestBatches.Inc()
	return s.afterIngest(st, lines, now)
}

// afterIngest feeds the training reservoir (the one brief critical
// section of the ingestion path) and kicks the background trainer when a
// volume or interval trigger fires.
func (s *Service) afterIngest(st *topicState, lines []string, now time.Time) error {
	st.offer(lines)
	if st.sinceLast.Add(int64(len(lines))) >= int64(s.cfg.TrainVolume) ||
		now.Sub(time.Unix(0, st.lastTrain.Load())) >= s.cfg.TrainInterval {
		st.kickTrainer()
	}
	return nil
}

// offer feeds lines into the training reservoir: append until SampleCap,
// then uniform reservoir replacement.
func (st *topicState) offer(lines []string) {
	st.resMu.Lock()
	defer st.resMu.Unlock()
	for _, line := range lines {
		st.offerLocked(line)
	}
}

// offerLocked feeds one line into the reservoir; callers hold resMu.
func (st *topicState) offerLocked(line string) {
	st.bufSeen++
	if len(st.buffer) < st.sampleCap {
		st.buffer = append(st.buffer, line)
		return
	}
	if j := st.rng.Intn(st.bufSeen); j < len(st.buffer) {
		st.buffer[j] = line
	}
}

// Stats reports operational counters for a topic.
type Stats struct {
	Records    int
	Bytes      int64
	Templates  int
	Trainings  int
	ModelBytes int
	Snapshots  int
	// Background-trainer state.
	Training       bool      // a training cycle is running right now
	SinceTrain     int       // records ingested since the last cycle
	ReservoirLines int       // lines buffered for the next cycle
	LastTrainAt    time.Time // when the last cycle ran (topic creation before any)
	LastTrainError string    `json:",omitempty"`
	// Line-cache telemetry: entries in the live generation, cumulative
	// hit/miss counts, and how many times an over-cap generation was
	// evicted wholesale (non-zero = this topic's streams out-card the cap).
	LineCacheEntries   int64
	LineCacheHits      int64
	LineCacheMisses    int64
	LineCacheEvictions int64
	// Query telemetry rollups (details per kind live in /metrics).
	Queries     int64 `json:",omitempty"`
	SlowQueries int64 `json:",omitempty"`
	// WAL telemetry rollups, zero for in-memory topics.
	WALFsyncs          int64 `json:",omitempty"`
	WALPoisonRotations int64 `json:",omitempty"`
	// Degraded-mode state: Degraded is true while the topic's store has
	// entered read-only mode (ingest rejected, queries served);
	// DegradedReason carries the cause. DegradedShards counts sick
	// shards of a sharded topic that the router is steering around
	// (ingest stays available until every shard degrades). SealRetries
	// counts failed seal attempts that were retried with backoff.
	Degraded       bool   `json:",omitempty"`
	DegradedReason string `json:",omitempty"`
	DegradedShards int    `json:",omitempty"`
	SealRetries    int64  `json:",omitempty"`
	// Segment-store compression counters, zero unless Config.SegmentBytes
	// enabled the compacting store for this topic.
	Segments               int     `json:",omitempty"`
	SegmentRecords         int     `json:",omitempty"`
	SegmentRawBytes        int64   `json:",omitempty"`
	SegmentCompressedBytes int64   `json:",omitempty"`
	SegmentRatio           float64 `json:",omitempty"`
	SegmentBlockReads      int64   `json:",omitempty"`
	SegmentBlocksPruned    int64   `json:",omitempty"`
	SegmentCodec           string  `json:",omitempty"`
	// Sharded-store breakdown, present when Config.TopicShards > 1: the
	// shard count and each shard's record/byte/segment counters.
	TopicShards int                  `json:",omitempty"`
	Shards      []logstore.ShardStat `json:",omitempty"`
}

// TopicStats returns counters for one topic. It takes no topic-wide lock:
// every field reads from atomics, the store's own counters, or the
// published snapshot (whose serialized bytes were cached at train time —
// stats never re-marshal the model).
func (s *Service) TopicStats(topicName string) (Stats, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return Stats{}, err
	}
	stats := Stats{
		Records:     st.store.Len(),
		Bytes:       st.store.Bytes(),
		Trainings:   int(st.trainings.Load()),
		Snapshots:   st.internal.Snapshots(),
		Training:    st.training.Load(),
		SinceTrain:  int(st.sinceLast.Load()),
		LastTrainAt: time.Unix(0, st.lastTrain.Load()),
	}
	st.resMu.Lock()
	stats.ReservoirLines = len(st.buffer)
	st.resMu.Unlock()
	if err := st.trainErr(); err != nil {
		stats.LastTrainError = err.Error()
	}
	if snap := st.snap.Load(); snap != nil {
		stats.Templates = snap.model.Len() + snap.matcher.TemporaryCount()
		stats.ModelBytes = len(snap.modelBytes)
		stats.LineCacheEntries = snap.cacheLen()
	}
	if met := st.met; met != nil {
		stats.LineCacheHits = met.cacheHits.Value()
		stats.LineCacheMisses = met.cacheMisses.Value()
		stats.LineCacheEvictions = met.cacheEvictions.Value()
		stats.Queries = met.queriesTotal()
		stats.SlowQueries = met.slowQueries.Value()
		stats.WALFsyncs = met.store.WALFsyncs.Value()
		stats.WALPoisonRotations = met.store.WALPoisonRotations.Value()
		stats.SegmentBlocksPruned = met.store.BlocksPruned.Value()
		stats.SealRetries = met.store.SealRetries.Value()
	}
	if d, ok := st.store.(logstore.Degrader); ok {
		if deg, cause := d.Degraded(); deg {
			stats.Degraded = true
			if cause != nil {
				stats.DegradedReason = cause.Error()
			}
		}
	}
	if cs, ok := st.store.(logstore.Compactor); ok && s.cfg.SegmentBytes > 0 {
		sst := cs.SegmentStats()
		stats.Segments = sst.Segments
		stats.SegmentRecords = sst.SealedRecords
		stats.SegmentRawBytes = sst.RawBytes
		stats.SegmentCompressedBytes = sst.CompressedBytes
		stats.SegmentRatio = sst.Ratio()
		stats.SegmentBlockReads = sst.BlockReads
		stats.SegmentCodec = sst.Codec
	}
	if sh, ok := st.store.(*logstore.ShardedStore); ok {
		stats.TopicShards = sh.Shards()
		stats.Shards = sh.ShardStats()
		stats.DegradedShards = sh.DegradedShards()
	}
	return stats, nil
}

// DegradedTopics reports every topic whose store is currently in
// degraded read-only mode, mapped to the cause. The /readyz endpoint
// serves 503 while the map is non-empty.
func (s *Service) DegradedTopics() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out map[string]string
	for name, st := range s.topics {
		d, ok := st.store.(logstore.Degrader)
		if !ok {
			continue
		}
		deg, cause := d.Degraded()
		if !deg {
			continue
		}
		if out == nil {
			out = make(map[string]string)
		}
		reason := "degraded"
		if cause != nil {
			reason = cause.Error()
		}
		out[name] = reason
	}
	return out
}

// Compact forces the topic's current hot block to seal into a compressed
// segment and waits for the compactor to drain. It errors when the topic
// does not use the segment store (Config.SegmentBytes unset).
func (s *Service) Compact(topicName string) error {
	st, err := s.topic(topicName)
	if err != nil {
		return err
	}
	cs, ok := st.store.(logstore.Compactor)
	if !ok || s.cfg.SegmentBytes <= 0 {
		return fmt.Errorf("service: topic %q has no segment store (set SegmentBytes)", topicName)
	}
	if err := cs.Seal(); err != nil {
		return err
	}
	cs.WaitIdle()
	return cs.SealError()
}

// TemplateRow is one line of a grouped query result.
type TemplateRow struct {
	// TemplateID is the rolled-up node ID at the query threshold.
	TemplateID uint64
	// Template is the display text, with consecutive wildcards merged
	// (§7's query-result optimization).
	Template string
	// Saturation is the rolled-up node's precision score.
	Saturation float64
	// Count is how many queried records grouped here.
	Count int
	// SampleOffsets holds up to 5 example record offsets.
	SampleOffsets []int64
	// SampleLines holds the raw lines behind SampleOffsets; populated
	// only when the caller asks for samples (HTTP ?samples=1), fetched
	// through the store's batched GetBatch path so offsets in the same
	// sealed block share one payload decompression.
	SampleLines []string `json:",omitempty"`
}

// Query groups a topic's records by template at the given precision
// threshold (≤ 0 uses the default), restricted to records whose
// timestamp lies in tr (the zero TimeRange spans all time). It is the §3
// "Query" path: records carry their most precise template ID; ancestors
// are traversed per threshold without reprocessing any log.
//
// The grouping is metadata-driven: the store answers GroupedCounts from
// its template indexes and sealed-segment metadata (counts, sample
// offsets and time bounds persisted at seal time). With the zero range
// no record payload is read; with a bounded range, sealed blocks outside
// it are pruned by metadata and only blocks the range straddles are
// decompressed. Only the distinct template IDs are rolled up through the
// model, not every record.
func (s *Service) Query(topicName string, threshold float64, tr TimeRange) ([]TemplateRow, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rows, err := s.queryRows(st, topicName, threshold, tr)
	if err != nil {
		return nil, err
	}
	kind := queryKindGrouped
	if !tr.From.IsZero() || !tr.To.IsZero() {
		kind = queryKindTimeRange
	}
	s.observeQuery(st, kind, tr, start, len(rows))
	return rows, nil
}

// queryRows is the uninstrumented grouped-query body; Query wraps it with
// per-kind latency observation and the slow-query log.
func (s *Service) queryRows(st *topicState, topicName string, threshold float64, tr TimeRange) ([]TemplateRow, error) {
	snap := st.snap.Load()
	if snap == nil {
		return nil, fmt.Errorf("service: topic %q has no trained model yet", topicName)
	}
	if threshold <= 0 {
		threshold = s.cfg.DefaultThreshold
	}
	groups := st.store.GroupedCounts(maxSampleOffsets, tr)
	rows := map[uint64]*TemplateRow{}
	samples := map[uint64][][]int64{}
	for id, g := range groups {
		rowID := id
		var node *core.Node
		if id != 0 {
			if n, err := snap.matcher.TemplateAt(id, threshold); err == nil {
				rowID, node = n.ID, n
			}
		}
		row, ok := rows[rowID]
		if !ok {
			row = &TemplateRow{TemplateID: rowID}
			if node != nil {
				row.Template = template.MergeConsecutiveWildcards(node.Template)
				row.Saturation = node.Saturation
			} else {
				// Records ingested before the first training carry no
				// template (§3: "templates are unavailable for logs
				// before first training completes").
				row.Template = "(unparsed: ingested before first training)"
			}
			rows[rowID] = row
		}
		row.Count += g.Count
		if len(g.Samples) > 0 {
			samples[rowID] = append(samples[rowID], g.Samples)
		}
	}
	out := make([]TemplateRow, 0, len(rows))
	for id, r := range rows {
		r.SampleOffsets = mergeSamples(samples[id], maxSampleOffsets)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TemplateID < out[j].TemplateID
	})
	return out, nil
}

// mergeSamples merges ascending offset lists and keeps the max smallest —
// the same first-seen samples a full scan would have produced.
func mergeSamples(lists [][]int64, max int) []int64 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		if len(lists[0]) > max {
			return lists[0][:max]
		}
		return lists[0]
	}
	var all []int64
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > max {
		all = all[:max]
	}
	return all
}

// QueryMerged is Query followed by the §7 response-layer optimization:
// rows whose display templates are identical after consecutive-wildcard
// merging — typically variable-length list output from one print statement
// — are grouped into a single row. Users see "users <*>" once; the
// underlying fixed-length templates keep matching fast.
func (s *Service) QueryMerged(topicName string, threshold float64, tr TimeRange) ([]TemplateRow, error) {
	rows, err := s.Query(topicName, threshold, tr)
	if err != nil {
		return nil, err
	}
	byText := make(map[string]*TemplateRow)
	var order []string
	for i := range rows {
		r := rows[i]
		agg, ok := byText[r.Template]
		if !ok {
			cp := r
			byText[r.Template] = &cp
			order = append(order, r.Template)
			continue
		}
		agg.Count += r.Count
		if r.Saturation < agg.Saturation {
			// Report the coarsest member's precision.
			agg.Saturation = r.Saturation
		}
		for _, off := range r.SampleOffsets {
			if len(agg.SampleOffsets) < maxSampleOffsets {
				agg.SampleOffsets = append(agg.SampleOffsets, off)
			}
		}
	}
	out := make([]TemplateRow, 0, len(order))
	for _, text := range order {
		out = append(out, *byText[text])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TemplateID < out[j].TemplateID
	})
	return out, nil
}

// Search returns the global offsets of records whose whitespace-delimited
// tokens include token exactly, restricted to records whose timestamp
// lies in tr (the zero TimeRange spans all time). Sealed segments
// screen through their bloom filters and metadata time bounds, so
// non-matching blocks are never decompressed.
func (s *Service) Search(topicName, token string, tr TimeRange) ([]int64, error) {
	if token == "" {
		return nil, fmt.Errorf("service: empty search token")
	}
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	offs := st.store.SearchRange(token, tr)
	s.observeQuery(st, queryKindSearch, tr, start, len(offs))
	return offs, nil
}

// ByTemplate returns the global offsets of records whose ingestion-time
// template ID is any of ids, restricted to records whose timestamp lies
// in tr (the zero TimeRange spans all time). Sealed segments whose
// metadata lacks every id — or whose time bounds miss tr — are pruned
// without decompression.
func (s *Service) ByTemplate(topicName string, tr TimeRange, ids ...uint64) ([]int64, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("service: no template IDs given")
	}
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	offs := st.store.ByTemplateRange(tr, ids...)
	s.observeQuery(st, queryKindTemplate, tr, start, len(offs))
	return offs, nil
}

// Records fetches the records at the given global offsets, in input
// order, through the store's batched read path: offsets landing in the
// same sealed block share one payload decompression. It is the query
// sample-fetch surface (TemplateRow.SampleOffsets → raw lines).
func (s *Service) Records(topicName string, offsets []int64) ([]logstore.Record, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	return st.store.GetBatch(offsets)
}

// fillSampleLines resolves every row's SampleOffsets to raw lines with
// a single batched store read: all rows' offsets concatenate into one
// GetBatch call, so sample offsets landing in the same sealed block
// cost one decompression between them instead of one each.
func (s *Service) fillSampleLines(topicName string, rows []TemplateRow) error {
	var offsets []int64
	for i := range rows {
		offsets = append(offsets, rows[i].SampleOffsets...)
	}
	if len(offsets) == 0 {
		return nil
	}
	recs, err := s.Records(topicName, offsets)
	if err != nil {
		return err
	}
	pos := 0
	for i := range rows {
		n := len(rows[i].SampleOffsets)
		if n == 0 {
			continue
		}
		rows[i].SampleLines = make([]string, n)
		for j := 0; j < n; j++ {
			rows[i].SampleLines[j] = recs[pos+j].Raw
		}
		pos += n
	}
	return nil
}

// Model returns the topic's current model (nil before first training).
func (s *Service) Model(topicName string) (*core.Model, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	if snap := st.snap.Load(); snap != nil {
		return snap.model, nil
	}
	return nil, nil
}

// Store exposes the topic's record store (read-only use).
func (s *Service) Store(topicName string) (logstore.Store, error) {
	st, err := s.topic(topicName)
	if err != nil {
		return nil, err
	}
	return st.store, nil
}
