package service

import (
	"strconv"
	"time"

	"bytebrain/internal/logstore"
	"bytebrain/internal/netingest"
	"bytebrain/internal/obs"
)

// Query kinds, the label values of bb_query_seconds / bb_queries_total.
const (
	queryKindGrouped   = "grouped"    // Query/QueryMerged over all time
	queryKindTimeRange = "time-range" // Query/QueryMerged with a bounded range
	queryKindTemplate  = "template"   // ByTemplate offset lookup
	queryKindSearch    = "search"     // token search
)

var queryKinds = []string{queryKindGrouped, queryKindTimeRange, queryKindTemplate, queryKindSearch}

// batchSizeBuckets covers the ingest/WAL batch-size distributions; the
// Ingester chunks at 256 lines, so the buckets bracket that.
var batchSizeBuckets = obs.SizeBuckets(1, 8, 32, 64, 128, 256, 512, 1024, 4096, 16384)

// serviceMetrics owns the service's registry and every metric family,
// registered once at New so topic creation only resolves label values.
type serviceMetrics struct {
	reg *obs.Registry

	// Ingest hot path.
	ingestLines   *obs.CounterVec
	ingestBatches *obs.CounterVec
	matchSeconds  *obs.HistogramVec
	appendSeconds *obs.HistogramVec

	// Line cache.
	cacheHits      *obs.CounterVec
	cacheMisses    *obs.CounterVec
	cacheEvictions *obs.CounterVec

	// Queries.
	querySeconds *obs.HistogramVec
	queries      *obs.CounterVec
	slowQueries  *obs.CounterVec

	// Trainer.
	trainSeconds   *obs.HistogramVec
	trainSwaps     *obs.CounterVec
	trainErrors    *obs.CounterVec
	trainLastError *obs.GaugeVec

	// Logstore: WAL, recovery, compaction, pushdown.
	walAppendRecords   *obs.CounterVec
	walAppendBytes     *obs.CounterVec
	walFsyncs          *obs.CounterVec
	walFsyncErrors     *obs.CounterVec
	walFsyncSeconds    *obs.HistogramVec
	walPoisonRotations *obs.CounterVec
	walRecoveredRecs   *obs.CounterVec
	walTornTails       *obs.CounterVec
	recoveredSegments  *obs.CounterVec
	storeBatchRecords  *obs.HistogramVec
	storeSeals         *obs.CounterVec
	storeSealSeconds   *obs.HistogramVec
	storeSealRetries   *obs.CounterVec
	storeDegradedSum   *obs.CounterVec
	storeDegraded      *obs.FuncVec
	shardAppends       *obs.CounterVec
	blocksPruned       *obs.CounterVec
	blocksRead         *obs.FuncVec

	// Per-topic state gauges, bound to live accessors at topic create.
	topicRecords   *obs.FuncVec
	topicBytes     *obs.FuncVec
	topicTemplates *obs.FuncVec
	topicReservoir *obs.FuncVec
	topicTrainings *obs.FuncVec
	topicSegments  *obs.FuncVec

	// Streaming TCP ingest (internal/netingest). Zero-label families:
	// the per-frame hot path must not pay a labeled-series lookup, and
	// the listener is service-wide anyway.
	netIngest netingest.Metrics
}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	lat := obs.LatencyBuckets
	return &serviceMetrics{
		reg: reg,

		ingestLines:   reg.Counter("bb_ingest_lines_total", "Log lines ingested.", "topic"),
		ingestBatches: reg.Counter("bb_ingest_batches_total", "Ingest group-commit batches.", "topic"),
		matchSeconds:  reg.Histogram("bb_ingest_match_seconds", "Per-batch template resolution time (line cache + matcher).", lat, "topic"),
		appendSeconds: reg.Histogram("bb_ingest_append_seconds", "Per-batch store append time (WAL write + in-memory index).", lat, "topic"),

		cacheHits:      reg.Counter("bb_line_cache_hits_total", "Lines resolved from the snapshot line cache.", "topic"),
		cacheMisses:    reg.Counter("bb_line_cache_misses_total", "Lines that paid full matching.", "topic"),
		cacheEvictions: reg.Counter("bb_line_cache_evictions_total", "Whole-generation line-cache evictions at the cap.", "topic"),

		querySeconds: reg.Histogram("bb_query_seconds", "Query latency by kind.", lat, "topic", "kind"),
		queries:      reg.Counter("bb_queries_total", "Queries served by kind.", "topic", "kind"),
		slowQueries:  reg.Counter("bb_slow_queries_total", "Queries at or over the slow-query threshold.", "topic"),

		trainSeconds:   reg.Histogram("bb_train_cycle_seconds", "Training cycle duration.", lat, "topic"),
		trainSwaps:     reg.Counter("bb_train_swaps_total", "Model snapshot swaps published by training.", "topic"),
		trainErrors:    reg.Counter("bb_train_errors_total", "Failed training cycles.", "topic"),
		trainLastError: reg.Gauge("bb_train_last_error", "1 while the most recent training cycle failed.", "topic"),

		walAppendRecords:   reg.Counter("bb_wal_append_records_total", "Records admitted to write-ahead logs.", "topic"),
		walAppendBytes:     reg.Counter("bb_wal_append_bytes_total", "Bytes written to write-ahead logs.", "topic"),
		walFsyncs:          reg.Counter("bb_wal_fsyncs_total", "Successful WAL fsyncs.", "topic"),
		walFsyncErrors:     reg.Counter("bb_wal_fsync_errors_total", "Failed WAL flush/fsync attempts.", "topic"),
		walFsyncSeconds:    reg.Histogram("bb_wal_fsync_seconds", "WAL fsync latency.", lat, "topic"),
		walPoisonRotations: reg.Counter("bb_wal_poison_rotations_total", "Blocks retired after a WAL write failure.", "topic"),
		walRecoveredRecs:   reg.Counter("bb_wal_recovered_records_total", "Records replayed from WALs at open.", "topic"),
		walTornTails:       reg.Counter("bb_wal_torn_tails_total", "WALs truncated at a torn record during recovery.", "topic"),
		recoveredSegments:  reg.Counter("bb_recovered_segments_total", "Sealed segments recovered by metadata at open.", "topic"),
		storeBatchRecords:  reg.Histogram("bb_store_batch_records", "Store-level append batch sizes in records.", batchSizeBuckets, "topic"),
		storeSeals:         reg.Counter("bb_store_seals_total", "Hot blocks sealed into compressed segments.", "topic"),
		storeSealSeconds:   reg.Histogram("bb_store_seal_seconds", "Block seal (encode + write) duration.", lat, "topic"),
		storeSealRetries:   reg.Counter("bb_seal_retries_total", "Failed seal attempts retried with backoff.", "topic"),
		storeDegradedSum:   reg.Counter("bb_store_degraded_enters_total", "Transitions into degraded read-only mode.", "topic"),
		storeDegraded:      reg.GaugeFunc("bb_store_degraded", "1 while the topic's store is degraded to read-only (ingest shed, queries served).", "topic"),
		shardAppends:       reg.Counter("bb_store_shard_appends_total", "Records appended per shard.", "topic", "shard"),
		blocksPruned:       reg.Counter("bb_segment_blocks_pruned_total", "Sealed-block query visits answered from metadata alone.", "topic"),
		blocksRead:         reg.CounterFunc("bb_segment_blocks_read_total", "Sealed-block payload decompressions paid by queries.", "topic"),

		topicRecords:   reg.GaugeFunc("bb_topic_records", "Stored records.", "topic"),
		topicBytes:     reg.GaugeFunc("bb_topic_bytes", "Raw payload bytes the topic represents.", "topic"),
		topicTemplates: reg.GaugeFunc("bb_topic_templates", "Templates in the published model (incl. temporaries).", "topic"),
		topicReservoir: reg.GaugeFunc("bb_topic_reservoir_lines", "Lines buffered for the next training cycle.", "topic"),
		topicTrainings: reg.GaugeFunc("bb_topic_trainings", "Completed training cycles.", "topic"),
		topicSegments:  reg.GaugeFunc("bb_topic_segments", "Sealed segments on the topic's store.", "topic"),

		netIngest: netingest.Metrics{
			Connections:       reg.Counter("bb_netingest_connections_total", "TCP ingest connections accepted.").With(),
			ActiveConnections: reg.Gauge("bb_netingest_active_connections", "TCP ingest connections currently open.").With(),
			Frames:            reg.Counter("bb_netingest_frames_total", "Ingest frames (or raw batches) committed.").With(),
			Lines:             reg.Counter("bb_netingest_lines_total", "Log lines ingested over TCP.").With(),
			Bytes:             reg.Counter("bb_netingest_bytes_total", "Line payload bytes ingested over TCP.").With(),
			Busy:              reg.Counter("bb_netingest_busy_total", "Frames dropped with a BUSY ack under backpressure.").With(),
			Errors:            reg.Counter("bb_netingest_errors_total", "Protocol violations and per-frame ingest errors.").With(),
			FrameSeconds:      reg.Histogram("bb_netingest_frame_seconds", "Frame queue-to-ack latency.", lat).With(),
			InflightBytes:     reg.Gauge("bb_netingest_inflight_bytes", "Frame bytes queued between connection readers and ingest workers.").With(),
		},
	}
}

// topicMetrics is one topic's resolved instrument set: every hot-path
// observation is a pre-resolved pointer, so ingest pays atomic ops only —
// no registry lookups, no allocations.
type topicMetrics struct {
	ingestLines   *obs.Counter
	ingestBatches *obs.Counter
	matchSeconds  *obs.Histogram
	appendSeconds *obs.Histogram

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter

	querySeconds map[string]*obs.Histogram // by kind
	queries      map[string]*obs.Counter   // by kind
	slowQueries  *obs.Counter

	trainSeconds   *obs.Histogram
	trainSwaps     *obs.Counter
	trainErrors    *obs.Counter
	trainLastError *obs.Gauge

	// store is the bundle handed down to the logstore layer.
	store *logstore.Metrics
}

// topic resolves every per-topic instrument once.
func (m *serviceMetrics) topic(name string, shards int) *topicMetrics {
	t := &topicMetrics{
		ingestLines:   m.ingestLines.With(name),
		ingestBatches: m.ingestBatches.With(name),
		matchSeconds:  m.matchSeconds.With(name),
		appendSeconds: m.appendSeconds.With(name),

		cacheHits:      m.cacheHits.With(name),
		cacheMisses:    m.cacheMisses.With(name),
		cacheEvictions: m.cacheEvictions.With(name),

		querySeconds: make(map[string]*obs.Histogram, len(queryKinds)),
		queries:      make(map[string]*obs.Counter, len(queryKinds)),
		slowQueries:  m.slowQueries.With(name),

		trainSeconds:   m.trainSeconds.With(name),
		trainSwaps:     m.trainSwaps.With(name),
		trainErrors:    m.trainErrors.With(name),
		trainLastError: m.trainLastError.With(name),

		store: &logstore.Metrics{
			WALAppendRecords:   m.walAppendRecords.With(name),
			WALAppendBytes:     m.walAppendBytes.With(name),
			WALFsyncs:          m.walFsyncs.With(name),
			WALFsyncErrors:     m.walFsyncErrors.With(name),
			WALFsyncSeconds:    m.walFsyncSeconds.With(name),
			WALPoisonRotations: m.walPoisonRotations.With(name),
			RecoveredRecords:   m.walRecoveredRecs.With(name),
			WALTornTails:       m.walTornTails.With(name),
			RecoveredSegments:  m.recoveredSegments.With(name),
			BatchRecords:       m.storeBatchRecords.With(name),
			Seals:              m.storeSeals.With(name),
			SealSeconds:        m.storeSealSeconds.With(name),
			SealRetries:        m.storeSealRetries.With(name),
			DegradedEnters:     m.storeDegradedSum.With(name),
			BlocksPruned:       m.blocksPruned.With(name),
		},
	}
	for _, kind := range queryKinds {
		t.querySeconds[kind] = m.querySeconds.With(name, kind)
		t.queries[kind] = m.queries.With(name, kind)
	}
	for i := 0; i < shards; i++ {
		t.store.ShardAppends = append(t.store.ShardAppends, m.shardAppends.With(name, strconv.Itoa(i)))
	}
	return t
}

// queriesTotal sums the per-kind query counters for the /stats rollup.
func (t *topicMetrics) queriesTotal() int64 {
	var n int64
	for _, c := range t.queries {
		n += c.Value()
	}
	return n
}

// bindTopicGauges wires the func-backed per-topic gauges to the live
// topic state; they read current values at scrape time, costing nothing
// between scrapes.
func (m *serviceMetrics) bindTopicGauges(s *Service, st *topicState) {
	m.topicRecords.Bind(func() int64 { return int64(st.store.Len()) }, st.name)
	m.topicBytes.Bind(func() int64 { return st.store.Bytes() }, st.name)
	m.topicTemplates.Bind(func() int64 {
		if snap := st.snap.Load(); snap != nil {
			return int64(snap.model.Len() + snap.matcher.TemporaryCount())
		}
		return 0
	}, st.name)
	m.topicReservoir.Bind(func() int64 {
		st.resMu.Lock()
		defer st.resMu.Unlock()
		return int64(len(st.buffer))
	}, st.name)
	m.topicTrainings.Bind(func() int64 { return st.trainings.Load() }, st.name)
	if cs, ok := st.store.(logstore.Compactor); ok && s.cfg.SegmentBytes > 0 {
		m.topicSegments.Bind(func() int64 { return int64(cs.SegmentStats().Segments) }, st.name)
		m.blocksRead.Bind(func() int64 { return cs.SegmentStats().BlockReads }, st.name)
	}
	if d, ok := st.store.(logstore.Degrader); ok {
		m.storeDegraded.Bind(func() int64 {
			if deg, _ := d.Degraded(); deg {
				return 1
			}
			return 0
		}, st.name)
	}
}

// observeQuery records one served query: per-kind latency and count, plus
// the slow-query counter and structured log line when the configured
// threshold is met.
func (s *Service) observeQuery(st *topicState, kind string, tr TimeRange, start time.Time, results int) {
	d := time.Since(start)
	met := st.met
	met.querySeconds[kind].ObserveDuration(d)
	met.queries[kind].Inc()
	if s.cfg.SlowQueryThreshold <= 0 || d < s.cfg.SlowQueryThreshold {
		return
	}
	met.slowQueries.Inc()
	from, to := "-", "-"
	if !tr.From.IsZero() {
		from = tr.From.UTC().Format(time.RFC3339Nano)
	}
	if !tr.To.IsZero() {
		to = tr.To.UTC().Format(time.RFC3339Nano)
	}
	s.cfg.SlowQueryLogf("slow-query topic=%s kind=%s from=%s to=%s duration=%s results=%d threshold=%s",
		st.name, kind, from, to, d, results, s.cfg.SlowQueryThreshold)
}
