package service

import (
	"strings"
	"testing"
	"time"
)

// TestShardedTopicEndToEnd drives a TopicShards topic through the full
// service surface: pinned multi-queue ingestion, training, grouped
// queries and the per-shard stats breakdown.
func TestShardedTopicEndToEnd(t *testing.T) {
	for name, cfg := range map[string]Config{
		"memory": func() Config {
			c := testConfig()
			c.TopicShards = 4
			return c
		}(),
		"segments": func() Config {
			c := testConfig()
			c.TopicShards = 4
			c.SegmentBytes = 8 << 10
			c.SegmentCodec = "flate"
			c.DataDir = t.TempDir()
			return c
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			s := New(cfg)
			defer s.Close()
			if err := s.CreateTopic("app"); err != nil {
				t.Fatal(err)
			}
			ing, err := s.NewIngester("app", 4, 64)
			if err != nil {
				t.Fatal(err)
			}
			lines := genLines(800, 1)
			for _, line := range lines {
				if err := ing.Submit(line); err != nil {
					t.Fatal(err)
				}
			}
			if err := ing.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.Train("app"); err != nil {
				t.Fatal(err)
			}

			stats, err := s.TopicStats("app")
			if err != nil {
				t.Fatal(err)
			}
			if stats.Records != len(lines) {
				t.Fatalf("Records = %d, want %d", stats.Records, len(lines))
			}
			if stats.TopicShards != 4 || len(stats.Shards) != 4 {
				t.Fatalf("shard breakdown missing: %+v", stats)
			}
			total, busy := 0, 0
			for i, sh := range stats.Shards {
				if sh.Shard != i {
					t.Fatalf("shard stat %d has index %d", i, sh.Shard)
				}
				total += sh.Records
				if sh.Records > 0 {
					busy++
				}
			}
			if total != len(lines) {
				t.Fatalf("shard records sum %d, want %d", total, len(lines))
			}
			// Queue→shard affinity spreads the batch over every shard.
			if busy != 4 {
				t.Fatalf("only %d of 4 shards received records", busy)
			}

			// Grouped queries merge across shards and cover every record.
			rows, err := s.Query("app", 0.7, TimeRange{})
			if err != nil {
				t.Fatal(err)
			}
			covered := 0
			for _, r := range rows {
				covered += r.Count
				if len(r.SampleOffsets) == 0 {
					t.Fatalf("row %q has no samples", r.Template)
				}
			}
			if covered != len(lines) {
				t.Fatalf("query covered %d of %d records", covered, len(lines))
			}

			if cfg.SegmentBytes > 0 {
				if err := s.Compact("app"); err != nil {
					t.Fatal(err)
				}
				stats, err = s.TopicStats("app")
				if err != nil {
					t.Fatal(err)
				}
				if stats.Segments == 0 {
					t.Fatalf("no sealed segments after Compact: %+v", stats)
				}
			} else if err := s.Compact("app"); err == nil || !strings.Contains(err.Error(), "no segment store") {
				t.Fatalf("Compact without segment store = %v", err)
			}
		})
	}
}

// TestShardedTopicPersistence restarts a sharded persistent service and
// checks records and model survive with the shard layout intact.
func TestShardedTopicPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.TopicShards = 3
	cfg.SegmentBytes = 4 << 10
	cfg.SegmentCodec = "flate"
	cfg.DataDir = dir

	s := New(cfg)
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	lines := genLines(600, 7)
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(cfg)
	defer s2.Close()
	if err := s2.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	stats, err := s2.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(lines) {
		t.Fatalf("recovered %d records, want %d", stats.Records, len(lines))
	}
	if stats.TopicShards != 3 {
		t.Fatalf("TopicShards = %d after restart", stats.TopicShards)
	}
	if stats.Templates == 0 {
		t.Fatal("model snapshot not recovered")
	}
	rows, err := s2.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, r := range rows {
		covered += r.Count
	}
	if covered != len(lines) {
		t.Fatalf("query covered %d of %d records after restart", covered, len(lines))
	}

	// Shrinking the shard count must refuse to open, not hide records.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	small := cfg
	small.TopicShards = 2
	s3 := New(small)
	defer s3.Close()
	if err := s3.CreateTopic("app"); err == nil {
		t.Fatal("CreateTopic with fewer shards than on disk must refuse")
	}
}

// TestShardedHotPathStress is TestHotPathStress over a sharded segment
// store: Ingest ∥ Query ∥ Train ∥ Compact across shards under -race.
func TestShardedHotPathStress(t *testing.T) {
	cfg := Config{
		Parser:        testConfig().Parser,
		TrainVolume:   400,
		TrainInterval: time.Hour,
		SegmentBytes:  16 << 10,
		SegmentCodec:  "flate",
		TopicShards:   4,
	}
	runHotPathStress(t, cfg)
}
