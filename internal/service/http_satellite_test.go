package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPLogsNoTrailingNewline: bufio.Scanner hands out the final line
// whether or not the body ends in '\n'; with the pooled scanner buffer
// that must keep holding (the pool swap must not eat the last line).
func TestHTTPLogsNoTrailingNewline(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { s.Close() })

	body := "first line here\nsecond line here\nfinal line zzunterminated"
	resp, err := srv.Client().Post(srv.URL+"/topics/app/logs", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /logs = %d", resp.StatusCode)
	}
	var out map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["ingested"] != 3 {
		t.Fatalf("ingested = %d, want 3 (unterminated final line dropped?)", out["ingested"])
	}
	// The unterminated line is really in the store, bytes intact.
	offs, err := s.Search("app", "zzunterminated", TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 {
		t.Fatalf("search for the final line found %d records, want 1", len(offs))
	}
	recs, err := s.Records("app", offs)
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Raw != "final line zzunterminated" {
		t.Fatalf("final line stored as %q", recs[0].Raw)
	}
}

// TestHTTPSearchTemplatesParamRejections extends the query-route 400
// matrix to the search and templates routes, which share the same
// from/to/since validation.
func TestHTTPSearchTemplatesParamRejections(t *testing.T) {
	srv := newHTTPFixture(t)
	bad := []string{
		"from=tomorrow", "from=", "to=yesterday",
		"from=2026-07-26T12:00:00Z&to=2026-07-26T11:00:00Z",
		"since=eternity", "since=-5m", "since=5m&from=2026-07-26T11:00:00Z",
		"since=5m&to=2026-07-26T13:00:00Z",
	}
	for _, qs := range bad {
		for _, path := range []string{
			"/topics/app/search?token=request&" + qs,
			"/topics/app/templates?id=1&" + qs,
		} {
			resp := do(t, srv, "GET", path, "")
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
			}
		}
	}
	// Well-formed bounds still answer 200.
	for _, path := range []string{
		"/topics/app/search?token=request&since=15m",
		"/topics/app/search?token=request&from=2026-07-26T11:00:00Z&to=2026-07-26T12:00:00Z",
		"/topics/app/templates?id=1&since=15m",
	} {
		resp := do(t, srv, "GET", path, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestSearchTemplatesTimeRange ingests three timestamped batches and
// checks that search and templates honour time bounds — service API and
// HTTP, hot and sealed.
func TestSearchTemplatesTimeRange(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		name := "hot"
		if sealed {
			name = "sealed"
		}
		t.Run(name, func(t *testing.T) {
			cfg, step, base := advancingConfig()
			if sealed {
				cfg.SegmentBytes = 1 << 30
			}
			s := New(cfg)
			defer s.Close()
			if err := s.CreateTopic("app"); err != nil {
				t.Fatal(err)
			}
			// Every line shares one shape and the token "marker".
			for b := 0; b < 3; b++ {
				lines := make([]string, 30)
				for i := range lines {
					lines[i] = fmt.Sprintf("marker event %d code %d", b*30+i, i%5)
				}
				if err := s.Ingest("app", lines); err != nil {
					t.Fatal(err)
				}
				step(10 * time.Minute)
			}
			if err := s.Train("app"); err != nil {
				t.Fatal(err)
			}
			if sealed {
				if err := s.Compact("app"); err != nil {
					t.Fatal(err)
				}
			}
			rows, err := s.Query("app", 0, TimeRange{})
			if err != nil {
				t.Fatal(err)
			}
			var ids []uint64
			for _, r := range rows {
				ids = append(ids, r.TemplateID)
			}

			cases := []struct {
				tr   TimeRange
				want int
			}{
				{TimeRange{}, 90},
				{TimeRange{From: base.Add(5 * time.Minute)}, 60},
				{TimeRange{From: base.Add(5 * time.Minute), To: base.Add(15 * time.Minute)}, 30},
				{TimeRange{To: base.Add(-time.Minute)}, 0},
				{TimeRange{From: base.Add(time.Hour)}, 0},
			}
			for _, tc := range cases {
				offs, err := s.Search("app", "marker", tc.tr)
				if err != nil {
					t.Fatalf("Search(%+v): %v", tc.tr, err)
				}
				if len(offs) != tc.want {
					t.Errorf("Search(%+v) = %d offsets, want %d", tc.tr, len(offs), tc.want)
				}
				toffs, err := s.ByTemplate("app", tc.tr, ids...)
				if err != nil {
					t.Fatalf("ByTemplate(%+v): %v", tc.tr, err)
				}
				if len(toffs) != tc.want {
					t.Errorf("ByTemplate(%+v) = %d offsets, want %d", tc.tr, len(toffs), tc.want)
				}
			}

			// Same through HTTP, including the since sugar (clock is
			// frozen at base+30m).
			srv := httptest.NewServer(s.Handler())
			defer srv.Close()
			count := func(path string) int {
				t.Helper()
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
				}
				var out struct{ Count int }
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Fatal(err)
				}
				return out.Count
			}
			rfc := func(d time.Duration) string { return base.Add(d).Format(time.RFC3339) }
			idQS := ""
			for _, id := range ids {
				idQS += fmt.Sprintf("&id=%d", id)
			}
			if got := count("/topics/app/search?token=marker&from=" + rfc(5*time.Minute)); got != 60 {
				t.Errorf("HTTP search from+5m = %d, want 60", got)
			}
			if got := count("/topics/app/search?token=marker&since=25m"); got != 60 {
				t.Errorf("HTTP search since=25m = %d, want 60", got)
			}
			if got := count("/topics/app/search?token=marker&from=" + rfc(5*time.Minute) + "&to=" + rfc(15*time.Minute)); got != 30 {
				t.Errorf("HTTP search bounded window = %d, want 30", got)
			}
			if got := count("/topics/app/templates?x=1" + idQS + "&since=25m"); got != 60 {
				t.Errorf("HTTP templates since=25m = %d, want 60", got)
			}
			if got := count("/topics/app/templates?x=1" + idQS + "&to=" + rfc(-time.Minute)); got != 0 {
				t.Errorf("HTTP templates past-only window = %d, want 0", got)
			}
		})
	}
}

// TestQuerySamples: ?samples=1 inflates each row's SampleOffsets into
// raw lines via the batched GetBatch path, and the field stays out of
// the payload when not requested.
func TestQuerySamples(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { s.Close() })

	resp, err := srv.Client().Get(srv.URL + "/topics/app/query?threshold=0.7&samples=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query?samples=1 = %d", resp.StatusCode)
	}
	var rows []TemplateRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no template rows")
	}
	for _, row := range rows {
		if len(row.SampleLines) != len(row.SampleOffsets) {
			t.Fatalf("row %d: %d sample lines for %d offsets", row.TemplateID, len(row.SampleLines), len(row.SampleOffsets))
		}
		// Each sample line is the raw record at the matching offset.
		recs, err := s.Records("app", row.SampleOffsets)
		if err != nil {
			t.Fatal(err)
		}
		for i, rec := range recs {
			if row.SampleLines[i] != rec.Raw {
				t.Fatalf("row %d sample %d = %q, store has %q", row.TemplateID, i, row.SampleLines[i], rec.Raw)
			}
		}
	}

	// Without samples=1 the field must not appear at all (omitempty).
	resp2, err := srv.Client().Get(srv.URL + "/topics/app/query?threshold=0.7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "SampleLines") {
		t.Fatal("SampleLines serialized without samples=1")
	}
}
