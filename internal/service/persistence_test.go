package service

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestServicePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1700000000, 0)
	cfg := Config{
		Parser:        testConfig().Parser,
		TrainVolume:   1 << 30,
		TrainInterval: time.Hour,
		DataDir:       dir,
		Now:           func() time.Time { return now },
	}

	// First life: ingest, train, ingest more, shut down.
	s1 := New(cfg)
	if err := s1.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	lines := genLines(200, 1)
	if err := s1.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := s1.Train("app"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Ingest("app", genLines(100, 2)); err != nil {
		t.Fatal(err)
	}
	rowsBefore, err := s1.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same DataDir — records and model recover.
	s2 := New(cfg)
	if err := s2.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	stats, err := s2.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 300 {
		t.Fatalf("recovered %d records, want 300", stats.Records)
	}
	if stats.Templates == 0 || stats.Snapshots != 1 || stats.Trainings != 1 {
		t.Fatalf("model not recovered: %+v", stats)
	}
	rowsAfter, err := s2.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsAfter) != len(rowsBefore) {
		t.Errorf("query groups changed across restart: %d vs %d", len(rowsAfter), len(rowsBefore))
	}
	// The recovered matcher still matches known structures without
	// temporary insertion.
	if err := s2.Ingest("app", genLines(50, 3)); err != nil {
		t.Fatal(err)
	}
	stats2, _ := s2.TopicStats("app")
	if stats2.Records != 350 {
		t.Errorf("post-recovery ingest: %d records", stats2.Records)
	}
}

func TestServicePersistedFilesOnDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.DataDir = dir
	cfg.TrainVolume = 50
	s := New(cfg)
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(80, 1)); err != nil {
		t.Fatal(err)
	}
	// Training is asynchronous; wait for the volume-triggered cycle to
	// persist its model snapshot before shutting down.
	waitTrainings(t, s, "app", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		filepath.Join(dir, "app", "records", "segment-000000.log"),
		filepath.Join(dir, "app", "models", "model-000000.bin"),
	} {
		if !fileExists(want) {
			t.Errorf("expected persisted file %s", want)
		}
	}
}

func TestServiceRejectsPathTraversalTopicNames(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	s := New(cfg)
	for _, bad := range []string{"../evil", "a/b", `a\b`, "a b"} {
		if err := s.CreateTopic(bad); err == nil {
			t.Errorf("topic name %q accepted", bad)
		}
	}
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}
