package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape fetches /metrics from the handler and returns the body plus a
// name{labels} → value map of every simple sample line.
func scrape(t *testing.T, h http.Handler) (string, map[string]float64) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	body := rec.Body.String()
	vals := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, v, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed exposition line %q", line)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("non-numeric value in line %q: %v", line, err)
		}
		vals[key] = f
	}
	return body, vals
}

// TestMetricsEndToEnd drives ingest, training, and every query kind
// through the HTTP API while a scraper runs concurrently, then checks the
// exposition covers all metric families with exact, consistent values.
func TestMetricsEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.SegmentBytes = 4096
	cfg.WALFsyncEveryBatches = 1
	cfg.TrainVolume = 1 << 30 // explicit Train calls only: keeps counts exact
	s := New(cfg)
	defer s.Close()
	h := s.Handler()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}

	lines := genLines(300, 4)
	// Ingest and query in parallel with a scraper: -race makes this a
	// correctness test for the lock-free instruments, not just coverage.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				scrape(t, h)
			}
		}
	}()
	if err := s.Ingest("app", lines); err != nil { // pre-training: no cache yet
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", lines); err != nil { // all misses, fills the cache
		t.Fatal(err)
	}
	if err := s.Ingest("app", lines); err != nil { // all hits
		t.Fatal(err)
	}
	if _, err := s.Query("app", 0.7, TimeRange{}); err != nil {
		t.Fatal(err)
	}
	now := cfg.Now()
	if _, err := s.Query("app", 0.7, TimeRange{From: now.Add(-time.Hour), To: now.Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search("app", "alpha", TimeRange{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ByTemplate("app", TimeRange{}, 1); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	body, vals := scrape(t, h)

	// Every family the issue calls for must be present.
	for _, fam := range []string{
		"bb_ingest_lines_total", "bb_ingest_batches_total",
		"bb_ingest_match_seconds", "bb_ingest_append_seconds",
		"bb_line_cache_hits_total", "bb_line_cache_misses_total", "bb_line_cache_evictions_total",
		"bb_query_seconds", "bb_queries_total", "bb_slow_queries_total",
		"bb_train_cycle_seconds", "bb_train_swaps_total", "bb_train_errors_total", "bb_train_last_error",
		"bb_wal_append_records_total", "bb_wal_append_bytes_total",
		"bb_wal_fsyncs_total", "bb_wal_fsync_seconds",
		"bb_store_batch_records", "bb_store_seals_total",
		"bb_segment_blocks_read_total", "bb_segment_blocks_pruned_total",
		"bb_topic_records", "bb_topic_templates", "bb_topic_segments",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	if got := vals[`bb_ingest_lines_total{topic="app"}`]; got != 900 {
		t.Errorf("ingest lines = %v, want 900", got)
	}
	// Cache accounting covers only post-training ingests (the cache lives
	// on the model snapshot): pass 2 misses, pass 3 hits.
	hits := vals[`bb_line_cache_hits_total{topic="app"}`]
	misses := vals[`bb_line_cache_misses_total{topic="app"}`]
	if hits+misses != 600 {
		t.Errorf("cache hits+misses = %v, want 600", hits+misses)
	}
	if hits == 0 {
		t.Error("repeat ingest produced no cache hits")
	}
	for _, kind := range []string{"grouped", "time-range", "search", "template"} {
		if got := vals[fmt.Sprintf(`bb_queries_total{topic="app",kind=%q}`, kind)]; got != 1 {
			t.Errorf("queries{kind=%s} = %v, want 1", kind, got)
		}
		if got := vals[fmt.Sprintf(`bb_query_seconds_count{topic="app",kind=%q}`, kind)]; got != 1 {
			t.Errorf("query_seconds_count{kind=%s} = %v, want 1", kind, got)
		}
	}
	if got := vals[`bb_train_swaps_total{topic="app"}`]; got < 1 {
		t.Errorf("train swaps = %v, want >= 1", got)
	}
	if got := vals[`bb_train_last_error{topic="app"}`]; got != 0 {
		t.Errorf("train_last_error = %v, want 0", got)
	}
	if got := vals[`bb_wal_append_records_total{topic="app"}`]; got != 900 {
		t.Errorf("wal records = %v, want 900", got)
	}
	if vals[`bb_wal_fsyncs_total{topic="app"}`] == 0 {
		t.Error("fsync-every-1 recorded no fsyncs")
	}
	if got := vals[`bb_topic_records{topic="app"}`]; got != 900 {
		t.Errorf("topic records gauge = %v, want 900", got)
	}

	// Histogram self-consistency: every _count equals its +Inf bucket, and
	// the ingest histograms saw one observation per Ingest call.
	matchCount := vals[`bb_ingest_match_seconds_count{topic="app"}`]
	if matchCount != 3 {
		t.Errorf("match histogram count = %v, want 3", matchCount)
	}
	if inf := vals[`bb_ingest_match_seconds_bucket{topic="app",le="+Inf"}`]; inf != matchCount {
		t.Errorf("+Inf bucket %v != count %v", inf, matchCount)
	}
	if vals[`bb_ingest_match_seconds_sum{topic="app"}`] <= 0 {
		t.Error("match histogram sum not positive")
	}

	// A second scrape after more work: counters must be monotone.
	if err := s.Ingest("app", lines[:100]); err != nil {
		t.Fatal(err)
	}
	_, after := scrape(t, h)
	for key, v := range vals {
		if !strings.Contains(key, "_total") && !strings.Contains(key, "_count") && !strings.Contains(key, "_bucket") {
			continue
		}
		if after[key] < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, after[key])
		}
	}
	if got := after[`bb_ingest_lines_total{topic="app"}`]; got != 1000 {
		t.Errorf("ingest lines after extra batch = %v, want 1000", got)
	}
}

// TestSlowQueryLog checks the threshold gate and the structured line
// format of the slow-query log.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	cfg := testConfig()
	cfg.SlowQueryThreshold = time.Nanosecond // every query is slow
	cfg.SlowQueryLogf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(50, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("app", 0.7, TimeRange{}); err != nil {
		t.Fatal(err)
	}
	now := cfg.Now()
	if _, err := s.Query("app", 0, TimeRange{From: now.Add(-time.Minute)}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 2 {
		t.Fatalf("slow-query lines = %d, want 2: %q", len(logged), logged)
	}
	want := regexp.MustCompile(`^slow-query topic=app kind=grouped from=- to=- duration=\S+ results=\d+ threshold=1ns$`)
	if !want.MatchString(logged[0]) {
		t.Errorf("line %q does not match %v", logged[0], want)
	}
	if !strings.Contains(logged[1], "kind=time-range") || strings.Contains(logged[1], "from=-") {
		t.Errorf("bounded query line %q missing kind/from", logged[1])
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.SlowQueries != 2 {
		t.Errorf("stats.SlowQueries = %d, want 2", stats.SlowQueries)
	}
	if stats.Queries != 2 {
		t.Errorf("stats.Queries = %d, want 2", stats.Queries)
	}

	// Above-threshold gate: with a huge threshold nothing new is logged.
	s2 := New(testConfig()) // zero threshold: disabled entirely
	defer s2.Close()
	if err := s2.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Ingest("app", genLines(10, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Train("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Query("app", 0.7, TimeRange{}); err != nil {
		t.Fatal(err)
	}
	st2, err := s2.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if st2.SlowQueries != 0 {
		t.Errorf("disabled threshold still counted %d slow queries", st2.SlowQueries)
	}
}

// TestLineCacheEvictionEndToEnd drives a topic past a tiny line-cache cap
// and checks the eviction counter and /stats visibility.
func TestLineCacheEvictionEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.LineCacheCap = 32
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(64, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	// 200 distinct lines against a cap of 32 forces generation evictions.
	var distinct []string
	for i := 0; i < 200; i++ {
		distinct = append(distinct, fmt.Sprintf("evict probe %d from host-%d", i, i))
	}
	if err := s.Ingest("app", distinct); err != nil {
		t.Fatal(err)
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.LineCacheEvictions == 0 {
		t.Fatal("no evictions recorded past the cap")
	}
	if stats.LineCacheEntries > 32 {
		t.Fatalf("cache holds %d entries, cap is 32", stats.LineCacheEntries)
	}
	if stats.LineCacheMisses == 0 {
		t.Fatal("misses not recorded")
	}
	// The data survived eviction — the cache is only a memoization layer.
	rows, err := s.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	if total != 264 {
		t.Fatalf("query counts sum to %d, want 264", total)
	}
}

// TestHTTPSearchAndTemplates exercises the new query routes end to end.
func TestHTTPSearchAndTemplates(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	h := s.Handler()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(40, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	get := func(path string) (int, string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/topics/app/search?token=alpha"); code != http.StatusOK || !strings.Contains(body, "count") {
		t.Fatalf("search: %d %q", code, body)
	}
	if code, _ := get("/topics/app/search"); code != http.StatusBadRequest {
		t.Fatalf("search without token: %d, want 400", code)
	}
	if code, body := get("/topics/app/templates?id=1&id=2"); code != http.StatusOK || !strings.Contains(body, "count") {
		t.Fatalf("templates: %d %q", code, body)
	}
	if code, _ := get("/topics/app/templates?id=x"); code != http.StatusBadRequest {
		t.Fatalf("templates bad id: %d, want 400", code)
	}
	if code, _ := get("/topics/app/templates"); code != http.StatusBadRequest {
		t.Fatalf("templates no id: %d, want 400", code)
	}
	if code, _ := get("/topics/nope/search?token=x"); code != http.StatusNotFound {
		t.Fatalf("search unknown topic: %d, want 404", code)
	}
}
