package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Ingester is the asynchronous ingestion pipeline of §3 ("the system
// distributes matching tasks across multiple processing queues, leveraging
// the independent nature of template matching"): producers submit raw
// lines, worker queues batch them, match them against the current model
// and group-commit each batch to storage through one AppendBatch call.
// Submit applies backpressure when every queue is full. Records from
// different queues interleave; per-queue order is preserved. On a sharded
// topic store (Config.TopicShards > 1) each queue pins its appends to one
// shard, so the write side scales with queues the way matching scales
// with cores.
//
// The queues carry line chunks, not single lines: SubmitBatch moves a
// whole caller batch with one channel send per chunk of up to ingestBatch
// lines, so bulk producers (the HTTP ingest path, log shippers) pay
// no per-line synchronization anywhere between the socket and the store.
// Submit wraps one line into a chunk for the interactive case. The
// configured queue depth bounds buffered LINES (capacity is counted in
// full chunks), which means a per-line Submit producer gets depth/256
// lines of producer/worker decoupling, not depth — high-rate per-line
// producers should batch upstream and call SubmitBatch.
//
// Submit/SubmitBatch and Close are safe to call concurrently: closed is
// an atomic.Bool (late Submits fail fast), and an RWMutex excludes
// in-flight queue sends from the channel close.
type Ingester struct {
	svc   *Service
	topic string

	queues []chan []string
	// chunkSize caps lines per queued chunk: ingestBatch, or the
	// configured depth when that is smaller, so chunk-counted channel
	// capacity never over-buffers past the depth-in-lines contract.
	chunkSize int
	next      atomic.Uint64

	wg      sync.WaitGroup
	closed  atomic.Bool
	closeMu sync.RWMutex // held (R) across queue sends, (W) across close

	errMu    sync.Mutex
	firstErr error
}

const (
	defaultQueues     = 4
	defaultQueueDepth = 1024
	ingestBatch       = 256
)

// NewIngester creates an ingestion pipeline for topic with the given
// number of worker queues and per-queue depth (values ≤ 0 use the
// service's Config.IngestQueues / Config.IngestQueueDepth defaults).
func (s *Service) NewIngester(topic string, queues, depth int) (*Ingester, error) {
	if _, err := s.topic(topic); err != nil {
		return nil, err
	}
	if queues <= 0 {
		queues = s.cfg.IngestQueues
	}
	if depth <= 0 {
		depth = s.cfg.IngestQueueDepth
	}
	ing := &Ingester{svc: s, topic: topic, queues: make([]chan []string, queues)}
	// depth is denominated in LINES: queues carry chunks of up to
	// chunkSize lines (ingestBatch, or depth itself when smaller), so
	// the channel capacity is depth/chunkSize chunks and a full queue
	// holds at most depth lines — the same backpressure/memory bound the
	// per-line channels gave. Single-line Submit chunks under-fill that
	// bound (capacity counts chunks, not lines); bulk producers should
	// use SubmitBatch.
	ing.chunkSize = ingestBatch
	if depth < ing.chunkSize {
		ing.chunkSize = depth
	}
	chunks := depth / ing.chunkSize
	if chunks < 1 {
		chunks = 1
	}
	for i := range ing.queues {
		ing.queues[i] = make(chan []string, chunks)
		ing.wg.Add(1)
		go ing.worker(i, ing.queues[i])
	}
	return ing, nil
}

// sharedIngester returns the service-owned pipeline for topic (the HTTP
// async ingest path), creating it on first use from the Config knobs.
func (s *Service) sharedIngester(topic string) (*Ingester, error) {
	s.ingMu.Lock()
	defer s.ingMu.Unlock()
	if s.closed {
		return nil, errors.New("service: closed")
	}
	if ing, ok := s.ingesters[topic]; ok {
		return ing, nil
	}
	ing, err := s.NewIngester(topic, 0, 0)
	if err != nil {
		return nil, err
	}
	s.ingesters[topic] = ing
	return ing, nil
}

// worker drains one queue in batches and ingests them; each flush is one
// group-committed AppendBatch in the store. Its queue index doubles as
// the shard pin: on a sharded topic store every batch from queue i
// appends to shard i mod shards, so parallel queues write disjoint
// shards with zero cross-shard lock contention.
func (ing *Ingester) worker(queue int, q chan []string) {
	defer ing.wg.Done()
	batch := make([]string, 0, ingestBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := ing.svc.ingest(ing.topic, batch, queue); err != nil {
			ing.recordErr(err)
		}
		batch = batch[:0]
	}
	for chunk := range q {
		batch = append(batch, chunk...)
		if len(batch) >= ingestBatch {
			flush()
			continue
		}
		// Opportunistically drain what is already queued, then flush:
		// low latency when idle, big batches under load.
		for len(batch) < ingestBatch {
			select {
			case more, ok := <-q:
				if !ok {
					flush()
					return
				}
				batch = append(batch, more...)
			default:
				goto drained
			}
		}
	drained:
		flush()
	}
	flush()
}

func (ing *Ingester) recordErr(err error) {
	ing.errMu.Lock()
	defer ing.errMu.Unlock()
	if ing.firstErr == nil {
		ing.firstErr = err
	}
}

// Err returns the first ingestion error recorded so far (nil while
// healthy). Close also returns it.
func (ing *Ingester) Err() error {
	ing.errMu.Lock()
	defer ing.errMu.Unlock()
	return ing.firstErr
}

// Submit enqueues one line, blocking when the chosen queue is full
// (backpressure). Submitting after Close returns an error. Bulk
// producers should prefer SubmitBatch, which moves up to ingestBatch
// lines per queue send.
func (ing *Ingester) Submit(line string) error {
	return ing.SubmitBatch([]string{line})
}

// SubmitBatch enqueues a batch of lines as chunks of up to ingestBatch,
// round-robined across the worker queues with ONE channel send per chunk
// — the producer-side half of group commit. A 256-line batch that used
// to pay 256 queue synchronizations now pays one. Chunks are sub-slices
// of lines, retained until their worker ingests them: callers must not
// mutate the slice after submitting. Blocks when the chosen queues are
// full (backpressure); submitting after Close returns an error.
func (ing *Ingester) SubmitBatch(lines []string) error {
	if len(lines) == 0 {
		return nil
	}
	if ing.closed.Load() {
		return errors.New("service: ingester closed")
	}
	ing.closeMu.RLock()
	defer ing.closeMu.RUnlock()
	// Re-check under the lock: Close sets the flag before it can take
	// the write side, so a false here guarantees the queues are open for
	// the duration of the sends.
	if ing.closed.Load() {
		return errors.New("service: ingester closed")
	}
	for len(lines) > 0 {
		chunk := lines
		if len(chunk) > ing.chunkSize {
			chunk = chunk[:ing.chunkSize]
		}
		lines = lines[len(chunk):]
		q := ing.queues[ing.next.Add(1)%uint64(len(ing.queues))]
		// This send-under-RLock is the design: holding the read side of
		// closeMu across the send is exactly what keeps Close from
		// closing the queues mid-send (Close takes the write side), and
		// the workers never take closeMu, so the send cannot deadlock —
		// it only applies backpressure.
		//bbvet:ignore lockblock send under closeMu.RLock is the close/send handshake; consumers never take closeMu
		q <- chunk
	}
	return nil
}

// Close drains the queues, waits for the workers, and returns the first
// ingestion error, if any. Close is idempotent and safe to race with
// Submit: late submitters see an error instead of a panic.
func (ing *Ingester) Close() error {
	if ing.closed.Swap(true) {
		// Another closer won; wait for the drain so both callers
		// observe a fully stopped pipeline.
		ing.wg.Wait()
		return ing.Err()
	}
	ing.closeMu.Lock()
	for _, q := range ing.queues {
		close(q)
	}
	ing.closeMu.Unlock()
	ing.wg.Wait()
	ing.errMu.Lock()
	defer ing.errMu.Unlock()
	if ing.firstErr != nil {
		return fmt.Errorf("service: async ingest: %w", ing.firstErr)
	}
	return nil
}
