package service

import (
	"errors"
	"fmt"
	"sync"
)

// Ingester is the asynchronous ingestion pipeline of §3 ("the system
// distributes matching tasks across multiple processing queues, leveraging
// the independent nature of template matching"): producers submit raw
// lines, worker queues batch them, match them against the current model
// and append to storage. Submit applies backpressure when every queue is
// full. Records from different queues interleave; per-queue order is
// preserved.
type Ingester struct {
	svc   *Service
	topic string

	queues []chan string
	next   int
	nextMu sync.Mutex

	wg     sync.WaitGroup
	closed bool

	errMu    sync.Mutex
	firstErr error
}

const (
	defaultQueues     = 4
	defaultQueueDepth = 1024
	ingestBatch       = 256
)

// NewIngester creates an ingestion pipeline for topic with the given
// number of worker queues (≤ 0 uses 4) and per-queue depth (≤ 0 uses
// 1024).
func (s *Service) NewIngester(topic string, queues, depth int) (*Ingester, error) {
	if _, err := s.topic(topic); err != nil {
		return nil, err
	}
	if queues <= 0 {
		queues = defaultQueues
	}
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	ing := &Ingester{svc: s, topic: topic, queues: make([]chan string, queues)}
	for i := range ing.queues {
		ing.queues[i] = make(chan string, depth)
		ing.wg.Add(1)
		go ing.worker(ing.queues[i])
	}
	return ing, nil
}

// worker drains one queue in batches and ingests them.
func (ing *Ingester) worker(q chan string) {
	defer ing.wg.Done()
	batch := make([]string, 0, ingestBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := ing.svc.Ingest(ing.topic, batch); err != nil {
			ing.recordErr(err)
		}
		batch = batch[:0]
	}
	for line := range q {
		batch = append(batch, line)
		if len(batch) >= ingestBatch {
			flush()
			continue
		}
		// Opportunistically drain what is already queued, then flush:
		// low latency when idle, big batches under load.
		for len(batch) < ingestBatch {
			select {
			case more, ok := <-q:
				if !ok {
					flush()
					return
				}
				batch = append(batch, more)
			default:
				goto drained
			}
		}
	drained:
		flush()
	}
	flush()
}

func (ing *Ingester) recordErr(err error) {
	ing.errMu.Lock()
	defer ing.errMu.Unlock()
	if ing.firstErr == nil {
		ing.firstErr = err
	}
}

// Submit enqueues one line, blocking when the chosen queue is full
// (backpressure). Submit must not be called after Close.
func (ing *Ingester) Submit(line string) error {
	if ing.closed {
		return errors.New("service: ingester closed")
	}
	ing.nextMu.Lock()
	q := ing.queues[ing.next%len(ing.queues)]
	ing.next++
	ing.nextMu.Unlock()
	q <- line
	return nil
}

// Close drains the queues, waits for the workers, and returns the first
// ingestion error, if any.
func (ing *Ingester) Close() error {
	if ing.closed {
		return nil
	}
	ing.closed = true
	for _, q := range ing.queues {
		close(q)
	}
	ing.wg.Wait()
	ing.errMu.Lock()
	defer ing.errMu.Unlock()
	if ing.firstErr != nil {
		return fmt.Errorf("service: async ingest: %w", ing.firstErr)
	}
	return nil
}
