package service

import (
	"errors"
	"fmt"
	"log"
	"net"

	"bytebrain/internal/logstore"
	"bytebrain/internal/netingest"
)

// netIngest is the TCP listener's sink: Service.Ingest with degraded
// read-only mode translated to the wire's BUSY semantics, so clients
// back off and resend instead of treating shed frames as rejected.
func (s *Service) netIngest(topic string, lines []string) error {
	err := s.Ingest(topic, lines)
	if err != nil && errors.Is(err, logstore.ErrDegraded) {
		return fmt.Errorf("%w (%v)", netingest.ErrBusy, err)
	}
	return err
}

// StartNetIngest starts the streaming TCP ingest listener on addr
// (":7171", "127.0.0.1:0", ...) and returns the bound address. Frames
// are committed through the same synchronous group-commit path as
// Service.Ingest, so an OK ack on the wire means the batch took the
// store's durability path. The listener shares the service's metrics
// registry (bb_netingest_* families) and is drained and closed first
// thing in Close.
func (s *Service) StartNetIngest(addr string) (net.Addr, error) {
	s.ingMu.Lock()
	closed := s.closed
	s.ingMu.Unlock()
	if closed {
		return nil, errors.New("service: closed")
	}
	srv, err := netingest.Listen(addr, netingest.Config{
		Ingest:  s.netIngest,
		Metrics: &s.met.netIngest,
		Logf:    log.Printf,
	})
	if err != nil {
		return nil, err
	}
	s.netMu.Lock()
	if s.netClosed {
		// Close drained the listener list between the entry check and
		// here; this server would never be shut down, so shut it down
		// now instead of leaking it against closed stores.
		s.netMu.Unlock()
		srv.Close()
		return nil, errors.New("service: closed")
	}
	s.netServers = append(s.netServers, srv)
	s.netMu.Unlock()
	return srv.Addr(), nil
}
