package service

import (
	"fmt"
	"time"

	"bytebrain/internal/core"
)

// trainer.go — the per-topic background training cycle. Ingest never
// trains inline: it bumps trigger counters and pokes the trainer through
// a non-blocking channel send; the trainer steals the reservoir, trains
// and merges outside every ingestion-path lock, and atomically swaps the
// new (model, matcher) snapshot in when done.

// kickTrainer requests a training cycle; a no-op when one is already
// queued.
func (st *topicState) kickTrainer() {
	select {
	case st.trainCh <- struct{}{}:
	default:
	}
}

// trainErr returns the most recent background training failure, if any.
func (st *topicState) trainErr() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.lastErr
}

func (st *topicState) setTrainErr(err error) {
	st.errMu.Lock()
	st.lastErr = err
	st.errMu.Unlock()
}

// trainLoop runs training cycles for one topic until the service closes.
func (s *Service) trainLoop(st *topicState) {
	defer st.wg.Done()
	for {
		select {
		case <-st.stopCh:
			return
		case <-st.trainCh:
		}
		st.setTrainErr(s.trainOnce(st))
	}
}

// Train forces a synchronous training cycle for the topic and returns its
// error directly (background-cycle failures surface in Stats instead).
func (s *Service) Train(topicName string) error {
	st, err := s.topic(topicName)
	if err != nil {
		return err
	}
	return s.trainOnce(st)
}

// trainOnce wraps one training cycle with its telemetry: cycle duration,
// error counter, and the last-error gauge (1 while the most recent cycle
// failed, 0 once one succeeds).
func (s *Service) trainOnce(st *topicState) error {
	start := time.Now()
	err := s.trainCycle(st)
	st.met.trainSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		st.met.trainErrors.Inc()
		st.met.trainLastError.Set(1)
	} else {
		st.met.trainLastError.Set(0)
	}
	return err
}

// trainCycle runs one training cycle: steal the reservoir, train + merge
// against a snapshot of the current model (temporaries included), build
// the new matcher, persist the snapshot, and atomically publish. The only
// locks it ever holds are trainMu (cycle serialization — never taken by
// Ingest) and resMu for the microseconds of the buffer swap, so ingestion
// proceeds at full speed throughout.
func (s *Service) trainCycle(st *topicState) error {
	st.trainMu.Lock()
	defer st.trainMu.Unlock()
	st.training.Store(true)
	defer st.training.Store(false)

	now := s.cfg.Now()
	st.resMu.Lock()
	lines := st.buffer
	st.buffer = nil
	st.bufSeen = 0
	st.resMu.Unlock()
	st.sinceLast.Store(0)
	st.lastTrain.Store(now.UnixNano())
	if len(lines) == 0 {
		return nil
	}
	if s.trainHook != nil {
		s.trainHook(st.name)
	}

	// Heavy lifting, entirely outside any lock Ingest touches. The prev
	// model snapshot folds in the matcher's temporary templates so the
	// merge can drop them and forward their IDs; its NextID carries ID
	// headroom so temporaries minted by concurrent ingestion while this
	// cycle runs cannot collide with freshly trained node IDs.
	var prev *core.Model
	var prevMatcher *core.Matcher
	if snap := st.snap.Load(); snap != nil {
		prevMatcher = snap.matcher
		prev = prevMatcher.SnapshotModel()
	}
	res, err := st.parser.TrainMerge(prev, lines)
	if err != nil {
		st.restoreReservoir(lines)
		return fmt.Errorf("service: train %s: %w", st.name, err)
	}
	if err := res.Model.Validate(); err != nil {
		st.restoreReservoir(lines)
		return fmt.Errorf("service: train %s produced invalid model: %w", st.name, err)
	}
	data, err := res.Model.MarshalBinary()
	if err != nil {
		st.restoreReservoir(lines)
		return fmt.Errorf("service: snapshot %s: %w", st.name, err)
	}
	if err := st.internal.AppendSnapshot(now, data); err != nil {
		st.restoreReservoir(lines)
		return fmt.Errorf("service: snapshot %s: %w", st.name, err)
	}
	// The new matcher inherits the previous overlay: temporaries
	// inserted after the snapshot (mid-training arrivals) survive the
	// swap, so their stored records keep resolving until the next cycle
	// learns them from the reservoir. This step mutates the shared
	// overlay (pruning absorbed entries), so it runs only after every
	// fallible step above — the cycle is committed from here on.
	matcher, err := st.parser.NewMatcherFrom(res.Model, prevMatcher)
	if err != nil {
		// Unreachable in practice: the model was validated non-empty.
		st.restoreReservoir(lines)
		return fmt.Errorf("service: train %s: %w", st.name, err)
	}
	st.snap.Store(st.newSnapshot(res.Model, matcher, data))
	st.trainings.Add(1)
	st.met.trainSwaps.Inc()
	return nil
}

// restoreReservoir puts stolen lines back after a failed cycle so their
// structures are not lost to the next one.
func (st *topicState) restoreReservoir(lines []string) {
	st.resMu.Lock()
	defer st.resMu.Unlock()
	if len(st.buffer) == 0 {
		st.buffer = lines
		st.bufSeen = len(lines)
		return
	}
	for _, line := range lines {
		st.offerLocked(line)
	}
}
