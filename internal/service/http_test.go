package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newHTTPFixture starts a handler with one existing, trained topic named
// "app".
func newHTTPFixture(t *testing.T) *httptest.Server {
	t.Helper()
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { s.Close() })
	return srv
}

func do(t *testing.T, srv *httptest.Server, method, path, body string) *http.Response {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, srv.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestHTTPMethodNotAllowed hits every route with wrong methods.
func TestHTTPMethodNotAllowed(t *testing.T) {
	srv := newHTTPFixture(t)
	cases := []struct {
		method, path string
	}{
		{"POST", "/topics"},
		{"PUT", "/topics"},
		{"DELETE", "/topics"},
		{"GET", "/topics/app/logs"},
		{"PUT", "/topics/app/logs"},
		{"GET", "/topics/app/train"},
		{"PUT", "/topics/app/train"},
		{"GET", "/topics/app/compact"},
		{"POST", "/topics/app/query"},
		{"DELETE", "/topics/app/query"},
		{"POST", "/topics/app/stats"},
		{"DELETE", "/topics/app"}, // no DELETE on the topic itself
		{"GET", "/topics/app"},    // no plain GET either
	}
	for _, c := range cases {
		resp := do(t, srv, c.method, c.path, "")
		// The mux reports 405 for /topics and 404 for unmatched
		// method+action pairs under /topics/{name}/; both must refuse.
		if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 405/404", c.method, c.path, resp.StatusCode)
		}
	}
}

// TestHTTPBadThreshold covers every malformed threshold query value.
func TestHTTPBadThreshold(t *testing.T) {
	srv := newHTTPFixture(t)
	for _, v := range []string{"nope", "-0.1", "1.5", "NaN", "Inf", "1e309", "0x1"} {
		resp := do(t, srv, "GET", "/topics/app/query?threshold="+v, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("threshold=%q = %d, want 400", v, resp.StatusCode)
		}
	}
	// Boundary values are accepted.
	for _, v := range []string{"0", "1", "0.7"} {
		resp := do(t, srv, "GET", "/topics/app/query?threshold="+v, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("threshold=%q = %d, want 200", v, resp.StatusCode)
		}
	}
}

// TestHTTPMissingTopic covers the 404 path of every topic-scoped route.
func TestHTTPMissingTopic(t *testing.T) {
	srv := newHTTPFixture(t)
	cases := []struct {
		method, path string
	}{
		{"POST", "/topics/ghost/logs"},
		{"POST", "/topics/ghost/train"},
		{"POST", "/topics/ghost/compact"},
		{"GET", "/topics/ghost/query"},
		{"GET", "/topics/ghost/stats"},
	}
	for _, c := range cases {
		resp := do(t, srv, c.method, c.path, "a line\n")
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s = %d, want 404", c.method, c.path, resp.StatusCode)
		}
	}
	// Empty topic name in the path.
	if resp := do(t, srv, "PUT", "/topics/", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT /topics/ = %d, want 400", resp.StatusCode)
	}
	// Invalid topic name on create.
	if resp := do(t, srv, "PUT", "/topics/bad%20name", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("PUT invalid name = %d, want 409", resp.StatusCode)
	}
}

// TestHTTPCompactRoute covers the segment-store compaction endpoint,
// including the 400 when the topic has no segment store.
func TestHTTPCompactRoute(t *testing.T) {
	// Fixture service has no segment store configured.
	srv := newHTTPFixture(t)
	if resp := do(t, srv, "POST", "/topics/app/compact", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("compact without segment store = %d, want 400", resp.StatusCode)
	}

	cfg := testConfig()
	cfg.SegmentBytes = 1 << 20
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(200, 3)); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(s.Handler())
	defer srv2.Close()
	if resp := do(t, srv2, "POST", "/topics/app/compact", ""); resp.StatusCode != http.StatusNoContent {
		t.Errorf("compact = %d, want 204", resp.StatusCode)
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 || stats.SegmentRecords != 200 {
		t.Errorf("after compact: %+v", stats)
	}
}

// TestHTTPQueryNoModel covers the 409 before first training.
func TestHTTPQueryNoModel(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	if err := s.CreateTopic("fresh"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if resp := do(t, srv, "GET", "/topics/fresh/query", ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("query before training = %d, want 409", resp.StatusCode)
	}
}

func TestHTTPAsyncIngest(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	body := strings.Join(genLines(120, 11), "\n")
	resp, err := srv.Client().Post(srv.URL+"/topics/app/logs?async=1", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async ingest status = %v, want 202", resp.Status)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), `"queued":120`) {
		t.Fatalf("async ingest body = %s", b)
	}
	// Unknown topic via async path still 404s.
	resp, err = srv.Client().Post(srv.URL+"/topics/ghost/logs?async=1", "text/plain", strings.NewReader("x y z"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("async ingest to unknown topic = %v, want 404", resp.Status)
	}

	// Close drains the shared pipeline, so every queued line lands.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 120 {
		t.Fatalf("records after drain = %d, want 120", stats.Records)
	}

	// Async ingest after Close refuses cleanly instead of re-minting a
	// pipeline over closed stores.
	resp, err = srv.Client().Post(srv.URL+"/topics/app/logs?async=1", "text/plain", strings.NewReader("late line"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("async ingest after close = %v, want 503", resp.Status)
	}
}
