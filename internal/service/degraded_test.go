package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bytebrain/internal/fsx"
	"bytebrain/internal/netingest"
)

// newDegradedFixture builds a persistent service over a FaultFS with
// fast seal-retry and probe knobs, one trained topic, and returns the
// service plus the filesystem so tests can script faults.
func newDegradedFixture(t *testing.T) (*Service, *fsx.FaultFS) {
	t.Helper()
	fsys := fsx.NewFaultFS()
	cfg := testConfig()
	cfg.DataDir = "/data"
	cfg.SegmentBytes = 4096
	cfg.WALFsyncEveryBatches = 1
	cfg.FS = fsys
	cfg.SealRetryBase = time.Millisecond
	cfg.SealRetryMax = 2 * time.Millisecond
	cfg.SealMaxRetries = 1
	cfg.ProbeInterval = 10 * time.Millisecond
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	return s, fsys
}

// diskFullHook fails every write-side op under dir with ENOSPC.
func diskFullHook(dir string) fsx.Hook {
	return func(op fsx.OpInfo) error {
		if !strings.HasPrefix(op.Path, dir) {
			return nil
		}
		switch op.Kind {
		case fsx.OpWrite, fsx.OpSync, fsx.OpCreate, fsx.OpRename, fsx.OpSyncDir, fsx.OpWriteFile, fsx.OpTruncate:
			return fsx.ErrNoSpace
		}
		return nil
	}
}

// TestServiceDegradedENOSPC is the end-to-end degraded-mode test the
// issue calls for: a full disk flips the store to degraded read-only —
// ingest sheds with 503 and /readyz goes unready while queries, stats
// and metrics keep answering — and once space returns the background
// probe re-arms writes with no restart.
func TestServiceDegradedENOSPC(t *testing.T) {
	s, fsys := newDegradedFixture(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	post := func(path, body string) (int, string) {
		resp, err := srv.Client().Post(srv.URL+path, "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before fault = %d, want 200", code)
	}

	// The disk fills under the topic's record store (models stay
	// writable — degraded mode is about the ingest path).
	fsys.SetHook(diskFullHook("/data/app/records"))

	// Ingest until the store degrades and sheds with 503. The first
	// write may still be admitted (its swallowed fsync is what trips the
	// degrade), so allow a few rounds.
	lines := strings.Join(genLines(50, 7), "\n")
	shed := false
	for i := 0; i < 10 && !shed; i++ {
		code, body := post("/topics/app/logs", lines)
		switch code {
		case http.StatusOK:
		case http.StatusServiceUnavailable:
			shed = true
			if !strings.Contains(body, "degraded") {
				t.Errorf("503 body does not mention degraded: %q", body)
			}
		default:
			t.Fatalf("ingest under ENOSPC = %d (%q), want 200 or 503", code, body)
		}
	}
	if !shed {
		t.Fatal("ingest never shed with 503 under ENOSPC")
	}

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "app") {
		t.Fatalf("/readyz degraded = %d (%q), want 503 naming the topic", code, body)
	}

	// Reads keep serving: search, grouped query, templates, stats.
	if code, body := get("/topics/app/search?token=cache"); code != http.StatusOK || !strings.Contains(body, "count") {
		t.Fatalf("search on degraded store = %d (%q)", code, body)
	}
	if code, _ := get("/topics/app/query"); code != http.StatusOK {
		t.Fatalf("query on degraded store = %d, want 200", code)
	}
	code, body := get("/topics/app/stats")
	if code != http.StatusOK {
		t.Fatalf("stats on degraded store = %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if !st.Degraded || st.DegradedReason == "" {
		t.Fatalf("stats degraded fields = %+v", st)
	}

	// The scrape endpoint stays up and reports the degraded gauge.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics on degraded store = %d", code)
	}
	if !strings.Contains(body, `bb_store_degraded{topic="app"} 1`) {
		t.Error("bb_store_degraded gauge not 1 while degraded")
	}
	if !strings.Contains(body, "bb_store_degraded_enters_total") {
		t.Error("bb_store_degraded_enters_total family missing")
	}

	// Space returns: the background probe must re-arm ingest without a
	// restart.
	fsys.SetHook(nil)
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if code, _ := post("/topics/app/logs", lines); code == http.StatusOK {
			recovered = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("ingest did not recover after space returned")
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, `bb_store_degraded{topic="app"} 0`) {
		t.Errorf("bb_store_degraded gauge not 0 after recovery (%d)", code)
	}
}

// TestNetIngestBusyWhenDegraded asserts the TCP ingest sink translates
// degraded-mode shedding into the wire's BUSY semantics so clients back
// off and resend instead of treating frames as rejected.
func TestNetIngestBusyWhenDegraded(t *testing.T) {
	s, fsys := newDegradedFixture(t)
	fsys.SetHook(diskFullHook("/data/app/records"))
	var lastErr error
	for i := 0; i < 10; i++ {
		if lastErr = s.netIngest("app", genLines(50, 11)); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("netIngest never failed under ENOSPC")
	}
	if !errors.Is(lastErr, netingest.ErrBusy) {
		t.Fatalf("netIngest degraded error = %v, want ErrBusy", lastErr)
	}
	fsys.SetHook(nil)
}
