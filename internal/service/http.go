package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"bytebrain/internal/logstore"
)

// scanBufPool leases the 64 KiB initial scanner buffer the /logs
// handler hands to bufio.Scanner, instead of allocating it per request.
var scanBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64*1024)
		return &b
	},
}

// Handler returns the HTTP API of the service, mirroring the paper's
// user-facing surface:
//
//	PUT  /topics/{name}                create a topic
//	GET  /topics                       list topics
//	POST /topics/{name}/logs           ingest newline-separated raw logs
//	                                   (?async=1 enqueues them on the
//	                                   topic's multi-queue pipeline and
//	                                   returns 202 immediately)
//	POST /topics/{name}/train          force a training cycle
//	POST /topics/{name}/compact        seal the hot block into a
//	                                   compressed segment (segment store)
//	GET  /topics/{name}/query?threshold=0.7
//	                                   records grouped by template at the
//	                                   given precision (the web UI slider);
//	                                   &from=<RFC3339>&to=<RFC3339> bound
//	                                   the query to a time range (pushed
//	                                   down to sealed-segment metadata so
//	                                   only overlapping blocks are read),
//	                                   and &since=15m is shorthand for
//	                                   from=now-15m
//	GET  /topics/{name}/search?token=x offsets of records whose raw line
//	                                   contains the token (token-filter
//	                                   pushdown skips sealed blocks)
//	GET  /topics/{name}/templates?id=3&id=7
//	                                   offsets of records stored under the
//	                                   given template IDs
//	GET  /topics/{name}/stats          operational counters
//	GET  /metrics                      Prometheus text exposition
//	GET  /healthz                      liveness
//	GET  /readyz                       readiness: 503 while any topic's
//	                                   store is degraded to read-only
//	                                   (disk full / persistent seal
//	                                   failure); queries keep serving
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if deg := s.DegradedTopics(); len(deg) > 0 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"ready": false, "degraded": deg})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/topics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, s.Topics())
	})
	mux.HandleFunc("/topics/", s.topicRoutes)
	return mux
}

func (s *Service) topicRoutes(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/topics/")
	name, action, _ := strings.Cut(rest, "/")
	if name == "" {
		http.Error(w, "missing topic name", http.StatusBadRequest)
		return
	}
	switch {
	case action == "" && r.Method == http.MethodPut:
		if err := s.CreateTopic(name); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case action == "logs" && r.Method == http.MethodPost:
		sc := bufio.NewScanner(r.Body)
		// The scanner's initial buffer is leased from a pool rather
		// than allocated per request: line bytes are copied out by
		// sc.Text(), so nothing retains it past the handler. If the
		// scanner outgrows it (lines past 64 KiB) the grown buffer is
		// the scanner's own; the pooled one simply goes back at its
		// original size.
		scanBuf := scanBufPool.Get().(*[]byte)
		defer scanBufPool.Put(scanBuf)
		sc.Buffer((*scanBuf)[:0], 4*1024*1024)
		var lines []string
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				lines = append(lines, line)
			}
		}
		if err := sc.Err(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("async") == "1" {
			// Enqueue on the topic's shared multi-queue pipeline: the
			// request returns as soon as the lines are queued, and the
			// workers match+append them in parallel group-committed
			// batches. SubmitBatch moves the request body with one queue
			// send per chunk instead of one per line, and blocks only
			// when every queue is full (backpressure).
			ing, err := s.sharedIngester(name)
			if err != nil {
				httpTopicError(w, err)
				return
			}
			if err := ing.SubmitBatch(lines); err != nil {
				httpTopicError(w, err)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]int{"queued": len(lines)})
			return
		}
		if err := s.Ingest(name, lines); err != nil {
			httpTopicError(w, err)
			return
		}
		writeJSON(w, map[string]int{"ingested": len(lines)})
	case action == "train" && r.Method == http.MethodPost:
		if err := s.Train(name); err != nil {
			httpTopicError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case action == "compact" && r.Method == http.MethodPost:
		if err := s.Compact(name); err != nil {
			httpTopicError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case action == "query" && r.Method == http.MethodGet:
		threshold, tr, perr := parseQueryParams(r.URL.Query(), s.cfg.Now)
		if perr != "" {
			http.Error(w, perr, http.StatusBadRequest)
			return
		}
		query := s.Query
		if r.URL.Query().Get("merged") == "1" {
			// §7 response-layer view: variable-length list variants
			// group under one display template.
			query = s.QueryMerged
		}
		rows, err := query(name, threshold, tr)
		if err != nil {
			httpTopicError(w, err)
			return
		}
		if r.URL.Query().Get("samples") == "1" {
			if err := s.fillSampleLines(name, rows); err != nil {
				httpTopicError(w, err)
				return
			}
		}
		writeJSON(w, rows)
	case action == "search" && r.Method == http.MethodGet:
		token := r.URL.Query().Get("token")
		if token == "" {
			http.Error(w, "token parameter is required", http.StatusBadRequest)
			return
		}
		tr, perr := parseTimeRange(r.URL.Query(), s.cfg.Now)
		if perr != "" {
			http.Error(w, perr, http.StatusBadRequest)
			return
		}
		offs, err := s.Search(name, token, tr)
		if err != nil {
			httpTopicError(w, err)
			return
		}
		writeJSON(w, map[string]any{"count": len(offs), "offsets": offs})
	case action == "templates" && r.Method == http.MethodGet:
		var ids []uint64
		for _, v := range r.URL.Query()["id"] {
			id, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "id must be an unsigned integer template ID", http.StatusBadRequest)
				return
			}
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			http.Error(w, "at least one id parameter is required", http.StatusBadRequest)
			return
		}
		tr, perr := parseTimeRange(r.URL.Query(), s.cfg.Now)
		if perr != "" {
			http.Error(w, perr, http.StatusBadRequest)
			return
		}
		offs, err := s.ByTemplate(name, tr, ids...)
		if err != nil {
			httpTopicError(w, err)
			return
		}
		writeJSON(w, map[string]any{"count": len(offs), "offsets": offs})
	case action == "stats" && r.Method == http.MethodGet:
		stats, err := s.TopicStats(name)
		if err != nil {
			httpTopicError(w, err)
			return
		}
		writeJSON(w, stats)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// parseQueryParams validates the query endpoint's parameters strictly: a
// malformed value is a 400, never silently ignored. It returns the
// threshold (0 = service default), the time range, and a non-empty error
// message on invalid input.
//
//	threshold  float in [0,1]; NaN, ±Inf and out-of-range values are
//	           rejected, negative zero is normalized to zero
//	from, to   RFC 3339 timestamps (inclusive bounds); from must not be
//	           after to
//	since      Go duration (e.g. 15m) — sugar for from=now-since;
//	           mutually exclusive with from/to
func parseQueryParams(q url.Values, now func() time.Time) (threshold float64, tr TimeRange, errMsg string) {
	if q.Has("threshold") {
		v := q.Get("threshold")
		f, err := strconv.ParseFloat(v, 64)
		// Explicitly exclude the IEEE 754 specials: ParseFloat accepts
		// "NaN" and "Inf" spellings, and overflow (e.g. 1e309) returns
		// ±Inf alongside ErrRange.
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 || f > 1 {
			return 0, tr, "threshold must be a number in [0,1]"
		}
		if math.Signbit(f) {
			// "-0" parses to negative zero; normalize so downstream
			// comparisons never see a signed zero.
			f = 0
		}
		threshold = f
	}
	tr, errMsg = parseTimeRange(q, now)
	if errMsg != "" {
		return 0, tr, errMsg
	}
	return threshold, tr, ""
}

// parseTimeRange validates the shared from/to/since time-bound
// parameters (query, search, and templates routes all accept them) with
// the same strictness as parseQueryParams: a malformed value is always
// a 400, never silently ignored.
func parseTimeRange(q url.Values, now func() time.Time) (tr TimeRange, errMsg string) {
	hasFrom, hasTo, hasSince := q.Has("from"), q.Has("to"), q.Has("since")
	if hasSince && (hasFrom || hasTo) {
		return tr, "since is shorthand for from=now-since; do not combine it with from/to"
	}
	if hasSince {
		d, err := time.ParseDuration(q.Get("since"))
		if err != nil || d <= 0 {
			return tr, "since must be a positive duration such as 15m or 1h30m"
		}
		tr.From = now().Add(-d)
		return tr, ""
	}
	if hasFrom {
		t, err := time.Parse(time.RFC3339, q.Get("from"))
		if err != nil {
			return tr, "from must be an RFC 3339 timestamp such as 2026-07-26T12:00:00Z"
		}
		tr.From = t
	}
	if hasTo {
		t, err := time.Parse(time.RFC3339, q.Get("to"))
		if err != nil {
			return tr, "to must be an RFC 3339 timestamp such as 2026-07-26T12:15:00Z"
		}
		tr.To = t
	}
	if tr.Empty() {
		return tr, "from must not be after to"
	}
	return tr, ""
}

func httpTopicError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, logstore.ErrDegraded) {
		// Degraded read-only mode sheds ingest with 503 so load
		// balancers retry elsewhere; queries are unaffected.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if strings.Contains(err.Error(), "unknown topic") {
		status = http.StatusNotFound
	} else if strings.Contains(err.Error(), "no trained model") {
		status = http.StatusConflict
	} else if strings.Contains(err.Error(), "no segment store") {
		status = http.StatusBadRequest
	} else if strings.Contains(err.Error(), "service: closed") {
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
