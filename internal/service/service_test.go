package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bytebrain/internal/core"
	"bytebrain/internal/obs"
)

func testConfig() Config {
	now := time.Unix(1700000000, 0)
	return Config{
		Parser:        core.Options{Seed: 1},
		TrainVolume:   100,
		TrainInterval: time.Hour,
		Now:           func() time.Time { return now },
	}
}

// waitTrainings polls until the topic's background trainer has completed
// at least want cycles (training is asynchronous — Ingest only triggers).
func waitTrainings(t *testing.T, s *Service, topic string, want int) Stats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := s.TopicStats(topic)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Trainings >= want && !stats.Training {
			return stats
		}
		if time.Now().After(deadline) {
			t.Fatalf("background training did not reach %d cycles: %+v", want, stats)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func genLines(n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		switch r.Intn(3) {
		case 0:
			out[i] = fmt.Sprintf("request from 10.0.%d.%d served in %dms", r.Intn(4), r.Intn(200), r.Intn(500))
		case 1:
			out[i] = fmt.Sprintf("cache miss for key user:%d backend shard-%d", r.Intn(100000), r.Intn(16))
		default:
			out[i] = fmt.Sprintf("gc cycle %d finished freed %d objects", r.Intn(10000), r.Intn(100000))
		}
	}
	return out
}

func TestCreateTopicValidation(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic(""); err == nil {
		t.Error("empty topic name accepted")
	}
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTopic("app"); err == nil {
		t.Error("duplicate topic accepted")
	}
	if got := s.Topics(); len(got) != 1 || got[0] != "app" {
		t.Errorf("Topics = %v", got)
	}
}

func TestIngestUnknownTopic(t *testing.T) {
	s := New(testConfig())
	if err := s.Ingest("nope", []string{"x"}); err == nil {
		t.Error("ingest into unknown topic accepted")
	}
}

func TestVolumeTriggeredTraining(t *testing.T) {
	s := New(testConfig()) // TrainVolume=100
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(50, 1)); err != nil {
		t.Fatal(err)
	}
	stats, _ := s.TopicStats("app")
	if stats.Trainings != 0 {
		t.Fatalf("training fired below volume threshold: %+v", stats)
	}
	if err := s.Ingest("app", genLines(60, 2)); err != nil {
		t.Fatal(err)
	}
	stats = waitTrainings(t, s, "app", 1)
	if stats.Trainings != 1 {
		t.Fatalf("training did not fire at volume threshold: %+v", stats)
	}
	if stats.Templates == 0 || stats.ModelBytes == 0 || stats.Snapshots != 1 {
		t.Errorf("post-training stats incomplete: %+v", stats)
	}
	if stats.SinceTrain != 0 || stats.LastTrainError != "" {
		t.Errorf("trainer state not reset after cycle: %+v", stats)
	}
}

func TestTimeTriggeredTraining(t *testing.T) {
	// The clock is read concurrently by the background trainer, so the
	// fake time lives behind a mutex.
	var clockMu sync.Mutex
	now := time.Unix(1700000000, 0)
	cfg := testConfig()
	cfg.TrainVolume = 1 << 30
	cfg.TrainInterval = 5 * time.Minute
	cfg.Now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	s := New(cfg)
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(10, 1)); err != nil {
		t.Fatal(err)
	}
	stats, _ := s.TopicStats("app")
	if stats.Trainings != 0 {
		t.Fatal("trained too early")
	}
	clockMu.Lock()
	now = now.Add(6 * time.Minute)
	clockMu.Unlock()
	if err := s.Ingest("app", genLines(10, 2)); err != nil {
		t.Fatal(err)
	}
	if stats := waitTrainings(t, s, "app", 1); stats.Trainings != 1 {
		t.Fatalf("interval training did not fire: %+v", stats)
	}
}

func TestQueryGroupsAndThreshold(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	lines := genLines(300, 3)
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	// Re-ingest so records carry template IDs from the trained model.
	if err := s.Ingest("app", genLines(200, 4)); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no query rows")
	}
	total := 0
	for _, r := range rows {
		total += r.Count
		if r.Count <= 0 {
			t.Errorf("row with nonpositive count: %+v", r)
		}
		if len(r.SampleOffsets) == 0 {
			t.Errorf("row without samples: %+v", r)
		}
	}
	store, _ := s.Store("app")
	if total != store.Len() {
		t.Errorf("query covered %d of %d records", total, store.Len())
	}
	// Coarser threshold: no more groups than the fine view.
	coarse, err := s.Query("app", 0.1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) > len(rows) {
		t.Errorf("coarse query has more groups (%d) than fine (%d)", len(coarse), len(rows))
	}
}

func TestQueryBeforeTraining(t *testing.T) {
	s := New(testConfig())
	_ = s.CreateTopic("app")
	if _, err := s.Query("app", 0.5, TimeRange{}); err == nil {
		t.Error("query before first training should error")
	}
}

func TestModelMergesAcrossCycles(t *testing.T) {
	s := New(testConfig())
	_ = s.CreateTopic("app")
	_ = s.Ingest("app", genLines(80, 1))
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Model("app")
	// New structure arrives: unmatched → temporary → retrain merges.
	novel := []string{
		"disk pressure warning on volume vol-1 usage 91%",
		"disk pressure warning on volume vol-7 usage 96%",
		"disk pressure warning on volume vol-3 usage 99%",
	}
	_ = s.Ingest("app", novel)
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	m2, _ := s.Model("app")
	if m2.Len() <= 0 || m1 == m2 {
		t.Fatal("no new model after retraining")
	}
	for _, n := range m2.Nodes {
		if n.Temporary {
			t.Error("temporary node survived retraining")
		}
	}
	// Old templates kept working.
	rows, err := s.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	foundDisk := false
	for _, r := range rows {
		if strings.Contains(r.Template, "disk pressure warning") {
			foundDisk = true
		}
	}
	if !foundDisk {
		t.Error("retrained model lost the novel structure")
	}
}

func TestReservoirSamplingBounded(t *testing.T) {
	cfg := testConfig()
	cfg.SampleCap = 100
	cfg.TrainVolume = 1 << 30
	s := New(cfg)
	_ = s.CreateTopic("app")
	_ = s.Ingest("app", genLines(5000, 5))
	st, err := s.topic("app")
	if err != nil {
		t.Fatal(err)
	}
	st.resMu.Lock()
	bufLen := len(st.buffer)
	st.resMu.Unlock()
	if bufLen != 100 {
		// The reservoir honors SampleCap exactly: append up to the cap,
		// uniform replacement beyond it.
		t.Errorf("training buffer holds %d lines, want SampleCap=100", bufLen)
	}
	stats, _ := s.TopicStats("app")
	if stats.ReservoirLines != bufLen {
		t.Errorf("stats.ReservoirLines = %d, want %d", stats.ReservoirLines, bufLen)
	}
}

func TestConcurrentIngestAndQuery(t *testing.T) {
	cfg := testConfig()
	cfg.TrainVolume = 200
	s := New(cfg)
	_ = s.CreateTopic("app")
	_ = s.Ingest("app", genLines(250, 1)) // trigger first training
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_ = s.Ingest("app", genLines(50, int64(g*100+i)))
				_, _ = s.Query("app", 0.7, TimeRange{})
			}
		}(g)
	}
	wg.Wait()
	stats, _ := s.TopicStats("app")
	if stats.Records != 250+4*10*50 {
		t.Errorf("records = %d, want %d", stats.Records, 250+4*10*50)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	s := New(testConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	// Health.
	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Create topic.
	req, _ := httpNewRequest("PUT", srv.URL+"/topics/web", "")
	resp, err = client.Do(req)
	if err != nil || resp.StatusCode != 201 {
		t.Fatalf("create topic: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Duplicate topic → conflict.
	req, _ = httpNewRequest("PUT", srv.URL+"/topics/web", "")
	resp, _ = client.Do(req)
	if resp.StatusCode != 409 {
		t.Fatalf("duplicate create = %v", resp.Status)
	}
	resp.Body.Close()

	// Ingest logs.
	body := strings.Join(genLines(150, 9), "\n")
	resp, err = client.Post(srv.URL+"/topics/web/logs", "text/plain", strings.NewReader(body))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("ingest: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Force training.
	resp, err = client.Post(srv.URL+"/topics/web/train", "", nil)
	if err != nil || resp.StatusCode != 204 {
		t.Fatalf("train: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Query.
	resp, err = client.Get(srv.URL + "/topics/web/query?threshold=0.7")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("query: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Bad threshold.
	resp, _ = client.Get(srv.URL + "/topics/web/query?threshold=nope")
	if resp.StatusCode != 400 {
		t.Fatalf("bad threshold = %v", resp.Status)
	}
	resp.Body.Close()

	// Unknown topic.
	resp, _ = client.Get(srv.URL + "/topics/ghost/stats")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown topic stats = %v", resp.Status)
	}
	resp.Body.Close()

	// Stats.
	resp, err = client.Get(srv.URL + "/topics/web/stats")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("stats: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Topic list.
	resp, err = client.Get(srv.URL + "/topics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("topics: %v %v", resp.Status, err)
	}
	resp.Body.Close()
}

// httpNewRequest is a tiny helper around http.NewRequest for string
// bodies.
func httpNewRequest(method, url, body string) (*http.Request, error) {
	if body == "" {
		return http.NewRequest(method, url, nil)
	}
	return http.NewRequest(method, url, strings.NewReader(body))
}

func TestQueryMergedGroupsVariableLengthLists(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	// Variable-length list output from one statement: users=<1..3 items>.
	var lines []string
	for i := 0; i < 40; i++ {
		switch i % 3 {
		case 0:
			lines = append(lines, fmt.Sprintf("users=u%d", i))
		case 1:
			lines = append(lines, fmt.Sprintf("users=u%d u%d", i, i+1))
		default:
			lines = append(lines, fmt.Sprintf("users=u%d u%d u%d", i, i+1, i+2))
		}
	}
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	perNode, err := s.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := s.QueryMerged("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) >= len(perNode) {
		t.Fatalf("merged view (%d rows) not smaller than per-node view (%d)", len(merged), len(perNode))
	}
	// Counts are conserved.
	sum := func(rows []TemplateRow) int {
		n := 0
		for _, r := range rows {
			n += r.Count
		}
		return n
	}
	if sum(merged) != sum(perNode) {
		t.Errorf("merged counts %d != per-node counts %d", sum(merged), sum(perNode))
	}
	// The three length variants present one "users <*>" row.
	usersRows := 0
	for _, r := range merged {
		if strings.HasPrefix(r.Template, "users") {
			usersRows++
		}
	}
	if usersRows != 1 {
		t.Errorf("users rows in merged view = %d, want 1", usersRows)
	}
}

func TestHTTPQueryMergedParam(t *testing.T) {
	s := New(testConfig())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	client := srv.Client()

	req, _ := httpNewRequest("PUT", srv.URL+"/topics/m", "")
	resp, err := client.Do(req)
	if err != nil || resp.StatusCode != 201 {
		t.Fatalf("create: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	var lines []string
	for i := 0; i < 30; i++ {
		lines = append(lines, fmt.Sprintf("items=i%d j%d", i, i+1))
	}
	resp, err = client.Post(srv.URL+"/topics/m/logs", "text/plain", strings.NewReader(strings.Join(lines, "\n")))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("ingest: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = client.Post(srv.URL+"/topics/m/train", "", nil)
	if err != nil || resp.StatusCode != 204 {
		t.Fatalf("train: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	for _, q := range []string{"", "&merged=1"} {
		resp, err = client.Get(srv.URL + "/topics/m/query?threshold=0.7" + q)
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("query %q: %v %v", q, resp.Status, err)
		}
		var rows []TemplateRow
		if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		if len(rows) == 0 {
			t.Fatalf("query %q returned no rows", q)
		}
	}
}

// TestLineCacheRepeatIngestStaysCorrect drives the snapshot line cache:
// re-ingesting identical lines must produce exactly the same query
// counts as matching every line from scratch, across batches and across
// a model swap (which discards the cache with its snapshot).
func TestLineCacheRepeatIngestStaysCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.TrainVolume = 1 << 30
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	lines := genLines(200, 3)
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	// Repeat the same batch: every line after the first pass should be a
	// cache hit, and counts must stay exact multiples.
	const repeats = 5
	for i := 0; i < repeats; i++ {
		if err := s.Ingest("app", lines); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	if want := len(lines) * (repeats + 1); total != want {
		t.Fatalf("query counts sum to %d, want %d", total, want)
	}
	st, err := s.topic("app")
	if err != nil {
		t.Fatal(err)
	}
	snap := st.snap.Load()
	if snap == nil || snap.cacheLen() == 0 {
		t.Fatal("line cache never filled on repeat ingest")
	}
	// A forced training cycle swaps the snapshot; the fresh cache must
	// keep resolving the same lines to valid templates.
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	if snap2 := st.snap.Load(); snap2 == snap {
		t.Fatal("training did not swap the snapshot")
	} else if snap2.cacheLen() != 0 {
		t.Fatal("new snapshot inherited a stale line cache")
	}
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	rows, err = s.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	unparsed := 0
	for _, r := range rows {
		total += r.Count
		if r.Template == "(unparsed: ingested before first training)" {
			unparsed += r.Count
		}
	}
	if want := len(lines) * (repeats + 2); total != want {
		t.Fatalf("post-swap counts sum to %d, want %d", total, want)
	}
	if unparsed != len(lines) {
		// Only the very first pre-training batch lacks template IDs.
		t.Fatalf("unparsed count %d, want %d", unparsed, len(lines))
	}
}

// TestLineCacheCapBounds: hitting the cap evicts the whole generation so
// hot lines re-memoize instead of the cache freezing on its first fill.
func TestLineCacheCapBounds(t *testing.T) {
	reg := obs.NewRegistry()
	sn := &modelSnapshot{
		cacheCap:  64,
		evictions: reg.Counter("evictions_total", "t").With(),
	}
	for i := 0; i < 64; i++ {
		sn.cacheID(fmt.Sprintf("line %d", i), uint64(i))
	}
	if n := sn.cacheLen(); n != 64 {
		t.Fatalf("cache holds %d entries, want 64 (the cap)", n)
	}
	// The insert that lands on a full cache swaps in a fresh generation.
	sn.cacheID("line 64", 64)
	if n := sn.cacheLen(); n != 0 {
		t.Fatalf("cache holds %d entries after eviction, want 0", n)
	}
	if got := sn.evictions.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, ok := sn.cachedID("line 1"); ok {
		t.Fatal("pre-eviction entry survived the generation swap")
	}
	// The fresh generation memoizes normally.
	sn.cacheID("line 64", 64)
	if id, ok := sn.cachedID("line 64"); !ok || id != 64 {
		t.Fatalf("cachedID(line 64) = %d, %v; want 64, true", id, ok)
	}
}
