package service

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"bytebrain/internal/netingest"
)

// TestNetIngestEndToEnd drives the TCP ingest listener against a real
// service: framed and raw clients both land records in the topic store,
// and the bb_netingest_* families show up in the Prometheus scrape.
func TestNetIngestEndToEnd(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	naddr, err := s.StartNetIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	lines := genLines(200, 1)
	c, err := netingest.Dial(naddr.String(), netingest.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(lines); i += 50 {
		if err := c.Send("app", lines[i:i+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	rc, err := netingest.DialRaw(naddr.String(), "app")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := rc.WriteLine([]byte(fmt.Sprintf("raw path line %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("raw client acked %d lines, want 100", n)
	}

	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 300 {
		t.Fatalf("topic has %d records after framed+raw ingest, want 300", stats.Records)
	}

	var buf bytes.Buffer
	s.Registry().WritePrometheus(&buf)
	scrape := buf.String()
	for _, family := range []string{
		"bb_netingest_connections_total",
		"bb_netingest_frames_total",
		"bb_netingest_lines_total",
		"bb_netingest_bytes_total",
		"bb_netingest_frame_seconds",
	} {
		if !strings.Contains(scrape, family) {
			t.Errorf("scrape is missing %s", family)
		}
	}
}

// TestNetIngestUnknownTopic: a per-frame ingest failure surfaces as an
// ERR ack (a client error), while the connection keeps serving other
// topics.
func TestNetIngestUnknownTopic(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	naddr, err := s.StartNetIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := netingest.Dial(naddr.String(), netingest.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send("ghost", []string{"line for a topic that does not exist"}); err != nil {
		// The error may surface here or at Close depending on ack
		// timing; either is correct.
		return
	}
	if err := c.Close(); err == nil {
		t.Fatal("sending to an unknown topic reported no error")
	}
}

// TestNetIngestServiceClose: Close shuts the listener down before the
// stores, so everything acked OK is queryable right up to shutdown, new
// dials are refused afterwards, and StartNetIngest on a closed service
// errors instead of leaking a listener.
func TestNetIngestServiceClose(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	naddr, err := s.StartNetIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := netingest.Dial(naddr.String(), netingest.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send("app", []string{"pre-shutdown line"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Close with the client connection still open must not hang.
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Service.Close hung with an open ingest connection")
	}
	c.Close()
	if _, err := netingest.Dial(naddr.String(), netingest.ClientOptions{}); err == nil {
		t.Fatal("dial succeeded after Close")
	}
	if _, err := s.StartNetIngest("127.0.0.1:0"); err == nil {
		t.Fatal("StartNetIngest succeeded on a closed service")
	}
}

// TestNetIngestConcurrentStress exercises the full surface at once:
// several framed connections and a raw connection ingesting, queries and
// searches running, and the hot block sealing into segments underneath
// them. Run with -race this is the data-race gate for the ingest path.
func TestNetIngestConcurrentStress(t *testing.T) {
	cfg := testConfig()
	cfg.DataDir = t.TempDir()
	cfg.SegmentBytes = 32 << 10 // seal frequently under load
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(120, 7)); err != nil {
		t.Fatal(err)
	}
	waitTrainings(t, s, "app", 1)
	naddr, err := s.StartNetIngest("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const writers, batches, per = 3, 30, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := netingest.Dial(naddr.String(), netingest.ClientOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			for b := 0; b < batches; b++ {
				lines := make([]string, per)
				for i := range lines {
					lines[i] = fmt.Sprintf("writer %d batch %d line %d served in %dms", w, b, i, i)
				}
				if err := c.Send("app", lines); err != nil {
					t.Error(err)
					return
				}
			}
			if err := c.Close(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rc, err := netingest.DialRaw(naddr.String(), "app")
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < batches*per; i++ {
			if err := rc.WriteLine([]byte(fmt.Sprintf("raw stress line %d", i))); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := rc.Close(); err != nil {
			t.Error(err)
		}
	}()
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Search("app", "served", TimeRange{}); err != nil {
				t.Errorf("Search: %v", err)
				return
			}
			if _, err := s.Query("app", 0, TimeRange{}); err != nil {
				t.Errorf("Query: %v", err)
				return
			}
			if _, err := s.TopicStats("app"); err != nil {
				t.Errorf("TopicStats: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Compact("app"); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Wait for the ingest writers and the compactor, then stop the
	// query loop.
	waitCh := make(chan struct{})
	go func() { wg.Wait(); close(waitCh) }()
	go func() {
		time.Sleep(30 * time.Second)
		select {
		case <-waitCh:
		default:
			panic("netingest stress wedged")
		}
	}()
	// The query goroutine only exits via stop; close it once writers
	// are done. wg counts it too, so order: writers+raw+compactor are
	// 5 of the 6; easiest is a short polling loop on record count.
	deadline := time.Now().Add(20 * time.Second)
	want := 120 + writers*batches*per + batches*per
	for {
		stats, err := s.TopicStats("app")
		if err != nil {
			t.Fatal(err)
		}
		if stats.Records >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records = %d, want %d before deadline", stats.Records, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != want {
		t.Fatalf("records = %d, want %d (no duplicates, no drops)", stats.Records, want)
	}
	if stats.Segments == 0 {
		t.Fatal("stress run sealed no segments; lower SegmentBytes so sealing actually races ingest")
	}
}
