package service

import (
	"sync"
	"testing"
)

func TestIngesterDeliversEverything(t *testing.T) {
	cfg := testConfig()
	cfg.TrainVolume = 500
	s := New(cfg)
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	ing, err := s.NewIngester("app", 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	lines := genLines(3000, 7)
	for _, l := range lines {
		if err := ing.Submit(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(lines) {
		t.Fatalf("delivered %d of %d records", stats.Records, len(lines))
	}
	if stats := waitTrainings(t, s, "app", 1); stats.Trainings == 0 {
		t.Error("volume-triggered training never fired through the pipeline")
	}
}

func TestIngesterConcurrentProducers(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	ing, err := s.NewIngester("app", 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const producers, per = 8, 250
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for _, l := range genLines(per, int64(p)) {
				if err := ing.Submit(l); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	stats, _ := s.TopicStats("app")
	if stats.Records != producers*per {
		t.Fatalf("records = %d, want %d", stats.Records, producers*per)
	}
}

func TestIngesterUnknownTopic(t *testing.T) {
	s := New(testConfig())
	if _, err := s.NewIngester("ghost", 2, 8); err == nil {
		t.Error("ingester created for unknown topic")
	}
}

func TestIngesterSubmitAfterClose(t *testing.T) {
	s := New(testConfig())
	_ = s.CreateTopic("app")
	ing, err := s.NewIngester("app", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.Submit("late line"); err == nil {
		t.Error("submit after close succeeded")
	}
	if err := ing.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestIngesterDefaults(t *testing.T) {
	s := New(testConfig())
	_ = s.CreateTopic("app")
	ing, err := s.NewIngester("app", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Queue depth is denominated in lines; the chunk channels hold
	// depth/ingestBatch chunks of up to ingestBatch lines each.
	if len(ing.queues) != defaultQueues || cap(ing.queues[0]) != defaultQueueDepth/ingestBatch {
		t.Errorf("defaults not applied: %d queues, chunk capacity %d", len(ing.queues), cap(ing.queues[0]))
	}
	_ = ing.Close()
}

func TestIngesterSubmitBatchDeliversEverything(t *testing.T) {
	cfg := testConfig()
	cfg.TrainVolume = 500
	s := New(cfg)
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	ing, err := s.NewIngester("app", 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	lines := genLines(3000, 7)
	// Mixed batch sizes: empty, single, sub-chunk, and multi-chunk (a
	// 1000-line batch splits into several ingestBatch-sized queue sends).
	if err := ing.SubmitBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := ing.SubmitBatch(lines[:1]); err != nil {
		t.Fatal(err)
	}
	if err := ing.SubmitBatch(lines[1:50]); err != nil {
		t.Fatal(err)
	}
	if err := ing.SubmitBatch(lines[50:2000]); err != nil {
		t.Fatal(err)
	}
	if err := ing.SubmitBatch(lines[2000:]); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(lines) {
		t.Fatalf("delivered %d of %d records", stats.Records, len(lines))
	}
	if stats := waitTrainings(t, s, "app", 1); stats.Trainings == 0 {
		t.Error("volume-triggered training never fired through the batch pipeline")
	}
}

func TestIngesterSubmitBatchAfterClose(t *testing.T) {
	s := New(testConfig())
	_ = s.CreateTopic("app")
	ing, err := s.NewIngester("app", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ing.SubmitBatch([]string{"late line"}); err == nil {
		t.Error("SubmitBatch after close succeeded")
	}
	// The empty batch stays a cheap no-op even when closed.
	if err := ing.SubmitBatch(nil); err != nil {
		t.Errorf("SubmitBatch(nil) after close = %v, want nil", err)
	}
}

func TestIngesterSubmitBatchConcurrentProducers(t *testing.T) {
	s := New(testConfig())
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	ing, err := s.NewIngester("app", 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const producers, per = 8, 250
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lines := genLines(per, int64(p))
			for len(lines) > 0 {
				n := 37 // deliberately unaligned with ingestBatch
				if n > len(lines) {
					n = len(lines)
				}
				if err := ing.SubmitBatch(lines[:n]); err != nil {
					t.Error(err)
					return
				}
				lines = lines[n:]
			}
		}(p)
	}
	wg.Wait()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	stats, _ := s.TopicStats("app")
	if stats.Records != producers*per {
		t.Fatalf("records = %d, want %d", stats.Records, producers*per)
	}
}

func TestIngesterSmallDepthBoundsLines(t *testing.T) {
	s := New(testConfig())
	_ = s.CreateTopic("app")
	// depth < ingestBatch: chunks must shrink to the depth so a full
	// queue can never buffer more than depth lines.
	ing, err := s.NewIngester("app", 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ing.chunkSize != 64 || cap(ing.queues[0]) != 1 {
		t.Fatalf("chunkSize=%d capacity=%d, want 64-line chunks in a 1-chunk queue", ing.chunkSize, cap(ing.queues[0]))
	}
	lines := genLines(500, 11)
	if err := ing.SubmitBatch(lines); err != nil {
		t.Fatal(err)
	}
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	stats, _ := s.TopicStats("app")
	if stats.Records != len(lines) {
		t.Fatalf("records = %d, want %d", stats.Records, len(lines))
	}
}
