package service

import (
	"fmt"
	"testing"
	"time"
)

func segmentConfig(dataDir string) Config {
	return Config{
		TrainVolume:  1 << 30,
		SegmentBytes: 8 << 10,
		SegmentCodec: "flate",
		DataDir:      dataDir,
		Now:          func() time.Time { return time.Unix(1700000000, 0) },
	}
}

func segLines(n, start int) []string {
	lines := make([]string, n)
	for i := range lines {
		lines[i] = fmt.Sprintf("session %d opened for user u%d from 10.0.0.%d", start+i, (start+i)%40, (start+i)%250)
	}
	return lines
}

// TestServiceSegmentStore runs the full service path on the compacting
// store: ingest, train, query, forced compaction, compression stats.
func TestServiceSegmentStore(t *testing.T) {
	svc := New(segmentConfig(""))
	defer svc.Close()
	if err := svc.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest("app", segLines(1500, 0)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Train("app"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest("app", segLines(1500, 1500)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Compact("app"); err != nil {
		t.Fatal(err)
	}
	stats, err := svc.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3000 {
		t.Fatalf("Records = %d", stats.Records)
	}
	if stats.Segments == 0 || stats.SegmentRecords != 3000 {
		t.Fatalf("segment stats: %+v", stats)
	}
	if stats.SegmentRatio <= 0 || stats.SegmentRatio >= 1 {
		t.Fatalf("SegmentRatio = %v", stats.SegmentRatio)
	}
	if stats.SegmentCodec != "flate" {
		t.Fatalf("SegmentCodec = %q", stats.SegmentCodec)
	}

	// Query still groups everything (records live in sealed segments).
	rows, err := svc.Query("app", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	if total != 3000 {
		t.Fatalf("query covered %d records, want 3000", total)
	}
}

// TestServiceSegmentStorePersistence restarts a persistent segment-store
// service and checks records and model survive.
func TestServiceSegmentStorePersistence(t *testing.T) {
	dir := t.TempDir()
	svc := New(segmentConfig(dir))
	if err := svc.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Ingest("app", segLines(1200, 0)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Train("app"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Compact("app"); err != nil {
		t.Fatal(err)
	}
	before, err := svc.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := New(segmentConfig(dir))
	defer svc2.Close()
	if err := svc2.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	after, err := svc2.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if after.Records != before.Records {
		t.Fatalf("recovered %d records, want %d", after.Records, before.Records)
	}
	if after.Segments != before.Segments {
		t.Fatalf("recovered %d segments, want %d", after.Segments, before.Segments)
	}
	if after.Templates == 0 {
		t.Fatal("model snapshot not recovered")
	}
	// The recovered matcher keeps assigning templates to new ingests.
	if err := svc2.Ingest("app", segLines(10, 1200)); err != nil {
		t.Fatal(err)
	}
	store, err := svc2.Store("app")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := store.Get(1205)
	if err != nil || rec.TemplateID == 0 {
		t.Fatalf("post-recovery record %+v, %v (want nonzero template)", rec, err)
	}
}

func TestCompactRequiresSegmentStore(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.CreateTopic("plain"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Compact("plain"); err == nil {
		t.Fatal("Compact on a non-segment topic should fail")
	}
	if err := svc.Compact("ghost"); err == nil {
		t.Fatal("Compact on unknown topic should fail")
	}
}

func TestBadSegmentCodecRejected(t *testing.T) {
	svc := New(Config{SegmentBytes: 1 << 20, SegmentCodec: "zstd"})
	defer svc.Close()
	if err := svc.CreateTopic("app"); err == nil {
		t.Fatal("zstd codec is gated and must be rejected")
	}
	svc2 := New(Config{SegmentBytes: 1 << 20, SegmentCodec: "bogus"})
	defer svc2.Close()
	if err := svc2.CreateTopic("app"); err == nil {
		t.Fatal("unknown codec must be rejected")
	}
}
