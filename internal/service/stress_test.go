package service

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHotPathStress interleaves Ingest, Query, forced Train and Compact
// on one segment-store topic from many goroutines. Run under -race (CI
// does) it proves the lock-free hot path: matching against the atomic
// snapshot, store appends, reservoir offers, background training swaps
// and sealed-segment metadata queries never touch unsynchronized state.
func TestHotPathStress(t *testing.T) {
	cfg := Config{
		Parser:        testConfig().Parser,
		TrainVolume:   400,
		TrainInterval: time.Hour,
		SegmentBytes:  16 << 10,
		SegmentCodec:  "flate",
	}
	runHotPathStress(t, cfg)
}

// runHotPathStress drives Ingest, Query, forced Train and Compact on one
// topic from many goroutines; sharded configs reuse it to race the
// cross-shard fan-out paths.
func runHotPathStress(t *testing.T, cfg Config) {
	t.Helper()
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("hot"); err != nil {
		t.Fatal(err)
	}
	// Bootstrap a model so queries have something to roll up.
	if err := s.Ingest("hot", genLines(300, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("hot"); err != nil {
		t.Fatal(err)
	}

	const (
		ingesters = 4
		rounds    = 25
		batch     = 40
	)
	var wg sync.WaitGroup
	var ingested atomic.Int64
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lines := genLines(batch, int64(1000+g*rounds+i))
				if err := s.Ingest("hot", lines); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				ingested.Add(int64(len(lines)))
			}
		}(g)
	}
	wg.Add(3)
	go func() { // querier
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := s.Query("hot", 0.7, TimeRange{}); err != nil {
				t.Errorf("query: %v", err)
				return
			}
			if _, err := s.TopicStats("hot"); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
		}
	}()
	go func() { // trainer
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Train("hot"); err != nil {
				t.Errorf("train: %v", err)
				return
			}
		}
	}()
	go func() { // compactor
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Compact("hot"); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	stats, err := s.TopicStats("hot")
	if err != nil {
		t.Fatal(err)
	}
	want := 300 + int(ingested.Load())
	if stats.Records != want {
		t.Fatalf("records = %d, want %d", stats.Records, want)
	}
	// Every record is still accounted for by a grouped query.
	rows, err := s.Query("hot", 0.7, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rows {
		total += r.Count
	}
	if total != want {
		t.Fatalf("query covered %d of %d records", total, want)
	}
}

// TestTrainingDoesNotBlockIngest holds a training cycle open via the test
// hook and asserts that Ingest, Query and TopicStats all complete while
// it is stalled — the tentpole guarantee that retraining never blocks the
// hot path.
func TestTrainingDoesNotBlockIngest(t *testing.T) {
	cfg := testConfig()
	cfg.TrainVolume = 1 << 30 // only explicit Train cycles
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest("app", genLines(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	s.trainHook = func(string) {
		close(entered)
		<-release
	}
	if err := s.Ingest("app", genLines(10, 2)); err != nil { // refill reservoir
		t.Fatal(err)
	}
	trainDone := make(chan error, 1)
	go func() { trainDone <- s.Train("app") }()
	<-entered // training is now in progress and stalled

	hotPathDone := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := s.Ingest("app", genLines(25, int64(100+i))); err != nil {
				hotPathDone <- err
				return
			}
			if _, err := s.Query("app", 0.7, TimeRange{}); err != nil {
				hotPathDone <- err
				return
			}
			if _, err := s.TopicStats("app"); err != nil {
				hotPathDone <- err
				return
			}
		}
		hotPathDone <- nil
	}()
	select {
	case err := <-hotPathDone:
		if err != nil {
			t.Fatalf("hot path failed during training: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Ingest/Query blocked while training was in progress")
	}
	if stats, _ := s.TopicStats("app"); !stats.Training {
		t.Error("stats should report the stalled training cycle")
	}
	close(release)
	if err := <-trainDone; err != nil {
		t.Fatalf("stalled training cycle failed: %v", err)
	}
}

// TestIngesterConcurrentSubmitClose races producers against Close: every
// Submit either lands or reports the pipeline closed — no panics, no lost
// accounting.
func TestIngesterConcurrentSubmitClose(t *testing.T) {
	cfg := testConfig()
	cfg.TrainVolume = 1 << 30
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	ing, err := s.NewIngester("app", 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var submitted atomic.Int64
	for p := 0; p < 6; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if err := ing.Submit(fmt.Sprintf("producer %d line %d payload x", p, i)); err != nil {
					return // closed underneath us: expected
				}
				submitted.Add(1)
			}
		}(p)
	}
	time.Sleep(2 * time.Millisecond)
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := ing.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	stats, err := s.TopicStats("app")
	if err != nil {
		t.Fatal(err)
	}
	if int64(stats.Records) != submitted.Load() {
		t.Fatalf("records = %d, submitted = %d", stats.Records, submitted.Load())
	}
}

func TestReservoirSeedsDifferPerTopic(t *testing.T) {
	if topicSeed("aaaa") == topicSeed("bbbb") {
		t.Error("same-length topic names share a reservoir RNG seed")
	}
}
