package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"
)

// TestParseQueryParams is the table-driven validation matrix for every
// query parameter: IEEE-754 specials and out-of-range thresholds,
// non-RFC3339 timestamps, inverted ranges, and since misuse all reject;
// boundary values and unbounded sides pass.
func TestParseQueryParams(t *testing.T) {
	now := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	bad := []string{
		// threshold: specials, range, junk, empty value
		"threshold=nope",
		"threshold=",
		"threshold=NaN",
		"threshold=nan",
		"threshold=Inf",
		"threshold=%2BInf", // +Inf
		"threshold=-Inf",
		"threshold=Infinity",
		"threshold=-Infinity",
		"threshold=1e309",  // overflows to +Inf with ErrRange
		"threshold=-1e309", // overflows to -Inf
		"threshold=-0.1",
		"threshold=1.0000001",
		"threshold=0x1", // hex mantissa without exponent
		// from/to: non-RFC3339, empty values, inverted range
		"from=notatime",
		"from=",
		"from=2026-07-26",          // date only
		"from=2026-07-26T12:00:00", // missing zone
		"from=1700000000",          // unix seconds
		"to=notatime",
		"to=",
		"from=2026-07-26T12:00:00Z&to=2026-07-26T11:00:00Z", // from > to
		// since: junk, non-positive, unit-less, combined with from/to
		"since=abc",
		"since=",
		"since=15",
		"since=-15m",
		"since=0s",
		"since=15m&from=2026-07-26T11:00:00Z",
		"since=15m&to=2026-07-26T13:00:00Z",
	}
	for _, qs := range bad {
		q, err := url.ParseQuery(qs)
		if err != nil {
			t.Fatalf("bad test query %q: %v", qs, err)
		}
		if _, _, msg := parseQueryParams(q, clock); msg == "" {
			t.Errorf("query %q accepted, want rejection", qs)
		}
	}

	good := []string{
		"",
		"threshold=0",
		"threshold=-0", // negative zero normalizes to zero
		"threshold=1",
		"threshold=0.7",
		"threshold=7e-1",
		"from=2026-07-26T11:00:00Z",
		"to=2026-07-26T13:00:00Z",
		"from=2026-07-26T11:00:00Z&to=2026-07-26T11:00:00Z", // single instant
		"from=2026-07-26T11:00:00.5Z",                       // fractional seconds
		"from=2026-07-26T11:00:00%2B02:00",                  // numeric zone
		"since=15m",
		"since=1h30m",
	}
	for _, qs := range good {
		q, _ := url.ParseQuery(qs)
		if _, _, msg := parseQueryParams(q, clock); msg != "" {
			t.Errorf("query %q rejected: %s", qs, msg)
		}
	}

	// Negative zero reaches Service.Query as plain zero.
	q, _ := url.ParseQuery("threshold=-0")
	if th, _, _ := parseQueryParams(q, clock); th != 0 || 1/th < 0 {
		t.Errorf("threshold=-0 parsed to %v (signbit %v), want +0", th, 1/th < 0)
	}
	// since resolves against the injected clock, lower bound only.
	q, _ = url.ParseQuery("since=15m")
	_, rng, _ := parseQueryParams(q, clock)
	if !rng.From.Equal(now.Add(-15*time.Minute)) || !rng.To.IsZero() {
		t.Errorf("since=15m range = %+v", rng)
	}
}

// TestHTTPQueryParamRejections drives the same matrix through the real
// handler: every malformed parameter must produce 400, not a silent
// default.
func TestHTTPQueryParamRejections(t *testing.T) {
	srv := newHTTPFixture(t)
	for _, qs := range []string{
		"threshold=NaN", "threshold=", "threshold=-Inf", "threshold=2",
		"from=tomorrow", "from=", "to=yesterday",
		"from=2026-07-26T12:00:00Z&to=2026-07-26T11:00:00Z",
		"since=eternity", "since=-5m", "since=5m&from=2026-07-26T11:00:00Z",
	} {
		resp := do(t, srv, "GET", "/topics/app/query?"+qs, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query?%s = %d, want 400", qs, resp.StatusCode)
		}
	}
}

// advancingConfig returns a config whose Now is driven by the test, plus
// the stepper. The clock is mutex-guarded: the topic's background trainer
// reads it concurrently.
func advancingConfig() (Config, func(d time.Duration), time.Time) {
	base := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	now := base
	cfg := testConfig()
	cfg.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	step := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	return cfg, step, base
}

// TestQueryTimeRangeEndToEnd ingests three batches at distinct times and
// checks that bounded queries — service API and HTTP, hot and sealed —
// count exactly the batches inside the range.
func TestQueryTimeRangeEndToEnd(t *testing.T) {
	for _, sealed := range []bool{false, true} {
		name := "hot"
		if sealed {
			name = "sealed"
		}
		t.Run(name, func(t *testing.T) {
			cfg, step, base := advancingConfig()
			if sealed {
				cfg.SegmentBytes = 1 << 30 // compaction only via forced seal
			}
			s := New(cfg)
			defer s.Close()
			if err := s.CreateTopic("app"); err != nil {
				t.Fatal(err)
			}
			// Batch 1 at base, batch 2 at +10m, batch 3 at +20m.
			lines := genLines(90, 3)
			for b := 0; b < 3; b++ {
				if err := s.Ingest("app", lines[30*b:30*(b+1)]); err != nil {
					t.Fatal(err)
				}
				step(10 * time.Minute)
			}
			if err := s.Train("app"); err != nil {
				t.Fatal(err)
			}
			if sealed {
				if err := s.Compact("app"); err != nil {
					t.Fatal(err)
				}
			}
			total := func(rows []TemplateRow) int {
				n := 0
				for _, r := range rows {
					n += r.Count
				}
				return n
			}
			for _, tc := range []struct {
				tr   TimeRange
				want int
			}{
				{TimeRange{}, 90},
				{TimeRange{From: base, To: base.Add(25 * time.Minute)}, 90},
				{TimeRange{From: base.Add(5 * time.Minute)}, 60},
				{TimeRange{From: base.Add(5 * time.Minute), To: base.Add(15 * time.Minute)}, 30},
				{TimeRange{To: base.Add(-time.Minute)}, 0},
				{TimeRange{From: base.Add(10 * time.Minute), To: base.Add(10 * time.Minute)}, 30}, // inclusive instant
				{TimeRange{From: base.Add(time.Hour)}, 0},
			} {
				rows, err := s.Query("app", 0.7, tc.tr)
				if err != nil {
					t.Fatalf("Query(%+v): %v", tc.tr, err)
				}
				if got := total(rows); got != tc.want {
					t.Errorf("Query(%+v) counted %d, want %d", tc.tr, got, tc.want)
				}
				merged, err := s.QueryMerged("app", 0.7, tc.tr)
				if err != nil {
					t.Fatalf("QueryMerged(%+v): %v", tc.tr, err)
				}
				if got := total(merged); got != tc.want {
					t.Errorf("QueryMerged(%+v) counted %d, want %d", tc.tr, got, tc.want)
				}
			}

			// The same through the HTTP surface, including since sugar
			// (the service clock is frozen at base+30m now).
			srv := httptest.NewServer(s.Handler())
			defer srv.Close()
			httpTotal := func(path string) int {
				resp, err := srv.Client().Get(srv.URL + path)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("GET %s = %d", path, resp.StatusCode)
				}
				var rows []TemplateRow
				if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
					t.Fatal(err)
				}
				n := 0
				for _, r := range rows {
					n += r.Count
				}
				return n
			}
			enc := func(tm time.Time) string { return url.QueryEscape(tm.Format(time.RFC3339)) }
			if got := httpTotal("/topics/app/query?from=" + enc(base.Add(5*time.Minute)) + "&to=" + enc(base.Add(15*time.Minute))); got != 30 {
				t.Errorf("HTTP from/to counted %d, want 30", got)
			}
			// since=25m back from base+30m -> from = base+5m -> batches 2+3.
			if got := httpTotal("/topics/app/query?since=25m"); got != 60 {
				t.Errorf("HTTP since=25m counted %d, want 60", got)
			}
			// A valid-but-empty window is 200 with zero rows, not an error.
			if got := httpTotal("/topics/app/query?from=" + enc(base.Add(2*time.Minute)) + "&to=" + enc(base.Add(3*time.Minute))); got != 0 {
				t.Errorf("HTTP empty window counted %d, want 0", got)
			}
		})
	}
}

// TestQueryTimeRangePushdownSealed asserts the service-level efficiency
// contract: over a topic with many sealed segments, a block-aligned or
// disjoint range moves the segment block-read counter by nothing, and a
// narrow range by at most the straddled blocks.
func TestQueryTimeRangePushdownSealed(t *testing.T) {
	cfg, step, base := advancingConfig()
	cfg.SegmentBytes = 1 << 30
	s := New(cfg)
	defer s.Close()
	if err := s.CreateTopic("app"); err != nil {
		t.Fatal(err)
	}
	lines := genLines(200, 5)
	if err := s.Ingest("app", lines); err != nil {
		t.Fatal(err)
	}
	if err := s.Train("app"); err != nil {
		t.Fatal(err)
	}
	// 5 sealed blocks, one per 10-minute step.
	for b := 0; b < 5; b++ {
		if err := s.Ingest("app", lines[40*b:40*(b+1)]); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact("app"); err != nil {
			t.Fatal(err)
		}
		step(10 * time.Minute)
	}
	reads := func() int64 {
		st, err := s.TopicStats("app")
		if err != nil {
			t.Fatal(err)
		}
		return st.SegmentBlockReads
	}
	query := func(tr TimeRange) int {
		rows, err := s.Query("app", 0.7, tr)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range rows {
			n += r.Count
		}
		return n
	}
	// Each sealed block holds exactly one instant (the frozen clock), so
	// any range is block-aligned: pure metadata.
	before := reads()
	if got := query(TimeRange{From: base.Add(10 * time.Minute), To: base.Add(25 * time.Minute)}); got != 80 {
		t.Fatalf("mid range counted %d, want 80", got)
	}
	if got := query(TimeRange{From: base.Add(time.Hour)}); got != 0 {
		t.Fatalf("future range counted %d, want 0", got)
	}
	if delta := reads() - before; delta != 0 {
		t.Fatalf("block-aligned ranges paid %d block reads", delta)
	}
}
