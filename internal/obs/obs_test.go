package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events", "topic").With("app")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth").With()
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	// Same name+labels resolves the same instrument.
	if again := r.Counter("test_events_total", "events", "topic").With("app"); again != c {
		t.Fatal("re-resolving a series returned a different instrument")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_size", "sizes", SizeBuckets(1, 10, 100)).With()
	for _, v := range []int64{0, 1, 2, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 1124 {
		t.Fatalf("sum = %d, want 1124", got)
	}
}

// TestPrometheusGolden locks the exposition format: a scraper-visible
// change must show up as a diff here.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("bb_lines_total", "ingested lines", "topic").With("app").Add(42)
	r.Counter("bb_lines_total", "ingested lines", "topic").With("db").Add(7)
	r.Gauge("bb_depth", "queue depth").With().Set(-3)
	h := r.Histogram("bb_latency_seconds", "latency", Buckets{Bounds: []int64{1_000_000, 1_000_000_000}, Scale: 1e9}, "topic")
	h.With("app").Observe(500_000)       // 0.5ms -> first bucket
	h.With("app").Observe(2_000_000)     // 2ms -> second bucket
	h.With("app").Observe(5_000_000_000) // 5s -> overflow
	r.GaugeFunc("bb_records", "stored records", "topic").Bind(func() int64 { return 9 }, "q\"uo\\te")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP bb_depth queue depth
# TYPE bb_depth gauge
bb_depth -3
# HELP bb_latency_seconds latency
# TYPE bb_latency_seconds histogram
bb_latency_seconds_bucket{topic="app",le="0.001"} 1
bb_latency_seconds_bucket{topic="app",le="1"} 2
bb_latency_seconds_bucket{topic="app",le="+Inf"} 3
bb_latency_seconds_sum{topic="app"} 5.0025
bb_latency_seconds_count{topic="app"} 3
# HELP bb_lines_total ingested lines
# TYPE bb_lines_total counter
bb_lines_total{topic="app"} 42
bb_lines_total{topic="db"} 7
# HELP bb_records stored records
# TYPE bb_records gauge
bb_records{topic="q\"uo\\te"} 9
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentObserveCollect hammers instruments from many goroutines
// while scraping concurrently; run under -race in CI. Totals must come
// out exact.
func TestConcurrentObserveCollect(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "stress", "topic").With("t")
	h := r.Histogram("stress_seconds", "stress", LatencyBuckets, "topic").With("t")
	const workers, perWorker = 8, 5000
	var wg, writers sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if !strings.Contains(sb.String(), "stress_total") {
					t.Error("scrape lost a family")
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(int64(i%10) * 1_000_000)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var wantSum int64
	for i := 0; i < perWorker; i++ {
		wantSum += int64(i%10) * 1_000_000
	}
	wantSum *= workers
	if got := h.Sum(); got != wantSum {
		t.Fatalf("histogram sum = %d, want %d", got, wantSum)
	}
}

// TestHotPathAllocations pins the instrumentation cost the ingest path
// pays: zero allocations per Observe/Add/Inc.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "alloc").With()
	g := r.Gauge("alloc_gauge", "alloc").With()
	h := r.Histogram("alloc_seconds", "alloc", LatencyBuckets).With()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(123_456)
	}); n != 0 {
		t.Fatalf("hot-path instruments allocate: %.1f allocs/op, want 0", n)
	}
}
