// Package obs is the operational-telemetry substrate of the service: a
// dependency-free metrics registry with atomic counters, gauges, and
// fixed-bucket histograms, exposed in the Prometheus text format.
//
// The design splits registration from observation. Registration (building
// a family, resolving a labeled series) takes the registry lock and may
// allocate; it happens once, at topic-creation or store-open time. The
// resolved instrument handles (*Counter, *Gauge, *Histogram) are plain
// atomics: Inc/Add/Set/Observe are lock-free, allocation-free, and safe
// for any number of concurrent writers, so they can sit directly on the
// ingestion hot path. Every instrument method is also nil-receiver safe —
// a zero-valued handle struct simply records nothing — which keeps call
// sites unconditional in code that can run uninstrumented (tests,
// library use without a registry).
//
// Func-backed instruments cover state that already lives in another
// structure (record counts, sealed-segment block reads): the registry
// calls the bound closure at scrape time instead of requiring the owner
// to mirror its counters.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil Gauge is a valid
// no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Buckets describes a histogram layout: ascending upper bounds in the
// instrument's native integer unit, plus the scale that converts native
// units to the exposed unit (Prometheus convention: seconds for
// latencies). Scale 1 exposes the native value unchanged.
type Buckets struct {
	// Bounds are inclusive upper bounds, strictly ascending, in native
	// units. An implicit +Inf bucket is always appended.
	Bounds []int64
	// Scale divides native values for exposition: nanosecond-valued
	// latency histograms use 1e9 so buckets and sums read as seconds.
	Scale float64
}

// LatencyBuckets is the default layout for nanosecond-valued duration
// histograms: 25µs … 10s, exposed in seconds.
var LatencyBuckets = Buckets{
	Bounds: []int64{
		25_000, 50_000, 100_000, 250_000, 500_000, // µs range
		1e6, 2.5e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6, // ms range
		1e9, 2.5e9, 5e9, 10e9, // seconds
	},
	Scale: 1e9,
}

// SizeBuckets builds a unit-scale layout for integer-valued histograms
// (batch sizes, byte counts).
func SizeBuckets(bounds ...int64) Buckets {
	return Buckets{Bounds: bounds, Scale: 1}
}

// Histogram is a fixed-bucket distribution with a lock-free Observe. The
// nil Histogram is a valid no-op.
type Histogram struct {
	bounds []int64
	les    []string       // precomputed exposition "le" values, per bound
	scale  float64        // native units per exposed unit
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf overflow
	sum    atomic.Int64   // native units
}

// Observe records one native-unit value: one atomic add into the first
// bucket whose bound holds it, one into the sum. No locks, no
// allocations.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration on a nanosecond-valued histogram.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values in native units.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// instrument kinds, also the exposed TYPE strings.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a family: exactly one of the value
// fields is set.
type series struct {
	labels []string // values, aligned with the family's keys
	key    string   // joined values, the lookup key
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() int64
}

// family groups every series of one metric name.
type family struct {
	name    string
	help    string
	kind    string
	keys    []string
	buckets Buckets // histograms only
	series  map[string]*series
}

// Registry holds metric families and renders them as Prometheus text.
// Registration methods are safe for concurrent use; re-registering an
// existing name returns the same family (the kind and label keys must
// match, or the call panics — a programming error, not runtime input).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) family(name, help, kind string, keys []string, buckets Buckets) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.keys) != len(keys) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, kind, keys, f.kind, f.keys))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with label keys %v, was %v", name, keys, f.keys))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, keys: keys, buckets: buckets, series: make(map[string]*series)}
	r.fams[name] = f
	return f
}

// seriesFor resolves (creating if needed) the series with the given label
// values.
func (r *Registry) seriesFor(f *family, values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	key := strings.Join(values, "\x00")
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...), key: key}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

func newHistogram(b Buckets) *Histogram {
	scale := b.Scale
	if scale == 0 {
		scale = 1
	}
	h := &Histogram{
		bounds: b.Bounds,
		scale:  scale,
		counts: make([]atomic.Int64, len(b.Bounds)+1),
		les:    make([]string, len(b.Bounds)),
	}
	for i, bound := range b.Bounds {
		h.les[i] = formatFloat(float64(bound) / scale)
	}
	return h
}

// CounterVec is a counter family; With resolves one labeled Counter.
type CounterVec struct {
	r *Registry
	f *family
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, keys ...string) *CounterVec {
	return &CounterVec{r: r, f: r.family(name, help, kindCounter, keys, Buckets{})}
}

// With resolves the Counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.r.seriesFor(v.f, values).c
}

// GaugeVec is a gauge family; With resolves one labeled Gauge.
type GaugeVec struct {
	r *Registry
	f *family
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{r: r, f: r.family(name, help, kindGauge, keys, Buckets{})}
}

// With resolves the Gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.r.seriesFor(v.f, values).g
}

// HistogramVec is a histogram family; With resolves one labeled
// Histogram. Every series shares the family's bucket layout.
type HistogramVec struct {
	r *Registry
	f *family
}

// Histogram registers (or returns) a histogram family with the given
// bucket layout (ignored when the family already exists).
func (r *Registry) Histogram(name, help string, buckets Buckets, keys ...string) *HistogramVec {
	return &HistogramVec{r: r, f: r.family(name, help, kindHistogram, keys, buckets)}
}

// With resolves the Histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.r.seriesFor(v.f, values).h
}

// FuncVec is a family whose series read their value from a bound closure
// at scrape time — for state that already lives elsewhere (store record
// counts, sealed-segment decode counters) and should not be mirrored.
type FuncVec struct {
	r *Registry
	f *family
}

// CounterFunc registers a func-backed counter family: each bound closure
// must be monotone.
func (r *Registry) CounterFunc(name, help string, keys ...string) *FuncVec {
	return &FuncVec{r: r, f: r.family(name, help, kindCounter, keys, Buckets{})}
}

// GaugeFunc registers a func-backed gauge family.
func (r *Registry) GaugeFunc(name, help string, keys ...string) *FuncVec {
	return &FuncVec{r: r, f: r.family(name, help, kindGauge, keys, Buckets{})}
}

// Bind attaches fn as the value source of the series with the given
// label values, replacing any previous binding.
func (v *FuncVec) Bind(fn func() int64, values ...string) {
	s := v.r.seriesFor(v.f, values)
	v.r.mu.Lock()
	s.fn = fn
	v.r.mu.Unlock()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series sorted for deterministic
// output. Instrument values are read atomically but not as one snapshot:
// concurrent observers may land between lines, which Prometheus scrape
// semantics tolerate.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	type seriesView struct {
		s  *series
		fn func() int64
	}
	views := make([][]seriesView, len(fams))
	for i, f := range fams {
		sl := make([]seriesView, 0, len(f.series))
		for _, s := range f.series {
			sl = append(sl, seriesView{s: s, fn: s.fn})
		}
		sort.Slice(sl, func(a, b int) bool { return sl[a].s.key < sl[b].s.key })
		views[i] = sl
	}
	r.mu.Unlock()

	var b []byte
	for i, f := range fams {
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, '\n')
		b = append(b, "# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind...)
		b = append(b, '\n')
		for _, sv := range views[i] {
			s := sv.s
			switch {
			case s.h != nil:
				b = appendHistogram(b, f, s)
			case sv.fn != nil:
				b = appendSample(b, f.name, "", f.keys, s.labels, "", strconv.FormatInt(sv.fn(), 10))
			case s.c != nil:
				b = appendSample(b, f.name, "", f.keys, s.labels, "", strconv.FormatInt(s.c.Value(), 10))
			case s.g != nil:
				b = appendSample(b, f.name, "", f.keys, s.labels, "", strconv.FormatInt(s.g.Value(), 10))
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// appendHistogram renders one histogram series: cumulative buckets, then
// _sum (in exposed units) and _count.
func appendHistogram(b []byte, f *family, s *series) []byte {
	h := s.h
	var cum int64
	for i, le := range h.les {
		cum += h.counts[i].Load()
		b = appendSample(b, f.name, "_bucket", f.keys, s.labels, le, strconv.FormatInt(cum, 10))
	}
	cum += h.counts[len(h.counts)-1].Load()
	b = appendSample(b, f.name, "_bucket", f.keys, s.labels, "+Inf", strconv.FormatInt(cum, 10))
	b = appendSample(b, f.name, "_sum", f.keys, s.labels, "", formatFloat(float64(h.sum.Load())/h.scale))
	b = appendSample(b, f.name, "_count", f.keys, s.labels, "", strconv.FormatInt(cum, 10))
	return b
}

// appendSample renders one exposition line; le non-empty adds the bucket
// label.
func appendSample(b []byte, name, suffix string, keys, values []string, le, value string) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if len(keys) > 0 || le != "" {
		b = append(b, '{')
		first := true
		for i, k := range keys {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, k...)
			b = append(b, `="`...)
			b = append(b, escapeLabel(values[i])...)
			b = append(b, '"')
		}
		if le != "" {
			if !first {
				b = append(b, ',')
			}
			b = append(b, `le="`...)
			b = append(b, le...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, value...)
	b = append(b, '\n')
	return b
}

// formatFloat renders a float the shortest way that round-trips, matching
// Prometheus client conventions closely enough for any scraper.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string (backslash and newline only, per the
// format).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
