package analytics

import (
	"math"
	"testing"
)

func TestCompareWindowsKinds(t *testing.T) {
	before := Counts{1: 100, 2: 50, 3: 10, 4: 40}
	after := Counts{1: 100, 2: 300, 4: 5, 5: 7}
	changes := CompareWindows(before, after, 4)
	kinds := map[uint64]string{}
	for _, c := range changes {
		kinds[c.TemplateID] = c.Kind
	}
	if kinds[5] != "new" {
		t.Errorf("template 5 = %q, want new", kinds[5])
	}
	if kinds[2] != "surge" {
		t.Errorf("template 2 = %q, want surge", kinds[2])
	}
	if kinds[4] != "drop" {
		t.Errorf("template 4 = %q, want drop", kinds[4])
	}
	if kinds[3] != "gone" {
		t.Errorf("template 3 = %q, want gone", kinds[3])
	}
	if _, ok := kinds[1]; ok {
		t.Error("stable template reported")
	}
	// "new" templates sort first (the paper's alerting highlights newly
	// emerged templates).
	if changes[0].Kind != "new" {
		t.Errorf("first change = %q, want new", changes[0].Kind)
	}
}

func TestCompareWindowsDefaultFactor(t *testing.T) {
	before := Counts{1: 10}
	after := Counts{1: 25} // 2.5x, below default factor 4
	if got := CompareWindows(before, after, 0); len(got) != 0 {
		t.Errorf("changes = %v, want none below default surge factor", got)
	}
}

func TestDistribution(t *testing.T) {
	d := Distribution(Counts{1: 3, 2: 1})
	if math.Abs(d[1]-0.75) > 1e-12 || math.Abs(d[2]-0.25) > 1e-12 {
		t.Errorf("Distribution = %v", d)
	}
	if len(Distribution(Counts{})) != 0 {
		t.Error("empty distribution not empty")
	}
}

func TestJensenShannonProperties(t *testing.T) {
	a := Counts{1: 10, 2: 10}
	if got := JensenShannon(a, a); got > 1e-12 {
		t.Errorf("JS(a,a) = %v, want 0", got)
	}
	b := Counts{3: 10, 4: 10}
	js := JensenShannon(a, b)
	if math.Abs(js-math.Ln2) > 1e-9 {
		t.Errorf("JS(disjoint) = %v, want ln2", js)
	}
	// Symmetry.
	c := Counts{1: 5, 3: 15}
	if math.Abs(JensenShannon(a, c)-JensenShannon(c, a)) > 1e-12 {
		t.Error("JS not symmetric")
	}
	// Partial overlap sits strictly between.
	if !(JensenShannon(a, c) > 0 && JensenShannon(a, c) < math.Ln2) {
		t.Errorf("JS(partial) = %v out of (0, ln2)", JensenShannon(a, c))
	}
}

func TestLibrarySaveGet(t *testing.T) {
	l := NewLibrary()
	l.Save("oom", "Out of memory Killed process <*>")
	got, ok := l.Get("oom")
	if !ok || got == "" {
		t.Fatal("saved template not retrievable")
	}
	if _, ok := l.Get("missing"); ok {
		t.Error("missing label reported present")
	}
	l.Save("disk", "disk pressure warning <*>")
	labels := l.Labels()
	if len(labels) != 2 || labels[0] != "disk" || labels[1] != "oom" {
		t.Errorf("Labels = %v", labels)
	}
}

func TestMatchScenarios(t *testing.T) {
	l := NewLibrary()
	l.AddScenario(Scenario{Name: "oom-cascade", Templates: []string{"Out of memory", "restarting"}})
	l.AddScenario(Scenario{Name: "disk-full", Templates: []string{"No space left"}})
	l.AddScenario(Scenario{Name: "empty", Templates: nil})

	current := []string{
		"kernel: Out of memory: Killed process <*>",
		"supervisor: restarting worker <*>",
		"request served in <*>",
	}
	got := l.MatchScenarios(current)
	if len(got) != 1 || got[0] != "oom-cascade" {
		t.Errorf("MatchScenarios = %v, want [oom-cascade]", got)
	}
	// Partial scenario must not match.
	if got := l.MatchScenarios([]string{"restarting worker"}); len(got) != 0 {
		t.Errorf("partial scenario matched: %v", got)
	}
}
