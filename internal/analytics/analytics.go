// Package analytics implements the advanced out-of-the-box analyses the
// paper's introduction describes on top of parsing results: log anomaly
// detection (abnormal changes in template quantities and newly emerged
// templates), template distribution comparison across time periods, and a
// template library matched against known failure scenarios.
package analytics

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// Counts maps template IDs to occurrence counts within one time window.
type Counts map[uint64]int

// Change is one detected difference between two windows.
type Change struct {
	// TemplateID identifies the template.
	TemplateID uint64
	// Kind is "new", "gone", "surge", or "drop".
	Kind string
	// Before and After are the window counts.
	Before, After int
	// Factor is After/Before (∞ represented as 0 for "new").
	Factor float64
}

// CompareWindows diffs two template-count windows: templates appearing
// only in after are "new", only in before are "gone"; count ratios beyond
// surgeFactor (default 4 when ≤ 1) are "surge"/"drop". Results are sorted
// by severity (new first, then largest factor).
func CompareWindows(before, after Counts, surgeFactor float64) []Change {
	if surgeFactor <= 1 {
		surgeFactor = 4
	}
	var out []Change
	for id, a := range after {
		b := before[id]
		switch {
		case b == 0:
			out = append(out, Change{TemplateID: id, Kind: "new", After: a})
		case float64(a) >= surgeFactor*float64(b):
			out = append(out, Change{TemplateID: id, Kind: "surge", Before: b, After: a, Factor: float64(a) / float64(b)})
		}
	}
	for id, b := range before {
		a, ok := after[id]
		switch {
		case !ok:
			out = append(out, Change{TemplateID: id, Kind: "gone", Before: b})
		case float64(a) <= float64(b)/surgeFactor:
			out = append(out, Change{TemplateID: id, Kind: "drop", Before: b, After: a, Factor: float64(a) / float64(b)})
		}
	}
	rank := map[string]int{"new": 0, "surge": 1, "drop": 2, "gone": 3}
	sort.Slice(out, func(i, j int) bool {
		if rank[out[i].Kind] != rank[out[j].Kind] {
			return rank[out[i].Kind] < rank[out[j].Kind]
		}
		di := math.Abs(math.Log1p(out[i].Factor))
		dj := math.Abs(math.Log1p(out[j].Factor))
		if di != dj {
			return di > dj
		}
		return out[i].TemplateID < out[j].TemplateID
	})
	return out
}

// Distribution normalizes counts to frequencies.
func Distribution(c Counts) map[uint64]float64 {
	total := 0
	for _, n := range c {
		total += n
	}
	out := make(map[uint64]float64, len(c))
	if total == 0 {
		return out
	}
	for id, n := range c {
		out[id] = float64(n) / float64(total)
	}
	return out
}

// JensenShannon computes the Jensen–Shannon divergence between two count
// distributions, the summary statistic for "template distribution
// comparison across different time periods". Result ∈ [0, ln 2].
func JensenShannon(a, b Counts) float64 {
	pa, pb := Distribution(a), Distribution(b)
	ids := map[uint64]struct{}{}
	for id := range pa {
		ids[id] = struct{}{}
	}
	for id := range pb {
		ids[id] = struct{}{}
	}
	var js float64
	for id := range ids {
		p, q := pa[id], pb[id]
		m := (p + q) / 2
		if p > 0 {
			js += p / 2 * math.Log(p/m)
		}
		if q > 0 {
			js += q / 2 * math.Log(q/m)
		}
	}
	return js
}

// Scenario is a known failure scenario: a named set of template texts
// whose joint appearance indicates the failure.
type Scenario struct {
	// Name identifies the scenario (e.g. "disk-pressure").
	Name string
	// Templates are display-template substrings that must all appear.
	Templates []string
}

// Library holds saved templates and failure scenarios. It is safe for
// concurrent use.
type Library struct {
	mu        sync.RWMutex
	saved     map[string]string // label → template text
	scenarios []Scenario
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{saved: make(map[string]string)}
}

// Save stores a template under a label (the "save selected templates to a
// template library" flow used to configure alerts).
func (l *Library) Save(label, templateText string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.saved[label] = templateText
}

// Get returns a saved template.
func (l *Library) Get(label string) (string, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.saved[label]
	return t, ok
}

// Labels lists saved labels, sorted.
func (l *Library) Labels() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.saved))
	for k := range l.saved {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AddScenario registers a failure scenario.
func (l *Library) AddScenario(s Scenario) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scenarios = append(l.scenarios, s)
}

// MatchScenarios returns the names of scenarios whose template substrings
// all occur among the given template texts — the "automatic matching
// against a library of known failure scenarios" feature.
func (l *Library) MatchScenarios(templates []string) []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []string
	for _, sc := range l.scenarios {
		all := true
		for _, want := range sc.Templates {
			found := false
			for _, have := range templates {
				if strings.Contains(have, want) {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all && len(sc.Templates) > 0 {
			out = append(out, sc.Name)
		}
	}
	sort.Strings(out)
	return out
}
