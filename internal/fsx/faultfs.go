package fsx

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Fault sentinels. A fault hook returns one of these (or any other
// error) to script what the N-th filesystem operation does:
//
//   - ErrPowerCut simulates pulling the plug at that operation: the
//     operation fails, every later operation fails, and Restart()
//     rebuilds the filesystem from its durable (synced) image.
//   - ErrTornWrite makes a Write persist only the first half of its
//     buffer and then fail — the short-write shape a full or failing
//     disk produces.
//   - ErrLieSync makes a Sync report success WITHOUT making the bytes
//     durable, modeling hardware/volatile-cache fsync lies. The lie is
//     only observable through a later crash image.
//
// Any other error (for example ErrNoSpace) simply fails the operation.
var (
	ErrPowerCut  = errors.New("fsx: simulated power cut")
	ErrTornWrite = errors.New("fsx: torn write")
	ErrLieSync   = errors.New("fsx: lying fsync")
)

// OpKind classifies a filesystem operation for fault hooks.
type OpKind uint8

// Operation kinds, in no particular order. Every FS and File method
// counts as exactly one operation (one hook consultation) per call.
const (
	OpCreate OpKind = iota
	OpOpen
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpTruncate
	OpReadDir
	OpMkdirAll
	OpStat
	OpSyncDir
	OpReadFile
	OpWriteFile
)

var opNames = [...]string{
	OpCreate: "create", OpOpen: "open", OpRead: "read", OpWrite: "write",
	OpSync: "sync", OpClose: "close", OpRename: "rename", OpRemove: "remove",
	OpTruncate: "truncate", OpReadDir: "readdir", OpMkdirAll: "mkdirall",
	OpStat: "stat", OpSyncDir: "syncdir", OpReadFile: "readfile",
	OpWriteFile: "writefile",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// OpInfo describes one filesystem operation to a fault hook.
type OpInfo struct {
	// Index is the 1-based sequence number of this operation since the
	// FaultFS was created. The counter is monotone across Restart.
	Index int64
	Kind  OpKind
	Path  string
}

// Hook inspects an operation about to execute and returns nil to let
// it proceed or an error to inject a fault (see the sentinels above).
type Hook func(OpInfo) error

// memFile is the backing object for one file. Entries reference the
// object, so a rename preserves content identity. data is the live
// content; synced is how much of it is durable — a crash image
// truncates the file to its synced prefix.
type memFile struct {
	data   []byte
	synced int
}

// memDir is one directory: the live entry map mutates immediately, the
// durable map only through SyncDir (in StrictDirs mode) and is what a
// crash image restores.
type memDir struct {
	live    map[string]*memFile
	durable map[string]*memFile
}

func newMemDir() *memDir {
	return &memDir{live: map[string]*memFile{}, durable: map[string]*memFile{}}
}

// FaultFS is a deterministic in-memory FS with scripted fault
// injection and crash-image semantics. Zero value is not usable; call
// NewFaultFS.
//
// Durability model:
//   - File bytes are durable up to the last successful Sync (the
//     synced prefix). Restart truncates every file to it.
//   - Directory entries (create/rename/remove) are durable immediately
//     by default; with StrictDirs they are durable only after a
//     SyncDir of the containing directory — the strict POSIX model the
//     crash matrix runs under.
//   - Directories themselves (MkdirAll) are durable immediately; the
//     engine creates them once at open and recreates them on reopen,
//     so modeling torn mkdir adds nothing.
type FaultFS struct {
	// StrictDirs makes entry operations durable only after SyncDir.
	// Set before use; not synchronized.
	StrictDirs bool

	mu   sync.Mutex
	dirs map[string]*memDir
	ops  int64
	hook Hook
	down bool
}

// NewFaultFS returns an empty fault-injecting filesystem.
func NewFaultFS() *FaultFS {
	return &FaultFS{dirs: map[string]*memDir{}}
}

// SetHook installs the fault hook consulted (under the FS lock) by
// every subsequent operation. Passing nil clears it.
func (f *FaultFS) SetHook(h Hook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hook = h
}

// CrashAt arms a power cut at exactly operation index k.
func (f *FaultFS) CrashAt(k int64) {
	f.SetHook(func(op OpInfo) error {
		if op.Index == k {
			return ErrPowerCut
		}
		return nil
	})
}

// FailAt arms a one-shot fault: operation index k fails with err;
// everything else proceeds.
func (f *FaultFS) FailAt(k int64, err error) {
	f.SetHook(func(op OpInfo) error {
		if op.Index == k {
			return err
		}
		return nil
	})
}

// Ops returns the number of operations attempted so far (faulted
// operations count; operations refused because the FS is down after a
// power cut do not).
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Down reports whether a power cut has downed the filesystem.
func (f *FaultFS) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Restart simulates the machine coming back after a power cut: live
// state is discarded, every directory reverts to its durable entry
// map, every file truncates to its synced prefix, and the FS is
// writable again. The operation counter keeps counting (so an armed
// exact-index hook does not re-fire) and the hook stays installed.
func (f *FaultFS) Restart() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down = false
	for _, d := range f.dirs {
		live := make(map[string]*memFile, len(d.durable))
		for name, mf := range d.durable {
			if mf.synced < len(mf.data) {
				mf.data = mf.data[:mf.synced]
			}
			live[name] = mf
		}
		d.live = live
	}
}

// op counts one operation and consults the hook. Callers hold f.mu.
func (f *FaultFS) op(kind OpKind, path string) error {
	if f.down {
		return &fs.PathError{Op: kind.String(), Path: path, Err: ErrPowerCut}
	}
	f.ops++
	if f.hook == nil {
		return nil
	}
	err := f.hook(OpInfo{Index: f.ops, Kind: kind, Path: path})
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrPowerCut) {
		f.down = true
	}
	return err
}

func clean(name string) string { return filepath.Clean(name) }

// dir returns the directory holding name's entry, or nil.
func (f *FaultFS) dirOf(name string) (*memDir, string) {
	d := f.dirs[clean(filepath.Dir(name))]
	return d, filepath.Base(name)
}

// entryDurable records an entry-map mutation as durable when the FS is
// in lenient mode; in StrictDirs mode durable maps change only via
// SyncDir.
func (f *FaultFS) entrySync(d *memDir) {
	if f.StrictDirs {
		return
	}
	d.durable = make(map[string]*memFile, len(d.live))
	for k, v := range d.live {
		d.durable[k] = v
	}
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpMkdirAll, path); err != nil {
		return err
	}
	f.mkdirAllLocked(path)
	return nil
}

func (f *FaultFS) mkdirAllLocked(path string) {
	p := clean(path)
	for {
		if _, ok := f.dirs[p]; !ok {
			f.dirs[p] = newMemDir()
		}
		parent := filepath.Dir(p)
		if parent == p {
			return
		}
		p = parent
	}
}

func (f *FaultFS) Create(name string) (File, error) {
	return f.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kind := OpOpen
	if flag&os.O_CREATE != 0 {
		kind = OpCreate
	}
	if err := f.op(kind, name); err != nil {
		return nil, err
	}
	d, base := f.dirOf(name)
	if d == nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	if _, isDir := f.dirs[clean(name)]; isDir {
		if flag&(os.O_WRONLY|os.O_RDWR) != 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: errors.New("is a directory")}
		}
		return &faultDirHandle{fs: f, path: clean(name)}, nil
	}
	mf := d.live[base]
	switch {
	case mf == nil && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case mf != nil && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case mf == nil:
		mf = &memFile{}
		d.live[base] = mf
		f.entrySync(d)
	}
	if flag&os.O_TRUNC != 0 {
		mf.data = mf.data[:0]
		if mf.synced > 0 {
			mf.synced = 0
		}
	}
	h := &faultFile{
		fs:       f,
		path:     clean(name),
		f:        mf,
		appendTo: flag&os.O_APPEND != 0,
		writable: flag&(os.O_WRONLY|os.O_RDWR) != 0,
		readable: flag&os.O_WRONLY == 0,
	}
	return h, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	return f.OpenFile(name, os.O_RDONLY, 0)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpReadFile, name); err != nil {
		return nil, err
	}
	d, base := f.dirOf(name)
	if d == nil || d.live[base] == nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	mf := d.live[base]
	out := make([]byte, len(mf.data))
	copy(out, mf.data)
	return out, nil
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpWriteFile, name); err != nil {
		return err
	}
	d, base := f.dirOf(name)
	if d == nil {
		return &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	mf := d.live[base]
	if mf == nil {
		mf = &memFile{}
		d.live[base] = mf
		f.entrySync(d)
	}
	// os.WriteFile does not fsync: the new bytes are NOT durable.
	mf.data = append(mf.data[:0], data...)
	mf.synced = 0
	return nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpRename, oldpath); err != nil {
		return err
	}
	od, ob := f.dirOf(oldpath)
	nd, nb := f.dirOf(newpath)
	if od == nil || od.live[ob] == nil {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	if nd == nil {
		return &fs.PathError{Op: "rename", Path: newpath, Err: fs.ErrNotExist}
	}
	mf := od.live[ob]
	delete(od.live, ob)
	nd.live[nb] = mf
	f.entrySync(od)
	f.entrySync(nd)
	return nil
}

func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpRemove, name); err != nil {
		return err
	}
	if _, isDir := f.dirs[clean(name)]; isDir {
		if n := len(f.dirs[clean(name)].live); n > 0 {
			return &fs.PathError{Op: "remove", Path: name, Err: errors.New("directory not empty")}
		}
		delete(f.dirs, clean(name))
		return nil
	}
	d, base := f.dirOf(name)
	if d == nil || d.live[base] == nil {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(d.live, base)
	f.entrySync(d)
	return nil
}

func (f *FaultFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpTruncate, name); err != nil {
		return err
	}
	d, base := f.dirOf(name)
	if d == nil || d.live[base] == nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	mf := d.live[base]
	if int(size) < len(mf.data) {
		mf.data = mf.data[:size]
	} else {
		for int64(len(mf.data)) < size {
			mf.data = append(mf.data, 0)
		}
	}
	if mf.synced > len(mf.data) {
		mf.synced = len(mf.data)
	}
	return nil
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpReadDir, name); err != nil {
		return nil, err
	}
	p := clean(name)
	d, ok := f.dirs[p]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	var out []fs.DirEntry
	for base, mf := range d.live {
		out = append(out, &faultDirEntry{name: base, size: int64(len(mf.data))})
	}
	for dp := range f.dirs {
		if dp != p && filepath.Dir(dp) == p {
			out = append(out, &faultDirEntry{name: filepath.Base(dp), dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpStat, name); err != nil {
		return nil, err
	}
	return f.statLocked(name)
}

func (f *FaultFS) statLocked(name string) (fs.FileInfo, error) {
	if _, isDir := f.dirs[clean(name)]; isDir {
		return &faultFileInfo{name: filepath.Base(clean(name)), dir: true}, nil
	}
	d, base := f.dirOf(name)
	if d == nil || d.live[base] == nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return &faultFileInfo{name: base, size: int64(len(d.live[base].data))}, nil
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.op(OpSyncDir, name); err != nil {
		return err
	}
	d, ok := f.dirs[clean(name)]
	if !ok {
		return &fs.PathError{Op: "syncdir", Path: name, Err: fs.ErrNotExist}
	}
	d.durable = make(map[string]*memFile, len(d.live))
	for k, v := range d.live {
		d.durable[k] = v
	}
	return nil
}

// DumpPaths returns every live file path, sorted — a debugging aid for
// matrix failures.
func (f *FaultFS) DumpPaths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for dp, d := range f.dirs {
		for base := range d.live {
			out = append(out, filepath.Join(dp, base))
		}
	}
	sort.Strings(out)
	return out
}

// faultFile is an open handle onto a memFile.
type faultFile struct {
	fs       *FaultFS
	path     string
	f        *memFile
	off      int64
	appendTo bool
	writable bool
	readable bool
	closed   bool
}

func (h *faultFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.writable {
		return 0, &fs.PathError{Op: "write", Path: h.path, Err: fs.ErrClosed}
	}
	err := h.fs.op(OpWrite, h.path)
	n := len(p)
	torn := false
	switch {
	case err == nil:
	case errors.Is(err, ErrTornWrite):
		// Persist the first half, then fail: the caller sees a short,
		// failed write with garbage it must not trust on disk.
		n, torn = len(p)/2, true
	default:
		return 0, err
	}
	if h.appendTo {
		h.off = int64(len(h.f.data))
	}
	for int64(len(h.f.data)) < h.off {
		h.f.data = append(h.f.data, 0)
	}
	h.f.data = append(h.f.data[:h.off], p[:n]...)
	h.off += int64(n)
	if torn {
		return n, fmt.Errorf("write %s: %w", h.path, ErrTornWrite)
	}
	return n, nil
}

func (h *faultFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed || !h.readable {
		return 0, &fs.PathError{Op: "read", Path: h.path, Err: fs.ErrClosed}
	}
	if err := h.fs.op(OpRead, h.path); err != nil {
		return 0, err
	}
	if h.off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *faultFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return &fs.PathError{Op: "sync", Path: h.path, Err: fs.ErrClosed}
	}
	err := h.fs.op(OpSync, h.path)
	switch {
	case err == nil:
		h.f.synced = len(h.f.data)
		return nil
	case errors.Is(err, ErrLieSync):
		// Report success without durability: only a later crash image
		// reveals the lie.
		return nil
	default:
		return err
	}
}

func (h *faultFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return &fs.PathError{Op: "close", Path: h.path, Err: fs.ErrClosed}
	}
	if err := h.fs.op(OpClose, h.path); err != nil {
		return err
	}
	h.closed = true
	return nil
}

func (h *faultFile) Stat() (fs.FileInfo, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.op(OpStat, h.path); err != nil {
		return nil, err
	}
	return &faultFileInfo{name: filepath.Base(h.path), size: int64(len(h.f.data))}, nil
}

// faultDirHandle supports read-only opens of directories (the os-level
// open-dir-then-fsync idiom callers should express as SyncDir).
type faultDirHandle struct {
	fs   *FaultFS
	path string
}

func (h *faultDirHandle) Read(p []byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: h.path, Err: errors.New("is a directory")}
}

func (h *faultDirHandle) Write(p []byte) (int, error) {
	return 0, &fs.PathError{Op: "write", Path: h.path, Err: errors.New("is a directory")}
}

func (h *faultDirHandle) Sync() error { return h.fs.SyncDir(h.path) }

func (h *faultDirHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.fs.op(OpClose, h.path)
}

func (h *faultDirHandle) Stat() (fs.FileInfo, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.op(OpStat, h.path); err != nil {
		return nil, err
	}
	return h.fs.statLocked(h.path)
}

type faultFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i *faultFileInfo) Name() string { return i.name }
func (i *faultFileInfo) Size() int64  { return i.size }
func (i *faultFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i *faultFileInfo) ModTime() time.Time { return time.Time{} }
func (i *faultFileInfo) IsDir() bool        { return i.dir }
func (i *faultFileInfo) Sys() any           { return nil }

type faultDirEntry struct {
	name string
	size int64
	dir  bool
}

func (e *faultDirEntry) Name() string { return e.name }
func (e *faultDirEntry) IsDir() bool  { return e.dir }
func (e *faultDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e *faultDirEntry) Info() (fs.FileInfo, error) {
	return &faultFileInfo{name: e.name, size: e.size, dir: e.dir}, nil
}
