// Package fsx is the filesystem seam for the storage engine. Every
// write path in internal/segment and internal/logstore goes through an
// fsx.FS instead of calling the os package directly, so tests can swap
// in a deterministic fault-injecting filesystem (FaultFS) that scripts
// ENOSPC, torn writes, lying fsyncs, and whole-process power cuts at
// the granularity of a single filesystem operation.
//
// The default implementation (OS) is a zero-cost passthrough to the os
// package: production behavior is byte-for-byte unchanged.
package fsx

import (
	"io"
	"io/fs"
	"os"
	"syscall"
)

// ErrNoSpace is the disk-full error (ENOSPC). Fault schedules inject
// it and the storage engine tests for it with errors.Is to decide when
// a failure means "degrade to read-only" rather than "retry".
var ErrNoSpace error = syscall.ENOSPC

// File is the subset of *os.File the storage engine writes through.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's bytes to stable storage. Bytes written
	// but not synced do not survive a crash image.
	Sync() error
	Close() error
	Stat() (fs.FileInfo, error)
}

// FS is the filesystem operations surface of the storage engine.
// Semantics match the corresponding os functions; SyncDir fsyncs a
// directory so that entry operations (create/rename/remove) inside it
// become durable.
type FS interface {
	// Create opens name for writing, truncating it if it exists
	// (os.O_CREATE|os.O_TRUNC|os.O_WRONLY, mode 0o644).
	Create(name string) (File, error)
	// OpenFile is the generalized open (os.OpenFile).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	ReadDir(name string) ([]fs.DirEntry, error)
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory at name, making entry
	// creations/renames/removals inside it durable.
	SyncDir(name string) error
}

// OS returns the passthrough filesystem backed by the os package.
func OS() FS { return osFS{} }

// OrOS returns fsys, or the os-backed default when fsys is nil. Option
// structs use it so a zero value means "the real filesystem".
func OrOS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error)             { return os.Open(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
