package fsx

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS()
	path := filepath.Join(dir, "a.txt")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
}

func TestFaultFSBasicOps(t *testing.T) {
	fsys := NewFaultFS()
	if err := fsys.MkdirAll("/top/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fsys.Create("/top/sub/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile("/top/sub/a.txt")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Append mode resumes at the end.
	f, err = fsys.OpenFile("/top/sub/a.txt", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("!")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if data, _ := fsys.ReadFile("/top/sub/a.txt"); string(data) != "hello world!" {
		t.Fatalf("after append: %q", data)
	}
	// Sequential reads through a handle.
	rf, err := fsys.Open("/top/sub/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rf)
	if err != nil || string(got) != "hello world!" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	// ReadDir sees files and subdirectories.
	ents, err := fsys.ReadDir("/top")
	if err != nil || len(ents) != 1 || !ents[0].IsDir() || ents[0].Name() != "sub" {
		t.Fatalf("ReadDir(/top) = %v, %v", ents, err)
	}
	// Missing files answer like os does.
	if _, err := fsys.ReadFile("/top/sub/nope"); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
	if _, err := fsys.Open("/top/sub/nope"); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
	// Rename changes the visible name, not the content.
	if err := fsys.Rename("/top/sub/a.txt", "/top/sub/b.txt"); err != nil {
		t.Fatal(err)
	}
	if data, _ := fsys.ReadFile("/top/sub/b.txt"); string(data) != "hello world!" {
		t.Fatalf("after rename: %q", data)
	}
	if err := fsys.Remove("/top/sub/b.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat("/top/sub/b.txt"); !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist after remove, got %v", err)
	}
}

func TestFaultFSTruncate(t *testing.T) {
	fsys := NewFaultFS()
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/f")
	f.Write([]byte("0123456789"))
	f.Sync()
	f.Close()
	if err := fsys.Truncate("/d/f", 4); err != nil {
		t.Fatal(err)
	}
	data, _ := fsys.ReadFile("/d/f")
	if string(data) != "0123" {
		t.Fatalf("after truncate: %q", data)
	}
	// Crash image respects the truncation (synced clamped down).
	fsys.Restart()
	data, _ = fsys.ReadFile("/d/f")
	if string(data) != "0123" {
		t.Fatalf("after truncate+restart: %q", data)
	}
}

func TestCrashImageDropsUnsyncedBytes(t *testing.T) {
	fsys := NewFaultFS()
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/f")
	f.Write([]byte("durable."))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("volatile"))
	fsys.Restart()
	data, err := fsys.ReadFile("/d/f")
	if err != nil || string(data) != "durable." {
		t.Fatalf("post-crash content = %q, %v", data, err)
	}
}

func TestPowerCutDownsFilesystem(t *testing.T) {
	fsys := NewFaultFS()
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/f")
	f.Write([]byte("x"))
	f.Sync()
	next := fsys.Ops() + 1
	fsys.CrashAt(next)
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("want power cut, got %v", err)
	}
	// Everything after the cut fails too, without advancing the counter.
	before := fsys.Ops()
	if _, err := fsys.ReadFile("/d/f"); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("want power cut on later op, got %v", err)
	}
	if fsys.Ops() != before {
		t.Fatal("downed fs must not count ops")
	}
	if !fsys.Down() {
		t.Fatal("fs should report down")
	}
	fsys.Restart()
	if data, err := fsys.ReadFile("/d/f"); err != nil || string(data) != "x" {
		t.Fatalf("post-restart = %q, %v", data, err)
	}
}

func TestStrictDirsEntryDurability(t *testing.T) {
	fsys := NewFaultFS()
	fsys.StrictDirs = true
	fsys.MkdirAll("/d", 0o755)
	// File created and fsynced, but the directory entry never synced:
	// the crash image must not contain it.
	f, _ := fsys.Create("/d/lost")
	f.Write([]byte("bytes"))
	f.Sync()
	f.Close()
	// Second file whose entry IS made durable.
	g, _ := fsys.Create("/d/kept")
	g.Write([]byte("bytes"))
	g.Sync()
	g.Close()
	// SyncDir at this point makes BOTH entries durable; to isolate, use
	// two directories instead.
	fsys.MkdirAll("/e", 0o755)
	h, _ := fsys.Create("/e/kept")
	h.Write([]byte("ok"))
	h.Sync()
	h.Close()
	if err := fsys.SyncDir("/e"); err != nil {
		t.Fatal(err)
	}
	fsys.Restart()
	if _, err := fsys.Stat("/d/lost"); !os.IsNotExist(err) {
		t.Fatalf("unsynced entry survived crash: %v", err)
	}
	if data, err := fsys.ReadFile("/e/kept"); err != nil || string(data) != "ok" {
		t.Fatalf("dir-synced entry lost: %q, %v", data, err)
	}
}

func TestStrictDirsRenameNeedsSyncDir(t *testing.T) {
	fsys := NewFaultFS()
	fsys.StrictDirs = true
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/x.tmp")
	f.Write([]byte("seg"))
	f.Sync()
	f.Close()
	fsys.SyncDir("/d")
	if err := fsys.Rename("/d/x.tmp", "/d/x"); err != nil {
		t.Fatal(err)
	}
	// No SyncDir: crash reverts to the pre-rename entry.
	fsys.Restart()
	if _, err := fsys.Stat("/d/x"); !os.IsNotExist(err) {
		t.Fatalf("un-dir-synced rename survived: %v", err)
	}
	if data, err := fsys.ReadFile("/d/x.tmp"); err != nil || string(data) != "seg" {
		t.Fatalf("old entry should persist: %q, %v", data, err)
	}
	// Now do it durably.
	if err := fsys.Rename("/d/x.tmp", "/d/x"); err != nil {
		t.Fatal(err)
	}
	fsys.SyncDir("/d")
	fsys.Restart()
	if data, err := fsys.ReadFile("/d/x"); err != nil || string(data) != "seg" {
		t.Fatalf("durable rename lost: %q, %v", data, err)
	}
}

func TestTornWriteFault(t *testing.T) {
	fsys := NewFaultFS()
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/f")
	next := fsys.Ops() + 1
	fsys.FailAt(next, ErrTornWrite)
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrTornWrite) {
		t.Fatalf("want torn write error, got %v", err)
	}
	if n != 5 {
		t.Fatalf("torn write persisted %d bytes, want 5", n)
	}
	data, _ := fsys.ReadFile("/d/f")
	if string(data) != "01234" {
		t.Fatalf("on-disk garbage = %q", data)
	}
}

func TestLyingFsync(t *testing.T) {
	fsys := NewFaultFS()
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/f")
	f.Write([]byte("gone"))
	next := fsys.Ops() + 1
	fsys.FailAt(next, ErrLieSync)
	if err := f.Sync(); err != nil {
		t.Fatalf("lying fsync must report success, got %v", err)
	}
	fsys.Restart()
	data, err := fsys.ReadFile("/d/f")
	if err != nil || len(data) != 0 {
		t.Fatalf("lied-about bytes survived the crash: %q, %v", data, err)
	}
}

func TestFailAtENOSPCIsTransient(t *testing.T) {
	fsys := NewFaultFS()
	fsys.MkdirAll("/d", 0o755)
	f, _ := fsys.Create("/d/f")
	next := fsys.Ops() + 1
	fsys.FailAt(next, ErrNoSpace)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("fault must be one-shot, got %v", err)
	}
}

func TestOpCountingIsDeterministic(t *testing.T) {
	run := func() int64 {
		fsys := NewFaultFS()
		fsys.MkdirAll("/d", 0o755)
		f, _ := fsys.Create("/d/f")
		f.Write([]byte("abc"))
		f.Sync()
		f.Close()
		fsys.SyncDir("/d")
		fsys.ReadFile("/d/f")
		return fsys.Ops()
	}
	a, b := run(), run()
	if a != b || a == 0 {
		t.Fatalf("op counts differ: %d vs %d", a, b)
	}
}
