package grouping

import (
	"math/rand"
	"testing"

	"bytebrain/internal/dedup"
	"bytebrain/internal/encode"
)

func mk(tokens ...string) *dedup.Unique {
	return &dedup.Unique{
		Tokens: tokens,
		Enc:    encode.HashEncoder{}.Encode(nil, tokens),
		Count:  1,
	}
}

func TestSplitByLengthOnly(t *testing.T) {
	recs := []*dedup.Unique{
		mk("a", "b"),
		mk("c", "d"),
		mk("x", "y", "z"),
	}
	groups := Split(recs, 0)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Key.Length != 2 || len(groups[0].Records) != 2 {
		t.Errorf("group0 = %+v", groups[0].Key)
	}
	if groups[1].Key.Length != 3 || len(groups[1].Records) != 1 {
		t.Errorf("group1 = %+v", groups[1].Key)
	}
}

func TestSplitWithPrefix(t *testing.T) {
	recs := []*dedup.Unique{
		mk("GET", "u1", "200"),
		mk("GET", "u2", "404"),
		mk("POST", "u1", "200"),
	}
	groups := Split(recs, 1)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (split on first token)", len(groups))
	}
	// Deterministic order: prefix "GET\x00" < "POST\x00".
	if len(groups[0].Records) != 2 || groups[0].Records[0].Tokens[0] != "GET" {
		t.Errorf("group0 wrong: %+v", groups[0])
	}
}

func TestSplitPrefixLongerThanRecord(t *testing.T) {
	recs := []*dedup.Unique{mk("only"), mk("only"), mk("two", "toks")}
	groups := Split(recs, 5)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
}

func TestSplitNegativePrefixTreatedAsZero(t *testing.T) {
	recs := []*dedup.Unique{mk("a", "b"), mk("c", "d")}
	groups := Split(recs, -3)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
}

func TestSplitEmpty(t *testing.T) {
	if got := Split(nil, 0); len(got) != 0 {
		t.Errorf("Split(nil) = %v", got)
	}
}

func TestSplitDeterministicOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var recs []*dedup.Unique
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(5)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = string(rune('a' + r.Intn(6)))
		}
		recs = append(recs, mk(toks...))
	}
	a := Split(recs, 2)
	b := Split(recs, 2)
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a {
		if a[i].Key != b[i].Key || len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("group %d differs across runs", i)
		}
	}
	// Sorted by length then prefix.
	for i := 1; i < len(a); i++ {
		if a[i-1].Key.Length > a[i].Key.Length {
			t.Fatal("groups not sorted by length")
		}
		if a[i-1].Key.Length == a[i].Key.Length && a[i-1].Key.Prefix > a[i].Key.Prefix {
			t.Fatal("groups not sorted by prefix within length")
		}
	}
}

func TestSplitPartitionIsComplete(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var recs []*dedup.Unique
	for i := 0; i < 100; i++ {
		toks := make([]string, 1+r.Intn(4))
		for j := range toks {
			toks[j] = string(rune('p' + r.Intn(4)))
		}
		recs = append(recs, mk(toks...))
	}
	groups := Split(recs, 1)
	total := 0
	for _, g := range groups {
		total += len(g.Records)
		for _, u := range g.Records {
			if len(u.Tokens) != g.Key.Length {
				t.Fatalf("record of length %d in group of length %d", len(u.Tokens), g.Key.Length)
			}
		}
	}
	if total != len(recs) {
		t.Fatalf("partition lost records: %d of %d", total, len(recs))
	}
}
