// Package grouping implements initial grouping (§4.2 of the paper).
//
// Before hierarchical clustering, distinct records are partitioned by simple
// structural keys so that records that cannot share a template are separated
// up front and the per-group clustering can run in parallel:
//
//  1. Length — records with different token counts never share a template
//     (ByteBrain, like other syntax-based parsers, matches positionally).
//  2. Prefix — optionally, the first k tokens must agree (k = 0 by default,
//     configurable per topic).
package grouping

import (
	"sort"

	"bytebrain/internal/dedup"
)

// Key identifies an initial group.
type Key struct {
	// Length is the token count shared by every record in the group.
	Length int
	// Prefix is the joined first-k-token prefix ("" when k = 0).
	Prefix string
}

// Group is one initial group: the distinct records that share a Key.
type Group struct {
	Key     Key
	Records []*dedup.Unique
}

// Split partitions records by (length, first-prefixLen-token prefix) and
// returns the groups ordered deterministically by key (length, then
// prefix). A deterministic order keeps training reproducible under a fixed
// seed regardless of map iteration order.
func Split(records []*dedup.Unique, prefixLen int) []Group {
	if prefixLen < 0 {
		prefixLen = 0
	}
	byKey := make(map[Key]*Group)
	var keys []Key
	var prefixBuf []byte
	for _, u := range records {
		k := Key{Length: len(u.Tokens)}
		if prefixLen > 0 {
			n := prefixLen
			if n > len(u.Tokens) {
				n = len(u.Tokens)
			}
			prefixBuf = prefixBuf[:0]
			for _, t := range u.Tokens[:n] {
				prefixBuf = append(prefixBuf, t...)
				prefixBuf = append(prefixBuf, 0)
			}
			k.Prefix = string(prefixBuf)
		}
		g, ok := byKey[k]
		if !ok {
			g = &Group{Key: k}
			byKey[k] = g
			keys = append(keys, k)
		}
		g.Records = append(g.Records, u)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Length != keys[j].Length {
			return keys[i].Length < keys[j].Length
		}
		return keys[i].Prefix < keys[j].Prefix
	})
	out := make([]Group, len(keys))
	for i, k := range keys {
		out[i] = *byKey[k]
	}
	return out
}
