// Package datagen simulates the LogHub and LogHub-2.0 benchmark datasets
// (§5.1.1, Table 1).
//
// The real corpora are multi-gigabyte public downloads that cannot ship
// with an offline module, so each of the sixteen datasets is replaced by a
// generator that preserves the properties log-parsing accuracy and
// throughput actually depend on: the Table-1 template count, per-dataset
// message shapes (HDFS block ops, BGL RAS events, Android wakelocks, …),
// typed variable slots, a Zipf-distributed template frequency (which also
// reproduces the heavy duplication of Fig. 4), and exact ground-truth
// labels. Template patterns use two kinds of markers:
//
//   - runtime slots, filled per generated line: {int} {smallint} {hex}
//     {ip} {ipport} {uuid} {float} {path} {host} {user} {ts} {dur} {ver}
//     {blk} {pid} {word:a|b|c} {list:item}
//   - expansion constants, fixed per template: {C:name} draws from the
//     dataset's flavor list "name", so one base pattern yields a family of
//     distinct templates ("Starting task cleanup", "Starting task gc", …).
//
// {list:item} renders one to four items, so logs from the same statement
// can have different token counts — the variable-length challenge §7
// discusses; the ground-truth label stays the same across lengths, which
// bounds syntax-based parsers below perfect GA exactly as on the real
// data.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Dataset is one generated benchmark dataset.
type Dataset struct {
	// Name is the LogHub dataset name (e.g. "HDFS").
	Name string
	// Lines are the raw log lines.
	Lines []string
	// Truth holds the ground-truth template ID of each line.
	Truth []int
	// NumTemplates is the number of distinct templates the generator
	// built (the Table-1 template count).
	NumTemplates int
	// Bytes is the total size of Lines.
	Bytes int64
}

// template is a compiled pattern: literal parts interleaved with slots.
type template struct {
	id    int
	parts []string
	slots []slot
}

type slot struct {
	kind    string
	choices []string // for "word"
}

// compile parses a fully-expanded pattern (no {C:...} markers remain) into
// a template.
func compile(id int, pattern string) (*template, error) {
	t := &template{id: id}
	rest := pattern
	for {
		open := strings.IndexByte(rest, '{')
		if open < 0 {
			t.parts = append(t.parts, rest)
			return t, nil
		}
		closeIdx := strings.IndexByte(rest[open:], '}')
		if closeIdx < 0 {
			return nil, fmt.Errorf("datagen: unclosed marker in %q", pattern)
		}
		closeIdx += open
		t.parts = append(t.parts, rest[:open])
		marker := rest[open+1 : closeIdx]
		s := slot{kind: marker}
		if k, arg, ok := strings.Cut(marker, ":"); ok {
			s.kind = k
			s.choices = strings.Split(arg, "|")
		}
		if !validSlot(s.kind) {
			return nil, fmt.Errorf("datagen: unknown slot %q in %q", s.kind, pattern)
		}
		t.slots = append(t.slots, s)
		rest = rest[closeIdx+1:]
	}
}

func validSlot(kind string) bool {
	switch kind {
	case "int", "smallint", "hex", "ip", "ipport", "uuid", "float",
		"path", "host", "user", "ts", "dur", "ver", "blk", "pid",
		"pkg", "word", "list":
		return true
	}
	return false
}

// genState carries the per-stream randomness plus a recent-value cache per
// slot kind. Real log streams have strong temporal value locality — the
// same block ID is allocated, written, and deleted within moments — which
// is what makes raw streams duplicate at all (Fig. 4, left). With
// probability localityP a slot reuses one of the last cacheSize values of
// its kind instead of drawing fresh.
type genState struct {
	r     *rand.Rand
	cache map[string][]string
	sb    strings.Builder
	tmp   strings.Builder
}

const (
	localityP = 0.6
	cacheSize = 24
)

func newGenState(seed int64) *genState {
	return &genState{r: rand.New(rand.NewSource(seed)), cache: make(map[string][]string)}
}

// render instantiates the template with random slot values.
func (t *template) render(g *genState) string {
	g.sb.Reset()
	for i, p := range t.parts {
		g.sb.WriteString(p)
		if i < len(t.slots) {
			g.renderSlot(t.slots[i])
		}
	}
	return g.sb.String()
}

// renderSlot writes one slot value, reusing a recent value of the same kind
// with probability localityP.
func (g *genState) renderSlot(s slot) {
	switch s.kind {
	case "word", "list", "smallint":
		// Low-cardinality kinds need no locality cache.
		renderSlotFresh(&g.sb, s, g.r)
		return
	}
	if vals := g.cache[s.kind]; len(vals) > 0 && g.r.Float64() < localityP {
		g.sb.WriteString(vals[g.r.Intn(len(vals))])
		return
	}
	g.tmp.Reset()
	renderSlotFresh(&g.tmp, s, g.r)
	v := g.tmp.String()
	ring := g.cache[s.kind]
	if len(ring) < cacheSize {
		ring = append(ring, v)
	} else {
		ring[g.r.Intn(cacheSize)] = v
	}
	g.cache[s.kind] = ring
	g.sb.WriteString(v)
}

func renderSlotFresh(sb *strings.Builder, s slot, r *rand.Rand) {
	switch s.kind {
	case "int":
		// Mixed magnitudes: counters and sizes repeat, offsets do not.
		switch r.Intn(3) {
		case 0:
			sb.WriteString(strconv.Itoa(r.Intn(100)))
		case 1:
			sb.WriteString(strconv.Itoa(r.Intn(1000)))
		default:
			sb.WriteString(strconv.Itoa(r.Intn(1000000)))
		}
	case "smallint":
		sb.WriteString(strconv.Itoa(r.Intn(100)))
	case "hex":
		fmt.Fprintf(sb, "0x%08x", r.Uint32())
	case "ip":
		fmt.Fprintf(sb, "10.%d.%d.%d", r.Intn(4), r.Intn(16), r.Intn(256))
	case "ipport":
		fmt.Fprintf(sb, "10.%d.%d.%d:%d", r.Intn(4), r.Intn(16), r.Intn(256), 1024+r.Intn(60000))
	case "uuid":
		fmt.Fprintf(sb, "%08x-%04x-%04x-%04x-%012x", r.Uint32(), r.Intn(0x10000), r.Intn(0x10000), r.Intn(0x10000), r.Int63n(1<<48))
	case "float":
		fmt.Fprintf(sb, "%.2f", r.Float64()*100)
	case "path":
		fmt.Fprintf(sb, "/var/data/part-%05d", r.Intn(2000))
	case "host":
		fmt.Fprintf(sb, "node-%03d", r.Intn(64))
	case "user":
		sb.WriteString(userPool[r.Intn(len(userPool))])
	case "pkg":
		sb.WriteString(pkgPool[r.Intn(len(pkgPool))])
	case "ts":
		fmt.Fprintf(sb, "2025-%02d-%02d %02d:%02d:%02d", 1+r.Intn(12), 1+r.Intn(28), r.Intn(24), r.Intn(60), r.Intn(60))
	case "dur":
		fmt.Fprintf(sb, "%dms", r.Intn(30000))
	case "ver":
		fmt.Fprintf(sb, "%d.%d.%d", 1+r.Intn(4), r.Intn(10), r.Intn(20))
	case "blk":
		fmt.Fprintf(sb, "blk_%d", 1608999687919860000+int64(r.Intn(4000)))
	case "pid":
		sb.WriteString(strconv.Itoa(100 + r.Intn(4000)))
	case "word":
		sb.WriteString(s.choices[r.Intn(len(s.choices))])
	case "list":
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(s.choices[r.Intn(len(s.choices))])
			sb.WriteString(strconv.Itoa(r.Intn(100)))
		}
	}
}

// userPool holds 72 user names so that user-name positions are clearly in
// variable territory (high absolute cardinality) rather than looking like
// small categorical constants.
var userPool = buildUserPool()

// pkgPool holds ~90 package/bundle identifiers; package names in messages
// like Android's "Start proc" are variables in the real ground truth, not
// template-defining constants.
var pkgPool = buildPkgPool()

func buildPkgPool() []string {
	vendors := []string{"com.android", "com.google.android", "com.tencent", "org.chromium", "com.netease", "io.grpc"}
	apps := []string{"mm", "gms", "chrome", "settings", "music", "maps", "camera", "dialer", "launcher", "keyboard", "mail", "calendar", "clock", "gallery", "store"}
	out := make([]string, 0, len(vendors)*len(apps))
	for _, v := range vendors {
		for _, a := range apps {
			out = append(out, v+"."+a)
		}
	}
	return out
}

func buildUserPool() []string {
	base := []string{
		"root", "admin", "daemon", "worker", "svc-ingest", "svc-index",
		"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
		"ivan", "judy", "mallory", "oscar", "peggy", "trent", "victor", "wendy",
	}
	out := make([]string, 0, len(base)+50)
	out = append(out, base...)
	for i := 0; i < 50; i++ {
		out = append(out, fmt.Sprintf("user%02d", i))
	}
	return out
}

// spec describes one dataset family; see datasets.go for the sixteen
// instances.
type spec struct {
	name string
	// logHub2Logs is the full LogHub-2.0 line count from Table 1 (0 for
	// the two LogHub-only datasets).
	logHub2Logs int
	// logHubTemplates / logHub2Templates are the Table-1 template counts.
	logHubTemplates  int
	logHub2Templates int
	// zipf shapes the template frequency distribution (s parameter).
	zipf float64
	// patterns are the base message shapes, possibly with {C:...}
	// expansion markers.
	patterns []string
	// flavors are the expansion constant pools referenced by {C:...}.
	flavors map[string][]string
}

// expand resolves the {C:...} markers of base with the combo-th constant
// combination. Markers advance diagonally — every marker indexed by combo,
// offset per marker — rather than as a mixed-radix cross product: real
// codebases pair each message with one or two components, not with every
// component, and a cross product would flood one message across the whole
// component pool (making categorical positions statistically
// indistinguishable from variables).
func (sp *spec) expand(base string, combo int) string {
	out := base
	marker := 0
	for {
		open := strings.Index(out, "{C:")
		if open < 0 {
			return out
		}
		closeIdx := strings.IndexByte(out[open:], '}')
		if closeIdx < 0 {
			return out // malformed; caught later by compile
		}
		closeIdx += open
		name := out[open+3 : closeIdx]
		pool := sp.flavors[name]
		if len(pool) == 0 {
			pool = []string{name}
		}
		pick := pool[(combo+marker*7)%len(pool)]
		marker++
		out = out[:open] + pick + out[closeIdx+1:]
	}
}

// buildTemplates expands the base patterns into exactly k distinct
// templates, deterministically. Genuine constant combinations are used
// first across all patterns; only when a full sweep yields nothing new do
// sequence-discriminated variants pad the remainder, and those are kept
// low-cardinality per family by spreading across patterns.
func (sp *spec) buildTemplates(k int) ([]*template, error) {
	seen := make(map[string]bool, k)
	var out []*template
	add := func(pattern string) error {
		seen[pattern] = true
		t, err := compile(len(out), pattern)
		if err != nil {
			return err
		}
		out = append(out, t)
		return nil
	}
	newInSweep := false
	for round := 0; len(out) < k; round++ {
		base := sp.patterns[round%len(sp.patterns)]
		combo := round / len(sp.patterns)
		if round%len(sp.patterns) == 0 {
			if combo > 0 && !newInSweep {
				break // genuine combinations exhausted
			}
			newInSweep = false
		}
		pattern := sp.expand(base, combo)
		if seen[pattern] {
			continue
		}
		newInSweep = true
		if err := add(pattern); err != nil {
			return nil, err
		}
	}
	// Pad with discriminated variants, round-robin over patterns so no
	// single family accumulates a high-cardinality suffix position. The
	// discriminator is alphabetic: a digit-bearing suffix would be
	// masked away by every digit-heuristic parser and turn the variants
	// into artificial collisions.
	for v := 0; len(out) < k; v++ {
		base := sp.patterns[v%len(sp.patterns)]
		pattern := sp.expand(base, v) + " " + alphaTag(v/len(sp.patterns))
		if seen[pattern] {
			continue
		}
		if err := add(pattern); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// alphaTag encodes n as a short letters-only discriminator token ("qa",
// "qb", …, "qba", …).
func alphaTag(n int) string {
	buf := []byte{'q'}
	for {
		buf = append(buf, byte('a'+n%26))
		n /= 26
		if n == 0 {
			return string(buf)
		}
	}
}

// generate renders n lines over templates with Zipf-distributed template
// choice.
func generate(name string, templates []*template, n int, zipfS float64, seed int64) *Dataset {
	g := newGenState(seed)
	if zipfS <= 1 {
		zipfS = 1.2
	}
	z := rand.NewZipf(g.r, zipfS, 1, uint64(len(templates)-1))
	ds := &Dataset{
		Name:         name,
		Lines:        make([]string, 0, n),
		Truth:        make([]int, 0, n),
		NumTemplates: len(templates),
	}
	for i := 0; i < n; i++ {
		var ti int
		if i < len(templates) {
			// Guarantee every template appears at least once, as in the
			// labeled benchmark cuts.
			ti = i
		} else {
			ti = int(z.Uint64())
		}
		line := templates[ti].render(g)
		ds.Lines = append(ds.Lines, line)
		ds.Truth = append(ds.Truth, templates[ti].id)
		ds.Bytes += int64(len(line)) + 1
	}
	// Shuffle so the guaranteed-first occurrences do not cluster at the
	// head of the stream.
	g.r.Shuffle(len(ds.Lines), func(i, j int) {
		ds.Lines[i], ds.Lines[j] = ds.Lines[j], ds.Lines[i]
		ds.Truth[i], ds.Truth[j] = ds.Truth[j], ds.Truth[i]
	})
	return ds
}

// Names returns all sixteen LogHub dataset names in Table-1 order.
func Names() []string {
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LogHub2Names returns the fourteen datasets present in LogHub-2.0
// (Android and Windows are LogHub-only).
func LogHub2Names() []string {
	var names []string
	for _, n := range Names() {
		if specs[n].logHub2Logs > 0 {
			names = append(names, n)
		}
	}
	return names
}

// LogHubLines is the labeled cut size of every LogHub dataset.
const LogHubLines = 2000

// LogHub generates the 2,000-line LogHub cut of the named dataset.
func LogHub(name string, seed int64) (*Dataset, error) {
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	templates, err := sp.buildTemplates(sp.logHubTemplates)
	if err != nil {
		return nil, err
	}
	return generate(name, templates, LogHubLines, sp.zipf, seed), nil
}

// LogHub2 generates a LogHub-2.0 cut scaled to scale × the Table-1 line
// count (scale 1.0 reproduces the full volume; experiments default to a
// small fraction to keep runtimes in minutes). The template count is the
// full Table-1 value regardless of scale.
func LogHub2(name string, scale float64, seed int64) (*Dataset, error) {
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown dataset %q", name)
	}
	if sp.logHub2Logs == 0 {
		return nil, fmt.Errorf("datagen: %s is not part of LogHub-2.0", name)
	}
	if scale <= 0 {
		scale = 1
	}
	n := int(float64(sp.logHub2Logs) * scale)
	// Keep scaled cuts meaningful: at least the LogHub cut size and two
	// lines per template, but never above the paper's full volume.
	if min := sp.logHub2Templates * 2; n < min {
		n = min
	}
	if n < LogHubLines {
		n = LogHubLines
	}
	if n > sp.logHub2Logs {
		n = sp.logHub2Logs
	}
	templates, err := sp.buildTemplates(sp.logHub2Templates)
	if err != nil {
		return nil, err
	}
	return generate(name, templates, n, sp.zipf, seed), nil
}

// FullLogHub2Lines returns the Table-1 LogHub-2.0 line count for name (0
// if absent), letting callers report the paper-scale volume alongside the
// scaled cut actually generated.
func FullLogHub2Lines(name string) int {
	if sp, ok := specs[name]; ok {
		return sp.logHub2Logs
	}
	return 0
}

// TemplateCounts returns the Table-1 template counts (LogHub, LogHub-2.0)
// for name; zeros if unknown.
func TemplateCounts(name string) (logHub, logHub2 int) {
	if sp, ok := specs[name]; ok {
		return sp.logHubTemplates, sp.logHub2Templates
	}
	return 0, 0
}
