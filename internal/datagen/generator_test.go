package datagen

import (
	"strings"
	"testing"
)

func TestNamesAndLogHub2Names(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("Names() = %d datasets, want 16 (Table 1)", len(names))
	}
	lh2 := LogHub2Names()
	if len(lh2) != 14 {
		t.Fatalf("LogHub2Names() = %d datasets, want 14", len(lh2))
	}
	for _, n := range lh2 {
		if n == "Android" || n == "Windows" {
			t.Errorf("%s should be LogHub-only", n)
		}
	}
}

func TestLogHubDatasetShapes(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ds, err := LogHub(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(ds.Lines) != LogHubLines {
				t.Errorf("%s lines = %d, want %d", name, len(ds.Lines), LogHubLines)
			}
			if len(ds.Truth) != len(ds.Lines) {
				t.Fatal("truth/lines length mismatch")
			}
			wantT, _ := TemplateCounts(name)
			if ds.NumTemplates != wantT {
				t.Errorf("%s templates = %d, want %d (Table 1)", name, ds.NumTemplates, wantT)
			}
			// Every template is represented at least once.
			seen := map[int]bool{}
			for _, id := range ds.Truth {
				if id < 0 || id >= ds.NumTemplates {
					t.Fatalf("truth id %d out of range", id)
				}
				seen[id] = true
			}
			if len(seen) != ds.NumTemplates {
				t.Errorf("%s: only %d of %d templates appear", name, len(seen), ds.NumTemplates)
			}
			for _, l := range ds.Lines {
				if l == "" {
					t.Fatal("empty log line generated")
				}
				if strings.Contains(l, "{") && strings.Contains(l, ":") && strings.Contains(l, "{C:") {
					t.Fatalf("unexpanded constant marker in %q", l)
				}
			}
			if ds.Bytes <= 0 {
				t.Error("byte size not tracked")
			}
		})
	}
}

func TestLogHub2Scaled(t *testing.T) {
	for _, name := range LogHub2Names() {
		ds, err := LogHub2(name, 0.002, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, wantT := TemplateCounts(name)
		if ds.NumTemplates != wantT {
			t.Errorf("%s templates = %d, want %d", name, ds.NumTemplates, wantT)
		}
		if len(ds.Lines) < wantT*2 {
			t.Errorf("%s too few lines: %d", name, len(ds.Lines))
		}
	}
}

func TestLogHub2RejectsLogHubOnly(t *testing.T) {
	if _, err := LogHub2("Android", 0.1, 1); err == nil {
		t.Error("LogHub2 accepted Android")
	}
	if _, err := LogHub2("Windows", 0.1, 1); err == nil {
		t.Error("LogHub2 accepted Windows")
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := LogHub("NotADataset", 1); err == nil {
		t.Error("LogHub accepted unknown dataset")
	}
	if _, err := LogHub2("NotADataset", 1, 1); err == nil {
		t.Error("LogHub2 accepted unknown dataset")
	}
}

func TestGenerationDeterministic(t *testing.T) {
	a, err := LogHub("HDFS", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LogHub("HDFS", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] || a.Truth[i] != b.Truth[i] {
			t.Fatalf("line %d differs across identical seeds", i)
		}
	}
	c, err := LogHub("HDFS", 8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Lines {
		if a.Lines[i] == c.Lines[i] {
			same++
		}
	}
	if same == len(a.Lines) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestZipfSkewProducesDuplicates(t *testing.T) {
	// The Fig. 4 premise: log data is highly duplicated, and duplication
	// increases further after variable replacement. Check raw duplicates
	// and template-frequency skew on the large datasets.
	for _, name := range []string{"HDFS", "Thunderbird", "Linux", "Hadoop"} {
		ds, err := LogHub2(name, 0.005, 3)
		if err != nil {
			t.Fatal(err)
		}
		uniq := map[string]bool{}
		for _, l := range ds.Lines {
			uniq[l] = true
		}
		if len(uniq) == len(ds.Lines) {
			t.Errorf("%s: no duplicate raw lines at all", name)
		}
		freq := map[int]int{}
		for _, id := range ds.Truth {
			freq[id]++
		}
		max := 0
		for _, c := range freq {
			if c > max {
				max = c
			}
		}
		uniform := len(ds.Lines) / ds.NumTemplates
		if max < uniform*3 {
			t.Errorf("%s: head template count %d not skewed vs uniform %d", name, max, uniform)
		}
	}
}

func TestCompileRejectsBadPatterns(t *testing.T) {
	if _, err := compile(0, "text {unclosed"); err == nil {
		t.Error("compile accepted unclosed marker")
	}
	if _, err := compile(0, "text {nosuchslot} end"); err == nil {
		t.Error("compile accepted unknown slot")
	}
}

func TestCompileAndRenderRoundTrip(t *testing.T) {
	tmpl, err := compile(0, "job {int} on {host} took {dur} status {word:ok|failed}")
	if err != nil {
		t.Fatal(err)
	}
	g := newGenState(1)
	line := tmpl.render(g)
	if !strings.HasPrefix(line, "job ") || !strings.Contains(line, " on node-") {
		t.Errorf("rendered line %q lacks literal structure", line)
	}
	if !strings.Contains(line, "status ok") && !strings.Contains(line, "status failed") {
		t.Errorf("word slot not rendered: %q", line)
	}
}

func TestListSlotVariableLength(t *testing.T) {
	tmpl, err := compile(0, "users={list:u}")
	if err != nil {
		t.Fatal(err)
	}
	g := newGenState(2)
	lengths := map[int]bool{}
	for i := 0; i < 50; i++ {
		line := tmpl.render(g)
		lengths[len(strings.Fields(line))] = true
	}
	if len(lengths) < 2 {
		t.Error("list slot never varied token count")
	}
}

func TestExpandDistinctCombos(t *testing.T) {
	sp := &spec{
		flavors: map[string][]string{
			"a": {"x", "y"},
			"b": {"1", "2", "3"},
		},
	}
	seen := map[string]bool{}
	for combo := 0; combo < 6; combo++ {
		seen[sp.expand("p {C:a} {C:b}", combo)] = true
	}
	if len(seen) != 6 {
		t.Errorf("expand yielded %d distinct strings from 6 combos, want 6", len(seen))
	}
}

func TestBuildTemplatesExactCount(t *testing.T) {
	for _, name := range Names() {
		sp := specs[name]
		for _, k := range []int{sp.logHubTemplates, sp.logHub2Templates} {
			if k == 0 {
				continue
			}
			ts, err := sp.buildTemplates(k)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(ts) != k {
				t.Errorf("%s: built %d templates, want %d", name, len(ts), k)
			}
			for i, tm := range ts {
				if tm.id != i {
					t.Errorf("%s: template %d has id %d", name, i, tm.id)
				}
			}
		}
	}
}

func TestFullLogHub2LinesTable1(t *testing.T) {
	// Spot-check Table-1 volumes.
	if got := FullLogHub2Lines("HDFS"); got != 11167740 {
		t.Errorf("HDFS full lines = %d", got)
	}
	if got := FullLogHub2Lines("Thunderbird"); got != 16601745 {
		t.Errorf("Thunderbird full lines = %d", got)
	}
	if got := FullLogHub2Lines("Android"); got != 0 {
		t.Errorf("Android should have no LogHub-2.0 volume, got %d", got)
	}
}
