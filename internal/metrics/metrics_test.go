package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestGroupingAccuracyPerfect(t *testing.T) {
	pred := []int{1, 1, 2, 2, 3}
	truth := []int{7, 7, 9, 9, 4}
	ga, err := GroupingAccuracy(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ga != 1.0 {
		t.Errorf("GA = %v, want 1.0", ga)
	}
}

func TestGroupingAccuracySplitGroupScoresZero(t *testing.T) {
	// Truth has one group of 4; prediction splits it 2/2. Every log in
	// both halves is wrong under the strict definition.
	pred := []int{1, 1, 2, 2}
	truth := []int{5, 5, 5, 5}
	ga, err := GroupingAccuracy(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ga != 0 {
		t.Errorf("GA = %v, want 0 for a split group", ga)
	}
}

func TestGroupingAccuracyPollutedGroupScoresZero(t *testing.T) {
	// Prediction merges two true groups: all 4 logs wrong.
	pred := []int{1, 1, 1, 1}
	truth := []int{5, 5, 6, 6}
	ga, err := GroupingAccuracy(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ga != 0 {
		t.Errorf("GA = %v, want 0 for a merged group", ga)
	}
}

func TestGroupingAccuracyPartial(t *testing.T) {
	// Group A (3 logs) correct; group B (2 logs) split.
	pred := []int{1, 1, 1, 2, 3}
	truth := []int{5, 5, 5, 6, 6}
	ga, err := GroupingAccuracy(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ga-0.6) > 1e-12 {
		t.Errorf("GA = %v, want 0.6", ga)
	}
}

func TestGroupingAccuracyLengthMismatch(t *testing.T) {
	if _, err := GroupingAccuracy([]int{1}, []int{1, 2}); err == nil {
		t.Error("no error for mismatched lengths")
	}
}

func TestGroupingAccuracyEmpty(t *testing.T) {
	ga, err := GroupingAccuracy(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ga != 1 {
		t.Errorf("GA(empty) = %v, want 1", ga)
	}
}

func TestGroupingAccuracyLabelRenamingInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	truth := make([]int, 200)
	pred := make([]int, 200)
	for i := range truth {
		truth[i] = r.Intn(10)
		pred[i] = truth[i] // perfect, then rename labels
	}
	renamed := make([]int, len(pred))
	for i, p := range pred {
		renamed[i] = 1000 - p*7
	}
	a, _ := GroupingAccuracy(pred, truth)
	b, _ := GroupingAccuracy(renamed, truth)
	if a != b || a != 1.0 {
		t.Errorf("GA not invariant to label renaming: %v vs %v", a, b)
	}
}

func TestGroupingAccuracySingletonGroups(t *testing.T) {
	// All singletons predicted, truth also singletons: perfect.
	pred := []int{1, 2, 3}
	truth := []int{9, 8, 7}
	ga, _ := GroupingAccuracy(pred, truth)
	if ga != 1.0 {
		t.Errorf("GA = %v, want 1.0", ga)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Errorf("Throughput = %v, want 1000", got)
	}
	if got := Throughput(500, 250*time.Millisecond); got != 2000 {
		t.Errorf("Throughput = %v, want 2000", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Errorf("Throughput with zero duration = %v, want 0", got)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Errorf("std = %v, want 2", std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("MeanStd(nil) nonzero")
	}
	if m, s := MeanStd([]float64{3}); m != 3 || s != 0 {
		t.Errorf("MeanStd single = %v,%v", m, s)
	}
}
