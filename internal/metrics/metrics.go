// Package metrics implements the paper's evaluation metrics (§5.1.3):
// Grouping Accuracy and throughput.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// GroupingAccuracy computes GA: the fraction of logs that are correctly
// grouped, where a log counts as correct only when its predicted group
// contains exactly the set of logs sharing its ground-truth template. This
// is the strict metric of He et al. used throughout the paper: a predicted
// group that splits or pollutes a true group scores zero for every log in
// it.
//
// pred and truth are parallel slices of group labels (any integer IDs).
func GroupingAccuracy(pred, truth []int) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: pred has %d labels, truth has %d", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 1, nil
	}
	truthSize := make(map[int]int)
	for _, t := range truth {
		truthSize[t]++
	}
	// For each predicted group: the single truth label of its members (or
	// -1 when mixed) and its size.
	type groupInfo struct {
		label int
		size  int
		mixed bool
	}
	groups := make(map[int]*groupInfo)
	for i, p := range pred {
		g, ok := groups[p]
		if !ok {
			groups[p] = &groupInfo{label: truth[i], size: 1}
			continue
		}
		g.size++
		if g.label != truth[i] {
			g.mixed = true
		}
	}
	correct := 0
	for _, g := range groups {
		if !g.mixed && g.size == truthSize[g.label] {
			correct += g.size
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// Throughput reports logs per second for n logs processed in elapsed time,
// the combined training-plus-matching rate the paper reports.
func Throughput(n int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// MeanStd returns the mean and population standard deviation of xs, the
// "avg ± std" summary used in Tables 2 and 3.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
