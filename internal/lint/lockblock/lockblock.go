// Package lockblock implements the bbvet lock-across-blocking analyzer:
// in internal/service and internal/logstore, no potentially-blocking
// operation may run while a sync.Mutex or sync.RWMutex is held.
//
// Blocking under a lock is how the ingest path deadlocks or convoys:
// a channel send that waits for a slow consumer, a net.Conn write that
// waits for a stalled client, or a store Append that waits on group
// commit — all while every other goroutine queues on the mutex.
//
// Flagged while a lock is held:
//   - channel send / receive / range over a channel
//   - select without a default case
//   - Read/Write (and friends) on net.Conn-style types
//   - Append* calls through the logstore Store/Compactor interfaces
//
// Non-blocking shapes are exempt: a select WITH a default case, and
// concrete in-memory Append implementations (the CompactingStore
// buffers its hot block under its own lock by design — only calls
// through the interface, whose implementation the caller cannot see,
// are findings).
//
// The tracking is a source-order walk, not a CFG: an Unlock inside a
// conditional clears the held state for everything after it. That
// trades a class of missed findings for zero false positives on the
// unlock-early idiom.
package lockblock

import (
	"go/ast"
	"go/types"

	"bytebrain/internal/lint"
)

// Analyzer is the lock-across-blocking analyzer.
var Analyzer = &lint.Analyzer{
	Name:     "lockblock",
	Doc:      "no channel op, net.Conn I/O or interface Append* while a mutex is held",
	Packages: []string{"internal/service", "internal/logstore"},
	Run:      run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *lint.Pass
	held map[string]bool
}

// checkFunc walks one function body in source order, tracking the set
// of held mutexes. Function literals get a fresh tracker: they
// overwhelmingly run on another goroutine (go/defer), which does not
// inherit the caller's critical section.
func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, held: map[string]bool{}}
	c.inspect(body)
}

func (c *checker) inspect(n ast.Node) {
	ast.Inspect(n, c.dispatch)
}

// dispatch handles one node under the current held-set; returns whether
// ast.Inspect should descend.
func (c *checker) dispatch(n ast.Node) bool {
	switch s := n.(type) {
	case *ast.FuncLit:
		checkFunc(c.pass, s.Body)
		return false
	case *ast.DeferStmt:
		// defer mu.Unlock() holds the lock to function end; any other
		// deferred call runs after the body, outside our source-order
		// window — skip it either way.
		return false
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			checkFunc(c.pass, lit.Body)
		}
		return false
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(c.held) > 0 {
			c.pass.Reportf(s.Pos(), "select without default while %s is held", c.heldNames())
		}
		// The comm ops are covered: by the select-level finding when it
		// blocks, or by the default case when it doesn't. Walk only the
		// clause bodies.
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				for _, st := range cc.Body {
					c.inspect(st)
				}
			}
		}
		return false
	case *ast.SendStmt:
		if len(c.held) > 0 {
			c.pass.Reportf(s.Pos(), "channel send while %s is held", c.heldNames())
		}
	case *ast.UnaryExpr:
		if s.Op.String() == "<-" && len(c.held) > 0 {
			c.pass.Reportf(s.Pos(), "channel receive while %s is held", c.heldNames())
		}
	case *ast.RangeStmt:
		if len(c.held) > 0 && c.isChan(s.X) {
			c.pass.Reportf(s.Pos(), "range over channel while %s is held", c.heldNames())
		}
	case *ast.CallExpr:
		c.call(s)
	}
	return true
}

func (c *checker) call(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if c.isMutex(sel.X) {
		key := types.ExprString(sel.X)
		switch name {
		case "Lock", "RLock":
			c.held[key] = true
		case "Unlock", "RUnlock":
			delete(c.held, key)
		}
		return
	}
	if len(c.held) == 0 {
		return
	}
	if c.isNetType(sel.X) {
		switch name {
		case "Read", "Write", "ReadFrom", "WriteTo":
			c.pass.Reportf(call.Pos(), "%s.%s (network I/O) while %s is held", types.ExprString(sel.X), name, c.heldNames())
		}
		return
	}
	if len(name) > 6 && name[:6] == "Append" && c.isStoreInterface(sel.X) {
		c.pass.Reportf(call.Pos(), "store %s through the Store interface while %s is held; the implementation may block on group commit", name, c.heldNames())
	}
}

func (c *checker) heldNames() string {
	names := make([]string, 0, len(c.held))
	for k := range c.held {
		names = append(names, k)
	}
	// Deterministic order for multi-lock messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}

func (c *checker) typeOf(expr ast.Expr) types.Type {
	tv, ok := c.pass.Info.Types[expr]
	if !ok {
		return nil
	}
	return tv.Type
}

func (c *checker) isMutex(expr ast.Expr) bool {
	t := c.typeOf(expr)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func (c *checker) isChan(expr ast.Expr) bool {
	t := c.typeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isNetType reports whether expr's type is declared in package net
// (net.Conn, *net.TCPConn, ...).
func (c *checker) isNetType(expr ast.Expr) bool {
	t := c.typeOf(expr)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// isStoreInterface reports whether expr is typed as one of the logstore
// storage interfaces (Store, Compactor) — the shapes whose Append*
// implementations may block on WAL group commit.
func (c *checker) isStoreInterface(expr ast.Expr) bool {
	t := c.typeOf(expr)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "logstore" {
		return false
	}
	return obj.Name() == "Store" || obj.Name() == "Compactor"
}
