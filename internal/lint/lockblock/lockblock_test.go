package lockblock_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/linttest"
	"bytebrain/internal/lint/lockblock"
)

func TestGoldenFindings(t *testing.T) {
	res := linttest.Run(t, lockblock.Analyzer, filepath.Join("testdata", "src", "logstore"))
	if got := res.Suppressed["lockblock"]; got != 1 {
		t.Errorf("suppressed count = %d, want 1", got)
	}
}
