// Fixture for the lock-across-blocking analyzer: blocking operations
// under a sync.Mutex/RWMutex — channel ops, select without default,
// net.Conn I/O, and Append* through the storage interfaces.
package logstore

import (
	"net"
	"sync"
)

type Store interface {
	Append(line string) error
	AppendBatch(lines []string) error
}

type hotBlock struct {
	lines []string
}

func (h *hotBlock) AppendBatch(lines []string) { h.lines = append(h.lines, lines...) }

type server struct {
	mu    sync.Mutex
	state sync.RWMutex
	ch    chan int
	store Store
	hot   *hotBlock
	conn  net.Conn
}

func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) recvUnderLock() int {
	s.state.RLock()
	defer s.state.RUnlock()
	return <-s.ch // want "channel receive while s.state is held"
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while s.mu is held"
	case v := <-s.ch:
		_ = v
	case s.ch <- 0:
	}
}

// kick is the exempt non-blocking shape: select with a default.
func (s *server) kick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *server) rangeUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for v := range s.ch { // want "range over channel while s.mu is held"
		n += v
	}
	return n
}

func (s *server) connWriteUnderLock(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(b) // want "network I/O"
}

func (s *server) appendUnderLock(lines []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.AppendBatch(lines) // want "AppendBatch through the Store interface"
}

// appendHotUnderLock is the exempt concrete shape: the in-memory hot
// block buffers under the store's own lock by design.
func (s *server) appendHotUnderLock(lines []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hot.AppendBatch(lines)
}

// unlockEarly releases before blocking — no finding.
func (s *server) unlockEarly(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// goroutineBody is a fresh scope: the literal runs unlocked.
func (s *server) goroutineBody(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

func (s *server) suppressed(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//bbvet:ignore lockblock fixture exercises a counted suppression
	s.ch <- v
}
