package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks packages of one module without shelling out to the
// go tool: module-internal imports are resolved straight to their
// directories, everything else is handed to the compiler's source
// importer. Analysis covers non-test files only — the invariants bbvet
// encodes are production-code invariants, and tests legitimately ignore
// errors and use non-bb_ metric names.
//
// The loader is safe for concurrent use: LoadAll fans package checks out
// across workers, the per-path cache is singleflighted (the first caller
// checks, everyone else waits on its result), and the compiler's source
// importer — which is not concurrency-safe — sits behind its own mutex.
// token.FileSet and completed *types.Packages are safe to share.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	std   types.ImporterFrom
	stdMu sync.Mutex // srcimporter is not safe for concurrent Import calls

	mu    sync.Mutex
	cache map[string]*loadEntry
}

// loadEntry singleflights one package load: the creator closes done when
// pkg/err are final; late arrivals block on done instead of re-checking.
type loadEntry struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader builds a loader for the module rooted at modroot (the
// directory holding go.mod).
func NewLoader(modroot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modroot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", modroot)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModRoot: modroot,
		ModPath: modpath,
		Fset:    fset,
		std:     std,
		cache:   map[string]*loadEntry{},
	}, nil
}

// LoadAll loads every package in the module, sorted by import path,
// fanning the type-checking out across GOMAXPROCS workers.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadAllParallel(runtime.GOMAXPROCS(0))
}

// LoadAllParallel is LoadAll with an explicit worker count. The result
// order is always the sorted-import-path order regardless of workers.
func (l *Loader) LoadAllParallel(workers int) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	if workers < 1 {
		workers = 1
	}
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		wg.Add(1)
		go func(i int, pkgPath, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pkgs[i], errs[i] = l.load(pkgPath, dir)
		}(i, pkgPath, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the package in dir, caching by import
// path so diamond imports check once. Concurrent loads of the same path
// coalesce: whoever creates the cache entry does the work, later
// callers wait on it (the import graph is acyclic, so waiting cannot
// deadlock).
func (l *Loader) load(pkgPath, dir string) (*Package, error) {
	l.mu.Lock()
	if e, ok := l.cache[pkgPath]; ok {
		l.mu.Unlock()
		<-e.done
		return e.pkg, e.err
	}
	e := &loadEntry{done: make(chan struct{})}
	l.cache[pkgPath] = e
	l.mu.Unlock()
	e.pkg, e.err = l.check(pkgPath, dir)
	close(e.done)
	return e.pkg, e.err
}

// check does the actual parse + type-check for load.
func (l *Loader) check(pkgPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, n), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// moduleImporter resolves module-internal imports directly and defers
// everything else (stdlib) to the compiler's source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.ModRoot, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.ModPath || strings.HasPrefix(path, m.ModPath+"/") {
		dir := m.ModRoot
		if rel := strings.TrimPrefix(path, m.ModPath); rel != "" {
			dir = filepath.Join(m.ModRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		}
		p, err := (*Loader)(m).load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	// The compiler's source importer mutates internal state on every
	// Import; serialize it (it memoizes, so contention is first-hit only).
	m.stdMu.Lock()
	defer m.stdMu.Unlock()
	return m.std.ImportFrom(path, srcDir, mode)
}
