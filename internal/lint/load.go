package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader type-checks packages of one module without shelling out to the
// go tool: module-internal imports are resolved straight to their
// directories, everything else is handed to the compiler's source
// importer. Analysis covers non-test files only — the invariants bbvet
// encodes are production-code invariants, and tests legitimately ignore
// errors and use non-bb_ metric names.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader builds a loader for the module rooted at modroot (the
// directory holding go.mod).
func NewLoader(modroot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modroot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", modroot)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModRoot: modroot,
		ModPath: modpath,
		Fset:    fset,
		std:     std,
		cache:   map[string]*Package{},
	}, nil
}

// LoadAll loads every package in the module, sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(pkgPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// load parses and type-checks the package in dir, caching by import
// path so diamond imports check once.
func (l *Loader) load(pkgPath, dir string) (*Package, error) {
	if p, ok := l.cache[pkgPath]; ok {
		return p, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", filepath.Join(dir, n), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	p := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.cache[pkgPath] = p
	return p, nil
}

// moduleImporter resolves module-internal imports directly and defers
// everything else (stdlib) to the compiler's source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.ModRoot, 0)
}

func (m *moduleImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.ModPath || strings.HasPrefix(path, m.ModPath+"/") {
		dir := m.ModRoot
		if rel := strings.TrimPrefix(path, m.ModPath); rel != "" {
			dir = filepath.Join(m.ModRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
		}
		p, err := (*Loader)(m).load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.ImportFrom(path, srcDir, mode)
}
