package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"bytebrain/internal/lint"
)

// boomcheck flags every call to a function literally named boom —
// a minimal analyzer to exercise the driver's suppression machinery.
var boomcheck = &lint.Analyzer{
	Name: "boomcheck",
	Doc:  "flags calls to boom",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "call to boom")
				}
				return true
			})
		}
		return nil
	},
}

func loadSrc(t *testing.T, src string) *lint.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "directives.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &lint.Package{
		PkgPath: "p",
		Fset:    fset,
		Files:   []*ast.File{file},
		Types:   tpkg,
		Info:    info,
	}
}

func TestSuppressions(t *testing.T) {
	pkg := loadSrc(t, `package p

func boom() {}

func f() {
	boom() // line 6: unsuppressed
	//bbvet:ignore boomcheck deliberate in this test
	boom() // line 8: suppressed by the line above
	boom() //bbvet:ignore boomcheck suppressed on the same line
	//bbvet:ignore boomcheck
	boom() // line 11: directive missing its reason
	//bbvet:ignore all reasons apply to every analyzer
	boom() // line 13: suppressed via the all keyword
	//bbvet:ignore otheranalyzer wrong analyzer name
	boom() // line 15: unsuppressed
}
`)
	res, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{boomcheck}, true)
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range res.Findings {
		lines = append(lines, f.Pos.Line)
	}
	if len(lines) != 3 || lines[0] != 6 || lines[1] != 11 || lines[2] != 15 {
		t.Errorf("finding lines = %v, want [6 11 15]", lines)
	}
	if got := res.Suppressed["boomcheck"]; got != 3 {
		t.Errorf("suppressed = %d, want 3", got)
	}
	if len(res.BadDirectives) != 1 {
		t.Fatalf("bad directives = %d, want 1: %v", len(res.BadDirectives), res.BadDirectives)
	}
	bd := res.BadDirectives[0]
	if bd.Pos.Line != 10 || !strings.Contains(bd.Message, "no reason") {
		t.Errorf("bad directive = %v, want line 10 mentioning the missing reason", bd)
	}
}

func TestScopeEnforcement(t *testing.T) {
	pkg := loadSrc(t, `package p

func boom() {}

func f() { boom() }
`)
	scoped := &lint.Analyzer{
		Name:     "boomcheck",
		Doc:      boomcheck.Doc,
		Packages: []string{"internal/elsewhere"},
		Run:      boomcheck.Run,
	}
	res, err := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{scoped}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("scoped analyzer ran out of scope: %v", res.Findings)
	}
	res, err = lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{scoped}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Errorf("scope filter applied with enforceScope=false: %v", res.Findings)
	}
}
