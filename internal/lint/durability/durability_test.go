package durability_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/durability"
	"bytebrain/internal/lint/linttest"
)

func TestGoldenFindings(t *testing.T) {
	res := linttest.Run(t, durability.Analyzer, filepath.Join("testdata", "src", "logstore"))
	if got := res.Suppressed["durability"]; got != 1 {
		t.Errorf("suppressed count = %d, want 1", got)
	}
}

func TestScope(t *testing.T) {
	a := durability.Analyzer
	for path, want := range map[string]bool{
		"bytebrain/internal/logstore": true,
		"bytebrain/internal/segment":  true,
		"bytebrain/internal/fsx":      true,
		"bytebrain/internal/service":  false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
