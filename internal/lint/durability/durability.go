// Package durability implements the bbvet durability-errcheck analyzer:
// on write paths (internal/logstore, internal/segment, internal/fsx)
// the results of os.Rename/os.Remove/os.Truncate, (*os.File).Sync/Close,
// the mutating fsx.FS methods and fsx.File Write/Sync/Close (the
// filesystem seam those paths actually write through), and every
// error-returning method on the WAL types (walWriter, walSink) must be
// consumed. Discarding them is the PR 3 bug class — a quarantine rename
// that failed silently and reported durable ingest anyway.
//
// Two idioms are exempt:
//
//   - defer f.Close() — the read-path convenience close, where the file
//     was only read and the error carries no durability signal;
//   - best-effort cleanup inside a block that ends by returning an
//     already-raised error (e.g. f.Close(); os.Remove(tmp); return err)
//     — the operation has failed and is being unwound, so the cleanup
//     error cannot mask success.
//
// Writing `_ = f.Sync()` does NOT exempt: blanking the error is exactly
// the bug, not an acknowledgement of it.
package durability

import (
	"go/ast"
	"go/token"
	"go/types"

	"bytebrain/internal/lint"
)

// Analyzer is the durability-errcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name:     "durability",
	Doc:      "results of renames, removes, fsyncs and WAL writes on storage write paths must be consumed",
	Packages: []string{"internal/logstore", "internal/segment", "internal/fsx"},
	Run:      run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		exempt := cleanupRanges(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.DeferStmt:
				// defer f.Close() is the read-path idiom; deferred
				// renames/removes/syncs still count as discarded.
				if name, ok := targetCall(pass, s.Call); ok && name != "Close" && name != "close" {
					pass.Reportf(s.Call.Pos(), "error from deferred %s is discarded on a durability path", callLabel(s.Call, name))
				}
				return false
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := targetCall(pass, call); ok && !inRanges(exempt, call.Pos()) {
					pass.Reportf(call.Pos(), "error from %s is discarded on a durability path", callLabel(call, name))
				}
				return true
			case *ast.AssignStmt:
				if !allBlank(s.Lhs) || len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := targetCall(pass, call); ok && !inRanges(exempt, call.Pos()) {
					pass.Reportf(call.Pos(), "error from %s is blanked with _ on a durability path; check or record it", callLabel(call, name))
				}
				return true
			}
			return true
		})
	}
	return nil
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}

// cleanupRanges returns the spans of branch bodies (if/else, switch and
// select cases — never a whole function body) that end with a `return`
// carrying a non-nil error value: the best-effort-cleanup-while-
// unwinding exemption.
func cleanupRanges(pass *lint.Pass, file *ast.File) []posRange {
	var out []posRange
	addList := func(list []ast.Stmt) {
		if len(list) < 2 {
			return
		}
		ret, ok := list[len(list)-1].(*ast.ReturnStmt)
		if !ok || !returnsNonNilError(pass, ret) {
			return
		}
		out = append(out, posRange{list[0].Pos(), ret.Pos()})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.IfStmt:
			addList(b.Body.List)
			if blk, ok := b.Else.(*ast.BlockStmt); ok {
				addList(blk.List)
			}
		case *ast.CaseClause:
			addList(b.Body)
		case *ast.CommClause:
			addList(b.Body)
		}
		return true
	})
	return out
}

func returnsNonNilError(pass *lint.Pass, ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		if id, ok := r.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if tv, ok := pass.Info.Types[r]; ok && isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// targetCall reports whether call is a durability-relevant operation
// that returns an error. The second return is the callee name used in
// the finding message.
func targetCall(pass *lint.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !returnsError(pass, call) {
		return "", false
	}
	name := sel.Sel.Name
	// os.Rename / os.Remove / os.RemoveAll / os.Truncate.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			if obj.Imported().Path() == "os" {
				switch name {
				case "Rename", "Remove", "RemoveAll", "Truncate":
					return name, true
				}
			}
			return "", false
		}
	}
	recv := pass.Info.Types[sel.X].Type
	if recv == nil {
		return "", false
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	// (*os.File).Sync / Close.
	if obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "File" {
		if name == "Sync" || name == "Close" {
			return name, true
		}
		return "", false
	}
	// The fsx filesystem seam: mutating FS methods and the write-side
	// File methods carry the same durability weight as their os
	// counterparts. Matching by package name keeps the analyzer working
	// against both the real internal/fsx and test fixtures.
	if obj.Pkg() != nil && obj.Pkg().Name() == "fsx" {
		switch obj.Name() {
		case "FS":
			switch name {
			case "Rename", "Remove", "Truncate", "MkdirAll", "SyncDir", "WriteFile":
				return name, true
			}
		case "File":
			switch name {
			case "Write", "Sync", "Close":
				return name, true
			}
		}
		return "", false
	}
	// Every error-returning method on the WAL types of the package
	// under analysis.
	if obj.Pkg() == pass.Pkg {
		switch obj.Name() {
		case "walWriter", "walSink":
			return name, true
		}
	}
	return "", false
}

func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func callLabel(call *ast.CallExpr, name string) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + name
	}
	return name
}
