// Fixture for the durability-errcheck analyzer. The quarantine
// function reintroduces the PR 3 bug verbatim in shape: recovery moved
// a corrupt segment aside with an unchecked os.Rename, so a failed
// quarantine silently reported success and the bad file shadowed the
// WAL again on the next open.
package logstore

import "os"

type walWriter struct {
	f *os.File
}

func (w *walWriter) append(b []byte) error { return nil }

func (w *walWriter) flush() error { return nil }

func (w *walWriter) close() error { return w.f.Close() }

type walSink interface {
	append(b []byte) error
	close() error
}

func quarantine(path string) {
	os.Rename(path, path+".bad") // want "os.Rename"
	os.Remove(path + ".tmp")     // want "os.Remove"
}

func writePath(w *walWriter, sink walSink, data []byte) error {
	w.append(data)    // want "w.append"
	_ = w.flush()     // want "blanked with _"
	sink.append(data) // want "sink.append"
	if err := w.f.Sync(); err != nil {
		w.f.Close()    // exempt: cleanup while unwinding an error
		os.Remove("x") // exempt: cleanup while unwinding an error
		return err
	}
	return w.close()
}

func readPath(f *os.File) error {
	defer f.Close() // exempt: read-path defer
	return nil
}

func deferredSync(f *os.File) {
	defer f.Sync() // want "deferred f.Sync"
}

func checked(path string) error {
	if err := os.Rename(path, path+".bad"); err != nil {
		return err
	}
	return nil
}

func suppressed(path string) {
	//bbvet:ignore durability fixture exercises a counted suppression
	os.Remove(path)
}
