// Fixture for the fsx seam: discarding an error from the filesystem
// interface the write paths actually go through is the same bug class
// as discarding the os call it replaced.
package logstore

import "fsx"

func fsxQuarantine(fsys fsx.FS, path string) {
	fsys.Rename(path, path+".bad")       // want "fsys.Rename"
	fsys.Remove(path + ".tmp")           // want "fsys.Remove"
	fsys.SyncDir(path)                   // want "fsys.SyncDir"
	_ = fsys.WriteFile(path, nil, 0o644) // want "blanked with _"
}

func fsxWritePath(fsys fsx.FS, f fsx.File, path string, data []byte) error {
	defer f.Close() // exempt: read-path defer
	f.Write(data)   // want "f.Write"
	f.Sync()        // want "f.Sync"
	if err := fsys.MkdirAll(path, 0o755); err != nil {
		fsys.Remove(path) // exempt: cleanup while unwinding an error
		return err
	}
	return fsys.Truncate(path, 0)
}

func fsxDeferredSync(f fsx.File) {
	defer f.Sync() // want "deferred f.Sync"
}

func fsxChecked(fsys fsx.FS, path string) error {
	if err := fsys.Rename(path, path+".bad"); err != nil {
		return err
	}
	return fsys.SyncDir(path)
}
