// Package unsafeescape implements the bbvet unsafe-escape analyzer:
// every use of the unsafe package is allowlisted to specific, audited
// functions; any other call site is a finding.
//
// This is the PR 7 bug class. The netingest fast path builds string
// views over the connection's read buffer with unsafe.String — sound
// only because the audited decode function copies the bytes exactly
// once before the views are built, and nothing retains a view past the
// batch call. A second unsafe call site added elsewhere has none of
// that reasoning attached, so it fails the build until it is either
// rewritten with a copy or explicitly audited into the allowlist here.
package unsafeescape

import (
	"go/ast"
	"go/types"

	"bytebrain/internal/lint"
)

// allowlist is the set of audited unsafe call sites in production code,
// keyed by package path then enclosing function name. Additions require
// the same review the netingest decode path got: prove the aliased
// bytes cannot be retained past their buffer's reuse.
var allowlist = map[string]map[string]bool{
	"bytebrain/internal/netingest": {"frameWorker": true},
}

// Analyzer is the unsafe-escape analyzer with the production allowlist.
var Analyzer = New(allowlist)

// ProductionAllowlist exposes a copy of the audited call sites so tests
// can pin them.
func ProductionAllowlist() map[string][]string {
	out := map[string][]string{}
	for pkg, funcs := range allowlist {
		for fn := range funcs {
			out[pkg] = append(out[pkg], fn)
		}
	}
	return out
}

// New builds the analyzer with an explicit allowlist (pkg path →
// function names); the golden tests use it to exercise both sides.
func New(allow map[string]map[string]bool) *lint.Analyzer {
	a := &lint.Analyzer{
		Name: "unsafeescape",
		Doc:  "unsafe.String/Slice/Pointer use is restricted to audited functions",
	}
	a.Run = func(pass *lint.Pass) error {
		return run(pass, allow)
	}
	return a
}

func run(pass *lint.Pass, allow map[string]map[string]bool) error {
	allowed := allow[pass.Pkg.Path()]
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
				if !ok || pkgName.Imported().Path() != "unsafe" {
					return true
				}
				if allowed[fn] {
					return true
				}
				pass.Reportf(sel.Pos(), "unsafe.%s outside the audited allowlist (function %s); copy the bytes or audit this site into internal/lint/unsafeescape", sel.Sel.Name, fn)
				return true
			})
		}
	}
	return nil
}
