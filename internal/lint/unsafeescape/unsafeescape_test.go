package unsafeescape_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/linttest"
	"bytebrain/internal/lint/unsafeescape"
)

func TestGoldenFindings(t *testing.T) {
	a := unsafeescape.New(map[string]map[string]bool{
		"netfix": {"frameWorker": true},
	})
	res := linttest.Run(t, a, filepath.Join("testdata", "src", "netfix"))
	if got := res.Suppressed["unsafeescape"]; got != 1 {
		t.Errorf("suppressed count = %d, want 1", got)
	}
}

// TestProductionAllowlist pins the audited call sites: growing this
// list is a deliberate, reviewed act, not a side effect.
func TestProductionAllowlist(t *testing.T) {
	allow := unsafeescape.ProductionAllowlist()
	if len(allow) != 1 {
		t.Fatalf("allowlist covers %d packages, want 1: %v", len(allow), allow)
	}
	funcs := allow["bytebrain/internal/netingest"]
	if len(funcs) != 1 || funcs[0] != "frameWorker" {
		t.Fatalf("netingest allowlist = %v, want [frameWorker]", funcs)
	}
}
