// Fixture for the unsafe-escape analyzer. leakView reintroduces the
// PR 7 bug in shape: an unsafe.String view over a reused read buffer
// built outside the one audited decode function, where nothing proves
// the view cannot outlive the buffer.
package netfix

import "unsafe"

// frameWorker is the allowlisted decode function (injected by the
// test, mirroring the production allowlist for netingest).
func frameWorker(data []byte) []string {
	out := make([]string, 0, 1)
	out = append(out, unsafe.String(&data[0], len(data)))
	return out
}

func leakView(data []byte) string {
	return unsafe.String(&data[0], len(data)) // want "unsafe.String outside the audited allowlist"
}

func leakSlice(p *byte, n int) []byte {
	return unsafe.Slice(p, n) // want "unsafe.Slice outside the audited allowlist"
}

func rawPointer(p *int) unsafe.Pointer {
	return unsafe.Pointer(p) // want "unsafe.Pointer outside the audited allowlist"
}

func copies(data []byte) string {
	return string(data)
}

func suppressed(data []byte) string {
	//bbvet:ignore unsafeescape fixture exercises a counted suppression
	return unsafe.String(&data[0], len(data))
}
