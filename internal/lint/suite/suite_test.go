package suite_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/suite"
)

func TestSuiteSize(t *testing.T) {
	if n := len(suite.Analyzers()); n < 5 {
		t.Fatalf("suite has %d analyzers, the bbvet contract is at least 5", n)
	}
}

// TestTreeIsClean runs the full bbvet suite over the module — the same
// check CI's bbvet step performs — so a plain `go test ./...` also
// fails on a new invariant violation.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis; the CI bbvet step covers short runs")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	modroot := filepath.Join(filepath.Dir(thisFile), "..", "..", "..")
	loader, err := lint.NewLoader(modroot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunAnalyzers(pkgs, suite.Analyzers(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("finding: %s", f)
	}
	for _, f := range res.BadDirectives {
		t.Errorf("malformed suppression: %s", f)
	}
}
