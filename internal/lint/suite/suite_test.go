package suite_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/suite"
)

func TestSuiteSize(t *testing.T) {
	if n := len(suite.Analyzers()); n < 9 {
		t.Fatalf("suite has %d analyzers, the bbvet contract is at least 9", n)
	}
}

// TestTreeIsClean runs the full bbvet suite over the module — the same
// check CI's bbvet step performs — so a plain `go test ./...` also
// fails on a new invariant violation.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis; the CI bbvet step covers short runs")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	modroot := filepath.Join(filepath.Dir(thisFile), "..", "..", "..")
	loader, err := lint.NewLoader(modroot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunAnalyzersParallel(pkgs, suite.Analyzers(), true, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("finding: %s", f)
	}
	for _, f := range res.BadDirectives {
		t.Errorf("malformed suppression: %s", f)
	}

	// The parallel sweep must be a pure speedup: same findings, same
	// suppression counts as the sequential driver.
	seq, err := lint.RunAnalyzers(pkgs, suite.Analyzers(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Findings) != len(res.Findings) {
		t.Errorf("sequential run found %d findings, parallel %d", len(seq.Findings), len(res.Findings))
	}
	for i := range seq.Findings {
		if i < len(res.Findings) && seq.Findings[i] != res.Findings[i] {
			t.Errorf("finding %d differs: sequential %s, parallel %s", i, seq.Findings[i], res.Findings[i])
		}
	}
	for name, n := range seq.Suppressed {
		if res.Suppressed[name] != n {
			t.Errorf("suppressed[%s]: sequential %d, parallel %d", name, n, res.Suppressed[name])
		}
	}
}
