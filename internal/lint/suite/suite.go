// Package suite assembles the full bbvet analyzer set. It exists as
// its own package (rather than a function in internal/lint) so the
// driver framework stays import-cycle-free of the analyzers and so the
// self-check test can run exactly what cmd/bbvet runs.
package suite

import (
	"bytebrain/internal/lint"
	"bytebrain/internal/lint/durability"
	"bytebrain/internal/lint/lockblock"
	"bytebrain/internal/lint/metricshygiene"
	"bytebrain/internal/lint/snapshot"
	"bytebrain/internal/lint/unsafeescape"
)

// Analyzers returns the bbvet suite in reporting order.
func Analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		durability.Analyzer,
		snapshot.Analyzer,
		unsafeescape.Analyzer,
		lockblock.Analyzer,
		metricshygiene.Analyzer,
	}
}
