// Package suite assembles the full bbvet analyzer set. It exists as
// its own package (rather than a function in internal/lint) so the
// driver framework stays import-cycle-free of the analyzers and so the
// self-check test can run exactly what cmd/bbvet runs.
package suite

import (
	"bytebrain/internal/lint"
	"bytebrain/internal/lint/ackcommit"
	"bytebrain/internal/lint/durability"
	"bytebrain/internal/lint/errflow"
	"bytebrain/internal/lint/goroutineleak"
	"bytebrain/internal/lint/lockbalance"
	"bytebrain/internal/lint/lockblock"
	"bytebrain/internal/lint/metricshygiene"
	"bytebrain/internal/lint/snapshot"
	"bytebrain/internal/lint/unsafeescape"
)

// Analyzers returns the bbvet suite in reporting order. The first five
// are the source-order checkers from PR 8; the last four are the
// CFG/dataflow analyzers built on internal/lint/cfg.
func Analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		durability.Analyzer,
		snapshot.Analyzer,
		unsafeescape.Analyzer,
		lockblock.Analyzer,
		metricshygiene.Analyzer,
		lockbalance.Analyzer,
		goroutineleak.Analyzer,
		errflow.Analyzer,
		ackcommit.Analyzer,
	}
}
