// Fixture for the lock-balance analyzer: path-sensitive Lock/Unlock
// pairing. The bad shapes are a lock leaked on an early-return path, a
// double-lock, and an unlock with no lock held; the good shapes are
// defer, per-branch balance, loops, and read locks.
package lockfix

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type store struct {
	mu    sync.Mutex
	state sync.RWMutex
	n     int
}

// leakOnError leaks the mutex when fail is true: the early return path
// never unlocks.
func (s *store) leakOnError(fail bool) error {
	s.mu.Lock() // want "s.mu.Lock is not released on every path out of the function"
	if fail {
		return errFail
	}
	s.mu.Unlock()
	return nil
}

// doubleLock re-locks a mutex the same goroutine already holds.
func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "possible self-deadlock"
	s.mu.Unlock()
}

// unlockTwice releases a mutex that is no longer held.
func (s *store) unlockTwice() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want "s.mu.Unlock without a matching lock held on this path"
}

// readLeak leaks the read lock on the early-return path.
func (s *store) readLeak(c bool) int {
	s.state.RLock() // want "s.state.RLock is not released on every path out of the function"
	if c {
		return 1
	}
	s.state.RUnlock()
	return 0
}

// deferred is the canonical good shape.
func (s *store) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// branchBalanced unlocks on each path separately; no defer needed.
func (s *store) branchBalanced(fast bool) {
	s.mu.Lock()
	if fast {
		s.n = 0
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

// loopBalanced locks and unlocks inside every iteration.
func (s *store) loopBalanced(n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
}

// relock is legal after a full release: not a double-lock.
func (s *store) relock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
}

// readThenWrite keys the read and write sides separately.
func (s *store) readThenWrite() int {
	s.state.RLock()
	v := s.n
	s.state.RUnlock()
	s.state.Lock()
	s.n = v + 1
	s.state.Unlock()
	return v
}

// lockForCaller hands the lock to its caller by contract; the leak
// finding is suppressed with a reason.
func (s *store) lockForCaller() {
	//bbvet:ignore lockbalance lock intentionally handed to the caller; released by storeUnlock
	s.mu.Lock()
}

func (s *store) storeUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
}
