// Package lockbalance implements the bbvet lock-balance analyzer: in
// internal/service, internal/logstore and internal/netingest, every
// sync.Mutex/RWMutex Lock must be released on EVERY path out of the
// function — by a defer or per-branch Unlocks — and no path may Lock a
// mutex it already holds or Unlock one it does not.
//
// This is the path-sensitive upgrade of lockblock's source-order
// tracking: the analysis runs a may-held forward dataflow over the
// function's CFG (internal/lint/cfg + internal/lint/dataflow), so an
// Unlock inside one branch no longer hides a leak on the sibling
// branch. Facts are Lock call sites; an Unlock or defer Unlock of the
// same mutex expression kills them. At the function exit, any site
// still (possibly) held is a finding, reported at the Lock itself.
//
// Approximations, deliberate:
//
//   - mutexes are keyed by the source expression (s.mu, c.wmu); an
//     aliased copy (m := &s.mu) is tracked as a separate lock;
//   - a defer mu.Unlock() releases the lock for balance purposes at the
//     defer statement (it is guaranteed to run at exit of every path
//     that executed it), so a re-Lock after a deferred unlock is not
//     flagged as a double-lock;
//   - RLock/RUnlock balance is checked (keyed separately from the write
//     side), but double-RLock is not flagged: concurrent read locks are
//     legal and recursive read helpers are common.
package lockbalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"bytebrain/internal/lint"
	"bytebrain/internal/lint/cfg"
	"bytebrain/internal/lint/dataflow"
)

// Analyzer is the lock-balance analyzer.
var Analyzer = &lint.Analyzer{
	Name:     "lockbalance",
	Doc:      "every Lock is released on every exit path; no double-lock or unlock-without-lock",
	Packages: []string{"internal/service", "internal/logstore", "internal/netingest"},
	Run:      run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, body := range functionBodies(file) {
			checkBody(pass, body)
		}
	}
	return nil
}

// functionBodies returns every function body in the file: declarations
// plus all nested function literals (each literal is its own critical-
// section scope — it usually runs on another goroutine or at defer
// time).
func functionBodies(file *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// lockOp is one Lock/Unlock event inside a block node.
type lockOp struct {
	key      string // mutex expression, "R:"-prefixed for the read side
	acquire  bool
	read     bool
	deferred bool
	pos      token.Pos
	label    string // expression text for messages
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)

	// Collect lock ops per block node, in source order, and assign a
	// fact index to every acquisition site.
	type nodeOps struct{ ops []lockOp }
	opsFor := make(map[ast.Node]*nodeOps)
	var sites []lockOp
	siteIndex := map[token.Pos]int{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			no := &nodeOps{}
			collectOps(pass, n, &no.ops)
			if len(no.ops) > 0 {
				opsFor[n] = no
				for _, op := range no.ops {
					if op.acquire {
						siteIndex[op.pos] = len(sites)
						sites = append(sites, op)
					}
				}
			}
		}
	}
	if len(sites) == 0 {
		return
	}

	sameKey := func(s dataflow.BitSet, key string) (int, bool) {
		for i, site := range sites {
			if site.key == key && s.Has(i) {
				return i, true
			}
		}
		return -1, false
	}

	apply := func(b *cfg.Block, in dataflow.BitSet, report bool) dataflow.BitSet {
		s := in.Copy()
		for _, n := range b.Nodes {
			no := opsFor[n]
			if no == nil {
				continue
			}
			for _, op := range no.ops {
				if op.acquire {
					if report && !op.read {
						if j, held := sameKey(s, op.key); held {
							pass.Reportf(op.pos, "%s.Lock while the same mutex may already be held (locked at line %d): possible self-deadlock",
								op.label, pass.Fset.Position(sites[j].pos).Line)
						}
					}
					s.Set(siteIndex[op.pos])
					continue
				}
				// Release (immediate or deferred): kill every held site of
				// the same mutex.
				if _, held := sameKey(s, op.key); !held && report && !op.deferred {
					verb := "Unlock"
					if op.read {
						verb = "RUnlock"
					}
					pass.Reportf(op.pos, "%s.%s without a matching lock held on this path", op.label, verb)
				}
				for i, site := range sites {
					if site.key == op.key {
						s.Clear(i)
					}
				}
			}
		}
		return s
	}

	res := dataflow.Forward(g, len(sites), dataflow.Union, dataflow.NewBitSet(len(sites)),
		func(b *cfg.Block, in dataflow.BitSet) dataflow.BitSet { return apply(b, in, false) })

	// Verification pass: re-walk each reachable block once with its
	// fixpoint IN set, reporting double-locks and unmatched unlocks.
	g.Dominators()
	for _, b := range g.Blocks {
		if b != g.Entry && len(b.Preds) == 0 {
			continue // unreachable
		}
		apply(b, res.In[b.Index], true)
	}

	// Exit balance: any acquisition site still (possibly) held when the
	// function returns is a leak on at least one path.
	for i, site := range sites {
		if res.In[g.Exit.Index].Has(i) {
			verb := "Lock"
			if site.read {
				verb = "RLock"
			}
			pass.Reportf(site.pos, "%s.%s is not released on every path out of the function", site.label, verb)
		}
	}
}

// collectOps appends the mutex operations inside node n in source order.
func collectOps(pass *lint.Pass, n ast.Node, out *[]lockOp) {
	var walk func(m ast.Node) bool
	walk = func(m ast.Node) bool {
		if d, ok := m.(*ast.DeferStmt); ok {
			// The deferred call's op is a release-at-exit; anything else
			// deferred is still scanned normally.
			if op, ok := mutexOp(pass, d.Call); ok {
				op.deferred = true
				if op.acquire {
					// defer mu.Lock() is pathological; treat as immediate
					// so the imbalance surfaces at exit.
					op.deferred = false
				}
				*out = append(*out, op)
				return false
			}
			return true
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := mutexOp(pass, call); ok {
			*out = append(*out, op)
		}
		return true
	}
	cfg.Inspect(n, walk)
}

// mutexOp reports whether call is a Lock/Unlock/RLock/RUnlock on a
// sync.Mutex, sync.RWMutex or sync.Locker.
func mutexOp(pass *lint.Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	var acquire, read bool
	switch name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	if !isSyncLock(pass, sel) {
		return lockOp{}, false
	}
	key := types.ExprString(sel.X)
	if read {
		key = "R:" + key
	}
	return lockOp{
		key:     key,
		acquire: acquire,
		read:    read,
		pos:     call.Pos(),
		label:   types.ExprString(sel.X),
	}, true
}

// isSyncLock reports whether the selected method is declared by
// package sync (covers embedded mutexes and sync.Locker values).
func isSyncLock(pass *lint.Pass, sel *ast.SelectorExpr) bool {
	if s, ok := pass.Info.Selections[sel]; ok {
		obj := s.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
	}
	// Fallback: type of the receiver expression.
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "Locker":
		return true
	}
	return false
}
