package lockbalance_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/linttest"
	"bytebrain/internal/lint/lockbalance"
)

func TestGoldenFindings(t *testing.T) {
	res := linttest.Run(t, lockbalance.Analyzer, filepath.Join("testdata", "src", "lockfix"))
	if got := res.Suppressed["lockbalance"]; got != 1 {
		t.Errorf("suppressed count = %d, want 1", got)
	}
}
