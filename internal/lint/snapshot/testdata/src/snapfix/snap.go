// Fixture for the snapshot-discipline analyzer. doubleLoad
// reintroduces the PR 2 bug in shape: one request loading the published
// model snapshot twice can straddle a trainer publish and make the two
// halves of the operation disagree about the model generation.
package snapfix

import "sync/atomic"

type model struct {
	gen int
}

type topicState struct {
	snap  atomic.Pointer[model]
	cache atomic.Pointer[model]
}

func doubleLoad(ts *topicState) int {
	first := ts.snap.Load()
	n := first.gen
	second := ts.snap.Load() // want "ts.snap.Load() called 2 times"
	return n + second.gen
}

func threaded(ts *topicState) int {
	sn := ts.snap.Load()
	return use(sn) + use(sn)
}

func use(m *model) int { return m.gen }

// distinct pointers may each be loaded once.
func twoPointers(ts *topicState) int {
	a := ts.snap.Load()
	b := ts.cache.Load()
	return a.gen + b.gen
}

// casRetry is the exempt shape: the re-load after a lost
// CompareAndSwap picks up the winner's value, which is the point.
func casRetry(ts *topicState) *model {
	m := ts.cache.Load()
	if m == nil {
		m = &model{}
		if !ts.cache.CompareAndSwap(nil, m) {
			m = ts.cache.Load()
		}
	}
	return m
}

// closures are separate scopes: each invocation takes its own
// snapshot.
func perCall(ts *topicState) func() int {
	n := ts.snap.Load().gen
	return func() int {
		return n + ts.snap.Load().gen
	}
}

func tripleLoad(ts *topicState) int {
	a := ts.snap.Load()
	b := ts.snap.Load() // want "called 3 times"
	c := ts.snap.Load() // want "called 3 times"
	return a.gen + b.gen + c.gen
}
