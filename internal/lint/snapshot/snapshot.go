// Package snapshot implements the bbvet snapshot-discipline analyzer:
// within one function, a given atomic.Pointer may be Load()ed at most
// once, with the snapshot threaded through the rest of the operation.
//
// Re-loading mid-operation is the PR 2 bug class: two Loads of
// topicState.snap in one request can observe different model
// generations, so the second half of the request runs against a model
// the first half never saw (torn match/cache decisions).
//
// One shape is exempt: a function that also CompareAndSwaps the same
// pointer is running a CAS retry loop (load, attempt install, re-load
// the winner on failure), where the re-load is the point.
package snapshot

import (
	"go/ast"
	"go/types"

	"bytebrain/internal/lint"
)

// Analyzer is the snapshot-discipline analyzer.
var Analyzer = &lint.Analyzer{
	Name: "snapshot",
	Doc:  "an atomic.Pointer is Load()ed at most once per function; thread the snapshot through",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// checkFunc examines one function body. Function literals are separate
// scopes — a closure captures its own view and frequently runs on a
// different goroutine, so its Loads don't combine with the enclosing
// function's.
func checkFunc(pass *lint.Pass, name string, body *ast.BlockStmt) {
	loads := map[string][]*ast.CallExpr{}
	cas := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, name+" (func literal)", lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isAtomicPointer(pass, sel.X) {
			return true
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Load":
			loads[key] = append(loads[key], call)
		case "CompareAndSwap", "Swap":
			cas[key] = true
		}
		return true
	})
	for key, calls := range loads {
		if len(calls) < 2 || cas[key] {
			continue
		}
		for _, c := range calls[1:] {
			pass.Reportf(c.Pos(), "%s.Load() called %d times in %s; load the snapshot once and thread it through", key, len(calls), name)
		}
	}
}

// isAtomicPointer reports whether expr has type sync/atomic.Pointer[T]
// (directly or behind one pointer indirection).
func isAtomicPointer(pass *lint.Pass, expr ast.Expr) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}
