package snapshot_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/linttest"
	"bytebrain/internal/lint/snapshot"
)

func TestGoldenFindings(t *testing.T) {
	linttest.Run(t, snapshot.Analyzer, filepath.Join("testdata", "src", "snapfix"))
}
