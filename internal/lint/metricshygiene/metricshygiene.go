// Package metricshygiene implements the bbvet metrics-hygiene analyzer
// for the dependency-free internal/obs registry:
//
//   - every metric name passed to Registry.Counter/Gauge/Histogram/
//     CounterFunc/GaugeFunc is a compile-time string constant with the
//     bb_ prefix (dashboards and alert rules key on the literal name —
//     a computed name silently forks a time series);
//   - histogram units are coherent: a name ending in _seconds gets
//     obs.LatencyBuckets, and LatencyBuckets histograms are named
//     _seconds — mixed units are the classic "p99 of 3ms rendered as
//     3000s" dashboard bug. Observing a histogram with a value built
//     from Milliseconds()/Microseconds() is flagged for the same
//     reason;
//   - no metric name is registered at two distinct call sites: the obs
//     registry panics at runtime on a kind/keys mismatch, this catches
//     the plain duplicate before it ships.
//
// Bucket arguments are resolved through one level of variable
// indirection (lat := obs.LatencyBuckets; var sizes = obs.SizeBuckets(…))
// and only definite mismatches are reported.
package metricshygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"bytebrain/internal/lint"
)

// Analyzer is the metrics-hygiene analyzer.
var Analyzer = &lint.Analyzer{
	Name: "metricshygiene",
	Doc:  "obs metric names are bb_-prefixed constants, histograms observe seconds, no duplicate registration",
	Run:  run,
}

var registerMethods = map[string]bool{
	"Counter":     true,
	"Gauge":       true,
	"Histogram":   true,
	"CounterFunc": true,
	"GaugeFunc":   true,
}

func run(pass *lint.Pass) error {
	decls := declExprs(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Observe" && isObsType(pass, sel.X) {
				checkObserve(pass, call)
				return true
			}
			if !registerMethods[sel.Sel.Name] || !isObsRegistry(pass, sel.X) {
				return true
			}
			checkRegistration(pass, call, sel.Sel.Name, decls)
			return true
		})
	}
	return nil
}

func checkRegistration(pass *lint.Pass, call *ast.CallExpr, method string, decls map[types.Object]ast.Expr) {
	if len(call.Args) == 0 {
		return
	}
	nameArg := call.Args[0]
	tv, ok := pass.Info.Types[nameArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(), "metric name is not a compile-time string constant; dashboards key on literal names")
		return
	}
	name := constant.StringVal(tv.Value)
	if !strings.HasPrefix(name, "bb_") {
		pass.Reportf(nameArg.Pos(), "metric name %q lacks the bb_ prefix", name)
	}
	// Duplicate registration across the whole run (Shared survives
	// packages).
	seenAny, ok := pass.Shared["names"]
	if !ok {
		seenAny = map[string]string{}
		pass.Shared["names"] = seenAny
	}
	seen := seenAny.(map[string]string)
	pos := pass.Fset.Position(nameArg.Pos()).String()
	if prev, dup := seen[name]; dup {
		pass.Reportf(nameArg.Pos(), "metric %q already registered at %s; the obs registry panics on conflicting re-registration", name, prev)
	} else {
		seen[name] = pos
	}
	if method != "Histogram" || len(call.Args) < 3 {
		return
	}
	wantSeconds := strings.HasSuffix(name, "_seconds")
	switch class := bucketClass(pass, call.Args[2], decls, 0); class {
	case "latency":
		if !wantSeconds {
			pass.Reportf(nameArg.Pos(), "histogram %q uses obs.LatencyBuckets (seconds) but its name does not end in _seconds", name)
		}
	case "other":
		if wantSeconds {
			pass.Reportf(nameArg.Pos(), "histogram %q is named _seconds but does not use obs.LatencyBuckets", name)
		}
	}
}

// checkObserve flags Observe arguments built from sub-second integer
// conversions — observing d.Milliseconds() on a seconds histogram.
func checkObserve(pass *lint.Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == "Milliseconds" || sel.Sel.Name == "Microseconds" {
			pass.Reportf(inner.Pos(), "histogram observed with %s(); obs histograms are unit-seconds, use .Seconds()", sel.Sel.Name)
		}
		return true
	})
}

// bucketClass classifies a Buckets expression: "latency" when it
// resolves to obs.LatencyBuckets, "other" when it definitely resolves
// to something else (SizeBuckets call, literal), "unknown" otherwise.
func bucketClass(pass *lint.Pass, expr ast.Expr, decls map[types.Object]ast.Expr, depth int) string {
	if depth > 4 {
		return "unknown"
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if obj := pass.Info.Uses[e.Sel]; obj != nil && fromObs(obj) {
			if e.Sel.Name == "LatencyBuckets" {
				return "latency"
			}
			return "unknown"
		}
		return "unknown"
	case *ast.CallExpr:
		// A constructor call (obs.SizeBuckets(...), obs.Buckets(...))
		// is definitely not the latency schedule.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if obj := pass.Info.Uses[sel.Sel]; obj != nil && fromObs(obj) {
				return "other"
			}
		}
		return "unknown"
	case *ast.CompositeLit:
		return "other"
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			return "unknown"
		}
		if init, ok := decls[obj]; ok {
			return bucketClass(pass, init, decls, depth+1)
		}
		return "unknown"
	}
	return "unknown"
}

func fromObs(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Pkg().Name() == "obs"
}

// declExprs maps every var object declared in this package to its
// single initializer expression, covering both `var x = e` and
// `x := e` forms; multi-value initializers are skipped.
func declExprs(pass *lint.Pass) map[types.Object]ast.Expr {
	out := map[types.Object]ast.Expr{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.ValueSpec:
				if len(d.Names) == len(d.Values) {
					for i, name := range d.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							out[obj] = d.Values[i]
						}
					}
				}
			case *ast.AssignStmt:
				if len(d.Lhs) == len(d.Rhs) {
					for i, lhs := range d.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						if obj := pass.Info.Defs[id]; obj != nil {
							out[obj] = d.Rhs[i]
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// isObsRegistry reports whether expr is (a pointer to) the obs
// Registry.
func isObsRegistry(pass *lint.Pass, expr ast.Expr) bool {
	return isObsNamed(pass, expr, "Registry")
}

// isObsType reports whether expr's type is any named type from the obs
// package (Histogram, HistogramVec observers, ...).
func isObsType(pass *lint.Pass, expr ast.Expr) bool {
	return isObsNamed(pass, expr, "")
}

func isObsNamed(pass *lint.Pass, expr ast.Expr, want string) bool {
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "obs" {
		return false
	}
	return want == "" || obj.Name() == want
}
