// Stub of bytebrain's internal/obs registry API, just enough surface
// for the metrics-hygiene fixtures to type-check against.
package obs

type Buckets struct {
	bounds []float64
}

var LatencyBuckets = Buckets{}

func SizeBuckets(bounds ...int64) Buckets { return Buckets{} }

type Registry struct{}

type CounterVec struct{}

type GaugeVec struct{}

type HistogramVec struct{}

type Histogram struct{}

func (r *Registry) Counter(name, help string, keys ...string) *CounterVec { return nil }

func (r *Registry) Gauge(name, help string, keys ...string) *GaugeVec { return nil }

func (r *Registry) Histogram(name, help string, buckets Buckets, keys ...string) *HistogramVec {
	return nil
}

func (r *Registry) CounterFunc(name, help string, fn func() float64) {}

func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

func (v *HistogramVec) With(labels ...string) *Histogram { return &Histogram{} }

func (h *Histogram) Observe(v float64) {}
