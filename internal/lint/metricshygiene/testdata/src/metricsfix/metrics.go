// Fixture for the metrics-hygiene analyzer: name constants, the bb_
// prefix, histogram unit coherence, duplicate registration, and
// Observe units.
package metricsfix

import (
	"time"

	"obs"
)

const goodName = "bb_requests_total"

var reg = &obs.Registry{}

var sizeBuckets = obs.SizeBuckets(1, 10, 100)

func register() {
	reg.Counter(goodName, "requests")
	reg.Counter("bb_errors_total", "errors")
	reg.Counter("errors_total", "errors") // want "lacks the bb_ prefix"
	reg.Gauge(dynamicName(), "x")         // want "not a compile-time string constant"
	reg.GaugeFunc("bb_up", "up", func() float64 { return 1 })

	lat := obs.LatencyBuckets
	reg.Histogram("bb_flush_seconds", "flush", lat)
	reg.Histogram("bb_batch_records", "batch", sizeBuckets)
	reg.Histogram("bb_wait_seconds", "wait", sizeBuckets)             // want "does not use obs.LatencyBuckets"
	reg.Histogram("bb_ingest_latency", "latency", obs.LatencyBuckets) // want "does not end in _seconds"

	reg.Counter("bb_errors_total", "dup") // want "already registered"
}

func dynamicName() string { return "bb_requests_total" }

func observe(h *obs.Histogram, d time.Duration) {
	h.Observe(d.Seconds())
	h.Observe(float64(d.Milliseconds())) // want "Milliseconds"
}

func suppressed() {
	//bbvet:ignore metricshygiene fixture exercises a counted suppression
	reg.Counter("legacy_name", "grandfathered")
}
