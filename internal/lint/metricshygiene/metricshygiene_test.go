package metricshygiene_test

import (
	"path/filepath"
	"testing"

	"bytebrain/internal/lint/linttest"
	"bytebrain/internal/lint/metricshygiene"
)

func TestGoldenFindings(t *testing.T) {
	res := linttest.Run(t, metricshygiene.Analyzer, filepath.Join("testdata", "src", "metricsfix"))
	if got := res.Suppressed["metricshygiene"]; got != 1 {
		t.Errorf("suppressed count = %d, want 1", got)
	}
}
